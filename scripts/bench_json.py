#!/usr/bin/env python3
"""Parse `go test -bench` output into BENCH_8.json (schema bench.v3).

Reads the raw benchmark log (argv[1]) and the benchtime used (argv[2]),
emits a JSON document with one entry per benchmark and, for benchmarks
named with a `threads=N` component, the speedup relative to the
`threads=1` twin in the same family. Entries keep input order so the file
is byte-stable for a given benchmark log.

Each entry records the GOMAXPROCS the benchmark ran at (the `-N` name
suffix Go appends) and the document records the host's actual core count,
so a baseline from a 1-core CI runner is never mistaken for a many-core
measurement. Custom `b.ReportMetric` columns (e.g. the datacenter solver's
`outer/op` and `solves/op`) are carried through generically under
`metrics`.

bench.v3 adds two calibrations:

- STREAM anchoring: BenchmarkStreamTriad's MB/s is lifted to the
  document-level `stream_triad_mb_s`, and every other entry that reports
  MB/s gains `fraction_of_peak` — its rate over the triad ceiling. A
  kernel near 1.0 is memory-bound and done; one far below has headroom.
- Oversubscription tagging: a `threads=N` entry with N above the
  GOMAXPROCS it ran at gets `"oversubscribed": true` and is excluded
  from `speedup_vs_serial` — its worker team time-slices cores, so its
  timing measures scheduler contention, not kernel scaling, and folding
  it into speedups would poison baselines from narrow CI runners.
"""
import json
import os
import re
import sys

LINE = re.compile(r"^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$")
PAIR = re.compile(r"([\d.]+(?:[eE][+-]?\d+)?)\s+(\S+)")
META = re.compile(r"^(goos|goarch|pkg|cpu): (.*)$")

# Units with first-class fields; anything else lands under "metrics".
CANON = {
    "ns/op": ("ns_per_op", float),
    "MB/s": ("mb_per_s", float),
    "B/op": ("bytes_per_op", int),
    "allocs/op": ("allocs_per_op", int),
}


def main() -> None:
    path, benchtime = sys.argv[1], sys.argv[2]
    meta, entries = {}, []
    with open(path) as f:
        for line in f:
            line = line.rstrip()
            m = META.match(line)
            if m and m.group(1) != "pkg":
                meta[m.group(1)] = m.group(2)
            m = LINE.match(line)
            if not m:
                continue
            pairs = PAIR.findall(m.group(4))
            units = {u: v for v, u in pairs}
            if "ns/op" not in units:
                continue  # not a benchmark result line
            entry = {
                "name": m.group(1).removeprefix("Benchmark"),
                "gomaxprocs": int(m.group(2)) if m.group(2) else 1,
                "iterations": int(m.group(3)),
            }
            metrics = {}
            for value, unit in pairs:
                if unit in CANON:
                    field, cast = CANON[unit]
                    entry[field] = cast(float(value))
                else:
                    metrics[unit] = float(value)
            if metrics:
                entry["metrics"] = metrics
            entries.append(entry)

    def threads_of(name):
        m = re.search(r"threads=(\d+)", name)
        return int(m.group(1)) if m else None

    # Oversubscription: a worker team wider than the scheduler's core
    # budget measures time-slicing, not scaling.
    for e in entries:
        threads = threads_of(e["name"])
        if threads is not None and threads > e["gomaxprocs"]:
            e["oversubscribed"] = True

    # STREAM calibration: the triad rate is this host's effective memory
    # bandwidth ceiling; every kernel's MB/s becomes a fraction of it.
    triad = next((e for e in entries if e["name"] == "StreamTriad"), None)
    triad_rate = triad.get("mb_per_s", 0.0) if triad else 0.0
    if triad_rate > 0:
        for e in entries:
            if e is triad or "mb_per_s" not in e:
                continue
            e["fraction_of_peak"] = round(e["mb_per_s"] / triad_rate, 4)

    # Speedup vs the serial twin for threads=N sub-benchmarks. The family
    # key replaces the full `threads=<digits>` token, so e.g. threads=16
    # can never be mistaken for the threads=1 baseline. Oversubscribed
    # entries never enter the aggregate — neither as a baseline nor as a
    # threaded variant.
    def family(name):
        m = re.search(r"threads=(\d+)", name)
        if not m:
            return None, None
        return name[: m.start()] + "threads={}" + name[m.end():], m.group(1)

    serial = {}
    for e in entries:
        if e.get("oversubscribed"):
            continue
        key, threads = family(e["name"])
        if key and threads == "1" and e["ns_per_op"] > 0:
            serial[key] = e["ns_per_op"]
    for e in entries:
        if e.get("oversubscribed"):
            continue
        key, threads = family(e["name"])
        if key and threads != "1" and key in serial and e["ns_per_op"] > 0:
            e["speedup_vs_serial"] = round(serial[key] / e["ns_per_op"], 3)

    doc = {
        "schema": "bench.v3",
        "benchtime": benchtime,
        "host_cpus": os.cpu_count(),
        **({"stream_triad_mb_s": round(triad_rate, 2)} if triad_rate > 0 else {}),
        **meta,
        "benchmarks": entries,
    }
    json.dump(doc, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
