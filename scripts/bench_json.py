#!/usr/bin/env python3
"""Parse `go test -bench` output into BENCH_5.json.

Reads the raw benchmark log (argv[1]) and the benchtime used (argv[2]),
emits a JSON document with one entry per benchmark and, for benchmarks
named with a `threads=N` component, the speedup relative to the
`threads=1` twin in the same family. Entries keep input order so the file
is byte-stable for a given benchmark log.
"""
import json
import re
import sys

LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+([\d.]+) MB/s)?"
    r"(?:\s+(\d+) B/op\s+(\d+) allocs/op)?"
)
META = re.compile(r"^(goos|goarch|pkg|cpu): (.*)$")


def main() -> None:
    path, benchtime = sys.argv[1], sys.argv[2]
    meta, entries = {}, []
    with open(path) as f:
        for line in f:
            line = line.rstrip()
            m = META.match(line)
            if m and m.group(1) != "pkg":
                meta[m.group(1)] = m.group(2)
            m = LINE.match(line)
            if not m:
                continue
            name = m.group(1).removeprefix("Benchmark")
            entry = {
                "name": name,
                "iterations": int(m.group(2)),
                "ns_per_op": float(m.group(3)),
            }
            if m.group(4) is not None:
                entry["mb_per_s"] = float(m.group(4))
            if m.group(5) is not None:
                entry["bytes_per_op"] = int(m.group(5))
                entry["allocs_per_op"] = int(m.group(6))
            entries.append(entry)

    # Speedup vs the serial twin for threads=N sub-benchmarks. The family
    # key replaces the full `threads=<digits>` token, so e.g. threads=16
    # can never be mistaken for the threads=1 baseline.
    def family(name):
        m = re.search(r"threads=(\d+)", name)
        if not m:
            return None, None
        return name[: m.start()] + "threads={}" + name[m.end():], m.group(1)

    serial = {}
    for e in entries:
        key, threads = family(e["name"])
        if key and threads == "1" and e["ns_per_op"] > 0:
            serial[key] = e["ns_per_op"]
    for e in entries:
        key, threads = family(e["name"])
        if key and threads != "1" and key in serial and e["ns_per_op"] > 0:
            e["speedup_vs_serial"] = round(serial[key] / e["ns_per_op"], 3)

    doc = {
        "schema": "bench.v1",
        "benchtime": benchtime,
        **meta,
        "benchmarks": entries,
    }
    json.dump(doc, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
