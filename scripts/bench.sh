#!/usr/bin/env bash
# bench.sh — run the canonical benchmarks and emit BENCH_5.json, the
# machine-readable performance baseline of this repository.
#
# Usage:
#   scripts/bench.sh                 # quick smoke (BENCHTIME=1x), writes BENCH_5.json
#   BENCHTIME=200ms scripts/bench.sh # steadier timings
#   OUT=/tmp/b.json scripts/bench.sh
#
# The JSON records ns/op, B/op and allocs/op per benchmark plus, for every
# benchmark family with threads=N sub-runs, the speedup of each threaded
# variant over its threads=1 twin. CI runs this script on every push and
# archives BENCH_5.json as a build artifact so future PRs can diff
# against a baseline instead of eyeballing benchmark logs.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_5.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The canonical benchmark set: solver and session hot paths (internal
# packages) plus the sweep engine (root package).
go test -run=NONE -bench='Solve|Session|MG|Stencil|Fused' -benchtime="$BENCHTIME" -benchmem \
	./internal/thermal ./internal/cosim ./internal/linalg | tee "$raw"
go test -run=NONE -bench='Sweep' -benchtime="$BENCHTIME" -benchmem . | tee -a "$raw"

python3 scripts/bench_json.py "$raw" "$BENCHTIME" > "$OUT"
echo "wrote $OUT"
