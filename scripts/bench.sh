#!/usr/bin/env bash
# bench.sh — run the canonical benchmarks and emit BENCH_8.json, the
# machine-readable performance baseline of this repository.
#
# Usage:
#   scripts/bench.sh                 # quick smoke (BENCHTIME=1x), writes BENCH_8.json
#   BENCHTIME=200ms scripts/bench.sh # steadier timings
#   OUT=/tmp/b.json scripts/bench.sh
#
# The JSON records ns/op, B/op and allocs/op per benchmark (plus any
# custom ReportMetric columns, e.g. the datacenter solver's outer/op),
# the GOMAXPROCS each benchmark ran at and the host core count, and, for
# every benchmark family with threads=N sub-runs, the speedup of each
# threaded variant over its threads=1 twin (threads=N runs with
# N > GOMAXPROCS are tagged "oversubscribed" and excluded). Since
# schema bench.v3 the run is STREAM-calibrated: BenchmarkStreamTriad's
# measured rate becomes the document's `stream_triad_mb_s`, and every
# bandwidth-reporting kernel bench gets `fraction_of_peak` — its MB/s as
# a fraction of the triad ceiling — so a baseline reads as "kernel X at
# Y% of this host's memory bandwidth" instead of a bare ns/op. Since
# BENCH_8 the set also covers the thermservd service layer
# (internal/serve): the memo-hit / warm-session / cold-miss steady
# tiers, and the deterministic open-loop load runs whose ReportMetric
# columns (p50_ms, p99_ms, qps, hit_rate) are the service-level latency
# table. CI runs this script on every push and archives BENCH_8.json as
# a build artifact so future PRs can diff against a baseline instead of
# eyeballing benchmark logs.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_8.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The canonical benchmark set: solver and session hot paths, the fused
# and Chebyshev smoother kernels with the STREAM triad they are judged
# against, the nested datacenter fleet solve, the thermservd service
# tiers and load runs (internal packages) plus the sweep engine (root
# package).
go test -run=NONE -bench='Solve|Session|MG|Stencil|Fused|Cheb|Triad|Datacenter|Serve' -benchtime="$BENCHTIME" -benchmem \
	./internal/thermal ./internal/cosim ./internal/linalg ./internal/datacenter ./internal/serve | tee "$raw"
go test -run=NONE -bench='Sweep' -benchtime="$BENCHTIME" -benchmem . | tee -a "$raw"

python3 scripts/bench_json.py "$raw" "$BENCHTIME" > "$OUT"
echo "wrote $OUT"
