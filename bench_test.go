// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact, plus ablation benches for the design choices DESIGN.md
// calls out. Domain results are attached via b.ReportMetric so a -bench
// run doubles as a summary of the reproduction:
//
//	go test -bench=. -benchmem
//
// The benches run at Coarse resolution to stay fast; cmd/paperbench
// regenerates the same artifacts at figure quality.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// BenchmarkFig2DieVsPackage regenerates Fig. 2 / table 2d (E1).
func BenchmarkFig2DieVsPackage(b *testing.B) {
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2DieVsPackage(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Die.MaxC, "dieMaxC")
	b.ReportMetric(last.Pkg.MaxC, "pkgMaxC")
	b.ReportMetric(last.Die.MaxGradCPerMM, "dieGradC/mm")
}

// BenchmarkFig3NormalizedExecTime regenerates Fig. 3 (E2).
func BenchmarkFig3NormalizedExecTime(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3NormalizedExecTime()
	}
	b.ReportMetric(float64(len(rows)), "benchmarks")
}

// BenchmarkTableICStatePower regenerates Table I (E3).
func BenchmarkTableICStatePower(b *testing.B) {
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableICStatePower()
	}
	b.ReportMetric(rows[0].PowerW[2], "pollW@3.2GHz")
}

// BenchmarkFig5Orientation regenerates the Fig. 5 orientation study (E4).
func BenchmarkFig5Orientation(b *testing.B) {
	var rows []experiments.OrientationResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig5Orientation(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Orientation == thermosyphon.InletWest {
			b.ReportMetric(r.Die.MaxC, "design1DieMaxC")
		}
		if r.Orientation == thermosyphon.InletNorth {
			b.ReportMetric(r.Die.MaxC, "design2DieMaxC")
		}
	}
}

// BenchmarkFig6MappingScenarios regenerates Fig. 6 (E5).
func BenchmarkFig6MappingScenarios(b *testing.B) {
	var rows []experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig6MappingScenarios(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Idle == power.C1 && r.Scenario == "scenario1-staggered" {
			b.ReportMetric(r.Die.MaxC, "s1C1DieMaxC")
		}
	}
}

// BenchmarkTableIIPolicyComparison regenerates Table II (E6) on a
// three-benchmark subset.
func BenchmarkTableIIPolicyComparison(b *testing.B) {
	subset := tableIISubset(b)
	var rows []experiments.TableIIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIIPolicyComparison(nil, experiments.At(experiments.Coarse), subset)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.QoS == workload.QoS2x {
			switch r.Approach {
			case experiments.Proposed:
				b.ReportMetric(r.DieMaxC, "proposed2xDieC")
			case experiments.SoASabry:
				b.ReportMetric(r.DieMaxC, "sabry2xDieC")
			}
		}
	}
}

func tableIISubset(tb testing.TB) []workload.Benchmark {
	tb.Helper()
	var subset []workload.Benchmark
	for _, name := range []string{"canneal", "freqmine", "raytrace"} {
		bench, err := workload.ByName(name)
		if err != nil {
			tb.Fatal(err)
		}
		subset = append(subset, bench)
	}
	return subset
}

// BenchmarkFig7ThermalMaps regenerates the Fig. 7 map pair (E7).
func BenchmarkFig7ThermalMaps(b *testing.B) {
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig7ThermalMaps(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ProposedMax, "proposedDieC")
	b.ReportMetric(r.SoAMax, "soaDieC")
}

// BenchmarkCoolingPower regenerates the §VIII-B cooling study (E8).
func BenchmarkCoolingPower(b *testing.B) {
	var r *experiments.CoolingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.CoolingPowerStudy(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ReductionChiller*100, "chillerRed%")
	b.ReportMetric(r.BaselineWaterC, "baseWaterC")
}

// BenchmarkDesignSpace regenerates the §VI-B/C design study (E9).
func BenchmarkDesignSpace(b *testing.B) {
	var r *experiments.DesignSpaceResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.DesignSpaceStudy(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Best.DieMaxC, "bestDieMaxC")
	b.ReportMetric(r.WaterSelection.WaterInC, "waterC")
}

// BenchmarkAblationRowExclusive isolates the row-exclusive mapping rule:
// the same benchmark and configuration with C1 idles, mapped by the
// proposed policy versus the clustered worst case.
func BenchmarkAblationRowExclusive(b *testing.B) {
	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), experiments.Coarse)
	if err != nil {
		b.Fatal(err)
	}
	bench, err := workload.ByName("canneal")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.Config{Cores: 4, Threads: 8, Freq: power.FMax}
	proposed, err := core.MapThreads(bench, cfg)
	if err != nil {
		b.Fatal(err)
	}
	clustered := core.Mapping{ActiveCores: []int{0, 1, 4, 5}, IdleState: proposed.IdleState, Config: cfg}
	var dProposed, dClustered float64
	for i := 0; i < b.N; i++ {
		dp, _, _, err := experiments.SolveMapping(sys, bench, proposed, thermosyphon.DefaultOperating())
		if err != nil {
			b.Fatal(err)
		}
		dc, _, _, err := experiments.SolveMapping(sys, bench, clustered, thermosyphon.DefaultOperating())
		if err != nil {
			b.Fatal(err)
		}
		dProposed, dClustered = dp.MaxC, dc.MaxC
	}
	b.ReportMetric(dClustered-dProposed, "savedC")
}

// BenchmarkAblationFilling sweeps the filling ratio at the worst case,
// isolating the §VI-B dryout-vs-flooding trade-off.
func BenchmarkAblationFilling(b *testing.B) {
	bench, cfg := workload.WorstCase()
	m := experiments.FullLoadMapping(cfg, power.POLL)
	var spread float64
	for i := 0; i < b.N; i++ {
		var lo, hi float64 = 1e9, -1e9
		for _, fr := range []float64{0.25, 0.55, 0.85} {
			d := thermosyphon.DefaultDesign()
			d.FillingRatio = fr
			sys, err := experiments.NewSystem(d, experiments.Coarse)
			if err != nil {
				b.Fatal(err)
			}
			die, _, _, err := experiments.SolveMapping(sys, bench, m, thermosyphon.DefaultOperating())
			if err != nil {
				b.Fatal(err)
			}
			if die.MaxC < lo {
				lo = die.MaxC
			}
			if die.MaxC > hi {
				hi = die.MaxC
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "fillSpreadC")
}

// BenchmarkAblationDryout compares the worst case at the design fill
// (dryout present on the channel tails) against the highest fill (dryout
// pushed out to x≈0.80 but the condenser partially flooded). The reported
// delta can be negative: at the worst case the flooding penalty of
// over-filling outweighs the dryout relief — exactly the §VI-B trade-off
// that makes 55 % the design point.
func BenchmarkAblationDryout(b *testing.B) {
	bench, cfg := workload.WorstCase()
	m := experiments.FullLoadMapping(cfg, power.POLL)
	normal := thermosyphon.DefaultDesign()
	noDry := thermosyphon.DefaultDesign()
	noDry.FillingRatio = 0.90 // highest fill: dryout pushed to x≈0.80
	var delta float64
	for i := 0; i < b.N; i++ {
		sysN, err := experiments.NewSystem(normal, experiments.Coarse)
		if err != nil {
			b.Fatal(err)
		}
		sysD, err := experiments.NewSystem(noDry, experiments.Coarse)
		if err != nil {
			b.Fatal(err)
		}
		dn, _, _, err := experiments.SolveMapping(sysN, bench, m, thermosyphon.DefaultOperating())
		if err != nil {
			b.Fatal(err)
		}
		dd, _, _, err := experiments.SolveMapping(sysD, bench, m, thermosyphon.DefaultOperating())
		if err != nil {
			b.Fatal(err)
		}
		delta = dn.MaxC - dd.MaxC
	}
	b.ReportMetric(delta, "dryoutCostC")
}

// BenchmarkExtOrientationMapping runs the orientation × mapping cross
// study (extension).
func BenchmarkExtOrientationMapping(b *testing.B) {
	var cells []experiments.OrientationMappingCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.ExtOrientationMapping(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cells)), "cells")
}

// BenchmarkExtRuntimeControl runs the §VII closed-loop stress (extension).
func BenchmarkExtRuntimeControl(b *testing.B) {
	var r *experiments.RuntimeControlResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ExtRuntimeControl(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.FlowActions), "valveSteps")
}

// BenchmarkExtScalability runs the 16-core scaled-die study (extension).
func BenchmarkExtScalability(b *testing.B) {
	var cells []experiments.ScalabilityCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.ExtScalability(nil, experiments.At(experiments.Coarse))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Cores == 16 && c.Mapping == "staggered" {
			b.ReportMetric(c.Die.MaxC, "die16staggeredC")
		}
	}
}

// BenchmarkAblationLeakage quantifies the temperature-leakage coupling the
// paper neglects: extra watts and die heating at the worst case when
// leakage tracks temperature.
func BenchmarkAblationLeakage(b *testing.B) {
	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), experiments.Coarse)
	if err != nil {
		b.Fatal(err)
	}
	bench, cfg := workload.WorstCase()
	m := experiments.FullLoadMapping(cfg, power.POLL)
	st := core.PackageState(bench, m)
	leak := power.DefaultLeakage()
	leak.RefC = 45
	var extra float64
	for i := 0; i < b.N; i++ {
		res, err := sys.SolveSteadyLeakage(st, thermosyphon.DefaultOperating(), leak)
		if err != nil {
			b.Fatal(err)
		}
		extra = res.LeakageExtraW
	}
	b.ReportMetric(extra, "leakExtraW")
}

// BenchmarkSteadySolve measures one coupled steady solve at coarse
// resolution — the inner kernel every experiment is built on.
func BenchmarkSteadySolve(b *testing.B) {
	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), experiments.Coarse)
	if err != nil {
		b.Fatal(err)
	}
	bench, cfg := workload.WorstCase()
	m := experiments.FullLoadMapping(cfg, power.POLL)
	st := core.PackageState(bench, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SolveSteady(st, thermosyphon.DefaultOperating()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlan measures Algorithm 1 itself (selection + mapping).
func BenchmarkPlan(b *testing.B) {
	bench, err := workload.ByName("ferret")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.Plan(bench, workload.QoS2x); err != nil {
			b.Fatal(err)
		}
	}
}
