package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestSyphondesignRuns(t *testing.T) {
	out := captureStdout(t, func() error { return run(experiments.At(experiments.Coarse)) })
	for _, want := range []string{
		"== Orientation study (§VI-A)",
		"chosen orientation:",
		"chosen charge:",
		"chosen water point:",
		"== Worst-channel view under the worst-case workload",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
