// Command syphondesign runs the §VI design-space exploration: the
// orientation study, the refrigerant × filling-ratio sweep, and the water
// operating-point selection, printing the chosen design.
//
// Usage:
//
//	syphondesign -res medium
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/render"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	resFlag := flag.String("res", "medium", "thermal resolution: coarse|medium|full")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = auto; unset cores from the GOMAXPROCS budget flow to -threads)")
	threads := flag.Int("threads", 0, "intra-solve threads per solve session (0 = auto-split GOMAXPROCS with -workers; set both to 1 for a fully serial run)")
	flag.Parse()
	res, err := experiments.ParseResolution(*resFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syphondesign:", err)
		os.Exit(1)
	}
	cfg := experiments.RunConfig{Resolution: res, Workers: *workers, Threads: *threads}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "syphondesign:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.RunConfig) error {
	fmt.Println("== Orientation study (§VI-A)")
	ors, err := experiments.Fig5Orientation(nil, cfg)
	if err != nil {
		return err
	}
	var rows [][]string
	bestIdx := 0
	for i, r := range ors {
		rows = append(rows, []string{
			r.Orientation.String(),
			strconv.FormatFloat(r.Die.MaxC, 'f', 1, 64),
			strconv.FormatFloat(r.Pkg.MaxC, 'f', 1, 64),
		})
		if r.Die.MaxC < ors[bestIdx].Die.MaxC {
			bestIdx = i
		}
	}
	if err := render.Table(os.Stdout, []string{"orientation", "die θmax", "pkg θmax"}, rows); err != nil {
		return err
	}
	fmt.Printf("chosen orientation: %v\n\n", ors[bestIdx].Orientation)

	fmt.Println("== Refrigerant × filling ratio (§VI-B) and water point (§VI-C)")
	ds, err := experiments.DesignSpaceStudy(nil, cfg)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range ds.Points {
		rows = append(rows, []string{
			p.Fluid,
			strconv.FormatFloat(p.FillingRatio, 'f', 2, 64),
			strconv.FormatFloat(p.DieMaxC, 'f', 1, 64),
			strconv.FormatFloat(p.TCaseC, 'f', 1, 64),
			strconv.Itoa(p.DryoutCells),
		})
	}
	if err := render.Table(os.Stdout, []string{"fluid", "fill", "die θmax", "TCASE", "dryout"}, rows); err != nil {
		return err
	}
	fmt.Printf("chosen charge: %s at %.0f%% fill\n", ds.Best.Fluid, ds.Best.FillingRatio*100)
	fmt.Printf("chosen water point: %.0f kg/h @ %.0f °C (TCASE %.1f °C against the 85 °C limit)\n\n",
		ds.WaterSelection.FlowKgH, ds.WaterSelection.WaterInC, ds.WaterSelection.TCaseC)

	return channelView(cfg.Resolution)
}

// channelView prints the per-channel dryout picture of the chosen design
// under the worst case: where along the evaporator the critical quality is
// crossed, per orientation.
func channelView(res experiments.Resolution) error {
	fmt.Println("== Worst-channel view under the worst-case workload")
	bench, cfg := workload.WorstCase()
	m := experiments.FullLoadMapping(cfg, power.POLL)
	for _, o := range thermosyphon.Orientations() {
		d := thermosyphon.DefaultDesign()
		d.Orientation = o
		sys, err := experiments.NewSystem(d, res)
		if err != nil {
			return err
		}
		st := core.PackageState(bench, m)
		result, err := sys.SolveSteady(st, thermosyphon.DefaultOperating())
		if err != nil {
			return err
		}
		heat := result.Field.TopHeatPerCell(result.BC)
		report, err := d.ChannelReport(sys.Thermal.Grid(), heat, thermosyphon.DefaultOperating())
		if err != nil {
			return err
		}
		worst, err := thermosyphon.WorstChannel(report)
		if err != nil {
			return err
		}
		dry := "none"
		if worst.DryoutPos < 1 {
			dry = fmt.Sprintf("at %.0f%% of the channel", worst.DryoutPos*100)
		}
		fmt.Printf("  %-12v worst channel #%d: %.1f W, exit quality %.2f, dryout %s\n",
			o, worst.Channel, worst.HeatW, worst.ExitQuality, dry)
	}
	return nil
}
