// Command paperbench regenerates the paper's tables and figures. Every
// experiment it serves comes from the experiments registry, so the
// command is a generic renderer: -list enumerates what is available,
// -exp selects by registry name (or "all", in registry order), -json
// emits the structured results for machine use, and -outdir captures
// SVG/CSV map artifacts.
//
// Usage:
//
//	paperbench -list
//	paperbench -exp all -res medium
//	paperbench -exp fig7 -res full -maps
//	paperbench -exp all -res coarse -json
//	paperbench -exp design -res full -workers 8 -timeout 10m
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/thermal"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: a registry name from -list, a comma-separated list, or all")
	resFlag := flag.String("res", "medium", "thermal resolution: coarse|medium|full")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of text")
	maps := flag.Bool("maps", false, "print ASCII thermal maps where available")
	out := flag.String("outdir", "", "directory for SVG/CSV map artifacts (optional)")
	reportPath := flag.String("report", "", "write a markdown reproduction report of the -exp selection to this file and exit")
	solverFlag := flag.String("solver", "cg", "thermal linear solver for every experiment: cg|mgpcg|mg|mgpcg32|mgpcg-cheb")
	faultFlag := flag.String("fault", "", "cooling-fault scenario, e.g. pump:0.5 or pump:0.4,fouling:0.3:loop0 (the faults experiment adds it to its sweep)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = auto; unset cores from the GOMAXPROCS budget flow to -threads)")
	threads := flag.Int("threads", 0, "intra-solve threads per solve session (0 = auto-split GOMAXPROCS with -workers; set both to 1 for a fully serial run)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Description)
		}
		return
	}

	solver, err := thermal.ParseSolver(*solverFlag)
	if err != nil {
		fatal(err)
	}
	res, err := experiments.ParseResolution(*resFlag)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.RunConfig{Resolution: res, Solver: solver, Workers: *workers, Threads: *threads}
	if *faultFlag != "" {
		sc, err := faults.Parse(*faultFlag)
		if err != nil {
			fatal(err)
		}
		cfg.Scenario = &sc
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		cfg.Artifacts = dirSink(*out)
	}

	ctx, cancel := experiments.WithTimeout(context.Background(), *timeout)
	defer cancel()

	selected, err := selectExperiments(*exp)
	if err != nil {
		fatal(err)
	}

	if *reportPath != "" {
		md, err := report.Generate(ctx, cfg, selected)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
		return
	}

	if err := runSelected(ctx, os.Stdout, selected, cfg, *jsonOut, *maps); err != nil {
		fatal(err)
	}
}

// selectExperiments resolves the -exp flag against the registry: "all"
// runs everything in registration order, so the run order can never drift
// from the registered set.
func selectExperiments(flagVal string) ([]experiments.Experiment, error) {
	if flagVal == "all" {
		return experiments.All(), nil
	}
	var out []experiments.Experiment
	for _, name := range strings.Split(flagVal, ",") {
		name = strings.TrimSpace(name)
		e, ok := experiments.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (see -list; registered: %s)",
				name, strings.Join(experiments.Names(), ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// runSelected runs the experiments and renders their results — one JSON
// array, or per-experiment text with optional ASCII maps. Timing lines go
// to stderr in JSON mode so stdout stays parseable.
func runSelected(ctx context.Context, w io.Writer, selected []experiments.Experiment, cfg experiments.RunConfig, jsonOut, maps bool) error {
	var results []*experiments.Result
	for _, e := range selected {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		r, err := e.Run(ctx, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if jsonOut {
			results = append(results, r)
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.Name, elapsed)
			continue
		}
		if err := r.WriteText(w); err != nil {
			return err
		}
		if maps {
			for _, m := range r.Maps {
				fmt.Fprintf(w, "%s:\n", m.Name)
				if err := render.ASCIIMap(w, m.Grid(), m.CellC); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(w, "[%s done in %v]\n\n", e.Name, elapsed)
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}

// dirSink writes every map artifact an experiment emits as an SVG heat
// map and a CSV grid in the given directory.
type dirSink string

func (d dirSink) SaveMap(m experiments.MapArtifact) error {
	svg, err := os.Create(filepath.Join(string(d), m.Name+".svg"))
	if err != nil {
		return err
	}
	if err := render.SVGMap(svg, m.Grid(), m.CellC, render.SVGOptions{}); err != nil {
		svg.Close()
		return err
	}
	if err := svg.Close(); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(string(d), m.Name+".csv"))
	if err != nil {
		return err
	}
	if err := render.CSVMap(csv, m.Grid(), m.CellC); err != nil {
		csv.Close()
		return err
	}
	return csv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
