// Command paperbench regenerates the paper's tables and figures and prints
// them in the same form the paper reports (rows of Table I/II, the Fig. 5
// and Fig. 6 comparisons, the Fig. 2/7 thermal maps as ASCII art, and the
// §VIII-B cooling-power study).
//
// Usage:
//
//	paperbench -exp all -res medium
//	paperbench -exp fig7 -res full -maps
//	paperbench -exp design -res full -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// outDir, when non-empty, receives SVG/CSV artifacts per experiment.
var outDir string

func main() {
	exp := flag.String("exp", "all", "experiment: fig2|fig3|tablei|fig5|fig6|tableii|fig7|cooling|design|scaling|all")
	resFlag := flag.String("res", "medium", "thermal resolution: coarse|medium|full")
	maps := flag.Bool("maps", false, "print ASCII thermal maps where available")
	out := flag.String("outdir", "", "directory for SVG/CSV artifacts (optional)")
	reportPath := flag.String("report", "", "write a full markdown reproduction report to this file and exit")
	solverFlag := flag.String("solver", "cg", "thermal linear solver for every experiment: cg|mgpcg|mg")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	sweep.SetDefaultWorkers(*workers)
	solver, err := thermal.ParseSolver(*solverFlag)
	if err != nil {
		fatal(err)
	}
	experiments.SetDefaultSolver(solver)
	res, err := parseRes(*resFlag)
	if err != nil {
		fatal(err)
	}
	outDir = *out
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *reportPath != "" {
		md, err := report.Generate(res)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
		return
	}
	runners := map[string]func(experiments.Resolution, bool) error{
		"fig2":    runFig2,
		"fig3":    func(experiments.Resolution, bool) error { return runFig3() },
		"tablei":  func(experiments.Resolution, bool) error { return runTableI() },
		"fig5":    runFig5,
		"fig6":    runFig6,
		"tableii": runTableII,
		"fig7":    runFig7,
		"cooling": runCooling,
		"design":  runDesign,
		"scaling": runScaling,
	}
	order := []string{"fig2", "fig3", "tablei", "fig5", "fig6", "tableii", "fig7", "cooling", "design", "scaling"}
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		order = []string{*exp}
	}
	for _, name := range order {
		start := time.Now()
		if err := runners[name](res, *maps); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func parseRes(s string) (experiments.Resolution, error) {
	switch s {
	case "coarse":
		return experiments.Coarse, nil
	case "medium":
		return experiments.Medium, nil
	case "full":
		return experiments.Full, nil
	default:
		return 0, fmt.Errorf("unknown resolution %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}

func f1(x float64) string { return strconv.FormatFloat(x, 'f', 1, 64) }
func f2(x float64) string { return strconv.FormatFloat(x, 'f', 2, 64) }

func runFig2(res experiments.Resolution, maps bool) error {
	r, err := experiments.Fig2DieVsPackage(res)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 2 — die vs package profile, non-optimized design+mapping")
	fmt.Println("(paper: die 66.1/55.9 °C ∇6.6; package 46.4/42.9 °C ∇0.5)")
	err = render.Table(os.Stdout,
		[]string{"plane", "θmax(°C)", "θavg(°C)", "∇θmax(°C/mm)"},
		[][]string{
			{"Die", f1(r.Die.MaxC), f1(r.Die.MeanC), f2(r.Die.MaxGradCPerMM)},
			{"Package", f1(r.Pkg.MaxC), f1(r.Pkg.MeanC), f2(r.Pkg.MaxGradCPerMM)},
		})
	if err != nil {
		return err
	}
	if maps {
		fmt.Println("die map:")
		if err := render.ASCIIMap(os.Stdout, r.Grid, r.DieMap); err != nil {
			return err
		}
	}
	if err := saveSVG("fig2_die", r.Grid, r.DieMap); err != nil {
		return err
	}
	if err := saveSVG("fig2_package", r.Grid, r.PkgMap); err != nil {
		return err
	}
	return saveCSV("fig2_die", r.Grid, r.DieMap)
}

func runFig3() error {
	rows := experiments.Fig3NormalizedExecTime()
	fmt.Println("Fig. 3 — execution time normalized to the 2x QoS limit (>1 violates)")
	hdr := []string{"benchmark"}
	for _, c := range workload.Fig3Configs() {
		hdr = append(hdr, fmt.Sprintf("(%d,%d)", c.Cores, c.Threads))
	}
	var table [][]string
	for _, r := range rows {
		row := []string{r.Bench}
		for _, v := range r.NormToQoS {
			row = append(row, f2(v))
		}
		table = append(table, row)
	}
	return render.Table(os.Stdout, hdr, table)
}

func runTableI() error {
	fmt.Println("Table I — C-state power of the Xeon E5 v4 (all 8 cores)")
	var rows [][]string
	for _, r := range experiments.TableICStatePower() {
		rows = append(rows, []string{
			r.State.String(), r.Latency,
			f1(r.PowerW[0]), f1(r.PowerW[1]), f1(r.PowerW[2]),
		})
	}
	return render.Table(os.Stdout,
		[]string{"state", "latency", "W@2.6GHz", "W@2.9GHz", "W@3.2GHz"}, rows)
}

func runFig5(res experiments.Resolution, maps bool) error {
	rows, err := experiments.Fig5Orientation(res)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 5 — thermosyphon orientation study, all cores loaded")
	fmt.Println("(paper: Design1 E-W pkg 52.7 ∇0.33, die 73.2; Design2 N-S pkg 53.5 ∇0.43, die 79.4)")
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Orientation.String(),
			f1(r.Die.MaxC), f1(r.Die.MeanC), f2(r.Die.MaxGradCPerMM),
			f1(r.Pkg.MaxC), f1(r.Pkg.MeanC), f2(r.Pkg.MaxGradCPerMM),
		})
	}
	if err := render.Table(os.Stdout,
		[]string{"orientation", "die θmax", "die θavg", "die ∇θmax", "pkg θmax", "pkg θavg", "pkg ∇θmax"},
		table); err != nil {
		return err
	}
	if maps {
		for _, r := range rows {
			if r.Orientation.Horizontal() {
				fmt.Printf("package map (%v):\n", r.Orientation)
				g := gridFor(res)
				if err := render.ASCIIMap(os.Stdout, g, r.PkgMap); err != nil {
					return err
				}
				break
			}
		}
	}
	return nil
}

func runFig6(res experiments.Resolution, _ bool) error {
	rows, err := experiments.Fig6MappingScenarios(res)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 6 — three 4-core mappings × idle C-state (die plane)")
	fmt.Println("(paper θmax: POLL 68.2/65.0/77.6; C1 57.1/64.2/73.3)")
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Scenario, r.Idle.String(),
			f1(r.Die.MaxC), f1(r.Die.MeanC), f2(r.Die.MaxGradCPerMM),
		})
	}
	return render.Table(os.Stdout,
		[]string{"scenario", "idle", "θmax(°C)", "θavg(°C)", "∇θmax(°C/mm)"}, table)
}

func runTableII(res experiments.Resolution, _ bool) error {
	rows, err := experiments.TableIIPolicyComparison(res, nil)
	if err != nil {
		return err
	}
	fmt.Println("Table II — hot spots and gradients per approach and QoS (13-benchmark average)")
	fmt.Println("(paper die θmax: Proposed 78.3/72.2/68.4; [8]+[27]+[9] 83.0/79.5/77.8; [8]+[27]+[7] 83.0/80.5/79.1)")
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Approach.String(), r.QoS.String(),
			f1(r.DieMaxC), f2(r.DieGradCPerMM),
			f1(r.PkgMaxC), f2(r.PkgGradCPerMM),
			f1(r.AvgPowerW),
		})
	}
	return render.Table(os.Stdout,
		[]string{"approach", "QoS", "die θmax", "die ∇θmax", "pkg θmax", "pkg ∇θmax", "avg W"}, table)
}

func runFig7(res experiments.Resolution, maps bool) error {
	r, err := experiments.Fig7ThermalMaps(res)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 7 — sample die maps at 2x QoS (paper: proposed 71.5 °C vs SoA 78.2 °C)")
	fmt.Printf("proposed (%s): %.1f °C   state of the art: %.1f °C   gap %.1f °C\n",
		r.ProposedBench, r.ProposedMax, r.SoAMax, r.SoAMax-r.ProposedMax)
	if maps {
		g := gridFor(res)
		fmt.Println("proposed:")
		if err := render.ASCIIMap(os.Stdout, g, r.ProposedMap); err != nil {
			return err
		}
		fmt.Println("state of the art:")
		if err := render.ASCIIMap(os.Stdout, g, r.SoAMap); err != nil {
			return err
		}
	}
	g := gridFor(res)
	if err := saveSVG("fig7_proposed", g, r.ProposedMap); err != nil {
		return err
	}
	return saveSVG("fig7_soa", g, r.SoAMap)
}

func runCooling(res experiments.Resolution, _ bool) error {
	r, err := experiments.CoolingPowerStudy(res)
	if err != nil {
		return err
	}
	fmt.Println("§VIII-B — cooling power (paper: 20 °C water needed without the mapping; ≥45% chiller reduction)")
	return render.Table(os.Stdout,
		[]string{"approach", "water in (°C)", "water ΔT (°C)", "Eq.(1) P (W)", "chiller P (W)"},
		[][]string{
			{"Proposed", f1(r.ProposedWaterC), f2(r.ProposedDeltaT), f1(r.ProposedBudget.Eq1PowerW), f1(r.ProposedBudget.ChillerPowerW)},
			{"[8]+[27]+[9]", f1(r.BaselineWaterC), f2(r.BaselineDeltaT), f1(r.BaselineBudget.Eq1PowerW), f1(r.BaselineBudget.ChillerPowerW)},
			{"reduction", "", "", fmt.Sprintf("%.1f%%", r.ReductionEq1*100), fmt.Sprintf("%.1f%%", r.ReductionChiller*100)},
		})
}

// scalingSizes picks the grid-resolution ladder for the solver-scaling
// extension: modest at coarse/medium so the Jacobi-CG reference stays
// affordable, up to the 256×256 rack-scale grids at -res full.
func scalingSizes(res experiments.Resolution) []int {
	switch res {
	case experiments.Coarse:
		return []int{16, 32, 64}
	case experiments.Medium:
		return []int{32, 64, 128}
	default:
		return []int{64, 128, 256}
	}
}

func runScaling(res experiments.Resolution, _ bool) error {
	cells, err := experiments.ExtResolutionScaling(scalingSizes(res), nil)
	if err != nil {
		return err
	}
	fmt.Println("extension — solver scaling with grid resolution (full-load steady solve per size)")
	var table [][]string
	for _, c := range cells {
		table = append(table, []string{
			fmt.Sprintf("%d×%d", c.NX, c.NY), strconv.Itoa(c.Unknowns), c.Solver,
			f1(c.DieMaxC), strconv.Itoa(c.OuterIters), strconv.Itoa(c.LinIters),
			strconv.Itoa(c.Applies), fmt.Sprintf("%.1f", c.WallMS),
		})
	}
	return render.Table(os.Stdout,
		[]string{"grid", "unknowns", "solver", "die θmax", "outer", "lin iters", "applies", "wall ms"}, table)
}

func runDesign(res experiments.Resolution, _ bool) error {
	r, err := experiments.DesignSpaceStudy(res)
	if err != nil {
		return err
	}
	fmt.Println("§VI-B/C — design space (paper choice: R236fa @ 55% fill, 7 kg/h @ 30 °C)")
	var table [][]string
	for _, p := range r.Points {
		table = append(table, []string{
			p.Fluid, f2(p.FillingRatio), f1(p.DieMaxC), f1(p.TCaseC),
			strconv.Itoa(p.DryoutCells), strconv.FormatBool(p.Feasible),
		})
	}
	if err := render.Table(os.Stdout,
		[]string{"fluid", "fill", "die θmax", "TCASE", "dryout cells", "feasible"}, table); err != nil {
		return err
	}
	fmt.Printf("best feasible: %s @ %.2f (die %.1f °C)\n", r.Best.Fluid, r.Best.FillingRatio, r.Best.DieMaxC)
	fmt.Printf("water selection: %.0f kg/h @ %.0f °C (TCASE %.1f °C, limit 85)\n",
		r.WaterSelection.FlowKgH, r.WaterSelection.WaterInC, r.WaterSelection.TCaseC)
	return nil
}

// saveSVG writes an SVG heat map artifact when -outdir is set.
func saveSVG(name string, grid floorplan.Grid, temps []float64) error {
	if outDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(outDir, name+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return render.SVGMap(f, grid, temps, render.SVGOptions{})
}

// saveCSV writes a CSV map artifact when -outdir is set.
func saveCSV(name string, grid floorplan.Grid, temps []float64) error {
	if outDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(outDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return render.CSVMap(f, grid, temps)
}

func gridFor(res experiments.Resolution) floorplan.Grid {
	pg := floorplan.XeonE5Package()
	switch res {
	case experiments.Coarse:
		return floorplan.NewGrid(19, 15, pg.Width, pg.Height)
	case experiments.Medium:
		return floorplan.NewGrid(38, 30, pg.Width, pg.Height)
	default:
		return floorplan.NewGrid(76, 60, pg.Width, pg.Height)
	}
}
