package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestSelectExperimentsAllMatchesRegistry(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	names := experiments.Names()
	if len(all) != len(names) {
		t.Fatalf("-exp all selected %d experiments, registry has %d", len(all), len(names))
	}
	// Run order is the registry order itself — there is no second list to
	// drift out of sync.
	for i, e := range all {
		if e.Name != names[i] {
			t.Fatalf("order[%d] = %q, registry order has %q", i, e.Name, names[i])
		}
	}
}

func TestSelectExperimentsByName(t *testing.T) {
	sel, err := selectExperiments("fig6")
	if err != nil || len(sel) != 1 || sel[0].Name != "fig6" {
		t.Fatalf("selectExperiments(fig6) = %v, %v", sel, err)
	}
	sel, err = selectExperiments("tablei, fig3")
	if err != nil || len(sel) != 2 || sel[0].Name != "tablei" || sel[1].Name != "fig3" {
		t.Fatalf("comma selection = %v, %v", sel, err)
	}
	if _, err := selectExperiments("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRegistryServesPaperCatalog(t *testing.T) {
	// Every experiment the pre-registry dispatch served must stay
	// reachable by its old -exp name.
	for _, name := range []string{"fig2", "fig3", "tablei", "fig5", "fig6", "tableii", "fig7", "cooling", "design", "scaling"} {
		if _, ok := experiments.Lookup(name); !ok {
			t.Fatalf("experiment %q missing from the registry", name)
		}
	}
}

func TestRunTableIText(t *testing.T) {
	var buf bytes.Buffer
	sel, err := selectExperiments("tablei")
	if err != nil {
		t.Fatal(err)
	}
	if err := runSelected(context.Background(), &buf, sel, experiments.At(experiments.Coarse), false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "POLL") {
		t.Fatalf("Table I output wrong:\n%s", out)
	}
}

func TestRunFig6CoarseText(t *testing.T) {
	var buf bytes.Buffer
	sel, err := selectExperiments("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if err := runSelected(context.Background(), &buf, sel, experiments.At(experiments.Coarse), false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 6", "scenario1-staggered", "scenario3-clustered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sel, err := selectExperiments("tablei,fig3")
	if err != nil {
		t.Fatal(err)
	}
	if err := runSelected(context.Background(), &buf, sel, experiments.At(experiments.Coarse), true, false); err != nil {
		t.Fatal(err)
	}
	var results []experiments.Result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, buf.String())
	}
	if len(results) != 2 || results[0].Name != "tablei" || results[1].Name != "fig3" {
		t.Fatalf("unexpected results envelope: %+v", results)
	}
	for _, r := range results {
		if len(r.Tables) == 0 || len(r.Tables[0].Rows) == 0 {
			t.Fatalf("%s: empty tables in JSON output", r.Name)
		}
	}
}

func TestRunMapsASCII(t *testing.T) {
	var buf bytes.Buffer
	sel, err := selectExperiments("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if err := runSelected(context.Background(), &buf, sel, experiments.At(experiments.Coarse), false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig2_die:") {
		t.Fatalf("ASCII map header missing:\n%s", buf.String())
	}
}

func TestDirSink(t *testing.T) {
	dir := t.TempDir()
	cfg := experiments.At(experiments.Coarse)
	cfg.Artifacts = dirSink(dir)
	sel, err := selectExperiments("fig2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runSelected(context.Background(), &buf, sel, cfg, false, false); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2_die.svg", "fig2_die.csv", "fig2_package.svg", "fig2_package.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("artifact %s missing: %v", f, err)
		}
	}
}
