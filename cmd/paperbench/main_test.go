package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestParseRes(t *testing.T) {
	for s, want := range map[string]experiments.Resolution{
		"coarse": experiments.Coarse,
		"medium": experiments.Medium,
		"full":   experiments.Full,
	} {
		got, err := parseRes(s)
		if err != nil || got != want {
			t.Fatalf("parseRes(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseRes("nope"); err == nil {
		t.Fatal("expected error for unknown resolution")
	}
}

func TestGridFor(t *testing.T) {
	for _, res := range []experiments.Resolution{experiments.Coarse, experiments.Medium, experiments.Full} {
		g := gridFor(res)
		if g.NX <= 0 || g.NY <= 0 || g.DX <= 0 || g.DY <= 0 {
			t.Fatalf("gridFor(%v) = %+v", res, g)
		}
	}
}

func TestRunTableI(t *testing.T) {
	out := captureStdout(t, runTableI)
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "POLL") {
		t.Fatalf("Table I output wrong:\n%s", out)
	}
}

func TestRunFig3(t *testing.T) {
	out := captureStdout(t, runFig3)
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "benchmark") {
		t.Fatalf("Fig. 3 output wrong:\n%s", out)
	}
}

func TestRunFig6Coarse(t *testing.T) {
	out := captureStdout(t, func() error { return runFig6(experiments.Coarse, false) })
	for _, want := range []string{"Fig. 6", "scenario1-staggered", "scenario3-clustered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig5Coarse(t *testing.T) {
	out := captureStdout(t, func() error { return runFig5(experiments.Coarse, false) })
	if !strings.Contains(out, "Fig. 5") || !strings.Contains(out, "orientation") {
		t.Fatalf("Fig. 5 output wrong:\n%s", out)
	}
}
