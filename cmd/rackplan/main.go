// Command rackplan plans a two-phase-cooled fleet end to end: build an
// N-rack × M-blade topology over shared chiller water loops, load the
// blades with the PARSEC roster, run the nested datacenter fixed point
// (loop supply temperatures coupled to blade heat, leakage included), and
// cost the chiller plant including the facility PUE.
//
// Usage:
//
//	rackplan -racks 4 -blades 8 -loops 2 -water 27 -res coarse
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/datacenter"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/render"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	racks := flag.Int("racks", 2, "number of racks in the fleet")
	blades := flag.Int("blades", 4, "number of CPU blades per rack")
	loops := flag.Int("loops", 1, "number of shared water loops (racks are assigned round-robin)")
	waterC := flag.Float64("water", 27, "chiller supply setpoint at zero load (°C)")
	resFlag := flag.String("res", "coarse", "thermal resolution: coarse|medium|full")
	solverFlag := flag.String("solver", "cg", "thermal linear solver: cg|mgpcg|mg|mgpcg32|mgpcg-cheb (mgpcg pays off on fine grids)")
	workers := flag.Int("workers", 0, "parallel blade-class solves (0 = GOMAXPROCS, 1 = serial)")
	threads := flag.Int("threads", 0, "intra-solve threads per blade solve (0 = GOMAXPROCS, 1 = serial)")
	faultFlag := flag.String("fault", "", "cooling-fault scenario, e.g. pump:0.5 or bladeloss:0.6:loop0:r0b0 (see internal/faults)")
	flag.Parse()
	if err := run(*racks, *blades, *loops, *resFlag, *waterC, *solverFlag, *workers, *threads, *faultFlag); err != nil {
		fmt.Fprintln(os.Stderr, "rackplan:", err)
		os.Exit(1)
	}
}

// bladeRows caps the per-blade table: fleets past this size collapse to
// one row per blade class (the rows would repeat anyway — identical
// blades produce identical operating points).
const bladeRows = 32

func run(racks, blades, loops int, resFlag string, waterC float64, solverFlag string, workers, threads int, faultFlag string) error {
	if racks < 1 {
		return fmt.Errorf("-racks must be at least 1, got %d", racks)
	}
	if blades < 1 {
		return fmt.Errorf("-blades must be at least 1, got %d", blades)
	}
	if waterC < 0 {
		return fmt.Errorf("-water must be non-negative, got %g °C", waterC)
	}
	res, err := experiments.ParseResolution(resFlag)
	if err != nil {
		return err
	}
	solver, err := thermal.ParseSolver(solverFlag)
	if err != nil {
		return err
	}
	scenario, err := faults.Parse(faultFlag)
	if err != nil {
		return fmt.Errorf("-fault: %w", err)
	}

	// The fleet runs the PARSEC roster round-robin: each blade fully
	// loaded with one benchmark at FMax, POLL idles.
	wcfg := workload.Config{Cores: 8, Threads: 8, Freq: power.FMax}
	m := experiments.FullLoadMapping(wcfg, power.POLL)
	benches := workload.All()
	states := make([]power.PackageState, len(benches))
	for i, b := range benches {
		states[i] = core.PackageState(b, m)
	}
	loop := rack.SharedLoop{
		SetpointC:       waterC,
		ApproachKPerKW:  0.3,
		PerBladeFlowKgH: 7,
		AmbientC:        35,
	}
	topo, err := datacenter.Uniform(racks, blades, loops, loop, states)
	if err != nil {
		return err
	}

	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), res)
	if err != nil {
		return err
	}
	s, err := datacenter.New(sys, topo, datacenter.Options{
		Solver:   solver,
		Workers:  workers,
		Threads:  threads,
		Leakage:  power.DefaultLeakage(),
		Scenario: &scenario,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	rep, err := s.Solve(context.Background())
	if err != nil {
		return err
	}

	fmt.Printf("%d blades in %d racks over %d loops (%d blade classes)\n",
		topo.NumBlades(), racks, loops, rep.Classes)
	fmt.Printf("outer fixed point: %d iterations, residual %.4f °C, converged %v\n",
		rep.OuterIterations, rep.ResidualC, rep.Converged)
	if !scenario.Empty() {
		fmt.Printf("fault scenario %q: damping %.2f after %d halving(s), %d solver escalation(s)\n",
			rep.Scenario, rep.FinalDamping, rep.DampingHalvings, rep.Escalations)
		if rep.ThrottledBlades > 0 {
			fmt.Printf("degraded mode: %d blade(s) throttled, deepest %d DVFS step(s)\n",
				rep.ThrottledBlades, rep.MaxThrottleSteps)
		}
		for _, b := range rep.Infeasible {
			fmt.Printf("INFEASIBLE %s (%s, rack %d slot %d): %s\n", b.Name, b.Loop, b.Rack, b.Slot, b.Reason)
		}
	}
	fmt.Println()

	// Per-blade operating points; big fleets collapse to per-class rows.
	if len(rep.Blades) <= bladeRows {
		var rows [][]string
		for i, b := range rep.Blades {
			rows = append(rows, []string{
				b.Name, benches[i%len(benches)].Name,
				fmt.Sprintf("%.1f", b.HeatW),
				fmt.Sprintf("%.1f", b.DieMaxC),
				fmt.Sprintf("%.1f", b.TCaseC),
			})
		}
		if err := render.Table(os.Stdout,
			[]string{"blade", "bench", "W", "die θmax", "TCASE"}, rows); err != nil {
			return err
		}
	} else {
		type cls struct {
			b     datacenter.BladeReport
			bench string
			count int
		}
		var (
			order []string
			byB   = map[string]*cls{}
		)
		for i, b := range rep.Blades {
			bench := benches[i%len(benches)].Name
			c, ok := byB[bench]
			if !ok {
				c = &cls{b: b, bench: bench}
				byB[bench] = c
				order = append(order, bench)
			}
			c.count++
		}
		var rows [][]string
		for _, bench := range order {
			c := byB[bench]
			rows = append(rows, []string{
				c.bench, strconv.Itoa(c.count),
				fmt.Sprintf("%.1f", c.b.HeatW),
				fmt.Sprintf("%.1f", c.b.DieMaxC),
				fmt.Sprintf("%.1f", c.b.TCaseC),
			})
		}
		if err := render.Table(os.Stdout,
			[]string{"bench", "blades", "W each", "die θmax", "TCASE"}, rows); err != nil {
			return err
		}
	}

	// Per-loop converged water states.
	fmt.Println()
	var loopRows [][]string
	for _, l := range rep.Loops {
		loopRows = append(loopRows, []string{
			l.Name, strconv.Itoa(l.Blades),
			fmt.Sprintf("%.0f", l.State.HeatW),
			fmt.Sprintf("%.2f", l.State.SupplyC),
			fmt.Sprintf("%.2f", l.State.ReturnC),
			fmt.Sprintf("%.0f", l.State.FlowKgH),
		})
	}
	if err := render.Table(os.Stdout,
		[]string{"loop", "blades", "heat W", "supply °C", "return °C", "flow kg/h"}, loopRows); err != nil {
		return err
	}

	fmt.Printf("\nplant: %.0f W IT, %.0f W chiller (mean COP %.0f), hottest die %.1f °C\n",
		rep.ITPowerW, rep.Plant.ChillerPowerW, rep.Plant.MeanCOP, rep.MaxDieC)
	fmt.Printf("facility PUE: %.3f (paper's prototype 1.05)\n", rep.Plant.PUE)
	return nil
}
