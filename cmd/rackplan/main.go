// Command rackplan exercises the rack-level problem of §V end to end:
// allocate a workload mix across blades, co-schedule the apps sharing each
// CPU with the joint Algorithm 1 planner, simulate every blade, and cost
// the shared chiller loop including the facility PUE.
//
// Usage:
//
//	rackplan -blades 4 -qos 2 -res coarse
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/chiller"
	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/experiments"
	"repro/internal/rack"
	"repro/internal/render"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	blades := flag.Int("blades", 4, "number of CPU blades in the rack")
	qosFlag := flag.Float64("qos", 2, "QoS degradation limit for every app")
	resFlag := flag.String("res", "coarse", "thermal resolution: coarse|medium|full")
	waterC := flag.Float64("water", 30, "shared loop water temperature (°C)")
	solverFlag := flag.String("solver", "cg", "thermal linear solver: cg|mgpcg|mg (mgpcg pays off on fine grids)")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = serial)")
	threads := flag.Int("threads", 0, "intra-solve threads for the blade solves (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	if err := run(*blades, workload.QoS(*qosFlag), *resFlag, *waterC, *solverFlag, *workers, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "rackplan:", err)
		os.Exit(1)
	}
}

func run(blades int, qos workload.QoS, resFlag string, waterC float64, solverFlag string, workers, threads int) error {
	res, err := experiments.ParseResolution(resFlag)
	if err != nil {
		return err
	}
	solver, err := thermal.ParseSolver(solverFlag)
	if err != nil {
		return err
	}

	// 1. Allocate the PARSEC mix across blades (LPT balancing).
	var apps []rack.App
	for _, b := range workload.All() {
		apps = append(apps, rack.App{Bench: b, QoS: qos})
	}
	assignments, err := rack.Allocate(apps, blades)
	if err != nil {
		return err
	}
	fmt.Printf("%d apps over %d blades, imbalance %.1f W\n\n", len(apps), blades, rack.Imbalance(assignments))

	// 2. Joint-plan and simulate each blade. The blades share one design
	// and are solved in a fixed serial order, so one warm-started solve
	// session carries each blade's converged field into the next solve.
	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), res)
	if err != nil {
		return err
	}
	// The blade loop is serial by design (warm-start carry), so the
	// intra-solve team is where this command's parallelism lives.
	ses := sys.NewSession(cosim.WithSolver(solver), cosim.WithThreads(threads))
	defer ses.Close()
	op := thermosyphon.Operating{WaterInC: waterC, WaterFlowKgH: 7}
	var (
		rows      [][]string
		bladeHeat []float64
		totalIT   float64
	)
	for _, a := range assignments {
		if len(a.Apps) == 0 {
			bladeHeat = append(bladeHeat, 0)
			continue
		}
		// Co-schedule as many apps as jointly fit the core budget and
		// QoS constraints; the remainder queue behind them (batch
		// semantics).
		var (
			specs []core.AppSpec
			plan  core.MultiPlan
		)
		maxCo := len(a.Apps)
		if maxCo > 4 {
			maxCo = 4
		}
		for k := maxCo; k >= 1; k-- {
			specs = specs[:0]
			for _, app := range a.Apps[:k] {
				specs = append(specs, core.AppSpec{Bench: app.Bench, QoS: app.QoS})
			}
			var perr error
			plan, perr = core.PlanMulti(specs, sweep.Workers(workers))
			if perr == nil {
				break
			}
			if k == 1 {
				return fmt.Errorf("blade %d: %w", a.CPU, perr)
			}
		}
		st := core.PackageStateMulti(plan)
		result, err := ses.SolveSteady(nil, st, op)
		if err != nil {
			return fmt.Errorf("blade %d: %w", a.CPU, err)
		}
		die, err := sys.DieStats(result)
		if err != nil {
			return err
		}
		bladeHeat = append(bladeHeat, result.TotalPowerW)
		totalIT += result.TotalPowerW
		names := ""
		for i, s := range specs {
			if i > 0 {
				names += "+"
			}
			names += s.Bench.Name
		}
		rows = append(rows, []string{
			strconv.Itoa(a.CPU), names,
			fmt.Sprintf("%.1f GHz", float64(plan.Freq)),
			strconv.Itoa(plan.UsedCores()),
			fmt.Sprintf("%.1f", result.TotalPowerW),
			fmt.Sprintf("%.1f", die.MaxC),
			fmt.Sprintf("%.1f", sys.TCase(result)),
		})
	}
	if err := render.Table(os.Stdout,
		[]string{"blade", "apps (first 4 co-run)", "freq", "cores", "W", "die θmax", "TCASE"}, rows); err != nil {
		return err
	}

	// 3. Cost the shared loop and report PUE.
	loop := rack.SharedLoop{WaterInC: waterC, PerBladeFlowKgH: 7, AmbientC: 35}
	budget, err := loop.Cost(bladeHeat)
	if err != nil {
		return err
	}
	pue, err := chiller.ThermosyphonPUE(totalIT, waterC, 35)
	if err != nil {
		return err
	}
	air, err := chiller.AirCooledPUE(totalIT)
	if err != nil {
		return err
	}
	fmt.Printf("\nshared loop: %.1f W heat, ΔT %.2f °C, Eq.(1) %.1f W, chiller %.1f W\n",
		budget.HeatW, budget.WaterDeltaT, budget.Eq1PowerW, budget.ChillerPowerW)
	fmt.Printf("rack PUE with thermosyphons: %.3f (air-cooled reference %.3f, paper's prototype 1.05)\n", pue, air)
	return nil
}
