package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestRackplanRuns(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(2, 4, 1, "coarse", 27, "cg", 0, 1, "")
	})
	for _, want := range []string{
		"8 blades in 2 racks over 1 loops",
		"outer fixed point:",
		"converged true",
		"plant:",
		"facility PUE:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRackplanClassRollup: fleets past the per-blade table cap collapse
// to one row per benchmark class, with populations summing to the fleet.
func TestRackplanClassRollup(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(5, 8, 2, "coarse", 27, "cg", 0, 1, "")
	})
	for _, want := range []string{"40 blades in 5 racks over 2 loops", "blades", "W each"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRackplanFlagValidation: every malformed flag combination must be
// rejected with an error naming the offending flag, before any solving.
func TestRackplanFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"zero racks", func() error { return run(0, 4, 1, "coarse", 27, "cg", 0, 1, "") }, "-racks"},
		{"zero blades", func() error { return run(2, 0, 1, "coarse", 27, "cg", 0, 1, "") }, "-blades"},
		{"negative water", func() error { return run(2, 4, 1, "coarse", -5, "cg", 0, 1, "") }, "-water"},
		{"unknown resolution", func() error { return run(2, 4, 1, "nope", 27, "cg", 0, 1, "") }, "nope"},
		{"unknown solver", func() error { return run(2, 4, 1, "coarse", 27, "nope", 0, 1, "") }, "nope"},
		{"more loops than racks", func() error { return run(2, 4, 3, "coarse", 27, "cg", 0, 1, "") }, "loop count"},
		{"zero loops", func() error { return run(2, 4, 0, "coarse", 27, "cg", 0, 1, "") }, "loop count"},
		{"bad fault spec", func() error { return run(2, 4, 1, "coarse", 27, "cg", 0, 1, "meteor:0.5") }, "-fault"},
		{"fault severity 1", func() error { return run(2, 4, 1, "coarse", 27, "cg", 0, 1, "pump:1.0") }, "-fault"},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRackplanFaultFlag: a -fault scenario must print the scenario
// summary (damping, halvings, escalations) and still reach the plant
// section — and a blade-scoped fault must heat the fleet.
func TestRackplanFaultFlag(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(2, 4, 1, "coarse", 27, "cg", 0, 1, "pump:0.5,fouling:0.3")
	})
	for _, want := range []string{
		`fault scenario "pump:0.5,fouling:0.3"`,
		"halving(s)",
		"solver escalation(s)",
		"facility PUE:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRackplanWorkersFlag: a serial run and a pooled run (with
// intra-solve threads) must print byte-identical reports — the datacenter
// layer's outer-loop determinism contract, surfaced at the CLI.
func TestRackplanWorkersFlag(t *testing.T) {
	testRackplanWorkersFlag(t, "cg")
}

// TestRackplanWorkersFlagMGPCG repeats the serial-vs-pooled byte-equality
// check with the multigrid-preconditioned solver selected: a fixed solver
// choice must keep the determinism contract.
func TestRackplanWorkersFlagMGPCG(t *testing.T) {
	testRackplanWorkersFlag(t, "mgpcg")
}

func testRackplanWorkersFlag(t *testing.T, solver string) {
	withWorkers := func(n int) string {
		return captureStdout(t, func() error {
			return run(2, 4, 2, "coarse", 27, solver, n, 2, "")
		})
	}
	serial := withWorkers(1)
	pooled := withWorkers(4)
	if serial != pooled {
		t.Fatalf("worker count changed the report:\nserial:\n%s\npooled:\n%s", serial, pooled)
	}
}
