package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/workload"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestRackplanRuns(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(4, workload.QoS2x, "coarse", 30, "cg", 0, 1)
	})
	for _, want := range []string{
		"13 apps over 4 blades",
		"shared loop:",
		"rack PUE with thermosyphons:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRackplanBadResolution(t *testing.T) {
	if err := run(4, workload.QoS2x, "nope", 30, "cg", 0, 1); err == nil {
		t.Fatal("expected error for unknown resolution")
	}
	if err := run(4, workload.QoS2x, "coarse", 30, "nope", 0, 1); err == nil {
		t.Fatal("expected error for unknown solver")
	}
}

// TestRackplanWorkersFlag exercises the -workers knob the command passes
// explicitly into the planner's sweep pool: a serial run and a pooled run
// must print byte-identical reports (the sweep engine's determinism
// contract). The knob is per-call — there is no process-wide state left
// to set.
func TestRackplanWorkersFlag(t *testing.T) {
	testRackplanWorkersFlag(t, "cg")
}

// TestRackplanWorkersFlagMGPCG repeats the serial-vs-pooled byte-equality
// check with the multigrid-preconditioned solver selected: a fixed solver
// choice must keep the determinism contract.
func TestRackplanWorkersFlagMGPCG(t *testing.T) {
	testRackplanWorkersFlag(t, "mgpcg")
}

func testRackplanWorkersFlag(t *testing.T, solver string) {
	withWorkers := func(n int) string {
		return captureStdout(t, func() error {
			return run(2, workload.QoS2x, "coarse", 30, solver, n, 2)
		})
	}
	serial := withWorkers(1)
	pooled := withWorkers(4)
	if serial != pooled {
		t.Fatalf("worker count changed the report:\nserial:\n%s\npooled:\n%s", serial, pooled)
	}
}
