package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/workload"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestRackplanRuns(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(4, workload.QoS2x, "coarse", 30)
	})
	for _, want := range []string{
		"13 apps over 4 blades",
		"shared loop:",
		"rack PUE with thermosyphons:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRackplanBadResolution(t *testing.T) {
	if err := run(4, workload.QoS2x, "nope", 30); err == nil {
		t.Fatal("expected error for unknown resolution")
	}
}
