// Command thermservd is the thermal digital-twin daemon: a long-running
// HTTP/JSON service over the warm solve stack, with session leasing,
// response memoization, bounded admission (429 backpressure), circuit
// breaking, crash-safe transient checkpointing, and graceful drain on
// SIGTERM/SIGINT.
//
// Usage:
//
//	thermservd -addr :8080 -res medium -solver mgpcg
//	thermservd -addr :8080 -checkpoint /var/lib/thermservd/ckpt.json -checkpoint-every 30s -restore
//	curl -s localhost:8080/v1/steady -d '{"benchmark":"x264"}'
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST localhost:8080/v1/experiments/tablei
//
// Endpoints:
//
//	POST /v1/steady                steady what-if proposal → θ, cooling, feasibility
//	POST /v1/transient             register a blade for transient stepping
//	GET  /v1/transient             list registered blades
//	GET  /v1/transient/{b}         blade status
//	POST /v1/transient/{b}/step    advance a power-trace chunk (seq = exactly-once)
//	DELETE /v1/transient/{b}       release a blade
//	GET  /v1/experiments           the experiment catalog
//	POST /v1/experiments/{name}    run one experiment, Result JSON
//	POST /v1/checkpoint            snapshot the transient registry now
//	GET  /v1/stats                 cache/admission/resilience counters
//	GET  /healthz                  liveness (503 while draining)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/thermal"
)

// options collects every daemon knob; flags parse into one and tests
// construct one directly.
type options struct {
	Addr            string
	Resolution      string
	Solver          string
	Workers         int
	Threads         int
	Queue           int
	Sessions        int
	Memo            int
	Transients      int
	Carry           bool
	Timeout         time.Duration
	DrainWait       time.Duration
	CheckpointPath  string
	CheckpointEvery time.Duration
	Restore         bool
}

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", ":8080", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&o.Resolution, "res", "coarse", "default thermal resolution: coarse|medium|full")
	flag.StringVar(&o.Solver, "solver", "cg", "default linear solver: cg|mgpcg|mg|mgpcg32|mgpcg-cheb")
	flag.IntVar(&o.Workers, "workers", 0, "max concurrent solves (0 = auto split of GOMAXPROCS)")
	flag.IntVar(&o.Threads, "threads", 0, "threads per solve session (0 = auto split)")
	flag.IntVar(&o.Queue, "queue", 0, "admission queue depth before 429 (0 = 2×workers)")
	flag.IntVar(&o.Sessions, "sessions", 0, "warm session cache capacity (0 = 64)")
	flag.IntVar(&o.Memo, "memo", 0, "response memo capacity (0 = 4096)")
	flag.IntVar(&o.Transients, "transients", 0, "max registered transient blades (0 = 16)")
	flag.BoolVar(&o.Carry, "carry", false, "carry warm starts across solves on a session (faster nearby re-solves, recomputed bodies only tolerance-identical)")
	flag.DurationVar(&o.Timeout, "timeout", 0, "per-request solve deadline (0 = none), e.g. 30s")
	flag.DurationVar(&o.DrainWait, "drain", 30*time.Second, "max wait for in-flight requests on shutdown")
	flag.StringVar(&o.CheckpointPath, "checkpoint", "", "transient checkpoint file (empty = checkpointing off); snapshots on drain and on POST /v1/checkpoint")
	flag.DurationVar(&o.CheckpointEvery, "checkpoint-every", 0, "periodic checkpoint interval (0 = only on drain/demand)")
	flag.BoolVar(&o.Restore, "restore", false, "restore the transient registry from -checkpoint at boot")
	flag.Parse()

	if err := run(o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "thermservd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until SIGTERM/SIGINT (or ready is
// closed with a test-driven shutdown; ready, when non-nil, receives the
// bound address once the listener is up).
func run(o options, ready chan<- string) error {
	res, err := experiments.ParseResolution(o.Resolution)
	if err != nil {
		return err
	}
	solver, err := thermal.ParseSolver(o.Solver)
	if err != nil {
		return err
	}
	if o.Restore && o.CheckpointPath == "" {
		return fmt.Errorf("-restore requires -checkpoint")
	}
	s, err := serve.New(serve.Config{
		Resolution:      res,
		Solver:          solver,
		Workers:         o.Workers,
		Threads:         o.Threads,
		QueueDepth:      o.Queue,
		Sessions:        o.Sessions,
		MemoEntries:     o.Memo,
		Transients:      o.Transients,
		CarryWarmStart:  o.Carry,
		RequestTimeout:  o.Timeout,
		CheckpointPath:  o.CheckpointPath,
		CheckpointEvery: o.CheckpointEvery,
		RestoreOnStart:  o.Restore,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	cfg := s.Config()
	fmt.Printf("thermservd listening on %s (res=%s solver=%s workers=%d threads=%d)\n",
		ln.Addr(), res, solver, cfg.Workers, cfg.Threads)
	if o.Restore {
		fmt.Printf("thermservd: restored %d transient blade(s) from %s\n",
			s.Snapshot().CheckpointBladesRestored, o.CheckpointPath)
	}

	// Register the signal handler before announcing readiness: a SIGTERM
	// racing the startup must drain, not kill.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Printf("thermservd: %v, draining\n", sig)
	case err := <-errc:
		return err
	}

	// Drain: refuse new work first so kept-alive clients see 503 instead
	// of a reset, then let Shutdown wait out in-flight requests, then
	// retire the cached sessions (taking the final checkpoint, when one is
	// configured, before the blades close).
	s.BeginDrain()
	ctx, cancel := experiments.WithTimeout(context.Background(), o.DrainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := s.Close(); err != nil {
		return err
	}
	fmt.Println("thermservd: drained, bye")
	return nil
}
