// Command thermservd is the thermal digital-twin daemon: a long-running
// HTTP/JSON service over the warm solve stack, with session leasing,
// response memoization, bounded admission (429 backpressure), and
// graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	thermservd -addr :8080 -res medium -solver mgpcg
//	curl -s localhost:8080/v1/steady -d '{"benchmark":"x264"}'
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST localhost:8080/v1/experiments/tablei
//
// Endpoints:
//
//	POST /v1/steady                steady what-if proposal → θ, cooling, feasibility
//	POST /v1/transient             register a blade for transient stepping
//	GET  /v1/transient             list registered blades
//	GET  /v1/transient/{b}         blade status
//	POST /v1/transient/{b}/step    advance a power-trace chunk
//	DELETE /v1/transient/{b}       release a blade
//	GET  /v1/experiments           the experiment catalog
//	POST /v1/experiments/{name}    run one experiment, Result JSON
//	GET  /v1/stats                 cache/admission counters
//	GET  /healthz                  liveness (503 while draining)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/thermal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	resFlag := flag.String("res", "coarse", "default thermal resolution: coarse|medium|full")
	solverFlag := flag.String("solver", "cg", "default linear solver: cg|mgpcg|mg|mgpcg32|mgpcg-cheb")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = auto split of GOMAXPROCS)")
	threads := flag.Int("threads", 0, "threads per solve session (0 = auto split)")
	queue := flag.Int("queue", 0, "admission queue depth before 429 (0 = 2×workers)")
	sessions := flag.Int("sessions", 0, "warm session cache capacity (0 = 64)")
	memoN := flag.Int("memo", 0, "response memo capacity (0 = 4096)")
	transients := flag.Int("transients", 0, "max registered transient blades (0 = 16)")
	carry := flag.Bool("carry", false, "carry warm starts across solves on a session (faster nearby re-solves, recomputed bodies only tolerance-identical)")
	timeout := flag.Duration("timeout", 0, "per-request solve deadline (0 = none), e.g. 30s")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()

	if err := run(*addr, *resFlag, *solverFlag, *workers, *threads, *queue,
		*sessions, *memoN, *transients, *carry, *timeout, *drainWait, nil); err != nil {
		fmt.Fprintln(os.Stderr, "thermservd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until SIGTERM/SIGINT (or ready is
// closed with a test-driven shutdown; ready, when non-nil, receives the
// bound address once the listener is up).
func run(addr, resFlag, solverFlag string, workers, threads, queue,
	sessions, memoN, transients int, carry bool, timeout, drainWait time.Duration,
	ready chan<- string) error {
	res, err := experiments.ParseResolution(resFlag)
	if err != nil {
		return err
	}
	solver, err := thermal.ParseSolver(solverFlag)
	if err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Resolution:     res,
		Solver:         solver,
		Workers:        workers,
		Threads:        threads,
		QueueDepth:     queue,
		Sessions:       sessions,
		MemoEntries:    memoN,
		Transients:     transients,
		CarryWarmStart: carry,
		RequestTimeout: timeout,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	cfg := s.Config()
	fmt.Printf("thermservd listening on %s (res=%s solver=%s workers=%d threads=%d)\n",
		ln.Addr(), res, solver, cfg.Workers, cfg.Threads)

	// Register the signal handler before announcing readiness: a SIGTERM
	// racing the startup must drain, not kill.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Printf("thermservd: %v, draining\n", sig)
	case err := <-errc:
		return err
	}

	// Drain: refuse new work first so kept-alive clients see 503 instead
	// of a reset, then let Shutdown wait out in-flight requests, then
	// retire the cached sessions.
	s.BeginDrain()
	ctx, cancel := experiments.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := s.Close(); err != nil {
		return err
	}
	fmt.Println("thermservd: drained, bye")
	return nil
}
