package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonEndToEnd boots the daemon on an ephemeral port, exercises the
// steady and experiments endpoints over a real socket, then drives the
// SIGTERM drain path to a clean exit.
func TestDaemonEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "coarse", "cg", 1, 1, 4, 0, 0, 0, false,
			time.Minute, 30*time.Second, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/steady", "application/json",
		strings.NewReader(`{"benchmark":"x264"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steady: %d %s", resp.StatusCode, body)
	}
	var steady struct {
		DieMaxC  float64 `json:"die_max_c"`
		Feasible bool    `json:"feasible"`
	}
	if err := json.Unmarshal(body, &steady); err != nil {
		t.Fatalf("steady JSON: %v", err)
	}
	if steady.DieMaxC <= 30 {
		t.Fatalf("die max %.1f", steady.DieMaxC)
	}

	resp, err = http.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Experiments []struct{ Name string } `json:"experiments"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("experiments JSON: %v", err)
	}
	if len(list.Experiments) == 0 {
		t.Fatal("empty experiment catalog")
	}

	// SIGTERM → drain → clean exit.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	if err := run("127.0.0.1:0", "ultra", "cg", 0, 0, 0, 0, 0, 0, false, 0, time.Second, nil); err == nil {
		t.Fatal("bad resolution accepted")
	}
	if err := run("127.0.0.1:0", "coarse", "gauss", 0, 0, 0, 0, 0, 0, false, 0, time.Second, nil); err == nil {
		t.Fatal("bad solver accepted")
	}
	if err := run("256.0.0.1:99999", "coarse", "cg", 0, 0, 0, 0, 0, 0, false, 0, time.Second, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
