package main

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// testOptions is the coarse single-worker daemon config the end-to-end
// tests boot with.
func testOptions() options {
	return options{
		Addr:       "127.0.0.1:0",
		Resolution: "coarse",
		Solver:     "cg",
		Workers:    1,
		Threads:    1,
		Queue:      4,
		Timeout:    time.Minute,
		DrainWait:  30 * time.Second,
	}
}

// bootDaemon starts run(o) in a goroutine and waits for the bound address.
func bootDaemon(t *testing.T, o options) (addr string, done chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done = make(chan error, 1)
	go func() { done <- run(o, ready) }()
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return addr, done
}

// sigtermDrain drives the SIGTERM drain path to a clean exit.
func sigtermDrain(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, exercises the
// steady and experiments endpoints over a real socket, then drives the
// SIGTERM drain path to a clean exit.
func TestDaemonEndToEnd(t *testing.T) {
	addr, done := bootDaemon(t, testOptions())
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/steady", "application/json",
		strings.NewReader(`{"benchmark":"x264"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steady: %d %s", resp.StatusCode, body)
	}
	var steady struct {
		DieMaxC  float64 `json:"die_max_c"`
		Feasible bool    `json:"feasible"`
	}
	if err := json.Unmarshal(body, &steady); err != nil {
		t.Fatalf("steady JSON: %v", err)
	}
	if steady.DieMaxC <= 30 {
		t.Fatalf("die max %.1f", steady.DieMaxC)
	}

	resp, err = http.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Experiments []struct{ Name string } `json:"experiments"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("experiments JSON: %v", err)
	}
	if len(list.Experiments) == 0 {
		t.Fatal("empty experiment catalog")
	}

	sigtermDrain(t, done)
}

// TestDaemonCheckpointRestore runs the operator workflow end to end: boot
// with a checkpoint path, register a blade and stream a chunk, drain (the
// final snapshot), then boot a second daemon with -restore and check the
// blade resumes at its exact checkpointed time.
func TestDaemonCheckpointRestore(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	o := testOptions()
	o.CheckpointPath = ckpt

	addr, done := bootDaemon(t, o)
	base := "http://" + addr
	resp, err := http.Post(base+"/v1/transient", "application/json",
		strings.NewReader(`{"blade":"b0","benchmark":"x264"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/transient/b0/step", "application/json",
		strings.NewReader(`{"seq":1,"dt_s":0.25,"steps":[{},{}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d", resp.StatusCode)
	}
	sigtermDrain(t, done)

	o.Restore = true
	addr, done = bootDaemon(t, o)
	base = "http://" + addr
	resp, err = http.Get(base + "/v1/transient/b0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored blade status: %d %s", resp.StatusCode, body)
	}
	var st struct {
		TimeS float64 `json:"time_s"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.TimeS != 0.5 {
		t.Fatalf("restored time_s = %v, want 0.5", st.TimeS)
	}
	sigtermDrain(t, done)
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	bad := func(mutate func(*options)) options {
		o := testOptions()
		o.Workers, o.Threads, o.Queue, o.Timeout = 0, 0, 0, 0
		mutate(&o)
		return o
	}
	if err := run(bad(func(o *options) { o.Resolution = "ultra" }), nil); err == nil {
		t.Fatal("bad resolution accepted")
	}
	if err := run(bad(func(o *options) { o.Solver = "gauss" }), nil); err == nil {
		t.Fatal("bad solver accepted")
	}
	if err := run(bad(func(o *options) { o.Addr = "256.0.0.1:99999" }), nil); err == nil {
		t.Fatal("bad address accepted")
	}
	if err := run(bad(func(o *options) { o.Restore = true }), nil); err == nil {
		t.Fatal("-restore without -checkpoint accepted")
	}
}
