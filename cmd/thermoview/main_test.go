package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/workload"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestThermoviewProposed(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("x264", workload.QoS2x, "proposed", "coarse", "none", "cg")
	})
	for _, want := range []string{"x264 @2x via proposed", "die: θmax", "pkg: θmax", "Tsat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestThermoviewBaselineCSV(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("canneal", workload.QoS3x, "coskun", "coarse", "csv", "cg")
	})
	if !strings.Contains(out, "canneal @3x via coskun") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, ",") {
		t.Fatal("no CSV map emitted")
	}
}

// TestThermoviewWorkersFlag exercises the -workers override: the rendered
// map must be byte-identical whatever the worker count. thermoview's
// single solve is serial today, so this is a parity guard — it starts
// pulling real weight as soon as any library path under run() adopts the
// sweep pool.
func TestThermoviewWorkersFlag(t *testing.T) {
	testThermoviewWorkersFlag(t, "cg")
}

// TestThermoviewWorkersFlagMGPCG repeats the parity guard with the
// multigrid solver selected via -solver.
func TestThermoviewWorkersFlagMGPCG(t *testing.T) {
	testThermoviewWorkersFlag(t, "mgpcg")
}

func testThermoviewWorkersFlag(t *testing.T, solver string) {
	withWorkers := func(n int) string {
		sweep.SetDefaultWorkers(n)
		defer sweep.SetDefaultWorkers(0)
		return captureStdout(t, func() error {
			return run("x264", workload.QoS2x, "proposed", "coarse", "csv", solver)
		})
	}
	serial := withWorkers(1)
	pooled := withWorkers(4)
	if serial != pooled {
		t.Fatalf("worker count changed the output:\nserial:\n%s\npooled:\n%s", serial, pooled)
	}
}

func TestThermoviewErrors(t *testing.T) {
	cases := []struct{ bench, policy, res, format, solver string }{
		{"nope", "proposed", "coarse", "none", "cg"},
		{"x264", "nope", "coarse", "none", "cg"},
		{"x264", "proposed", "nope", "none", "cg"},
		{"x264", "proposed", "coarse", "nope", "cg"},
		{"x264", "proposed", "coarse", "none", "nope"},
	}
	for _, c := range cases {
		if err := run(c.bench, workload.QoS2x, c.policy, c.res, c.format, c.solver); err == nil {
			t.Fatalf("expected error for %+v", c)
		}
	}
}
