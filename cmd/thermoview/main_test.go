package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/workload"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return string(out)
}

func TestThermoviewProposed(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("x264", workload.QoS2x, "proposed", "coarse", "none", "cg", 1)
	})
	for _, want := range []string{"x264 @2x via proposed", "die: θmax", "pkg: θmax", "Tsat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestThermoviewBaselineCSV(t *testing.T) {
	out := captureStdout(t, func() error {
		return run("canneal", workload.QoS3x, "coskun", "coarse", "csv", "cg", 1)
	})
	if !strings.Contains(out, "canneal @3x via coskun") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, ",") {
		t.Fatal("no CSV map emitted")
	}
}

// TestThermoviewDeterministic renders the same map twice per solver: for
// any fixed solver choice the output must be byte-identical run to run
// (the repository-wide determinism contract — no map-iteration-order or
// scratch-state leakage into the rendered report).
func TestThermoviewDeterministic(t *testing.T) {
	for _, solver := range []string{"cg", "mgpcg"} {
		render := func() string {
			return captureStdout(t, func() error {
				return run("x264", workload.QoS2x, "proposed", "coarse", "csv", solver, 2)
			})
		}
		if a, b := render(), render(); a != b {
			t.Fatalf("%s: repeated runs differ:\nfirst:\n%s\nsecond:\n%s", solver, a, b)
		}
	}
}

func TestThermoviewErrors(t *testing.T) {
	cases := []struct{ bench, policy, res, format, solver string }{
		{"nope", "proposed", "coarse", "none", "cg"},
		{"x264", "nope", "coarse", "none", "cg"},
		{"x264", "proposed", "nope", "none", "cg"},
		{"x264", "proposed", "coarse", "nope", "cg"},
		{"x264", "proposed", "coarse", "none", "nope"},
	}
	for _, c := range cases {
		if err := run(c.bench, workload.QoS2x, c.policy, c.res, c.format, c.solver, 1); err == nil {
			t.Fatalf("expected error for %+v", c)
		}
	}
}
