// Command thermoview runs one benchmark through a chosen policy stack and
// renders the resulting die thermal map with its statistics — the
// interactive companion to cmd/paperbench.
//
// Usage:
//
//	thermoview -bench x264 -qos 2 -policy proposed -res medium
//	thermoview -bench canneal -qos 3 -policy sabry -format csv > map.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/experiments"
	"repro/internal/render"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	benchName := flag.String("bench", "x264", "PARSEC benchmark name")
	qosFlag := flag.Float64("qos", 2, "QoS degradation limit (1, 2 or 3)")
	policy := flag.String("policy", "proposed", "policy stack: proposed|coskun|sabry")
	resFlag := flag.String("res", "medium", "thermal resolution: coarse|medium|full")
	format := flag.String("format", "ascii", "map output: ascii|csv|pgm|none")
	solverFlag := flag.String("solver", "cg", "thermal linear solver: cg|mgpcg|mg|mgpcg32|mgpcg-cheb (mgpcg pays off on fine grids)")
	threads := flag.Int("threads", 0, "intra-solve threads for the single solve (0 = GOMAXPROCS, 1 = serial)")
	// Accepted for CLI parity with the other tools so existing invocations
	// keep working; thermoview's single solve never fans out, so the value
	// is unused.
	_ = flag.Int("workers", 0, "accepted for compatibility; thermoview performs a single solve")
	flag.Parse()

	if err := run(*benchName, workload.QoS(*qosFlag), *policy, *resFlag, *format, *solverFlag, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "thermoview:", err)
		os.Exit(1)
	}
}

func run(benchName string, qos workload.QoS, policy, resFlag, format, solverFlag string, threads int) error {
	bench, err := workload.ByName(benchName)
	if err != nil {
		return err
	}
	res, err := experiments.ParseResolution(resFlag)
	if err != nil {
		return err
	}
	solver, err := thermal.ParseSolver(solverFlag)
	if err != nil {
		return err
	}

	design := thermosyphon.DefaultDesign()
	var mapping core.Mapping
	switch policy {
	case "proposed":
		mapping, err = core.Plan(bench, qos)
	case "coskun":
		design = baselines.SeuretDesign()
		var cfg workload.Config
		cfg, err = baselines.PackAndCapConfig(bench, qos)
		if err == nil {
			mapping, err = baselines.CoskunMapping(bench, cfg)
		}
	case "sabry":
		design = baselines.SeuretDesign()
		var cfg workload.Config
		cfg, err = baselines.PackAndCapConfig(bench, qos)
		if err == nil {
			mapping, err = baselines.SabryMapping(bench, cfg, design.Orientation)
		}
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}
	if err != nil {
		return err
	}

	sys, err := experiments.NewSystem(design, res)
	if err != nil {
		return err
	}
	// A session (rather than the fresh-solve path) is what lets the
	// solver and thread selection reach the thermal workspace. A single
	// solve has no sweep to fan out, so the whole machine goes to the
	// intra-solve team.
	ses := sys.NewSession(cosim.WithSolver(solver), cosim.WithThreads(threads), cosim.CarryWarmStart(false))
	defer ses.Close()
	die, pkg, result, err := experiments.SolveMappingSession(nil, ses, bench, mapping, thermosyphon.DefaultOperating())
	if err != nil {
		return err
	}

	fmt.Printf("%s @%s via %s: config %v, actives %v, idle %v\n",
		bench.Name, qos, policy, mapping.Config, mapping.ActiveCores, mapping.IdleState)
	fmt.Printf("die: θmax %.1f °C θavg %.1f °C ∇θmax %.2f °C/mm\n", die.MaxC, die.MeanC, die.MaxGradCPerMM)
	fmt.Printf("pkg: θmax %.1f °C θavg %.1f °C ∇θmax %.2f °C/mm\n", pkg.MaxC, pkg.MeanC, pkg.MaxGradCPerMM)
	fmt.Printf("power %.1f W, Tsat %.1f °C, water out %.1f °C, refrigerant %.2f g/s (exit quality %.2f)\n",
		result.TotalPowerW, result.Syphon.Condenser.TsatC, result.Syphon.Condenser.WaterOutC,
		result.Syphon.Loop.MassFlowKgS*1e3, result.Syphon.Loop.ExitQuality)

	dieMap := sys.DieTemps(result)
	grid := sys.Thermal.Grid()
	switch format {
	case "ascii":
		return render.ASCIIMap(os.Stdout, grid, dieMap)
	case "csv":
		return render.CSVMap(os.Stdout, grid, dieMap)
	case "pgm":
		return render.PGM(os.Stdout, grid, dieMap)
	case "none":
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
