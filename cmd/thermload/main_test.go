package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestLoadAgainstInProcessServer drives the load client against an
// in-process thermservd handler and checks both report renderings.
func TestLoadAgainstInProcessServer(t *testing.T) {
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := serve.LoadConfig{
		BaseURL:     ts.URL,
		Requests:    30,
		Concurrency: 4,
		Keys:        3,
		Seed:        5,
	}
	var text bytes.Buffer
	rep, err := run(cfg, false, &text)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Completed == 0 {
		t.Fatalf("report: %+v", rep)
	}
	for _, want := range []string{"requests", "throughput", "latency", "cache", "statuses"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}
	if rep.StatusCounts["200"] != rep.Completed {
		t.Fatalf("status breakdown disagrees with completed count: %+v", rep)
	}

	var js bytes.Buffer
	if _, err := run(cfg, true, &js); err != nil {
		t.Fatal(err)
	}
	var parsed serve.LoadReport
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("JSON report: %v\n%s", err, js.String())
	}
	// A replay over the warmed 3-key pool is all hits.
	if parsed.Misses != 0 || parsed.HitRate != 1 {
		t.Fatalf("replay should be all hits: %+v", parsed)
	}
}

func TestLoadRejectsBadConfig(t *testing.T) {
	if _, err := run(serve.LoadConfig{Requests: 0}, false, &bytes.Buffer{}); err == nil {
		t.Fatal("zero requests accepted")
	}
}
