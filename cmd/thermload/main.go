// Command thermload is a deterministic open-loop load generator for
// thermservd: a fixed-seed key sequence over a configurable proposal pool
// (uniform or Zipf-skewed), paced at a target QPS, reporting latency
// percentiles, sustained throughput, and the warm-cache hit rate.
//
// Usage:
//
//	thermload -addr http://127.0.0.1:8080 -n 500 -qps 200 -c 8 -keys 16 -skew 1.2
//	thermload -addr http://127.0.0.1:8080 -n 200 -json
//
// Open-loop means arrivals are scheduled by the clock, not by responses:
// an arrival that finds every client slot busy is dropped and counted, so
// an overloaded server shows up as drops and 429s instead of silently
// stretching the arrival process (no coordinated omission).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "thermservd base URL")
	n := flag.Int("n", 200, "total requests")
	qps := flag.Float64("qps", 0, "open-loop arrival rate (0 = as fast as -c allows)")
	c := flag.Int("c", 4, "max in-flight requests")
	keys := flag.Int("keys", 16, "distinct proposals in the pool")
	skew := flag.Float64("skew", 0, "key popularity: >1 = Zipf exponent (hot head), else uniform")
	seed := flag.Int64("seed", 1, "PRNG seed for the key sequence")
	retries := flag.Int("retries", 0, "max retries per request for 429/503 refusals (0 = none)")
	resFlag := flag.String("res", "", "proposal resolution override (empty = server default)")
	solverFlag := flag.String("solver", "", "proposal solver override (empty = server default)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	rep, err := run(serve.LoadConfig{
		BaseURL:     *addr,
		Requests:    *n,
		QPS:         *qps,
		Concurrency: *c,
		Keys:        *keys,
		Skew:        *skew,
		Seed:        *seed,
		MaxRetries:  *retries,
		Resolution:  *resFlag,
		Solver:      *solverFlag,
	}, *asJSON, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermload:", err)
		os.Exit(1)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// run executes the load and renders the report to out.
func run(cfg serve.LoadConfig, asJSON bool, out io.Writer) (*serve.LoadReport, error) {
	rep, err := serve.RunLoad(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	if asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(out, string(b))
		return rep, nil
	}
	fmt.Fprintf(out, "requests   %d (completed %d, rejected %d, dropped %d, errors %d)\n",
		rep.Requests, rep.Completed, rep.Rejected, rep.Dropped, rep.Errors)
	fmt.Fprintf(out, "throughput %.1f req/s over %.2f s\n", rep.QPS, rep.WallS)
	fmt.Fprintf(out, "latency    p50 %.3f ms   p95 %.3f ms   p99 %.3f ms   max %.3f ms\n",
		rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs)
	fmt.Fprintf(out, "cache      %d hits / %d misses (hit rate %.1f%%)\n",
		rep.Hits, rep.Misses, 100*rep.HitRate)
	fmt.Fprintf(out, "statuses   %s   retries %d\n", formatStatuses(rep.StatusCounts), rep.Retries)
	return rep, nil
}

// formatStatuses renders the final-status breakdown sorted by code.
func formatStatuses(counts map[string]int) string {
	if len(counts) == 0 {
		return "none"
	}
	codes := make([]string, 0, len(counts))
	for c := range counts {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	parts := make([]string, 0, len(codes))
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%s×%d", c, counts[c]))
	}
	return strings.Join(parts, "  ")
}
