package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
)

func TestRosterComplete(t *testing.T) {
	names := map[string]bool{}
	for _, b := range All() {
		names[b.Name] = true
	}
	// The 13 PARSEC benchmarks of Fig. 3.
	for _, want := range []string{
		"blackscholes", "bodytrack", "facesim", "ferret", "fluidanimate",
		"freqmine", "raytrace", "swaptions", "vips", "x264",
		"canneal", "dedup", "streamcluster",
	} {
		if !names[want] {
			t.Fatalf("missing benchmark %q", want)
		}
	}
	if len(names) != 13 {
		t.Fatalf("got %d benchmarks, want 13", len(names))
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("x264")
	if err != nil || b.Name != "x264" {
		t.Fatalf("ByName(x264) = %v, %v", b, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestBaselineNormalizedTimeIsOne(t *testing.T) {
	base := Config{Cores: 8, Threads: 16, Freq: power.FMax}
	for _, b := range All() {
		if nt := b.NormalizedTime(base); math.Abs(nt-1) > 1e-12 {
			t.Fatalf("%s baseline normalized time = %v", b.Name, nt)
		}
		if b.ExecTime(base) != b.RefTime {
			t.Fatalf("%s baseline exec time = %v, want %v", b.Name, b.ExecTime(base), b.RefTime)
		}
	}
}

func TestFewerResourcesNeverFaster(t *testing.T) {
	for _, b := range All() {
		strong := Config{Cores: 8, Threads: 16, Freq: power.FMax}
		for _, weak := range []Config{
			{Cores: 2, Threads: 4, Freq: power.FMax},
			{Cores: 4, Threads: 8, Freq: power.FMax},
			{Cores: 8, Threads: 16, Freq: power.FMin},
			{Cores: 8, Threads: 8, Freq: power.FMax},
		} {
			if b.NormalizedTime(weak) < b.NormalizedTime(strong)-1e-12 {
				t.Fatalf("%s: %v faster than %v", b.Name, weak, strong)
			}
		}
	}
}

func TestFrequencyMonotone(t *testing.T) {
	for _, b := range All() {
		for nc := 1; nc <= 8; nc++ {
			c26 := Config{Cores: nc, Threads: nc, Freq: power.FMin}
			c32 := Config{Cores: nc, Threads: nc, Freq: power.FMax}
			if b.NormalizedTime(c32) > b.NormalizedTime(c26)+1e-12 {
				t.Fatalf("%s: higher frequency slower at Nc=%d", b.Name, nc)
			}
			if b.DynPerCore(c32) < b.DynPerCore(c26) {
				t.Fatalf("%s: dynamic power must rise with frequency", b.Name)
			}
		}
	}
}

func TestMemoryBoundBenefitsLessFromFrequency(t *testing.T) {
	// canneal (mem 0.70) should gain less from FMin→FMax than swaptions
	// (mem 0.05), at fixed cores/threads.
	canneal, _ := ByName("canneal")
	swaptions, _ := ByName("swaptions")
	gain := func(b Benchmark) float64 {
		lo := Config{Cores: 8, Threads: 16, Freq: power.FMin}
		hi := Config{Cores: 8, Threads: 16, Freq: power.FMax}
		return b.NormalizedTime(lo) / b.NormalizedTime(hi)
	}
	if gain(canneal) >= gain(swaptions) {
		t.Fatalf("canneal freq gain %v should be below swaptions %v", gain(canneal), gain(swaptions))
	}
}

func TestPackagePowerRangeMatchesPaper(t *testing.T) {
	// §V: package power spans 40.5–79.3 W over all configurations and
	// applications (profiled with POLL idles). The synthetic model must
	// land in that ballpark.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range All() {
		for _, c := range Configs() {
			if c.Cores < 2 {
				continue // paper's profiled configs start at 2 cores
			}
			p := b.PackagePower(c, power.POLL)
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
	}
	if lo < 36 || lo > 45 {
		t.Fatalf("min package power = %.1f W, want ≈40.5", lo)
	}
	if hi < 74 || hi > 84 {
		t.Fatalf("max package power = %.1f W, want ≈79.3", hi)
	}
}

func TestPackagePowerIdleStateOrdering(t *testing.T) {
	b, _ := ByName("bodytrack")
	c := Config{Cores: 4, Threads: 8, Freq: power.FMid}
	pPoll := b.PackagePower(c, power.POLL)
	pC1 := b.PackagePower(c, power.C1)
	pC1E := b.PackagePower(c, power.C1E)
	if !(pPoll > pC1 && pC1 > pC1E) {
		t.Fatalf("idle-state power ordering violated: %v %v %v", pPoll, pC1, pC1E)
	}
}

func TestConfigValid(t *testing.T) {
	good := []Config{
		{2, 4, power.FMax}, {8, 8, power.FMin}, {1, 1, power.FMid},
	}
	for _, c := range good {
		if !c.Valid() {
			t.Fatalf("%v should be valid", c)
		}
	}
	bad := []Config{
		{0, 0, power.FMax}, {9, 9, power.FMax}, {4, 6, power.FMax},
		{2, 4, 3.0}, {2, 8, power.FMax},
	}
	for _, c := range bad {
		if c.Valid() {
			t.Fatalf("%v should be invalid", c)
		}
	}
}

func TestConfigsEnumeration(t *testing.T) {
	cs := Configs()
	if len(cs) != 8*2*3 {
		t.Fatalf("got %d configs, want 48", len(cs))
	}
	for _, c := range cs {
		if !c.Valid() {
			t.Fatalf("enumerated invalid config %v", c)
		}
	}
}

func TestFig3Configs(t *testing.T) {
	cs := Fig3Configs()
	if len(cs) != 5 {
		t.Fatalf("Fig3 config count = %d", len(cs))
	}
	for _, c := range cs {
		if c.Freq != power.FMax {
			t.Fatalf("Fig3 configs are all at fmax, got %v", c)
		}
	}
}

func TestFig3Spread(t *testing.T) {
	// Fig. 3: at (2,4,fmax) most benchmarks exceed the 2x QoS limit
	// region (normalized time > 2), while (8,16,fmax) is 1 by definition
	// and (8,8,fmax) stays below 2x for everything.
	var above2 int
	for _, b := range All() {
		nt := b.NormalizedTime(Config{Cores: 2, Threads: 4, Freq: power.FMax})
		if nt > 2 {
			above2++
		}
		if nt < 1.5 {
			t.Fatalf("%s at (2,4,fmax) normalized %v, implausibly fast", b.Name, nt)
		}
		if n88 := b.NormalizedTime(Config{Cores: 8, Threads: 8, Freq: power.FMax}); n88 > 2 {
			t.Fatalf("%s at (8,8,fmax) = %v, should be < 2", b.Name, n88)
		}
	}
	if above2 < 6 {
		t.Fatalf("only %d benchmarks exceed 2x at (2,4,fmax); Fig. 3 shows most do", above2)
	}
}

func TestQoSSatisfied(t *testing.T) {
	b, _ := ByName("ferret")
	base := Config{Cores: 8, Threads: 16, Freq: power.FMax}
	if !QoS1x.Satisfied(b, base) {
		t.Fatal("baseline must satisfy 1x")
	}
	tiny := Config{Cores: 1, Threads: 1, Freq: power.FMin}
	if QoS1x.Satisfied(b, tiny) {
		t.Fatal("single slow core cannot satisfy 1x")
	}
	if !QoS3x.Satisfied(b, Config{Cores: 4, Threads: 8, Freq: power.FMax}) {
		t.Fatal("4c8t@fmax should satisfy 3x for ferret")
	}
}

func TestQoSString(t *testing.T) {
	if QoS2x.String() != "2x" {
		t.Fatalf("QoS2x = %q", QoS2x.String())
	}
}

func TestNewProfile(t *testing.T) {
	b, _ := ByName("vips")
	p := NewProfile(b)
	if len(p.Entries) != len(Configs()) {
		t.Fatalf("profile has %d entries", len(p.Entries))
	}
	for _, e := range p.Entries {
		if e.Power <= 0 || e.NormTime <= 0 {
			t.Fatalf("bad profile entry %+v", e)
		}
	}
}

func TestWorstCase(t *testing.T) {
	b, c := WorstCase()
	if !c.Valid() {
		t.Fatalf("worst case config invalid: %v", c)
	}
	// Worst case must use all cores at max frequency.
	if c.Cores != 8 || c.Freq != power.FMax {
		t.Fatalf("worst case should be 8 cores @ fmax, got %v (%s)", c, b.Name)
	}
	p := b.PackagePower(c, power.POLL)
	if p < 74 || p > 84 {
		t.Fatalf("worst-case power %.1f W out of expected band", p)
	}
}

func TestUncoreFreqBounds(t *testing.T) {
	for _, b := range All() {
		for _, c := range Configs() {
			uf := b.UncoreFreq(c)
			if uf < power.UncoreFreqMin-1e-12 || uf > power.UncoreFreqMax+1e-12 {
				t.Fatalf("%s %v uncore freq %v out of range", b.Name, c, uf)
			}
			la := b.LLCActivity(c)
			if la < 0 || la > 1 {
				t.Fatalf("%s LLC activity %v out of range", b.Name, la)
			}
		}
	}
}

// Property: more threads on the same cores never increases execution time,
// and SMT never doubles throughput.
func TestSMTProperty(t *testing.T) {
	f := func(bi uint8, nc8 uint8) bool {
		bs := All()
		b := bs[int(bi)%len(bs)]
		nc := 1 + int(nc8)%8
		one := Config{Cores: nc, Threads: nc, Freq: power.FMax}
		two := Config{Cores: nc, Threads: 2 * nc, Freq: power.FMax}
		t1 := b.NormalizedTime(one)
		t2 := b.NormalizedTime(two)
		if t2 > t1+1e-12 {
			return false // SMT slower than single-threaded
		}
		// SMT speedup bounded by 2.
		return t1/t2 <= 2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
