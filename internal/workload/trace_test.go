package workload

import (
	"testing"
	"time"
)

func TestSynthesizeTraceDeterministic(t *testing.T) {
	b, _ := ByName("facesim")
	a := SynthesizeTrace(b, 7)
	c := SynthesizeTrace(b, 7)
	if len(a.Phases) != len(c.Phases) {
		t.Fatal("same seed, different phase counts")
	}
	for i := range a.Phases {
		if a.Phases[i] != c.Phases[i] {
			t.Fatalf("phase %d differs between identical seeds", i)
		}
	}
	d := SynthesizeTrace(b, 8)
	same := len(a.Phases) == len(d.Phases)
	if same {
		for i := range a.Phases {
			if a.Phases[i] != d.Phases[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSynthesizeTraceValid(t *testing.T) {
	for _, b := range All() {
		tr := SynthesizeTrace(b, 1)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if tr.Phases[0].Name != "ramp" {
			t.Fatal("trace must start with a ramp")
		}
		if tr.Phases[len(tr.Phases)-1].Name != "cooldown" {
			t.Fatal("trace must end with a cooldown")
		}
		if tr.TotalDuration() <= 0 {
			t.Fatal("empty duration")
		}
	}
}

func TestTraceAt(t *testing.T) {
	b, _ := ByName("dedup")
	tr := Trace{
		Bench: b,
		Phases: []Phase{
			{Name: "a", Duration: 2 * time.Second, DynScale: 1, MemScale: 1},
			{Name: "b", Duration: 3 * time.Second, DynScale: 0.5, MemScale: 1},
		},
	}
	if got := tr.At(0); got.Name != "a" {
		t.Fatalf("At(0) = %s", got.Name)
	}
	if got := tr.At(2500 * time.Millisecond); got.Name != "b" {
		t.Fatalf("At(2.5s) = %s", got.Name)
	}
	// Past the end: steady tail on the last phase.
	if got := tr.At(time.Minute); got.Name != "b" {
		t.Fatalf("At(1m) = %s", got.Name)
	}
	var empty Trace
	if got := empty.At(0); got.Name != "idle" {
		t.Fatalf("empty trace At = %s", got.Name)
	}
}

func TestTraceValidate(t *testing.T) {
	b, _ := ByName("dedup")
	bad := []Trace{
		{Bench: b},
		{Bench: b, Phases: []Phase{{Name: "x", Duration: 0, DynScale: 1, MemScale: 1}}},
		{Bench: b, Phases: []Phase{{Name: "x", Duration: time.Second, DynScale: 5, MemScale: 1}}},
		{Bench: b, Phases: []Phase{{Name: "x", Duration: time.Second, DynScale: 1, MemScale: -1}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestMemoryBoundBenchmarksGetMemoryPhases(t *testing.T) {
	// canneal (mem 0.70) should synthesize more memory phases than
	// swaptions (mem 0.05) across a handful of seeds.
	canneal, _ := ByName("canneal")
	swaptions, _ := ByName("swaptions")
	count := func(b Benchmark) int {
		var n int
		for seed := int64(0); seed < 10; seed++ {
			tr := SynthesizeTrace(b, seed)
			for _, p := range tr.Phases {
				if len(p.Name) > 6 && p.Name[:6] == "memory" {
					n++
				}
			}
		}
		return n
	}
	if count(canneal) <= count(swaptions) {
		t.Fatal("memory-bound benchmark should synthesize more memory phases")
	}
}

func TestDiurnalTrace(t *testing.T) {
	tr := DiurnalTrace(24)
	if len(tr) != 24 {
		t.Fatalf("got %d hours", len(tr))
	}
	for h, f := range tr {
		if f < 0.3 || f > 1.0+1e-12 {
			t.Fatalf("hour %d factor %.3f outside [0.3, 1]", h, f)
		}
	}
	// Overnight valley, midday peak: 03:00 must sit at the floor, 15:00 at
	// the crest, and the morning ramp must be monotone.
	if tr[3] != tr[0] || tr[3] > 0.4 {
		t.Fatalf("overnight load %.3f should be the flat floor", tr[3])
	}
	if tr[15] < 0.99 {
		t.Fatalf("15:00 load %.3f should be the peak", tr[15])
	}
	for h := 8; h <= 15; h++ {
		if tr[h] < tr[h-1] {
			t.Fatalf("morning ramp not monotone at hour %d", h)
		}
	}
	// Deterministic, and wrapping past 24 h repeats the day.
	again := DiurnalTrace(48)
	for h := 0; h < 24; h++ {
		if again[h] != tr[h] || again[h+24] != tr[h] {
			t.Fatalf("hour %d: trace not deterministic/periodic", h)
		}
	}
	if DiurnalTrace(0) != nil {
		t.Fatal("non-positive hours must return nil")
	}
}
