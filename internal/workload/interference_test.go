package workload

import (
	"math"
	"testing"

	"repro/internal/power"
)

func TestPairSlowdownShape(t *testing.T) {
	im := DefaultInterference()
	canneal, _ := ByName("canneal")        // mem 0.70, cache 0.65
	swaptions, _ := ByName("swaptions")    // mem 0.05, cache 0.15
	streamcl, _ := ByName("streamcluster") // mem 0.65, cache 0.50

	// Two memory/cache-heavy co-runners interfere the most.
	heavy := im.PairSlowdown(canneal, streamcl)
	light := im.PairSlowdown(swaptions, swaptions)
	if heavy <= light {
		t.Fatalf("heavy pair %v should exceed light pair %v", heavy, light)
	}
	if heavy < 1.05 || heavy > 1.35 {
		t.Fatalf("heavy pair slowdown %v outside calibrated band", heavy)
	}
	if light < 1 || light > 1.02 {
		t.Fatalf("light pair slowdown %v outside band", light)
	}
	// Slowdowns are never speedups.
	for _, a := range All() {
		for _, b := range All() {
			if im.PairSlowdown(a, b) < 1 {
				t.Fatalf("%s vs %s: slowdown below 1", a.Name, b.Name)
			}
		}
	}
}

func TestSlowdownComposition(t *testing.T) {
	im := DefaultInterference()
	canneal, _ := ByName("canneal")
	dedup, _ := ByName("dedup")
	vips, _ := ByName("vips")
	solo := im.Slowdown(canneal, nil)
	if solo != 1 {
		t.Fatalf("no co-runners must mean no slowdown, got %v", solo)
	}
	one := im.Slowdown(canneal, []Benchmark{dedup})
	two := im.Slowdown(canneal, []Benchmark{dedup, vips})
	if !(two > one && one > 1) {
		t.Fatalf("slowdown must grow with co-runners: %v, %v", one, two)
	}
	// Damping: the second co-runner adds less than the first.
	first := one - 1
	second := two/one - 1
	if second >= first {
		t.Fatalf("second co-runner (%v) should add less than the first (%v)", second, first)
	}
}

func TestCoRunSatisfied(t *testing.T) {
	im := DefaultInterference()
	canneal, _ := ByName("canneal")
	streamcl, _ := ByName("streamcluster")
	// A configuration right at the solo 2x boundary must fail once a
	// heavy co-runner is added.
	var boundary Config
	found := false
	for _, c := range Configs() {
		nt := canneal.NormalizedTime(c)
		if nt > 1.85 && nt <= 2.0 {
			boundary, found = c, true
			break
		}
	}
	if !found {
		t.Skip("no boundary configuration in the space")
	}
	if !QoS2x.Satisfied(canneal, boundary) {
		t.Fatal("boundary config should pass solo")
	}
	if im.CoRunSatisfied(QoS2x, canneal, boundary, []Benchmark{streamcl}) {
		t.Fatal("boundary config must fail with a heavy co-runner")
	}
	// Generous configurations survive co-running.
	strong := Config{Cores: 8, Threads: 16, Freq: power.FMax}
	if !im.CoRunSatisfied(QoS2x, canneal, strong, []Benchmark{streamcl}) {
		t.Fatal("native config must survive interference at 2x")
	}
}

func TestSlowdownSymmetricPairs(t *testing.T) {
	im := DefaultInterference()
	a, _ := ByName("ferret")
	b, _ := ByName("facesim")
	// PairSlowdown is not required to be symmetric (victim sensitivity
	// differs), but both directions must be finite and ≥ 1.
	ab := im.PairSlowdown(a, b)
	ba := im.PairSlowdown(b, a)
	if math.IsNaN(ab) || math.IsNaN(ba) || ab < 1 || ba < 1 {
		t.Fatalf("degenerate pair slowdowns %v %v", ab, ba)
	}
}
