// Package workload provides the PARSEC 3.0 benchmark profile database used
// by the paper's evaluation: per-benchmark execution-time and power
// characteristics as a function of the assigned number of cores (Nc),
// threads (Nt) and frequency (f), plus the QoS model of §IV-B.
//
// The paper profiles the real benchmarks on a Xeon E5-2667 v4 with RAPL;
// that hardware is unavailable here, so the database is synthetic but
// calibrated so that (a) normalized execution times reproduce the spread of
// Fig. 3, and (b) total package power across all configurations and
// applications spans the paper's reported 40.5–79.3 W range (§V).
package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/power"
)

// Benchmark describes the performance/power character of one PARSEC
// workload. All power figures are per-core dynamic watts at FMax with one
// thread per core.
type Benchmark struct {
	Name string
	// SerialFrac is the Amdahl serial fraction of the program.
	SerialFrac float64
	// MemIntensity in [0,1]: fraction of runtime bound on memory; these
	// cycles do not contract with core frequency and drive the uncore.
	MemIntensity float64
	// CacheIntensity in [0,1]: LLC pressure, drives LLC power.
	CacheIntensity float64
	// DynPerCoreMax is the per-core dynamic power (W) at FMax.
	DynPerCoreMax float64
	// SMTYield in [0,1]: marginal throughput of a second hardware thread
	// on the same core (1 = perfect SMT scaling).
	SMTYield float64
	// RefTime is the native execution time with 8 cores / 16 threads at
	// FMax — the paper's QoS baseline.
	RefTime time.Duration
	// IdleTolerance is the per-application tolerable wake-up delay dᵢ for
	// idle cores (Algorithm 1 input), which gates C-state selection.
	IdleTolerance time.Duration
}

// parsec is the 13-benchmark PARSEC 3.0 roster of Fig. 3.
var parsec = []Benchmark{
	{Name: "blackscholes", SerialFrac: 0.02, MemIntensity: 0.10, CacheIntensity: 0.20, DynPerCoreMax: 2.05, SMTYield: 0.25, RefTime: 35 * time.Second, IdleTolerance: 50 * time.Microsecond},
	{Name: "bodytrack", SerialFrac: 0.08, MemIntensity: 0.25, CacheIntensity: 0.35, DynPerCoreMax: 2.15, SMTYield: 0.30, RefTime: 60 * time.Second, IdleTolerance: 10 * time.Microsecond},
	{Name: "canneal", SerialFrac: 0.15, MemIntensity: 0.70, CacheIntensity: 0.65, DynPerCoreMax: 1.55, SMTYield: 0.50, RefTime: 85 * time.Second, IdleTolerance: 200 * time.Microsecond},
	{Name: "dedup", SerialFrac: 0.10, MemIntensity: 0.55, CacheIntensity: 0.60, DynPerCoreMax: 1.95, SMTYield: 0.45, RefTime: 50 * time.Second, IdleTolerance: 100 * time.Microsecond},
	{Name: "facesim", SerialFrac: 0.05, MemIntensity: 0.45, CacheIntensity: 0.50, DynPerCoreMax: 2.30, SMTYield: 0.35, RefTime: 110 * time.Second, IdleTolerance: 50 * time.Microsecond},
	{Name: "ferret", SerialFrac: 0.04, MemIntensity: 0.35, CacheIntensity: 0.60, DynPerCoreMax: 2.40, SMTYield: 0.40, RefTime: 90 * time.Second, IdleTolerance: 20 * time.Microsecond},
	{Name: "fluidanimate", SerialFrac: 0.06, MemIntensity: 0.50, CacheIntensity: 0.45, DynPerCoreMax: 2.20, SMTYield: 0.35, RefTime: 75 * time.Second, IdleTolerance: 50 * time.Microsecond},
	{Name: "freqmine", SerialFrac: 0.10, MemIntensity: 0.30, CacheIntensity: 0.55, DynPerCoreMax: 2.85, SMTYield: 0.30, RefTime: 95 * time.Second, IdleTolerance: 10 * time.Microsecond},
	{Name: "raytrace", SerialFrac: 0.07, MemIntensity: 0.20, CacheIntensity: 0.40, DynPerCoreMax: 1.90, SMTYield: 0.30, RefTime: 80 * time.Second, IdleTolerance: 1 * time.Microsecond},
	{Name: "streamcluster", SerialFrac: 0.08, MemIntensity: 0.65, CacheIntensity: 0.50, DynPerCoreMax: 1.75, SMTYield: 0.50, RefTime: 100 * time.Second, IdleTolerance: 200 * time.Microsecond},
	{Name: "swaptions", SerialFrac: 0.01, MemIntensity: 0.05, CacheIntensity: 0.15, DynPerCoreMax: 2.90, SMTYield: 0.25, RefTime: 45 * time.Second, IdleTolerance: 1 * time.Microsecond},
	{Name: "vips", SerialFrac: 0.05, MemIntensity: 0.40, CacheIntensity: 0.50, DynPerCoreMax: 2.30, SMTYield: 0.40, RefTime: 65 * time.Second, IdleTolerance: 100 * time.Microsecond},
	{Name: "x264", SerialFrac: 0.12, MemIntensity: 0.30, CacheIntensity: 0.45, DynPerCoreMax: 3.00, SMTYield: 0.35, RefTime: 55 * time.Second, IdleTolerance: 20 * time.Microsecond},
}

// All returns the 13 PARSEC benchmarks sorted by name.
func All() []Benchmark {
	out := append([]Benchmark(nil), parsec...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named benchmark, or an error listing valid names.
func ByName(name string) (Benchmark, error) {
	for _, b := range parsec {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// WorstCase returns the benchmark/configuration pair with the highest total
// package power across the full configuration space: the design point for
// the thermosyphon (§VI-B considers the maximum workload).
func WorstCase() (Benchmark, Config) {
	var (
		bestB Benchmark
		bestC Config
		bestP = -1.0
	)
	for _, b := range parsec {
		for _, c := range Configs() {
			if p := b.PackagePower(c, power.POLL); p > bestP {
				bestP, bestB, bestC = p, b, c
			}
		}
	}
	return bestB, bestC
}

// effectiveThreads returns the throughput-equivalent thread count for Nt
// threads on Nc cores given the benchmark's SMT yield.
func (b Benchmark) effectiveThreads(nc, nt int) float64 {
	if nt <= nc {
		return float64(nt)
	}
	extra := float64(nt - nc)
	return float64(nc) + b.SMTYield*extra
}

// timeFactor is the raw relative execution time of a configuration:
// an Amdahl law over effective threads, with the memory-bound share of the
// runtime insensitive to core frequency.
func (b Benchmark) timeFactor(c Config) float64 {
	eff := b.effectiveThreads(c.Cores, c.Threads)
	par := (1 - b.SerialFrac) / eff
	// Memory contention: memory-bound apps lose a little parallel
	// efficiency per extra effective thread.
	contention := 1 + 0.04*b.MemIntensity*(eff-1)
	amdahl := b.SerialFrac + par*contention
	fScale := (1-b.MemIntensity)*float64(power.FMax)/float64(c.Freq) + b.MemIntensity
	return amdahl * fScale
}

// ExecTime returns the predicted execution time of the benchmark under the
// configuration.
func (b Benchmark) ExecTime(c Config) time.Duration {
	ref := b.timeFactor(Config{Cores: 8, Threads: 16, Freq: power.FMax})
	return time.Duration(float64(b.RefTime) * b.timeFactor(c) / ref)
}

// NormalizedTime returns ExecTime normalized to the native baseline
// (8 cores, 16 threads, FMax) — the x-axis quantity of Fig. 3 before
// dividing by the QoS limit.
func (b Benchmark) NormalizedTime(c Config) float64 {
	return b.timeFactor(c) / b.timeFactor(Config{Cores: 8, Threads: 16, Freq: power.FMax})
}

// DynPerCore returns the per-core dynamic power (W) of the benchmark at
// frequency f, accounting for SMT and for memory-bound stall cycles that
// draw less dynamic power.
func (b Benchmark) DynPerCore(c Config) float64 {
	base := b.DynPerCoreMax * power.DynScale(c.Freq)
	if c.Threads > c.Cores {
		base *= power.SMTDynFactor
	}
	// Stalled (memory-bound) cycles burn ~35% less dynamic power.
	return base * (1 - 0.35*b.MemIntensity)
}

// UncoreFreq returns the uncore frequency (GHz) the benchmark drives at the
// configuration: memory-intensive workloads on many cores saturate it.
func (b Benchmark) UncoreFreq(c Config) float64 {
	demand := b.MemIntensity * math.Sqrt(float64(c.Cores)/8.0)
	return power.UncoreFreqMin + (power.UncoreFreqMax-power.UncoreFreqMin)*math.Min(demand*1.6, 1)
}

// LLCActivity returns the LLC activity factor in [0,1] at the configuration.
func (b Benchmark) LLCActivity(c Config) float64 {
	return math.Min(b.CacheIntensity*(0.4+0.6*float64(c.Cores)/8.0), 1)
}

// PackagePower returns the total CPU package power (W) when the benchmark
// runs under configuration c with all inactive cores parked in idle.
func (b Benchmark) PackagePower(c Config, idle power.CState) float64 {
	active := float64(c.Cores) * (power.CStatePerCore(power.POLL, c.Freq) + b.DynPerCore(c))
	idleP := float64(8-c.Cores) * power.CStatePerCore(idle, c.Freq)
	return active + idleP + power.UncorePower(b.UncoreFreq(c)) + power.LLCPower(b.LLCActivity(c))
}
