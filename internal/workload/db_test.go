package workload

import (
	"testing"
	"time"
)

// TestDatabaseSanity validates every benchmark's profile fields against
// physical and modeling bounds; a bad entry would silently corrupt all
// downstream experiments.
func TestDatabaseSanity(t *testing.T) {
	for _, b := range All() {
		if b.Name == "" {
			t.Fatal("unnamed benchmark")
		}
		if b.SerialFrac < 0 || b.SerialFrac > 0.5 {
			t.Fatalf("%s: serial fraction %v implausible for PARSEC", b.Name, b.SerialFrac)
		}
		if b.MemIntensity < 0 || b.MemIntensity > 1 {
			t.Fatalf("%s: memory intensity %v out of range", b.Name, b.MemIntensity)
		}
		if b.CacheIntensity < 0 || b.CacheIntensity > 1 {
			t.Fatalf("%s: cache intensity %v out of range", b.Name, b.CacheIntensity)
		}
		if b.DynPerCoreMax < 1 || b.DynPerCoreMax > 4 {
			t.Fatalf("%s: %v W/core dynamic power outside the calibrated envelope", b.Name, b.DynPerCoreMax)
		}
		if b.SMTYield < 0.1 || b.SMTYield > 0.8 {
			t.Fatalf("%s: SMT yield %v implausible", b.Name, b.SMTYield)
		}
		if b.RefTime < 10*time.Second || b.RefTime > 10*time.Minute {
			t.Fatalf("%s: reference time %v outside PARSEC native range", b.Name, b.RefTime)
		}
		if b.IdleTolerance < 0 {
			t.Fatalf("%s: negative idle tolerance", b.Name)
		}
	}
}

// TestRosterDiversity: the policy comparison depends on the roster
// covering both POLL-bound and deep-sleep workloads, and both compute- and
// memory-bound extremes.
func TestRosterDiversity(t *testing.T) {
	var pollBound, deepSleep, computeBound, memoryBound int
	for _, b := range All() {
		if b.IdleTolerance < 2*time.Microsecond {
			pollBound++
		}
		if b.IdleTolerance >= 10*time.Microsecond {
			deepSleep++
		}
		if b.MemIntensity < 0.15 {
			computeBound++
		}
		if b.MemIntensity > 0.55 {
			memoryBound++
		}
	}
	if pollBound == 0 || deepSleep == 0 {
		t.Fatalf("roster lacks C-state diversity: %d POLL-bound, %d deep", pollBound, deepSleep)
	}
	if computeBound == 0 || memoryBound == 0 {
		t.Fatalf("roster lacks memory diversity: %d compute, %d memory", computeBound, memoryBound)
	}
}

// TestExecTimePositive: execution times must be positive over the whole
// configuration space.
func TestExecTimePositive(t *testing.T) {
	for _, b := range All() {
		for _, c := range Configs() {
			if et := b.ExecTime(c); et <= 0 {
				t.Fatalf("%s %v: exec time %v", b.Name, c, et)
			}
		}
	}
}
