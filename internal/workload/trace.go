package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Phase is one execution phase of a workload trace: for its duration the
// benchmark's dynamic power is scaled by DynScale and its memory demand by
// MemScale (PARSEC workloads alternate compute- and memory-heavy regions).
type Phase struct {
	Name     string
	Duration time.Duration
	// DynScale multiplies the per-core dynamic power (0.2 … 1.3).
	DynScale float64
	// MemScale multiplies the uncore/LLC demand (0.5 … 1.5).
	MemScale float64
}

// Trace is a phase-annotated execution of one benchmark, used by the
// runtime-control simulations to exercise time-varying power.
type Trace struct {
	Bench  Benchmark
	Phases []Phase
}

// TotalDuration returns the summed phase durations.
func (t Trace) TotalDuration() time.Duration {
	var d time.Duration
	for _, p := range t.Phases {
		d += p.Duration
	}
	return d
}

// At returns the phase active at the given elapsed time. Times beyond the
// trace return the last phase (steady tail).
func (t Trace) At(elapsed time.Duration) Phase {
	if len(t.Phases) == 0 {
		return Phase{Name: "idle", DynScale: 0, MemScale: 0, Duration: time.Second}
	}
	var acc time.Duration
	for _, p := range t.Phases {
		acc += p.Duration
		if elapsed < acc {
			return p
		}
	}
	return t.Phases[len(t.Phases)-1]
}

// Validate checks phase plausibility.
func (t Trace) Validate() error {
	if len(t.Phases) == 0 {
		return fmt.Errorf("workload: trace has no phases")
	}
	for i, p := range t.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("workload: phase %d has non-positive duration", i)
		}
		if p.DynScale < 0 || p.DynScale > 2 {
			return fmt.Errorf("workload: phase %d dyn scale %g implausible", i, p.DynScale)
		}
		if p.MemScale < 0 || p.MemScale > 2 {
			return fmt.Errorf("workload: phase %d mem scale %g implausible", i, p.MemScale)
		}
	}
	return nil
}

// SynthesizeTrace builds a deterministic phase trace for a benchmark: a
// ramp-up, alternating compute/memory phases whose balance follows the
// benchmark's memory intensity, and a cooldown. The same seed always
// yields the same trace.
func SynthesizeTrace(b Benchmark, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := Trace{Bench: b}
	tr.Phases = append(tr.Phases, Phase{
		Name:     "ramp",
		Duration: time.Duration(1+rng.Intn(3)) * time.Second,
		DynScale: 0.4,
		MemScale: 0.6,
	})
	n := 4 + rng.Intn(5)
	for i := 0; i < n; i++ {
		computeHeavy := rng.Float64() > b.MemIntensity
		p := Phase{Duration: time.Duration(2+rng.Intn(6)) * time.Second}
		if computeHeavy {
			p.Name = fmt.Sprintf("compute%d", i)
			p.DynScale = 0.9 + 0.3*rng.Float64()
			p.MemScale = 0.5 + 0.3*rng.Float64()
		} else {
			p.Name = fmt.Sprintf("memory%d", i)
			p.DynScale = 0.5 + 0.3*rng.Float64()
			p.MemScale = 1.0 + 0.5*rng.Float64()
		}
		tr.Phases = append(tr.Phases, p)
	}
	tr.Phases = append(tr.Phases, Phase{
		Name:     "cooldown",
		Duration: time.Duration(1+rng.Intn(2)) * time.Second,
		DynScale: 0.3,
		MemScale: 0.4,
	})
	return tr
}

// DiurnalTrace returns hourly fleet-load factors for a 24-hour datacenter
// day: a nightly valley, a morning ramp, a sustained business-hours
// plateau with a midday peak, and an evening tail — the canonical
// double-shoulder utilization curve of interactive fleets. Factors
// multiply the fleet's per-core dynamic power; the shape is a fixed
// closed form (a raised cosine over the working day on a base load), so
// the trace is deterministic and needs no seed. hours must be positive;
// values beyond 24 wrap around the day.
func DiurnalTrace(hours int) []float64 {
	if hours <= 0 {
		return nil
	}
	const (
		base = 0.35 // overnight floor of the load factor
		peak = 1.0  // business-hours crest
	)
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		hod := float64(h % 24)
		// Working day spans 07:00–23:00; the raised cosine peaks at 15:00.
		if hod < 7 || hod >= 23 {
			out[h] = base
			continue
		}
		x := (hod - 7) / 16 // 0 at 07:00, 1 at 23:00
		out[h] = base + (peak-base)*0.5*(1-math.Cos(2*math.Pi*x))
	}
	return out
}
