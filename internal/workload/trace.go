package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Phase is one execution phase of a workload trace: for its duration the
// benchmark's dynamic power is scaled by DynScale and its memory demand by
// MemScale (PARSEC workloads alternate compute- and memory-heavy regions).
type Phase struct {
	Name     string
	Duration time.Duration
	// DynScale multiplies the per-core dynamic power (0.2 … 1.3).
	DynScale float64
	// MemScale multiplies the uncore/LLC demand (0.5 … 1.5).
	MemScale float64
}

// Trace is a phase-annotated execution of one benchmark, used by the
// runtime-control simulations to exercise time-varying power.
type Trace struct {
	Bench  Benchmark
	Phases []Phase
}

// TotalDuration returns the summed phase durations.
func (t Trace) TotalDuration() time.Duration {
	var d time.Duration
	for _, p := range t.Phases {
		d += p.Duration
	}
	return d
}

// At returns the phase active at the given elapsed time. Times beyond the
// trace return the last phase (steady tail).
func (t Trace) At(elapsed time.Duration) Phase {
	if len(t.Phases) == 0 {
		return Phase{Name: "idle", DynScale: 0, MemScale: 0, Duration: time.Second}
	}
	var acc time.Duration
	for _, p := range t.Phases {
		acc += p.Duration
		if elapsed < acc {
			return p
		}
	}
	return t.Phases[len(t.Phases)-1]
}

// Validate checks phase plausibility.
func (t Trace) Validate() error {
	if len(t.Phases) == 0 {
		return fmt.Errorf("workload: trace has no phases")
	}
	for i, p := range t.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("workload: phase %d has non-positive duration", i)
		}
		if p.DynScale < 0 || p.DynScale > 2 {
			return fmt.Errorf("workload: phase %d dyn scale %g implausible", i, p.DynScale)
		}
		if p.MemScale < 0 || p.MemScale > 2 {
			return fmt.Errorf("workload: phase %d mem scale %g implausible", i, p.MemScale)
		}
	}
	return nil
}

// SynthesizeTrace builds a deterministic phase trace for a benchmark: a
// ramp-up, alternating compute/memory phases whose balance follows the
// benchmark's memory intensity, and a cooldown. The same seed always
// yields the same trace.
func SynthesizeTrace(b Benchmark, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := Trace{Bench: b}
	tr.Phases = append(tr.Phases, Phase{
		Name:     "ramp",
		Duration: time.Duration(1+rng.Intn(3)) * time.Second,
		DynScale: 0.4,
		MemScale: 0.6,
	})
	n := 4 + rng.Intn(5)
	for i := 0; i < n; i++ {
		computeHeavy := rng.Float64() > b.MemIntensity
		p := Phase{Duration: time.Duration(2+rng.Intn(6)) * time.Second}
		if computeHeavy {
			p.Name = fmt.Sprintf("compute%d", i)
			p.DynScale = 0.9 + 0.3*rng.Float64()
			p.MemScale = 0.5 + 0.3*rng.Float64()
		} else {
			p.Name = fmt.Sprintf("memory%d", i)
			p.DynScale = 0.5 + 0.3*rng.Float64()
			p.MemScale = 1.0 + 0.5*rng.Float64()
		}
		tr.Phases = append(tr.Phases, p)
	}
	tr.Phases = append(tr.Phases, Phase{
		Name:     "cooldown",
		Duration: time.Duration(1+rng.Intn(2)) * time.Second,
		DynScale: 0.3,
		MemScale: 0.4,
	})
	return tr
}
