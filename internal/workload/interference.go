package workload

import (
	"math"
)

// Co-scheduled applications share the LLC and the memory subsystem, so a
// joint placement (core.PlanMulti) slows each application beyond its solo
// profile. This file models that interference so QoS checks stay honest
// when several applications share the CPU; the scalar single-app pipeline
// is unaffected.

// InterferenceModel parameterizes the shared-resource slowdown.
type InterferenceModel struct {
	// LLCWeight scales the slowdown from overlapping cache pressure.
	LLCWeight float64
	// MemBWWeight scales the slowdown from memory-bandwidth contention.
	MemBWWeight float64
}

// DefaultInterference returns weights calibrated so that two fully
// memory-bound co-runners lose ~25 % each, matching published PARSEC
// pair-interference ranges.
func DefaultInterference() InterferenceModel {
	return InterferenceModel{LLCWeight: 0.10, MemBWWeight: 0.15}
}

// PairSlowdown returns the multiplicative execution-time factor (≥1) that
// co-runner `other` inflicts on `victim`: cache-sensitive victims suffer
// from cache-hungry neighbors, memory-bound victims from memory-bound
// neighbors.
func (im InterferenceModel) PairSlowdown(victim, other Benchmark) float64 {
	llc := im.LLCWeight * victim.CacheIntensity * other.CacheIntensity
	mem := im.MemBWWeight * victim.MemIntensity * other.MemIntensity
	return 1 + llc + mem
}

// Slowdown returns the combined factor for a victim sharing the CPU with
// the given set of co-runners. Contributions compound sub-linearly (the
// shared resource saturates): the exponent dampens each additional
// co-runner.
func (im InterferenceModel) Slowdown(victim Benchmark, others []Benchmark) float64 {
	if len(others) == 0 {
		return 1
	}
	total := 1.0
	for i, o := range others {
		pair := im.PairSlowdown(victim, o)
		// Damping: the k-th co-runner contributes with weight 1/√(k+1).
		w := 1 / math.Sqrt(float64(i)+1)
		total *= 1 + (pair-1)*w
	}
	return total
}

// CoRunSatisfied reports whether the QoS constraint still holds for the
// victim under the configuration when the interference slowdown is
// applied on top of the solo execution-time model.
func (im InterferenceModel) CoRunSatisfied(q QoS, victim Benchmark, cfg Config, others []Benchmark) bool {
	return victim.NormalizedTime(cfg)*im.Slowdown(victim, others) <= float64(q)*(1+1e-9)
}
