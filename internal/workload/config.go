package workload

import (
	"fmt"

	"repro/internal/power"
)

// Config is a workload execution configuration (Nc, Nt, f) as defined in
// §IV-B: the number of cores, the number of threads, and the core
// frequency.
type Config struct {
	Cores   int
	Threads int
	Freq    power.Frequency
}

// String formats the configuration the way the paper writes it.
func (c Config) String() string {
	return fmt.Sprintf("(%d,%d,%.1fGHz)", c.Cores, c.Threads, float64(c.Freq))
}

// Valid reports whether the configuration is inside the paper's space:
// 1..8 cores, Nt ∈ {Nc, 2·Nc} (one or two threads per core), and one of the
// three frequency levels.
func (c Config) Valid() bool {
	if c.Cores < 1 || c.Cores > 8 {
		return false
	}
	if c.Threads != c.Cores && c.Threads != 2*c.Cores {
		return false
	}
	for _, f := range power.Levels() {
		if c.Freq == f {
			return true
		}
	}
	return false
}

// ThreadsPerCore returns 1 or 2.
func (c Config) ThreadsPerCore() int { return c.Threads / c.Cores }

// Configs enumerates the full configuration space the paper's Algorithm 1
// searches: Nc ∈ {1..8} × Nt ∈ {Nc, 2Nc} × f ∈ {2.6, 2.9, 3.2}.
func Configs() []Config {
	var out []Config
	for nc := 1; nc <= 8; nc++ {
		for _, tpc := range []int{1, 2} {
			for _, f := range power.Levels() {
				out = append(out, Config{Cores: nc, Threads: nc * tpc, Freq: f})
			}
		}
	}
	return out
}

// Fig3Configs returns the five configurations plotted in Fig. 3, all at
// FMax: (2,4) (4,4) (4,8) (8,8) (8,16).
func Fig3Configs() []Config {
	return []Config{
		{Cores: 2, Threads: 4, Freq: power.FMax},
		{Cores: 4, Threads: 4, Freq: power.FMax},
		{Cores: 4, Threads: 8, Freq: power.FMax},
		{Cores: 8, Threads: 8, Freq: power.FMax},
		{Cores: 8, Threads: 16, Freq: power.FMax},
	}
}

// QoS is the paper's quality-of-service constraint: the maximum allowable
// slow-down versus the native baseline (8 cores, 16 threads, FMax). The
// paper evaluates 1x, 2x and 3x.
type QoS float64

// The paper's three QoS levels (§IV-B).
const (
	QoS1x QoS = 1
	QoS2x QoS = 2
	QoS3x QoS = 3
)

// String formats the QoS level the way the paper writes it.
func (q QoS) String() string { return fmt.Sprintf("%gx", float64(q)) }

// Satisfied reports whether benchmark b under configuration c meets the QoS
// constraint: normalized execution time within the allowed degradation.
// A small epsilon admits the baseline configuration itself at QoS 1x.
func (q QoS) Satisfied(b Benchmark, c Config) bool {
	return b.NormalizedTime(c) <= float64(q)*(1+1e-9)
}

// Profile is the offline-profiled (power, QoS) table of one benchmark that
// Algorithm 1 consumes: the P and Q vectors of the paper.
type Profile struct {
	Bench   Benchmark
	Entries []ProfileEntry
}

// ProfileEntry is one configuration's profiled power and normalized time.
type ProfileEntry struct {
	Config   Config
	Power    float64 // package watts with POLL idles (profiling default)
	NormTime float64 // execution time normalized to the native baseline
}

// NewProfile profiles the benchmark over the full configuration space,
// mirroring the offline profiling pass of §VII.
func NewProfile(b Benchmark) *Profile {
	var p Profile
	p.Bench = b
	for _, c := range Configs() {
		p.Entries = append(p.Entries, ProfileEntry{
			Config:   c,
			Power:    b.PackagePower(c, power.POLL),
			NormTime: b.NormalizedTime(c),
		})
	}
	return &p
}
