package power

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// The paper's power model is temperature-independent; real 14 nm leakage
// grows roughly exponentially with junction temperature, which couples the
// power and thermal problems in the direction that penalizes bad cooling.
// This file provides the leakage extension used by cosim's
// leakage-coupled solver and the corresponding ablation bench.

// LeakageModel scales the static share of each block's power with its
// temperature: scale(T) = exp(β·(T − T_ref)), normalized so the Table I
// calibration holds at the reference temperature.
type LeakageModel struct {
	// BetaPerC is the exponential sensitivity (1/°C). Silicon leakage
	// roughly doubles every 50–60 °C: β ≈ ln(2)/55 ≈ 0.0126.
	BetaPerC float64
	// RefC is the temperature at which the calibrated static powers hold.
	RefC float64
}

// DefaultLeakage returns the 14 nm-typical model: doubling every 55 °C,
// referenced to the 60 °C junction the Table I measurements imply.
func DefaultLeakage() LeakageModel {
	return LeakageModel{BetaPerC: math.Ln2 / 55, RefC: 60}
}

// Validate checks the model parameters.
func (l LeakageModel) Validate() error {
	if l.BetaPerC < 0 || l.BetaPerC > 0.1 {
		return fmt.Errorf("power: leakage beta %g outside [0,0.1] 1/°C", l.BetaPerC)
	}
	if l.RefC < 0 || l.RefC > 150 {
		return fmt.Errorf("power: leakage reference %g °C implausible", l.RefC)
	}
	return nil
}

// Scale returns the multiplicative leakage factor at temperature tC,
// clamped to [0.25, 4] to keep the coupled fixed point well-behaved.
func (l LeakageModel) Scale(tC float64) float64 {
	s := math.Exp(l.BetaPerC * (tC - l.RefC))
	if s < 0.25 {
		return 0.25
	}
	if s > 4 {
		return 4
	}
	return s
}

// SplitBlockPowers separates a package state's per-block powers into the
// temperature-sensitive static share and the temperature-insensitive
// dynamic share. The C-state powers of Table I are treated as static; an
// active core's baseline is its POLL share, its workload power is dynamic;
// the uncore splits per §IV-C2 (9 W static + proportional dynamic).
func (m *Model) SplitBlockPowers(st PackageState) (static, dynamic map[string]float64) {
	static = make(map[string]float64, floorplan.NumCores+3)
	dynamic = make(map[string]float64, floorplan.NumCores+3)
	for i := 0; i < floorplan.NumCores; i++ {
		name := floorplan.CoreName(i)
		load := st.Cores[i]
		if load.Active {
			static[name] = CStatePerCore(POLL, st.Freq)
			dynamic[name] = load.DynWatts
		} else {
			static[name] = CStatePerCore(load.Idle, st.Freq)
			dynamic[name] = 0
		}
	}
	llc := LLCPower(st.LLC)
	static["LLC"] = 0.4
	dynamic["LLC"] = llc - 0.4
	uncore := UncorePower(st.UncoreFreq)
	staticShare := UncoreStaticWatts / uncore
	static["MemCtrl"] = 0.45 * uncore * staticShare
	dynamic["MemCtrl"] = 0.45 * uncore * (1 - staticShare)
	static["Uncore"] = 0.55 * uncore * staticShare
	dynamic["Uncore"] = 0.55 * uncore * (1 - staticShare)
	return static, dynamic
}
