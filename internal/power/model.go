package power

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
)

// Uncore power model constants (§IV-C2): a 9 W constant component plus an
// 8 W swing proportional to the uncore frequency across 1.2–2.8 GHz, plus
// up to 2 W for the 25 MB LLC in the worst case.
const (
	UncoreStaticWatts       = 9.0
	UncoreProportionalWatts = 8.0
	LLCMaxWatts             = 2.0
)

// DynFreqExponent governs how per-core dynamic power scales with frequency:
// P ∝ (f/fmax)^DynFreqExponent, folding the voltage/frequency curve of the
// 14 nm process into a single exponent.
const DynFreqExponent = 2.3

// SMTDynFactor is the dynamic power uplift when a core runs two hardware
// threads instead of one.
const SMTDynFactor = 1.15

// UncorePower returns the uncore (memory controller + IO, excluding LLC)
// power at the given uncore frequency, clamped to the valid range.
func UncorePower(uncoreFreqGHz float64) float64 {
	f := math.Min(math.Max(uncoreFreqGHz, UncoreFreqMin), UncoreFreqMax)
	frac := (f - UncoreFreqMin) / (UncoreFreqMax - UncoreFreqMin)
	return UncoreStaticWatts + UncoreProportionalWatts*frac
}

// LLCPower returns the last-level-cache power for a cache activity factor
// in [0,1]; activity 1 is the paper's 2 W worst case.
func LLCPower(activity float64) float64 {
	a := math.Min(math.Max(activity, 0), 1)
	return 0.4 + (LLCMaxWatts-0.4)*a
}

// DynScale returns the relative dynamic power at frequency f versus FMax.
func DynScale(f Frequency) float64 {
	return math.Pow(float64(f)/float64(FMax), DynFreqExponent)
}

// CoreLoad describes the state of one core for power-map assembly.
type CoreLoad struct {
	// Active indicates the core is executing workload threads.
	Active bool
	// DynWatts is the dynamic power of the core's workload at the current
	// frequency (already frequency-scaled), excluding the active-state
	// baseline. Ignored when !Active.
	DynWatts float64
	// Idle is the C-state of an inactive core. Ignored when Active.
	Idle CState
}

// PackageState is a full description of the CPU package operating point.
type PackageState struct {
	Freq       Frequency
	UncoreFreq float64 // GHz
	LLC        float64 // cache activity factor in [0,1]
	Cores      [floorplan.NumCores]CoreLoad
}

// Model assembles per-block power maps for a floorplan.
type Model struct {
	fp *floorplan.Floorplan
}

// NewModel returns a power model bound to the given floorplan, which must
// contain the canonical Broadwell block names.
func NewModel(fp *floorplan.Floorplan) (*Model, error) {
	for _, name := range []string{"LLC", "MemCtrl", "Uncore"} {
		if _, ok := fp.Block(name); !ok {
			return nil, fmt.Errorf("power: floorplan lacks block %q", name)
		}
	}
	for i := 0; i < floorplan.NumCores; i++ {
		if _, ok := fp.Block(floorplan.CoreName(i)); !ok {
			return nil, fmt.Errorf("power: floorplan lacks %s", floorplan.CoreName(i))
		}
	}
	return &Model{fp: fp}, nil
}

// CorePower returns the power of a single core in the given load state:
// active cores draw the POLL (clocked, ready) baseline plus their dynamic
// power; idle cores draw their C-state share of Table I.
func CorePower(load CoreLoad, f Frequency) float64 {
	if load.Active {
		return CStatePerCore(POLL, f) + load.DynWatts
	}
	return CStatePerCore(load.Idle, f)
}

// BlockPowers maps the package state onto per-block powers in watts.
// Reserved (fused-off) blocks draw nothing.
func (m *Model) BlockPowers(st PackageState) map[string]float64 {
	return m.BlockPowersInto(nil, st)
}

// BlockPowersInto is BlockPowers reusing a caller-owned map (allocated
// when nil and returned). The key set is identical on every call, so a
// recycled map is overwritten completely and the call allocates nothing —
// the variant cosim solve sessions use.
func (m *Model) BlockPowersInto(out map[string]float64, st PackageState) map[string]float64 {
	if out == nil {
		out = make(map[string]float64, floorplan.NumCores+3)
	}
	for i := 0; i < floorplan.NumCores; i++ {
		out[floorplan.CoreName(i)] = CorePower(st.Cores[i], st.Freq)
	}
	out["LLC"] = LLCPower(st.LLC)
	uncore := UncorePower(st.UncoreFreq)
	// Split the uncore budget between the memory-controller strip and the
	// queue/uncore/IO strip proportional to their datasheet share.
	out["MemCtrl"] = 0.45 * uncore
	out["Uncore"] = 0.55 * uncore
	return out
}

// SumBlockPowers totals a per-block power map in sorted block order so
// repeated calls are bit-identical (map iteration order is random and
// float addition is not associative).
func SumBlockPowers(bp map[string]float64) float64 {
	names := make([]string, 0, len(bp))
	for n := range bp {
		names = append(names, n)
	}
	sort.Strings(names)
	var s float64
	for _, n := range names {
		s += bp[n]
	}
	return s
}

// TotalPower sums the package power for the state.
func (m *Model) TotalPower(st PackageState) float64 {
	return SumBlockPowers(m.BlockPowers(st))
}

// Floorplan returns the floorplan the model is bound to.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.fp }
