// Package power models the Xeon E5 v4 server power consumption used in the
// paper: idle C-states (Table I), per-core dynamic power, the uncore
// (LLC + memory controller + IO) model of §IV-C, and the assembly of
// per-block power maps for the thermal simulator.
package power

import (
	"fmt"
	"time"

	"repro/internal/floorplan"
)

// Frequency is a core clock frequency in GHz. The paper evaluates the three
// P-states 2.6, 2.9 and 3.2 GHz.
type Frequency float64

// The paper's three core frequency levels (§IV-C1).
const (
	FMin Frequency = 2.6
	FMid Frequency = 2.9
	FMax Frequency = 3.2
)

// Levels returns the paper's discrete frequency levels in ascending order.
func Levels() []Frequency { return []Frequency{FMin, FMid, FMax} }

// Uncore frequency range in GHz (§IV-C2).
const (
	UncoreFreqMin = 1.2
	UncoreFreqMax = 2.8
)

// CState is an idle power state of the target Intel processor (§IV-C1).
type CState int

// Idle states, shallowest to deepest. POLL, C1 and C1E powers are measured
// in the paper's Table I; C3 and C6 extend the table with datasheet-typical
// values so the mapping policy can reason about deeper states.
const (
	POLL CState = iota
	C1
	C1E
	C3
	C6
)

// String returns the conventional C-state name.
func (s CState) String() string {
	switch s {
	case POLL:
		return "POLL"
	case C1:
		return "C1"
	case C1E:
		return "C1E"
	case C3:
		return "C3"
	case C6:
		return "C6"
	default:
		return fmt.Sprintf("CState(%d)", int(s))
	}
}

// Latency returns the wake-up latency to resume execution from the state.
// Table I lists POLL=0, C1=2, C1E=10 (microseconds); C3/C6 follow the
// E5 v4 datasheet order of magnitude.
func (s CState) Latency() time.Duration {
	switch s {
	case POLL:
		return 0
	case C1:
		return 2 * time.Microsecond
	case C1E:
		return 10 * time.Microsecond
	case C3:
		return 50 * time.Microsecond
	case C6:
		return 150 * time.Microsecond
	default:
		return 0
	}
}

// tableI holds the measured idle power (W) for all 8 cores at the three
// frequency levels (paper Table I), extended with C3/C6.
var tableI = map[CState][3]float64{
	POLL: {27, 32, 40},
	C1:   {14, 15, 17},
	C1E:  {9, 9, 9},
	C3:   {5, 5, 5},
	C6:   {2, 2, 2},
}

func freqSlot(f Frequency) int {
	switch {
	case f <= FMin:
		return 0
	case f <= FMid:
		return 1
	default:
		return 2
	}
}

// CStateTotalPower returns the Table I idle power for all 8 cores parked in
// state s with the package clocked at f.
func CStateTotalPower(s CState, f Frequency) float64 {
	row, ok := tableI[s]
	if !ok {
		return 0
	}
	return row[freqSlot(f)]
}

// CStatePerCore returns the per-core idle power in state s at frequency f.
func CStatePerCore(s CState, f Frequency) float64 {
	return CStateTotalPower(s, f) / float64(floorplan.NumCores)
}

// DeepestStateWithin returns the deepest C-state whose wake-up latency does
// not exceed the tolerable delay d. With d == 0 only POLL qualifies.
func DeepestStateWithin(d time.Duration) CState {
	best := POLL
	for _, s := range []CState{C1, C1E, C3, C6} {
		if s.Latency() <= d {
			best = s
		}
	}
	return best
}
