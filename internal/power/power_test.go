package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/floorplan"
)

func TestTableIMatchesPaper(t *testing.T) {
	// Paper Table I, exactly.
	cases := []struct {
		s    CState
		f    Frequency
		want float64
	}{
		{POLL, FMin, 27}, {POLL, FMid, 32}, {POLL, FMax, 40},
		{C1, FMin, 14}, {C1, FMid, 15}, {C1, FMax, 17},
		{C1E, FMin, 9}, {C1E, FMid, 9}, {C1E, FMax, 9},
	}
	for _, c := range cases {
		if got := CStateTotalPower(c.s, c.f); got != c.want {
			t.Fatalf("CStateTotalPower(%v,%v) = %v, want %v", c.s, c.f, got, c.want)
		}
	}
}

func TestCStateOrdering(t *testing.T) {
	// Deeper states draw less power and wake more slowly at all levels.
	states := []CState{POLL, C1, C1E, C3, C6}
	for _, f := range Levels() {
		for i := 1; i < len(states); i++ {
			if CStateTotalPower(states[i], f) >= CStateTotalPower(states[i-1], f) {
				t.Fatalf("%v should draw less than %v at %v GHz", states[i], states[i-1], f)
			}
		}
	}
	for i := 1; i < len(states); i++ {
		if states[i].Latency() <= states[i-1].Latency() {
			t.Fatalf("%v should wake slower than %v", states[i], states[i-1])
		}
	}
}

func TestCStatePerCore(t *testing.T) {
	if got := CStatePerCore(POLL, FMax); got != 5 {
		t.Fatalf("per-core POLL@3.2 = %v, want 5", got)
	}
}

func TestCStateStrings(t *testing.T) {
	for s, want := range map[CState]string{POLL: "POLL", C1: "C1", C1E: "C1E", C3: "C3", C6: "C6"} {
		if s.String() != want {
			t.Fatalf("String() = %q, want %q", s.String(), want)
		}
	}
	if CState(42).String() == "" {
		t.Fatal("unknown state should still format")
	}
}

func TestDeepestStateWithin(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want CState
	}{
		{0, POLL},
		{1 * time.Microsecond, POLL},
		{2 * time.Microsecond, C1},
		{10 * time.Microsecond, C1E},
		{time.Millisecond, C6},
	}
	for _, c := range cases {
		if got := DeepestStateWithin(c.d); got != c.want {
			t.Fatalf("DeepestStateWithin(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestUncorePowerEndpoints(t *testing.T) {
	// §IV-C2: 9 W constant + 8 W swing from min to max uncore frequency.
	if got := UncorePower(UncoreFreqMin); got != 9 {
		t.Fatalf("uncore@min = %v, want 9", got)
	}
	if got := UncorePower(UncoreFreqMax); got != 17 {
		t.Fatalf("uncore@max = %v, want 17", got)
	}
	if got := UncorePower(0.1); got != 9 {
		t.Fatalf("below-range uncore must clamp, got %v", got)
	}
	if got := UncorePower(9.9); got != 17 {
		t.Fatalf("above-range uncore must clamp, got %v", got)
	}
}

func TestLLCPowerRange(t *testing.T) {
	if got := LLCPower(1); got != 2 {
		t.Fatalf("LLC worst case = %v, want 2", got)
	}
	if got := LLCPower(0); got != 0.4 {
		t.Fatalf("LLC idle = %v, want 0.4", got)
	}
	if got := LLCPower(5); got != 2 {
		t.Fatalf("LLC activity must clamp, got %v", got)
	}
}

func TestDynScale(t *testing.T) {
	if got := DynScale(FMax); math.Abs(got-1) > 1e-12 {
		t.Fatalf("DynScale(fmax) = %v", got)
	}
	if DynScale(FMin) >= DynScale(FMid) || DynScale(FMid) >= DynScale(FMax) {
		t.Fatal("DynScale must increase with frequency")
	}
}

func TestCorePower(t *testing.T) {
	active := CoreLoad{Active: true, DynWatts: 2.5}
	if got := CorePower(active, FMax); got != 7.5 {
		t.Fatalf("active core = %v, want 7.5 (5 POLL + 2.5 dyn)", got)
	}
	idle := CoreLoad{Idle: C1}
	if got := CorePower(idle, FMax); got != 17.0/8 {
		t.Fatalf("idle C1 core = %v, want %v", got, 17.0/8)
	}
}

func TestModelBlockPowers(t *testing.T) {
	fp := floorplan.BroadwellEP()
	m, err := NewModel(fp)
	if err != nil {
		t.Fatal(err)
	}
	var st PackageState
	st.Freq = FMax
	st.UncoreFreq = UncoreFreqMax
	st.LLC = 1
	for i := range st.Cores {
		st.Cores[i] = CoreLoad{Active: true, DynWatts: 2}
	}
	bp := m.BlockPowers(st)
	if len(bp) != floorplan.NumCores+3 {
		t.Fatalf("got %d blocks, want %d", len(bp), floorplan.NumCores+3)
	}
	if bp["Core1"] != 7 {
		t.Fatalf("Core1 = %v, want 7", bp["Core1"])
	}
	if math.Abs(bp["MemCtrl"]+bp["Uncore"]-17) > 1e-12 {
		t.Fatalf("uncore strips sum to %v, want 17", bp["MemCtrl"]+bp["Uncore"])
	}
	total := m.TotalPower(st)
	want := 8*7.0 + 2 + 17
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("total = %v, want %v", total, want)
	}
}

func TestNewModelValidation(t *testing.T) {
	fp := floorplan.MustNew("tiny", 1e-3, 1e-3, []floorplan.Block{
		{Name: "LLC", Rect: floorplan.Rect{X: 0, Y: 0, W: 1e-4, H: 1e-4}},
	})
	if _, err := NewModel(fp); err == nil {
		t.Fatal("model must reject floorplans without the Broadwell blocks")
	}
}

// Property: package power is monotone in dynamic watts and frequency.
func TestPowerMonotoneProperty(t *testing.T) {
	fp := floorplan.BroadwellEP()
	m, _ := NewModel(fp)
	f := func(d1, d2 float64) bool {
		a := math.Mod(math.Abs(d1), 4)
		b := math.Mod(math.Abs(d2), 4)
		if a > b {
			a, b = b, a
		}
		mk := func(d float64, fr Frequency) PackageState {
			var st PackageState
			st.Freq = fr
			st.UncoreFreq = 2.0
			st.LLC = 0.5
			for i := range st.Cores {
				st.Cores[i] = CoreLoad{Active: true, DynWatts: d}
			}
			return st
		}
		if m.TotalPower(mk(a, FMax)) > m.TotalPower(mk(b, FMax))+1e-9 {
			return false
		}
		return m.TotalPower(mk(a, FMin)) <= m.TotalPower(mk(a, FMax))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLevels(t *testing.T) {
	ls := Levels()
	if len(ls) != 3 || ls[0] != FMin || ls[2] != FMax {
		t.Fatalf("Levels = %v", ls)
	}
}

// TestBlockPowersIntoReusesMap: the map-recycling variant must overwrite
// every key and match BlockPowers exactly.
func TestBlockPowersIntoReusesMap(t *testing.T) {
	m, err := NewModel(floorplan.BroadwellEP())
	if err != nil {
		t.Fatal(err)
	}
	st := PackageState{Freq: FMax, UncoreFreq: UncoreFreqMax, LLC: 0.8}
	for i := range st.Cores {
		st.Cores[i] = CoreLoad{Active: true, DynWatts: 5}
	}
	fresh := m.BlockPowers(st)
	buf := make(map[string]float64)
	got := m.BlockPowersInto(buf, st)
	if len(got) != len(fresh) {
		t.Fatalf("key sets differ: %d vs %d", len(got), len(fresh))
	}
	for k, v := range fresh {
		if got[k] != v {
			t.Fatalf("%s differs: %v vs %v", k, got[k], v)
		}
	}
	// Recycle with a different state: stale values must be overwritten.
	st.Cores[0] = CoreLoad{Idle: C6}
	fresh2 := m.BlockPowers(st)
	got2 := m.BlockPowersInto(buf, st)
	for k, v := range fresh2 {
		if got2[k] != v {
			t.Fatalf("recycled %s differs: %v vs %v", k, got2[k], v)
		}
	}
}
