package thermal

import (
	"repro/internal/linalg"
)

// This file mirrors the multigrid ladder in float32 for the
// mixed-precision V-cycle preconditioner (SolverMGPCG32). The float64
// hierarchy stays the source of truth: geometry, interpolation weights
// and the per-solve diagonal assembly all happen there, and the mirror
// only converts the results — conductances and weights once at
// construction, diagonals once per solve in refresh(). That keeps the
// quantization a pure representation change (float32(x) is exact
// rounding of the float64 value), with no separately-maintained float32
// assembly that could drift from the real operator.

// transfer32 is the float32 twin of transfer: same axis maps (shared,
// they are pure index patterns), same operator-induced weights rounded
// to float32, same banding (Prolong gathers fine rows; Restrict
// scatters into write-disjoint layer-slabs). blockSum has no float32
// twin — extensive-diagonal restriction stays in the float64 ladder.
type transfer32 struct {
	nxf, nyf, nl int
	cellsF       int
	nxc, nyc     int
	cellsC       int
	xm, ym       axisMap
	wx, wy       []float32

	team *linalg.Team
	job  transfer32Job
}

var _ linalg.Transfer32 = (*transfer32)(nil)

// newTransfer32 mirrors a float64 transfer's maps and weights.
func newTransfer32(t *transfer) *transfer32 {
	t32 := &transfer32{
		nxf: t.nxf, nyf: t.nyf, nl: t.nl, cellsF: t.cellsF,
		nxc: t.nxc, nyc: t.nyc, cellsC: t.cellsC,
		xm: t.xm, ym: t.ym,
		wx: make([]float32, len(t.wx)),
		wy: make([]float32, len(t.wy)),
	}
	for i, v := range t.wx {
		t32.wx[i] = float32(v)
	}
	for i, v := range t.wy {
		t32.wy[i] = float32(v)
	}
	return t32
}

// setTeam attaches the worker team the transfer kernels dispatch on.
func (t *transfer32) setTeam(tm *linalg.Team) { t.team = tm }

// parallel reports whether this transfer's passes should use the team.
func (t *transfer32) parallel() bool {
	return t.team.Workers() > 1 && t.nl*t.cellsF >= linalg.ParMin
}

// transfer32Job adapts one float32 transfer pass to linalg.Task.
type transfer32Job struct {
	t        *transfer32
	mode     int
	src, dst []float32
}

// Do implements linalg.Task.
func (j *transfer32Job) Do(worker, workers int) {
	switch j.mode {
	case jobRestrict:
		lo, hi := linalg.Band(j.t.nl, worker, workers)
		j.t.restrictLayers(j.src, j.dst, lo, hi)
	case jobProlong:
		lo, hi := linalg.Band(j.t.nl*j.t.nyf, worker, workers)
		j.t.prolongRows(j.src, j.dst, lo, hi)
	}
}

// Restrict projects a fine residual onto the coarse grid by full
// weighting, overwriting coarse.
func (t *transfer32) Restrict(fine, coarse []float32) {
	if t.parallel() {
		t.job = transfer32Job{t: t, mode: jobRestrict, src: fine, dst: coarse}
		t.team.Run(&t.job)
		return
	}
	t.restrictLayers(fine, coarse, 0, t.nl)
}

// restrictLayers restricts the layer-slab [lLo, lHi); like the float64
// kernel, the scatter never leaves the layer, so slabs are
// write-disjoint across workers.
func (t *transfer32) restrictLayers(fine, coarse []float32, lLo, lHi int) {
	for i := lLo * t.cellsC; i < lHi*t.cellsC; i++ {
		coarse[i] = 0
	}
	for l := lLo; l < lHi; l++ {
		baseF := l * t.cellsF
		baseC := l * t.cellsC
		for iy := 0; iy < t.nyf; iy++ {
			py, oy := t.ym.parent[iy], t.ym.other[iy]
			rowP := baseC + py*t.nxc
			rowO := baseC + oy*t.nxc
			rowF := baseF + iy*t.nxf
			for ix := 0; ix < t.nxf; ix++ {
				i := rowF + ix
				px, ox := t.xm.parent[ix], t.xm.other[ix]
				wx, wy := t.wx[i], t.wy[i]
				wpx, wpy := 1-wx, 1-wy
				v := fine[i]
				coarse[rowP+px] += wpx * wpy * v
				if ox >= 0 {
					coarse[rowP+ox] += wx * wpy * v
				}
				if oy >= 0 {
					coarse[rowO+px] += wpx * wy * v
					if ox >= 0 {
						coarse[rowO+ox] += wx * wy * v
					}
				}
			}
		}
	}
}

// Prolong interpolates a coarse correction and adds it into the fine
// iterate; fine rows band across the team freely (pure gather).
func (t *transfer32) Prolong(coarse, fine []float32) {
	if t.parallel() {
		t.job = transfer32Job{t: t, mode: jobProlong, src: coarse, dst: fine}
		t.team.Run(&t.job)
		return
	}
	t.prolongRows(coarse, fine, 0, t.nl*t.nyf)
}

// prolongRows interpolates the fine global rows [rowLo, rowHi).
func (t *transfer32) prolongRows(coarse, fine []float32, rowLo, rowHi int) {
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/t.nyf, g%t.nyf
		baseC := l * t.cellsC
		py, oy := t.ym.parent[iy], t.ym.other[iy]
		rowP := baseC + py*t.nxc
		rowO := baseC + oy*t.nxc
		rowF := l*t.cellsF + iy*t.nxf
		for ix := 0; ix < t.nxf; ix++ {
			i := rowF + ix
			px, ox := t.xm.parent[ix], t.xm.other[ix]
			wx, wy := t.wx[i], t.wy[i]
			wpx, wpy := 1-wx, 1-wy
			v := wpx * wpy * coarse[rowP+px]
			if ox >= 0 {
				v += wx * wpy * coarse[rowP+ox]
			}
			if oy >= 0 {
				v += wpx * wy * coarse[rowO+px]
				if ox >= 0 {
					v += wx * wy * coarse[rowO+ox]
				}
			}
			fine[i] += v
		}
	}
}

// hierarchy32 is the float32 mirror of a hierarchy: one stencil32 per
// level, one transfer32 per inter-level gap, and the Multigrid32 cycle
// driver over them. It is built lazily (only when a workspace first
// solves with SolverMGPCG32) and refreshed per solve after the float64
// hierarchy, from which every number is converted.
type hierarchy32 struct {
	src    *hierarchy
	levels []*stencil32
	downs  []*transfer32 // one per level, nil on the coarsest
	mg     *linalg.Multigrid32
}

// newHierarchy32 mirrors an assembled float64 hierarchy.
func newHierarchy32(h *hierarchy) (*hierarchy32, error) {
	h32 := &hierarchy32{src: h}
	for _, lv := range h.levels {
		h32.levels = append(h32.levels, newStencil32(lv.st))
		var d32 *transfer32
		if lv.down != nil {
			d32 = newTransfer32(lv.down)
		}
		h32.downs = append(h32.downs, d32)
	}
	mls := make([]linalg.MGLevel32, len(h32.levels))
	for i, st := range h32.levels {
		mls[i] = linalg.MGLevel32{A: st}
		if h32.downs[i] != nil {
			mls[i].Down = h32.downs[i]
		}
	}
	mg, err := linalg.NewMultigrid32(mls)
	if err != nil {
		return nil, err
	}
	h32.mg = mg
	return h32, nil
}

// setTeam attaches the worker team to every mirrored level and transfer.
func (h32 *hierarchy32) setTeam(t *linalg.Team) {
	for i, st := range h32.levels {
		st.setTeam(t)
		if h32.downs[i] != nil {
			h32.downs[i].setTeam(t)
		}
	}
}

// refresh re-converts every level's diagonal from the float64 ladder.
// Call it after hierarchy.refresh() (and after fillOperator on the fine
// level) so the mirror sees this solve's boundary and capacitive terms.
// Allocation-free.
func (h32 *hierarchy32) refresh() {
	for k, st := range h32.levels {
		src := h32.src.levels[k].st
		for i, d := range src.diag {
			st.diag[i] = float32(d)
		}
		for i, d := range src.invDiag {
			st.invDiag[i] = float32(d)
		}
	}
}
