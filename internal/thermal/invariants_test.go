package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
)

// TestMaximumPrinciple: with no internal heat sources, the steady solution
// must lie between the boundary temperatures (discrete maximum principle
// for the conduction operator).
func TestMaximumPrinciple(t *testing.T) {
	s := smallStack(8, 8)
	env := Environment{AmbientC: 55, BottomH: 20}
	m, err := NewModel(s, env)
	if err != nil {
		t.Fatal(err)
	}
	bc := UniformTop(m.Cells(), 4000, 35)
	f, err := m.SteadySolve(nil, bc)
	if err != nil {
		t.Fatal(err)
	}
	for i, temp := range f.T {
		if temp < 35-1e-6 || temp > 55+1e-6 {
			t.Fatalf("cell %d = %.3f outside [35,55]", i, temp)
		}
	}
}

// TestSourcesOnlyRaiseTemperatures: adding power anywhere must not lower
// any cell's temperature (monotonicity of the resolvent).
func TestSourcesOnlyRaiseTemperatures(t *testing.T) {
	s := smallStack(6, 6)
	m, _ := NewModel(s, Environment{AmbientC: 45, BottomH: 10})
	bc := UniformTop(m.Cells(), 5000, 30)
	base, err := m.SteadySolve(nil, bc)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.Cells())
	p[m.Grid().Index(2, 3)] = 15
	hot, err := m.SteadySolve(map[int][]float64{0: p}, bc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.T {
		if hot.T[i] < base.T[i]-1e-7 {
			t.Fatalf("cell %d cooled when power was added: %.4f < %.4f", i, hot.T[i], base.T[i])
		}
	}
}

// TestLinearityOfSteadySolve: the steady operator is linear, so doubling
// the power doubles the rise above the homogeneous (zero-power) solution.
func TestLinearityOfSteadySolve(t *testing.T) {
	s := smallStack(6, 6)
	m, _ := NewModel(s, Environment{AmbientC: 40, BottomH: 5})
	bc := UniformTop(m.Cells(), 6000, 32)
	zero, err := m.SteadySolve(nil, bc)
	if err != nil {
		t.Fatal(err)
	}
	p1 := make([]float64, m.Cells())
	p1[m.Grid().Index(1, 1)] = 8
	p1[m.Grid().Index(4, 4)] = 4
	one, err := m.SteadySolve(map[int][]float64{0: p1}, bc)
	if err != nil {
		t.Fatal(err)
	}
	p2 := make([]float64, m.Cells())
	for i := range p1 {
		p2[i] = 2 * p1[i]
	}
	two, err := m.SteadySolve(map[int][]float64{0: p2}, bc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range zero.T {
		rise1 := one.T[i] - zero.T[i]
		rise2 := two.T[i] - zero.T[i]
		if math.Abs(rise2-2*rise1) > 1e-5*(1+math.Abs(rise2)) {
			t.Fatalf("cell %d: rise not linear (%.6f vs 2×%.6f)", i, rise2, rise1)
		}
	}
}

// Property: for random positive power patterns, the global energy balance
// closes and the hottest cell is in the powered layer.
func TestEnergyBalanceProperty(t *testing.T) {
	s := smallStack(5, 5)
	m, _ := NewModel(s, Environment{AmbientC: 45, BottomH: 10})
	bc := UniformTop(m.Cells(), 7000, 35)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, m.Cells())
		var total float64
		for i := range p {
			if rng.Float64() < 0.3 {
				p[i] = rng.Float64() * 5
				total += p[i]
			}
		}
		if total == 0 {
			return true
		}
		sol, err := m.SteadySolve(map[int][]float64{0: p}, bc)
		if err != nil {
			return false
		}
		out := sol.TotalHeatToTop(bc) + sol.TotalHeatToBottom()
		return math.Abs(out-total) < 0.02*total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGridResolutionConvergence: refining the grid must not change the
// bulk solution much (discretization consistency).
func TestGridResolutionConvergence(t *testing.T) {
	mean := func(nx, ny int) float64 {
		s := &Stack{
			Grid: floorplan.NewGrid(nx, ny, 0.02, 0.02),
			Layers: []LayerSpec{
				{Name: "bottom", Thickness: 1e-3, Base: Copper},
				{Name: "top", Thickness: 1e-3, Base: Copper},
			},
		}
		m, err := NewModel(s, Environment{AmbientC: 25, BottomH: 0})
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, m.Cells())
		// A centered quarter-area patch with 40 W total.
		g := m.Grid()
		var n int
		for iy := g.NY / 4; iy < 3*g.NY/4; iy++ {
			for ix := g.NX / 4; ix < 3*g.NX/4; ix++ {
				n++
			}
		}
		for iy := g.NY / 4; iy < 3*g.NY/4; iy++ {
			for ix := g.NX / 4; ix < 3*g.NX/4; ix++ {
				p[g.Index(ix, iy)] = 40.0 / float64(n)
			}
		}
		bc := UniformTop(m.Cells(), 5000, 35)
		sol, err := m.SteadySolve(map[int][]float64{0: p}, bc)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, temp := range sol.Layer(0) {
			sum += temp
		}
		return sum / float64(m.Cells())
	}
	coarse := mean(8, 8)
	fine := mean(16, 16)
	if math.Abs(coarse-fine) > 1.0 {
		t.Fatalf("mean temperature moved %.2f °C under refinement (%.2f vs %.2f)",
			math.Abs(coarse-fine), coarse, fine)
	}
}
