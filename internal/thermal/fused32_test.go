package thermal

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// These tests pin the PR 7 kernel contracts: the fused smooth+residual
// pass must be bit-identical to the unfused pair it replaces (in both
// precisions, at any thread count), the float32 mirror must reproduce its
// float64 twin's structure exactly, and the Chebyshev smoother must be a
// symmetric, convergent smoother for the thermal operators.

// fusedFixture assembles a filled steady operator plus rhs and a
// non-trivial iterate on the odd-sized parallel fixture.
func fusedFixture(t *testing.T) (*Model, *Workspace, linalg.Vector, linalg.Vector) {
	t.Helper()
	m, power, bc := parModel(t)
	w := m.NewWorkspace()
	m.fillOperator(&w.op, bc, 0)
	b, err := m.rhs(power, bc)
	if err != nil {
		t.Fatal(err)
	}
	return m, w, b, parField(m.n)
}

// TestFusedSmoothResidualMatchesUnfused is the FusedSmoother contract:
// SmoothResidual must produce exactly the bytes of Smooth(b, x, false)
// followed by Residual(b, x, r) — serial and at several team widths.
func TestFusedSmoothResidualMatchesUnfused(t *testing.T) {
	m, w, b, x0 := fusedFixture(t)
	wantX := x0.Clone()
	w.op.Smooth(b, wantX, false)
	wantR := make(linalg.Vector, m.n)
	w.op.Residual(b, wantX, wantR)

	for _, threads := range []int{1, 3, 8} {
		w.SetThreads(threads)
		x := x0.Clone()
		r := make(linalg.Vector, m.n)
		w.op.SmoothResidual(b, x, r)
		vecsEqual(t, "fused iterate", x, wantX)
		vecsEqual(t, "fused residual", r, wantR)
	}
	w.Close()
}

func vecs32Equal(t *testing.T, what string, got, want []float32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s differs at element %d: %x vs %x", what, i, got[i], want[i])
		}
	}
}

// stencil32From mirrors a filled float64 stencil, diagonals included.
func stencil32From(f *stencil) *stencil32 {
	s := newStencil32(f)
	for i, d := range f.diag {
		s.diag[i] = float32(d)
	}
	for i, d := range f.invDiag {
		s.invDiag[i] = float32(d)
	}
	return s
}

// TestStencil32KernelsByteIdenticalAcrossThreads checks every float32
// kernel — Residual, both smoothing directions, and the fused pass —
// against the serial sweep at several team widths, and the fused pass
// against its unfused decomposition.
func TestStencil32KernelsByteIdenticalAcrossThreads(t *testing.T) {
	m, w, b64, x64 := fusedFixture(t)
	s := stencil32From(&w.op)
	b := make([]float32, m.n)
	x0 := make([]float32, m.n)
	for i := range b {
		b[i] = float32(b64[i])
		x0[i] = float32(x64[i])
	}

	wantR := make([]float32, m.n)
	s.Residual(b, x0, wantR)
	wantFwd := append([]float32(nil), x0...)
	s.Smooth(b, wantFwd, false)
	wantRev := append([]float32(nil), x0...)
	s.Smooth(b, wantRev, true)
	// Fused contract in float32: identical bytes to smooth-then-residual.
	wantSRx := append([]float32(nil), x0...)
	wantSRr := make([]float32, m.n)
	s.SmoothResidual(b, wantSRx, wantSRr)
	vecs32Equal(t, "fused32 iterate vs unfused", wantSRx, wantFwd)
	check := make([]float32, m.n)
	s.Residual(b, wantSRx, check)
	vecs32Equal(t, "fused32 residual vs unfused", wantSRr, check)

	for _, threads := range []int{2, 3, 8} {
		team := linalg.NewTeam(threads)
		s.setTeam(team)
		r := make([]float32, m.n)
		s.Residual(b, x0, r)
		vecs32Equal(t, "Residual32", r, wantR)
		fwd := append([]float32(nil), x0...)
		s.Smooth(b, fwd, false)
		vecs32Equal(t, "Smooth32 forward", fwd, wantFwd)
		rev := append([]float32(nil), x0...)
		s.Smooth(b, rev, true)
		vecs32Equal(t, "Smooth32 reverse", rev, wantRev)
		srx := append([]float32(nil), x0...)
		srr := make([]float32, m.n)
		s.SmoothResidual(b, srx, srr)
		vecs32Equal(t, "SmoothResidual32 iterate", srx, wantSRx)
		vecs32Equal(t, "SmoothResidual32 residual", srr, wantSRr)
		team.Close()
		s.setTeam(nil)
	}
}

// TestHierarchy32MirrorsFloat64 checks the lazily-built float32 ladder:
// same depth, exactly-rounded conductances and weights, and diagonals
// that track the float64 refresh.
func TestHierarchy32MirrorsFloat64(t *testing.T) {
	m, power, bc := parModel(t)
	w := m.NewWorkspace()
	w.SetSolver(SolverMGPCG32)
	f := w.FieldA()
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
		t.Fatal(err)
	}
	if w.hier32 == nil {
		t.Fatal("mgpcg32 solve did not build the float32 hierarchy")
	}
	if got, want := len(w.hier32.levels), len(w.hier.levels); got != want {
		t.Fatalf("float32 ladder has %d levels, float64 has %d", got, want)
	}
	for k, st := range w.hier32.levels {
		src := w.hier.levels[k].st
		for i := range src.diag {
			if st.diag[i] != float32(src.diag[i]) {
				t.Fatalf("level %d diag[%d] = %v, want float32(%v)", k, i, st.diag[i], src.diag[i])
			}
		}
		for i, g := range src.gx {
			if st.gx[i] != float32(g) {
				t.Fatalf("level %d gx[%d] not exactly rounded", k, i)
			}
		}
	}
}

// TestChebySmootherContracts pins the Chebyshev smoother on a real
// thermal operator: the eigenvalue estimate lands in the Gershgorin
// range of a Jacobi-scaled M-matrix, one degree-2 sweep contracts the
// residual, and the forward and reverse directions are the same map
// bit for bit (the polynomial is self-adjoint — that is what keeps the
// V-cycle symmetric with identical pre- and post-smoothers).
func TestChebySmootherContracts(t *testing.T) {
	m, w, b, x0 := fusedFixture(t)
	cheb := linalg.NewChebySmoother(&w.op, w.op.invDiag, 2)
	if lm := cheb.LambdaMax(); lm <= 1 || lm > 2 {
		t.Fatalf("lambdaMax estimate %g outside (1, 2]", lm)
	}

	r := make(linalg.Vector, m.n)
	w.op.Residual(b, x0, r)
	before := r.Norm2()
	x := x0.Clone()
	cheb.Smooth(b, x, false)
	w.op.Residual(b, x, r)
	after := r.Norm2()
	if after >= before {
		t.Fatalf("chebyshev sweep did not contract the residual: %g -> %g", before, after)
	}

	rev := x0.Clone()
	cheb.Smooth(b, rev, true)
	vecsEqual(t, "cheb forward vs reverse", rev, x)

	// The fused Jacobi-step path and the fallback (Residual + elementwise
	// update) must agree bitwise: JacobiStep's gather accumulates the same
	// expression in the same order.
	y := make(linalg.Vector, m.n)
	w.op.JacobiStep(b, x0, y, 0.61)
	w.op.Residual(b, x0, r)
	for i := range y {
		want := x0[i] + 0.61*w.op.invDiag[i]*r[i]
		if y[i] != want {
			t.Fatalf("JacobiStep[%d] = %x, fallback %x", i, y[i], want)
		}
	}

	if math.IsNaN(cheb.LambdaMax()) {
		t.Fatal("lambdaMax is NaN")
	}
}

// unfusedLevel hides a stencil's SmoothResidual and JacobiStep methods so
// the V-cycle driver takes the pre-PR7 unfused path — the faithful PR 6
// per-cycle cost model (same kernels, separate smooth and residual
// passes, float64 throughout) the speedup acceptance measures against.
type unfusedLevel struct{ st *stencil }

func (u unfusedLevel) Size() int                           { return u.st.Size() }
func (u unfusedLevel) Apply(x, y linalg.Vector)            { u.st.Apply(x, y) }
func (u unfusedLevel) Residual(b, x, r linalg.Vector)      { u.st.Residual(b, x, r) }
func (u unfusedLevel) Smooth(b, x linalg.Vector, rev bool) { u.st.Smooth(b, x, rev) }

// TestMGPCG32ColdSolveSpeedup is the PR's wall-clock acceptance
// criterion: the fused float32 V-cycle preconditioner must make the
// 256×256 cold steady solve at least 1.5× faster than the PR 6 MG-PCG
// (unfused, float64 V-cycle). The win is memory bandwidth — the
// preconditioner is the dominant byte traffic of an MG-PCG iteration and
// the float32 mirror moves half of it — so the assertion runs only where
// bandwidth is the binding constraint: ≥8-way hardware with the solve
// fanned out wide enough that the cores share a saturated memory bus.
// On narrow machines (the 1-CPU dev container, 2-core CI runners) the
// scalar gather kernels are ALU-bound, float32 is a wash by design, and
// the test skips; BENCH_7.json's fraction_of_peak records which regime a
// host is in.
func TestMGPCG32ColdSolveSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 8 || runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("needs >=8-way hardware (NumCPU=%d, GOMAXPROCS=%d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	const threads = 8
	m, power, bc := xvalModel(t, floorplan.XeonE5Package(), 256, 256)

	solveTime := func(setup func(w *Workspace) linalg.Preconditioner) time.Duration {
		w := m.NewWorkspace()
		defer w.Close()
		w.SetThreads(threads)
		if err := w.ensureHierarchy(); err != nil {
			t.Fatal(err)
		}
		pre := setup(w)
		layers := [][]float64{power[0]}
		run := func() {
			f := w.FieldA()
			mdl := w.m
			mdl.fillOperator(&w.op, bc, 0)
			if err := mdl.rhsLayersInto(w.rhs, layers, bc); err != nil {
				t.Fatal(err)
			}
			w.hier.refresh()
			if w.hier32 != nil {
				w.hier32.refresh()
			}
			f.T.Fill(mdl.Env.AmbientC)
			if _, err := linalg.CGWith(&w.op, w.rhs, f.T, linalg.CGOptions{
				Tol: 1e-10, MaxIter: 40 * mdl.n, Precond: pre,
			}, &w.cg); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm-up
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	pr6 := solveTime(func(w *Workspace) linalg.Preconditioner {
		mls := make([]linalg.MGLevel, len(w.hier.levels))
		for i, lv := range w.hier.levels {
			mls[i] = linalg.MGLevel{A: unfusedLevel{lv.st}}
			if lv.down != nil {
				mls[i].Down = lv.down
			}
		}
		mg, err := linalg.NewMultigrid(mls)
		if err != nil {
			t.Fatal(err)
		}
		return mg
	})
	pr7 := solveTime(func(w *Workspace) linalg.Preconditioner {
		if err := w.ensureHierarchy32(); err != nil {
			t.Fatal(err)
		}
		return w.hier32.mg
	})
	speedup := float64(pr6) / float64(pr7)
	t.Logf("256×256 cold mgpcg: PR6 (unfused f64 V-cycle) %v, PR7 (fused f32 V-cycle) %v (%.2fx)", pr6, pr7, speedup)
	if speedup < 1.5 {
		t.Errorf("fused float32 V-cycle speedup %.2fx, want >= 1.5x", speedup)
	}
}
