package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

// smallStack builds a coarse two-layer slab for fast analytic checks.
func smallStack(nx, ny int) *Stack {
	return &Stack{
		Grid: floorplan.NewGrid(nx, ny, 0.02, 0.02),
		Layers: []LayerSpec{
			{Name: "bottom", Thickness: 1e-3, Base: Copper},
			{Name: "top", Thickness: 1e-3, Base: Copper},
		},
	}
}

func TestStackValidate(t *testing.T) {
	good := smallStack(4, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallStack(4, 4)
	bad.Layers[0].Thickness = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero thickness must fail validation")
	}
	bad2 := smallStack(1, 4)
	if err := bad2.Validate(); err == nil {
		t.Fatal("degenerate grid must fail validation")
	}
	bad3 := smallStack(4, 4)
	bad3.Layers[0].Base.K = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative conductivity must fail")
	}
	var empty Stack
	empty.Grid = floorplan.NewGrid(4, 4, 1, 1)
	if err := empty.Validate(); err == nil {
		t.Fatal("empty stack must fail")
	}
}

func TestLayerIndex(t *testing.T) {
	s := NewXeonStack(DefaultXeonStackConfig())
	if s.LayerIndex(LayerDie) != 0 {
		t.Fatal("die should be layer 0")
	}
	if s.LayerIndex(LayerEvap) != 4 {
		t.Fatal("evaporator should be layer 4")
	}
	if s.LayerIndex("nope") != -1 {
		t.Fatal("unknown layer should be -1")
	}
}

func TestUniformHeatingAnalytic(t *testing.T) {
	// A slab heated uniformly from below with a uniform convective top at
	// T_f reaches T ≈ T_f + q″/h when lateral losses are negligible.
	s := smallStack(10, 10)
	env := Environment{AmbientC: 25, BottomH: 0} // adiabatic bottom
	m, err := NewModel(s, env)
	if err != nil {
		t.Fatal(err)
	}
	const totalW = 50.0
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = totalW / float64(m.Cells())
	}
	h := 5000.0
	tf := 40.0
	bc := UniformTop(m.Cells(), h, tf)
	f, err := m.SteadySolve(map[int][]float64{0: p}, bc)
	if err != nil {
		t.Fatal(err)
	}
	area := 0.02 * 0.02
	wantTop := tf + totalW/(h*area) // ≈ 40 + 25 = 65
	got, err := f.Region(1, floorplan.Rect{X: 0, Y: 0, W: 0.02, H: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mean-wantTop) > 1.5 {
		t.Fatalf("top mean = %.2f, want ≈ %.2f", got.Mean, wantTop)
	}
	// Energy conservation: all injected heat leaves through the top.
	if q := f.TotalHeatToTop(bc); math.Abs(q-totalW) > 0.01*totalW {
		t.Fatalf("heat to top = %.3f W, want %.1f", q, totalW)
	}
}

func TestEnergyConservationWithBottomPath(t *testing.T) {
	s := smallStack(8, 8)
	m, err := NewModel(s, Environment{AmbientC: 45, BottomH: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.Cells())
	p[m.Grid().Index(4, 4)] = 30
	bc := UniformTop(m.Cells(), 8000, 35)
	f, err := m.SteadySolve(map[int][]float64{0: p}, bc)
	if err != nil {
		t.Fatal(err)
	}
	qTop := f.TotalHeatToTop(bc)
	qBot := f.TotalHeatToBottom()
	if math.Abs(qTop+qBot-30) > 0.05 {
		t.Fatalf("energy imbalance: top %.3f + bottom %.3f ≠ 30", qTop, qBot)
	}
}

func TestHotterAboveHeatSource(t *testing.T) {
	s := smallStack(12, 12)
	m, _ := NewModel(s, Environment{AmbientC: 25, BottomH: 0})
	p := make([]float64, m.Cells())
	p[m.Grid().Index(2, 2)] = 20
	bc := UniformTop(m.Cells(), 6000, 30)
	f, err := m.SteadySolve(map[int][]float64{0: p}, bc)
	if err != nil {
		t.Fatal(err)
	}
	hot := f.At(0, 2, 2)
	far := f.At(0, 10, 10)
	if hot <= far+1 {
		t.Fatalf("source cell %.2f should be clearly hotter than far cell %.2f", hot, far)
	}
	// Everything must sit above the fluid temperature.
	if far < 30-1e-6 {
		t.Fatalf("far cell %.2f below fluid temperature", far)
	}
}

func TestTopBoundaryValidation(t *testing.T) {
	s := smallStack(4, 4)
	m, _ := NewModel(s, DefaultEnvironment())
	short := TopBoundary{H: make([]float64, 3), TFluid: make([]float64, 3)}
	if _, err := m.SteadySolve(nil, short); err == nil {
		t.Fatal("mismatched boundary must error")
	}
}

func TestPowerValidation(t *testing.T) {
	s := smallStack(4, 4)
	m, _ := NewModel(s, DefaultEnvironment())
	bc := UniformTop(m.Cells(), 1000, 30)
	if _, err := m.SteadySolve(map[int][]float64{9: make([]float64, m.Cells())}, bc); err == nil {
		t.Fatal("invalid layer index must error")
	}
	if _, err := m.SteadySolve(map[int][]float64{0: make([]float64, 2)}, bc); err == nil {
		t.Fatal("short power vector must error")
	}
}

func TestTransientApproachesSteady(t *testing.T) {
	s := smallStack(8, 8)
	m, _ := NewModel(s, Environment{AmbientC: 25, BottomH: 0})
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = 40.0 / float64(m.Cells())
	}
	bc := UniformTop(m.Cells(), 4000, 35)
	pw := map[int][]float64{0: p}
	steady, err := m.SteadySolve(pw, bc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.UniformField(25)
	for i := 0; i < 400; i++ {
		f, err = m.StepTransient(f, 0.05, pw, bc)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range f.T {
		if math.Abs(f.T[i]-steady.T[i]) > 0.2 {
			t.Fatalf("transient cell %d = %.3f, steady %.3f", i, f.T[i], steady.T[i])
		}
	}
}

func TestTransientMonotoneWarmup(t *testing.T) {
	s := smallStack(6, 6)
	m, _ := NewModel(s, Environment{AmbientC: 25, BottomH: 0})
	p := make([]float64, m.Cells())
	p[0] = 10
	bc := UniformTop(m.Cells(), 3000, 25)
	pw := map[int][]float64{0: p}
	f := m.UniformField(25)
	prev := f.At(0, 0, 0)
	for i := 0; i < 20; i++ {
		var err error
		f, err = m.StepTransient(f, 0.1, pw, bc)
		if err != nil {
			t.Fatal(err)
		}
		cur := f.At(0, 0, 0)
		if cur < prev-1e-9 {
			t.Fatalf("warm-up not monotone at step %d: %v < %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestTransientValidation(t *testing.T) {
	s := smallStack(4, 4)
	m, _ := NewModel(s, DefaultEnvironment())
	bc := UniformTop(m.Cells(), 1000, 30)
	f := m.UniformField(25)
	if _, err := m.StepTransient(f, -1, nil, bc); err == nil {
		t.Fatal("negative dt must error")
	}
	if _, err := m.StepTransient(nil, 0.1, nil, bc); err == nil {
		t.Fatal("nil field must error")
	}
}

func TestXeonStackDieRegion(t *testing.T) {
	cfg := DefaultXeonStackConfig()
	s := NewXeonStack(cfg)
	m, err := NewModel(s, DefaultEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	// Uniform die power spread over the die footprint only.
	die := cfg.Package.DieRectOnPackage()
	g := s.Grid
	p := make([]float64, m.Cells())
	var nDie int
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			cx, cy := g.CellCenter(ix, iy)
			if die.Contains(cx, cy) {
				nDie++
			}
		}
	}
	// Uniform 40 W over the die plus a 20 W hot block in the die's NW
	// quadrant, mimicking an active core cluster.
	hot := floorplan.Rect{X: die.X, Y: die.Y, W: die.W / 4, H: die.H / 4}
	var nHot int
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			cx, cy := g.CellCenter(ix, iy)
			if hot.Contains(cx, cy) {
				nHot++
			}
		}
	}
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			cx, cy := g.CellCenter(ix, iy)
			idx := g.Index(ix, iy)
			if die.Contains(cx, cy) {
				p[idx] = 40.0 / float64(nDie)
			}
			if hot.Contains(cx, cy) {
				p[idx] += 20.0 / float64(nHot)
			}
		}
	}
	bc := UniformTop(m.Cells(), 9000, 38)
	f, err := m.SteadySolve(map[int][]float64{0: p}, bc)
	if err != nil {
		t.Fatal(err)
	}
	dieStats, err := f.Region(0, die)
	if err != nil {
		t.Fatal(err)
	}
	evapStats, err := f.Region(4, floorplan.Rect{X: 0, Y: 0, W: cfg.Package.Width, H: cfg.Package.Height})
	if err != nil {
		t.Fatal(err)
	}
	// Die hotter than evaporator surface; both above fluid temperature;
	// die temperatures in a server-plausible band.
	if dieStats.Max <= evapStats.Max {
		t.Fatalf("die max %.1f should exceed evaporator max %.1f", dieStats.Max, evapStats.Max)
	}
	if dieStats.Max < 40 || dieStats.Max > 110 {
		t.Fatalf("die max %.1f outside plausible band", dieStats.Max)
	}
	// The dead east side of the die must be cooler than the west (cores
	// absent here since power is uniform — just check spreader smooths).
	sp, _ := f.Region(2, die)
	if sp.Max-sp.Min >= dieStats.Max-dieStats.Min {
		t.Fatal("spreader should have a flatter profile than the die")
	}
}

func TestFieldAccessors(t *testing.T) {
	s := smallStack(4, 4)
	m, _ := NewModel(s, DefaultEnvironment())
	f := m.UniformField(33)
	if f.At(1, 2, 2) != 33 {
		t.Fatal("UniformField wrong")
	}
	if _, err := f.LayerByName("top"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LayerByName("zzz"); err == nil {
		t.Fatal("unknown layer must error")
	}
	if f.SampleAt(0, -1, -1) != 33 {
		t.Fatal("SampleAt should clamp")
	}
	c := f.Clone()
	c.T[0] = 99
	if f.T[0] != 33 {
		t.Fatal("Clone aliases")
	}
	if _, err := f.Region(0, floorplan.Rect{X: 100, Y: 100, W: 1, H: 1}); err == nil {
		t.Fatal("empty probe must error")
	}
}
