package thermal

import (
	"math"

	"repro/internal/linalg"
)

// stencil is the 7-point conduction stencil over an (nx, ny, nl) cell
// grid: per-edge conductances in x, y (within a layer) and z (between
// consecutive layers) plus a full diagonal. It is the shared operator
// representation of every level of the solve stack — the fine level
// aliases the Model's conductance arrays, coarse multigrid levels own
// aggregated copies — and implements linalg.Operator, StencilSweeper and
// Smoother.
//
// Indexing matches Model: unknown i = l·cells + iy·nx + ix; gx[i] couples
// i to i+1 (stored at the west cell, zero in the last column), gy[i]
// couples i to i+nx (zero in the last row), gz[l·cells+c] couples layer l
// to l+1 at cell c.
type stencil struct {
	nx, ny, nl int
	cells      int // per layer
	n          int // total unknowns

	gx, gy, gz []float64
	diag       linalg.Vector
	invDiag    linalg.Vector
}

// Size returns the dimension of the operator.
func (s *stencil) Size() int { return s.n }

// Apply computes y = A·x for the assembled stencil.
func (s *stencil) Apply(x, y linalg.Vector) {
	nx, cells := s.nx, s.cells
	for i := range y {
		y[i] = s.diag[i] * x[i]
	}
	for l := 0; l < s.nl; l++ {
		base := l * cells
		for c := 0; c < cells; c++ {
			i := base + c
			if g := s.gx[i]; g != 0 {
				j := i + 1
				y[i] -= g * x[j]
				y[j] -= g * x[i]
			}
			if g := s.gy[i]; g != 0 {
				j := i + nx
				y[i] -= g * x[j]
				y[j] -= g * x[i]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					j := i + cells
					y[i] -= g * x[j]
					y[j] -= g * x[i]
				}
			}
		}
	}
}

// Residual computes r = b - A·x.
func (s *stencil) Residual(b, x, r linalg.Vector) {
	s.Apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// SweepSOR performs one lexicographic Gauss-Seidel/SOR sweep updating x
// toward A·x = b and returns the maximum absolute update applied.
func (s *stencil) SweepSOR(b, x linalg.Vector, omega float64) float64 {
	nx, cells := s.nx, s.cells
	var maxDelta float64
	for l := 0; l < s.nl; l++ {
		base := l * cells
		for c := 0; c < cells; c++ {
			i := base + c
			su := b[i]
			if c%nx != 0 { // west neighbor stores gx at its own index
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if c >= nx {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			xNew := su / s.diag[i]
			delta := omega * (xNew - x[i])
			x[i] += delta
			if a := math.Abs(delta); a > maxDelta {
				maxDelta = a
			}
		}
	}
	return maxDelta
}

// Smooth performs one red-black Gauss-Seidel sweep (ω = 1). Cells are
// colored by (ix+iy+l) parity, so every cell of one color updates against
// a frozen opposite color: the sweep result is independent of traversal
// order within a color, which is what makes smoothing deterministic under
// any future parallel split. Forward relaxes red (parity 0) then black;
// reverse relaxes black then red — the reversal V-cycles need for a
// symmetric pre/post smoothing pair.
func (s *stencil) Smooth(b, x linalg.Vector, reverse bool) {
	colors := [2]int{0, 1}
	if reverse {
		colors = [2]int{1, 0}
	}
	nx, ny, cells := s.nx, s.ny, s.cells
	for _, color := range colors {
		for l := 0; l < s.nl; l++ {
			base := l * cells
			for iy := 0; iy < ny; iy++ {
				row := base + iy*nx
				for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
					i := row + ix
					su := b[i]
					if ix > 0 {
						su += s.gx[i-1] * x[i-1]
					}
					if g := s.gx[i]; g != 0 {
						su += g * x[i+1]
					}
					if iy > 0 {
						su += s.gy[i-nx] * x[i-nx]
					}
					if g := s.gy[i]; g != 0 {
						su += g * x[i+nx]
					}
					if l > 0 {
						su += s.gz[i-cells] * x[i-cells]
					}
					if l < s.nl-1 {
						if g := s.gz[i]; g != 0 {
							su += g * x[i+cells]
						}
					}
					x[i] = su * s.invDiag[i]
				}
			}
		}
	}
}
