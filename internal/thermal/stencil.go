package thermal

import (
	"math"

	"repro/internal/linalg"
)

// stencil is the 7-point conduction stencil over an (nx, ny, nl) cell
// grid: per-edge conductances in x, y (within a layer) and z (between
// consecutive layers) plus a full diagonal. It is the shared operator
// representation of every level of the solve stack — the fine level
// aliases the Model's conductance arrays, coarse multigrid levels own
// aggregated copies — and implements linalg.Operator, StencilSweeper and
// Smoother.
//
// Indexing matches Model: unknown i = l·cells + iy·nx + ix; gx[i] couples
// i to i+1 (stored at the west cell, zero in the last column), gy[i]
// couples i to i+nx (zero in the last row), gz[l·cells+c] couples layer l
// to l+1 at cell c.
//
// Apply, Residual and Smooth are written as gather kernels over grid rows
// (global row g = l·ny + iy): every output element is computed alone from
// frozen inputs, so the rows can be banded across a worker team and the
// result is byte-identical at any thread count. The gather order mirrors
// the historical scatter accumulation exactly (diagonal, below, south,
// west, east, north, above), so the parallel rewrite changed no bits.
type stencil struct {
	nx, ny, nl int
	cells      int // per layer
	n          int // total unknowns

	gx, gy, gz []float64
	diag       linalg.Vector
	invDiag    linalg.Vector

	// team is the shared worker team (nil = serial); job is the persistent
	// dispatch adapter so parallel kernels allocate nothing per call.
	team *linalg.Team
	job  stencilJob
}

// parMinStencil is the unknown count below which a stencil pass runs on
// the calling goroutine: the coarse multigrid levels stay serial, the
// fine levels fan out. Size-gated, so results cannot depend on it.
const parMinStencil = 4096

// setTeam attaches the worker team the row kernels dispatch on.
func (s *stencil) setTeam(t *linalg.Team) { s.team = t }

// parallel reports whether a pass over this stencil should use the team.
func (s *stencil) parallel() bool {
	return s.team.Workers() > 1 && s.n >= parMinStencil
}

// stencilJob adapts one stencil pass to linalg.Task: workers band the
// nl·ny grid rows and run the mode's row kernel over their share.
type stencilJob struct {
	s       *stencil
	mode    int
	b, x, y linalg.Vector
	color   int
}

const (
	jobApply = iota
	jobResidual
	jobSmooth
)

// Do implements linalg.Task.
func (j *stencilJob) Do(worker, workers int) {
	lo, hi := linalg.Band(j.s.nl*j.s.ny, worker, workers)
	switch j.mode {
	case jobApply:
		j.s.applyRows(j.x, j.y, lo, hi)
	case jobResidual:
		j.s.residualRows(j.b, j.x, j.y, lo, hi)
	case jobSmooth:
		j.s.smoothRows(j.b, j.x, j.color, lo, hi)
	}
}

// Size returns the dimension of the operator.
func (s *stencil) Size() int { return s.n }

// Apply computes y = A·x for the assembled stencil, banding the grid rows
// across the worker team when one is attached.
func (s *stencil) Apply(x, y linalg.Vector) {
	if s.parallel() {
		s.job = stencilJob{s: s, mode: jobApply, x: x, y: y}
		s.team.Run(&s.job)
		return
	}
	s.applyRows(x, y, 0, s.nl*s.ny)
}

// applyRows is the gather kernel for y = A·x over global rows [rowLo, rowHi).
func (s *stencil) applyRows(x, y linalg.Vector, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		i := l*cells + iy*nx
		for ix := 0; ix < nx; ix++ {
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			y[i] = v
			i++
		}
	}
}

// Residual computes r = b - A·x, fused into the apply pass (the
// subtraction costs no extra memory traffic and the bytes match the
// two-pass form exactly).
func (s *stencil) Residual(b, x, r linalg.Vector) {
	if s.parallel() {
		s.job = stencilJob{s: s, mode: jobResidual, b: b, x: x, y: r}
		s.team.Run(&s.job)
		return
	}
	s.residualRows(b, x, r, 0, s.nl*s.ny)
}

// residualRows is the gather kernel for r = b - A·x over a row band.
func (s *stencil) residualRows(b, x, r linalg.Vector, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		i := l*cells + iy*nx
		for ix := 0; ix < nx; ix++ {
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			r[i] = b[i] - v
			i++
		}
	}
}

// SweepSOR performs one lexicographic Gauss-Seidel/SOR sweep updating x
// toward A·x = b and returns the maximum absolute update applied. The
// lexicographic recurrence is inherently sequential, so this sweep always
// runs on the calling goroutine.
func (s *stencil) SweepSOR(b, x linalg.Vector, omega float64) float64 {
	nx, cells := s.nx, s.cells
	var maxDelta float64
	for l := 0; l < s.nl; l++ {
		base := l * cells
		for c := 0; c < cells; c++ {
			i := base + c
			su := b[i]
			if c%nx != 0 { // west neighbor stores gx at its own index
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if c >= nx {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			xNew := su / s.diag[i]
			delta := omega * (xNew - x[i])
			x[i] += delta
			if a := math.Abs(delta); a > maxDelta {
				maxDelta = a
			}
		}
	}
	return maxDelta
}

// Smooth performs one red-black Gauss-Seidel sweep (ω = 1). Cells are
// colored by (ix+iy+l) parity, so every cell of one color updates against
// a frozen opposite color: the sweep result is independent of traversal
// order within a color, which is exactly what lets the rows of one color
// fan out across the worker team — one barrier per color — with the
// result byte-identical to the serial sweep. Forward relaxes red (parity
// 0) then black; reverse relaxes black then red — the reversal V-cycles
// need for a symmetric pre/post smoothing pair.
func (s *stencil) Smooth(b, x linalg.Vector, reverse bool) {
	colors := [2]int{0, 1}
	if reverse {
		colors = [2]int{1, 0}
	}
	if s.parallel() {
		for _, color := range colors {
			s.job = stencilJob{s: s, mode: jobSmooth, b: b, x: x, color: color}
			s.team.Run(&s.job)
		}
		return
	}
	for _, color := range colors {
		s.smoothRows(b, x, color, 0, s.nl*s.ny)
	}
}

// smoothRows relaxes one color of a red-black sweep over a row band.
func (s *stencil) smoothRows(b, x linalg.Vector, color, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		row := l*cells + iy*nx
		for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
			i := row + ix
			su := b[i]
			if ix > 0 {
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if iy > 0 {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			x[i] = su * s.invDiag[i]
		}
	}
}
