package thermal

import (
	"math"

	"repro/internal/linalg"
)

// stencil is the 7-point conduction stencil over an (nx, ny, nl) cell
// grid: per-edge conductances in x, y (within a layer) and z (between
// consecutive layers) plus a full diagonal. It is the shared operator
// representation of every level of the solve stack — the fine level
// aliases the Model's conductance arrays, coarse multigrid levels own
// aggregated copies — and implements linalg.Operator, StencilSweeper and
// Smoother.
//
// Indexing matches Model: unknown i = l·cells + iy·nx + ix; gx[i] couples
// i to i+1 (stored at the west cell, zero in the last column), gy[i]
// couples i to i+nx (zero in the last row), gz[l·cells+c] couples layer l
// to l+1 at cell c.
//
// Apply, Residual and Smooth are written as gather kernels over grid rows
// (global row g = l·ny + iy): every output element is computed alone from
// frozen inputs, so the rows can be banded across a worker team and the
// result is byte-identical at any thread count. The gather order mirrors
// the historical scatter accumulation exactly (diagonal, below, south,
// west, east, north, above), so the parallel rewrite changed no bits.
type stencil struct {
	nx, ny, nl int
	cells      int // per layer
	n          int // total unknowns

	gx, gy, gz []float64
	diag       linalg.Vector
	invDiag    linalg.Vector

	// team is the shared worker team (nil = serial); job is the persistent
	// dispatch adapter so parallel kernels allocate nothing per call.
	team *linalg.Team
	job  stencilJob
}

// The stencil and transfer kernels share linalg.ParMin as their size
// gate: below it a pass runs on the calling goroutine (the coarse
// multigrid levels stay serial, the fine levels fan out). Size-gated, so
// results cannot depend on it; see the derivation on linalg.ParMin.

// setTeam attaches the worker team the row kernels dispatch on.
func (s *stencil) setTeam(t *linalg.Team) { s.team = t }

// parallel reports whether a pass over this stencil should use the team.
func (s *stencil) parallel() bool {
	return s.team.Workers() > 1 && s.n >= linalg.ParMin
}

// stencilJob adapts one stencil pass to linalg.Task: workers band the
// nl·ny grid rows and run the mode's row kernel over their share.
type stencilJob struct {
	s       *stencil
	mode    int
	b, x, y linalg.Vector
	color   int
	omega   float64
}

const (
	jobApply = iota
	jobResidual
	jobSmooth
	jobSmoothResidual
	jobResidualColor
	jobJacobiStep
)

// Do implements linalg.Task.
func (j *stencilJob) Do(worker, workers int) {
	lo, hi := linalg.Band(j.s.nl*j.s.ny, worker, workers)
	switch j.mode {
	case jobApply:
		j.s.applyRows(j.x, j.y, lo, hi)
	case jobResidual:
		j.s.residualRows(j.b, j.x, j.y, lo, hi)
	case jobSmooth:
		j.s.smoothRows(j.b, j.x, j.color, lo, hi)
	case jobSmoothResidual:
		j.s.smoothResidualRows(j.b, j.x, j.y, j.color, lo, hi)
	case jobResidualColor:
		j.s.residualColorRows(j.b, j.x, j.y, j.color, lo, hi)
	case jobJacobiStep:
		j.s.jacobiStepRows(j.b, j.x, j.y, j.omega, lo, hi)
	}
}

// The stencil provides the fused and polynomial smoothing kernels the
// V-cycle drivers dispatch on when available.
var (
	_ linalg.FusedSmoother = (*stencil)(nil)
	_ linalg.JacobiStepper = (*stencil)(nil)
)

// Size returns the dimension of the operator.
func (s *stencil) Size() int { return s.n }

// Apply computes y = A·x for the assembled stencil, banding the grid rows
// across the worker team when one is attached.
func (s *stencil) Apply(x, y linalg.Vector) {
	if s.parallel() {
		s.job = stencilJob{s: s, mode: jobApply, x: x, y: y}
		s.team.Run(&s.job)
		return
	}
	s.applyRows(x, y, 0, s.nl*s.ny)
}

// applyRows is the gather kernel for y = A·x over global rows [rowLo, rowHi).
func (s *stencil) applyRows(x, y linalg.Vector, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		i := l*cells + iy*nx
		for ix := 0; ix < nx; ix++ {
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			y[i] = v
			i++
		}
	}
}

// Residual computes r = b - A·x, fused into the apply pass (the
// subtraction costs no extra memory traffic and the bytes match the
// two-pass form exactly).
func (s *stencil) Residual(b, x, r linalg.Vector) {
	if s.parallel() {
		s.job = stencilJob{s: s, mode: jobResidual, b: b, x: x, y: r}
		s.team.Run(&s.job)
		return
	}
	s.residualRows(b, x, r, 0, s.nl*s.ny)
}

// residualRows is the gather kernel for r = b - A·x over a row band.
func (s *stencil) residualRows(b, x, r linalg.Vector, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		i := l*cells + iy*nx
		for ix := 0; ix < nx; ix++ {
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			r[i] = b[i] - v
			i++
		}
	}
}

// SweepSOR performs one lexicographic Gauss-Seidel/SOR sweep updating x
// toward A·x = b and returns the maximum absolute update applied. The
// lexicographic recurrence is inherently sequential, so this sweep always
// runs on the calling goroutine.
func (s *stencil) SweepSOR(b, x linalg.Vector, omega float64) float64 {
	nx, cells := s.nx, s.cells
	var maxDelta float64
	for l := 0; l < s.nl; l++ {
		base := l * cells
		for c := 0; c < cells; c++ {
			i := base + c
			su := b[i]
			if c%nx != 0 { // west neighbor stores gx at its own index
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if c >= nx {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			xNew := su / s.diag[i]
			delta := omega * (xNew - x[i])
			x[i] += delta
			if a := math.Abs(delta); a > maxDelta {
				maxDelta = a
			}
		}
	}
	return maxDelta
}

// Smooth performs one red-black Gauss-Seidel sweep (ω = 1). Cells are
// colored by (ix+iy+l) parity, so every cell of one color updates against
// a frozen opposite color: the sweep result is independent of traversal
// order within a color, which is exactly what lets the rows of one color
// fan out across the worker team — one barrier per color — with the
// result byte-identical to the serial sweep. Forward relaxes red (parity
// 0) then black; reverse relaxes black then red — the reversal V-cycles
// need for a symmetric pre/post smoothing pair.
func (s *stencil) Smooth(b, x linalg.Vector, reverse bool) {
	colors := [2]int{0, 1}
	if reverse {
		colors = [2]int{1, 0}
	}
	if s.parallel() {
		for _, color := range colors {
			s.job = stencilJob{s: s, mode: jobSmooth, b: b, x: x, color: color}
			s.team.Run(&s.job)
		}
		return
	}
	for _, color := range colors {
		s.smoothRows(b, x, color, 0, s.nl*s.ny)
	}
}

// smoothRows relaxes one color of a red-black sweep over a row band.
func (s *stencil) smoothRows(b, x linalg.Vector, color, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		row := l*cells + iy*nx
		for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
			i := row + ix
			su := b[i]
			if ix > 0 {
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if iy > 0 {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			x[i] = su * s.invDiag[i]
		}
	}
}

// SmoothResidual implements linalg.FusedSmoother: one forward red-black
// sweep plus the residual of the updated iterate, bit-identical to
// Smooth(b, x, false) followed by Residual(b, x, r) but with one less
// full pass over the field and coefficient arrays. The fusion exploits
// the coloring: every neighbor of a black cell is red, so once the red
// half-sweep is done, relaxing a black cell leaves its entire stencil
// neighborhood final — its residual can be evaluated in the same visit,
// while the coefficients and neighbor temperatures are still hot. Only
// the red residuals need a trailing half-pass (they read the black values
// the second phase just wrote). Barriers sit exactly where gather order
// requires them: after the red half-sweep and after the black phase.
func (s *stencil) SmoothResidual(b, x, r linalg.Vector) {
	if s.parallel() {
		s.job = stencilJob{s: s, mode: jobSmooth, b: b, x: x, color: 0}
		s.team.Run(&s.job)
		s.job = stencilJob{s: s, mode: jobSmoothResidual, b: b, x: x, y: r, color: 1}
		s.team.Run(&s.job)
		s.job = stencilJob{s: s, mode: jobResidualColor, b: b, x: x, y: r, color: 0}
		s.team.Run(&s.job)
		return
	}
	rows := s.nl * s.ny
	s.smoothRows(b, x, 0, 0, rows)
	s.smoothResidualRows(b, x, r, 1, 0, rows)
	s.residualColorRows(b, x, r, 0, 0, rows)
}

// smoothResidualRows relaxes one color of a red-black sweep over a row
// band and evaluates the residual at the relaxed cells in the same visit.
// The relaxation reproduces smoothRows bit for bit; the residual
// reproduces residualRows bit for bit (same gather expression on the
// just-updated x), so the fused pass changes no bytes anywhere.
func (s *stencil) smoothResidualRows(b, x, r linalg.Vector, color, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		row := l*cells + iy*nx
		for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
			i := row + ix
			su := b[i]
			if ix > 0 {
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if iy > 0 {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			x[i] = su * s.invDiag[i]

			// Residual of the relaxed cell, in residualRows' exact gather
			// order — every neighbor is the opposite color and final.
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			r[i] = b[i] - v
		}
	}
}

// residualColorRows evaluates r = b - A·x at the cells of one color over
// a row band — the trailing half-pass of SmoothResidual.
func (s *stencil) residualColorRows(b, x, r linalg.Vector, color, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		row := l*cells + iy*nx
		for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
			i := row + ix
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			r[i] = b[i] - v
		}
	}
}

// JacobiStep implements linalg.JacobiStepper for the Chebyshev smoother:
// y = x + ω·D⁻¹(b − A·x) in one gather pass — residual, diagonal scale
// and update fused, one barrier per polynomial degree (a red-black sweep
// costs two). x is read-only for the pass and y is written once per cell,
// so banding the rows across the team is deterministic by construction.
func (s *stencil) JacobiStep(b, x, y linalg.Vector, omega float64) {
	if s.parallel() {
		s.job = stencilJob{s: s, mode: jobJacobiStep, b: b, x: x, y: y, omega: omega}
		s.team.Run(&s.job)
		return
	}
	s.jacobiStepRows(b, x, y, omega, 0, s.nl*s.ny)
}

// jacobiStepRows is the fused damped-Jacobi gather kernel over a row band.
func (s *stencil) jacobiStepRows(b, x, y linalg.Vector, omega float64, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		i := l*cells + iy*nx
		for ix := 0; ix < nx; ix++ {
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			y[i] = x[i] + omega*s.invDiag[i]*(b[i]-v)
			i++
		}
	}
}
