package thermal

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// These tests pin the intra-solve parallelism contract at the thermal
// level: SetThreads never changes a byte of any kernel output or any
// solve, on every solver path. They run the parallel kernels for real,
// so `go test -race` doubles as the data-race gate for the banded
// stencil sweeps and the layer-slab transfers.

// parModel builds a deliberately odd-sized model (ragged worker bands,
// n above the parallel dispatch threshold) with a non-uniform power map
// and boundary.
func parModel(t testing.TB) (*Model, map[int][]float64, TopBoundary) {
	t.Helper()
	cfg := DefaultXeonStackConfig()
	cfg.NX, cfg.NY = 41, 33
	m, err := NewModel(NewXeonStack(cfg), DefaultEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	if m.n < linalg.ParMin {
		t.Fatalf("fixture too small to exercise the parallel path: n=%d", m.n)
	}
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = 0.05 + 0.004*float64(i%23)
	}
	bc := UniformTop(m.Cells(), 6000, 32)
	for i := range bc.H {
		bc.H[i] += 35 * float64(i%11)
	}
	return m, map[int][]float64{0: p}, bc
}

// parField fills a deterministic non-trivial iterate.
func parField(n int) linalg.Vector {
	x := make(linalg.Vector, n)
	for i := range x {
		x[i] = 40 + 10*math.Sin(float64(i)*0.13)
	}
	return x
}

func vecsEqual(t *testing.T, what string, got, want linalg.Vector) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s differs at element %d: %x vs %x", what, i, got[i], want[i])
		}
	}
}

// TestStencilKernelsByteIdenticalAcrossThreads checks Apply, Residual and
// both red-black smoothing directions at several team widths against the
// serial sweep.
func TestStencilKernelsByteIdenticalAcrossThreads(t *testing.T) {
	m, power, bc := parModel(t)
	ref := m.NewWorkspace()
	b, err := m.rhs(power, bc)
	if err != nil {
		t.Fatal(err)
	}
	m.fillOperator(&ref.op, bc, 0)

	x := parField(m.n)
	wantY := make(linalg.Vector, m.n)
	ref.op.Apply(x, wantY)
	wantR := make(linalg.Vector, m.n)
	ref.op.Residual(b, x, wantR)
	wantFwd := x.Clone()
	ref.op.Smooth(b, wantFwd, false)
	wantRev := x.Clone()
	ref.op.Smooth(b, wantRev, true)
	wantSRx := x.Clone()
	wantSRr := make(linalg.Vector, m.n)
	ref.op.SmoothResidual(b, wantSRx, wantSRr)
	wantJac := make(linalg.Vector, m.n)
	ref.op.JacobiStep(b, x, wantJac, 0.7)

	for _, threads := range []int{2, 3, 8} {
		w := m.NewWorkspace()
		w.SetThreads(threads)
		m.fillOperator(&w.op, bc, 0)
		y := make(linalg.Vector, m.n)
		w.op.Apply(x, y)
		vecsEqual(t, "Apply", y, wantY)
		r := make(linalg.Vector, m.n)
		w.op.Residual(b, x, r)
		vecsEqual(t, "Residual", r, wantR)
		fwd := x.Clone()
		w.op.Smooth(b, fwd, false)
		vecsEqual(t, "Smooth forward", fwd, wantFwd)
		rev := x.Clone()
		w.op.Smooth(b, rev, true)
		vecsEqual(t, "Smooth reverse", rev, wantRev)
		srx := x.Clone()
		srr := make(linalg.Vector, m.n)
		w.op.SmoothResidual(b, srx, srr)
		vecsEqual(t, "SmoothResidual iterate", srx, wantSRx)
		vecsEqual(t, "SmoothResidual residual", srr, wantSRr)
		jac := make(linalg.Vector, m.n)
		w.op.JacobiStep(b, x, jac, 0.7)
		vecsEqual(t, "JacobiStep", jac, wantJac)
		w.Close()
	}
}

// TestSolvesByteIdenticalAcrossThreads runs the steady and transient
// paths under every solver at several thread counts and demands the
// fields match the serial solve bit for bit — the workspace-level form of
// the determinism contract, covering the fused CG kernels, the parallel
// stencil and the layer-slab multigrid transfers together.
func TestSolvesByteIdenticalAcrossThreads(t *testing.T) {
	m, power, bc := parModel(t)
	for _, solver := range []Solver{SolverCG, SolverMGPCG, SolverMG, SolverMGPCG32, SolverMGPCGCheb} {
		ref := m.NewWorkspace()
		ref.SetSolver(solver)
		steady := ref.FieldA()
		if err := ref.SteadySolveInto(steady, nil, power, bc); err != nil {
			t.Fatalf("%v serial steady: %v", solver, err)
		}
		step := ref.FieldB()
		step.T.Fill(30)
		if err := ref.StepTransientInto(step, step, 0.25, power, bc); err != nil {
			t.Fatalf("%v serial transient: %v", solver, err)
		}
		for _, threads := range []int{2, 4, 8} {
			w := m.NewWorkspace()
			w.SetSolver(solver)
			w.SetThreads(threads)
			if got := w.Threads(); got != threads {
				t.Fatalf("Threads() = %d, want %d", got, threads)
			}
			f := w.FieldA()
			if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
				t.Fatalf("%v steady @%d threads: %v", solver, threads, err)
			}
			vecsEqual(t, "steady field", f.T, steady.T)
			g := w.FieldB()
			g.T.Fill(30)
			if err := w.StepTransientInto(g, g, 0.25, power, bc); err != nil {
				t.Fatalf("%v transient @%d threads: %v", solver, threads, err)
			}
			vecsEqual(t, "transient field", g.T, step.T)
			w.Close()
		}
	}
}

// TestLayersSolveMatchesMapSolve pins the satellite refactor: the dense
// per-layer power table must be exactly the map path (which now wraps
// it), including validation failures.
func TestLayersSolveMatchesMapSolve(t *testing.T) {
	m, power, bc := parModel(t)
	wMap := m.NewWorkspace()
	fMap := wMap.FieldA()
	if err := wMap.SteadySolveInto(fMap, nil, power, bc); err != nil {
		t.Fatal(err)
	}
	wSl := m.NewWorkspace()
	fSl := wSl.FieldA()
	layers := make([][]float64, 1)
	layers[0] = power[0]
	if err := wSl.SteadySolveLayersInto(fSl, nil, layers, bc); err != nil {
		t.Fatal(err)
	}
	vecsEqual(t, "layers-vs-map steady", fSl.T, fMap.T)

	long := make([][]float64, m.Layers()+1)
	if err := wSl.SteadySolveLayersInto(fSl, nil, long, bc); err == nil {
		t.Fatal("oversized layer table must error")
	}
	bad := [][]float64{make([]float64, 3)}
	if err := wSl.StepTransientLayersInto(fSl, fSl, 0.1, bad, bc); err == nil {
		t.Fatal("mis-sized layer power must error")
	}
}

// TestWorkspaceThreadsZeroAllocs extends the PR 2 zero-alloc gate to the
// parallel path: a warm workspace solving with a worker team must stay
// heap-silent — the team dispatch itself allocates nothing.
func TestWorkspaceThreadsZeroAllocs(t *testing.T) {
	m, power, bc := parModel(t)
	for _, solver := range []Solver{SolverCG, SolverMGPCG} {
		w := m.NewWorkspace()
		w.SetSolver(solver)
		w.SetThreads(4)
		f := w.FieldA()
		solve := func() {
			if err := w.SteadySolveInto(f, f, power, bc); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.SteadySolveInto(f, nil, power, bc); err != nil { // warm-up
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(10, solve); allocs != 0 {
			t.Fatalf("%v: threaded steady solve allocated %.1f times per run, want 0", solver, allocs)
		}
		w.Close()
	}
}

// TestSetThreadsLifecycle covers the knob's edges: re-setting the same
// width is a no-op, resizing swaps teams, Close leaves a serial but
// usable workspace, and GOMAXPROCS selection (n <= 0) resolves to at
// least one thread.
func TestSetThreadsLifecycle(t *testing.T) {
	m, power, bc := parModel(t)
	w := m.NewWorkspace()
	w.SetThreads(2)
	w.SetThreads(2) // no-op path
	w.SetThreads(3) // resize swaps the team
	f := w.FieldA()
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
		t.Fatal(err)
	}
	ref := f.T.Clone()
	w.Close()
	if got := w.Threads(); got != 1 {
		t.Fatalf("Threads() after Close = %d, want 1", got)
	}
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
		t.Fatal(err)
	}
	vecsEqual(t, "post-Close solve", f.T, ref)
	w.SetThreads(0)
	if w.Threads() < 1 {
		t.Fatalf("SetThreads(0) resolved to %d", w.Threads())
	}
	w.Close()
}

// TestThreadScalingSpeedup asserts the PR's wall-clock acceptance
// criterion — ≥2.5× on the 256×256 steady solve at 8 threads vs serial —
// where it is physically meaningful: the test skips on hardware with
// fewer than 8 ways (including the 1-CPU dev container and the 2-core
// CI runners), so the assertion runs exactly on the machines the
// criterion describes. Best-of-5 timing per configuration resists
// scheduler noise; BENCH_5.json records the same ratio for every run of
// scripts/bench.sh regardless of width.
func TestThreadScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 8 || runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("needs >=8-way hardware (NumCPU=%d, GOMAXPROCS=%d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	m, power, bc := xvalModel(t, floorplan.XeonE5Package(), 256, 256)
	solveTime := func(threads int) time.Duration {
		w := m.NewWorkspace()
		defer w.Close()
		w.SetSolver(SolverMGPCG)
		w.SetThreads(threads)
		f := w.FieldA()
		if err := w.SteadySolveInto(f, nil, power, bc); err != nil { // warm-up
			t.Fatal(err)
		}
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := solveTime(1)
	parallel := solveTime(8)
	speedup := float64(serial) / float64(parallel)
	t.Logf("256×256 mgpcg steady solve: serial %v, 8 threads %v (%.2fx)", serial, parallel, speedup)
	if speedup < 2.5 {
		t.Errorf("8-thread speedup %.2fx, want >= 2.5x", speedup)
	}
}

// BenchmarkStencilApply measures the 7-point operator application across
// grid sizes and team widths — the innermost kernel of every solver.
// ReportAllocs doubles as the zero-alloc gate for team dispatch.
func BenchmarkStencilApply(b *testing.B) {
	for _, n := range []int{128, 256} {
		m, _, bc := xvalModel(b, floorplan.XeonE5Package(), n, n)
		w := m.NewWorkspace()
		m.fillOperator(&w.op, bc, 0)
		x := parField(m.n)
		y := make(linalg.Vector, m.n)
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%d/threads=%d", n, threads), func(b *testing.B) {
				w.SetThreads(threads)
				w.op.Apply(x, y) // warm the team
				b.ReportAllocs()
				b.SetBytes(int64(m.n * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.op.Apply(x, y)
				}
			})
		}
		w.Close()
	}
}
