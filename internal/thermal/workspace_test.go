package thermal

import (
	"testing"
)

// workspaceFixture builds a small model with a non-trivial power map and
// boundary for the workspace tests.
func workspaceFixture(t testing.TB) (*Model, map[int][]float64, TopBoundary) {
	t.Helper()
	m, err := NewModel(smallStack(12, 10), DefaultEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = 0.1 + 0.01*float64(i%7)
	}
	bc := UniformTop(m.Cells(), 6000, 32)
	return m, map[int][]float64{0: p}, bc
}

// TestWorkspaceSteadyMatchesFresh: the workspace path must be bit-identical
// to the allocating SteadySolve, including when the workspace is reused
// dirty and when warm-started from its own previous solution.
func TestWorkspaceSteadyMatchesFresh(t *testing.T) {
	m, power, bc := workspaceFixture(t)
	fresh, err := m.SteadySolve(power, bc)
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWorkspace()
	f := w.FieldA()
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
		t.Fatal(err)
	}
	for i := range fresh.T {
		if fresh.T[i] != f.T[i] {
			t.Fatalf("cold workspace solve differs at %d: %v vs %v", i, fresh.T[i], f.T[i])
		}
	}
	// Dirty reuse, still cold-started: must stay bit-identical.
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
		t.Fatal(err)
	}
	for i := range fresh.T {
		if fresh.T[i] != f.T[i] {
			t.Fatalf("reused workspace solve differs at %d", i)
		}
	}
	// Warm start from the converged field (dst == init): the answer must
	// agree to solver tolerance and converge immediately.
	if err := w.SteadySolveInto(f, f, power, bc); err != nil {
		t.Fatal(err)
	}
	for i := range fresh.T {
		if d := fresh.T[i] - f.T[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("warm-started solve drifted at %d: Δ%g", i, d)
		}
	}
}

// TestWorkspaceTransientMatchesFresh: StepTransientInto (in place) must
// match the allocating StepTransient step for step.
func TestWorkspaceTransientMatchesFresh(t *testing.T) {
	m, power, bc := workspaceFixture(t)
	const dt = 0.25

	freshField := m.UniformField(30)
	w := m.NewWorkspace()
	wsField := w.FieldA()
	wsField.T.Fill(30)
	for step := 0; step < 5; step++ {
		next, err := m.StepTransient(freshField, dt, power, bc)
		if err != nil {
			t.Fatal(err)
		}
		freshField = next
		if err := w.StepTransientInto(wsField, wsField, dt, power, bc); err != nil {
			t.Fatal(err)
		}
		for i := range freshField.T {
			if freshField.T[i] != wsField.T[i] {
				t.Fatalf("step %d differs at %d: %v vs %v", step, i, freshField.T[i], wsField.T[i])
			}
		}
	}
}

// TestWorkspaceValidation: bad destinations and boundaries are rejected.
func TestWorkspaceValidation(t *testing.T) {
	m, power, bc := workspaceFixture(t)
	w := m.NewWorkspace()
	if err := w.SteadySolveInto(nil, nil, power, bc); err == nil {
		t.Fatal("nil destination must error")
	}
	other, err := NewModel(smallStack(4, 4), DefaultEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SteadySolveInto(other.NewField(), nil, power, bc); err == nil {
		t.Fatal("foreign-model destination must error")
	}
	if err := w.SteadySolveInto(w.FieldA(), nil, power, TopBoundary{}); err == nil {
		t.Fatal("mis-sized boundary must error")
	}
	if err := w.StepTransientInto(w.FieldA(), w.FieldA(), -1, power, bc); err == nil {
		t.Fatal("negative dt must error")
	}
	if err := w.StepTransientInto(w.FieldA(), nil, 0.1, power, bc); err == nil {
		t.Fatal("nil previous field must error")
	}
	if err := w.SteadySolveInto(w.FieldA(), nil, map[int][]float64{9: make([]float64, m.Cells())}, bc); err == nil {
		t.Fatal("invalid power layer must error")
	}
}

// TestWorkspaceSteadyZeroAllocs is the allocation-regression gate of the
// tentpole: after warm-up, a workspace-backed steady solve must perform
// zero heap allocations.
func TestWorkspaceSteadyZeroAllocs(t *testing.T) {
	m, power, bc := workspaceFixture(t)
	w := m.NewWorkspace()
	f := w.FieldA()
	solve := func() {
		if err := w.SteadySolveInto(f, f, power, bc); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil { // warm-up
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, solve); allocs != 0 {
		t.Fatalf("workspace steady solve allocated %.1f times per run, want 0", allocs)
	}
}

// TestWorkspaceTransientZeroAllocs: same gate for the transient step.
func TestWorkspaceTransientZeroAllocs(t *testing.T) {
	m, power, bc := workspaceFixture(t)
	w := m.NewWorkspace()
	f := w.FieldA()
	f.T.Fill(30)
	step := func() {
		if err := w.StepTransientInto(f, f, 0.25, power, bc); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm-up
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("workspace transient step allocated %.1f times per run, want 0", allocs)
	}
}
