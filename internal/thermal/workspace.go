package thermal

import (
	"fmt"

	"repro/internal/linalg"
)

// Workspace owns every per-solve buffer a Model needs — the operator
// diagonal and its inverse, the right-hand side, the CG scratch vectors, a
// reusable top-boundary buffer, and two field buffers — so that repeated
// solves on the same model perform no allocations. The buffers are fully
// overwritten by each solve; a reused workspace carries no numerical state
// between calls (warm starting is the caller's choice via the init/prev
// field arguments), which is what keeps the workspace path bit-identical
// to the allocating SteadySolveFrom/StepTransient wrappers.
//
// A workspace is bound to one model and is NOT safe for concurrent use;
// give each goroutine (e.g. each sweep worker) its own.
type Workspace struct {
	m   *Model
	op  operator
	pre linalg.DiagonalPreconditioner
	rhs linalg.Vector
	cg  linalg.CGWorkspace

	bc   TopBoundary
	a, b *Field
}

// NewWorkspace returns a workspace sized for the model. The field,
// boundary, and CG buffers are allocated lazily on first use, so a
// workspace built only to run one solve costs no more than the old
// per-call path did.
func (m *Model) NewWorkspace() *Workspace {
	w := &Workspace{m: m}
	w.op = operator{m: m, diag: make(linalg.Vector, m.n), invDiag: make(linalg.Vector, m.n)}
	w.pre = linalg.DiagonalPreconditioner{InvDiag: w.op.invDiag}
	w.rhs = make(linalg.Vector, m.n)
	return w
}

// Model returns the model the workspace solves on.
func (w *Workspace) Model() *Model { return w.m }

// FieldA returns the workspace's first reusable field buffer, allocating
// it on first use. The buffer is owned by the workspace: it stays valid
// across solves, which is exactly what lets a session keep the previous
// converged field as the next solve's warm start.
func (w *Workspace) FieldA() *Field {
	if w.a == nil {
		w.a = w.m.NewField()
	}
	return w.a
}

// FieldB returns the second reusable field buffer (e.g. for a transient
// simulation sharing the workspace with steady solves).
func (w *Workspace) FieldB() *Field {
	if w.b == nil {
		w.b = w.m.NewField()
	}
	return w.b
}

// Boundary returns a reusable top-boundary buffer sized to the grid
// (allocated on first use). Callers fill H/TFluid in place — e.g. the
// damped boundary a transient co-simulation carries between steps.
func (w *Workspace) Boundary() TopBoundary {
	if len(w.bc.H) != w.m.cells {
		w.bc = TopBoundary{H: make([]float64, w.m.cells), TFluid: make([]float64, w.m.cells)}
	}
	return w.bc
}

// checkDst validates a solve destination.
func (w *Workspace) checkDst(dst *Field) error {
	if dst == nil || dst.model != w.m || len(dst.T) != w.m.n {
		return fmt.Errorf("thermal: solve destination is not a field of this model (size %d)", w.m.n)
	}
	return nil
}

// SteadySolveInto computes the steady-state field into dst, reusing the
// workspace buffers: no allocations after the buffers exist. init, when
// non-nil and correctly sized, seeds the CG iteration (dst == init is
// allowed and skips the copy); otherwise the solve starts from ambient.
func (w *Workspace) SteadySolveInto(dst, init *Field, powerByLayer map[int][]float64, bc TopBoundary) error {
	m := w.m
	if err := w.checkDst(dst); err != nil {
		return err
	}
	if err := m.checkBC(bc); err != nil {
		return err
	}
	m.fillOperator(&w.op, bc, 0)
	if err := m.rhsInto(w.rhs, powerByLayer, bc); err != nil {
		return err
	}
	if init != nil && len(init.T) == m.n {
		if dst != init {
			copy(dst.T, init.T)
		}
	} else {
		dst.T.Fill(m.Env.AmbientC)
	}
	_, err := linalg.CGWith(&w.op, w.rhs, dst.T, linalg.CGOptions{
		Tol:     1e-10,
		MaxIter: 40 * m.n,
		Precond: &w.pre,
	}, &w.cg)
	if err != nil {
		return fmt.Errorf("thermal: steady solve: %w", err)
	}
	return nil
}

// StepTransientInto advances prev by dt seconds with backward Euler into
// dst, reusing the workspace buffers. dst == prev is allowed: the step
// then updates the field in place (the previous temperatures are consumed
// by the right-hand side before CG mutates the iterate).
func (w *Workspace) StepTransientInto(dst, prev *Field, dt float64, powerByLayer map[int][]float64, bc TopBoundary) error {
	m := w.m
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt %g", dt)
	}
	if err := m.checkBC(bc); err != nil {
		return err
	}
	if prev == nil || len(prev.T) != m.n {
		return fmt.Errorf("thermal: transient step needs a field of size %d", m.n)
	}
	if err := w.checkDst(dst); err != nil {
		return err
	}
	m.fillOperator(&w.op, bc, 1/dt)
	if err := m.rhsInto(w.rhs, powerByLayer, bc); err != nil {
		return err
	}
	for i := range w.rhs {
		w.rhs[i] += m.capAll[i] / dt * prev.T[i]
	}
	if dst != prev {
		copy(dst.T, prev.T)
	}
	_, err := linalg.CGWith(&w.op, w.rhs, dst.T, linalg.CGOptions{
		Tol:     1e-9,
		MaxIter: 40 * m.n,
		Precond: &w.pre,
	}, &w.cg)
	if err != nil {
		return fmt.Errorf("thermal: transient step: %w", err)
	}
	return nil
}
