package thermal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/linalg"
)

// Workspace owns every per-solve buffer a Model needs — the operator
// diagonal and its inverse, the right-hand side, the CG scratch vectors, a
// reusable top-boundary buffer, and two field buffers — so that repeated
// solves on the same model perform no allocations. The buffers are fully
// overwritten by each solve; a reused workspace carries no numerical state
// between calls (warm starting is the caller's choice via the init/prev
// field arguments), which is what keeps the workspace path bit-identical
// to the allocating SteadySolveFrom/StepTransient wrappers.
//
// A workspace is bound to one model and is NOT safe for concurrent use;
// give each goroutine (e.g. each sweep worker) its own.
type Workspace struct {
	m   *Model
	op  stencil
	pre linalg.DiagonalPreconditioner
	rhs linalg.Vector
	cg  linalg.CGWorkspace

	// solver selects the linear solver; hier is the multigrid ladder the
	// MG and MG-PCG solvers use, built lazily on their first solve (the
	// default CG path never pays for it). hier32 mirrors it in float32 for
	// SolverMGPCG32; mgCheb/chebs are the Chebyshev-smoothed V-cycle of
	// SolverMGPCGCheb over the same float64 ladder.
	solver Solver
	hier   *hierarchy
	hier32 *hierarchy32
	mgCheb *linalg.Multigrid
	chebs  []*linalg.ChebySmoother
	// chebDt is the capacitive regime (0 = steady, else the transient dt)
	// the Chebyshev eigenvalue estimates were made in; solveDt is the
	// current solve's regime. When they differ the estimates are reset —
	// the capacitive diagonal term C/dt shifts the spectrum of D⁻¹A enough
	// that an interval fitted to one regime can exclude the other's λmax.
	chebDt  float64
	solveDt float64

	// team is the intra-solve worker team SetThreads owns; threads is the
	// configured width (0 = never set, serial).
	team    *linalg.Team
	threads int

	// layers is the map→slice conversion scratch for the layer-power
	// compatibility wrappers.
	layers [][]float64

	stats SolveStats
	last  linalg.CGResult

	// Escalation-ladder state: noEscalate disables the ladder (zero value
	// = enabled); esc accumulates the descents taken; seed snapshots the
	// transient warm start so a retry can discard the poisoned iterate;
	// ctx, when set, is observed between ladder rungs; poisonMG arms the
	// fault-injection wrapper around multigrid preconditioners.
	noEscalate bool
	esc        []Escalation
	seed       linalg.Vector
	ctx        context.Context
	poisonMG   bool
	poison     poisonPrecond

	bc   TopBoundary
	a, b *Field
}

// NewWorkspace returns a workspace sized for the model. The field,
// boundary, and CG buffers are allocated lazily on first use, so a
// workspace built only to run one solve costs no more than the old
// per-call path did.
func (m *Model) NewWorkspace() *Workspace {
	w := &Workspace{m: m}
	w.op = m.newStencil()
	w.pre = linalg.DiagonalPreconditioner{InvDiag: w.op.invDiag}
	w.rhs = make(linalg.Vector, m.n)
	return w
}

// Model returns the model the workspace solves on.
func (w *Workspace) Model() *Model { return w.m }

// SetSolver selects the linear solver for subsequent solves. The zero
// value SolverCG is the historical Jacobi-CG path; SolverMGPCG and
// SolverMG route through the geometric multigrid hierarchy, which is
// built once on first use and reused (allocation-free) afterwards.
func (w *Workspace) SetSolver(s Solver) { w.solver = s }

// Solver returns the workspace's selected linear solver.
func (w *Workspace) Solver() Solver { return w.solver }

// SetThreads sets the intra-solve thread count: the stencil kernels, the
// multigrid transfers and the fused CG vector ops of every subsequent
// solve fan out across a persistent worker team of this width (n <= 0
// selects GOMAXPROCS). Thread count is a pure performance knob — solves
// are byte-identical at any setting, enforced by the fixed-band
// partitioning and fixed-chunk reductions in linalg. The workspace owns
// the team: call Close (or SetThreads(1)) to release its goroutines.
func (w *Workspace) SetThreads(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == w.threads {
		return
	}
	w.team.Close()
	w.team = linalg.NewTeam(n)
	w.threads = n
	w.wireTeam()
}

// Threads returns the configured intra-solve thread count (1 when never
// set or closed).
func (w *Workspace) Threads() int {
	if w.threads <= 0 {
		return 1
	}
	return w.threads
}

// Close releases the workspace's worker team. The workspace stays usable
// afterwards — solves simply run serially (with identical results).
// Close is idempotent: a second Close finds a nil team and is a no-op.
func (w *Workspace) Close() {
	w.team.Close()
	w.team = nil
	w.threads = 0
	w.wireTeam()
}

// wireTeam points every kernel owner at the current team.
func (w *Workspace) wireTeam() {
	w.op.setTeam(w.team)
	w.cg.SetTeam(w.team)
	if w.hier != nil {
		w.hier.setTeam(w.team)
	}
	if w.hier32 != nil {
		w.hier32.setTeam(w.team)
	}
}

// Stats returns cumulative linear-solver effort since the workspace was
// created.
func (w *Workspace) Stats() SolveStats { return w.stats }

// LastSolve returns the convergence report of the most recent linear
// solve (iterations are V-cycles for SolverMG).
func (w *Workspace) LastSolve() linalg.CGResult { return w.last }

// ensureHierarchy lazily builds the multigrid ladder over the
// workspace's operator stencil.
func (w *Workspace) ensureHierarchy() error {
	if w.hier != nil {
		return nil
	}
	h, err := newHierarchy(w.m, &w.op)
	if err != nil {
		return err
	}
	h.setTeam(w.team)
	w.hier = h
	return nil
}

// ensureHierarchy32 lazily mirrors the multigrid ladder in float32.
func (w *Workspace) ensureHierarchy32() error {
	if w.hier32 != nil {
		return nil
	}
	if err := w.ensureHierarchy(); err != nil {
		return err
	}
	h32, err := newHierarchy32(w.hier)
	if err != nil {
		return err
	}
	h32.setTeam(w.team)
	w.hier32 = h32
	return nil
}

// ensureCheb lazily builds the Chebyshev-smoothed V-cycle over the
// float64 ladder: every level but the coarsest swaps red-black
// Gauss-Seidel for a degree-2 Chebyshev polynomial smoother wrapping the
// same stencil (the smoothers alias the stencils' inverse diagonals, so
// per-solve refreshes flow through). The coarsest level keeps plain
// Gauss-Seidel — there the V-cycle runs an exhaustive symmetric solve,
// not smoothing, and GS converges faster per sweep.
func (w *Workspace) ensureCheb() error {
	if w.mgCheb != nil {
		return nil
	}
	if err := w.ensureHierarchy(); err != nil {
		return err
	}
	mls := make([]linalg.MGLevel, len(w.hier.levels))
	for i, lv := range w.hier.levels {
		if lv.down != nil {
			c := linalg.NewChebySmoother(lv.st, lv.st.invDiag, 2)
			w.chebs = append(w.chebs, c)
			mls[i] = linalg.MGLevel{A: c, Down: lv.down}
		} else {
			mls[i] = linalg.MGLevel{A: lv.st}
		}
	}
	mg, err := linalg.NewMultigrid(mls)
	if err != nil {
		return err
	}
	w.mgCheb = mg
	w.chebDt = -1 // force eigenvalue setup on the first solve
	return nil
}

// poisonPrecond is the fault-injection wrapper InjectMGFault arms: it
// forwards to the wrapped preconditioner, then writes a NaN into the
// output — the numerical signature of an SPD preconditioner gone bad —
// so the escalation ladder can be exercised deterministically.
type poisonPrecond struct{ inner linalg.Preconditioner }

func (p *poisonPrecond) Apply(r, z linalg.Vector) {
	p.inner.Apply(r, z)
	z[0] = math.NaN()
}

func (p *poisonPrecond) ApplyCost() int {
	if cp, ok := p.inner.(linalg.CostedPreconditioner); ok {
		return cp.ApplyCost()
	}
	return 1
}

// reseedMode tells a ladder retry how to rebuild the initial iterate after
// discarding the failed rung's (possibly NaN-poisoned) one.
type reseedMode int

const (
	// reseedAmbient refills the iterate with the ambient temperature — the
	// cold start of a steady solve, deliberately ignoring any warm-start
	// seed (the seed itself may be what poisoned the first rung).
	reseedAmbient reseedMode = iota
	// reseedSeed restores the snapshot taken before the first rung — the
	// previous-step field a transient step must integrate from.
	reseedSeed
)

// SetEscalation enables or disables the solver escalation ladder
// (enabled by default). With the ladder off, a failed solve returns its
// diagnostic error directly — the pre-ladder behavior.
func (w *Workspace) SetEscalation(on bool) { w.noEscalate = !on }

// SetContext attaches a context the escalation ladder observes between
// rungs (individual linear solves are not interruptible). nil detaches.
func (w *Workspace) SetContext(ctx context.Context) { w.ctx = ctx }

// Escalations returns a copy of every ladder descent taken since the
// workspace was created, in order. Empty means no solve ever escalated.
func (w *Workspace) Escalations() []Escalation {
	return append([]Escalation(nil), w.esc...)
}

// InjectMGFault arms (or disarms) the fault-injection hook: while armed,
// every multigrid-family preconditioner is wrapped so its output is
// NaN-poisoned, forcing the MG rungs of the escalation ladder to fail and
// the solve to degrade to the terminal Jacobi-CG rung. Test/demo knob for
// proving the ladder works; it never changes the converged answer, only
// which solver produces it.
func (w *Workspace) InjectMGFault(on bool) { w.poisonMG = on }

// canEscalate reports whether a failed solve has a rung to fall to.
func (w *Workspace) canEscalate() bool {
	if w.noEscalate {
		return false
	}
	_, ok := nextRung(w.solver)
	return ok
}

// solve runs the selected linear solver on the already-assembled system
// (fillOperator and rhsInto must have run), updating x in place and the
// workspace's solve statistics — descending the escalation ladder on
// numerical failure. Each descent is recorded (never hidden), the failed
// rung's iterate is discarded per rm, and the configured solver is left
// untouched: the next solve starts back at the top of the ladder. Only
// *linalg.SolveError failures escalate; setup errors (an unbuildable
// hierarchy) surface immediately. Between rungs the ladder observes the
// context installed by SetContext, so cancellation is honored even when
// every rung is failing slowly.
func (w *Workspace) solve(x linalg.Vector, tol float64, rm reseedMode) error {
	cur := w.solver
	for {
		err := w.solveWith(cur, x, tol)
		if err == nil || w.noEscalate {
			return err
		}
		var se *linalg.SolveError
		if !errors.As(err, &se) {
			return err
		}
		next, ok := nextRung(cur)
		if !ok {
			return err
		}
		if w.ctx != nil {
			if cerr := w.ctx.Err(); cerr != nil {
				return cerr
			}
		}
		w.stats.Escalations++
		w.esc = append(w.esc, Escalation{From: cur, To: next, Cause: se.Cause.String()})
		switch rm {
		case reseedSeed:
			copy(x, w.seed)
		default:
			x.Fill(w.m.Env.AmbientC)
		}
		cur = next
	}
}

// solveWith runs one ladder rung: solver s on the assembled system. The
// multigrid path re-derives its coarse diagonals from whatever
// fillOperator assembled, so steady and transient systems need no extra
// plumbing here.
func (w *Workspace) solveWith(s Solver, x linalg.Vector, tol float64) error {
	var (
		res linalg.CGResult
		err error
	)
	switch s {
	case SolverMGPCG, SolverMG:
		if err = w.ensureHierarchy(); err != nil {
			return err
		}
		w.hier.refresh()
		if s == SolverMG {
			res, err = linalg.MGSolve(w.hier.mg, w.rhs, x, linalg.MGOptions{Tol: tol, MaxCycles: 300})
		} else {
			res, err = linalg.CGWith(&w.op, w.rhs, x, linalg.CGOptions{
				Tol:     tol,
				MaxIter: 40 * w.m.n,
				Precond: w.precond(w.hier.mg),
			}, &w.cg)
		}
	case SolverMGPCG32:
		if err = w.ensureHierarchy32(); err != nil {
			return err
		}
		w.hier.refresh()
		w.hier32.refresh()
		res, err = linalg.CGWith(&w.op, w.rhs, x, linalg.CGOptions{
			Tol:     tol,
			MaxIter: 40 * w.m.n,
			Precond: w.precond(w.hier32.mg),
		}, &w.cg)
	case SolverMGPCGCheb:
		if err = w.ensureCheb(); err != nil {
			return err
		}
		w.hier.refresh()
		if w.solveDt != w.chebDt {
			for _, c := range w.chebs {
				c.Reset()
			}
			w.chebDt = w.solveDt
		}
		res, err = linalg.CGWith(&w.op, w.rhs, x, linalg.CGOptions{
			Tol:     tol,
			MaxIter: 40 * w.m.n,
			Precond: w.precond(w.mgCheb),
		}, &w.cg)
	default:
		res, err = linalg.CGWith(&w.op, w.rhs, x, linalg.CGOptions{
			Tol:     tol,
			MaxIter: 40 * w.m.n,
			Precond: &w.pre,
		}, &w.cg)
	}
	w.last = res
	w.stats.Solves++
	w.stats.Iterations += res.Iterations
	w.stats.Applies += res.Applies
	return err
}

// precond returns the multigrid-family preconditioner to hand CG, wrapped
// with the NaN poisoner when InjectMGFault armed it. The terminal Jacobi
// rung never routes through here, so it stays fault-free by construction.
func (w *Workspace) precond(mg linalg.Preconditioner) linalg.Preconditioner {
	if !w.poisonMG {
		return mg
	}
	w.poison.inner = mg
	return &w.poison
}

// FieldA returns the workspace's first reusable field buffer, allocating
// it on first use. The buffer is owned by the workspace: it stays valid
// across solves, which is exactly what lets a session keep the previous
// converged field as the next solve's warm start.
func (w *Workspace) FieldA() *Field {
	if w.a == nil {
		w.a = w.m.NewField()
	}
	return w.a
}

// FieldB returns the second reusable field buffer (e.g. for a transient
// simulation sharing the workspace with steady solves).
func (w *Workspace) FieldB() *Field {
	if w.b == nil {
		w.b = w.m.NewField()
	}
	return w.b
}

// Boundary returns a reusable top-boundary buffer sized to the grid
// (allocated on first use). Callers fill H/TFluid in place — e.g. the
// damped boundary a transient co-simulation carries between steps.
func (w *Workspace) Boundary() TopBoundary {
	if len(w.bc.H) != w.m.cells {
		w.bc = TopBoundary{H: make([]float64, w.m.cells), TFluid: make([]float64, w.m.cells)}
	}
	return w.bc
}

// checkDst validates a solve destination.
func (w *Workspace) checkDst(dst *Field) error {
	if dst == nil || dst.model != w.m || len(dst.T) != w.m.n {
		return fmt.Errorf("thermal: solve destination is not a field of this model (size %d)", w.m.n)
	}
	return nil
}

// layersFromMap converts a layer-power map into the workspace's dense
// per-layer scratch table, validating the layer indices. The returned
// slice is owned by the workspace and overwritten by the next conversion.
func (w *Workspace) layersFromMap(powerByLayer map[int][]float64) ([][]float64, error) {
	if w.layers == nil {
		w.layers = make([][]float64, w.m.nl)
	}
	for i := range w.layers {
		w.layers[i] = nil
	}
	for l, p := range powerByLayer {
		if l < 0 || l >= w.m.nl {
			return nil, fmt.Errorf("thermal: power assigned to invalid layer %d", l)
		}
		w.layers[l] = p
	}
	return w.layers, nil
}

// SteadySolveInto computes the steady-state field into dst, reusing the
// workspace buffers: no allocations after the buffers exist. init, when
// non-nil and correctly sized, seeds the CG iteration (dst == init is
// allowed and skips the copy); otherwise the solve starts from ambient.
// It is the map-keyed wrapper over SteadySolveLayersInto.
func (w *Workspace) SteadySolveInto(dst, init *Field, powerByLayer map[int][]float64, bc TopBoundary) error {
	layers, err := w.layersFromMap(powerByLayer)
	if err != nil {
		return err
	}
	return w.SteadySolveLayersInto(dst, init, layers, bc)
}

// SteadySolveLayersInto is SteadySolveInto with the injected power as a
// dense per-layer table: layers[l] is layer l's per-cell watts (nil
// entries inject nothing; the table may be shorter than the stack). This
// is the hot-path form — per-step callers keep a persistent table and
// avoid the map allocation and lookup entirely.
func (w *Workspace) SteadySolveLayersInto(dst, init *Field, layers [][]float64, bc TopBoundary) error {
	m := w.m
	if err := w.checkDst(dst); err != nil {
		return err
	}
	if err := m.checkBC(bc); err != nil {
		return err
	}
	m.fillOperator(&w.op, bc, 0)
	w.solveDt = 0
	if err := m.rhsLayersInto(w.rhs, layers, bc); err != nil {
		return err
	}
	if init != nil && len(init.T) == m.n {
		if dst != init {
			copy(dst.T, init.T)
		}
	} else {
		dst.T.Fill(m.Env.AmbientC)
	}
	if err := w.solve(dst.T, 1e-10, reseedAmbient); err != nil {
		return fmt.Errorf("thermal: steady solve: %w", err)
	}
	return nil
}

// StepTransientInto advances prev by dt seconds with backward Euler into
// dst, reusing the workspace buffers. dst == prev is allowed: the step
// then updates the field in place (the previous temperatures are consumed
// by the right-hand side before CG mutates the iterate). It is the
// map-keyed wrapper over StepTransientLayersInto.
func (w *Workspace) StepTransientInto(dst, prev *Field, dt float64, powerByLayer map[int][]float64, bc TopBoundary) error {
	layers, err := w.layersFromMap(powerByLayer)
	if err != nil {
		return err
	}
	return w.StepTransientLayersInto(dst, prev, dt, layers, bc)
}

// StepTransientLayersInto is StepTransientInto with the dense per-layer
// power table of SteadySolveLayersInto — the allocation- and lookup-free
// form transient simulations step on.
func (w *Workspace) StepTransientLayersInto(dst, prev *Field, dt float64, layers [][]float64, bc TopBoundary) error {
	m := w.m
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt %g", dt)
	}
	if err := m.checkBC(bc); err != nil {
		return err
	}
	if prev == nil || len(prev.T) != m.n {
		return fmt.Errorf("thermal: transient step needs a field of size %d", m.n)
	}
	if err := w.checkDst(dst); err != nil {
		return err
	}
	m.fillOperator(&w.op, bc, 1/dt)
	w.solveDt = dt
	if err := m.rhsLayersInto(w.rhs, layers, bc); err != nil {
		return err
	}
	for i := range w.rhs {
		w.rhs[i] += m.capAll[i] / dt * prev.T[i]
	}
	if dst != prev {
		copy(dst.T, prev.T)
	}
	if w.canEscalate() {
		// Snapshot the previous-step field (dst may alias prev, so it must
		// be taken before CG mutates the iterate): a ladder retry restores
		// it instead of integrating from a poisoned iterate.
		if cap(w.seed) < m.n {
			w.seed = make(linalg.Vector, m.n)
		}
		w.seed = w.seed[:m.n]
		copy(w.seed, dst.T)
	}
	if err := w.solve(dst.T, 1e-9, reseedSeed); err != nil {
		return fmt.Errorf("thermal: transient step: %w", err)
	}
	return nil
}
