package thermal

import "fmt"

// Solver selects the linear solver a Workspace uses for steady and
// transient systems. The zero value is the Jacobi-preconditioned CG the
// solve stack has always used, so existing callers are unaffected.
type Solver int

// Available solvers.
const (
	// SolverCG is Jacobi-preconditioned conjugate gradient: robust and
	// allocation-free, but its iteration count grows with grid
	// resolution (O(n^1.5) work on an n-cell layer).
	SolverCG Solver = iota
	// SolverMGPCG is conjugate gradient preconditioned with one
	// geometric-multigrid V-cycle per iteration: resolution-independent
	// iteration counts (O(n) work) with CG's robustness. The default
	// choice for fine grids.
	SolverMGPCG
	// SolverMG iterates V-cycles alone. Cheapest per digit on smooth
	// problems, but without the Krylov wrapper it is less forgiving of
	// strong coefficient jumps.
	SolverMG
	// SolverMGPCG32 is SolverMGPCG with the V-cycle preconditioner run
	// entirely in float32: the CG outer loop (residuals, dot products,
	// convergence test) stays float64, so the answer converges to the same
	// tolerance, while the preconditioner — the dominant memory traffic of
	// an MG-PCG iteration — moves half the bytes. The fastest mode on
	// bandwidth-bound grids.
	SolverMGPCG32
	// SolverMGPCGCheb is SolverMGPCG with Chebyshev polynomial smoothing
	// on the V-cycle levels instead of red-black Gauss-Seidel: each
	// smoothing step is one fused Jacobi pass (one barrier) instead of two
	// color phases (two barriers), trading a per-solve eigenvalue estimate
	// for half the synchronization points per sweep.
	SolverMGPCGCheb
)

// String names the solver the way the -solver command-line flags spell it.
func (s Solver) String() string {
	switch s {
	case SolverCG:
		return "cg"
	case SolverMGPCG:
		return "mgpcg"
	case SolverMG:
		return "mg"
	case SolverMGPCG32:
		return "mgpcg32"
	case SolverMGPCGCheb:
		return "mgpcg-cheb"
	default:
		return fmt.Sprintf("solver(%d)", int(s))
	}
}

// ParseSolver parses a -solver flag value.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "cg":
		return SolverCG, nil
	case "mgpcg":
		return SolverMGPCG, nil
	case "mg":
		return SolverMG, nil
	case "mgpcg32":
		return SolverMGPCG32, nil
	case "mgpcg-cheb":
		return SolverMGPCGCheb, nil
	default:
		return SolverCG, fmt.Errorf("thermal: unknown solver %q (want cg|mgpcg|mg|mgpcg32|mgpcg-cheb)", s)
	}
}

// nextRung returns the solver the escalation ladder falls back to after s
// fails, and whether a rung below s exists. The ladder funnels every mode
// toward the terminal Jacobi-CG rung — the solver with the least numerical
// machinery (no float32 mirror, no V-cycle, no eigenvalue estimates) and
// hence the least that can break:
//
//	mgpcg32    → mgpcg → cg
//	mgpcg-cheb → mgpcg → cg
//	mg         → mgpcg → cg
//	mgpcg      → cg
//	cg         (terminal)
func nextRung(s Solver) (Solver, bool) {
	switch s {
	case SolverMGPCG32, SolverMGPCGCheb, SolverMG:
		return SolverMGPCG, true
	case SolverMGPCG:
		return SolverCG, true
	default:
		return s, false
	}
}

// Escalation records one rung descent of the solver escalation ladder: the
// solver that failed, the one the solve retried on, and the linalg cause
// of the failure. Escalations are surfaced, never hidden — workspaces
// accumulate them (Workspace.Escalations) and SolveStats counts them.
type Escalation struct {
	From, To Solver
	// Cause is the linalg failure cause of the abandoned rung
	// (maxiter / nan / breakdown).
	Cause string
}

// String renders the descent, e.g. "mgpcg32→mgpcg (breakdown)".
func (e Escalation) String() string {
	return fmt.Sprintf("%s→%s (%s)", e.From, e.To, e.Cause)
}

// SolveStats accumulates linear-solver effort over a workspace's lifetime,
// letting experiments compare solvers by work rather than wall time.
type SolveStats struct {
	// Solves counts linear solves (steady solves and transient steps).
	Solves int
	// Iterations counts CG iterations or V-cycles across all solves.
	Iterations int
	// Applies counts fine-grid operator applications as reported by the
	// linalg drivers (see linalg.CGResult.Applies).
	Applies int
	// Escalations counts ladder descents: solves that abandoned the
	// configured solver for a lower rung after a failure.
	Escalations int
}
