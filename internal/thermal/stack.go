// Package thermal implements a 3D-ICE-style compact thermal simulator: a
// finite-volume RC network over a layered chip stack (die, TIM, heat
// spreader, evaporator wall) solved with the hand-rolled linear algebra in
// internal/linalg. It supports steady-state solves (preconditioned CG) and
// backward-Euler transients, with a per-cell convective top boundary that
// the thermosyphon model supplies.
//
// The paper obtains die temperatures with the 3D-ICE simulator of Sridhar
// et al. (ICCD'10); this package is the equivalent compact-model substrate.
package thermal

import (
	"fmt"

	"repro/internal/floorplan"
)

// Material holds the bulk thermal properties of a stack layer.
type Material struct {
	// K is thermal conductivity (W/m·K).
	K float64
	// VolHeatCap is volumetric heat capacity ρ·cp (J/m³·K).
	VolHeatCap float64
}

// Stock materials for the Xeon E5 package stack.
var (
	// Silicon is bulk die silicon.
	Silicon = Material{K: 130, VolHeatCap: 1.63e6}
	// Copper is the heat spreader / evaporator base material.
	Copper = Material{K: 390, VolHeatCap: 3.45e6}
	// TIM is a thermal interface material layer.
	TIM = Material{K: 4, VolHeatCap: 2.0e6}
	// Underfill models the low-conductivity fill surrounding the die
	// within its layer (laterally, outside the die footprint).
	Underfill = Material{K: 0.5, VolHeatCap: 1.2e6}
)

// RegionOverride replaces a layer's base material inside a rectangle.
type RegionOverride struct {
	Rect floorplan.Rect
	Mat  Material
}

// LayerSpec describes one layer of the chip stack, bottom to top.
type LayerSpec struct {
	Name      string
	Thickness float64 // m
	Base      Material
	Overrides []RegionOverride
}

// Stack is a layered finite-volume discretization target.
type Stack struct {
	Grid   floorplan.Grid
	Layers []LayerSpec
}

// Validate checks the stack for positive thicknesses and conductivities.
func (s *Stack) Validate() error {
	if s.Grid.NX < 2 || s.Grid.NY < 2 {
		return fmt.Errorf("thermal: grid too small (%dx%d)", s.Grid.NX, s.Grid.NY)
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("thermal: stack has no layers")
	}
	for _, l := range s.Layers {
		if l.Thickness <= 0 {
			return fmt.Errorf("thermal: layer %q has non-positive thickness", l.Name)
		}
		if l.Base.K <= 0 || l.Base.VolHeatCap <= 0 {
			return fmt.Errorf("thermal: layer %q has non-physical base material", l.Name)
		}
		for _, o := range l.Overrides {
			if o.Mat.K <= 0 || o.Mat.VolHeatCap <= 0 {
				return fmt.Errorf("thermal: layer %q override has non-physical material", l.Name)
			}
		}
	}
	return nil
}

// LayerIndex returns the index of the named layer, or -1.
func (s *Stack) LayerIndex(name string) int {
	for i, l := range s.Layers {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// Canonical Xeon E5 v4 stack layer names.
const (
	LayerDie      = "die"
	LayerTIM1     = "tim1"
	LayerSpreader = "spreader"
	LayerTIM2     = "tim2"
	LayerEvap     = "evaporator"
)

// XeonStackConfig parameterizes the standard five-layer package stack.
type XeonStackConfig struct {
	// NX, NY set the grid resolution over the package footprint.
	NX, NY int
	// Package geometry; the die is placed per the geometry's offsets.
	Package floorplan.PackageGeometry
}

// DefaultXeonStackConfig returns the resolution used throughout the
// experiments: 0.5 mm cells over the 38×30 mm spreader.
func DefaultXeonStackConfig() XeonStackConfig {
	return XeonStackConfig{NX: 76, NY: 60, Package: floorplan.XeonE5Package()}
}

// NewXeonStack builds the five-layer Xeon E5 v4 package stack: silicon die
// (with underfill outside the die footprint), TIM1, copper heat spreader,
// TIM2, and the copper evaporator base plate of the thermosyphon.
func NewXeonStack(cfg XeonStackConfig) *Stack {
	grid := floorplan.NewGrid(cfg.NX, cfg.NY, cfg.Package.Width, cfg.Package.Height)
	dieRect := cfg.Package.DieRectOnPackage()
	dieOnly := []RegionOverride{{Rect: dieRect, Mat: Silicon}}
	timOnly := []RegionOverride{{Rect: dieRect, Mat: TIM}}
	return &Stack{
		Grid: grid,
		Layers: []LayerSpec{
			{Name: LayerDie, Thickness: 0.5e-3, Base: Underfill, Overrides: dieOnly},
			{Name: LayerTIM1, Thickness: 0.05e-3, Base: Underfill, Overrides: timOnly},
			{Name: LayerSpreader, Thickness: 2.5e-3, Base: Copper},
			{Name: LayerTIM2, Thickness: 0.05e-3, Base: TIM},
			{Name: LayerEvap, Thickness: 0.6e-3, Base: Copper},
		},
	}
}

// materialAt resolves the material of a cell by sampling the cell centroid
// against the layer's overrides (last matching override wins).
func materialAt(l LayerSpec, g floorplan.Grid, ix, iy int) Material {
	cx, cy := g.CellCenter(ix, iy)
	m := l.Base
	for _, o := range l.Overrides {
		if o.Rect.Contains(cx, cy) {
			m = o.Mat
		}
	}
	return m
}
