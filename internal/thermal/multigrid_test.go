package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// xvalModel builds a model over the given package geometry at the given
// resolution with a deterministic non-uniform die power pattern.
func xvalModel(t testing.TB, pg floorplan.PackageGeometry, nx, ny int) (*Model, map[int][]float64, TopBoundary) {
	t.Helper()
	stack := NewXeonStack(XeonStackConfig{NX: nx, NY: ny, Package: pg})
	m, err := NewModel(stack, DefaultEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.Cells())
	g := m.Grid()
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			// A tilted gradient plus two hot spots, scaled so total power
			// stays around 85 W at any resolution.
			v := 0.2 + 0.6*float64(ix)/float64(nx) + 0.2*float64(iy)/float64(ny)
			if ix > nx/5 && ix < nx/3 && iy > ny/4 && iy < ny/2 {
				v += 3
			}
			if ix > 2*nx/3 && iy > 2*ny/3 {
				v += 2
			}
			p[g.Index(ix, iy)] = v * 85 / (1.2 * float64(nx*ny))
		}
	}
	return m, map[int][]float64{0: p}, UniformTop(m.Cells(), 6000, 32)
}

// solveWithTol runs the workspace solver path with a caller-chosen
// tolerance, bypassing the public wrappers' fixed 1e-10 so the
// cross-validation can push all solvers to equal, tight accuracy.
func solveWithTol(t testing.TB, m *Model, s Solver, power map[int][]float64, bc TopBoundary, tol float64) (linalg.Vector, SolveStats) {
	t.Helper()
	w := m.NewWorkspace()
	w.SetSolver(s)
	m.fillOperator(&w.op, bc, 0)
	if err := m.rhsInto(w.rhs, power, bc); err != nil {
		t.Fatal(err)
	}
	x := make(linalg.Vector, m.n)
	x.Fill(m.Env.AmbientC)
	if err := w.solve(x, tol, reseedAmbient); err != nil {
		t.Fatalf("%v solve: %v", s, err)
	}
	return x, w.Stats()
}

// TestSolverCrossValidation: Jacobi-CG, MG-PCG and standalone MG must
// agree on the steady field to 1e-7 max-abs on both the Broadwell (Xeon
// E5) package and the generic scaled package.
func TestSolverCrossValidation(t *testing.T) {
	spec := floorplan.DefaultGridSpec(4, 4)
	fp, err := floorplan.Generic(spec)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		pg     floorplan.PackageGeometry
		nx, ny int
	}{
		{"broadwell", floorplan.XeonE5Package(), 38, 30},
		{"generic16", floorplan.GenericPackage(fp), 45, 30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, power, bc := xvalModel(t, c.pg, c.nx, c.ny)
			ref, _ := solveWithTol(t, m, SolverCG, power, bc, 1e-12)
			for _, s := range []Solver{SolverMGPCG, SolverMG, SolverMGPCG32, SolverMGPCGCheb} {
				got, _ := solveWithTol(t, m, s, power, bc, 1e-12)
				var maxAbs float64
				for i := range ref {
					if d := math.Abs(got[i] - ref[i]); d > maxAbs {
						maxAbs = d
					}
				}
				if maxAbs > 1e-7 {
					t.Errorf("%v deviates from cg by %.3g °C max-abs (want ≤ 1e-7)", s, maxAbs)
				}
			}
		})
	}
}

// TestMGEnergyBalance128: at 128×128, the MG-PCG steady solution must
// close the global energy balance — every injected watt leaves through
// the top or bottom boundary.
func TestMGEnergyBalance128(t *testing.T) {
	m, power, bc := xvalModel(t, floorplan.XeonE5Package(), 128, 128)
	var total float64
	for _, w := range power[0] {
		total += w
	}
	w := m.NewWorkspace()
	w.SetSolver(SolverMGPCG)
	f := w.FieldA()
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
		t.Fatal(err)
	}
	out := f.TotalHeatToTop(bc) + f.TotalHeatToBottom()
	if rel := math.Abs(out-total) / total; rel > 1e-4 {
		t.Fatalf("energy balance off by %.3g relative (in %.3f W, out %.3f W)", rel, total, out)
	}
}

// TestMGPCGAppliesAdvantage is the tentpole's acceptance gate: on a
// 256×256-per-layer steady problem, MG-PCG must need at least 5× fewer
// operator applications than Jacobi-CG at the production tolerance.
func TestMGPCGAppliesAdvantage(t *testing.T) {
	m, power, bc := xvalModel(t, floorplan.XeonE5Package(), 256, 256)
	_, cgStats := solveWithTol(t, m, SolverCG, power, bc, 1e-10)
	_, mgStats := solveWithTol(t, m, SolverMGPCG, power, bc, 1e-10)
	if cgStats.Applies == 0 || mgStats.Applies == 0 {
		t.Fatalf("missing applies accounting: cg %+v, mgpcg %+v", cgStats, mgStats)
	}
	if mgStats.Applies*5 > cgStats.Applies {
		t.Fatalf("MG-PCG used %d applies vs Jacobi-CG %d — less than the required 5× advantage",
			mgStats.Applies, cgStats.Applies)
	}
	t.Logf("256×256×%d: jacobi-cg %d applies (%d iters), mg-pcg %d applies (%d iters), %.1f× fewer",
		m.Layers(), cgStats.Applies, cgStats.Iterations, mgStats.Applies, mgStats.Iterations,
		float64(cgStats.Applies)/float64(mgStats.Applies))
}

// TestMGSolversDeterministic: for a fixed solver selection, repeated
// solves on fresh workspaces must be byte-identical — the property the
// pooled sweeps rely on.
func TestMGSolversDeterministic(t *testing.T) {
	m, power, bc := xvalModel(t, floorplan.XeonE5Package(), 38, 30)
	for _, s := range []Solver{SolverMGPCG, SolverMG, SolverMGPCG32, SolverMGPCGCheb} {
		a, _ := solveWithTol(t, m, s, power, bc, 1e-10)
		b, _ := solveWithTol(t, m, s, power, bc, 1e-10)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: repeated solve differs at %d: %v vs %v", s, i, a[i], b[i])
			}
		}
	}
}

// TestWorkspaceMGZeroAllocs: the warm V-cycle path (hierarchy built,
// buffers sized) must perform zero heap allocations, for both the MG-PCG
// and standalone-MG solvers, steady and transient.
func TestWorkspaceMGZeroAllocs(t *testing.T) {
	for _, s := range []Solver{SolverMGPCG, SolverMG, SolverMGPCG32, SolverMGPCGCheb} {
		t.Run(s.String(), func(t *testing.T) {
			m, power, bc := workspaceFixture(t)
			w := m.NewWorkspace()
			w.SetSolver(s)
			f := w.FieldA()
			if err := w.SteadySolveInto(f, nil, power, bc); err != nil { // warm-up
				t.Fatal(err)
			}
			solve := func() {
				if err := w.SteadySolveInto(f, f, power, bc); err != nil {
					t.Fatal(err)
				}
			}
			if allocs := testing.AllocsPerRun(20, solve); allocs != 0 {
				t.Fatalf("warm %v steady solve allocated %.1f times per run, want 0", s, allocs)
			}
			step := func() {
				if err := w.StepTransientInto(f, f, 0.25, power, bc); err != nil {
					t.Fatal(err)
				}
			}
			step() // warm transient (same hierarchy, capacitive diagonal)
			if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
				t.Fatalf("warm %v transient step allocated %.1f times per run, want 0", s, allocs)
			}
		})
	}
}

// TestHierarchyCoarseOperatorConsistency: on a uniform two-layer copper
// slab the rediscretized coarse stencil must reproduce the direct
// discretization at the doubled pitch exactly.
func TestHierarchyCoarseOperatorConsistency(t *testing.T) {
	build := func(nx, ny int) *Model {
		s := &Stack{
			Grid: floorplan.NewGrid(nx, ny, 0.032, 0.032),
			Layers: []LayerSpec{
				{Name: "bottom", Thickness: 1e-3, Base: Copper},
				{Name: "top", Thickness: 1e-3, Base: Copper},
			},
		}
		m, err := NewModel(s, Environment{AmbientC: 25, BottomH: 10})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fine := build(32, 32)
	direct := build(16, 16)
	h, err := newHierarchy(fine, fine.buildOperator(UniformTop(fine.Cells(), 5000, 30), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.levels) < 2 {
		t.Fatalf("expected a multi-level hierarchy, got %d levels", len(h.levels))
	}
	coarse := h.levels[1].st
	if coarse.nx != 16 || coarse.ny != 16 {
		t.Fatalf("coarse level is %dx%d, want 16x16", coarse.nx, coarse.ny)
	}
	for i, want := range direct.gx {
		if got := coarse.gx[i]; math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("gx[%d] = %g, direct rediscretization %g", i, got, want)
		}
	}
	for i, want := range direct.gz {
		if got := coarse.gz[i]; math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("gz[%d] = %g, direct rediscretization %g", i, got, want)
		}
	}
}

// TestSmoothRedBlackOrderIndependence: a red-black sweep must give the
// same result as relaxing all red cells from the frozen state and then
// all black cells — i.e. be independent of traversal order within a
// color. Verified by comparing against an explicit two-phase Jacobi-style
// reference.
func TestSmoothRedBlackOrderIndependence(t *testing.T) {
	m, power, bc := workspaceFixture(t)
	op := m.buildOperator(bc, 0)
	b := make(linalg.Vector, m.n)
	if err := m.rhsInto(b, power, bc); err != nil {
		t.Fatal(err)
	}
	x := make(linalg.Vector, m.n)
	for i := range x {
		x[i] = 30 + float64(i%17)
	}
	want := x.Clone()
	// Reference: phase-wise update where each color is computed entirely
	// from the pre-phase state.
	s := op
	for _, color := range []int{0, 1} {
		snapshot := want.Clone()
		for l := 0; l < s.nl; l++ {
			for iy := 0; iy < s.ny; iy++ {
				for ix := 0; ix < s.nx; ix++ {
					if (ix+iy+l)&1 != color {
						continue
					}
					i := l*s.cells + iy*s.nx + ix
					su := b[i]
					if ix > 0 {
						su += s.gx[i-1] * snapshot[i-1]
					}
					if g := s.gx[i]; g != 0 {
						su += g * snapshot[i+1]
					}
					if iy > 0 {
						su += s.gy[i-s.nx] * snapshot[i-s.nx]
					}
					if g := s.gy[i]; g != 0 {
						su += g * snapshot[i+s.nx]
					}
					if l > 0 {
						su += s.gz[i-s.cells] * snapshot[i-s.cells]
					}
					if l < s.nl-1 {
						su += s.gz[i] * snapshot[i+s.cells]
					}
					want[i] = su * s.invDiag[i]
				}
			}
		}
	}
	s.Smooth(b, x, false)
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("red-black sweep differs from phase-wise reference at %d: %v vs %v", i, x[i], want[i])
		}
	}
}
