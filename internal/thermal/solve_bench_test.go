package thermal

// Solve-family micro-benchmarks comparing the allocating wrappers against
// the workspace path:
//
//	go test ./internal/thermal -bench=Solve -benchmem
//
// The "fresh" variants rebuild the operator, RHS, CG scratch, and field
// per call (the pre-session behavior); "workspace" reuses one Workspace
// cold-started per solve; "workspace-warm" additionally seeds each solve
// from the previous converged field — the session steady-state.

import (
	"testing"
)

func benchModel(b *testing.B) (*Model, map[int][]float64, TopBoundary) {
	b.Helper()
	m, err := NewModel(NewXeonStack(DefaultXeonStackConfig()), DefaultEnvironment())
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = 0.05 + 0.002*float64(i%13)
	}
	return m, map[int][]float64{0: p}, UniformTop(m.Cells(), 6000, 32)
}

func BenchmarkSteadySolve(b *testing.B) {
	m, power, bc := benchModel(b)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SteadySolve(power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		w := m.NewWorkspace()
		f := w.FieldA()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace-warm", func(b *testing.B) {
		w := m.NewWorkspace()
		f := w.FieldA()
		if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.SteadySolveInto(f, f, power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTransientSolveStep(b *testing.B) {
	m, power, bc := benchModel(b)
	b.Run("fresh", func(b *testing.B) {
		f := m.UniformField(30)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next, err := m.StepTransient(f, 0.25, power, bc)
			if err != nil {
				b.Fatal(err)
			}
			f = next
		}
	})
	b.Run("workspace", func(b *testing.B) {
		w := m.NewWorkspace()
		f := w.FieldA()
		f.T.Fill(30)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.StepTransientInto(f, f, 0.25, power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
