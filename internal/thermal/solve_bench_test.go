package thermal

// Solve-family micro-benchmarks comparing the allocating wrappers against
// the workspace path:
//
//	go test ./internal/thermal -bench=Solve -benchmem
//
// The "fresh" variants rebuild the operator, RHS, CG scratch, and field
// per call (the pre-session behavior); "workspace" reuses one Workspace
// cold-started per solve; "workspace-warm" additionally seeds each solve
// from the previous converged field — the session steady-state.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

func benchModel(b *testing.B) (*Model, map[int][]float64, TopBoundary) {
	b.Helper()
	m, err := NewModel(NewXeonStack(DefaultXeonStackConfig()), DefaultEnvironment())
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = 0.05 + 0.002*float64(i%13)
	}
	return m, map[int][]float64{0: p}, UniformTop(m.Cells(), 6000, 32)
}

func BenchmarkSteadySolve(b *testing.B) {
	m, power, bc := benchModel(b)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SteadySolve(power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		w := m.NewWorkspace()
		f := w.FieldA()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace-warm", func(b *testing.B) {
		w := m.NewWorkspace()
		f := w.FieldA()
		if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.SteadySolveInto(f, f, power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSteadySolveSize compares the solvers across grid resolutions
// on cold steady solves — the scaling picture behind the multigrid
// tentpole — and, per solver, across intra-solve thread counts (the
// threads=N sub-runs): the same solve fanned out over the workspace's
// worker team, byte-identical by contract and measured here for the
// speedup-vs-serial trajectory scripts/bench.sh records. Jacobi-CG's
// time per solve grows superlinearly in the cell count; MG-PCG stays a
// fixed small number of cycles, so the gap widens with every doubling.
func BenchmarkSteadySolveSize(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		m, power, bc := xvalModel(b, floorplan.XeonE5Package(), n, n)
		for _, s := range []Solver{SolverCG, SolverMGPCG, SolverMGPCG32, SolverMGPCGCheb} {
			for _, threads := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%d/%s/threads=%d", n, s, threads), func(b *testing.B) {
					w := m.NewWorkspace()
					w.SetSolver(s)
					w.SetThreads(threads)
					defer w.Close()
					f := w.FieldA()
					if err := w.SteadySolveInto(f, nil, power, bc); err != nil { // warm buffers
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFusedCGIteration isolates the per-iteration cost of the fused
// CG vector kernels on the 128×128 thermal operator: a fixed 32-iteration
// budget at an unreachable tolerance, so ns/op ≈ 32 CG iterations of
// stencil apply + fused vector work with no convergence noise.
// ReportAllocs doubles as the zero-alloc gate for the fused path.
func BenchmarkFusedCGIteration(b *testing.B) {
	m, power, bc := xvalModel(b, floorplan.XeonE5Package(), 128, 128)
	w := m.NewWorkspace()
	defer w.Close()
	m.fillOperator(&w.op, bc, 0)
	if err := m.rhsInto(w.rhs, power, bc); err != nil {
		b.Fatal(err)
	}
	x := make(linalg.Vector, m.n)
	opt := linalg.CGOptions{Tol: 1e-300, MaxIter: 32, Precond: &w.pre}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			w.SetThreads(threads)
			x.Fill(0)
			if _, err := linalg.CGWith(&w.op, w.rhs, x, opt, &w.cg); err != nil && !errors.Is(err, linalg.ErrNotConverged) {
				b.Fatal(err) // warm-up
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Fill(0)
				if _, err := linalg.CGWith(&w.op, w.rhs, x, opt, &w.cg); err != nil && !errors.Is(err, linalg.ErrNotConverged) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMGVCycle times one warm V-cycle on a 128×128 hierarchy — the
// unit of work MG-PCG spends per iteration. ReportAllocs doubles as the
// allocation-regression guard for the cycle itself.
func BenchmarkMGVCycle(b *testing.B) {
	m, power, bc := xvalModel(b, floorplan.XeonE5Package(), 128, 128)
	w := m.NewWorkspace()
	w.SetSolver(SolverMG)
	f := w.FieldA()
	if err := w.SteadySolveInto(f, nil, power, bc); err != nil { // build + warm the hierarchy
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.hier.mg.Cycle(w.rhs, f.T)
	}
}

func BenchmarkTransientSolveStep(b *testing.B) {
	m, power, bc := benchModel(b)
	b.Run("fresh", func(b *testing.B) {
		f := m.UniformField(30)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next, err := m.StepTransient(f, 0.25, power, bc)
			if err != nil {
				b.Fatal(err)
			}
			f = next
		}
	})
	b.Run("workspace", func(b *testing.B) {
		w := m.NewWorkspace()
		f := w.FieldA()
		f.T.Fill(30)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.StepTransientInto(f, f, 0.25, power, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
