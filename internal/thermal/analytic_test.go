package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

func TestSlabResistanceAgainstSolver(t *testing.T) {
	// Uniformly heated stack: the solver's mean bottom temperature must
	// match the 1-D series-resistance solution (lateral conduction is
	// irrelevant when everything is uniform).
	s := smallStack(10, 10)
	m, err := NewModel(s, Environment{AmbientC: 25, BottomH: 0})
	if err != nil {
		t.Fatal(err)
	}
	const (
		q  = 60.0
		h  = 6000.0
		tf = 35.0
	)
	area := 0.02 * 0.02
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = q / float64(m.Cells())
	}
	sol, err := m.SteadySolve(map[int][]float64{0: p}, UniformTop(m.Cells(), h, tf))
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, temp := range sol.Layer(0) {
		mean += temp
	}
	mean /= float64(m.Cells())

	want, err := s.OneDSlabTemp(q, area, h, tf)
	if err != nil {
		t.Fatal(err)
	}
	// The FV model injects at cell centers (half-layer offset), so allow
	// half the first layer's conduction drop as tolerance.
	tol := q / area * s.Layers[0].Thickness / s.Layers[0].Base.K / 2 * 1.1
	if math.Abs(mean-want) > tol+0.2 {
		t.Fatalf("solver mean %.3f vs analytic %.3f (tol %.3f)", mean, want, tol)
	}
}

func TestSlabResistanceErrors(t *testing.T) {
	s := smallStack(4, 4)
	if _, err := s.SlabResistance(0, 100); err == nil {
		t.Fatal("zero area must error")
	}
	if _, err := s.SlabResistance(1e-4, 0); err == nil {
		t.Fatal("zero film must error")
	}
}

func TestSpreadingResistancePlausible(t *testing.T) {
	// Die-sized source (equiv. radius of 18×13.7 mm) on the package-sized
	// spreader: the spreading term should be small but positive for
	// copper, and grow when conductivity drops.
	a := EquivalentRadius(18e-3, 13.7e-3)
	b := EquivalentRadius(38e-3, 30e-3)
	cu, err := SpreadingResistance(a, b, 3e-3, 390, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if cu <= 0 || cu > 0.5 {
		t.Fatalf("copper spreading resistance %.4f K/W implausible", cu)
	}
	al, err := SpreadingResistance(a, b, 3e-3, 200, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if al <= cu {
		t.Fatal("worse conductor must spread worse")
	}
	small, err := SpreadingResistance(a/3, b, 3e-3, 390, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if small <= cu {
		t.Fatal("smaller source must have higher spreading resistance")
	}
}

func TestSpreadingResistanceValidation(t *testing.T) {
	if _, err := SpreadingResistance(2, 1, 1, 1, 1); err == nil {
		t.Fatal("source larger than plate must error")
	}
	if _, err := SpreadingResistance(0, 1, 1, 1, 1); err == nil {
		t.Fatal("zero source must error")
	}
}

func TestEquivalentRadius(t *testing.T) {
	r := EquivalentRadius(2, 2)
	if math.Abs(math.Pi*r*r-4) > 1e-12 {
		t.Fatalf("area mismatch: %v", math.Pi*r*r)
	}
}

func TestTimeConstantBoundsTransient(t *testing.T) {
	s := smallStack(6, 6)
	tau, err := s.TimeConstant(4000)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 || tau > 60 {
		t.Fatalf("time constant %v s implausible for mm-scale copper", tau)
	}
	// After 5τ the transient must be within 1% of steady.
	m, _ := NewModel(s, Environment{AmbientC: 25, BottomH: 0})
	p := make([]float64, m.Cells())
	for i := range p {
		p[i] = 0.5
	}
	bc := UniformTop(m.Cells(), 4000, 35)
	pw := map[int][]float64{0: p}
	steady, err := m.SteadySolve(pw, bc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.UniformField(25)
	steps := int(5*tau/0.05) + 1
	for i := 0; i < steps; i++ {
		f, err = m.StepTransient(f, 0.05, pw, bc)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range f.T {
		rise := steady.T[i] - 25
		if math.Abs(f.T[i]-steady.T[i]) > 0.01*rise+0.05 {
			t.Fatalf("cell %d not settled after 5τ: %.3f vs %.3f", i, f.T[i], steady.T[i])
		}
	}
	if _, err := s.TimeConstant(0); err == nil {
		t.Fatal("zero film must error")
	}
	_ = floorplan.Grid{}
}
