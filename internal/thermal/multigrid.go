package thermal

import (
	"repro/internal/linalg"
)

// This file builds the geometric multigrid hierarchy for a Model: a chain
// of stencil operators over 2:1-coarsened (nx, ny) cell grids (layers are
// never merged — the stack is only a handful of layers deep and the
// strong vertical coupling is handled by the smoother), with
// full-weighting restriction and bilinear prolongation between levels.
//
// Coarse operators are rediscretized rather than assembled by a Galerkin
// triple product: a coarse edge aggregates the fine conductances crossing
// the corresponding coarse-cell interface (parallel paths add), divided
// by the coarsening factor along the edge (the cell pitch doubles, so the
// conduction path is twice as long). On a uniform grid this reproduces
// the direct discretization at the coarse pitch exactly, and it keeps
// every level a 7-point M-matrix — the same stencil type, the same
// red-black smoother. Extensive per-cell couplings (the board-side and
// convective boundary conductances, heat capacities) are block-summed,
// so coarse boundary cells see the same total heat path to the outside
// world as the fine cells they aggregate.

// coarsestCells is the per-layer cell count below which the hierarchy
// stops coarsening; the coarsest system is then solved exhaustively by
// symmetric Gauss-Seidel sweep pairs inside the V-cycle.
const coarsestCells = 32

// axisMap is the 1-D index pattern of a cell-centered 2:1 coarsening
// along one grid direction: every fine cell has a parent coarse cell and,
// for interpolation, the nearest coarse neighbor on the other side of the
// fine cell's center (-1 at the domain edges, where the zero-flux lateral
// boundary makes constant extrapolation exact).
type axisMap struct {
	parent []int // fine index -> owning coarse index (ix/2)
	other  []int // second coarse cell of the interpolation pair, -1 at edges
}

func newAxisMap(nFine, nCoarse int) axisMap {
	am := axisMap{
		parent: make([]int, nFine),
		other:  make([]int, nFine),
	}
	for i := 0; i < nFine; i++ {
		p := i / 2
		am.parent[i] = p
		o := p + 1
		if i%2 == 0 {
			o = p - 1
		}
		if o < 0 || o >= nCoarse {
			am.other[i] = -1
			continue
		}
		am.other[i] = o
	}
	return am
}

// transfer is the inter-level grid transfer: operator-induced bilinear
// prolongation of corrections and its transpose, full-weighting
// restriction of residuals. Every fine cell's weights sum to one, so
// restriction conserves the total residual heat (Watts) — the natural
// pairing with rediscretized coarse operators on an RC network.
//
// The per-cell directional weights come from the fine conductances: a
// fine cell interpolates toward the neighboring coarse cell with weight
// ½·g_other/(g_other + g_sibling), where g_other is the fine edge leading
// toward that neighbor and g_sibling the edge into the cell's own block.
// On smooth coefficients this is exactly the geometric bilinear ¼–¾
// stencil; across a strong conductivity jump (the silicon/underfill die
// boundary is 260:1) the weight collapses toward injection, which is what
// keeps the V-cycle contractive — geometric weights interpolate
// temperatures across the jump and make deep hierarchies diverge.
type transfer struct {
	nxf, nyf, nl int
	cellsF       int
	nxc, nyc     int
	cellsC       int
	xm, ym       axisMap
	// wx, wy hold each fine unknown's weight toward its x/y "other"
	// coarse cell (0 where other == -1). Indexed like the fine level.
	wx, wy []float64

	// team parallelizes the transfers (nil = serial): Prolong gathers per
	// fine cell so it bands fine rows; Restrict and blockSum scatter into
	// the coarse level, so they partition over layer-slabs — layers never
	// couple in a transfer, which makes the slabs write-disjoint.
	team *linalg.Team
	job  transferJob
}

// setTeam attaches the worker team the transfer kernels dispatch on.
func (t *transfer) setTeam(tm *linalg.Team) { t.team = tm }

// parallel reports whether this transfer's passes should use the team.
func (t *transfer) parallel() bool {
	return t.team.Workers() > 1 && t.nl*t.cellsF >= linalg.ParMin
}

// transferJob adapts one transfer pass to linalg.Task.
type transferJob struct {
	t        *transfer
	mode     int
	src, dst linalg.Vector
}

const (
	jobRestrict = iota
	jobProlong
	jobBlockSum
)

// Do implements linalg.Task.
func (j *transferJob) Do(worker, workers int) {
	switch j.mode {
	case jobRestrict:
		lo, hi := linalg.Band(j.t.nl, worker, workers)
		j.t.restrictLayers(j.src, j.dst, lo, hi)
	case jobProlong:
		lo, hi := linalg.Band(j.t.nl*j.t.nyf, worker, workers)
		j.t.prolongRows(j.src, j.dst, lo, hi)
	case jobBlockSum:
		lo, hi := linalg.Band(j.t.nl, worker, workers)
		j.t.blockSumLayers(j.src, j.dst, lo, hi)
	}
}

// sideWeight computes the interpolation weight toward the other coarse
// cell from the fine edge conductances: gOther leads toward the other
// coarse cell, gSibling into the cell's own block.
func sideWeight(gOther, gSibling float64) float64 {
	if gOther == 0 {
		return 0
	}
	if gSibling == 0 {
		// Clipped single-cell block (odd grid edge): fall back to the
		// geometric weight.
		return 0.25
	}
	return 0.5 * gOther / (gOther + gSibling)
}

func newTransfer(fine, coarse *stencil) *transfer {
	t := &transfer{
		nxf: fine.nx, nyf: fine.ny, nl: fine.nl, cellsF: fine.cells,
		nxc: coarse.nx, nyc: coarse.ny, cellsC: coarse.cells,
		xm: newAxisMap(fine.nx, coarse.nx),
		ym: newAxisMap(fine.ny, coarse.ny),
		wx: make([]float64, fine.n),
		wy: make([]float64, fine.n),
	}
	for l := 0; l < fine.nl; l++ {
		base := l * fine.cells
		for iy := 0; iy < fine.ny; iy++ {
			for ix := 0; ix < fine.nx; ix++ {
				i := base + iy*fine.nx + ix
				if t.xm.other[ix] >= 0 {
					var gOther, gSibling float64
					if ix%2 == 0 { // other parent lies west
						gOther = fine.gx[i-1]
						gSibling = fine.gx[i]
					} else { // east
						gOther = fine.gx[i]
						gSibling = fine.gx[i-1]
					}
					t.wx[i] = sideWeight(gOther, gSibling)
				}
				if t.ym.other[iy] >= 0 {
					var gOther, gSibling float64
					if iy%2 == 0 { // other parent lies south
						gOther = fine.gy[i-fine.nx]
						gSibling = fine.gy[i]
					} else { // north
						gOther = fine.gy[i]
						gSibling = fine.gy[i-fine.nx]
					}
					t.wy[i] = sideWeight(gOther, gSibling)
				}
			}
		}
	}
	return t
}

// Restrict projects a fine residual onto the coarse grid by full
// weighting (the transpose of Prolong), overwriting coarse.
func (t *transfer) Restrict(fine, coarse linalg.Vector) {
	if t.parallel() {
		t.job = transferJob{t: t, mode: jobRestrict, src: fine, dst: coarse}
		t.team.Run(&t.job)
		return
	}
	t.restrictLayers(fine, coarse, 0, t.nl)
}

// restrictLayers restricts the layer-slab [lLo, lHi): the scatter into a
// coarse layer only ever comes from the fine layer directly above it, so
// slabs are write-disjoint across workers.
func (t *transfer) restrictLayers(fine, coarse linalg.Vector, lLo, lHi int) {
	coarse[lLo*t.cellsC : lHi*t.cellsC].Fill(0)
	for l := lLo; l < lHi; l++ {
		baseF := l * t.cellsF
		baseC := l * t.cellsC
		for iy := 0; iy < t.nyf; iy++ {
			py, oy := t.ym.parent[iy], t.ym.other[iy]
			rowP := baseC + py*t.nxc
			rowO := baseC + oy*t.nxc
			rowF := baseF + iy*t.nxf
			for ix := 0; ix < t.nxf; ix++ {
				i := rowF + ix
				px, ox := t.xm.parent[ix], t.xm.other[ix]
				wx, wy := t.wx[i], t.wy[i]
				wpx, wpy := 1-wx, 1-wy
				v := fine[i]
				coarse[rowP+px] += wpx * wpy * v
				if ox >= 0 {
					coarse[rowP+ox] += wx * wpy * v
				}
				if oy >= 0 {
					coarse[rowO+px] += wpx * wy * v
					if ox >= 0 {
						coarse[rowO+ox] += wx * wy * v
					}
				}
			}
		}
	}
}

// Prolong interpolates a coarse correction with the operator-induced
// bilinear weights and adds it into the fine iterate. Each fine cell
// gathers from its (frozen) coarse parents, so fine rows band across the
// team freely.
func (t *transfer) Prolong(coarse, fine linalg.Vector) {
	if t.parallel() {
		t.job = transferJob{t: t, mode: jobProlong, src: coarse, dst: fine}
		t.team.Run(&t.job)
		return
	}
	t.prolongRows(coarse, fine, 0, t.nl*t.nyf)
}

// prolongRows interpolates the fine global rows [rowLo, rowHi).
func (t *transfer) prolongRows(coarse, fine linalg.Vector, rowLo, rowHi int) {
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/t.nyf, g%t.nyf
		baseC := l * t.cellsC
		py, oy := t.ym.parent[iy], t.ym.other[iy]
		rowP := baseC + py*t.nxc
		rowO := baseC + oy*t.nxc
		rowF := l*t.cellsF + iy*t.nxf
		for ix := 0; ix < t.nxf; ix++ {
			i := rowF + ix
			px, ox := t.xm.parent[ix], t.xm.other[ix]
			wx, wy := t.wx[i], t.wy[i]
			wpx, wpy := 1-wx, 1-wy
			v := wpx * wpy * coarse[rowP+px]
			if ox >= 0 {
				v += wx * wpy * coarse[rowP+ox]
			}
			if oy >= 0 {
				v += wpx * wy * coarse[rowO+px]
				if ox >= 0 {
					v += wx * wy * coarse[rowO+ox]
				}
			}
			fine[i] += v
		}
	}
}

// blockSum restricts an extensive per-unknown quantity (boundary
// conductance, heat capacity) by summing each coarse cell's children.
func (t *transfer) blockSum(fine, coarse linalg.Vector) {
	if t.parallel() {
		t.job = transferJob{t: t, mode: jobBlockSum, src: fine, dst: coarse}
		t.team.Run(&t.job)
		return
	}
	t.blockSumLayers(fine, coarse, 0, t.nl)
}

// blockSumLayers block-sums the layer-slab [lLo, lHi); like restriction,
// the scatter never leaves the layer, so slabs are write-disjoint.
func (t *transfer) blockSumLayers(fine, coarse linalg.Vector, lLo, lHi int) {
	coarse[lLo*t.cellsC : lHi*t.cellsC].Fill(0)
	for l := lLo; l < lHi; l++ {
		baseF := l * t.cellsF
		baseC := l * t.cellsC
		for iy := 0; iy < t.nyf; iy++ {
			rowC := baseC + t.ym.parent[iy]*t.nxc
			rowF := baseF + iy*t.nxf
			for ix := 0; ix < t.nxf; ix++ {
				coarse[rowC+t.xm.parent[ix]] += fine[rowF+ix]
			}
		}
	}
}

// coarsen rediscretizes a stencil on the 2:1-coarsened grid. Only the
// conductances are built here; the diagonal is assembled per solve by
// hierarchy.refresh (it depends on the boundary condition and time step).
func coarsen(f *stencil) (*stencil, *transfer) {
	nxc := (f.nx + 1) / 2
	nyc := (f.ny + 1) / 2
	c := &stencil{
		nx: nxc, ny: nyc, nl: f.nl,
		cells:   nxc * nyc,
		n:       nxc * nyc * f.nl,
		diag:    make(linalg.Vector, nxc*nyc*f.nl),
		invDiag: make(linalg.Vector, nxc*nyc*f.nl),
	}
	c.gx = make([]float64, c.n)
	c.gy = make([]float64, c.n)
	if f.nl > 1 {
		c.gz = make([]float64, (f.nl-1)*c.cells)
	}
	for l := 0; l < f.nl; l++ {
		baseF := l * f.cells
		baseC := l * c.cells
		// x edges: the fine edges crossing a coarse interface are those
		// at odd fine ix; parallel paths add, and the doubled cell pitch
		// halves the aggregate (the conduction path is twice as long).
		for jc := 0; jc < nyc; jc++ {
			for ic := 0; ic < nxc-1; ic++ {
				var sum float64
				ix := 2*ic + 1
				for iy := 2 * jc; iy < 2*jc+2 && iy < f.ny; iy++ {
					sum += f.gx[baseF+iy*f.nx+ix]
				}
				c.gx[baseC+jc*nxc+ic] = sum / 2
			}
		}
		// y edges, symmetric.
		for jc := 0; jc < nyc-1; jc++ {
			iy := 2*jc + 1
			for ic := 0; ic < nxc; ic++ {
				var sum float64
				for ix := 2 * ic; ix < 2*ic+2 && ix < f.nx; ix++ {
					sum += f.gy[baseF+iy*f.nx+ix]
				}
				c.gy[baseC+jc*nxc+ic] = sum / 2
			}
		}
	}
	// z edges: no coarsening between layers — the coarse face area is the
	// sum of its children's faces, so the conductances simply add.
	for l := 0; l < f.nl-1; l++ {
		baseF := l * f.cells
		baseC := l * c.cells
		for jc := 0; jc < nyc; jc++ {
			for ic := 0; ic < nxc; ic++ {
				var sum float64
				for iy := 2 * jc; iy < 2*jc+2 && iy < f.ny; iy++ {
					for ix := 2 * ic; ix < 2*ic+2 && ix < f.nx; ix++ {
						sum += f.gz[baseF+iy*f.nx+ix]
					}
				}
				c.gz[baseC+jc*nxc+ic] = sum
			}
		}
	}
	return c, newTransfer(f, c)
}

// baseDiagOf precomputes the constant part of a stencil's diagonal: the
// sum of incident conductances, mirroring fillOperator's accumulation.
func baseDiagOf(s *stencil) linalg.Vector {
	d := make(linalg.Vector, s.n)
	nx, cells := s.nx, s.cells
	for l := 0; l < s.nl; l++ {
		base := l * cells
		for c := 0; c < cells; c++ {
			i := base + c
			var v float64
			if g := s.gx[i]; g != 0 {
				v += g
			}
			if c%nx != 0 {
				v += s.gx[i-1]
			}
			if g := s.gy[i]; g != 0 {
				v += g
			}
			if c >= nx {
				v += s.gy[i-nx]
			}
			if l < s.nl-1 {
				v += s.gz[i]
			}
			if l > 0 {
				v += s.gz[i-cells]
			}
			d[i] = v
		}
	}
	return d
}

// mgLevel is one level of the hierarchy: its stencil plus the per-solve
// external diagonal (boundary conductances and capacitive terms) that
// refresh() rebuilds, and the transfer to the next coarser level.
type mgLevel struct {
	st       *stencil
	baseDiag linalg.Vector // sum of incident conductances (constant)
	extDiag  linalg.Vector // boundary + capacitive terms (per solve)
	down     *transfer     // nil on the coarsest level
}

// hierarchy is a model's multigrid ladder. The finest level aliases the
// owning workspace's operator stencil, so fillOperator's diagonal is the
// one the fine smoother sees; coarse levels own rediscretized stencils.
// Geometry is built once; only diagonals change between solves.
type hierarchy struct {
	m      *Model
	levels []*mgLevel
	mg     *linalg.Multigrid
}

// newHierarchy builds the level ladder for a model over the given fine
// stencil, coarsening in (nx, ny) until the per-layer grid is small
// enough for the in-cycle exhaustive solve.
func newHierarchy(m *Model, fine *stencil) (*hierarchy, error) {
	h := &hierarchy{m: m}
	h.levels = append(h.levels, &mgLevel{st: fine})
	cur := fine
	for cur.cells > coarsestCells && cur.nx > 2 && cur.ny > 2 {
		c, t := coarsen(cur)
		h.levels[len(h.levels)-1].down = t
		h.levels = append(h.levels, &mgLevel{st: c})
		cur = c
	}
	mls := make([]linalg.MGLevel, len(h.levels))
	for i, lv := range h.levels {
		lv.baseDiag = baseDiagOf(lv.st)
		lv.extDiag = make(linalg.Vector, lv.st.n)
		mls[i] = linalg.MGLevel{A: lv.st}
		if lv.down != nil {
			mls[i].Down = lv.down
		}
	}
	mg, err := linalg.NewMultigrid(mls)
	if err != nil {
		return nil, err
	}
	h.mg = mg
	return h, nil
}

// setTeam attaches the worker team to every level's stencil and transfer.
// The fine stencil aliases the owning workspace's operator, so setting it
// here and in Workspace.SetThreads is idempotent; coarse levels gate on
// their own size, keeping the deep-ladder tail serial where dispatch
// would cost more than the sweep.
func (h *hierarchy) setTeam(t *linalg.Team) {
	for _, lv := range h.levels {
		lv.st.setTeam(t)
		if lv.down != nil {
			lv.down.setTeam(t)
		}
	}
}

// refresh rebuilds every coarse level's diagonal from the fine diagonal
// fillOperator has already assembled for this solve. The fine external
// terms (boundary conductances, capacitive C/dt) are recovered by
// subtracting the precomputed conductance sum from the filled diagonal —
// baseDiagOf mirrors fillOperator's accumulation order, so the
// subtraction is exact for interior cells and, crucially, any term a
// future fillOperator adds flows into extDiag (and down the ladder)
// automatically instead of silently desynchronizing the coarse levels.
// Allocation-free.
func (h *hierarchy) refresh() {
	f := h.levels[0]
	for i, d := range f.st.diag {
		f.extDiag[i] = d - f.baseDiag[i]
	}
	for k := 1; k < len(h.levels); k++ {
		finer, lv := h.levels[k-1], h.levels[k]
		finer.down.blockSum(finer.extDiag, lv.extDiag)
		for i := range lv.st.diag {
			d := lv.baseDiag[i] + lv.extDiag[i]
			lv.st.diag[i] = d
			lv.st.invDiag[i] = 1 / d
		}
	}
}
