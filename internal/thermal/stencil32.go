package thermal

import (
	"repro/internal/linalg"
)

// stencil32 is the float32 mirror of the 7-point stencil, the level
// operator of the mixed-precision V-cycle preconditioner (SolverMGPCG32).
// Geometry, indexing, banding and barrier placement are identical to the
// float64 stencil; only the element type changes, halving every byte the
// smoothing sweeps and residual evaluations move. The conductances are
// converted once at construction (they never change); the diagonals are
// re-converted from the float64 hierarchy per solve by hierarchy32.
//
// The determinism contract carries over unchanged: every kernel is a
// gather over banded grid rows with per-color barriers, so results are
// byte-identical at any thread count for a given build. float32 results
// differ from the float64 ladder, of course — that is confined to the
// preconditioner; the CG outer loop stays float64.
type stencil32 struct {
	nx, ny, nl int
	cells      int
	n          int

	gx, gy, gz []float32
	diag       []float32
	invDiag    []float32

	team *linalg.Team
	job  stencil32Job
}

var _ linalg.FusedSmoother32 = (*stencil32)(nil)

// newStencil32 mirrors a float64 stencil's geometry and conductances in
// float32. The diagonal buffers start zero; refresh32 fills them.
func newStencil32(f *stencil) *stencil32 {
	s := &stencil32{
		nx: f.nx, ny: f.ny, nl: f.nl, cells: f.cells, n: f.n,
		gx:      make([]float32, len(f.gx)),
		gy:      make([]float32, len(f.gy)),
		gz:      make([]float32, len(f.gz)),
		diag:    make([]float32, f.n),
		invDiag: make([]float32, f.n),
	}
	for i, v := range f.gx {
		s.gx[i] = float32(v)
	}
	for i, v := range f.gy {
		s.gy[i] = float32(v)
	}
	for i, v := range f.gz {
		s.gz[i] = float32(v)
	}
	return s
}

// setTeam attaches the worker team the row kernels dispatch on.
func (s *stencil32) setTeam(t *linalg.Team) { s.team = t }

// parallel reports whether a pass should use the team (same linalg.ParMin
// size gate as the float64 kernels).
func (s *stencil32) parallel() bool {
	return s.team.Workers() > 1 && s.n >= linalg.ParMin
}

// stencil32Job adapts one float32 stencil pass to linalg.Task.
type stencil32Job struct {
	s       *stencil32
	mode    int
	b, x, y []float32
	color   int
}

// Do implements linalg.Task.
func (j *stencil32Job) Do(worker, workers int) {
	lo, hi := linalg.Band(j.s.nl*j.s.ny, worker, workers)
	switch j.mode {
	case jobResidual:
		j.s.residualRows(j.b, j.x, j.y, lo, hi)
	case jobSmooth:
		j.s.smoothRows(j.b, j.x, j.color, lo, hi)
	case jobSmoothResidual:
		j.s.smoothResidualRows(j.b, j.x, j.y, j.color, lo, hi)
	case jobResidualColor:
		j.s.residualColorRows(j.b, j.x, j.y, j.color, lo, hi)
	}
}

// Size returns the dimension of the operator.
func (s *stencil32) Size() int { return s.n }

// Residual computes r = b - A·x in float32.
func (s *stencil32) Residual(b, x, r []float32) {
	if s.parallel() {
		s.job = stencil32Job{s: s, mode: jobResidual, b: b, x: x, y: r}
		s.team.Run(&s.job)
		return
	}
	s.residualRows(b, x, r, 0, s.nl*s.ny)
}

func (s *stencil32) residualRows(b, x, r []float32, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		i := l*cells + iy*nx
		for ix := 0; ix < nx; ix++ {
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			r[i] = b[i] - v
			i++
		}
	}
}

// Smooth performs one red-black Gauss-Seidel sweep (forward: red then
// black; reverse: black then red), one barrier per color.
func (s *stencil32) Smooth(b, x []float32, reverse bool) {
	colors := [2]int{0, 1}
	if reverse {
		colors = [2]int{1, 0}
	}
	if s.parallel() {
		for _, color := range colors {
			s.job = stencil32Job{s: s, mode: jobSmooth, b: b, x: x, color: color}
			s.team.Run(&s.job)
		}
		return
	}
	for _, color := range colors {
		s.smoothRows(b, x, color, 0, s.nl*s.ny)
	}
}

func (s *stencil32) smoothRows(b, x []float32, color, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		row := l*cells + iy*nx
		for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
			i := row + ix
			su := b[i]
			if ix > 0 {
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if iy > 0 {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			x[i] = su * s.invDiag[i]
		}
	}
}

// SmoothResidual implements linalg.FusedSmoother32: forward sweep plus
// residual in one fused pass, the float32 twin of the float64 kernel —
// same phases, same barriers, bit-identical to Smooth(false)+Residual.
func (s *stencil32) SmoothResidual(b, x, r []float32) {
	if s.parallel() {
		s.job = stencil32Job{s: s, mode: jobSmooth, b: b, x: x, color: 0}
		s.team.Run(&s.job)
		s.job = stencil32Job{s: s, mode: jobSmoothResidual, b: b, x: x, y: r, color: 1}
		s.team.Run(&s.job)
		s.job = stencil32Job{s: s, mode: jobResidualColor, b: b, x: x, y: r, color: 0}
		s.team.Run(&s.job)
		return
	}
	rows := s.nl * s.ny
	s.smoothRows(b, x, 0, 0, rows)
	s.smoothResidualRows(b, x, r, 1, 0, rows)
	s.residualColorRows(b, x, r, 0, 0, rows)
}

// smoothResidualRows relaxes one color and evaluates the relaxed cells'
// residuals in the same visit (all their neighbors are the frozen
// opposite color).
func (s *stencil32) smoothResidualRows(b, x, r []float32, color, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		row := l*cells + iy*nx
		for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
			i := row + ix
			su := b[i]
			if ix > 0 {
				su += s.gx[i-1] * x[i-1]
			}
			if g := s.gx[i]; g != 0 {
				su += g * x[i+1]
			}
			if iy > 0 {
				su += s.gy[i-nx] * x[i-nx]
			}
			if g := s.gy[i]; g != 0 {
				su += g * x[i+nx]
			}
			if l > 0 {
				su += s.gz[i-cells] * x[i-cells]
			}
			if l < s.nl-1 {
				if g := s.gz[i]; g != 0 {
					su += g * x[i+cells]
				}
			}
			x[i] = su * s.invDiag[i]

			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			r[i] = b[i] - v
		}
	}
}

// residualColorRows evaluates r = b - A·x at one color's cells.
func (s *stencil32) residualColorRows(b, x, r []float32, color, rowLo, rowHi int) {
	nx, ny, cells := s.nx, s.ny, s.cells
	for g := rowLo; g < rowHi; g++ {
		l, iy := g/ny, g%ny
		row := l*cells + iy*nx
		for ix := (color + iy + l) & 1; ix < nx; ix += 2 {
			i := row + ix
			v := s.diag[i] * x[i]
			if l > 0 {
				if gz := s.gz[i-cells]; gz != 0 {
					v -= gz * x[i-cells]
				}
			}
			if iy > 0 {
				if gy := s.gy[i-nx]; gy != 0 {
					v -= gy * x[i-nx]
				}
			}
			if ix > 0 {
				if gx := s.gx[i-1]; gx != 0 {
					v -= gx * x[i-1]
				}
			}
			if gx := s.gx[i]; gx != 0 {
				v -= gx * x[i+1]
			}
			if gy := s.gy[i]; gy != 0 {
				v -= gy * x[i+nx]
			}
			if l < s.nl-1 {
				if gz := s.gz[i]; gz != 0 {
					v -= gz * x[i+cells]
				}
			}
			r[i] = b[i] - v
		}
	}
}
