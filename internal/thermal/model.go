package thermal

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// TopBoundary is the convective boundary condition on the stack's top
// surface, supplied per cell by the cooling model: T_fluid and heat
// transfer coefficient h. Cells with H=0 are adiabatic on top.
type TopBoundary struct {
	// H is the per-cell heat transfer coefficient (W/m²·K).
	H []float64
	// TFluid is the per-cell fluid temperature (°C).
	TFluid []float64
}

// UniformTop returns a spatially uniform top boundary.
func UniformTop(cells int, h, tFluid float64) TopBoundary {
	bc := TopBoundary{H: make([]float64, cells), TFluid: make([]float64, cells)}
	for i := range bc.H {
		bc.H[i] = h
		bc.TFluid[i] = tFluid
	}
	return bc
}

// Environment collects the secondary boundary conditions.
type Environment struct {
	// AmbientC is the board-side ambient temperature (°C).
	AmbientC float64
	// BottomH is the weak convective coefficient on the stack bottom
	// (board conduction + enclosure air), W/m²·K.
	BottomH float64
}

// DefaultEnvironment matches a server enclosure: 45 °C local ambient and a
// weak 10 W/m²·K board-side path.
func DefaultEnvironment() Environment { return Environment{AmbientC: 45, BottomH: 10} }

// Model is the assembled RC network for a Stack. It precomputes all
// inter-cell conductances; boundary conductances vary per solve.
type Model struct {
	Stack *Stack
	Env   Environment

	nx, ny, nl int
	cells      int // per layer
	n          int // total unknowns

	// Conductances (W/K). gx[idx] couples (l,ix,iy)-(l,ix+1,iy) and is
	// stored at the left cell; gy couples to (l,ix,iy+1); gz[l*cells+c]
	// couples layer l to l+1 at cell c.
	gx, gy, gz []float64
	// capAll is per-unknown heat capacity (J/K).
	capAll []float64
	// gBottom couples die-layer cells to ambient.
	gBottom []float64
	// topHalf is the conduction half-resistance (K/W)⁻¹ precursor for the
	// top layer: per-cell conductance from cell center to the top face.
	topHalf []float64
}

// NewModel assembles the RC network for the stack.
func NewModel(stack *Stack, env Environment) (*Model, error) {
	if err := stack.Validate(); err != nil {
		return nil, err
	}
	g := stack.Grid
	m := &Model{
		Stack: stack,
		Env:   env,
		nx:    g.NX, ny: g.NY, nl: len(stack.Layers),
		cells: g.Cells(),
	}
	m.n = m.cells * m.nl
	dx, dy := g.DX, g.DY

	// Per-cell material lookup.
	k := make([][]float64, m.nl)
	for l, spec := range stack.Layers {
		k[l] = make([]float64, m.cells)
		capl := make([]float64, m.cells)
		for iy := 0; iy < m.ny; iy++ {
			for ix := 0; ix < m.nx; ix++ {
				mat := materialAt(spec, g, ix, iy)
				c := g.Index(ix, iy)
				k[l][c] = mat.K
				capl[c] = mat.VolHeatCap * dx * dy * spec.Thickness
			}
		}
		m.capAll = append(m.capAll, capl...)
	}

	harmonic := func(k1, k2 float64) float64 {
		if k1 <= 0 || k2 <= 0 {
			return 0
		}
		return 2 * k1 * k2 / (k1 + k2)
	}

	// Lateral conductances within each layer.
	m.gx = make([]float64, m.n)
	m.gy = make([]float64, m.n)
	for l, spec := range stack.Layers {
		t := spec.Thickness
		for iy := 0; iy < m.ny; iy++ {
			for ix := 0; ix < m.nx; ix++ {
				c := g.Index(ix, iy)
				if ix+1 < m.nx {
					ke := harmonic(k[l][c], k[l][g.Index(ix+1, iy)])
					m.gx[l*m.cells+c] = ke * t * dy / dx
				}
				if iy+1 < m.ny {
					ke := harmonic(k[l][c], k[l][g.Index(ix, iy+1)])
					m.gy[l*m.cells+c] = ke * t * dx / dy
				}
			}
		}
	}

	// Vertical conductances between consecutive layers: series of the two
	// half-layer resistances through the shared face.
	if m.nl > 1 {
		m.gz = make([]float64, (m.nl-1)*m.cells)
		area := dx * dy
		for l := 0; l < m.nl-1; l++ {
			t0 := stack.Layers[l].Thickness
			t1 := stack.Layers[l+1].Thickness
			for c := 0; c < m.cells; c++ {
				r := t0/(2*k[l][c]) + t1/(2*k[l+1][c])
				m.gz[l*m.cells+c] = area / r
			}
		}
	}

	// Bottom boundary on layer 0 (board side).
	m.gBottom = make([]float64, m.cells)
	area := dx * dy
	t0 := stack.Layers[0].Thickness
	for c := 0; c < m.cells; c++ {
		if env.BottomH > 0 {
			r := t0/(2*k[0][c]) + 1/env.BottomH
			m.gBottom[c] = area / r
		}
	}

	// Conduction from the top layer's cell center to its top face; the
	// convective boundary is composed in series with this per solve.
	m.topHalf = make([]float64, m.cells)
	tl := stack.Layers[m.nl-1].Thickness
	for c := 0; c < m.cells; c++ {
		m.topHalf[c] = 2 * k[m.nl-1][c] * area / tl
	}

	return m, nil
}

// Cells returns the number of cells per layer.
func (m *Model) Cells() int { return m.cells }

// Layers returns the number of layers.
func (m *Model) Layers() int { return m.nl }

// Grid returns the discretization grid.
func (m *Model) Grid() floorplan.Grid { return m.Stack.Grid }

// topG composes the convective top boundary with the half-layer conduction
// for cell c, returning the total conductance to the fluid (W/K).
func (m *Model) topG(bc TopBoundary, c int) float64 {
	h := bc.H[c]
	if h <= 0 {
		return 0
	}
	area := m.Stack.Grid.DX * m.Stack.Grid.DY
	gConv := h * area
	// Series with conduction from cell center to the wetted face.
	return m.topHalf[c] * gConv / (m.topHalf[c] + gConv)
}

// newStencil returns the model's fine-level operator stencil —
// linalg.Operator / StencilSweeper / Smoother for A·T where A is the
// steady conduction matrix plus boundary and (optionally) capacitive
// diagonal terms. The conductances alias the model; the diagonal buffers
// are freshly allocated and (re)assembled per solve by fillOperator.
func (m *Model) newStencil() stencil {
	return stencil{
		nx: m.nx, ny: m.ny, nl: m.nl, cells: m.cells, n: m.n,
		gx: m.gx, gy: m.gy, gz: m.gz,
		diag:    make(linalg.Vector, m.n),
		invDiag: make(linalg.Vector, m.n),
	}
}

// fillOperator (re)assembles the diagonal for the given boundary and
// optional capacitive term (capOverDt > 0 for transient steps) into a
// stencil whose vectors are already sized — the allocation-free core that
// both buildOperator and Workspace share. Every element is overwritten, so
// a reused stencil carries no state between solves.
func (m *Model) fillOperator(op *stencil, bc TopBoundary, capOverDt float64) {
	nx, cells := m.nx, m.cells
	for l := 0; l < m.nl; l++ {
		base := l * cells
		for c := 0; c < cells; c++ {
			i := base + c
			var d float64
			if g := m.gx[i]; g != 0 {
				d += g
			}
			if c%nx != 0 {
				d += m.gx[i-1]
			}
			if g := m.gy[i]; g != 0 {
				d += g
			}
			if c >= nx {
				d += m.gy[i-nx]
			}
			if l < m.nl-1 {
				d += m.gz[i]
			}
			if l > 0 {
				d += m.gz[i-cells]
			}
			if l == 0 {
				d += m.gBottom[c]
			}
			if l == m.nl-1 {
				d += m.topG(bc, c)
			}
			if capOverDt > 0 {
				d += m.capAll[i] * capOverDt
			}
			op.diag[i] = d
			op.invDiag[i] = 1 / d
		}
	}
}

// buildOperator allocates a fresh operator stencil for the given boundary
// and optional capacitive term.
func (m *Model) buildOperator(bc TopBoundary, capOverDt float64) *stencil {
	op := m.newStencil()
	m.fillOperator(&op, bc, capOverDt)
	return &op
}

// rhs assembles the right-hand side: injected power plus boundary sources.
// powerByLayer maps layer index → per-cell watts (nil entries allowed).
func (m *Model) rhs(powerByLayer map[int][]float64, bc TopBoundary) (linalg.Vector, error) {
	b := make(linalg.Vector, m.n)
	if err := m.rhsInto(b, powerByLayer, bc); err != nil {
		return nil, err
	}
	return b, nil
}

// rhsInto assembles the right-hand side into a caller-owned vector of
// length n, overwriting it completely. Allocation-free: the map is
// walked directly (write order does not matter — every layer scatters
// into a disjoint range of b).
func (m *Model) rhsInto(b linalg.Vector, powerByLayer map[int][]float64, bc TopBoundary) error {
	b.Fill(0)
	for l, p := range powerByLayer {
		if p == nil {
			continue
		}
		if err := m.injectLayer(b, l, p); err != nil {
			return err
		}
	}
	m.rhsBoundaryInto(b, bc)
	return nil
}

// rhsLayersInto is rhsInto with the injection as a dense per-layer table
// (layers[l] = per-cell watts, nil entries allowed, table may be shorter
// than the stack) — the lookup-free form the workspace hot paths use.
func (m *Model) rhsLayersInto(b linalg.Vector, layers [][]float64, bc TopBoundary) error {
	if len(layers) > m.nl {
		return fmt.Errorf("thermal: power table has %d layers, stack has %d", len(layers), m.nl)
	}
	b.Fill(0)
	for l, p := range layers {
		if p == nil {
			continue
		}
		if err := m.injectLayer(b, l, p); err != nil {
			return err
		}
	}
	m.rhsBoundaryInto(b, bc)
	return nil
}

// injectLayer validates one layer's power vector and adds it into b.
func (m *Model) injectLayer(b linalg.Vector, l int, p []float64) error {
	if l < 0 || l >= m.nl {
		return fmt.Errorf("thermal: power assigned to invalid layer %d", l)
	}
	if len(p) != m.cells {
		return fmt.Errorf("thermal: layer %d power has %d cells, want %d", l, len(p), m.cells)
	}
	base := l * m.cells
	for c, w := range p {
		b[base+c] += w
	}
	return nil
}

// rhsBoundaryInto adds the boundary source terms shared by both RHS
// assemblers: board-side ambient on layer 0 and the convective top fluid.
func (m *Model) rhsBoundaryInto(b linalg.Vector, bc TopBoundary) {
	for c := 0; c < m.cells; c++ {
		b[c] += m.gBottom[c] * m.Env.AmbientC
	}
	top := (m.nl - 1) * m.cells
	for c := 0; c < m.cells; c++ {
		if g := m.topG(bc, c); g != 0 {
			b[top+c] += g * bc.TFluid[c]
		}
	}
}

func (m *Model) checkBC(bc TopBoundary) error {
	if len(bc.H) != m.cells || len(bc.TFluid) != m.cells {
		return fmt.Errorf("thermal: boundary has %d/%d cells, want %d", len(bc.H), len(bc.TFluid), m.cells)
	}
	return nil
}

// SteadySolve computes the steady-state temperature field for the given
// per-layer power injection (W per cell) and top boundary.
func (m *Model) SteadySolve(powerByLayer map[int][]float64, bc TopBoundary) (*Field, error) {
	return m.SteadySolveFrom(nil, powerByLayer, bc)
}

// SteadySolveFrom is SteadySolve warm-started from a previous field, which
// makes the outer thermosyphon coupling loop cheap: successive solves
// differ only slightly, so CG converges in a few iterations. It is a thin
// compatibility wrapper over Workspace.SteadySolveInto that builds a
// throwaway workspace; hot loops should hold a Workspace (or a
// cosim.Session) instead and reuse it across solves.
func (m *Model) SteadySolveFrom(init *Field, powerByLayer map[int][]float64, bc TopBoundary) (*Field, error) {
	f := m.NewField()
	if err := m.NewWorkspace().SteadySolveInto(f, init, powerByLayer, bc); err != nil {
		return nil, err
	}
	return f, nil
}

// StepTransient advances the field by dt seconds with backward Euler under
// the given power and boundary, returning the new field. Like
// SteadySolveFrom it wraps the workspace path with per-call scratch.
func (m *Model) StepTransient(prev *Field, dt float64, powerByLayer map[int][]float64, bc TopBoundary) (*Field, error) {
	f := m.NewField()
	if err := m.NewWorkspace().StepTransientInto(f, prev, dt, powerByLayer, bc); err != nil {
		return nil, err
	}
	return f, nil
}

// NewField returns a zero-temperature field sized for the model.
func (m *Model) NewField() *Field {
	return &Field{model: m, T: make(linalg.Vector, m.n)}
}

// UniformField returns a field at a constant temperature, for transient
// initial conditions.
func (m *Model) UniformField(tC float64) *Field {
	f := m.NewField()
	f.T.Fill(tC)
	return f
}
