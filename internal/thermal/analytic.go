package thermal

import (
	"fmt"
	"math"
)

// Analytic reference solutions used to validate the finite-volume model in
// its limiting regimes: 1-D conduction through the layer stack and the
// classical spreading-resistance estimate for a small source on a larger
// plate. The tests compare the 3-D solver against these closed forms.

// SlabResistance returns the 1-D series thermal resistance (K/W) of the
// stack per unit area times area — i.e. for a column of the given area
// through every layer, terminated by a convective film h on top.
func (s *Stack) SlabResistance(area, h float64) (float64, error) {
	if area <= 0 {
		return 0, fmt.Errorf("thermal: non-positive area")
	}
	if h <= 0 {
		return 0, fmt.Errorf("thermal: non-positive film coefficient")
	}
	var rPerArea float64 // m²K/W
	for _, l := range s.Layers {
		rPerArea += l.Thickness / l.Base.K
	}
	rPerArea += 1 / h
	return rPerArea / area, nil
}

// OneDSlabTemp returns the analytic bottom temperature of a uniformly
// heated stack column: T = T_fluid + q·R_slab with q the total heat and
// R_slab the series resistance over the full area.
func (s *Stack) OneDSlabTemp(q, area, h, tFluid float64) (float64, error) {
	r, err := s.SlabResistance(area, h)
	if err != nil {
		return 0, err
	}
	return tFluid + q*r, nil
}

// SpreadingResistance returns the classical (Lee et al.) approximation of
// the constriction/spreading resistance (K/W) for a circular source of
// radius a on a circular plate of radius b and thickness t with
// conductivity k, cooled by film h on the far side.
func SpreadingResistance(a, b, t, k, h float64) (float64, error) {
	if a <= 0 || b <= a || t <= 0 || k <= 0 || h <= 0 {
		return 0, fmt.Errorf("thermal: invalid spreading geometry (a=%g b=%g t=%g k=%g h=%g)", a, b, t, k, h)
	}
	eps := a / b
	tau := t / b
	biot := h * b / k
	lambda := math.Pi + 1/(math.Sqrt(math.Pi)*eps)
	phi := (math.Tanh(lambda*tau) + lambda/biot) / (1 + lambda/biot*math.Tanh(lambda*tau))
	psiMax := eps*tau/math.Sqrt(math.Pi) + 1/math.Sqrt(math.Pi)*(1-eps)*phi
	return psiMax / (k * a * math.Sqrt(math.Pi)), nil
}

// EquivalentRadius returns the radius of the circle with the same area as
// a w×h rectangle — the standard adaptation of circular spreading formulas
// to rectangular sources.
func EquivalentRadius(w, h float64) float64 {
	return math.Sqrt(w * h / math.Pi)
}

// TimeConstant returns the lumped RC time constant (s) of the stack per
// unit area against a film h: τ = (Σ ρcp·t) · (Σ t/k + 1/h). It bounds how
// long transients take to settle, which the transient tests use.
func (s *Stack) TimeConstant(h float64) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("thermal: non-positive film coefficient")
	}
	var capPerArea, rPerArea float64
	for _, l := range s.Layers {
		capPerArea += l.Base.VolHeatCap * l.Thickness
		rPerArea += l.Thickness / l.Base.K
	}
	rPerArea += 1 / h
	return capPerArea * rPerArea, nil
}
