package thermal

// Memory-bandwidth-honest kernel benchmarks. Every b.SetBytes below
// counts the kernel's *nominal stream traffic* — each array the pass
// reads or writes, once per cell, at its element width — so the MB/s Go
// reports is directly comparable with BenchmarkStreamTriad's measured
// ceiling: scripts/bench_json.py divides the two into `fraction_of_peak`.
// The accounting deliberately ignores cache reuse of neighbor loads
// (gathers re-read x at up to 7 offsets, but 6 of them are cache hits on
// any non-pathological grid) and write-allocate traffic, matching the
// STREAM convention, so fractions are conservative and stable across
// grid sizes.
//
// Per-cell stream bytes at float64:
//
//	smooth sweep:    b + x(rw) + gx + gy + gz + invDiag      = 7×8 B
//	residual pass:   b + x + r(w) + gx + gy + gz + diag      = 7×8 B
//	fused pass:      the unfused pair's streams minus nothing —
//	                 the win is locality (x, b and the coefficient
//	                 arrays are hot for the residual half), so both
//	                 variants charge the same 14×8 B and the fused
//	                 kernel shows up as higher MB/s.
//	jacobi step:     b + x + y(w) + gx + gy + gz + diag + invDiag = 8×8 B

import (
	"fmt"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// benchOperator assembles a filled steady operator, rhs and iterate at
// n×n on the Broadwell package.
func benchOperator(b *testing.B, n int) (*Model, *Workspace, linalg.Vector, linalg.Vector) {
	b.Helper()
	m, power, bc := xvalModel(b, floorplan.XeonE5Package(), n, n)
	w := m.NewWorkspace()
	m.fillOperator(&w.op, bc, 0)
	rhs := make(linalg.Vector, m.n)
	if err := m.rhsInto(rhs, power, bc); err != nil {
		b.Fatal(err)
	}
	return m, w, rhs, parField(m.n)
}

// BenchmarkStencilSmoothResidual compares the fused smooth+residual pass
// against the unfused pair it replaces (bit-identical output by the
// FusedSmoother contract), across sizes and team widths. Both variants
// charge the unfused pair's nominal 14×8 B/cell, so the fused variant's
// MB/s advantage is exactly its locality win.
func BenchmarkStencilSmoothResidual(b *testing.B) {
	for _, n := range []int{128, 256} {
		m, w, rhs, x0 := benchOperator(b, n)
		r := make(linalg.Vector, m.n)
		x := x0.Clone()
		for _, threads := range []int{1, 2, 4, 8} {
			for _, variant := range []string{"unfused", "fused"} {
				b.Run(fmt.Sprintf("%d/%s/threads=%d", n, variant, threads), func(b *testing.B) {
					w.SetThreads(threads)
					copy(x, x0)
					w.op.SmoothResidual(rhs, x, r) // warm the team
					b.ReportAllocs()
					b.SetBytes(int64(m.n * 14 * 8))
					b.ResetTimer()
					if variant == "fused" {
						for i := 0; i < b.N; i++ {
							w.op.SmoothResidual(rhs, x, r)
						}
					} else {
						for i := 0; i < b.N; i++ {
							w.op.Smooth(rhs, x, false)
							w.op.Residual(rhs, x, r)
						}
					}
				})
			}
		}
		w.Close()
	}
}

// BenchmarkStencil32SmoothResidual is the float32 fused pass — the
// V-cycle inner loop of SolverMGPCG32 — charged at its own 14×4 B/cell
// so its MB/s lands on the same bandwidth axis: at the memory ceiling it
// should sustain roughly the float64 kernel's MB/s while finishing cells
// twice as fast.
func BenchmarkStencil32SmoothResidual(b *testing.B) {
	for _, n := range []int{128, 256} {
		m, w, rhs, x0 := benchOperator(b, n)
		s := stencil32From(&w.op)
		rhs32 := make([]float32, m.n)
		x32 := make([]float32, m.n)
		r32 := make([]float32, m.n)
		for i := range rhs32 {
			rhs32[i] = float32(rhs[i])
			x32[i] = float32(x0[i])
		}
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%d/threads=%d", n, threads), func(b *testing.B) {
				team := linalg.NewTeam(threads)
				defer team.Close()
				s.setTeam(team)
				s.SmoothResidual(rhs32, x32, r32) // warm the team
				b.ReportAllocs()
				b.SetBytes(int64(m.n * 14 * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.SmoothResidual(rhs32, x32, r32)
				}
			})
		}
		w.Close()
	}
}

// BenchmarkChebSmooth times one degree-2 Chebyshev smoothing application
// — two fused Jacobi steps, one barrier each — against the red-black
// pair it replaces in SolverMGPCGCheb's V-cycle. Charged at the two
// steps' nominal 2×8×8 B/cell.
func BenchmarkChebSmooth(b *testing.B) {
	for _, n := range []int{128, 256} {
		m, w, rhs, x0 := benchOperator(b, n)
		cheb := linalg.NewChebySmoother(&w.op, w.op.invDiag, 2)
		x := x0.Clone()
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%d/threads=%d", n, threads), func(b *testing.B) {
				w.SetThreads(threads)
				cheb.Smooth(rhs, x, false) // eigenvalue setup + team warm-up
				b.ReportAllocs()
				b.SetBytes(int64(m.n * 2 * 8 * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cheb.Smooth(rhs, x, false)
				}
			})
		}
		w.Close()
	}
}
