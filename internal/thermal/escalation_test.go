package thermal

import (
	"context"
	"errors"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// escalationFixture builds a model plus assembled power/boundary for the
// ladder tests, at the standard medium package grid.
func escalationFixture(t testing.TB) (*Model, map[int][]float64, TopBoundary) {
	t.Helper()
	return xvalModel(t, floorplan.XeonE5Package(), 38, 30)
}

func TestNextRung(t *testing.T) {
	cases := []struct {
		from Solver
		to   Solver
		ok   bool
	}{
		{SolverMGPCG32, SolverMGPCG, true},
		{SolverMGPCGCheb, SolverMGPCG, true},
		{SolverMG, SolverMGPCG, true},
		{SolverMGPCG, SolverCG, true},
		{SolverCG, SolverCG, false}, // terminal rung
	}
	for _, c := range cases {
		to, ok := nextRung(c.from)
		if ok != c.ok || (ok && to != c.to) {
			t.Errorf("nextRung(%v) = %v,%v; want %v,%v", c.from, to, ok, c.to, c.ok)
		}
	}
}

// TestInjectedMGFaultEscalatesToCG is the PR's acceptance gate: with the
// MG preconditioner NaN-poisoned, a mgpcg32 steady solve must descend the
// ladder (mgpcg32 → mgpcg → cg), succeed on the terminal Jacobi-CG rung,
// and agree with a direct Jacobi-CG solve.
func TestInjectedMGFaultEscalatesToCG(t *testing.T) {
	m, power, bc := escalationFixture(t)

	// Reference: direct Jacobi-CG, ladder irrelevant (cg never fails here).
	wref := m.NewWorkspace()
	wref.SetSolver(SolverCG)
	ref := wref.FieldA()
	if err := wref.SteadySolveInto(ref, nil, power, bc); err != nil {
		t.Fatal(err)
	}

	w := m.NewWorkspace()
	w.SetSolver(SolverMGPCG32)
	w.InjectMGFault(true)
	got := w.FieldA()
	if err := w.SteadySolveInto(got, nil, power, bc); err != nil {
		t.Fatalf("ladder did not rescue the poisoned solve: %v", err)
	}

	esc := w.Escalations()
	if len(esc) != 2 {
		t.Fatalf("escalations = %v, want mgpcg32→mgpcg→cg (2 descents)", esc)
	}
	if esc[0].From != SolverMGPCG32 || esc[0].To != SolverMGPCG || esc[0].Cause != "nan" {
		t.Errorf("first descent = %v, want mgpcg32→mgpcg (nan)", esc[0])
	}
	if esc[1].From != SolverMGPCG || esc[1].To != SolverCG || esc[1].Cause != "nan" {
		t.Errorf("second descent = %v, want mgpcg→cg (nan)", esc[1])
	}
	if w.Stats().Escalations != 2 {
		t.Errorf("Stats().Escalations = %d, want 2", w.Stats().Escalations)
	}
	if w.Solver() != SolverMGPCG32 {
		t.Errorf("configured solver drifted to %v — ladder must not rewrite it", w.Solver())
	}

	// The rescued solve reseeds from ambient before the terminal cg rung —
	// exactly the direct cg path — so it matches far inside the 1e-7
	// acceptance bound (byte-identically, in fact).
	for i := range ref.T {
		if got.T[i] != ref.T[i] {
			t.Fatalf("rescued solve differs from direct cg at %d: %v vs %v", i, got.T[i], ref.T[i])
		}
	}
}

// TestEscalationTransientRestoresSeed: a poisoned transient step must
// retry from the previous-step field (not ambient) and land byte-identical
// to a direct Jacobi-CG step.
func TestEscalationTransientRestoresSeed(t *testing.T) {
	m, power, bc := escalationFixture(t)
	layers := [][]float64{power[0]}

	step := func(w *Workspace) *Field {
		prev := w.FieldA()
		if err := w.SteadySolveLayersInto(prev, nil, layers, bc); err != nil {
			t.Fatal(err)
		}
		dst := w.FieldB()
		if err := w.StepTransientLayersInto(dst, prev, 0.05, layers, bc); err != nil {
			t.Fatal(err)
		}
		return dst
	}

	wref := m.NewWorkspace()
	wref.SetSolver(SolverCG)
	ref := step(wref)

	w := m.NewWorkspace()
	w.SetSolver(SolverMGPCG)
	w.InjectMGFault(true)
	got := step(w)

	if len(w.Escalations()) == 0 {
		t.Fatal("poisoned transient step never escalated")
	}
	for i := range ref.T {
		if got.T[i] != ref.T[i] {
			t.Fatalf("rescued transient step differs from direct cg at %d: %v vs %v", i, got.T[i], ref.T[i])
		}
	}
}

// TestEscalationByteIdenticalAcrossThreads: the rescued solve keeps the
// thread-count determinism contract.
func TestEscalationByteIdenticalAcrossThreads(t *testing.T) {
	m, power, bc := escalationFixture(t)
	solve := func(threads int) linalg.Vector {
		w := m.NewWorkspace()
		defer w.Close()
		w.SetSolver(SolverMGPCG32)
		w.InjectMGFault(true)
		if threads > 1 {
			w.SetThreads(threads)
		}
		f := w.FieldA()
		if err := w.SteadySolveInto(f, nil, power, bc); err != nil {
			t.Fatal(err)
		}
		if len(w.Escalations()) != 2 {
			t.Fatalf("threads=%d: escalations = %v", threads, w.Escalations())
		}
		return append(linalg.Vector(nil), f.T...)
	}
	serial := solve(1)
	for _, n := range []int{2, 4} {
		par := solve(n)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("threads=%d differs from serial at %d: %v vs %v", n, i, par[i], serial[i])
			}
		}
	}
}

// TestEscalationDisabled: with the ladder off, the poisoned solve must
// surface its diagnostic SolveError unchanged.
func TestEscalationDisabled(t *testing.T) {
	m, power, bc := escalationFixture(t)
	w := m.NewWorkspace()
	w.SetSolver(SolverMGPCG)
	w.SetEscalation(false)
	w.InjectMGFault(true)
	f := w.FieldA()
	err := w.SteadySolveInto(f, nil, power, bc)
	if err == nil {
		t.Fatal("poisoned solve succeeded with the ladder disabled")
	}
	if !errors.Is(err, linalg.ErrNotConverged) {
		t.Fatalf("error %v does not unwrap to ErrNotConverged", err)
	}
	var se *linalg.SolveError
	if !errors.As(err, &se) || se.Cause != linalg.CauseNaN {
		t.Fatalf("error %v is not a CauseNaN SolveError", err)
	}
	if n := len(w.Escalations()); n != 0 {
		t.Fatalf("disabled ladder still recorded %d escalations", n)
	}
}

// TestEscalationObservesContext: a cancelled context aborts the ladder
// between rungs instead of grinding through every fallback.
func TestEscalationObservesContext(t *testing.T) {
	m, power, bc := escalationFixture(t)
	w := m.NewWorkspace()
	w.SetSolver(SolverMGPCG32)
	w.InjectMGFault(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w.SetContext(ctx)
	f := w.FieldA()
	err := w.SteadySolveInto(f, nil, power, bc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the inter-rung check", err)
	}
}
