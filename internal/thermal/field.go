package thermal

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// Field is a temperature solution over a model's unknowns (°C).
type Field struct {
	model *Model
	T     linalg.Vector
}

// Layer returns the temperature slice of one layer (length Cells()).
// The returned slice aliases the field; callers must not modify it.
func (f *Field) Layer(l int) []float64 {
	cells := f.model.cells
	return f.T[l*cells : (l+1)*cells]
}

// LayerByName returns the temperatures of the named layer.
func (f *Field) LayerByName(name string) ([]float64, error) {
	l := f.model.Stack.LayerIndex(name)
	if l < 0 {
		return nil, fmt.Errorf("thermal: no layer %q", name)
	}
	return f.Layer(l), nil
}

// At returns the temperature of cell (ix, iy) in layer l.
func (f *Field) At(l, ix, iy int) float64 {
	g := f.model.Stack.Grid
	return f.T[l*f.model.cells+g.Index(ix, iy)]
}

// Clone returns an independent copy of the field.
func (f *Field) Clone() *Field {
	return &Field{model: f.model, T: f.T.Clone()}
}

// Model returns the model the field was solved on.
func (f *Field) Model() *Model { return f.model }

// SampleAt returns the temperature of layer l at physical point (x, y),
// clamped into the grid.
func (f *Field) SampleAt(l int, x, y float64) float64 {
	g := f.model.Stack.Grid
	ix, iy := g.CellAt(x, y)
	return f.At(l, ix, iy)
}

// RegionStats summarizes a rectangular probe of one layer.
type RegionStats struct {
	Max, Min, Mean float64
	// MaxX, MaxY locate the hottest cell center (grid frame).
	MaxX, MaxY float64
}

// Region computes temperature statistics of layer l restricted to cells
// whose centers fall inside rect (grid coordinate frame). It returns an
// error if the rectangle covers no cell centers.
func (f *Field) Region(l int, rect floorplan.Rect) (RegionStats, error) {
	g := f.model.Stack.Grid
	st := RegionStats{Max: -1e300, Min: 1e300}
	var sum float64
	var count int
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			cx, cy := g.CellCenter(ix, iy)
			if !rect.Contains(cx, cy) {
				continue
			}
			t := f.At(l, ix, iy)
			sum += t
			count++
			if t > st.Max {
				st.Max, st.MaxX, st.MaxY = t, cx, cy
			}
			if t < st.Min {
				st.Min = t
			}
		}
	}
	if count == 0 {
		return RegionStats{}, fmt.Errorf("thermal: probe rectangle covers no cells")
	}
	st.Mean = sum / float64(count)
	return st, nil
}

// TotalHeatToTop integrates the heat leaving through the top boundary (W)
// for the given boundary condition — used to verify energy conservation.
func (f *Field) TotalHeatToTop(bc TopBoundary) float64 {
	m := f.model
	top := (m.nl - 1) * m.cells
	var q float64
	for c := 0; c < m.cells; c++ {
		if g := m.topG(bc, c); g != 0 {
			q += g * (f.T[top+c] - bc.TFluid[c])
		}
	}
	return q
}

// TopHeatPerCell returns the per-cell heat flow (W) leaving through the top
// boundary, which the thermosyphon's channel-marching model consumes.
func (f *Field) TopHeatPerCell(bc TopBoundary) []float64 {
	return f.TopHeatPerCellInto(nil, bc)
}

// TopHeatPerCellInto is TopHeatPerCell writing into a caller-owned buffer,
// grown as needed and returned — the allocation-free variant solve
// sessions use. Every element is overwritten.
func (f *Field) TopHeatPerCellInto(dst []float64, bc TopBoundary) []float64 {
	m := f.model
	top := (m.nl - 1) * m.cells
	if cap(dst) < m.cells {
		dst = make([]float64, m.cells)
	}
	dst = dst[:m.cells]
	for c := 0; c < m.cells; c++ {
		if g := m.topG(bc, c); g != 0 {
			dst[c] = g * (f.T[top+c] - bc.TFluid[c])
		} else {
			dst[c] = 0
		}
	}
	return dst
}

// TotalHeatToBottom integrates heat leaving through the board-side path (W).
func (f *Field) TotalHeatToBottom() float64 {
	m := f.model
	var q float64
	for c := 0; c < m.cells; c++ {
		q += m.gBottom[c] * (f.T[c] - m.Env.AmbientC)
	}
	return q
}
