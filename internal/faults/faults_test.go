package faults

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rack"
	"repro/internal/thermosyphon"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("meteor"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

func TestFaultValidate(t *testing.T) {
	ok := Fault{Kind: PumpDegradation, Severity: 0.5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid fault rejected: %v", err)
	}
	for _, bad := range []Fault{
		{Kind: PumpDegradation, Severity: -0.1},
		{Kind: PumpDegradation, Severity: 1}, // complete failure is rejected
		{Kind: PumpDegradation, Severity: 1.5},
		{Kind: Kind(99), Severity: 0.5},
		{Kind: PumpDegradation, Severity: 0.5, OnsetHour: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	sc, err := Parse("pump:0.4,fouling:0.3:loop0,bladeloss:0.6:loop1:r3b2,htc:0.5@8")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: PumpDegradation, Severity: 0.4},
		{Kind: CondenserFouling, Severity: 0.3, Loop: "loop0"},
		{Kind: BladeCoolingLoss, Severity: 0.6, Loop: "loop1", Blade: "r3b2"},
		{Kind: HTCDrift, Severity: 0.5, OnsetHour: 8},
	}
	if len(sc.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(sc.Faults), len(want))
	}
	for i, f := range sc.Faults {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
}

func TestParseEmptyIsHealthy(t *testing.T) {
	sc, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Empty() || sc.Name != "healthy" {
		t.Fatalf("Parse(\"\") = %+v, want empty healthy scenario", sc)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"pump",               // no severity
		"pump:high",          // non-numeric severity
		"pump:1.0",           // out of range
		"meteor:0.5",         // unknown kind
		"pump:0.5:a:b:c",     // too many fields
		"pump:0.5@yesterday", // bad onset
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestApplyDesign(t *testing.T) {
	d := thermosyphon.DefaultDesign()
	sc := Scenario{Faults: []Fault{
		{Kind: PartialDryout, Severity: 0.4},
		{Kind: CondenserFouling, Severity: 0.5},
		{Kind: HTCDrift, Severity: 0.5},
	}}
	got := sc.ApplyDesign(d, "loop0", "r0b0")
	if want := d.FillingRatio * 0.6; math.Abs(got.FillingRatio-want) > 1e-12 {
		t.Errorf("FillingRatio = %g, want %g", got.FillingRatio, want)
	}
	if want := d.CondenserUA * 0.5; math.Abs(got.CondenserUA-want) > 1e-12 {
		t.Errorf("CondenserUA = %g, want %g", got.CondenserUA, want)
	}
	if want := 1 + (d.AreaEnhancement-1)*0.5; math.Abs(got.AreaEnhancement-want) > 1e-12 {
		t.Errorf("AreaEnhancement = %g, want %g", got.AreaEnhancement, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("derated design invalid: %v", err)
	}
}

func TestApplyDesignStaysValidAtExtremeSeverity(t *testing.T) {
	d := thermosyphon.DefaultDesign()
	sc := Scenario{Faults: []Fault{
		{Kind: PartialDryout, Severity: 0.99},
		{Kind: HTCDrift, Severity: 0.99},
	}}
	got := sc.ApplyDesign(d, "loop0", "r0b0")
	if err := got.Validate(); err != nil {
		t.Fatalf("extreme derating left the validator's range: %v", err)
	}
	if got.AreaEnhancement < 1 {
		t.Fatalf("AreaEnhancement %g fell below a plain wall", got.AreaEnhancement)
	}
}

func TestApplyDesignScoping(t *testing.T) {
	d := thermosyphon.DefaultDesign()
	sc := Scenario{Faults: []Fault{
		{Kind: CondenserFouling, Severity: 0.5, Loop: "loop1", Blade: "r1b0"},
	}}
	if got := sc.ApplyDesign(d, "loop0", "r1b0"); got != d {
		t.Error("fault scoped to loop1 touched a loop0 blade")
	}
	if got := sc.ApplyDesign(d, "loop1", "r1b1"); got != d {
		t.Error("fault scoped to r1b0 touched r1b1")
	}
	if got := sc.ApplyDesign(d, "loop1", "r1b0"); got == d {
		t.Error("fault did not touch its own target")
	}
}

func TestApplyLoopAndFlowScale(t *testing.T) {
	l := rack.SharedLoop{PerBladeFlowKgH: 10}
	sc := Scenario{Faults: []Fault{
		{Kind: PumpDegradation, Severity: 0.3},
		{Kind: BladeCoolingLoss, Severity: 0.5, Blade: "r0b0"},
	}}
	if got := sc.ApplyLoop(l, "loop0").PerBladeFlowKgH; math.Abs(got-7) > 1e-12 {
		t.Errorf("ApplyLoop flow = %g, want 7", got)
	}
	if got := sc.FlowScale("loop0", "r0b0"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FlowScale(r0b0) = %g, want 0.5", got)
	}
	if got := sc.FlowScale("loop0", "r0b1"); got != 1 {
		t.Errorf("FlowScale(r0b1) = %g, want 1 (fault scoped to r0b0)", got)
	}
}

func TestActiveAt(t *testing.T) {
	sc := Scenario{Name: "aging", Faults: []Fault{
		{Kind: PumpDegradation, Severity: 0.3},
		{Kind: CondenserFouling, Severity: 0.5, OnsetHour: 12},
	}}
	early := sc.ActiveAt(6)
	if len(early.Faults) != 1 || early.Faults[0].Kind != PumpDegradation {
		t.Fatalf("ActiveAt(6) = %+v, want only the onset-0 pump fault", early.Faults)
	}
	late := sc.ActiveAt(12)
	if len(late.Faults) != 2 {
		t.Fatalf("ActiveAt(12) = %+v, want both faults", late.Faults)
	}
}

func TestNilScenarioIsHealthy(t *testing.T) {
	var sc *Scenario
	if !sc.Empty() {
		t.Fatal("nil scenario is not Empty")
	}
	d := thermosyphon.DefaultDesign()
	if got := sc.ApplyDesign(d, "loop0", "r0b0"); got != d {
		t.Error("nil scenario changed the design")
	}
	if got := sc.FlowScale("loop0", "r0b0"); got != 1 {
		t.Errorf("nil scenario FlowScale = %g", got)
	}
}

func TestScenarioValidateNamesFault(t *testing.T) {
	sc := Scenario{Faults: []Fault{
		{Kind: PumpDegradation, Severity: 0.5},
		{Kind: CondenserFouling, Severity: 2},
	}}
	err := sc.Validate()
	if err == nil || !strings.Contains(err.Error(), "fault 1") {
		t.Fatalf("Validate = %v, want error naming fault 1", err)
	}
}
