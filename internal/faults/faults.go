// Package faults models cooling-degradation scenarios for the two-phase
// thermosyphon fleet: a typed Fault (pump degradation, partial dryout,
// condenser fouling, HTC drift, blade cooling loss) with a severity and an
// onset time, composed into a Scenario that is applied declaratively to
// the thermosyphon designs and shared water loops of a topology.
//
// Everything here is a pure, closed-form transformation of model
// parameters — no randomness, no state — so a faulted fleet keeps the
// repository's byte-determinism contract: pooled and serial sweeps over a
// faulted topology produce identical bytes.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rack"
	"repro/internal/thermosyphon"
)

// Kind enumerates the cooling-failure mechanisms of ROADMAP item 4. Each
// maps onto one physical knob the thermosyphon/rack models already expose.
type Kind int

// Fault kinds.
const (
	// PumpDegradation: the loop's water pump loses head, cutting the
	// per-blade water flow in proportion to severity. A loop-level fault.
	PumpDegradation Kind = iota
	// PartialDryout: refrigerant undercharge derates the filling ratio,
	// which lowers the critical vapor quality — channels dry out earlier
	// and the boiling HTC collapses sooner along the evaporator.
	PartialDryout
	// CondenserFouling: scaling on the water side of the condenser derates
	// its UA, so condensation needs a larger refrigerant-to-water ΔT.
	CondenserFouling
	// HTCDrift: surface aging erodes the enhanced boiling structure,
	// pulling the area-enhancement factor back toward a plain wall.
	HTCDrift
	// BladeCoolingLoss: one blade's quick-disconnect partially closes,
	// cutting that blade's share of the loop flow. A blade-level fault.
	BladeCoolingLoss
)

// kindNames spells each kind the way the -fault flag does.
var kindNames = [...]string{
	PumpDegradation:  "pump",
	PartialDryout:    "dryout",
	CondenserFouling: "fouling",
	HTCDrift:         "htc",
	BladeCoolingLoss: "bladeloss",
}

// String names the kind the way the -fault command-line flag spells it.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every fault kind in declaration order — the sweep order of
// the failure-scenarios experiment.
func Kinds() []Kind {
	return []Kind{PumpDegradation, PartialDryout, CondenserFouling, HTCDrift, BladeCoolingLoss}
}

// ParseKind parses a -fault kind name.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q (want %s)", s, strings.Join(kindNames[:], "|"))
}

// Fault is one cooling degradation: a mechanism, how far it has
// progressed, where it applies, and when it sets in.
type Fault struct {
	Kind Kind
	// Severity is the degradation fraction in [0,1): 0 is healthy, values
	// approaching 1 are complete failure of the mechanism. 1 itself is
	// rejected — a fully failed pump or condenser leaves the model with no
	// flow/no UA, which the underlying validators refuse.
	Severity float64
	// Loop restricts the fault to the named water loop ("" = every loop).
	Loop string
	// Blade restricts the fault to the named blade ("" = every blade in
	// scope). Only meaningful for blade- and design-level faults.
	Blade string
	// OnsetHour gates the fault in time-resolved runs: before this hour
	// the fault is inactive (ActiveAt). Steady solves treat every fault
	// as active.
	OnsetHour float64
}

// Validate checks the fault parameters.
func (f Fault) Validate() error {
	if f.Severity < 0 || f.Severity >= 1 {
		return fmt.Errorf("faults: %s severity %g out of range [0,1)", f.Kind, f.Severity)
	}
	if int(f.Kind) >= len(kindNames) || f.Kind < 0 {
		return fmt.Errorf("faults: invalid kind %d", int(f.Kind))
	}
	if f.OnsetHour < 0 {
		return fmt.Errorf("faults: %s onset hour %g is negative", f.Kind, f.OnsetHour)
	}
	return nil
}

// matches reports whether the fault applies to the named loop and blade.
func (f Fault) matches(loop, blade string) bool {
	if f.Loop != "" && f.Loop != loop {
		return false
	}
	if f.Blade != "" && f.Blade != blade {
		return false
	}
	return true
}

// Scenario composes faults into one named failure case. The zero value
// (no faults) is the healthy baseline.
type Scenario struct {
	Name   string
	Faults []Fault
}

// Validate checks every fault.
func (s *Scenario) Validate() error {
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Empty reports a scenario with no faults — the healthy fleet.
func (s *Scenario) Empty() bool { return s == nil || len(s.Faults) == 0 }

// ActiveAt returns the scenario restricted to faults whose onset hour has
// passed — the scenario a time-resolved trace applies at the given hour.
func (s *Scenario) ActiveAt(hour float64) Scenario {
	out := Scenario{Name: s.Name}
	for _, f := range s.Faults {
		if f.OnsetHour <= hour {
			out.Faults = append(out.Faults, f)
		}
	}
	return out
}

// ApplyDesign derates a thermosyphon design for the named blade on the
// named loop. Severities compose multiplicatively when several faults hit
// the same knob. The derated design stays within Design.Validate bounds
// for any severity in [0,1): filling ratio is floored just above the
// validator's minimum, and the enhancement factor decays toward (but
// never below) a plain wall.
func (s *Scenario) ApplyDesign(d thermosyphon.Design, loop, blade string) thermosyphon.Design {
	if s.Empty() {
		return d
	}
	for _, f := range s.Faults {
		if !f.matches(loop, blade) {
			continue
		}
		switch f.Kind {
		case PartialDryout:
			d.FillingRatio *= 1 - f.Severity
			if d.FillingRatio < 0.06 {
				d.FillingRatio = 0.06
			}
		case CondenserFouling:
			d.CondenserUA *= 1 - f.Severity
		case HTCDrift:
			d.AreaEnhancement = 1 + (d.AreaEnhancement-1)*(1-f.Severity)
		}
	}
	return d
}

// ApplyLoop derates a shared water loop: pump degradation cuts the
// per-blade flow every blade on the loop sees.
func (s *Scenario) ApplyLoop(l rack.SharedLoop, loop string) rack.SharedLoop {
	if s.Empty() {
		return l
	}
	for _, f := range s.Faults {
		if f.Kind != PumpDegradation || !f.matches(loop, "") {
			continue
		}
		l.PerBladeFlowKgH *= 1 - f.Severity
	}
	return l
}

// FlowScale returns the residual water-flow fraction the named blade
// keeps after its blade-level cooling faults (1 = unaffected). Loop-level
// pump degradation is not included here — ApplyLoop already carries it.
func (s *Scenario) FlowScale(loop, blade string) float64 {
	scale := 1.0
	if s.Empty() {
		return scale
	}
	for _, f := range s.Faults {
		if f.Kind != BladeCoolingLoss || !f.matches(loop, blade) {
			continue
		}
		scale *= 1 - f.Severity
	}
	return scale
}

// Parse builds a scenario from the -fault flag syntax: comma-separated
// kind:severity terms, each optionally scoped and timed —
//
//	kind:severity[:loop[:blade]][@onsetHour]
//
// e.g. "pump:0.5", "pump:0.4,fouling:0.3", "bladeloss:0.6:loop0:r3b2",
// "fouling:0.5@8". An empty string parses to the healthy scenario.
func Parse(spec string) (Scenario, error) {
	sc := Scenario{Name: spec}
	if strings.TrimSpace(spec) == "" {
		sc.Name = "healthy"
		return sc, nil
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		var f Fault
		if at := strings.LastIndexByte(term, '@'); at >= 0 {
			h, err := strconv.ParseFloat(term[at+1:], 64)
			if err != nil {
				return Scenario{}, fmt.Errorf("faults: bad onset hour in %q: %v", term, err)
			}
			f.OnsetHour = h
			term = term[:at]
		}
		parts := strings.Split(term, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return Scenario{}, fmt.Errorf("faults: bad fault term %q (want kind:severity[:loop[:blade]][@hour])", term)
		}
		k, err := ParseKind(parts[0])
		if err != nil {
			return Scenario{}, err
		}
		f.Kind = k
		sev, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return Scenario{}, fmt.Errorf("faults: bad severity in %q: %v", term, err)
		}
		f.Severity = sev
		if len(parts) >= 3 {
			f.Loop = parts[2]
		}
		if len(parts) == 4 {
			f.Blade = parts[3]
		}
		if err := f.Validate(); err != nil {
			return Scenario{}, err
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc, nil
}
