package cosim

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/power"
	"repro/internal/thermosyphon"
)

// TestSessionMatchesFreshWithoutCarry: a non-carrying session must return
// bit-identical results to the fresh System path, solve after solve —
// that equivalence is what lets the sweep studies adopt sessions without
// touching the byte-determinism contract.
func TestSessionMatchesFreshWithoutCarry(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ses := sys.NewSession(CarryWarmStart(false))
	op := thermosyphon.DefaultOperating()
	for _, f := range []float64{2.2, 1.2, 3.0} {
		st := fullLoadState(f)
		fresh, err := sys.SolveSteady(st, op)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ses.SolveSteady(nil, st, op)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Iterations != got.Iterations || fresh.TotalPowerW != got.TotalPowerW {
			t.Fatalf("freq %.1f: iterations/power differ: %d/%.6f vs %d/%.6f",
				f, fresh.Iterations, fresh.TotalPowerW, got.Iterations, got.TotalPowerW)
		}
		for i := range fresh.Field.T {
			if fresh.Field.T[i] != got.Field.T[i] {
				t.Fatalf("freq %.1f: field differs at cell %d: %v vs %v",
					f, i, fresh.Field.T[i], got.Field.T[i])
			}
		}
		for i := range fresh.Syphon.H {
			if fresh.Syphon.H[i] != got.Syphon.H[i] {
				t.Fatalf("freq %.1f: HTC differs at cell %d", f, i)
			}
		}
	}
}

// TestSessionWarmStartConverges: with the carry enabled the session must
// reach the same converged answer (within solver tolerance) in fewer or
// equal coupling iterations when re-solving a nearby point.
func TestSessionWarmStartConverges(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.2)
	fresh, err := sys.SolveSteady(st, op)
	if err != nil {
		t.Fatal(err)
	}
	freshDie, _ := sys.DieStats(fresh)
	coldIters := fresh.Iterations

	ses := sys.NewSession()
	if _, err := ses.SolveSteady(nil, st, op); err != nil {
		t.Fatal(err)
	}
	// Re-solve the identical point warm: must converge at least as fast
	// and land on the same temperatures within coupling tolerance.
	warm, err := ses.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > coldIters {
		t.Fatalf("warm re-solve took %d iterations, cold took %d", warm.Iterations, coldIters)
	}
	warmDie, _ := sys.DieStats(warm)
	if d := math.Abs(warmDie.MaxC - freshDie.MaxC); d > 0.1 {
		t.Fatalf("warm re-solve drifted %.3f °C from the cold solve", d)
	}

	// A nearby operating point (one valve step) must also stay consistent
	// with its cold solve.
	op2 := op
	op2.WaterFlowKgH += 1
	coldNear, err := sys.SolveSteady(st, op2)
	if err != nil {
		t.Fatal(err)
	}
	coldNearDie, _ := sys.DieStats(coldNear)
	warmNear, err := ses.SolveSteady(nil, st, op2)
	if err != nil {
		t.Fatal(err)
	}
	warmNearDie, _ := sys.DieStats(warmNear)
	if d := math.Abs(warmNearDie.MaxC - coldNearDie.MaxC); d > 0.1 {
		t.Fatalf("warm nearby solve drifted %.3f °C from cold (%.3f vs %.3f)",
			d, warmNearDie.MaxC, coldNearDie.MaxC)
	}
	if warmNear.Iterations > coldNear.Iterations {
		t.Fatalf("warm nearby solve took %d iterations, cold took %d",
			warmNear.Iterations, coldNear.Iterations)
	}
}

// TestSessionReset: after Reset the next solve is cold and bit-identical
// to the fresh path even on a carrying session.
func TestSessionReset(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.0)
	fresh, err := sys.SolveSteady(st, op)
	if err != nil {
		t.Fatal(err)
	}
	ses := sys.NewSession()
	if _, err := ses.SolveSteady(nil, st, op); err != nil {
		t.Fatal(err)
	}
	ses.Reset()
	got, err := ses.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != fresh.Iterations {
		t.Fatalf("post-Reset solve not cold: %d vs %d iterations", got.Iterations, fresh.Iterations)
	}
	for i := range fresh.Field.T {
		if fresh.Field.T[i] != got.Field.T[i] {
			t.Fatalf("post-Reset field differs at cell %d", i)
		}
	}
}

// TestSessionLeakageMatchesFresh: the session leakage solver without carry
// must reproduce the fresh SolveSteadyLeakage bit for bit.
func TestSessionLeakageMatchesFresh(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.2)
	leak := power.DefaultLeakage()
	leak.RefC = 40
	fresh, err := sys.SolveSteadyLeakage(st, op, leak)
	if err != nil {
		t.Fatal(err)
	}
	ses := sys.NewSession(CarryWarmStart(false))
	got, err := ses.SolveSteadyLeakage(nil, st, op, leak)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.LeakageIterations != got.LeakageIterations || fresh.LeakageExtraW != got.LeakageExtraW {
		t.Fatalf("leakage summary differs: %d/%.6f vs %d/%.6f",
			fresh.LeakageIterations, fresh.LeakageExtraW, got.LeakageIterations, got.LeakageExtraW)
	}
	for name, temp := range fresh.BlockTempC {
		if got.BlockTempC[name] != temp {
			t.Fatalf("block %s temperature differs", name)
		}
	}
}

// TestSessionSteadySolveAllocs is the cosim half of the allocation gate:
// after warm-up, a full coupled steady solve on a session — power
// rasterization, evaporator march, thermal CG, flux extraction — must not
// touch the heap at all.
func TestSessionSteadySolveAllocs(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ses := sys.NewSession()
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.2)
	bp := sys.Power.BlockPowers(st)
	if _, err := ses.SolveSteadyPower(nil, bp, op); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ses.SolveSteadyPower(nil, bp, op); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("session steady solve allocated %.0f times per run, want 0", allocs)
	}
}

// TestSessionTransientStepAllocs: a workspace-backed transient step is
// heap-free after warm-up too.
func TestSessionTransientStepAllocs(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewTransient(sys, thermosyphon.DefaultOperating(), 30)
	if err != nil {
		t.Fatal(err)
	}
	bp := sys.Power.BlockPowers(fullLoadState(2.2))
	for i := 0; i < 3; i++ { // warm-up
		if err := sim.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := sim.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("transient step allocated %.0f times per run, want 0", allocs)
	}
}

// TestSessionTransientSharesWorkspace: one session can host steady solves
// and a transient run side by side without cross-talk.
func TestSessionTransientSharesWorkspace(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.2)
	ses := sys.NewSession()
	sim, err := ses.Transient(op, 30)
	if err != nil {
		t.Fatal(err)
	}
	bp := sys.Power.BlockPowers(st)
	steady, err := ses.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatal(err)
	}
	steadyMax, _ := sys.DieStats(steady)
	for i := 0; i < 80; i++ {
		if err := sim.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
		// Interleave a steady solve to prove the buffers are disjoint.
		if i == 40 {
			if _, err := ses.SolveSteady(nil, st, op); err != nil {
				t.Fatal(err)
			}
		}
	}
	simMax, err := sim.DieMax()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(simMax - steadyMax.MaxC); d > 3 {
		t.Fatalf("transient (%.1f) and steady (%.1f) diverged sharing a session", simMax, steadyMax.MaxC)
	}
}

// TestSessionSingleTransient: a second transient sim on one session would
// share (and corrupt) the first sim's buffers, so it must be refused.
func TestSessionSingleTransient(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ses := sys.NewSession()
	if _, err := ses.Transient(thermosyphon.DefaultOperating(), 30); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Transient(thermosyphon.DefaultOperating(), 50); err == nil {
		t.Fatal("second transient on one session must error")
	}
	// A fresh session is the documented way to run another sim.
	if _, err := sys.NewSession().Transient(thermosyphon.DefaultOperating(), 50); err != nil {
		t.Fatal(err)
	}
}

// TestSessionReseatWater: re-seating the warm start for a water-inlet
// change must (a) leave the converged answer where a cold solve puts it
// (within solver tolerances) and (b) not cost more coupling iterations
// than re-solving without the re-seat — it is the outer-fixed-point
// optimization the datacenter solver leans on.
func TestSessionReseatWater(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := fullLoadState(2.2)

	op := thermosyphon.DefaultOperating()
	ref := sys.NewSession()
	if _, err := ref.SolveSteady(nil, st, op); err != nil {
		t.Fatal(err)
	}
	op2 := op
	op2.WaterInC = op.WaterInC + 2
	refRes, err := ref.SolveSteady(nil, st, op2)
	if err != nil {
		t.Fatal(err)
	}
	refMax := maxT(refRes)

	ses := sys.NewSession()
	if _, err := ses.SolveSteady(nil, st, op); err != nil {
		t.Fatal(err)
	}
	ses.ReseatWater(op2.WaterInC - op.WaterInC)
	res, err := ses.SolveSteady(nil, st, op2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > refRes.Iterations {
		t.Fatalf("re-seated solve took %d iterations, plain warm re-solve %d",
			res.Iterations, refRes.Iterations)
	}
	if d := math.Abs(maxT(res) - refMax); d > 0.05 {
		t.Fatalf("re-seated answer drifted %.4f °C from the warm reference", d)
	}

	// A cold or non-carrying session must be unaffected by a re-seat.
	cold := sys.NewSession()
	cold.ReseatWater(5)
	coldRes, err := cold.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sys.SolveSteady(st, op)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Field.T {
		if fresh.Field.T[i] != coldRes.Field.T[i] {
			t.Fatalf("re-seat on a cold session changed the solve (cell %d)", i)
		}
	}
}

func maxT(r *Result) float64 {
	m := math.Inf(-1)
	for _, v := range r.Field.T {
		if v > m {
			m = v
		}
	}
	return m
}

// TestSessionCloseIdempotent: Close must be a no-op the second time, and
// must be safe in any interleaving with eviction — the thermservd lease
// manager's LRU-eviction path and drain path can both close the same
// cached session. A closed session must also stay usable (serially) and
// keep returning byte-identical results.
func TestSessionCloseIdempotent(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ses := sys.NewSession(CarryWarmStart(false), WithThreads(2))
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.2)
	before, err := ses.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatal(err)
	}
	maxBefore := maxT(before)
	for i := 0; i < 3; i++ {
		if err := ses.Close(); err != nil {
			t.Fatalf("Close #%d returned %v, want nil", i+1, err)
		}
	}
	after, err := ses.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatalf("solve after double Close: %v", err)
	}
	if got := maxT(after); got != maxBefore {
		t.Fatalf("solve after Close differs: %v vs %v", got, maxBefore)
	}
	// And concurrent double-close must be race-free (exercised under
	// -race): the two paths of the lease manager can collide.
	ses2 := sys.NewSession(WithThreads(2))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses2.Close()
		}()
	}
	wg.Wait()
}

// TestBlockTemps: per-block die temperatures must be deterministic, in
// floorplan order, and consistent with the die layer (every block mean
// within [min, max] of the layer; the hottest block max equal to the die
// hot spot over covered cells).
func TestBlockTemps(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SolveSteady(fullLoadState(2.5), thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	bt, err := sys.BlockTemps(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt) != len(sys.FP.Blocks) {
		t.Fatalf("got %d block temps for %d blocks", len(bt), len(sys.FP.Blocks))
	}
	var hottest float64
	for i, b := range bt {
		if b.Name != sys.FP.Blocks[i].Name {
			t.Fatalf("block %d is %q, want floorplan order %q", i, b.Name, sys.FP.Blocks[i].Name)
		}
		if b.MeanC <= 0 || b.MaxC < b.MeanC {
			t.Fatalf("block %s: implausible mean %.2f / max %.2f", b.Name, b.MeanC, b.MaxC)
		}
		if b.MaxC > hottest {
			hottest = b.MaxC
		}
	}
	die, err := sys.DieStats(res)
	if err != nil {
		t.Fatal(err)
	}
	if hottest > die.MaxC+1e-9 {
		t.Fatalf("hottest block %.3f exceeds die max %.3f", hottest, die.MaxC)
	}
	again, err := sys.BlockTemps(res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bt, again) {
		t.Fatal("BlockTemps is not deterministic")
	}
}
