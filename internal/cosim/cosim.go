// Package cosim couples the thermal RC-network model with the two-phase
// thermosyphon model: the evaporator's local heat-transfer coefficients
// depend on the heat-flux distribution, which depends on the temperature
// field, which depends on the coefficients. The coupling is resolved by a
// damped fixed-point iteration, mirroring the co-simulation the paper runs
// between 3D-ICE and the thermosyphon framework of [8].
package cosim

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// System bundles the CPU package, its power model, the thermal stack and a
// thermosyphon design into one simulated server blade.
type System struct {
	FP       *floorplan.Floorplan
	Power    *power.Model
	Thermal  *thermal.Model
	Design   thermosyphon.Design
	coverage *floorplan.CoverageMap
	dieRect  floorplan.Rect
	dieMask  []bool
}

// Config parameterizes system construction.
type Config struct {
	Design thermosyphon.Design
	Stack  thermal.XeonStackConfig
	Env    thermal.Environment
}

// DefaultConfig returns the paper's design point at the default resolution.
func DefaultConfig() Config {
	return Config{
		Design: thermosyphon.DefaultDesign(),
		Stack:  thermal.DefaultXeonStackConfig(),
		Env:    thermal.DefaultEnvironment(),
	}
}

// NewSystem assembles a simulated blade for the given configuration.
func NewSystem(cfg Config) (*System, error) {
	fp := floorplan.BroadwellEP()
	sys, err := NewCustomSystem(fp, cfg)
	if err != nil {
		return nil, err
	}
	pm, err := power.NewModel(fp)
	if err != nil {
		return nil, err
	}
	sys.Power = pm
	return sys, nil
}

// NewCustomSystem assembles a blade around an arbitrary die floorplan
// (e.g. a scaled 16-core variant from floorplan.Generic). The package
// geometry comes from cfg.Stack.Package and must enclose the die. The
// returned system has no Xeon power model: use SolveSteadyPower with
// explicit per-block powers.
func NewCustomSystem(fp *floorplan.Floorplan, cfg Config) (*System, error) {
	stack := thermal.NewXeonStack(cfg.Stack)
	tm, err := thermal.NewModel(stack, cfg.Env)
	if err != nil {
		return nil, err
	}
	if err := cfg.Design.Validate(); err != nil {
		return nil, err
	}
	die := cfg.Stack.Package.DieRectOnPackage()
	if die.W <= 0 || die.H <= 0 || die.X < 0 || die.Y < 0 ||
		die.X+die.W > cfg.Stack.Package.Width || die.Y+die.H > cfg.Stack.Package.Height {
		return nil, fmt.Errorf("cosim: die outline %+v does not fit the package", die)
	}
	// Rasterize die blocks onto the package grid: shift the grid origin so
	// cell rectangles are expressed in the die-local frame.
	rasterGrid := stack.Grid
	rasterGrid.OriginX = -cfg.Stack.Package.DieOffsetX
	rasterGrid.OriginY = -cfg.Stack.Package.DieOffsetY
	cov := floorplan.Rasterize(fp, rasterGrid)

	return &System{
		FP:       fp,
		Thermal:  tm,
		Design:   cfg.Design,
		coverage: cov,
		dieRect:  die,
		dieMask:  metrics.RectMask(stack.Grid, die),
	}, nil
}

// DieRect returns the die outline in package-grid coordinates.
func (s *System) DieRect() floorplan.Rect { return s.dieRect }

// DieMask returns the die-footprint cell mask on the package grid.
// The returned slice must not be modified.
func (s *System) DieMask() []bool { return s.dieMask }

// Result is a converged steady-state co-simulation.
type Result struct {
	Field       *thermal.Field
	Syphon      *thermosyphon.State
	BlockPower  map[string]float64
	TotalPowerW float64
	Iterations  int
	// BC is the converged top boundary used for the final solve.
	BC thermal.TopBoundary
}

// SolveSteady computes the coupled steady state for a CPU package state at
// the given cooling operating point. It requires the Xeon power model
// (systems built by NewSystem); custom systems use SolveSteadyPower. The
// wrapper is not cancellable; hot or long-running paths hold a Session and
// pass a context there.
func (s *System) SolveSteady(st power.PackageState, op thermosyphon.Operating) (*Result, error) {
	if s.Power == nil {
		return nil, fmt.Errorf("cosim: system has no power model; use SolveSteadyPower")
	}
	bp := s.Power.BlockPowers(st)
	return s.SolveSteadyPower(bp, op)
}

// SolveSteadyPower is SolveSteady for an explicit per-block power map
// (watts), as used by the design-space sweeps. It is a compatibility
// wrapper over a throwaway non-carrying Session: results are bit-identical
// to a cold solve, and the workspace is still reused across the fixed
// point's inner solves. Hot loops should hold a Session instead.
func (s *System) SolveSteadyPower(blockPower map[string]float64, op thermosyphon.Operating) (*Result, error) {
	res, err := s.NewSession(CarryWarmStart(false)).SolveSteadyPower(nil, blockPower, op)
	if err != nil {
		return nil, err
	}
	// Detach the result from the throwaway session: a session returns a
	// pointer into itself, which would otherwise keep the whole solver
	// workspace reachable for as long as the caller holds the result.
	cp := *res
	return &cp, nil
}

// PowerCells rasterizes a per-block power map onto the thermal grid's die
// layer — the injection vector transient simulations need.
func (s *System) PowerCells(blockPower map[string]float64) ([]float64, error) {
	return s.coverage.PowerMap(blockPower)
}

// DieStats returns the paper's die-map statistics for a result.
func (s *System) DieStats(r *Result) (metrics.MapStats, error) {
	temps, err := r.Field.LayerByName(thermal.LayerDie)
	if err != nil {
		return metrics.MapStats{}, err
	}
	return metrics.AnalyzeMasked(s.Thermal.Grid(), temps, s.dieMask)
}

// PackageStats returns statistics over the heat-spreader (package) map.
func (s *System) PackageStats(r *Result) (metrics.MapStats, error) {
	temps, err := r.Field.LayerByName(thermal.LayerSpreader)
	if err != nil {
		return metrics.MapStats{}, err
	}
	return metrics.Analyze(s.Thermal.Grid(), temps)
}

// BlockTemp is the temperature summary of one floorplan block on the die
// layer: the block-area-weighted mean and the hottest cell the block
// touches.
type BlockTemp struct {
	Name  string
	MeanC float64
	MaxC  float64
}

// BlockTemps summarizes the die-layer temperatures of a result per
// floorplan block, in floorplan order (deterministic — the order blocks
// were rasterized in, never map order). Cells are weighted by the area
// fraction of the block they carry, so a block straddling cell boundaries
// is averaged exactly the same way its power was spread.
func (s *System) BlockTemps(r *Result) ([]BlockTemp, error) {
	temps, err := r.Field.LayerByName(thermal.LayerDie)
	if err != nil {
		return nil, err
	}
	blocks := s.coverage.Blocks()
	out := make([]BlockTemp, 0, len(blocks))
	for _, name := range blocks {
		frac := s.coverage.BlockFraction(name)
		var wsum, tsum float64
		max := math.Inf(-1)
		for i, f := range frac {
			if f <= 0 {
				continue
			}
			wsum += f
			tsum += f * temps[i]
			if temps[i] > max {
				max = temps[i]
			}
		}
		bt := BlockTemp{Name: name}
		if wsum > 0 {
			bt.MeanC = tsum / wsum
			bt.MaxC = max
		}
		out = append(out, bt)
	}
	return out, nil
}

// TCase returns the case temperature: the heat-spreader temperature at the
// package center, the sensor location of the TCASE_MAX constraint (§VI-B).
func (s *System) TCase(r *Result) float64 {
	g := s.Thermal.Grid()
	l := s.Thermal.Stack.LayerIndex(thermal.LayerSpreader)
	return r.Field.SampleAt(l, g.DX*float64(g.NX)/2, g.DY*float64(g.NY)/2)
}

// DieTemps returns the die-layer temperature slice of a result.
func (s *System) DieTemps(r *Result) []float64 {
	t, err := r.Field.LayerByName(thermal.LayerDie)
	if err != nil {
		panic("cosim: die layer missing from canonical stack: " + err.Error())
	}
	return t
}
