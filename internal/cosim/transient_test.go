package cosim

import (
	"testing"

	"repro/internal/power"
	"repro/internal/thermosyphon"
)

func TestTransientWarmsTowardSteady(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := fullLoadState(2.2)
	op := thermosyphon.DefaultOperating()
	steady, err := sys.SolveSteady(st, op)
	if err != nil {
		t.Fatal(err)
	}
	steadyDie, _ := sys.DieStats(steady)

	sim, err := NewTransient(sys, op, 30)
	if err != nil {
		t.Fatal(err)
	}
	bp := sys.Power.BlockPowers(st)
	prev := 0.0
	for i := 0; i < 60; i++ {
		if err := sim.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
		cur, err := sim.DieMax()
		if err != nil {
			t.Fatal(err)
		}
		// The quasi-static boundary lags one step behind the field, so a
		// slight overshoot-and-settle is expected; forbid real regressions.
		if cur < prev-0.6 {
			t.Fatalf("warm-up regressed at step %d: %.2f < %.2f", i, cur, prev)
		}
		prev = cur
	}
	// After 15 simulated seconds the transient should be within a couple
	// of degrees of the steady solution.
	if diff := steadyDie.MaxC - prev; diff > 3 || diff < -3 {
		t.Fatalf("transient %.1f vs steady %.1f", prev, steadyDie.MaxC)
	}
	if sim.Time() < 14.9 || sim.Time() > 15.1 {
		t.Fatalf("time = %v", sim.Time())
	}
}

func TestTransientValveResponse(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	st := fullLoadState(2.5)
	bp := sys.Power.BlockPowers(st)
	sim, err := NewTransient(sys, thermosyphon.DefaultOperating(), 45)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sim.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := sim.DieMax()
	// Open the valve hard and keep running: the die must cool.
	if err := sim.SetOperating(thermosyphon.Operating{WaterInC: 30, WaterFlowKgH: 18}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sim.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := sim.DieMax()
	if after >= before {
		t.Fatalf("valve opening did not cool: %.2f → %.2f", before, after)
	}
}

func TestTransientValidation(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	if _, err := NewTransient(sys, thermosyphon.Operating{}, 30); err == nil {
		t.Fatal("invalid operating point must error")
	}
	sim, err := NewTransient(sys, thermosyphon.DefaultOperating(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(-1, nil); err == nil {
		t.Fatal("negative step must error")
	}
	if err := sim.Step(0.25, map[string]float64{"bogus": 1}); err == nil {
		t.Fatal("unknown block must error")
	}
	if err := sim.SetOperating(thermosyphon.Operating{}); err == nil {
		t.Fatal("invalid operating change must error")
	}
}

func TestTransientIdleStaysNearWater(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	sim, err := NewTransient(sys, thermosyphon.DefaultOperating(), 30)
	if err != nil {
		t.Fatal(err)
	}
	var st power.PackageState
	st.Freq = power.FMin
	st.UncoreFreq = power.UncoreFreqMin
	for i := range st.Cores {
		st.Cores[i] = power.CoreLoad{Idle: power.C6}
	}
	bp := sys.Power.BlockPowers(st)
	for i := 0; i < 40; i++ {
		if err := sim.Step(0.5, bp); err != nil {
			t.Fatal(err)
		}
	}
	max, _ := sim.DieMax()
	// A nearly idle package settles close to the water temperature.
	if max < 28 || max > 45 {
		t.Fatalf("idle die settled at %.1f °C", max)
	}
	if sim.Syphon() == nil || sim.Field() == nil {
		t.Fatal("accessors broken")
	}
	if sim.TCase() <= 0 {
		t.Fatal("TCase broken")
	}
}

func TestTransientLoopInertia(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	st := fullLoadState(2.2)
	bp := sys.Power.BlockPowers(st)

	// With loop inertia the early die temperature runs hotter than the
	// quasi-static loop (less circulation → worse HTC), converging later.
	fast, err := NewTransient(sys, thermosyphon.DefaultOperating(), 30)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewTransient(sys, thermosyphon.DefaultOperating(), 30)
	if err != nil {
		t.Fatal(err)
	}
	slow.LoopTau = 5
	for i := 0; i < 8; i++ {
		if err := fast.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
		if err := slow.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
	}
	// Early on the lagged loop must circulate clearly less than the
	// quasi-static one.
	if slow.Syphon().Loop.MassFlowKgS >= 0.8*fast.Syphon().Loop.MassFlowKgS {
		t.Fatalf("loop inertia missing: %.4g vs %.4g kg/s",
			slow.Syphon().Loop.MassFlowKgS, fast.Syphon().Loop.MassFlowKgS)
	}
	// After the loop spins up, the two converge.
	for i := 0; i < 80; i++ {
		if err := fast.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
		if err := slow.Step(0.25, bp); err != nil {
			t.Fatal(err)
		}
	}
	fd, _ := fast.DieMax()
	sd, _ := slow.DieMax()
	if d := sd - fd; d > 1 || d < -1 {
		t.Fatalf("inertial and quasi-static runs did not converge: %.2f vs %.2f", sd, fd)
	}
}

func TestEvaporateAtValidation(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	if _, err := sys.Design.EvaporateAt(sys.Thermal.Grid(), make([]float64, sys.Thermal.Cells()), thermosyphon.DefaultOperating(), 0); err == nil {
		t.Fatal("zero pinned flow must error")
	}
}
