package cosim

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// coarseConfig keeps unit tests fast: 2 mm cells instead of 0.5 mm.
func coarseConfig() Config {
	cfg := DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = 19, 15
	return cfg
}

func fullLoadState(dyn float64) power.PackageState {
	var st power.PackageState
	st.Freq = power.FMax
	st.UncoreFreq = 2.2
	st.LLC = 0.8
	for i := range st.Cores {
		st.Cores[i] = power.CoreLoad{Active: true, DynWatts: dyn}
	}
	return st
}

func TestNewSystem(t *testing.T) {
	s, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.FP == nil || s.Power == nil || s.Thermal == nil {
		t.Fatal("incomplete system")
	}
	var dieCells int
	for _, b := range s.DieMask() {
		if b {
			dieCells++
		}
	}
	if dieCells == 0 || dieCells == s.Thermal.Cells() {
		t.Fatalf("die mask covers %d of %d cells", dieCells, s.Thermal.Cells())
	}
}

func TestNewSystemRejectsBadDesign(t *testing.T) {
	cfg := coarseConfig()
	cfg.Design.FillingRatio = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("invalid design must be rejected")
	}
}

func TestSolveSteadyFullLoad(t *testing.T) {
	s, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveSteady(fullLoadState(2.2), thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	die, err := s.DieStats(res)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := s.PackageStats(res)
	if err != nil {
		t.Fatal(err)
	}
	// Paper-calibrated bands: die hotspot in the 50-90 °C range, package
	// in the 40-60 °C range, die hotter than package, die gradient larger
	// than package gradient (Fig. 2 motivation).
	if die.MaxC < 50 || die.MaxC > 95 {
		t.Fatalf("die max %.1f outside band", die.MaxC)
	}
	if pkg.MaxC < 38 || pkg.MaxC > 62 {
		t.Fatalf("package max %.1f outside band", pkg.MaxC)
	}
	if die.MaxC <= pkg.MaxC {
		t.Fatal("die must be hotter than package")
	}
	if die.MaxGradCPerMM <= pkg.MaxGradCPerMM {
		t.Fatalf("die gradient %.2f must exceed package gradient %.2f",
			die.MaxGradCPerMM, pkg.MaxGradCPerMM)
	}
	// Saturation temperature must sit between water inlet and the package.
	if res.Syphon.Condenser.TsatC <= 30 || res.Syphon.Condenser.TsatC >= pkg.MaxC {
		t.Fatalf("Tsat %.1f implausible", res.Syphon.Condenser.TsatC)
	}
	if res.Iterations < 2 {
		t.Fatal("coupling should need iteration")
	}
}

func TestEnergyBalance(t *testing.T) {
	s, _ := NewSystem(coarseConfig())
	res, err := s.SolveSteady(fullLoadState(2.0), thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	qTop := res.Field.TotalHeatToTop(res.BC)
	qBot := res.Field.TotalHeatToBottom()
	if math.Abs(qTop+qBot-res.TotalPowerW) > 0.02*res.TotalPowerW {
		t.Fatalf("energy imbalance: %.2f + %.2f vs %.2f", qTop, qBot, res.TotalPowerW)
	}
	// The thermosyphon must absorb the dominant share.
	if qTop < 0.8*res.TotalPowerW {
		t.Fatalf("thermosyphon absorbs only %.1f of %.1f W", qTop, res.TotalPowerW)
	}
}

func TestHotterWithMorePower(t *testing.T) {
	s, _ := NewSystem(coarseConfig())
	op := thermosyphon.DefaultOperating()
	lo, err := s.SolveSteady(fullLoadState(0.8), op)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := s.SolveSteady(fullLoadState(3.0), op)
	if err != nil {
		t.Fatal(err)
	}
	dLo, _ := s.DieStats(lo)
	dHi, _ := s.DieStats(hi)
	if dHi.MaxC <= dLo.MaxC {
		t.Fatalf("more power must be hotter: %.1f vs %.1f", dHi.MaxC, dLo.MaxC)
	}
}

func TestColderWaterCools(t *testing.T) {
	s, _ := NewSystem(coarseConfig())
	warm, err := s.SolveSteady(fullLoadState(2.2), thermosyphon.Operating{WaterInC: 30, WaterFlowKgH: 7})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.SolveSteady(fullLoadState(2.2), thermosyphon.Operating{WaterInC: 20, WaterFlowKgH: 7})
	if err != nil {
		t.Fatal(err)
	}
	dw, _ := s.DieStats(warm)
	dc, _ := s.DieStats(cold)
	if dc.MaxC >= dw.MaxC {
		t.Fatalf("colder water must cool the die: %.1f vs %.1f", dc.MaxC, dw.MaxC)
	}
	// Roughly degree-for-degree tracking.
	if drop := dw.MaxC - dc.MaxC; drop < 5 || drop > 14 {
		t.Fatalf("10 °C colder water moved the die by %.1f °C", drop)
	}
}

func TestMoreFlowCools(t *testing.T) {
	s, _ := NewSystem(coarseConfig())
	slow, err := s.SolveSteady(fullLoadState(2.2), thermosyphon.Operating{WaterInC: 30, WaterFlowKgH: 5})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.SolveSteady(fullLoadState(2.2), thermosyphon.Operating{WaterInC: 30, WaterFlowKgH: 12})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := s.DieStats(slow)
	df, _ := s.DieStats(fast)
	if df.MaxC >= ds.MaxC {
		t.Fatalf("more water flow must cool: %.1f vs %.1f", df.MaxC, ds.MaxC)
	}
}

func TestTCaseBetweenFluidAndDie(t *testing.T) {
	s, _ := NewSystem(coarseConfig())
	res, err := s.SolveSteady(fullLoadState(2.2), thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	die, _ := s.DieStats(res)
	tc := s.TCase(res)
	if tc >= die.MaxC || tc <= res.Syphon.Condenser.TsatC {
		t.Fatalf("TCase %.1f should sit between Tsat %.1f and die max %.1f",
			tc, res.Syphon.Condenser.TsatC, die.MaxC)
	}
}

func TestSolveSteadyPowerUnknownBlock(t *testing.T) {
	s, _ := NewSystem(coarseConfig())
	if _, err := s.SolveSteadyPower(map[string]float64{"bogus": 5}, thermosyphon.DefaultOperating()); err == nil {
		t.Fatal("unknown block must error")
	}
}

func TestDieRectMatchesStack(t *testing.T) {
	cfg := coarseConfig()
	s, _ := NewSystem(cfg)
	want := cfg.Stack.Package.DieRectOnPackage()
	if s.DieRect() != want {
		t.Fatalf("die rect %+v, want %+v", s.DieRect(), want)
	}
	_ = thermal.LayerDie
	_ = floorplan.NumCores
}
