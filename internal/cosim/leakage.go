package cosim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// LeakageResult extends Result with the leakage-coupling diagnostics.
type LeakageResult struct {
	Result
	// LeakageIterations counts the outer power↔temperature iterations.
	LeakageIterations int
	// LeakageExtraW is the additional static power versus the uncoupled
	// reference-temperature solution.
	LeakageExtraW float64
	// BlockTempC is the converged mean die temperature per block.
	BlockTempC map[string]float64
}

// SolveSteadyLeakage computes the coupled steady state with
// temperature-dependent leakage: the static share of each block's power is
// scaled by the block's own mean die temperature, iterated to a fixed
// point. It requires the Xeon power model. Compatibility wrapper over a
// throwaway non-carrying Session — see Session.SolveSteadyLeakage.
func (s *System) SolveSteadyLeakage(st power.PackageState, op thermosyphon.Operating, leak power.LeakageModel) (*LeakageResult, error) {
	return s.NewSession(CarryWarmStart(false)).SolveSteadyLeakage(nil, st, op, leak)
}

// SolveSteadyLeakage is the session form of System.SolveSteadyLeakage: the
// inner power↔temperature iterations reuse the session workspace, and with
// the warm-start carry each re-solve starts from the previous converged
// field, so the leakage fixed point costs little more than one solve.
// Cancellation propagates through the inner SolveSteadyPower calls; a nil
// ctx means "not cancellable".
func (ses *Session) SolveSteadyLeakage(ctx context.Context, st power.PackageState, op thermosyphon.Operating, leak power.LeakageModel) (*LeakageResult, error) {
	s := ses.sys
	if s.Power == nil {
		return nil, fmt.Errorf("cosim: system has no power model")
	}
	if err := leak.Validate(); err != nil {
		return nil, err
	}
	static, dynamic := s.Power.SplitBlockPowers(st)
	// Iterate blocks in sorted order wherever floats accumulate: map order
	// is random and float addition is not associative, so a fixed order is
	// what keeps repeated solves bit-identical.
	names := make([]string, 0, len(static))
	for name := range static {
		names = append(names, name)
	}
	sort.Strings(names)
	var baseStatic float64
	for _, name := range names {
		baseStatic += static[name]
	}

	// Start from the reference-temperature power map.
	bp := make(map[string]float64, len(static))
	for _, name := range names {
		bp[name] = static[name] + dynamic[name]
	}

	var (
		out  LeakageResult
		prev = math.Inf(1)
	)
	const maxIter = 25
	for it := 0; it < maxIter; it++ {
		res, err := ses.SolveSteadyPower(ctx, bp, op)
		if err != nil {
			return nil, err
		}
		temps, err := res.Field.LayerByName(thermal.LayerDie)
		if err != nil {
			return nil, ses.fail(err)
		}
		blockT := make(map[string]float64, len(static))
		var maxDelta, scaledStatic float64
		for _, name := range names {
			frac := s.coverage.BlockFraction(name)
			var t float64
			for c, f := range frac {
				if f != 0 {
					t += f * temps[c]
				}
			}
			blockT[name] = t
			newP := static[name]*leak.Scale(t) + dynamic[name]
			if d := math.Abs(newP - bp[name]); d > maxDelta {
				maxDelta = d
			}
			bp[name] = newP
			scaledStatic += static[name] * leak.Scale(t)
		}
		out.Result = *res
		out.LeakageIterations = it + 1
		out.LeakageExtraW = scaledStatic - baseStatic
		out.BlockTempC = blockT
		if maxDelta < 0.01 {
			return &out, nil
		}
		if maxDelta > prev*1.5 && it > 3 {
			// The carried field belongs to a diverging operating point;
			// invalidate it so a retry (e.g. after throttling) starts cold.
			return nil, ses.fail(fmt.Errorf("cosim: leakage coupling diverging (Δ %.2f W after %d iterations) — thermal runaway", maxDelta, it+1))
		}
		prev = maxDelta
	}
	return &out, nil
}
