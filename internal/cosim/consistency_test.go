package cosim

import (
	"math"
	"testing"

	"repro/internal/thermosyphon"
)

// TestResolutionConsistency: the coupled solution must be stable under
// grid refinement — coarse and medium die hot spots within a small band.
func TestResolutionConsistency(t *testing.T) {
	st := fullLoadState(2.2)
	op := thermosyphon.DefaultOperating()
	solve := func(nx, ny int) float64 {
		cfg := DefaultConfig()
		cfg.Stack.NX, cfg.Stack.NY = nx, ny
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.SolveSteady(st, op)
		if err != nil {
			t.Fatal(err)
		}
		die, err := sys.DieStats(res)
		if err != nil {
			t.Fatal(err)
		}
		return die.MaxC
	}
	coarse := solve(19, 15)
	medium := solve(38, 30)
	if d := math.Abs(coarse - medium); d > 3 {
		t.Fatalf("die max moved %.2f °C between resolutions (%.1f vs %.1f)", d, coarse, medium)
	}
}

// TestDeterminism: two identical solves produce identical results — no
// hidden randomness anywhere in the pipeline.
func TestDeterminism(t *testing.T) {
	st := fullLoadState(2.0)
	op := thermosyphon.DefaultOperating()
	run := func() (float64, float64, int) {
		sys, err := NewSystem(coarseConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.SolveSteady(st, op)
		if err != nil {
			t.Fatal(err)
		}
		die, _ := sys.DieStats(res)
		return die.MaxC, res.Syphon.Condenser.TsatC, res.Iterations
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	// Block powers are accumulated from Go maps, so summation order (and
	// hence the last few ulps) varies run to run; anything beyond ulp
	// noise would indicate real nondeterminism.
	if math.Abs(a1-a2) > 1e-9 || math.Abs(b1-b2) > 1e-9 || c1 != c2 {
		t.Fatalf("non-deterministic: (%v,%v,%d) vs (%v,%v,%d)", a1, b1, c1, a2, b2, c2)
	}
}

// TestIdlePackageNearWater: a fully parked package approaches the water
// temperature from above.
func TestIdlePackageNearWater(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	var st = fullLoadState(0)
	for i := range st.Cores {
		st.Cores[i].Active = false
		st.Cores[i].Idle = 4 // C6
	}
	st.LLC = 0
	st.UncoreFreq = 1.2
	res, err := sys.SolveSteady(st, thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	die, _ := sys.DieStats(res)
	if die.MaxC < 30 || die.MaxC > 42 {
		t.Fatalf("idle die %.1f °C should hover just above the 30 °C water", die.MaxC)
	}
}
