package cosim

// Coupled-solve benchmarks comparing the fresh per-call path against a
// reusable session:
//
//	go test ./internal/cosim -bench=Session -benchmem
//
// "fresh" is the pre-session behavior (workspace rebuilt per solve);
// "session-cold" reuses buffers but seeds every solve like a cold one
// (the pooled-sweep configuration); "session-warm" additionally carries
// the previous converged field and flux — the governor/bisection steady
// state, where the coupled fixed point collapses to a refinement pass.

import (
	"testing"

	"repro/internal/thermosyphon"
)

func benchSystem(b *testing.B) (*System, map[string]float64, thermosyphon.Operating) {
	b.Helper()
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		b.Fatal(err)
	}
	return sys, sys.Power.BlockPowers(fullLoadState(2.2)), thermosyphon.DefaultOperating()
}

func BenchmarkCosimSession(b *testing.B) {
	b.Run("fresh", func(b *testing.B) {
		sys, bp, op := benchSystem(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.SolveSteadyPower(bp, op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-cold", func(b *testing.B) {
		sys, bp, op := benchSystem(b)
		ses := sys.NewSession(CarryWarmStart(false))
		if _, err := ses.SolveSteadyPower(nil, bp, op); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ses.SolveSteadyPower(nil, bp, op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-warm", func(b *testing.B) {
		sys, bp, op := benchSystem(b)
		ses := sys.NewSession()
		if _, err := ses.SolveSteadyPower(nil, bp, op); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ses.SolveSteadyPower(nil, bp, op); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCosimSessionTransient compares a transient step before and
// after warm-up (the first step sizes the buffers; the rest are free of
// heap traffic).
func BenchmarkCosimSessionTransient(b *testing.B) {
	sys, bp, op := benchSystem(b)
	sim, err := NewTransient(sys, op, 30)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Step(0.25, bp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(0.25, bp); err != nil {
			b.Fatal(err)
		}
	}
}
