package cosim

import (
	"testing"

	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// parSystem builds a grid big enough to cross the parallel-dispatch
// threshold (40×36×5 = 7200 unknowns) without full-resolution test cost.
func parSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = 40, 36
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSessionThreadsByteIdentical is the coupled-solve form of the
// determinism contract: a session solving with a worker team must
// reproduce the serial session's converged field, thermosyphon state and
// iteration count exactly, on both the CG and MG-PCG paths.
func TestSessionThreadsByteIdentical(t *testing.T) {
	sys := parSystem(t)
	bp := map[string]float64{"Core1": 12, "Core2": 9, "Core5": 11, "LLC": 4, "MemCtrl": 6.3, "Uncore": 7.7}
	op := thermosyphon.DefaultOperating()
	for _, opts := range [][]SessionOption{
		{CarryWarmStart(false)},
		{CarryWarmStart(false), WithSolver(thermal.SolverMGPCG)},
	} {
		ref := sys.NewSession(opts...)
		want, err := ref.SolveSteadyPower(nil, bp, op)
		if err != nil {
			t.Fatal(err)
		}
		wantT := append([]float64(nil), want.Field.T...)
		wantIters := want.Iterations

		for _, threads := range []int{2, 4} {
			ses := sys.NewSession(append([]SessionOption{WithThreads(threads)}, opts...)...)
			got, err := ses.SolveSteadyPower(nil, bp, op)
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != wantIters {
				t.Fatalf("threads=%d: %d coupling iterations, serial %d", threads, got.Iterations, wantIters)
			}
			for i := range wantT {
				if got.Field.T[i] != wantT[i] {
					t.Fatalf("threads=%d: field differs at cell %d: %x vs %x", threads, i, got.Field.T[i], wantT[i])
				}
			}
			if got.Syphon.Loop.MassFlowKgS != want.Syphon.Loop.MassFlowKgS {
				t.Fatalf("threads=%d: thermosyphon state differs", threads)
			}
			if err := ses.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Closed sessions still solve (serially) with identical bytes.
			again, err := ses.SolveSteadyPower(nil, bp, op)
			if err != nil {
				t.Fatal(err)
			}
			if again.Field.T[0] != wantT[0] {
				t.Fatal("post-Close solve diverged")
			}
		}
	}
}

// TestTransientThreadsByteIdentical steps a threaded transient sim
// against a serial twin: the per-step fields must match bit for bit (the
// slice-based layer-power path and the parallel kernels together).
func TestTransientThreadsByteIdentical(t *testing.T) {
	sys := parSystem(t)
	bp := map[string]float64{"Core1": 14, "Core4": 10, "LLC": 4, "MemCtrl": 6.3, "Uncore": 7.7}
	op := thermosyphon.DefaultOperating()

	serial, err := NewTransient(sys, op, 45)
	if err != nil {
		t.Fatal(err)
	}
	threaded, err := sys.NewSession(WithThreads(4)).Transient(op, 45)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		if err := serial.Step(0.5, bp); err != nil {
			t.Fatal(err)
		}
		if err := threaded.Step(0.5, bp); err != nil {
			t.Fatal(err)
		}
		for i := range serial.Field().T {
			if serial.Field().T[i] != threaded.Field().T[i] {
				t.Fatalf("step %d: field differs at cell %d", step, i)
			}
		}
	}
}
