package cosim

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// TestTransientExportImportExact pins the checkpoint/restore contract:
// stepping N, exporting, importing into a sim on a fresh system, and
// stepping M more is bit-identical to stepping N+M uninterrupted — for
// both the CG and the MG-PCG solvers and across thread counts. The state
// round-trips through JSON on the way, so the test also proves the
// serialized form loses no bits.
func TestTransientExportImportExact(t *testing.T) {
	op := thermosyphon.DefaultOperating()
	const dt, stepsN, stepsM = 0.25, 5, 6
	for _, solver := range []thermal.Solver{thermal.SolverCG, thermal.SolverMGPCG} {
		for _, threads := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s-t%d", solver, threads), func(t *testing.T) {
				newSim := func() (*System, *TransientSim) {
					sys, err := NewSystem(coarseConfig())
					if err != nil {
						t.Fatal(err)
					}
					ses := sys.NewSession(WithSolver(solver), WithThreads(threads))
					t.Cleanup(func() { ses.Close() })
					sim, err := ses.Transient(op, 30)
					if err != nil {
						t.Fatal(err)
					}
					return sys, sim
				}
				sysRef, ref := newSim()
				bp := sysRef.Power.BlockPowers(fullLoadState(2.2))
				for i := 0; i < stepsN+stepsM; i++ {
					if err := ref.Step(dt, bp); err != nil {
						t.Fatal(err)
					}
				}

				sysA, simA := newSim()
				bpA := sysA.Power.BlockPowers(fullLoadState(2.2))
				for i := 0; i < stepsN; i++ {
					if err := simA.Step(dt, bpA); err != nil {
						t.Fatal(err)
					}
				}
				// Serialize the exported state and restore from the parsed
				// bytes, exactly like the thermservd checkpoint file does.
				raw, err := json.Marshal(simA.ExportState())
				if err != nil {
					t.Fatal(err)
				}
				var st TransientState
				if err := json.Unmarshal(raw, &st); err != nil {
					t.Fatal(err)
				}

				sysB, simB := newSim()
				if err := simB.ImportState(&st); err != nil {
					t.Fatal(err)
				}
				if simB.Time() != simA.Time() {
					t.Fatalf("restored time %v, want %v", simB.Time(), simA.Time())
				}
				bpB := sysB.Power.BlockPowers(fullLoadState(2.2))
				for i := 0; i < stepsM; i++ {
					if err := simB.Step(dt, bpB); err != nil {
						t.Fatal(err)
					}
				}

				want, got := ref.Field().T, simB.Field().T
				if len(want) != len(got) {
					t.Fatalf("field sizes differ: %d vs %d", len(want), len(got))
				}
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("cell %d differs after restore: %v vs uninterrupted %v",
							i, got[i], want[i])
					}
				}
				if ref.Time() != simB.Time() {
					t.Fatalf("time diverged: %v vs %v", simB.Time(), ref.Time())
				}
			})
		}
	}
}

// TestTransientImportValidation exercises the ImportState guard rails: a
// state from a different grid, a poisoned field, and a negative time are
// all refused without touching the sim.
func TestTransientImportValidation(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewTransient(sys, thermosyphon.DefaultOperating(), 30)
	if err != nil {
		t.Fatal(err)
	}
	good := sim.ExportState()

	bad := *good
	bad.FieldT = bad.FieldT[:len(bad.FieldT)-1]
	if err := sim.ImportState(&bad); err == nil {
		t.Fatal("short field accepted")
	}
	bad = *good
	bad.BCH = append([]float64(nil), bad.BCH[:1]...)
	if err := sim.ImportState(&bad); err == nil {
		t.Fatal("short boundary accepted")
	}
	bad = *good
	bad.FieldT = append([]float64(nil), good.FieldT...)
	bad.FieldT[3] = math.NaN()
	if err := sim.ImportState(&bad); err == nil {
		t.Fatal("NaN field accepted")
	}
	bad = *good
	bad.TimeS = -1
	if err := sim.ImportState(&bad); err == nil {
		t.Fatal("negative time accepted")
	}
	if err := sim.ImportState(good); err != nil {
		t.Fatalf("valid state refused: %v", err)
	}
}
