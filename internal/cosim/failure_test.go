package cosim

import (
	"errors"
	"testing"

	"repro/internal/linalg"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// TestSessionErrorInvalidatesWarmStart: any failed solve must drop the
// warm-start carry — the carried field may be half-converged or
// NaN-contaminated — so the next solve starts cold and lands byte-identical
// to the fresh System path.
func TestSessionErrorInvalidatesWarmStart(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.2)

	ses := sys.NewSession(WithSolver(thermal.SolverMGPCG))
	if _, err := ses.SolveSteady(nil, st, op); err != nil {
		t.Fatal(err)
	}
	if !ses.warm {
		t.Fatal("session not warm after a successful solve")
	}

	// Force a numerical failure: NaN-poison the MG preconditioner with the
	// escalation ladder disabled, so the solve error surfaces.
	ses.ws.SetEscalation(false)
	ses.ws.InjectMGFault(true)
	_, err = ses.SolveSteady(nil, st, op)
	if err == nil {
		t.Fatal("poisoned solve succeeded")
	}
	if !errors.Is(err, linalg.ErrNotConverged) {
		t.Fatalf("poisoned solve error %v does not unwrap to ErrNotConverged", err)
	}
	if ses.warm {
		t.Fatal("failed solve left the warm-start carry armed")
	}

	// Heal the solver: the next solve must seed cold and match a cold
	// same-solver reference byte for byte.
	ses.ws.SetEscalation(true)
	ses.ws.InjectMGFault(false)
	got, err := ses.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatal(err)
	}
	ref := sys.NewSession(WithSolver(thermal.SolverMGPCG), CarryWarmStart(false))
	fresh, err := ref.SolveSteady(nil, st, op)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != fresh.Iterations {
		t.Fatalf("post-failure solve took %d coupling iterations, fresh cold solve %d",
			got.Iterations, fresh.Iterations)
	}
	for i := range fresh.Field.T {
		if got.Field.T[i] != fresh.Field.T[i] {
			t.Fatalf("post-failure solve differs from fresh cold solve at cell %d: %v vs %v",
				i, got.Field.T[i], fresh.Field.T[i])
		}
	}
}

// TestSessionEscalationsSurfaced: a session whose solves escalate must
// report the descents through the accessor, and the rescued solve must
// still converge and re-arm the warm start.
func TestSessionEscalationsSurfaced(t *testing.T) {
	sys, err := NewSystem(coarseConfig())
	if err != nil {
		t.Fatal(err)
	}
	op := thermosyphon.DefaultOperating()
	st := fullLoadState(2.2)

	ses := sys.NewSession(WithSolver(thermal.SolverMGPCG32))
	ses.ws.InjectMGFault(true)
	if _, err := ses.SolveSteady(nil, st, op); err != nil {
		t.Fatalf("ladder did not rescue the poisoned session solve: %v", err)
	}
	if !ses.warm {
		t.Fatal("rescued solve did not re-arm the warm start")
	}
	esc := ses.Escalations()
	if len(esc) == 0 {
		t.Fatal("session escalations not surfaced")
	}
	if ses.SolverStats().Escalations != len(esc) {
		t.Fatalf("SolverStats().Escalations = %d but Escalations() lists %d",
			ses.SolverStats().Escalations, len(esc))
	}
}
