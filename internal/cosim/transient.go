package cosim

import (
	"fmt"
	"math"

	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// TransientSim advances a blade through time with the thermosyphon
// boundary re-coupled every step: the evaporator state is quasi-static
// with respect to the chip's thermal time constants (the refrigerant loop
// settles in well under the RC network's seconds-scale transients).
//
// The simulation is workspace-backed: the temperature field, the operator
// diagonal, the RHS, the CG scratch, the boundary, and the thermosyphon
// state all live in per-simulation buffers, so a step performs no heap
// allocations after the first. Field() and Syphon() alias those buffers
// and are overwritten by the next Step.
type TransientSim struct {
	sys    *System
	ws     *thermal.Workspace
	op     thermosyphon.Operating
	field  *thermal.Field
	bc     thermal.TopBoundary
	syph   *thermosyphon.State
	target *thermosyphon.State // loop-inertia scratch
	time   float64

	pCells     []float64
	qBuf       []float64
	layerPower [][]float64 // dense die-layer injection table (index 0)

	// LoopTau is the natural-circulation startup time constant (s): the
	// actual mass flow relaxes toward the quasi-static balance with this
	// first-order lag. Zero disables loop inertia.
	LoopTau float64
	mdot    float64 // current (lagged) mass flow
}

// NewTransient starts a transient simulation from a uniform initial
// temperature at the given cooling operating point.
func NewTransient(sys *System, op thermosyphon.Operating, initialC float64) (*TransientSim, error) {
	return sys.NewSession().Transient(op, initialC)
}

// Transient starts a transient simulation on the session's workspace: the
// sim uses the workspace's second field buffer, so steady solves and a
// transient run can share one session without clobbering each other. A
// session hosts at most one transient sim — its field, boundary, and
// scratch buffers live in the shared workspace, so a second sim would
// silently corrupt the first; start it on its own session instead.
func (ses *Session) Transient(op thermosyphon.Operating, initialC float64) (*TransientSim, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if ses.transient {
		return nil, fmt.Errorf("cosim: session already hosts a transient simulation; use a new session")
	}
	sys := ses.sys
	ts := &TransientSim{
		sys:        sys,
		ws:         ses.ws,
		op:         op,
		field:      ses.ws.FieldB(),
		layerPower: make([][]float64, 1),
	}
	ts.field.T.Fill(initialC)
	// Bootstrap the boundary with a near-idle thermosyphon state.
	syph, err := sys.Design.Evaporate(sys.Thermal.Grid(), make([]float64, sys.Thermal.Cells()), op)
	if err != nil {
		return nil, err
	}
	ts.syph = syph
	ts.bc = ses.ws.Boundary()
	copy(ts.bc.H, syph.H)
	copy(ts.bc.TFluid, syph.TFluid)
	ses.transient = true
	return ts, nil
}

// Time returns the elapsed simulated seconds.
func (ts *TransientSim) Time() float64 { return ts.time }

// Field returns the current temperature field. The field is updated in
// place by Step; Clone it to keep a snapshot.
func (ts *TransientSim) Field() *thermal.Field { return ts.field }

// Syphon returns the thermosyphon state of the last step, valid until the
// next Step.
func (ts *TransientSim) Syphon() *thermosyphon.State { return ts.syph }

// SetOperating changes the cooling operating point (e.g. the controller
// opened the valve); it takes effect on the next step.
func (ts *TransientSim) SetOperating(op thermosyphon.Operating) error {
	if err := op.Validate(); err != nil {
		return err
	}
	ts.op = op
	return nil
}

// Operating returns the current cooling operating point.
func (ts *TransientSim) Operating() thermosyphon.Operating { return ts.op }

// Step advances the simulation by dt seconds under the given per-block
// power map: the thermosyphon is re-solved against the current top heat
// flux, then the RC network takes one backward-Euler step.
func (ts *TransientSim) Step(dt float64, blockPower map[string]float64) error {
	if dt <= 0 {
		return fmt.Errorf("cosim: non-positive step %g", dt)
	}
	pCells, err := ts.sys.coverage.PowerMapInto(ts.pCells, blockPower)
	if err != nil {
		return err
	}
	ts.pCells = pCells
	// Quasi-static thermosyphon update from the flux the current field
	// pushes through the top boundary (floor at the injected power so a
	// cold start still circulates).
	ts.qBuf = ts.field.TopHeatPerCellInto(ts.qBuf, ts.bc)
	q := ts.qBuf
	var qTot float64
	for _, w := range q {
		qTot += w
	}
	if qTot < 1 {
		q = pCells
	}
	var syph *thermosyphon.State
	var err2 error
	if ts.LoopTau > 0 {
		// Loop inertia: find the quasi-static flow target, relax the
		// actual flow toward it, and evaluate the evaporator there.
		target, err := ts.sys.Design.EvaporateInto(ts.target, ts.sys.Thermal.Grid(), q, ts.op)
		if err != nil {
			return err
		}
		ts.target = target
		if ts.mdot <= 0 {
			ts.mdot = 0.1 * target.Loop.MassFlowKgS // cold start: barely moving
		}
		alpha := dt / (ts.LoopTau + dt)
		ts.mdot += alpha * (target.Loop.MassFlowKgS - ts.mdot)
		syph, err2 = ts.sys.Design.EvaporateAtInto(ts.syph, ts.sys.Thermal.Grid(), q, ts.op, ts.mdot)
	} else {
		syph, err2 = ts.sys.Design.EvaporateInto(ts.syph, ts.sys.Thermal.Grid(), q, ts.op)
	}
	if err2 != nil {
		return err2
	}
	ts.syph = syph
	// Damp the boundary update: the raw quasi-static coupling produces a
	// small limit cycle near steady state (flux → quality → HTC → flux);
	// blending successive boundaries removes it without changing the
	// converged point.
	for i := range ts.syph.H {
		ts.bc.H[i] = 0.5*ts.bc.H[i] + 0.5*ts.syph.H[i]
		ts.bc.TFluid[i] = 0.5*ts.bc.TFluid[i] + 0.5*ts.syph.TFluid[i]
	}
	// The die-layer injection rides in a persistent dense table: no
	// per-step map allocation or lookup on the step hot path.
	ts.layerPower[0] = pCells
	if err := ts.ws.StepTransientLayersInto(ts.field, ts.field, dt, ts.layerPower, ts.bc); err != nil {
		return err
	}
	ts.time += dt
	return nil
}

// TransientState is the complete dynamic state of a TransientSim: the
// temperature field, the damped thermosyphon boundary, the simulated
// time, and the loop-inertia lag. It is everything Step reads that
// persists across steps — the thermosyphon state, the flux buffer and
// the rasterized power map are recomputed from scratch inside every
// Step, so they are not part of the state. A sim restored from an
// exported state therefore continues exactly where the exporter stopped:
// restore-then-step is bit-identical to an uninterrupted run on the same
// system, solver, and thread count (the checkpoint/restore contract the
// thermservd crash-recovery path leans on, asserted by
// TestTransientExportImportExact).
//
// All fields are exported and JSON-tagged so the state serializes with
// encoding/json; float64 values round-trip exactly (Go marshals the
// shortest representation that parses back to the same bits).
type TransientState struct {
	// TimeS is the elapsed simulated time (s).
	TimeS float64 `json:"time_s"`
	// FieldT is the full temperature field (°C), layer-major.
	FieldT []float64 `json:"field_t"`
	// BCH / BCTFluid are the damped top-boundary HTC (W/m²·K) and fluid
	// temperature (°C) per cell — the blended boundary Step carries.
	BCH      []float64 `json:"bc_h"`
	BCTFluid []float64 `json:"bc_t_fluid"`
	// LoopTau / MdotKgS capture the loop-inertia model: the time
	// constant and the current lagged refrigerant mass flow.
	LoopTau float64 `json:"loop_tau,omitempty"`
	MdotKgS float64 `json:"mdot_kgs,omitempty"`
}

// ExportState deep-copies the sim's dynamic state for serialization. The
// sim remains usable; the returned state does not alias its buffers.
func (ts *TransientSim) ExportState() *TransientState {
	st := &TransientState{
		TimeS:   ts.time,
		LoopTau: ts.LoopTau,
		MdotKgS: ts.mdot,
	}
	st.FieldT = append([]float64(nil), ts.field.T...)
	st.BCH = append([]float64(nil), ts.bc.H...)
	st.BCTFluid = append([]float64(nil), ts.bc.TFluid...)
	return st
}

// ImportState overwrites the sim's dynamic state with an exported one.
// The sim must have been created on a system with the same grid and
// layer stack (the slice lengths are validated); the operating point and
// solver configuration come from the sim's own construction, not the
// state — they are configuration, not dynamics. After a successful
// import the next Step continues bit-identically to a sim that never
// stopped.
func (ts *TransientSim) ImportState(st *TransientState) error {
	if len(st.FieldT) != len(ts.field.T) {
		return fmt.Errorf("cosim: state field has %d cells, sim expects %d (grid or stack mismatch)",
			len(st.FieldT), len(ts.field.T))
	}
	if len(st.BCH) != len(ts.bc.H) || len(st.BCTFluid) != len(ts.bc.TFluid) {
		return fmt.Errorf("cosim: state boundary has %d/%d cells, sim expects %d",
			len(st.BCH), len(st.BCTFluid), len(ts.bc.H))
	}
	for i, v := range st.FieldT {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cosim: state field cell %d is %g", i, v)
		}
	}
	if st.TimeS < 0 {
		return fmt.Errorf("cosim: negative state time %g s", st.TimeS)
	}
	copy(ts.field.T, st.FieldT)
	copy(ts.bc.H, st.BCH)
	copy(ts.bc.TFluid, st.BCTFluid)
	ts.time = st.TimeS
	ts.LoopTau = st.LoopTau
	ts.mdot = st.MdotKgS
	return nil
}

// DieMax returns the current die hot-spot temperature.
func (ts *TransientSim) DieMax() (float64, error) {
	temps, err := ts.field.LayerByName(thermal.LayerDie)
	if err != nil {
		return 0, err
	}
	max := temps[0]
	for _, t := range temps {
		if t > max {
			max = t
		}
	}
	return max, nil
}

// TCase returns the current case temperature (spreader center).
func (ts *TransientSim) TCase() float64 {
	g := ts.sys.Thermal.Grid()
	l := ts.sys.Thermal.Stack.LayerIndex(thermal.LayerSpreader)
	return ts.field.SampleAt(l, g.DX*float64(g.NX)/2, g.DY*float64(g.NY)/2)
}
