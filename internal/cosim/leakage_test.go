package cosim

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/thermosyphon"
)

func TestLeakageModelScale(t *testing.T) {
	l := power.DefaultLeakage()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := l.Scale(l.RefC); math.Abs(s-1) > 1e-12 {
		t.Fatalf("scale at reference = %v", s)
	}
	if l.Scale(l.RefC+55) < 1.9 || l.Scale(l.RefC+55) > 2.1 {
		t.Fatalf("leakage should double per 55 °C, got %v", l.Scale(l.RefC+55))
	}
	if l.Scale(500) != 4 {
		t.Fatal("hot clamp missing")
	}
	if l.Scale(-500) != 0.25 {
		t.Fatal("cold clamp missing")
	}
	bad := power.LeakageModel{BetaPerC: 1, RefC: 60}
	if err := bad.Validate(); err == nil {
		t.Fatal("absurd beta must fail validation")
	}
}

func TestSplitBlockPowersConsistent(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	st := fullLoadState(2.2)
	static, dynamic := sys.Power.SplitBlockPowers(st)
	full := sys.Power.BlockPowers(st)
	for name, p := range full {
		if got := static[name] + dynamic[name]; math.Abs(got-p) > 1e-9 {
			t.Fatalf("%s: split %.3f+%.3f ≠ %.3f", name, static[name], dynamic[name], p)
		}
		if static[name] < 0 || dynamic[name] < -1e-12 {
			t.Fatalf("%s: negative split (%.3f, %.3f)", name, static[name], dynamic[name])
		}
	}
}

func TestLeakageCouplingRaisesPowerAndTemps(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	st := fullLoadState(2.2)
	op := thermosyphon.DefaultOperating()
	base, err := sys.SolveSteady(st, op)
	if err != nil {
		t.Fatal(err)
	}
	baseDie, _ := sys.DieStats(base)

	leak := power.DefaultLeakage()
	leak.RefC = 40 // the blade runs above 40 °C → leakage adds power
	res, err := sys.SolveSteadyLeakage(st, op, leak)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeakageExtraW <= 0 {
		t.Fatalf("expected extra leakage power, got %.2f W", res.LeakageExtraW)
	}
	die, _ := sys.DieStats(&res.Result)
	if die.MaxC <= baseDie.MaxC {
		t.Fatalf("leakage-coupled die %.2f should exceed uncoupled %.2f", die.MaxC, baseDie.MaxC)
	}
	if res.LeakageIterations < 2 {
		t.Fatal("coupling should iterate")
	}
	if len(res.BlockTempC) == 0 {
		t.Fatal("missing block temperatures")
	}
	// Cores must be hotter than the LLC in the block-temp view.
	if res.BlockTempC["Core2"] <= res.BlockTempC["LLC"] {
		t.Fatal("active core should be hotter than LLC")
	}
}

func TestLeakageCoupledColdReferenceIsNeutral(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	st := fullLoadState(1.5)
	leak := power.LeakageModel{BetaPerC: 0, RefC: 60} // no sensitivity
	res, err := sys.SolveSteadyLeakage(st, thermosyphon.DefaultOperating(), leak)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LeakageExtraW) > 1e-9 {
		t.Fatalf("zero-beta leakage added %.3f W", res.LeakageExtraW)
	}
}

func TestLeakageValidation(t *testing.T) {
	sys, _ := NewSystem(coarseConfig())
	bad := power.LeakageModel{BetaPerC: 0.5, RefC: 60}
	if _, err := sys.SolveSteadyLeakage(fullLoadState(2), thermosyphon.DefaultOperating(), bad); err == nil {
		t.Fatal("invalid model must error")
	}
}
