package cosim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// Session is a reusable solve context bound to one System: it owns a
// thermal.Workspace plus every scratch buffer the coupled fixed point
// needs (flux vectors, the rasterized power map, the thermosyphon state),
// so repeated solves allocate nothing after warm-up. On top of buffer
// reuse it carries the previous converged temperature field and heat-flux
// boundary as the warm start for the next solve: nearby sweep points and
// consecutive governor/bisection steps are near-identical systems, so the
// outer coupling loop and the CG iterations inside it collapse to a few
// cheap refinement passes.
//
// Warm starting changes iteration counts, not the converged answer beyond
// the solver tolerances; when a caller needs solves that are bit-identical
// to the fresh System.SolveSteady* path (the byte-determinism contract of
// the sweep studies), disable the carry with CarryWarmStart(false) — the
// session then still reuses all buffers but seeds every solve exactly like
// a cold one.
//
// Results returned by a session alias session-owned buffers (Field,
// Syphon, BC): they are valid until the next solve on the same session.
// A session is NOT safe for concurrent use; give each goroutine its own.
type Session struct {
	sys       *System
	ws        *thermal.Workspace
	carry     bool
	warm      bool
	transient bool // a TransientSim owns the workspace's B-side buffers

	// design, when non-nil, replaces the system's thermosyphon design for
	// this session's solves (WithDesign) — how faulted blades share one
	// System with healthy ones.
	design *thermosyphon.Design

	res        Result
	syph       *thermosyphon.State
	pCells     []float64
	q, qNew    []float64
	layerPower [][]float64 // dense die-layer injection table (index 0)
	bp         map[string]float64
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// CarryWarmStart toggles the cross-solve warm start (default on). With it
// off, every solve is seeded exactly like a fresh System.SolveSteady* call
// and produces bit-identical results — buffer reuse is kept either way.
func CarryWarmStart(on bool) SessionOption {
	return func(s *Session) { s.carry = on }
}

// WithSolver selects the linear solver for every thermal solve the
// session performs (default thermal.SolverCG). A fixed selection keeps
// solves deterministic — serial and pooled sweeps using the same solver
// stay byte-identical — so the choice is purely a performance knob:
// thermal.SolverMGPCG turns fine grids (128×128 and up) from hundreds of
// CG iterations into a couple dozen.
func WithSolver(s thermal.Solver) SessionOption {
	return func(ses *Session) { ses.ws.SetSolver(s) }
}

// WithDesign overrides the thermosyphon design for this session's solves:
// the session evaporates with d instead of the system's design, while the
// thermal model, power model, and every buffer stay shared. This is how a
// fault scenario gives some blades a degraded cooling loop (reduced fill,
// fouled condenser, eroded HTC) without rebuilding a System per blade. The
// design must already be validated by the caller.
func WithDesign(d thermosyphon.Design) SessionOption {
	return func(ses *Session) { ses.design = &d }
}

// WithThreads sets the intra-solve thread count for every thermal solve
// the session performs: the stencil and fused CG kernels fan out across a
// persistent worker team of this width (n <= 0 selects GOMAXPROCS).
// Like WithSolver it is a pure performance knob — solves are
// byte-identical at any thread count — but the team holds goroutines, so
// sessions configured with threads should be Closed when retired (the
// sweep engine closes its worker sessions automatically).
func WithThreads(n int) SessionOption {
	return func(ses *Session) { ses.ws.SetThreads(n) }
}

// Close releases the session's worker team (if any). The session stays
// usable afterwards, solving serially. It implements io.Closer so the
// sweep engine can retire worker-state sessions; the returned error is
// always nil.
//
// Close is idempotent: closing an already-closed session is a no-op.
// That is a load-bearing guarantee, not a convenience — the thermservd
// lease manager's LRU-eviction path and its drain path can both reach the
// same cached session, and the loser of that race must not corrupt the
// worker team the winner already tore down.
func (ses *Session) Close() error {
	ses.ws.Close()
	return nil
}

// SolverStats returns the cumulative linear-solver effort (solves,
// iterations, operator applications) this session has spent.
func (ses *Session) SolverStats() thermal.SolveStats { return ses.ws.Stats() }

// Escalations returns every solver-ladder descent this session's solves
// have taken, in order (see thermal.Workspace.Escalations). Surfacing
// them is part of the graceful-degradation contract: a solve that had to
// fall back to a safer solver is reported, never hidden.
func (ses *Session) Escalations() []thermal.Escalation { return ses.ws.Escalations() }

// InjectMGFault arms (or disarms) the workspace's solver fault-injection
// hook (thermal.Workspace.InjectMGFault): while armed, multigrid-family
// solves poison their preconditioner and the escalation ladder has to
// rescue them. It exists for chaos drills — the thermservd chaos harness
// sabotages leased sessions through it to prove the breaker and the
// ladder telemetry behave under solver faults.
func (ses *Session) InjectMGFault(on bool) { ses.ws.InjectMGFault(on) }

// Design returns the thermosyphon design this session solves with: the
// WithDesign override when set, the system's design otherwise.
func (ses *Session) Design() *thermosyphon.Design {
	if ses.design != nil {
		return ses.design
	}
	return &ses.sys.Design
}

// fail invalidates the warm-start carry and passes err through: after any
// failed solve the carried field/flux may be half-converged or
// NaN-contaminated, so the next solve on this session must start cold
// rather than warm-start from poisoned state.
func (ses *Session) fail(err error) error {
	ses.warm = false
	return err
}

// NewSession returns a reusable solve session for the system.
func (s *System) NewSession(opts ...SessionOption) *Session {
	ses := &Session{
		sys:        s,
		ws:         s.Thermal.NewWorkspace(),
		carry:      true,
		layerPower: make([][]float64, 1),
	}
	for _, o := range opts {
		o(ses)
	}
	return ses
}

// System returns the system the session solves.
func (ses *Session) System() *System { return ses.sys }

// Reset drops the carried warm-start state; the next solve starts cold.
func (ses *Session) Reset() { ses.warm = false }

// ReseatWater adapts the carried warm-start state to a change of the
// cooling-water inlet temperature: to first order a uniform inlet shift
// offsets the whole steady temperature field by the same amount and
// leaves the heat-flux distribution unchanged, so shifting the carried
// field by deltaC keeps the warm start tight when an outer loop (the
// datacenter water-temperature fixed point) re-solves the same blade at a
// slightly different water temperature. No system is rebuilt and nothing
// re-converges here — the next solve still iterates to the same converged
// answer (within solver tolerances), it just starts closer to it. A no-op
// on sessions with no carried state.
func (ses *Session) ReseatWater(deltaC float64) {
	if !ses.warm || !ses.carry || deltaC == 0 {
		return
	}
	f := ses.ws.FieldA()
	for i := range f.T {
		f.T[i] += deltaC
	}
}

// SolveSteady is System.SolveSteady on the session: coupled steady state
// for a CPU package state, warm-started from the previous solve when the
// carry is enabled. Cancelling ctx aborts the coupled fixed point between
// outer iterations; a nil ctx means "not cancellable".
func (ses *Session) SolveSteady(ctx context.Context, st power.PackageState, op thermosyphon.Operating) (*Result, error) {
	if ses.sys.Power == nil {
		return nil, fmt.Errorf("cosim: system has no power model; use SolveSteadyPower")
	}
	ses.bp = ses.sys.Power.BlockPowersInto(ses.bp, st)
	return ses.SolveSteadyPower(ctx, ses.bp, op)
}

// SolveSteadyPower computes the coupled steady state for an explicit
// per-block power map (watts). This is the hot path of every sweep: after
// the first call on a session it performs zero heap allocations (asserted
// by the AllocsPerRun regression tests), and with the warm-start carry the
// previous converged field and flux distribution seed the fixed point.
// The context is observed between outer coupling iterations, so a
// cancelled solve returns ctx.Err() within one thermal solve; a nil ctx
// means "not cancellable".
func (ses *Session) SolveSteadyPower(ctx context.Context, blockPower map[string]float64, op thermosyphon.Operating) (*Result, error) {
	s := ses.sys
	// The solver escalation ladder observes ctx between rungs.
	ses.ws.SetContext(ctx)
	pCells, err := s.coverage.PowerMapInto(ses.pCells, blockPower)
	if err != nil {
		return nil, err
	}
	ses.pCells = pCells
	var total float64
	for _, p := range pCells {
		total += p
	}
	grid := s.Thermal.Grid()
	ses.layerPower[0] = pCells

	// Initial heat-flux guess: the previous converged flux when warm, else
	// the die power projected straight up.
	warm := ses.carry && ses.warm
	if cap(ses.q) < len(pCells) {
		ses.q = make([]float64, len(pCells))
		warm = false
	}
	ses.q = ses.q[:len(pCells)]
	if !warm {
		copy(ses.q, pCells)
	}
	q := ses.q

	field := ses.ws.FieldA()
	var init *thermal.Field
	if warm {
		init = field // previous converged temperatures
	}
	prev := math.Inf(1)
	const maxOuter = 60
	for it := 0; it < maxOuter; it++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, ses.fail(err)
			}
		}
		syph, err := ses.Design().EvaporateInto(ses.syph, grid, q, op)
		if err != nil {
			return nil, ses.fail(fmt.Errorf("cosim: iteration %d: %w", it, err))
		}
		ses.syph = syph
		bc := thermal.TopBoundary{H: syph.H, TFluid: syph.TFluid}
		if err := ses.ws.SteadySolveLayersInto(field, init, ses.layerPower, bc); err != nil {
			return nil, ses.fail(fmt.Errorf("cosim: iteration %d: %w", it, err))
		}
		init = field
		ses.qNew = field.TopHeatPerCellInto(ses.qNew, bc)
		qNew := ses.qNew
		// Damped update and convergence on the flux change.
		var delta float64
		for i := range q {
			d := math.Abs(qNew[i] - q[i])
			if d > delta {
				delta = d
			}
			q[i] = 0.4*q[i] + 0.6*qNew[i]
		}
		ses.res = Result{
			Field:       field,
			Syphon:      syph,
			BlockPower:  blockPower,
			TotalPowerW: total,
			Iterations:  it + 1,
			BC:          bc,
		}
		// Converge when the largest per-cell flux change falls below 1 %
		// of the largest cell flux — temperature errors are then far below
		// the 0.1 °C the experiments care about.
		var qMax float64
		for _, w := range qNew {
			if w > qMax {
				qMax = w
			}
		}
		if delta < 1e-2*qMax+1e-6 || math.Abs(delta-prev) < 1e-9 {
			ses.warm = true
			return &ses.res, nil
		}
		prev = delta
	}
	ses.warm = true
	return &ses.res, nil
}
