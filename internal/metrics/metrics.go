// Package metrics computes the thermal-map statistics the paper reports:
// hot-spot temperature θmax, average θavg, the maximum spatial gradient
// ∇θmax in °C/mm, and hot-spot counting on die and package maps.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/floorplan"
)

// MapStats summarizes a temperature map (all temperatures in °C).
type MapStats struct {
	MaxC  float64
	MinC  float64
	MeanC float64
	// MaxGradCPerMM is the paper's ∇θmax: the largest temperature
	// difference between adjacent cells divided by the cell pitch, °C/mm.
	MaxGradCPerMM float64
	// Cells is the number of cells included (after masking).
	Cells int
}

// Analyze computes statistics over the whole map.
func Analyze(grid floorplan.Grid, temps []float64) (MapStats, error) {
	return AnalyzeMasked(grid, temps, nil)
}

// AnalyzeMasked computes statistics over cells where mask is true. A nil
// mask includes every cell. Gradients are evaluated only between two
// included cells.
func AnalyzeMasked(grid floorplan.Grid, temps []float64, mask []bool) (MapStats, error) {
	if len(temps) != grid.Cells() {
		return MapStats{}, fmt.Errorf("metrics: %d temps for %d cells", len(temps), grid.Cells())
	}
	if mask != nil && len(mask) != grid.Cells() {
		return MapStats{}, fmt.Errorf("metrics: %d mask entries for %d cells", len(mask), grid.Cells())
	}
	in := func(i int) bool { return mask == nil || mask[i] }
	st := MapStats{MaxC: math.Inf(-1), MinC: math.Inf(1)}
	var sum float64
	for iy := 0; iy < grid.NY; iy++ {
		for ix := 0; ix < grid.NX; ix++ {
			i := grid.Index(ix, iy)
			if !in(i) {
				continue
			}
			t := temps[i]
			st.Cells++
			sum += t
			if t > st.MaxC {
				st.MaxC = t
			}
			if t < st.MinC {
				st.MinC = t
			}
			if ix+1 < grid.NX {
				j := grid.Index(ix+1, iy)
				if in(j) {
					if g := math.Abs(t-temps[j]) / (grid.DX * 1e3); g > st.MaxGradCPerMM {
						st.MaxGradCPerMM = g
					}
				}
			}
			if iy+1 < grid.NY {
				j := grid.Index(ix, iy+1)
				if in(j) {
					if g := math.Abs(t-temps[j]) / (grid.DY * 1e3); g > st.MaxGradCPerMM {
						st.MaxGradCPerMM = g
					}
				}
			}
		}
	}
	if st.Cells == 0 {
		return MapStats{}, fmt.Errorf("metrics: mask excludes every cell")
	}
	st.MeanC = sum / float64(st.Cells)
	return st, nil
}

// RectMask returns a mask selecting cells whose centers fall inside rect.
func RectMask(grid floorplan.Grid, rect floorplan.Rect) []bool {
	mask := make([]bool, grid.Cells())
	for iy := 0; iy < grid.NY; iy++ {
		for ix := 0; ix < grid.NX; ix++ {
			cx, cy := grid.CellCenter(ix, iy)
			mask[grid.Index(ix, iy)] = rect.Contains(cx, cy)
		}
	}
	return mask
}

// HotspotMagnitude integrates the temperature excess above the threshold
// over the masked area, in °C·mm² — the "magnitude of hot spots" the
// paper's mapping policy minimizes alongside their number.
func HotspotMagnitude(grid floorplan.Grid, temps []float64, mask []bool, thresholdC float64) float64 {
	cellMM2 := grid.DX * grid.DY * 1e6
	var mag float64
	for i, t := range temps {
		if mask != nil && !mask[i] {
			continue
		}
		if t > thresholdC {
			mag += (t - thresholdC) * cellMM2
		}
	}
	return mag
}

// Percentile returns the p-th percentile (0–100) of the masked cells using
// nearest-rank on a sorted copy.
func Percentile(temps []float64, mask []bool, p float64) (float64, error) {
	var vals []float64
	for i, t := range temps {
		if mask == nil || mask[i] {
			vals = append(vals, t)
		}
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("metrics: no cells selected")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %g outside [0,100]", p)
	}
	sort.Float64s(vals)
	rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(vals) {
		rank = len(vals) - 1
	}
	return vals[rank], nil
}

// Hotspots counts connected regions (4-neighborhood) of cells at or above
// the threshold temperature, restricted to the mask (nil = everywhere).
func Hotspots(grid floorplan.Grid, temps []float64, mask []bool, thresholdC float64) int {
	in := func(i int) bool {
		return (mask == nil || mask[i]) && temps[i] >= thresholdC
	}
	seen := make([]bool, grid.Cells())
	var count int
	var stack []int
	for start := 0; start < grid.Cells(); start++ {
		if seen[start] || !in(start) {
			continue
		}
		count++
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ix, iy := i%grid.NX, i/grid.NX
			for _, nb := range [][2]int{{ix - 1, iy}, {ix + 1, iy}, {ix, iy - 1}, {ix, iy + 1}} {
				nx, ny := nb[0], nb[1]
				if nx < 0 || nx >= grid.NX || ny < 0 || ny >= grid.NY {
					continue
				}
				j := grid.Index(nx, ny)
				if !seen[j] && in(j) {
					seen[j] = true
					stack = append(stack, j)
				}
			}
		}
	}
	return count
}
