package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
)

func grid4() floorplan.Grid { return floorplan.NewGrid(4, 4, 4e-3, 4e-3) } // 1 mm cells

func TestAnalyzeBasics(t *testing.T) {
	g := grid4()
	temps := make([]float64, g.Cells())
	for i := range temps {
		temps[i] = 50
	}
	temps[g.Index(2, 2)] = 60
	st, err := Analyze(g, temps)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxC != 60 || st.MinC != 50 {
		t.Fatalf("max/min = %v/%v", st.MaxC, st.MinC)
	}
	wantMean := (15*50.0 + 60) / 16
	if math.Abs(st.MeanC-wantMean) > 1e-12 {
		t.Fatalf("mean = %v want %v", st.MeanC, wantMean)
	}
	// 10 °C across a 1 mm pitch.
	if math.Abs(st.MaxGradCPerMM-10) > 1e-9 {
		t.Fatalf("grad = %v want 10", st.MaxGradCPerMM)
	}
	if st.Cells != 16 {
		t.Fatalf("cells = %d", st.Cells)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	g := grid4()
	if _, err := Analyze(g, make([]float64, 3)); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := AnalyzeMasked(g, make([]float64, 16), make([]bool, 2)); err == nil {
		t.Fatal("mask mismatch must error")
	}
	if _, err := AnalyzeMasked(g, make([]float64, 16), make([]bool, 16)); err == nil {
		t.Fatal("empty mask must error")
	}
}

func TestAnalyzeMasked(t *testing.T) {
	g := grid4()
	temps := make([]float64, g.Cells())
	for i := range temps {
		temps[i] = 40
	}
	temps[g.Index(0, 0)] = 90 // excluded
	mask := make([]bool, g.Cells())
	for iy := 2; iy < 4; iy++ {
		for ix := 2; ix < 4; ix++ {
			mask[g.Index(ix, iy)] = true
		}
	}
	st, err := AnalyzeMasked(g, temps, mask)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxC != 40 || st.Cells != 4 {
		t.Fatalf("masked stats leaked: %+v", st)
	}
	// Gradient across mask boundary must not count.
	if st.MaxGradCPerMM != 0 {
		t.Fatalf("masked grad = %v", st.MaxGradCPerMM)
	}
}

func TestRectMask(t *testing.T) {
	g := grid4()
	mask := RectMask(g, floorplan.Rect{X: 0, Y: 0, W: 2e-3, H: 2e-3})
	var n int
	for _, b := range mask {
		if b {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("rect mask selected %d cells, want 4", n)
	}
}

func TestHotspots(t *testing.T) {
	g := floorplan.NewGrid(6, 6, 6e-3, 6e-3)
	temps := make([]float64, g.Cells())
	for i := range temps {
		temps[i] = 40
	}
	// Two separate hot regions.
	temps[g.Index(0, 0)] = 80
	temps[g.Index(1, 0)] = 81
	temps[g.Index(4, 4)] = 79
	if n := Hotspots(g, temps, nil, 75); n != 2 {
		t.Fatalf("hotspots = %d, want 2", n)
	}
	// Bridge them: one region.
	for ix := 0; ix < 5; ix++ {
		temps[g.Index(ix, 2)] = 78
	}
	temps[g.Index(0, 1)] = 78
	temps[g.Index(4, 3)] = 78
	if n := Hotspots(g, temps, nil, 75); n != 1 {
		t.Fatalf("bridged hotspots = %d, want 1", n)
	}
	if n := Hotspots(g, temps, nil, 100); n != 0 {
		t.Fatalf("no cell above 100, got %d", n)
	}
}

func TestHotspotsMasked(t *testing.T) {
	g := grid4()
	temps := make([]float64, g.Cells())
	temps[g.Index(0, 0)] = 99
	temps[g.Index(3, 3)] = 99
	mask := make([]bool, g.Cells())
	mask[g.Index(3, 3)] = true
	if n := Hotspots(g, temps, mask, 90); n != 1 {
		t.Fatalf("masked hotspots = %d, want 1", n)
	}
}

// Property: adding a constant to every cell shifts max/mean/min but leaves
// the gradient unchanged.
func TestShiftInvarianceProperty(t *testing.T) {
	g := grid4()
	f := func(seed int64, shiftRaw float64) bool {
		shift := math.Mod(shiftRaw, 50)
		if math.IsNaN(shift) {
			return true
		}
		temps := make([]float64, g.Cells())
		rng := seed
		for i := range temps {
			rng = rng*6364136223846793005 + 1442695040888963407
			temps[i] = 40 + float64((rng>>33)%2000)/100
		}
		a, err := Analyze(g, temps)
		if err != nil {
			return false
		}
		shifted := make([]float64, len(temps))
		for i := range temps {
			shifted[i] = temps[i] + shift
		}
		b, err := Analyze(g, shifted)
		if err != nil {
			return false
		}
		return math.Abs(a.MaxGradCPerMM-b.MaxGradCPerMM) < 1e-9 &&
			math.Abs((b.MaxC-a.MaxC)-shift) < 1e-9 &&
			math.Abs((b.MeanC-a.MeanC)-shift) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotMagnitude(t *testing.T) {
	g := grid4() // 1 mm cells
	temps := make([]float64, g.Cells())
	for i := range temps {
		temps[i] = 50
	}
	temps[g.Index(1, 1)] = 60 // 10 °C over a 1 mm² cell
	temps[g.Index(2, 2)] = 55 // 5 °C
	got := HotspotMagnitude(g, temps, nil, 50)
	if math.Abs(got-15) > 1e-9 {
		t.Fatalf("magnitude = %v, want 15 °C·mm²", got)
	}
	// Below-threshold maps contribute nothing.
	if HotspotMagnitude(g, temps, nil, 70) != 0 {
		t.Fatal("no cell above 70")
	}
	// Mask excludes the big spot.
	mask := make([]bool, g.Cells())
	mask[g.Index(2, 2)] = true
	if got := HotspotMagnitude(g, temps, mask, 50); math.Abs(got-5) > 1e-9 {
		t.Fatalf("masked magnitude = %v, want 5", got)
	}
}

func TestPercentile(t *testing.T) {
	g := grid4()
	temps := make([]float64, g.Cells())
	for i := range temps {
		temps[i] = float64(i) // 0..15
	}
	p50, err := Percentile(temps, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != 7 {
		t.Fatalf("p50 = %v, want 7", p50)
	}
	p100, _ := Percentile(temps, nil, 100)
	if p100 != 15 {
		t.Fatalf("p100 = %v", p100)
	}
	p0, _ := Percentile(temps, nil, 0)
	if p0 != 0 {
		t.Fatalf("p0 = %v", p0)
	}
	if _, err := Percentile(temps, make([]bool, g.Cells()), 50); err == nil {
		t.Fatal("empty mask must error")
	}
	if _, err := Percentile(temps, nil, 150); err == nil {
		t.Fatal("bad percentile must error")
	}
}
