// Package thermosyphon models the micro-scale gravity-driven two-phase
// thermosyphon of Seuret et al. (ITHERM'18) that the paper designs and
// tunes: a micro-channel evaporator sitting on the CPU package, a riser, a
// water-cooled micro-condenser, and a gravity-fed downcomer.
//
// The model captures the mechanisms the paper's design study and mapping
// policy exploit:
//
//   - flow-boiling heat transfer that improves with vapor quality and then
//     collapses past a dryout threshold set by the filling ratio, which is
//     why two hot cores on one channel ("the same horizontal line", §VII)
//     are worse than one;
//   - a slightly subcooled channel inlet, which is why the orientation of
//     the evaporator relative to the die's hot side matters (§VI-A);
//   - a natural-circulation mass flow balancing gravitational driving head
//     against two-phase friction, sensitive to the filling ratio (§VI-B);
//   - an ε-NTU water condenser whose inlet temperature and flow rate are
//     the runtime-tunable knobs (§VI-C).
package thermosyphon

import (
	"fmt"

	"repro/internal/refrigerant"
)

// Orientation places the evaporator inlet relative to the die (§VI-A).
// InletWest and InletEast run the micro-channels east-west (the paper's
// Design 1); InletNorth and InletSouth run them north-south (Design 2).
type Orientation int

// The four candidate orientations.
const (
	// InletWest feeds refrigerant from the west edge, flowing eastward
	// over the die's core columns first. This is the paper's chosen
	// Design 1: the coolest fluid covers the die's hot (west) side.
	InletWest Orientation = iota
	// InletEast flows westward: channels still east-west, but the cores
	// see the highest-quality (warmest) fluid.
	InletEast
	// InletNorth flows southward with north-south channels (Design 2).
	InletNorth
	// InletSouth flows northward with north-south channels.
	InletSouth
)

// String names the orientation.
func (o Orientation) String() string {
	switch o {
	case InletWest:
		return "inlet-west"
	case InletEast:
		return "inlet-east"
	case InletNorth:
		return "inlet-north"
	case InletSouth:
		return "inlet-south"
	default:
		return fmt.Sprintf("orientation(%d)", int(o))
	}
}

// Horizontal reports whether the channels run east-west.
func (o Orientation) Horizontal() bool { return o == InletWest || o == InletEast }

// Orientations lists all candidate orientations for the design sweep.
func Orientations() []Orientation {
	return []Orientation{InletWest, InletEast, InletNorth, InletSouth}
}

// Design collects the design-time parameters of the thermosyphon (§VI).
type Design struct {
	// Fluid is the refrigerant charge.
	Fluid *refrigerant.Fluid
	// FillingRatio is the liquid fill fraction of the loop volume (§VI-B);
	// the paper chooses 55 % for R236fa.
	FillingRatio float64
	// Orientation places the evaporator inlet (§VI-A).
	Orientation Orientation

	// ChannelHydraulicDiam is the micro-channel hydraulic diameter (m).
	ChannelHydraulicDiam float64
	// AreaEnhancement is the wetted-to-base area ratio from the channel
	// fins.
	AreaEnhancement float64
	// InletSubcoolC is the inlet subcooling (°C) from the static head of
	// the downcomer; it decays over the first part of the channel.
	InletSubcoolC float64
	// SubcoolFraction is the fraction of the channel length over which
	// the inlet subcooling decays to zero.
	SubcoolFraction float64

	// RiserHeight is the condenser elevation above the evaporator (m).
	RiserHeight float64
	// PipeArea is the riser/downcomer flow area (m²).
	PipeArea float64
	// LoopK is the lumped friction loss coefficient of the loop.
	LoopK float64

	// CondenserUA is the condenser conductance (W/K) at nominal water
	// flow.
	CondenserUA float64
}

// DefaultDesign returns the paper's chosen design point: R236fa at 55 %
// filling with the inlet on the west (Design 1).
func DefaultDesign() Design {
	return Design{
		Fluid:                refrigerant.R236fa(),
		FillingRatio:         0.55,
		Orientation:          InletWest,
		ChannelHydraulicDiam: 0.9e-3,
		AreaEnhancement:      2.5,
		InletSubcoolC:        4.0,
		SubcoolFraction:      0.45,
		RiserHeight:          0.15,
		PipeArea:             1.26e-5, // 4 mm ID
		LoopK:                75,
		CondenserUA:          25,
	}
}

// Validate checks the design for physical plausibility.
func (d *Design) Validate() error {
	switch {
	case d.Fluid == nil:
		return fmt.Errorf("thermosyphon: no refrigerant")
	case d.FillingRatio <= 0.05 || d.FillingRatio >= 0.95:
		return fmt.Errorf("thermosyphon: filling ratio %.2f outside (0.05,0.95)", d.FillingRatio)
	case d.ChannelHydraulicDiam <= 0:
		return fmt.Errorf("thermosyphon: non-positive hydraulic diameter")
	case d.AreaEnhancement < 1:
		return fmt.Errorf("thermosyphon: area enhancement below 1")
	case d.RiserHeight <= 0 || d.PipeArea <= 0 || d.LoopK <= 0 || d.CondenserUA <= 0:
		return fmt.Errorf("thermosyphon: non-positive loop parameter")
	case d.SubcoolFraction < 0 || d.SubcoolFraction > 1:
		return fmt.Errorf("thermosyphon: subcool fraction outside [0,1]")
	}
	return nil
}

// CritQuality returns the dryout onset quality for the design's filling
// ratio: under-filled loops dry out sooner because the circulating charge
// cannot keep the channel walls wetted.
func (d *Design) CritQuality() float64 {
	xc := 0.25 + 0.6*d.FillingRatio
	if xc > 0.80 {
		xc = 0.80
	}
	return xc
}

// condenserEffUA returns the effective condenser conductance: over-filled
// loops flood the condenser with liquid, blanking part of its area
// (§VI-B's trade-off against early dryout at low fill).
func (d *Design) condenserEffUA() float64 {
	ua := d.CondenserUA
	if d.FillingRatio > 0.70 {
		ua *= 1 - 0.6*(d.FillingRatio-0.70)/0.30
	}
	return ua
}

// Operating are the runtime-tunable cooling parameters (§VI-C).
type Operating struct {
	// WaterInC is the chiller-supplied inlet water temperature (°C).
	WaterInC float64
	// WaterFlowKgH is the condenser water flow rate (kg/h); the paper's
	// design point is 7 kg/h at 30 °C.
	WaterFlowKgH float64
}

// DefaultOperating returns the paper's §VI-C design point.
func DefaultOperating() Operating { return Operating{WaterInC: 30, WaterFlowKgH: 7} }

// Validate checks the operating point.
func (op Operating) Validate() error {
	if op.WaterFlowKgH <= 0 {
		return fmt.Errorf("thermosyphon: non-positive water flow")
	}
	if op.WaterInC < 0 || op.WaterInC > 90 {
		return fmt.Errorf("thermosyphon: water temperature %.1f outside [0,90] °C", op.WaterInC)
	}
	return nil
}

// WaterHeatCapacity returns the coolant capacity rate C_w = ṁ·c_p (W/K).
func (op Operating) WaterHeatCapacity() float64 {
	mdot := op.WaterFlowKgH / 3600.0
	return mdot * refrigerant.WaterCp(op.WaterInC)
}
