package thermosyphon

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// State is the converged thermosyphon operating state for one heat-flux
// distribution: the per-cell boundary condition for the thermal model plus
// the loop and condenser solutions.
type State struct {
	Condenser CondenserSolution
	Loop      LoopSolution
	// H is the per-cell effective heat transfer coefficient (W/m²·K) on
	// the evaporator base grid.
	H []float64
	// TFluid is the per-cell refrigerant temperature (°C), below
	// saturation near the inlet.
	TFluid []float64
	// TotalHeatW is the heat load the state was solved for.
	TotalHeatW float64
	// MaxQuality is the highest vapor quality reached in any channel.
	MaxQuality float64
	// DryoutCells counts cells operating beyond the critical quality.
	DryoutCells int
}

// BoilingHTC returns the local flow-boiling heat transfer coefficient
// (W/m²·K, per wetted area) at vapor quality x and wall heat flux qFlux
// (W/m²): a nucleate term (Cooper-style q″^0.7) plus a convective term
// enhanced by vapor acceleration, rolled off beyond the dryout quality.
func (d *Design) BoilingHTC(x, qFlux, tsatC float64) float64 {
	fl := d.Fluid
	hl := 4.36 * fl.KLiquid(tsatC) / d.ChannelHydraulicDiam
	hnb := 2.2 * math.Pow(math.Max(qFlux, 1000), 0.7)
	ratio := fl.RhoLiquid(tsatC) / fl.RhoVapor(tsatC)
	x = linalg.Clamp(x, 0, 1)
	hcv := hl * (1 + 2.2*math.Pow(x, 0.8)*math.Pow(ratio, 0.35))
	h := hnb + hcv
	// Past the critical quality the liquid film breaks down: the HTC
	// falls steeply toward a 25 % vapor-convection floor.
	if xc := d.CritQuality(); x > xc {
		h *= math.Max(0.25, 1-1.5*(x-xc))
	}
	return h
}

// channelPath yields the marching order of one channel: for horizontal
// orientations channels are grid rows traversed west→east (InletWest) or
// east→west; for vertical orientations channels are grid columns.
func channelPath(o Orientation, grid floorplan.Grid, channel int) []int {
	var path []int
	switch o {
	case InletWest:
		for ix := 0; ix < grid.NX; ix++ {
			path = append(path, grid.Index(ix, channel))
		}
	case InletEast:
		for ix := grid.NX - 1; ix >= 0; ix-- {
			path = append(path, grid.Index(ix, channel))
		}
	case InletNorth:
		for iy := 0; iy < grid.NY; iy++ {
			path = append(path, grid.Index(channel, iy))
		}
	case InletSouth:
		for iy := grid.NY - 1; iy >= 0; iy-- {
			path = append(path, grid.Index(channel, iy))
		}
	}
	return path
}

// channelCount returns the number of parallel channels on the grid.
func channelCount(o Orientation, grid floorplan.Grid) int {
	if o.Horizontal() {
		return grid.NY
	}
	return grid.NX
}

// channelSpan describes one channel's marching order without materializing
// it: cell indices are start, start+stride, … (n cells). It visits exactly
// the cells channelPath lists, in the same order, allocation-free.
func channelSpan(o Orientation, grid floorplan.Grid, channel int) (start, stride, n int) {
	switch o {
	case InletWest:
		return grid.Index(0, channel), 1, grid.NX
	case InletEast:
		return grid.Index(grid.NX-1, channel), -1, grid.NX
	case InletNorth:
		return grid.Index(channel, 0), grid.NX, grid.NY
	default: // InletSouth
		return grid.Index(channel, grid.NY-1), -grid.NX, grid.NY
	}
}

// Evaporate solves the thermosyphon for the given per-cell absorbed heat
// (W per grid cell, as extracted from the thermal model's top boundary):
// condenser sets the saturation temperature, the gravity loop sets the mass
// flow, and a 1-D quality march along every channel yields the local HTC
// and fluid temperature fields.
func (d *Design) Evaporate(grid floorplan.Grid, cellHeat []float64, op Operating) (*State, error) {
	return d.evaporate(nil, grid, cellHeat, op, 0)
}

// EvaporateInto is Evaporate reusing a caller-owned state: st's H and
// TFluid buffers are recycled when correctly sized (st may be nil or
// mis-sized, in which case fresh buffers are made) and every output field
// is overwritten, so repeated calls on one state are allocation-free apart
// from the loop-balance bisection closure. The returned state is st when
// it was reusable. Values are bit-identical to Evaporate.
func (d *Design) EvaporateInto(st *State, grid floorplan.Grid, cellHeat []float64, op Operating) (*State, error) {
	return d.evaporate(st, grid, cellHeat, op, 0)
}

// EvaporateAt is Evaporate with the refrigerant mass flow pinned to
// mdotKgS instead of the quasi-static loop balance — used by transient
// simulations that model the loop's startup inertia.
func (d *Design) EvaporateAt(grid floorplan.Grid, cellHeat []float64, op Operating, mdotKgS float64) (*State, error) {
	return d.EvaporateAtInto(nil, grid, cellHeat, op, mdotKgS)
}

// EvaporateAtInto is EvaporateAt with state reuse, like EvaporateInto.
func (d *Design) EvaporateAtInto(st *State, grid floorplan.Grid, cellHeat []float64, op Operating, mdotKgS float64) (*State, error) {
	if mdotKgS <= 0 {
		return nil, fmt.Errorf("thermosyphon: non-positive pinned mass flow %g", mdotKgS)
	}
	return d.evaporate(st, grid, cellHeat, op, mdotKgS)
}

func (d *Design) evaporate(st *State, grid floorplan.Grid, cellHeat []float64, op Operating, mdotPin float64) (*State, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if len(cellHeat) != grid.Cells() {
		return nil, fmt.Errorf("thermosyphon: heat vector has %d cells, want %d", len(cellHeat), grid.Cells())
	}
	var q float64
	for _, w := range cellHeat {
		if w > 0 {
			q += w
		}
	}
	if q < 1 {
		q = 1 // keep the loop solvable at near-idle loads
	}
	cond, err := d.Condense(q, op)
	if err != nil {
		return nil, err
	}
	loop, err := d.SolveLoop(q, cond.TsatC)
	if err != nil {
		return nil, err
	}
	if mdotPin > 0 {
		loop.MassFlowKgS = mdotPin
		loop.ExitQuality = d.exitQuality(q, mdotPin, cond.TsatC)
	}

	if st == nil || len(st.H) != grid.Cells() || len(st.TFluid) != grid.Cells() {
		st = &State{
			H:      make([]float64, grid.Cells()),
			TFluid: make([]float64, grid.Cells()),
		}
	}
	// Every H/TFluid cell is overwritten by the march below; reset the
	// accumulated scalars so a reused state starts clean.
	st.Condenser = cond
	st.Loop = loop
	st.TotalHeatW = q
	st.MaxQuality = 0
	st.DryoutCells = 0
	nCh := channelCount(d.Orientation, grid)
	mCh := loop.MassFlowKgS / float64(nCh)
	hfg := d.Fluid.Hfg(cond.TsatC)
	cellArea := grid.DX * grid.DY
	xc := d.CritQuality()

	for ch := 0; ch < nCh; ch++ {
		start, stride, n := channelSpan(d.Orientation, grid, ch)
		x := 0.0
		for pos := 0; pos < n; pos++ {
			c := start + pos*stride
			w := math.Max(cellHeat[c], 0)
			xMid := x + 0.5*w/(mCh*hfg)
			xMid = linalg.Clamp(xMid, 0, 0.99)
			qFlux := w / cellArea
			st.H[c] = d.BoilingHTC(xMid, qFlux, cond.TsatC) * d.AreaEnhancement
			// Inlet subcooling decays over the first SubcoolFraction of
			// the channel.
			frac := float64(pos) / float64(n)
			sub := 0.0
			if d.SubcoolFraction > 0 && frac < d.SubcoolFraction {
				sub = d.InletSubcoolC * (1 - frac/d.SubcoolFraction)
			}
			st.TFluid[c] = cond.TsatC - sub
			if xMid > xc {
				st.DryoutCells++
			}
			x = linalg.Clamp(x+w/(mCh*hfg), 0, 0.99)
		}
		if x > st.MaxQuality {
			st.MaxQuality = x
		}
	}
	return st, nil
}
