package thermosyphon

import (
	"math"
	"testing"
)

func TestChannelReportUniform(t *testing.T) {
	d := DefaultDesign()
	grid := testGrid()
	rep, err := d.ChannelReport(grid, uniformHeat(grid, 70), DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != grid.NY { // E-W channels: one per row
		t.Fatalf("got %d channels, want %d", len(rep), grid.NY)
	}
	var total float64
	for _, c := range rep {
		total += c.HeatW
		if c.ExitQuality <= 0 || c.ExitQuality > 0.99 {
			t.Fatalf("channel %d exit quality %v", c.Channel, c.ExitQuality)
		}
		if c.MinH <= 0 || c.MaxH < c.MinH {
			t.Fatalf("channel %d HTC range [%v,%v]", c.Channel, c.MinH, c.MaxH)
		}
		if c.DryoutPos < 0 || c.DryoutPos > 1 {
			t.Fatalf("channel %d dryout pos %v", c.Channel, c.DryoutPos)
		}
	}
	if math.Abs(total-70) > 1e-9 {
		t.Fatalf("channel heats sum to %v, want 70", total)
	}
	// Uniform load: all channels identical.
	for _, c := range rep[1:] {
		if math.Abs(c.ExitQuality-rep[0].ExitQuality) > 1e-9 {
			t.Fatal("uniform load must give identical channels")
		}
	}
}

func TestChannelReportVertical(t *testing.T) {
	d := DefaultDesign()
	d.Orientation = InletNorth
	grid := testGrid()
	rep, err := d.ChannelReport(grid, uniformHeat(grid, 50), DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != grid.NX { // N-S channels: one per column
		t.Fatalf("got %d channels, want %d", len(rep), grid.NX)
	}
}

func TestChannelReportLoadedChannelDriesFirst(t *testing.T) {
	d := DefaultDesign()
	grid := testGrid()
	q := make([]float64, grid.Cells())
	// Put 40 W on channel 10, nothing elsewhere.
	for ix := 0; ix < grid.NX; ix++ {
		q[grid.Index(ix, 10)] = 40.0 / float64(grid.NX)
	}
	rep, err := d.ChannelReport(grid, q, DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstChannel(rep)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Channel != 10 {
		t.Fatalf("worst channel %d, want 10", worst.Channel)
	}
	if worst.DryoutPos >= 1 {
		t.Fatal("fully loaded channel must dry out")
	}
	// Unloaded channels stay liquid.
	if rep[0].ExitQuality > 0.01 {
		t.Fatalf("unloaded channel quality %v", rep[0].ExitQuality)
	}
}

func TestChannelReportErrors(t *testing.T) {
	d := DefaultDesign()
	grid := testGrid()
	if _, err := d.ChannelReport(grid, make([]float64, 1), DefaultOperating()); err == nil {
		t.Fatal("bad length must error")
	}
	bad := DefaultDesign()
	bad.Fluid = nil
	if _, err := bad.ChannelReport(grid, uniformHeat(grid, 10), DefaultOperating()); err == nil {
		t.Fatal("invalid design must error")
	}
	if _, err := WorstChannel(nil); err == nil {
		t.Fatal("empty report must error")
	}
}

func TestChannelReportConsistentWithEvaporate(t *testing.T) {
	d := DefaultDesign()
	grid := testGrid()
	heat := uniformHeat(grid, 70)
	rep, err := d.ChannelReport(grid, heat, DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Evaporate(grid, heat, DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	worst, _ := WorstChannel(rep)
	if math.Abs(worst.ExitQuality-st.MaxQuality) > 1e-9 {
		t.Fatalf("report worst quality %v vs state max %v", worst.ExitQuality, st.MaxQuality)
	}
}
