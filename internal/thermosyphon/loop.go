package thermosyphon

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

const gravity = 9.80665 // m/s²

// CondenserSolution is the water-side state for a given heat load.
type CondenserSolution struct {
	// TsatC is the refrigerant saturation (condensing) temperature.
	TsatC float64
	// WaterOutC is the coolant outlet temperature.
	WaterOutC float64
	// Effectiveness is the ε-NTU effectiveness used.
	Effectiveness float64
}

// Condense solves the condenser for heat load q (W) at the operating
// point: with the condensing side at effectively infinite capacity rate,
// ε = 1 − exp(−NTU) and T_sat = T_w,in + q / (ε·C_w).
func (d *Design) Condense(q float64, op Operating) (CondenserSolution, error) {
	if err := op.Validate(); err != nil {
		return CondenserSolution{}, err
	}
	if q < 0 {
		return CondenserSolution{}, fmt.Errorf("thermosyphon: negative heat load %g", q)
	}
	cw := op.WaterHeatCapacity()
	ntu := d.condenserEffUA() / cw
	eff := 1 - math.Exp(-ntu)
	sol := CondenserSolution{
		TsatC:         op.WaterInC + q/(eff*cw),
		WaterOutC:     op.WaterInC + q/cw,
		Effectiveness: eff,
	}
	return sol, nil
}

// homogeneousDensity returns the homogeneous two-phase mixture density at
// quality x and saturation temperature tsat.
func (d *Design) homogeneousDensity(x, tsatC float64) float64 {
	rl := d.Fluid.RhoLiquid(tsatC)
	rv := d.Fluid.RhoVapor(tsatC)
	x = linalg.Clamp(x, 0, 1)
	return 1 / (x/rv + (1-x)/rl)
}

// LoopSolution is the natural-circulation state of the refrigerant loop.
type LoopSolution struct {
	// MassFlowKgS is the circulating refrigerant mass flow.
	MassFlowKgS float64
	// ExitQuality is the vapor quality leaving the evaporator.
	ExitQuality float64
	// DrivingHeadPa and FrictionPa report the converged balance.
	DrivingHeadPa, FrictionPa float64
}

// exitQuality returns the evaporator exit quality for mass flow m under
// heat load q, clamped below total evaporation.
func (d *Design) exitQuality(q, m, tsatC float64) float64 {
	if m <= 0 {
		return 0.99
	}
	return linalg.Clamp(q/(m*d.Fluid.Hfg(tsatC)), 0, 0.99)
}

// drivingHead returns the gravitational driving pressure (Pa) when the
// riser carries a mixture of exit quality xe. The downcomer liquid column
// height scales with the filling ratio.
func (d *Design) drivingHead(xe, tsatC float64) float64 {
	rl := d.Fluid.RhoLiquid(tsatC)
	level := linalg.Clamp(d.FillingRatio+0.25, 0.30, 1.0)
	down := rl * gravity * d.RiserHeight * level
	up := d.homogeneousDensity(xe, tsatC) * gravity * d.RiserHeight
	return down - up
}

// friction returns the two-phase loop friction pressure drop (Pa) at mass
// flow m with exit quality xe: a lumped single-phase loss scaled by a
// homogeneous two-phase multiplier.
func (d *Design) friction(m, xe, tsatC float64) float64 {
	rl := d.Fluid.RhoLiquid(tsatC)
	rv := d.Fluid.RhoVapor(tsatC)
	dyn := m * m / (2 * rl * d.PipeArea * d.PipeArea)
	phi2 := 1 + 0.35*xe*(rl/rv-1)
	return d.LoopK * dyn * phi2
}

// SolveLoop finds the natural-circulation mass flow for heat load q (W) at
// saturation temperature tsat by balancing driving head against friction.
func (d *Design) SolveLoop(q, tsatC float64) (LoopSolution, error) {
	if err := d.Validate(); err != nil {
		return LoopSolution{}, err
	}
	if q <= 0 {
		return LoopSolution{}, fmt.Errorf("thermosyphon: loop requires positive heat load, got %g", q)
	}
	residual := func(m float64) float64 {
		xe := d.exitQuality(q, m, tsatC)
		return d.drivingHead(xe, tsatC) - d.friction(m, xe, tsatC)
	}
	// At tiny flows the head dominates (positive residual); at huge flows
	// friction dominates (negative). Bisection brackets the balance.
	lo, hi := 1e-6, 0.2
	root, ok := linalg.Bisect(residual, lo, hi, 1e-10, 200)
	if !ok {
		return LoopSolution{}, fmt.Errorf("thermosyphon: loop balance not bracketed (q=%g W, tsat=%g °C)", q, tsatC)
	}
	xe := d.exitQuality(q, root, tsatC)
	return LoopSolution{
		MassFlowKgS:   root,
		ExitQuality:   xe,
		DrivingHeadPa: d.drivingHead(xe, tsatC),
		FrictionPa:    d.friction(root, xe, tsatC),
	}, nil
}
