package thermosyphon

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/linalg"
)

// ChannelSummary describes the state of one evaporator micro-channel under
// a heat-flux distribution — the design-debugging view the §VI studies use
// to see where dryout lands relative to the die.
type ChannelSummary struct {
	// Channel is the channel index (grid row for E-W orientations, grid
	// column for N-S).
	Channel int
	// HeatW is the total heat the channel absorbs.
	HeatW float64
	// ExitQuality is the vapor quality at the channel outlet.
	ExitQuality float64
	// DryoutPos is the fractional position along the channel where the
	// critical quality is crossed (1.0 = never).
	DryoutPos float64
	// MinH and MaxH are the extreme local HTCs (W/m²K, wetted area).
	MinH, MaxH float64
}

// ChannelReport marches every channel exactly as Evaporate does and
// returns per-channel summaries. The condenser and loop are solved for the
// aggregate heat first, so the report is consistent with the State that
// Evaporate would produce.
func (d *Design) ChannelReport(grid floorplan.Grid, cellHeat []float64, op Operating) ([]ChannelSummary, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := op.Validate(); err != nil {
		return nil, err
	}
	if len(cellHeat) != grid.Cells() {
		return nil, fmt.Errorf("thermosyphon: heat vector has %d cells, want %d", len(cellHeat), grid.Cells())
	}
	var q float64
	for _, w := range cellHeat {
		if w > 0 {
			q += w
		}
	}
	if q < 1 {
		q = 1
	}
	cond, err := d.Condense(q, op)
	if err != nil {
		return nil, err
	}
	loop, err := d.SolveLoop(q, cond.TsatC)
	if err != nil {
		return nil, err
	}
	nCh := channelCount(d.Orientation, grid)
	mCh := loop.MassFlowKgS / float64(nCh)
	hfg := d.Fluid.Hfg(cond.TsatC)
	cellArea := grid.DX * grid.DY
	xc := d.CritQuality()

	out := make([]ChannelSummary, nCh)
	for ch := 0; ch < nCh; ch++ {
		path := channelPath(d.Orientation, grid, ch)
		sum := ChannelSummary{Channel: ch, DryoutPos: 1, MinH: math.Inf(1)}
		x := 0.0
		for pos, c := range path {
			w := math.Max(cellHeat[c], 0)
			sum.HeatW += w
			xMid := linalg.Clamp(x+0.5*w/(mCh*hfg), 0, 0.99)
			h := d.BoilingHTC(xMid, w/cellArea, cond.TsatC) * d.AreaEnhancement
			if h < sum.MinH {
				sum.MinH = h
			}
			if h > sum.MaxH {
				sum.MaxH = h
			}
			xNew := linalg.Clamp(x+w/(mCh*hfg), 0, 0.99)
			if x <= xc && xNew > xc && sum.DryoutPos == 1 {
				sum.DryoutPos = float64(pos) / float64(len(path))
			}
			x = xNew
		}
		sum.ExitQuality = x
		out[ch] = sum
	}
	return out, nil
}

// WorstChannel returns the channel with the highest exit quality.
func WorstChannel(report []ChannelSummary) (ChannelSummary, error) {
	if len(report) == 0 {
		return ChannelSummary{}, fmt.Errorf("thermosyphon: empty channel report")
	}
	worst := report[0]
	for _, c := range report[1:] {
		if c.ExitQuality > worst.ExitQuality {
			worst = c
		}
	}
	return worst, nil
}
