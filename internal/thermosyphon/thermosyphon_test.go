package thermosyphon

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/refrigerant"
)

func TestDefaultDesignValid(t *testing.T) {
	d := DefaultDesign()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Fluid.Name() != "R236fa" || d.FillingRatio != 0.55 || d.Orientation != InletWest {
		t.Fatalf("default design deviates from the paper's §VI choices: %+v", d)
	}
}

func TestDesignValidation(t *testing.T) {
	mods := []func(*Design){
		func(d *Design) { d.Fluid = nil },
		func(d *Design) { d.FillingRatio = 0 },
		func(d *Design) { d.FillingRatio = 1 },
		func(d *Design) { d.ChannelHydraulicDiam = 0 },
		func(d *Design) { d.AreaEnhancement = 0.5 },
		func(d *Design) { d.RiserHeight = -1 },
		func(d *Design) { d.SubcoolFraction = 2 },
	}
	for i, mod := range mods {
		d := DefaultDesign()
		mod(&d)
		if err := d.Validate(); err == nil {
			t.Fatalf("mod %d should fail validation", i)
		}
	}
}

func TestOperatingValidation(t *testing.T) {
	if err := DefaultOperating().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Operating{WaterInC: 30, WaterFlowKgH: 0}).Validate(); err == nil {
		t.Fatal("zero flow must fail")
	}
	if err := (Operating{WaterInC: 200, WaterFlowKgH: 7}).Validate(); err == nil {
		t.Fatal("200 °C water must fail")
	}
}

func TestOrientationHelpers(t *testing.T) {
	if !InletWest.Horizontal() || !InletEast.Horizontal() {
		t.Fatal("E/W inlets are horizontal channels")
	}
	if InletNorth.Horizontal() || InletSouth.Horizontal() {
		t.Fatal("N/S inlets are vertical channels")
	}
	if len(Orientations()) != 4 {
		t.Fatal("four orientations expected")
	}
	for _, o := range Orientations() {
		if o.String() == "" {
			t.Fatal("orientation must have a name")
		}
	}
}

func TestCondenserPhysics(t *testing.T) {
	d := DefaultDesign()
	op := DefaultOperating()
	sol, err := d.Condense(70, op)
	if err != nil {
		t.Fatal(err)
	}
	// Saturation above water inlet; water warms along the condenser.
	if sol.TsatC <= op.WaterInC {
		t.Fatalf("Tsat %.1f must exceed water inlet %.1f", sol.TsatC, op.WaterInC)
	}
	if sol.WaterOutC <= op.WaterInC || sol.WaterOutC >= sol.TsatC {
		t.Fatalf("water outlet %.1f must sit between inlet and Tsat %.1f", sol.WaterOutC, sol.TsatC)
	}
	if sol.Effectiveness <= 0 || sol.Effectiveness > 1 {
		t.Fatalf("effectiveness %v out of range", sol.Effectiveness)
	}
	// The paper's 7 kg/h at 30 °C with ~70 W: Tsat should land in the
	// high-30s/low-40s so the package sits near 46-53 °C.
	if sol.TsatC < 34 || sol.TsatC > 46 {
		t.Fatalf("Tsat %.1f outside the calibrated band", sol.TsatC)
	}
}

func TestCondenserMonotoneInFlowAndLoad(t *testing.T) {
	d := DefaultDesign()
	lowFlow, _ := d.Condense(70, Operating{WaterInC: 30, WaterFlowKgH: 4})
	highFlow, _ := d.Condense(70, Operating{WaterInC: 30, WaterFlowKgH: 12})
	if highFlow.TsatC >= lowFlow.TsatC {
		t.Fatal("more water flow must lower Tsat")
	}
	lowQ, _ := d.Condense(40, DefaultOperating())
	highQ, _ := d.Condense(80, DefaultOperating())
	if highQ.TsatC <= lowQ.TsatC {
		t.Fatal("more heat must raise Tsat")
	}
	if _, err := d.Condense(-5, DefaultOperating()); err == nil {
		t.Fatal("negative load must error")
	}
}

func TestLoopBalance(t *testing.T) {
	d := DefaultDesign()
	sol, err := d.SolveLoop(70, 40)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MassFlowKgS <= 0 {
		t.Fatal("no circulation")
	}
	// Converged balance: head ≈ friction.
	if math.Abs(sol.DrivingHeadPa-sol.FrictionPa) > 0.01*sol.DrivingHeadPa {
		t.Fatalf("unbalanced loop: head %.1f vs friction %.1f", sol.DrivingHeadPa, sol.FrictionPa)
	}
	// Plausible natural-circulation magnitudes for a micro thermosyphon:
	// grams per second and moderate exit quality.
	if sol.MassFlowKgS < 0.5e-3 || sol.MassFlowKgS > 20e-3 {
		t.Fatalf("mass flow %.4g kg/s implausible", sol.MassFlowKgS)
	}
	if sol.ExitQuality <= 0.02 || sol.ExitQuality >= 0.9 {
		t.Fatalf("exit quality %.3f implausible", sol.ExitQuality)
	}
	if _, err := d.SolveLoop(0, 40); err == nil {
		t.Fatal("zero load must error")
	}
}

func TestLoopQualityRisesWithLoad(t *testing.T) {
	d := DefaultDesign()
	a, _ := d.SolveLoop(40, 40)
	b, _ := d.SolveLoop(80, 40)
	if b.ExitQuality <= a.ExitQuality {
		t.Fatal("more heat must raise exit quality")
	}
	// Natural-circulation flow responds weakly to load (the curve can
	// tilt either way); it must stay within a factor of two.
	if r := b.MassFlowKgS / a.MassFlowKgS; r < 0.5 || r > 2 {
		t.Fatalf("mass flow moved by %.2fx when load doubled", r)
	}
}

func TestBoilingHTCBehaviour(t *testing.T) {
	d := DefaultDesign()
	const tsat = 40.0
	// HTC rises with quality below dryout...
	h1 := d.BoilingHTC(0.05, 6e4, tsat)
	h2 := d.BoilingHTC(0.35, 6e4, tsat)
	if h2 <= h1 {
		t.Fatalf("HTC should rise with quality: %v vs %v", h1, h2)
	}
	// ...and collapses past the critical quality.
	hDry := d.BoilingHTC(0.95, 6e4, tsat)
	if hDry >= h2*0.6 {
		t.Fatalf("dryout HTC %v should collapse versus %v", hDry, h2)
	}
	// Nucleate term grows with heat flux.
	if d.BoilingHTC(0.2, 1.2e5, tsat) <= d.BoilingHTC(0.2, 3e4, tsat) {
		t.Fatal("HTC should grow with heat flux")
	}
	// Magnitude: several kW/m²K in the boiling regime.
	if h2 < 3e3 || h2 > 5e4 {
		t.Fatalf("HTC %v outside plausible band", h2)
	}
}

func TestCritQualityTracksFilling(t *testing.T) {
	lo := DefaultDesign()
	lo.FillingRatio = 0.25
	hi := DefaultDesign()
	hi.FillingRatio = 0.70
	if lo.CritQuality() >= hi.CritQuality() {
		t.Fatal("lower fill must dry out earlier")
	}
	over := DefaultDesign()
	over.FillingRatio = 0.90
	if over.condenserEffUA() >= over.CondenserUA {
		t.Fatal("overfilled loop must lose condenser area")
	}
}

func testGrid() floorplan.Grid {
	pg := floorplan.XeonE5Package()
	return floorplan.NewGrid(38, 30, pg.Width, pg.Height)
}

func uniformHeat(grid floorplan.Grid, total float64) []float64 {
	q := make([]float64, grid.Cells())
	for i := range q {
		q[i] = total / float64(grid.Cells())
	}
	return q
}

func TestEvaporateUniform(t *testing.T) {
	d := DefaultDesign()
	grid := testGrid()
	st, err := d.Evaporate(grid, uniformHeat(grid, 70), DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalHeatW < 69.9 || st.TotalHeatW > 70.1 {
		t.Fatalf("total heat %.2f", st.TotalHeatW)
	}
	for i, h := range st.H {
		if h <= 0 {
			t.Fatalf("cell %d has no HTC", i)
		}
		if st.TFluid[i] > st.Condenser.TsatC+1e-9 {
			t.Fatalf("fluid temp above saturation at %d", i)
		}
	}
	if st.MaxQuality <= 0 || st.MaxQuality >= 1 {
		t.Fatalf("max quality %v", st.MaxQuality)
	}
	// At 70 W the loop runs near 0.6 exit quality: only the far channel
	// tails may cross dryout, never a large share of the plate.
	if st.DryoutCells > grid.Cells()/10 {
		t.Fatalf("uniform 70 W dried %d of %d cells", st.DryoutCells, grid.Cells())
	}
}

func TestEvaporateQualityGrowsDownstream(t *testing.T) {
	d := DefaultDesign() // InletWest: flow west→east
	grid := testGrid()
	st, err := d.Evaporate(grid, uniformHeat(grid, 70), DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	midRow := grid.NY / 2
	// Downstream (east) cells see higher quality → higher HTC (below
	// dryout) than the first post-subcool cells.
	hEarly := st.H[grid.Index(grid.NX/3, midRow)]
	hLate := st.H[grid.Index(grid.NX-2, midRow)]
	if hLate <= hEarly {
		t.Fatalf("HTC should grow downstream below dryout: %v vs %v", hEarly, hLate)
	}
	// Subcooling: inlet cells cooler than saturation.
	if st.TFluid[grid.Index(0, midRow)] >= st.Condenser.TsatC-0.5 {
		t.Fatal("inlet should be subcooled")
	}
	if st.TFluid[grid.Index(grid.NX-1, midRow)] < st.Condenser.TsatC-1e-9 {
		t.Fatal("outlet should reach saturation")
	}
}

func TestEvaporateOrientationFlowDirection(t *testing.T) {
	grid := testGrid()
	heat := uniformHeat(grid, 70)
	for _, o := range Orientations() {
		d := DefaultDesign()
		d.Orientation = o
		st, err := d.Evaporate(grid, heat, DefaultOperating())
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		// Find the subcooled inlet edge.
		var inletIdx, outletIdx int
		switch o {
		case InletWest:
			inletIdx, outletIdx = grid.Index(0, 5), grid.Index(grid.NX-1, 5)
		case InletEast:
			inletIdx, outletIdx = grid.Index(grid.NX-1, 5), grid.Index(0, 5)
		case InletNorth:
			inletIdx, outletIdx = grid.Index(5, 0), grid.Index(5, grid.NY-1)
		case InletSouth:
			inletIdx, outletIdx = grid.Index(5, grid.NY-1), grid.Index(5, 0)
		}
		if st.TFluid[inletIdx] >= st.TFluid[outletIdx] {
			t.Fatalf("%v: inlet %f should be cooler than outlet %f", o, st.TFluid[inletIdx], st.TFluid[outletIdx])
		}
	}
}

func TestEvaporateConcentratedDryout(t *testing.T) {
	// Pile the entire load onto two adjacent channels: the per-channel
	// quality should hit dryout, unlike the spread case.
	d := DefaultDesign()
	grid := testGrid()
	q := make([]float64, grid.Cells())
	const total = 50.0
	perCell := total / float64(2*grid.NX)
	for ix := 0; ix < grid.NX; ix++ {
		q[grid.Index(ix, 10)] = perCell
		q[grid.Index(ix, 11)] = perCell
	}
	st, err := d.Evaporate(grid, q, DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	if st.DryoutCells == 0 {
		t.Fatal("concentrating 50 W on two channels must cause dryout")
	}
	spread, _ := d.Evaporate(grid, uniformHeat(grid, total), DefaultOperating())
	if spread.DryoutCells >= st.DryoutCells {
		t.Fatalf("spread load should dry out fewer cells: %d vs %d", spread.DryoutCells, st.DryoutCells)
	}
}

func TestEvaporateErrors(t *testing.T) {
	d := DefaultDesign()
	grid := testGrid()
	if _, err := d.Evaporate(grid, make([]float64, 3), DefaultOperating()); err == nil {
		t.Fatal("wrong heat length must error")
	}
	bad := DefaultDesign()
	bad.FillingRatio = 0
	if _, err := bad.Evaporate(grid, uniformHeat(grid, 10), DefaultOperating()); err == nil {
		t.Fatal("invalid design must error")
	}
	if _, err := d.Evaporate(grid, uniformHeat(grid, 10), Operating{}); err == nil {
		t.Fatal("invalid operating point must error")
	}
	// Near-zero heat must still produce a state (idle CPU).
	st, err := d.Evaporate(grid, make([]float64, grid.Cells()), DefaultOperating())
	if err != nil || st == nil {
		t.Fatalf("idle evaporation failed: %v", err)
	}
}

func TestAlternativeRefrigerants(t *testing.T) {
	grid := testGrid()
	for _, fl := range refrigerant.Candidates() {
		d := DefaultDesign()
		d.Fluid = fl
		st, err := d.Evaporate(grid, uniformHeat(grid, 70), DefaultOperating())
		if err != nil {
			t.Fatalf("%s: %v", fl.Name(), err)
		}
		if st.Loop.MassFlowKgS <= 0 {
			t.Fatalf("%s: no circulation", fl.Name())
		}
	}
}

// Property: across random loads and water settings, the condensing
// temperature stays above the water inlet and the loop balances.
func TestSolveProperty(t *testing.T) {
	d := DefaultDesign()
	f := func(qRaw, twRaw, flowRaw float64) bool {
		q := 20 + math.Mod(math.Abs(qRaw), 80)
		tw := 15 + math.Mod(math.Abs(twRaw), 25)
		flow := 3 + math.Mod(math.Abs(flowRaw), 15)
		if math.IsNaN(q) || math.IsNaN(tw) || math.IsNaN(flow) {
			return true
		}
		cond, err := d.Condense(q, Operating{WaterInC: tw, WaterFlowKgH: flow})
		if err != nil || cond.TsatC <= tw {
			return false
		}
		loop, err := d.SolveLoop(q, cond.TsatC)
		if err != nil || loop.MassFlowKgS <= 0 {
			return false
		}
		return math.Abs(loop.DrivingHeadPa-loop.FrictionPa) < 0.02*loop.DrivingHeadPa+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaporateIntoMatchesEvaporate: the state-reusing variant must return
// bit-identical fields for every orientation, and must actually recycle
// the buffers it is given.
func TestEvaporateIntoMatchesEvaporate(t *testing.T) {
	grid := floorplan.NewGrid(10, 8, 0.02, 0.016)
	q := make([]float64, grid.Cells())
	for i := range q {
		q[i] = 0.3 + 0.05*float64(i%5)
	}
	op := DefaultOperating()
	for _, o := range Orientations() {
		d := DefaultDesign()
		d.Orientation = o
		fresh, err := d.Evaporate(grid, q, op)
		if err != nil {
			t.Fatal(err)
		}
		// First call allocates; second call must reuse st's buffers.
		st, err := d.EvaporateInto(nil, grid, q, op)
		if err != nil {
			t.Fatal(err)
		}
		prevH := &st.H[0]
		st2, err := d.EvaporateInto(st, grid, q, op)
		if err != nil {
			t.Fatal(err)
		}
		if st2 != st || &st2.H[0] != prevH {
			t.Fatalf("%v: EvaporateInto did not reuse the state", o)
		}
		if st2.TotalHeatW != fresh.TotalHeatW || st2.MaxQuality != fresh.MaxQuality ||
			st2.DryoutCells != fresh.DryoutCells || st2.Loop != fresh.Loop || st2.Condenser != fresh.Condenser {
			t.Fatalf("%v: summary differs: %+v vs %+v", o, st2, fresh)
		}
		for i := range fresh.H {
			if st2.H[i] != fresh.H[i] || st2.TFluid[i] != fresh.TFluid[i] {
				t.Fatalf("%v: cell %d differs", o, i)
			}
		}
	}
}

// TestChannelSpanMatchesPath: the allocation-free span iteration must
// visit exactly the cells channelPath lists, in order.
func TestChannelSpanMatchesPath(t *testing.T) {
	grid := floorplan.NewGrid(7, 5, 0.02, 0.016)
	for _, o := range Orientations() {
		for ch := 0; ch < channelCount(o, grid); ch++ {
			path := channelPath(o, grid, ch)
			start, stride, n := channelSpan(o, grid, ch)
			if n != len(path) {
				t.Fatalf("%v ch %d: span length %d vs path %d", o, ch, n, len(path))
			}
			for pos, c := range path {
				if got := start + pos*stride; got != c {
					t.Fatalf("%v ch %d pos %d: span %d vs path %d", o, ch, pos, got, c)
				}
			}
		}
	}
}
