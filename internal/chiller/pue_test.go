package chiller

import (
	"math"
	"testing"
)

func TestPUEBasics(t *testing.T) {
	// No cooling at all: PUE is just the facility overhead.
	p, err := PUE(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.04) > 1e-12 {
		t.Fatalf("PUE with no cooling = %v, want 1.04", p)
	}
	if _, err := PUE(0, 10); err == nil {
		t.Fatal("zero IT power must error")
	}
	if _, err := PUE(100, -1); err == nil {
		t.Fatal("negative cooling must error")
	}
}

func TestThermosyphonPUEApproachesPrototype(t *testing.T) {
	// Hot-water operation (45 °C water, free cooling against a 35 °C
	// ambient) is how the prototype of [8] reaches PUE 1.05: only the
	// facility overhead remains.
	free, err := ThermosyphonPUE(10000, 45, 35)
	if err != nil {
		t.Fatal(err)
	}
	if free < 1.02 || free > 1.06 {
		t.Fatalf("free-cooling PUE = %.3f, want ≈1.05", free)
	}
	// Chilled 30 °C water against 35 °C ambient costs a little more but
	// stays far below the air-cooled reference.
	p, err := ThermosyphonPUE(10000, 30, 35)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1.06 || p > 1.20 {
		t.Fatalf("chilled thermosyphon PUE = %.3f outside band", p)
	}
}

func TestAirCooledPUEMatchesSurvey(t *testing.T) {
	p, err := AirCooledPUE(10000)
	if err != nil {
		t.Fatal(err)
	}
	// §I cites ≈1.65 for air-cooled facilities; the 30% cooling share
	// reconstruction must land nearby.
	if p < 1.45 || p > 1.75 {
		t.Fatalf("air-cooled PUE = %.3f, want ≈1.65", p)
	}
}

func TestPUEOrdering(t *testing.T) {
	air, _ := AirCooledPUE(10000)
	syph, _ := ThermosyphonPUE(10000, 30, 35)
	cold, _ := ThermosyphonPUE(10000, 15, 35)
	if !(syph < air) {
		t.Fatalf("thermosyphon %.3f should beat air %.3f", syph, air)
	}
	if !(syph < cold) {
		t.Fatalf("warm water %.3f should beat cold water %.3f", syph, cold)
	}
}
