package chiller

import (
	"math"
	"testing"
)

func TestPlantAssessAggregates(t *testing.T) {
	loads := []LoopLoad{
		{Name: "loop0", FlowKgH: 28, SupplyC: 30, ReturnC: 36, AmbientC: 35},
		{Name: "loop1", FlowKgH: 14, SupplyC: 27, ReturnC: 35, AmbientC: 35},
	}
	rep, err := PlantAssess(2000, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 2 {
		t.Fatalf("got %d loop budgets", len(rep.Loops))
	}
	var heat, elec float64
	for _, l := range rep.Loops {
		heat += l.HeatW
		elec += l.ChillerPowerW
		if l.COP <= 0 {
			t.Fatalf("loop %s COP %.3f", l.Name, l.COP)
		}
	}
	if math.Abs(heat-rep.HeatW) > 1e-9 || math.Abs(elec-rep.ChillerPowerW) > 1e-9 {
		t.Fatal("plant totals must equal the per-loop sums")
	}
	if rep.HeatW <= 0 || rep.ChillerPowerW <= 0 {
		t.Fatalf("implausible plant: heat %.1f W, chiller %.1f W", rep.HeatW, rep.ChillerPowerW)
	}
	if rep.MeanCOP <= 0 || math.Abs(rep.MeanCOP-rep.HeatW/rep.ChillerPowerW) > 1e-9 {
		t.Fatalf("mean COP %.3f inconsistent", rep.MeanCOP)
	}
	if rep.PUE <= 1 {
		t.Fatalf("PUE %.3f must exceed 1", rep.PUE)
	}
}

func TestPlantAssessFreeCooling(t *testing.T) {
	// Supply above ambient: outside air does the job, no chiller power.
	rep, err := PlantAssess(1000, []LoopLoad{{FlowKgH: 14, SupplyC: 45, ReturnC: 50, AmbientC: 35}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChillerPowerW > 1e-2 {
		t.Fatalf("free cooling should cost ~nothing, got %.3f W", rep.ChillerPowerW)
	}
	if rep.MeanCOP < 1e5 {
		t.Fatalf("free-cooled mean COP should be effectively unbounded, got %.3f", rep.MeanCOP)
	}
}

func TestPlantAssessErrors(t *testing.T) {
	// Inverted loop temperatures propagate the Assess error with the loop name.
	if _, err := PlantAssess(1000, []LoopLoad{{Name: "bad", FlowKgH: 14, SupplyC: 40, ReturnC: 30, AmbientC: 35}}); err == nil {
		t.Fatal("inverted loop temperatures must error")
	}
	// Non-positive IT power fails the PUE accounting.
	if _, err := PlantAssess(0, []LoopLoad{{FlowKgH: 14, SupplyC: 30, ReturnC: 35, AmbientC: 35}}); err == nil {
		t.Fatal("zero IT power must error")
	}
}
