package chiller

import (
	"fmt"
	"math"
)

// The datacenter-scale nested solve aggregates many shared water loops
// into one chiller plant: each loop returns warm water at its own flow and
// temperatures, the plant removes the combined heat electrically, and the
// facility is judged by the resulting PUE. This file provides that
// aggregation on top of the per-loop Assess/COP models.

// LoopLoad is one water loop's converged operating point as the plant
// sees it: total flow, supply (what the plant must produce) and return
// (what the blades send back) temperatures.
type LoopLoad struct {
	// Name labels the loop in the per-loop breakdown.
	Name string
	// FlowKgH is the total loop water flow.
	FlowKgH float64
	// SupplyC is the water temperature the plant delivers to the loop.
	SupplyC float64
	// ReturnC is the water temperature coming back from the blades.
	ReturnC float64
	// AmbientC is the heat-rejection temperature for this loop's chiller.
	AmbientC float64
}

// LoopBudget is one loop's share of the plant assessment.
type LoopBudget struct {
	Name string
	Budget
	// COP is the chiller coefficient of performance at this loop's
	// supply temperature.
	COP float64
}

// PlantReport aggregates a chiller plant serving several water loops.
type PlantReport struct {
	// Loops is the per-loop breakdown, in input order.
	Loops []LoopBudget
	// HeatW is the total heat the plant removes.
	HeatW float64
	// ChillerPowerW is the total electrical draw of the chillers.
	ChillerPowerW float64
	// MeanCOP is the load-weighted coefficient of performance
	// (HeatW / ChillerPowerW); effectively unbounded (or +Inf at zero
	// load) when every loop is free-cooled.
	MeanCOP float64
	// PUE is the facility power usage effectiveness for the given IT load.
	PUE float64
}

// PlantAssess prices a chiller plant cooling the given loops, for a
// facility whose IT equipment draws itPowerW. Loops are priced
// independently (each chiller produces its loop's supply temperature
// against its loop's ambient) and summed in input order, so the report is
// deterministic for a fixed loop list.
func PlantAssess(itPowerW float64, loads []LoopLoad) (PlantReport, error) {
	var rep PlantReport
	rep.Loops = make([]LoopBudget, 0, len(loads))
	for i, l := range loads {
		b, err := Assess(l.FlowKgH, l.SupplyC, l.ReturnC, l.AmbientC)
		if err != nil {
			return PlantReport{}, fmt.Errorf("chiller: loop %d (%s): %w", i, l.Name, err)
		}
		rep.Loops = append(rep.Loops, LoopBudget{Name: l.Name, Budget: b, COP: COP(l.SupplyC, l.AmbientC)})
		rep.HeatW += b.HeatW
		rep.ChillerPowerW += b.ChillerPowerW
	}
	if rep.ChillerPowerW > 0 {
		rep.MeanCOP = rep.HeatW / rep.ChillerPowerW
	} else {
		rep.MeanCOP = math.Inf(1) // free cooling everywhere
	}
	pue, err := PUE(itPowerW, rep.ChillerPowerW)
	if err != nil {
		return PlantReport{}, err
	}
	rep.PUE = pue
	return rep, nil
}
