package chiller

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoolingPowerEq1(t *testing.T) {
	// 7 kg/h heated by 6 °C: P = (7/3600)·cp(30)·6 ≈ 48.7 W.
	got := CoolingPower(7, 30, 6)
	want := 7.0 / 3600 * 4178 * 6
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("Eq1 power = %v, want %v", got, want)
	}
	if CoolingPower(-1, 30, 6) != 0 {
		t.Fatal("negative flow must give zero")
	}
	if CoolingPower(7, 30, 0) != 0 {
		t.Fatal("zero deltaT must give zero")
	}
}

func TestEq1PaperRatio(t *testing.T) {
	// §VIII-B: the proposed approach sees ΔT = 6 °C, the baseline 11 °C at
	// the same flow: the power ratio must be 6/11 → a 45% reduction.
	p6 := CoolingPower(7, 30, 6)
	p11 := CoolingPower(7, 20, 11)
	reduction := 1 - p6/p11
	if reduction < 0.44 || reduction > 0.47 {
		t.Fatalf("cooling power reduction %.3f, paper reports ≈45%%", reduction)
	}
}

func TestCOPBehaviour(t *testing.T) {
	// Colder water is more expensive.
	if COP(20, 35) >= COP(30, 35) {
		t.Fatal("COP must fall as water gets colder")
	}
	// Free cooling at/above ambient+approach.
	if COP(60, 35) < 1e5 {
		t.Fatal("above-ambient water should be free")
	}
	if c := COP(20, 35); c < 2 || c > 15 {
		t.Fatalf("COP(20,35) = %.1f outside chiller-plausible band", c)
	}
}

func TestElectricalPower(t *testing.T) {
	if ElectricalPower(0, 20, 35) != 0 {
		t.Fatal("no heat, no power")
	}
	if ElectricalPower(-5, 20, 35) != 0 {
		t.Fatal("negative heat, no power")
	}
	cold := ElectricalPower(100, 20, 35)
	warm := ElectricalPower(100, 30, 35)
	if cold <= warm {
		t.Fatal("colder water must cost more electricity")
	}
}

func TestAssess(t *testing.T) {
	b, err := Assess(7, 30, 36, 35)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.WaterDeltaT-6) > 1e-12 {
		t.Fatalf("deltaT %v", b.WaterDeltaT)
	}
	if b.Eq1PowerW != b.HeatW {
		t.Fatal("Eq1 power is the water-side heat by definition")
	}
	if b.ChillerPowerW <= 0 {
		t.Fatal("sub-ambient water needs chiller power")
	}
	if _, err := Assess(7, 30, 25, 35); err == nil {
		t.Fatal("outlet below inlet must error")
	}
}

// Property: Eq.(1) is linear in both flow and deltaT.
func TestEq1LinearityProperty(t *testing.T) {
	f := func(flowRaw, dtRaw float64) bool {
		flow := math.Mod(math.Abs(flowRaw), 50) + 0.1
		dt := math.Mod(math.Abs(dtRaw), 30) + 0.1
		if math.IsNaN(flow) || math.IsNaN(dt) {
			return true
		}
		p := CoolingPower(flow, 30, dt)
		p2 := CoolingPower(2*flow, 30, dt)
		p3 := CoolingPower(flow, 30, 2*dt)
		return math.Abs(p2-2*p) < 1e-9*p2 && math.Abs(p3-2*p) < 1e-9*p3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
