// Package chiller models the rack-level water cooling system (§VIII-B):
// Eq. (1)'s water-side cooling power and an electrical chiller model whose
// burden grows as the requested water temperature drops below ambient.
package chiller

import (
	"fmt"

	"repro/internal/refrigerant"
)

// CoolingPower implements the paper's Eq. (1): the power (W) required to
// change the temperature of the water stream by deltaT K at the given
// volumetric flow — P = V̇ · ρ · C_w · ΔT. Flow is given in kg/h as the
// paper's operating points are; density and specific heat are evaluated at
// the water temperature.
func CoolingPower(flowKgH, waterC, deltaT float64) float64 {
	if flowKgH < 0 {
		return 0
	}
	mdot := flowKgH / 3600.0 // kg/s = V̇·ρ
	return mdot * refrigerant.WaterCp(waterC) * deltaT
}

// COP returns the coefficient of performance of the rack chiller when
// producing water at waterC against a heat-rejection (ambient) temperature
// ambientC: a fraction of the Carnot COP with a condenser approach. When
// the requested water temperature is at or above ambient, outside air can
// do the job and the COP is effectively unbounded (free cooling).
func COP(waterC, ambientC float64) float64 {
	const (
		carnotFraction = 0.45
		approachK      = 8.0 // condenser approach above ambient
	)
	tCold := waterC + 273.15
	tHot := ambientC + approachK + 273.15
	if tCold >= tHot {
		return 1e6 // free cooling
	}
	return carnotFraction * tCold / (tHot - tCold)
}

// ElectricalPower returns the chiller's electrical draw (W) to remove q
// watts into waterC-degree water against the ambient. Free cooling costs
// (almost) nothing, matching §VIII-B's closing remark.
func ElectricalPower(q, waterC, ambientC float64) float64 {
	if q <= 0 {
		return 0
	}
	return q / COP(waterC, ambientC)
}

// Budget summarizes the cooling cost of one operating point.
type Budget struct {
	// HeatW is the heat carried by the water loop.
	HeatW float64
	// WaterDeltaT is the inlet→outlet water temperature rise.
	WaterDeltaT float64
	// Eq1PowerW is the paper's Eq. (1) water-side power.
	Eq1PowerW float64
	// ChillerPowerW is the electrical power of the chiller.
	ChillerPowerW float64
}

// Assess computes the cooling budget for a loop that heats flowKgH of
// water from waterInC to waterOutC against ambientC.
func Assess(flowKgH, waterInC, waterOutC, ambientC float64) (Budget, error) {
	if waterOutC < waterInC {
		return Budget{}, fmt.Errorf("chiller: outlet %.1f °C below inlet %.1f °C", waterOutC, waterInC)
	}
	dT := waterOutC - waterInC
	q := CoolingPower(flowKgH, waterInC, dT)
	return Budget{
		HeatW:         q,
		WaterDeltaT:   dT,
		Eq1PowerW:     q,
		ChillerPowerW: ElectricalPower(q, waterInC, ambientC),
	}, nil
}
