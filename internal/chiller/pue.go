package chiller

import "fmt"

// The paper motivates two-phase cooling with Power Usage Effectiveness:
// air-cooled facilities sat at PUE ≈ 1.65 in 2013, DCLC reaches 1.17, and
// the thermosyphon prototype of [8] achieves 1.05. This file provides the
// facility-level PUE accounting used to contextualize the chiller results.

// FacilityOverheadFraction is the non-cooling facility overhead (power
// delivery, lighting, UPS losses) as a fraction of IT power.
const FacilityOverheadFraction = 0.04

// PUE computes Power Usage Effectiveness: total facility power over IT
// power, where cooling is the dominant non-IT load.
func PUE(itPowerW, coolingPowerW float64) (float64, error) {
	if itPowerW <= 0 {
		return 0, fmt.Errorf("chiller: non-positive IT power %g", itPowerW)
	}
	if coolingPowerW < 0 {
		return 0, fmt.Errorf("chiller: negative cooling power %g", coolingPowerW)
	}
	overhead := FacilityOverheadFraction * itPowerW
	return (itPowerW + coolingPowerW + overhead) / itPowerW, nil
}

// Reference PUE values the paper quotes (§I).
const (
	// PUEAirCooled2013 is the industry survey value the paper cites.
	PUEAirCooled2013 = 1.65
	// PUEDirectLiquid is the DCLC figure of [6].
	PUEDirectLiquid = 1.17
	// PUEThermosyphon is the prototype figure of [8].
	PUEThermosyphon = 1.05
)

// ThermosyphonPUE estimates the facility PUE of a rack whose blades
// dissipate itPowerW and whose shared loop runs at waterC against
// ambientC: the chiller electrical power is the cooling load; pumping
// power is zero by construction (gravity-driven loop), which is the
// technology's whole point.
func ThermosyphonPUE(itPowerW, waterC, ambientC float64) (float64, error) {
	cooling := ElectricalPower(itPowerW, waterC, ambientC)
	return PUE(itPowerW, cooling)
}

// AirCooledPUE estimates the PUE of a conventional air-cooled facility
// moving the same heat: CRAC fans plus a lower-COP air-side chiller,
// folded into an effective cooling-to-IT ratio calibrated to the paper's
// 30 % cooling share (§I).
func AirCooledPUE(itPowerW float64) (float64, error) {
	const coolingShare = 0.30 // of total facility energy (§I)
	// cooling = share·(it + cooling + overhead) ⇒ solve for cooling.
	overhead := FacilityOverheadFraction * itPowerW
	cooling := coolingShare * (itPowerW + overhead) / (1 - coolingShare)
	return PUE(itPowerW, cooling)
}
