// Package refrigerant provides saturation property tables for the working
// fluids considered in the thermosyphon design study (§VI-B): R236fa (the
// paper's chosen refrigerant), R134a and R245fa as design alternatives, and
// liquid water for the condenser coolant loop.
//
// Property values are piecewise-linear fits of published saturation tables,
// adequate for the compact two-phase model: the simulator needs correct
// magnitudes and monotone trends, not equation-of-state accuracy.
package refrigerant

import (
	"fmt"

	"repro/internal/linalg"
)

// Fluid exposes saturation-line properties of a refrigerant as functions of
// saturation temperature in °C. All outputs are SI: Pa, J/kg, kg/m³,
// J/(kg·K), W/(m·K), Pa·s, N/m.
type Fluid struct {
	name string
	// Tables keyed by saturation temperature (°C).
	psat  *linalg.Table1D // saturation pressure (kPa in table, returned as Pa)
	hfg   *linalg.Table1D // latent heat (kJ/kg in table, returned as J/kg)
	rhoL  *linalg.Table1D // liquid density kg/m³
	rhoV  *linalg.Table1D // vapor density kg/m³
	cpL   *linalg.Table1D // liquid specific heat J/(kg·K)
	kL    *linalg.Table1D // liquid conductivity W/(m·K)
	muL   *linalg.Table1D // liquid viscosity Pa·s
	sigma *linalg.Table1D // surface tension N/m
	tsat  *linalg.Table1D // inverse: kPa → °C
}

// Name returns the refrigerant designation (e.g. "R236fa").
func (f *Fluid) Name() string { return f.name }

// TempRange returns the validity range of the tables in °C.
func (f *Fluid) TempRange() (lo, hi float64) { return f.psat.Min(), f.psat.Max() }

// SatPressure returns the saturation pressure (Pa) at tC (°C).
func (f *Fluid) SatPressure(tC float64) float64 { return f.psat.At(tC) * 1e3 }

// SatTemperature returns the saturation temperature (°C) at pressure p (Pa).
func (f *Fluid) SatTemperature(p float64) float64 { return f.tsat.At(p / 1e3) }

// Hfg returns the latent heat of vaporization (J/kg) at tC.
func (f *Fluid) Hfg(tC float64) float64 { return f.hfg.At(tC) * 1e3 }

// RhoLiquid returns the saturated liquid density (kg/m³) at tC.
func (f *Fluid) RhoLiquid(tC float64) float64 { return f.rhoL.At(tC) }

// RhoVapor returns the saturated vapor density (kg/m³) at tC.
func (f *Fluid) RhoVapor(tC float64) float64 { return f.rhoV.At(tC) }

// CpLiquid returns the saturated liquid specific heat (J/kg·K) at tC.
func (f *Fluid) CpLiquid(tC float64) float64 { return f.cpL.At(tC) }

// KLiquid returns the saturated liquid thermal conductivity (W/m·K) at tC.
func (f *Fluid) KLiquid(tC float64) float64 { return f.kL.At(tC) }

// MuLiquid returns the saturated liquid dynamic viscosity (Pa·s) at tC.
func (f *Fluid) MuLiquid(tC float64) float64 { return f.muL.At(tC) }

// SurfaceTension returns the vapor-liquid surface tension (N/m) at tC.
func (f *Fluid) SurfaceTension(tC float64) float64 { return f.sigma.At(tC) }

// PrandtlLiquid returns the liquid Prandtl number at tC.
func (f *Fluid) PrandtlLiquid(tC float64) float64 {
	return f.CpLiquid(tC) * f.MuLiquid(tC) / f.KLiquid(tC)
}

func newFluid(name string, tC, psatKPa, hfgKJ, rhoL, rhoV, cpL, kL, muL, sigma []float64) *Fluid {
	f := &Fluid{
		name:  name,
		psat:  linalg.MustTable1D(tC, psatKPa),
		hfg:   linalg.MustTable1D(tC, hfgKJ),
		rhoL:  linalg.MustTable1D(tC, rhoL),
		rhoV:  linalg.MustTable1D(tC, rhoV),
		cpL:   linalg.MustTable1D(tC, cpL),
		kL:    linalg.MustTable1D(tC, kL),
		muL:   linalg.MustTable1D(tC, muL),
		sigma: linalg.MustTable1D(tC, sigma),
	}
	inv, err := f.psat.Inverse()
	if err != nil {
		panic(fmt.Sprintf("refrigerant %s: %v", name, err))
	}
	f.tsat = inv
	return f
}

var r236fa = newFluid("R236fa",
	[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80},
	[]float64{106, 155, 220, 305, 413, 546, 709, 905, 1137},                           // kPa
	[]float64{153, 149, 145, 140, 135, 129, 123, 116, 108},                            // kJ/kg
	[]float64{1418, 1390, 1362, 1332, 1300, 1266, 1230, 1191, 1148},                   // kg/m³ liquid
	[]float64{7.8, 11.1, 15.3, 20.9, 27.9, 36.7, 47.7, 61.4, 78.5},                    // kg/m³ vapor
	[]float64{1210, 1235, 1260, 1290, 1320, 1355, 1390, 1435, 1480},                   // J/kg·K
	[]float64{0.0790, 0.0768, 0.0745, 0.0723, 0.0700, 0.0678, 0.0655, 0.0633, 0.0610}, // W/m·K
	[]float64{350e-6, 324e-6, 300e-6, 277e-6, 255e-6, 234e-6, 215e-6, 197e-6, 180e-6}, // Pa·s
	[]float64{0.0135, 0.0121, 0.0107, 0.0094, 0.0082, 0.0070, 0.0058, 0.0047, 0.0036}, // N/m
)

var r134a = newFluid("R134a",
	[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80},
	[]float64{293, 415, 572, 770, 1017, 1318, 1682, 2117, 2633},
	[]float64{199, 191, 182, 173, 163, 152, 139, 124, 106},
	[]float64{1295, 1261, 1225, 1187, 1147, 1102, 1053, 996, 928},
	[]float64{14.4, 20.2, 27.8, 37.5, 50.1, 66.3, 87.4, 115.6, 155.1},
	[]float64{1341, 1381, 1425, 1477, 1538, 1615, 1730, 1906, 2230},
	[]float64{0.0920, 0.0875, 0.0830, 0.0788, 0.0747, 0.0700, 0.0655, 0.0605, 0.0550},
	[]float64{267e-6, 235e-6, 207e-6, 183e-6, 161e-6, 142e-6, 124e-6, 107e-6, 91e-6},
	[]float64{0.0115, 0.0098, 0.0082, 0.0066, 0.0051, 0.0037, 0.0024, 0.0013, 0.0004},
)

var r245fa = newFluid("R245fa",
	[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80},
	[]float64{53.4, 82.5, 123, 178, 251, 345, 464, 611, 790},
	[]float64{202, 197, 192, 186, 180, 173, 166, 158, 149},
	[]float64{1404, 1378, 1352, 1325, 1297, 1267, 1236, 1203, 1168},
	[]float64{3.1, 4.8, 6.8, 9.7, 13.5, 18.3, 24.5, 32.2, 41.5},
	[]float64{1280, 1300, 1322, 1346, 1372, 1401, 1434, 1472, 1514},
	[]float64{0.0940, 0.0910, 0.0880, 0.0850, 0.0820, 0.0790, 0.0760, 0.0730, 0.0700},
	[]float64{512e-6, 452e-6, 402e-6, 358e-6, 319e-6, 285e-6, 255e-6, 228e-6, 204e-6},
	[]float64{0.0173, 0.0159, 0.0146, 0.0132, 0.0119, 0.0105, 0.0092, 0.0079, 0.0066},
)

// r1234ze is the low-GWP HFO alternative (R1234ze(E)): the forward-looking
// candidate for two-phase cooling as high-GWP HFCs like R236fa phase out.
var r1234ze = newFluid("R1234ze",
	[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80},
	[]float64{216, 309, 428, 579, 766, 998, 1279, 1618, 2024},
	[]float64{184, 177, 170, 163, 155, 146, 136, 124, 110},
	[]float64{1240, 1208, 1176, 1141, 1103, 1062, 1016, 964, 903},
	[]float64{11.7, 16.0, 21.5, 28.4, 37.1, 48.0, 61.9, 79.6, 102.7},
	[]float64{1320, 1355, 1390, 1430, 1475, 1530, 1600, 1695, 1830},
	[]float64{0.0830, 0.0800, 0.0770, 0.0741, 0.0712, 0.0683, 0.0654, 0.0625, 0.0596},
	[]float64{280e-6, 250e-6, 224e-6, 201e-6, 180e-6, 161e-6, 144e-6, 128e-6, 113e-6},
	[]float64{0.0131, 0.0117, 0.0103, 0.0089, 0.0076, 0.0063, 0.0050, 0.0038, 0.0026},
)

// R236fa returns the paper's chosen refrigerant (§VI-B).
func R236fa() *Fluid { return r236fa }

// R134a returns the R134a design alternative.
func R134a() *Fluid { return r134a }

// R245fa returns the R245fa design alternative.
func R245fa() *Fluid { return r245fa }

// R1234ze returns the low-GWP HFO alternative — a forward-looking
// extension beyond the paper's candidate set.
func R1234ze() *Fluid { return r1234ze }

// Candidates returns the refrigerants the design-space study evaluates.
func Candidates() []*Fluid { return []*Fluid{r236fa, r134a, r245fa, r1234ze} }

// ByName returns a candidate fluid by designation.
func ByName(name string) (*Fluid, error) {
	for _, f := range Candidates() {
		if f.name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("refrigerant: unknown fluid %q", name)
}

// Liquid water properties for the condenser coolant loop, evaluated at
// temperature tC in 0–90 °C.
var (
	waterRho = linalg.MustTable1D(
		[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90},
		[]float64{999.8, 999.7, 998.2, 995.7, 992.2, 988.0, 983.2, 977.8, 971.8, 965.3})
	waterCp = linalg.MustTable1D(
		[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90},
		[]float64{4217, 4192, 4182, 4178, 4179, 4181, 4185, 4190, 4197, 4205})
	waterK = linalg.MustTable1D(
		[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90},
		[]float64{0.561, 0.580, 0.598, 0.615, 0.631, 0.644, 0.654, 0.663, 0.670, 0.675})
	waterMu = linalg.MustTable1D(
		[]float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90},
		[]float64{1.787e-3, 1.306e-3, 1.002e-3, 0.798e-3, 0.653e-3, 0.547e-3, 0.467e-3, 0.404e-3, 0.355e-3, 0.315e-3})
)

// WaterDensity returns liquid water density (kg/m³) at tC (°C).
func WaterDensity(tC float64) float64 { return waterRho.At(tC) }

// WaterCp returns liquid water specific heat (J/kg·K) at tC.
func WaterCp(tC float64) float64 { return waterCp.At(tC) }

// WaterK returns liquid water thermal conductivity (W/m·K) at tC.
func WaterK(tC float64) float64 { return waterK.At(tC) }

// WaterMu returns liquid water dynamic viscosity (Pa·s) at tC.
func WaterMu(tC float64) float64 { return waterMu.At(tC) }
