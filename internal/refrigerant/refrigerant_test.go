package refrigerant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCandidates(t *testing.T) {
	cs := Candidates()
	if len(cs) != 4 {
		t.Fatalf("got %d candidates", len(cs))
	}
	for _, f := range cs {
		if f.Name() == "" {
			t.Fatal("unnamed fluid")
		}
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("R236fa")
	if err != nil || f.Name() != "R236fa" {
		t.Fatalf("ByName: %v %v", f, err)
	}
	if _, err := ByName("R12"); err == nil {
		t.Fatal("unknown fluid must error")
	}
}

func TestR236faAnchorValues(t *testing.T) {
	f := R236fa()
	// Published anchors (±10%): Psat(30°C) ≈ 320 kPa, hfg(30°C) ≈ 140 kJ/kg,
	// ρl(25°C) ≈ 1360 kg/m³.
	if p := f.SatPressure(30); p < 270e3 || p > 350e3 {
		t.Fatalf("Psat(30) = %v Pa", p)
	}
	if h := f.Hfg(30); h < 126e3 || h > 154e3 {
		t.Fatalf("hfg(30) = %v", h)
	}
	if r := f.RhoLiquid(25); r < 1290 || r > 1430 {
		t.Fatalf("rhoL(25) = %v", r)
	}
}

func TestSaturationRoundTrip(t *testing.T) {
	for _, f := range Candidates() {
		lo, hi := f.TempRange()
		for tC := lo; tC <= hi; tC += 5 {
			p := f.SatPressure(tC)
			back := f.SatTemperature(p)
			if math.Abs(back-tC) > 0.75 {
				t.Fatalf("%s: Tsat(Psat(%v)) = %v", f.Name(), tC, back)
			}
		}
	}
}

func TestMonotoneTrends(t *testing.T) {
	for _, f := range Candidates() {
		lo, hi := f.TempRange()
		prev := struct{ p, h, rl, rv, sg float64 }{
			f.SatPressure(lo), f.Hfg(lo), f.RhoLiquid(lo), f.RhoVapor(lo), f.SurfaceTension(lo),
		}
		for tC := lo + 1; tC <= hi; tC++ {
			cur := struct{ p, h, rl, rv, sg float64 }{
				f.SatPressure(tC), f.Hfg(tC), f.RhoLiquid(tC), f.RhoVapor(tC), f.SurfaceTension(tC),
			}
			if cur.p <= prev.p {
				t.Fatalf("%s: Psat not increasing at %v °C", f.Name(), tC)
			}
			if cur.h >= prev.h {
				t.Fatalf("%s: hfg not decreasing at %v °C", f.Name(), tC)
			}
			if cur.rl >= prev.rl {
				t.Fatalf("%s: rhoL not decreasing at %v °C", f.Name(), tC)
			}
			if cur.rv <= prev.rv {
				t.Fatalf("%s: rhoV not increasing at %v °C", f.Name(), tC)
			}
			if cur.sg >= prev.sg {
				t.Fatalf("%s: sigma not decreasing at %v °C", f.Name(), tC)
			}
			prev = cur
		}
	}
}

func TestVaporLighterThanLiquid(t *testing.T) {
	for _, f := range Candidates() {
		lo, hi := f.TempRange()
		for tC := lo; tC <= hi; tC += 2 {
			if f.RhoVapor(tC) >= f.RhoLiquid(tC) {
				t.Fatalf("%s at %v °C: vapor denser than liquid", f.Name(), tC)
			}
		}
	}
}

func TestPrandtlPlausible(t *testing.T) {
	for _, f := range Candidates() {
		pr := f.PrandtlLiquid(30)
		if pr < 2 || pr > 10 {
			t.Fatalf("%s Prandtl(30) = %v, out of refrigerant range", f.Name(), pr)
		}
	}
}

func TestR134aHigherPressureThanR236fa(t *testing.T) {
	// R134a is the higher-pressure fluid at any temperature; this ordering
	// is what the design study exploits.
	for tC := 0.0; tC <= 80; tC += 10 {
		if R134a().SatPressure(tC) <= R236fa().SatPressure(tC) {
			t.Fatalf("R134a should exceed R236fa pressure at %v °C", tC)
		}
		if R245fa().SatPressure(tC) >= R236fa().SatPressure(tC) {
			t.Fatalf("R245fa should be below R236fa pressure at %v °C", tC)
		}
	}
}

func TestWaterProperties(t *testing.T) {
	if rho := WaterDensity(30); math.Abs(rho-995.7) > 0.5 {
		t.Fatalf("water rho(30) = %v", rho)
	}
	if cp := WaterCp(30); math.Abs(cp-4178) > 5 {
		t.Fatalf("water cp(30) = %v", cp)
	}
	if k := WaterK(30); math.Abs(k-0.615) > 0.005 {
		t.Fatalf("water k(30) = %v", k)
	}
	if mu := WaterMu(30); math.Abs(mu-0.798e-3) > 1e-5 {
		t.Fatalf("water mu(30) = %v", mu)
	}
}

// Property: saturation round trip holds for random temperatures in range.
func TestSatRoundTripProperty(t *testing.T) {
	f := R236fa()
	lo, hi := f.TempRange()
	check := func(x float64) bool {
		tC := lo + math.Mod(math.Abs(x), hi-lo)
		if math.IsNaN(tC) {
			return true
		}
		return math.Abs(f.SatTemperature(f.SatPressure(tC))-tC) < 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
