// Package report renders a complete markdown reproduction report. It is a
// thin generic renderer over the experiments registry: every registered
// experiment runs under one RunConfig and emits its markdown section, so
// adding an experiment to the registry adds it to the report with no
// changes here.
package report

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/experiments"
)

// Generate runs the given experiments under the config and renders the
// reproduction report as markdown; a nil selection means every
// registered experiment in registration order. Cancelling ctx aborts the
// run inside the current experiment.
func Generate(ctx context.Context, cfg experiments.RunConfig, selected []experiments.Experiment) (string, error) {
	if selected == nil {
		selected = experiments.All()
	}
	var sb strings.Builder
	sb.WriteString("# Reproduction report\n\n")
	fmt.Fprintf(&sb, "Thermal resolution: %s. Solver: %s.\n\n", cfg.Resolution, cfg.Solver)

	for _, e := range selected {
		r, err := e.Run(ctx, cfg)
		if err != nil {
			return "", fmt.Errorf("%s: %w", e.Name, err)
		}
		sb.WriteString(r.Markdown())
	}
	return sb.String(), nil
}
