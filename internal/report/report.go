// Package report renders a complete markdown reproduction report: every
// table and figure regenerated at the requested resolution, formatted next
// to the paper's published values.
package report

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// Generate runs all experiments at the resolution and renders the
// reproduction report as markdown.
func Generate(res experiments.Resolution) (string, error) {
	var sb strings.Builder
	sb.WriteString("# Reproduction report\n\n")
	fmt.Fprintf(&sb, "Thermal resolution: %s.\n\n", res)

	if err := fig2(&sb, res); err != nil {
		return "", err
	}
	if err := tableI(&sb); err != nil {
		return "", err
	}
	if err := fig5(&sb, res); err != nil {
		return "", err
	}
	if err := fig6(&sb, res); err != nil {
		return "", err
	}
	if err := tableII(&sb, res); err != nil {
		return "", err
	}
	if err := fig7(&sb, res); err != nil {
		return "", err
	}
	if err := cooling(&sb, res); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func fig2(sb *strings.Builder, res experiments.Resolution) error {
	r, err := experiments.Fig2DieVsPackage(res)
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 2 — die vs package (non-optimized stack)\n\n")
	sb.WriteString("| plane | θmax (paper) | θmax | θavg (paper) | θavg | ∇θmax (paper) | ∇θmax |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	fmt.Fprintf(sb, "| die | 66.1 | %.1f | 55.9 | %.1f | 6.6 | %.2f |\n",
		r.Die.MaxC, r.Die.MeanC, r.Die.MaxGradCPerMM)
	fmt.Fprintf(sb, "| package | 46.4 | %.1f | 42.9 | %.1f | 0.5 | %.2f |\n\n",
		r.Pkg.MaxC, r.Pkg.MeanC, r.Pkg.MaxGradCPerMM)
	return nil
}

func tableI(sb *strings.Builder) error {
	sb.WriteString("## Table I — C-state power (exact calibration)\n\n")
	sb.WriteString("| state | 2.6 GHz | 2.9 GHz | 3.2 GHz |\n|---|---|---|---|\n")
	for _, r := range experiments.TableICStatePower() {
		fmt.Fprintf(sb, "| %s | %.0f | %.0f | %.0f |\n", r.State, r.PowerW[0], r.PowerW[1], r.PowerW[2])
	}
	sb.WriteString("\n")
	return nil
}

func fig5(sb *strings.Builder, res experiments.Resolution) error {
	rows, err := experiments.Fig5Orientation(res)
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 5 — orientation (paper: D1 die 73.2 pkg 52.7; D2 die 79.4 pkg 53.5)\n\n")
	sb.WriteString("| orientation | die θmax | pkg θmax |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(sb, "| %s | %.1f | %.1f |\n", r.Orientation, r.Die.MaxC, r.Pkg.MaxC)
	}
	sb.WriteString("\n")
	return nil
}

func fig6(sb *strings.Builder, res experiments.Resolution) error {
	rows, err := experiments.Fig6MappingScenarios(res)
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 6 — mappings × C-state (paper θmax POLL 68.2/65.0/77.6, C1 57.1/64.2/73.3)\n\n")
	sb.WriteString("| scenario | idle | θmax | θavg | ∇θmax |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(sb, "| %s | %s | %.1f | %.1f | %.2f |\n",
			r.Scenario, r.Idle, r.Die.MaxC, r.Die.MeanC, r.Die.MaxGradCPerMM)
	}
	sb.WriteString("\n")
	return nil
}

func tableII(sb *strings.Builder, res experiments.Resolution) error {
	rows, err := experiments.TableIIPolicyComparison(res, nil)
	if err != nil {
		return err
	}
	sb.WriteString("## Table II — policy stacks × QoS (13-benchmark average)\n\n")
	sb.WriteString("| approach | QoS | die θmax | die ∇θmax | pkg θmax | pkg ∇θmax | avg W |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(sb, "| %s | %s | %.1f | %.2f | %.1f | %.2f | %.1f |\n",
			r.Approach, r.QoS, r.DieMaxC, r.DieGradCPerMM, r.PkgMaxC, r.PkgGradCPerMM, r.AvgPowerW)
	}
	sb.WriteString("\n")
	return nil
}

func fig7(sb *strings.Builder, res experiments.Resolution) error {
	r, err := experiments.Fig7ThermalMaps(res)
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 7 — sample die maps at 2x (paper: 71.5 vs 78.2 °C)\n\n")
	fmt.Fprintf(sb, "Proposed (%s): **%.1f °C** vs state of the art: **%.1f °C** — gap %.1f °C.\n\n",
		r.ProposedBench, r.ProposedMax, r.SoAMax, r.SoAMax-r.ProposedMax)
	return nil
}

func cooling(sb *strings.Builder, res experiments.Resolution) error {
	r, err := experiments.CoolingPowerStudy(res)
	if err != nil {
		return err
	}
	sb.WriteString("## §VIII-B — cooling power (paper: 20 °C water w/o the mapping; ≥45 % reduction)\n\n")
	fmt.Fprintf(sb, "Baseline needs %.1f °C water (proposed: %.1f °C) to match a %.1f °C hot spot.\n",
		r.BaselineWaterC, r.ProposedWaterC, r.HotspotC)
	fmt.Fprintf(sb, "Eq.(1) reduction %.1f %%, chiller reduction **%.1f %%**.\n\n",
		r.ReductionEq1*100, r.ReductionChiller*100)
	_ = workload.QoS2x
	return nil
}
