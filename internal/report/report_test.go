package report

import (
	"context"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestGenerate(t *testing.T) {
	// Every registered experiment except the cooling-failure survival
	// sweep, which solves the 1000-blade fleet under throttle re-runs
	// (minutes even at Coarse; its Result/markdown contract is covered by
	// the experiments package's TestFaultsResultShape).
	var selected []experiments.Experiment
	for _, e := range experiments.All() {
		if e.Name != "faults" {
			selected = append(selected, e)
		}
	}
	md, err := Generate(context.Background(), experiments.At(experiments.Coarse), selected)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Reproduction report",
		"## Fig. 2",
		"## Table I",
		"## Fig. 5",
		"## Fig. 6",
		"## Table II",
		"## Fig. 7",
		"## §VIII-B",
		"| POLL |",
		"Proposed",
		"[8]+[27]+[9]",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Every selected experiment contributes a section.
	if got, want := strings.Count(md, "\n## "), len(selected); got < want {
		t.Fatalf("report has %d sections for %d selected experiments", got, want)
	}
	// Well-formed markdown tables: every table row has balanced pipes.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") && !strings.HasSuffix(line, "|") {
			t.Fatalf("unterminated table row: %q", line)
		}
	}
}

// TestGenerateScoped: an explicit selection must restrict the report to
// exactly those experiments, not fall back to the whole registry.
func TestGenerateScoped(t *testing.T) {
	e, ok := experiments.Lookup("tablei")
	if !ok {
		t.Fatal("tablei missing from registry")
	}
	md, err := Generate(context.Background(), experiments.At(experiments.Coarse), []experiments.Experiment{e})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "## Table I") {
		t.Fatalf("scoped report missing its section:\n%s", md)
	}
	if got := strings.Count(md, "\n## "); got != 1 {
		t.Fatalf("scoped report has %d sections, want 1:\n%s", got, md)
	}
}
