package report

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestGenerate(t *testing.T) {
	md, err := Generate(experiments.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Reproduction report",
		"## Fig. 2",
		"## Table I",
		"## Fig. 5",
		"## Fig. 6",
		"## Table II",
		"## Fig. 7",
		"## §VIII-B",
		"| POLL | 27 | 32 | 40 |",
		"Proposed",
		"[8]+[27]+[9]",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Well-formed markdown tables: every table row has balanced pipes.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") && !strings.HasSuffix(line, "|") {
			t.Fatalf("unterminated table row: %q", line)
		}
	}
}
