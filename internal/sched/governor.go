package sched

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// Governor drives a transient co-simulation of a workload trace with the
// paper's runtime policy in the loop: every control period it inspects
// TCASE and reacts — valve first, then DVFS if QoS still holds.
type Governor struct {
	Sys *cosim.System
	// Period is the control interval (seconds of simulated time).
	Period float64
	// Step is the transient integration step; must divide Period.
	Step float64
	// FlowStepKgH / FlowMaxKgH bound the valve.
	FlowStepKgH, FlowMaxKgH float64
	// TCaseLimit is the emergency threshold.
	TCaseLimit float64
	// ReleaseHysteresisC, when positive, lets the governor close the
	// valve back toward the base flow once TCASE has stayed below
	// (limit − hysteresis) for ReleasePeriods consecutive control
	// periods — recovering the §VI-C pumping economy after transients.
	ReleaseHysteresisC float64
	// ReleasePeriods is the required consecutive-cool period count.
	ReleasePeriods int
	// Solver selects the thermal linear solver for the governed
	// transient session (zero value: Jacobi-CG).
	Solver thermal.Solver
}

// NewGovernor returns a governor with a 1 s control period and 0.25 s
// integration steps at the paper's thermal limit.
func NewGovernor(sys *cosim.System) *Governor {
	return &Governor{
		Sys:         sys,
		Period:      1.0,
		Step:        0.25,
		FlowStepKgH: 1,
		FlowMaxKgH:  20,
		TCaseLimit:  TCaseMax,
	}
}

// Sample is one control-period record of a governed run.
type Sample struct {
	Time    float64
	Phase   string
	DieMaxC float64
	TCaseC  float64
	FlowKgH float64
	Freq    power.Frequency
	PowerW  float64
	Actions int // cumulative action count
}

// RunResult is the full timeline of a governed trace execution.
type RunResult struct {
	Samples []Sample
	Actions []Action
	// Emergencies counts periods where the limit held despite all
	// remedies being exhausted.
	Emergencies int
}

// Run simulates the trace under the governor: the workload runs with the
// mapping's configuration, phases modulate its dynamic power, and the
// runtime policy reacts to thermal emergencies.
func (g *Governor) Run(tr workload.Trace, m core.Mapping, q workload.QoS, op thermosyphon.Operating) (*RunResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if g.Step <= 0 || g.Period < g.Step {
		return nil, fmt.Errorf("sched: bad governor timing (period %g, step %g)", g.Period, g.Step)
	}
	if g.TCaseLimit <= 0 {
		g.TCaseLimit = TCaseMax
	}
	// The governed trace run is one long serial sequence of transient
	// steps: a dedicated session gives it a workspace so every step (and
	// every phase change the trace throws at it) is allocation-free.
	sim, err := g.Sys.NewSession(cosim.WithSolver(g.Solver)).Transient(op, 30)
	if err != nil {
		return nil, err
	}
	mapping := m
	out := &RunResult{}
	horizon := tr.TotalDuration().Seconds()
	baseFlow := op.WaterFlowKgH
	coolPeriods := 0
	var bp map[string]float64 // recycled across control periods

	for sim.Time() < horizon {
		phase := tr.At(time.Duration(sim.Time() * float64(time.Second)))
		st := phaseState(tr.Bench, mapping, phase)
		bp = g.Sys.Power.BlockPowersInto(bp, st)
		total := power.SumBlockPowers(bp)
		// Integrate one control period.
		for t := 0.0; t < g.Period-1e-9 && sim.Time() < horizon; t += g.Step {
			if err := sim.Step(g.Step, bp); err != nil {
				return nil, err
			}
		}
		// Control law (§VII): valve first, then DVFS under QoS.
		tc := sim.TCase()
		if tc < g.TCaseLimit-g.ReleaseHysteresisC && g.ReleaseHysteresisC > 0 {
			coolPeriods++
			if coolPeriods >= g.ReleasePeriods && sim.Operating().WaterFlowKgH > baseFlow {
				cur := sim.Operating()
				cur.WaterFlowKgH -= g.FlowStepKgH
				if cur.WaterFlowKgH < baseFlow {
					cur.WaterFlowKgH = baseFlow
				}
				if err := sim.SetOperating(cur); err != nil {
					return nil, err
				}
				out.Actions = append(out.Actions, Action{Kind: "flow-release", FlowKgH: cur.WaterFlowKgH})
				coolPeriods = 0
			}
		} else {
			coolPeriods = 0
		}
		if tc >= g.TCaseLimit {
			cur := sim.Operating()
			switch {
			case cur.WaterFlowKgH+g.FlowStepKgH <= g.FlowMaxKgH:
				cur.WaterFlowKgH += g.FlowStepKgH
				if err := sim.SetOperating(cur); err != nil {
					return nil, err
				}
				out.Actions = append(out.Actions, Action{Kind: "flow", FlowKgH: cur.WaterFlowKgH})
			default:
				lower, ok := lowerFreq(mapping.Config.Freq)
				cand := mapping.Config
				cand.Freq = lower
				if ok && q.Satisfied(tr.Bench, cand) {
					mapping.Config = cand
					out.Actions = append(out.Actions, Action{Kind: "dvfs", Freq: lower})
				} else {
					out.Emergencies++
				}
			}
		}
		dieMax, err := sim.DieMax()
		if err != nil {
			return nil, err
		}
		out.Samples = append(out.Samples, Sample{
			Time:    sim.Time(),
			Phase:   phase.Name,
			DieMaxC: dieMax,
			TCaseC:  tc,
			FlowKgH: sim.Operating().WaterFlowKgH,
			Freq:    mapping.Config.Freq,
			PowerW:  total,
			Actions: len(out.Actions),
		})
	}
	return out, nil
}

// phaseState builds the package state for a mapping with the phase's
// power modulation applied.
func phaseState(b workload.Benchmark, m core.Mapping, p workload.Phase) power.PackageState {
	st := core.PackageState(b, m)
	for i := range st.Cores {
		if st.Cores[i].Active {
			st.Cores[i].DynWatts *= p.DynScale
		}
	}
	// Memory-heavy phases push the uncore toward its ceiling.
	st.UncoreFreq = power.UncoreFreqMin + (st.UncoreFreq-power.UncoreFreqMin)*p.MemScale
	if st.UncoreFreq > power.UncoreFreqMax {
		st.UncoreFreq = power.UncoreFreqMax
	}
	st.LLC *= p.MemScale
	if st.LLC > 1 {
		st.LLC = 1
	}
	return st
}
