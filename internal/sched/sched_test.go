package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/power"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func coarseSystem(t *testing.T) *cosim.System {
	t.Helper()
	cfg := cosim.DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = 19, 15
	s, err := cosim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegulateNoEmergencyAtDesignPoint(t *testing.T) {
	// The design point was sized for the worst case, so normal operation
	// must not trigger any action.
	sys := coarseSystem(t)
	c := NewController(sys)
	b, _ := workload.ByName("ferret")
	out, err := c.RegulatePlan(nil, b, workload.QoS2x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Actions) != 0 || out.Emergency {
		t.Fatalf("unexpected actions %v (emergency=%v) at design point", out.Actions, out.Emergency)
	}
	if out.TCase >= TCaseMax {
		t.Fatalf("TCase %.1f above limit at design point", out.TCase)
	}
	if out.Result == nil {
		t.Fatal("missing result")
	}
}

func TestRegulateOpensValveUnderStress(t *testing.T) {
	// Force an artificial emergency with a tight TCase limit: the first
	// remedy must be flow escalation, not DVFS.
	sys := coarseSystem(t)
	c := NewController(sys)
	b, _ := workload.ByName("x264")
	m, err := core.Plan(b, workload.QoS1x)
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Regulate(nil, b, m, workload.QoS1x)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewController(sys)
	c2.TCaseLimit = base.TCase - 1 // just below the unregulated TCase
	out, err := c2.Regulate(nil, b, m, workload.QoS1x)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Actions) == 0 {
		t.Fatal("expected regulation actions")
	}
	if out.Actions[0].Kind != "flow" {
		t.Fatalf("first action should open the valve, got %v", out.Actions[0])
	}
	if !out.Emergency && out.TCase >= c2.TCaseLimit {
		t.Fatalf("controller reported success with TCase %.1f above limit %.1f", out.TCase, c2.TCaseLimit)
	}
}

func TestRegulateDVFSAfterValveExhausted(t *testing.T) {
	sys := coarseSystem(t)
	c := NewController(sys)
	c.FlowMaxKgH = c.Op.WaterFlowKgH // valve already maxed
	b, _ := workload.ByName("x264")
	m, err := core.Plan(b, workload.QoS3x) // plenty of QoS headroom for DVFS
	if err != nil {
		t.Fatal(err)
	}
	m.Config.Freq = power.FMax // force headroom below
	base, err := c.Regulate(nil, b, m, workload.QoS3x)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewController(sys)
	c2.FlowMaxKgH = c2.Op.WaterFlowKgH
	c2.TCaseLimit = base.TCase - 0.5
	out, err := c2.Regulate(nil, b, m, workload.QoS3x)
	if err != nil {
		t.Fatal(err)
	}
	var sawDVFS bool
	for _, a := range out.Actions {
		if a.Kind == "flow" {
			t.Fatal("valve was exhausted; no flow actions allowed")
		}
		if a.Kind == "dvfs" {
			sawDVFS = true
		}
	}
	if !sawDVFS && !out.Emergency {
		t.Fatal("expected DVFS action or emergency")
	}
}

func TestRegulateEmergencyWhenQoSBlocksDVFS(t *testing.T) {
	sys := coarseSystem(t)
	c := NewController(sys)
	c.FlowMaxKgH = c.Op.WaterFlowKgH
	c.TCaseLimit = 1 // impossible limit
	b, _ := workload.ByName("swaptions")
	m, err := core.Plan(b, workload.QoS1x) // no QoS headroom
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Regulate(nil, b, m, workload.QoS1x)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Emergency {
		t.Fatal("impossible limit must end in emergency")
	}
}

func TestRegulateKeepsQoS(t *testing.T) {
	sys := coarseSystem(t)
	c := NewController(sys)
	c.TCaseLimit = 40 // stress: forces actions
	b, _ := workload.ByName("facesim")
	m, err := core.Plan(b, workload.QoS2x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Regulate(nil, b, m, workload.QoS2x)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever happened, the final configuration must satisfy the QoS.
	if !workload.QoS2x.Satisfied(b, out.Mapping.Config) {
		t.Fatalf("controller broke QoS: %v", out.Mapping.Config)
	}
	_ = thermosyphon.DefaultOperating()
}
