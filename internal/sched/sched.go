// Package sched implements the paper's runtime control loop (§VII, final
// paragraph): during execution, the water flow rate is increased only when
// a thermal emergency occurs (TCASE ≥ TCASE_MAX), and the core frequency is
// lowered only if the flow rate is exhausted and the QoS constraint still
// holds at the lower frequency.
package sched

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// TCaseMax is the paper's thermal constraint: the maximum temperature at
// the center of the heat spreader (§VI-B).
const TCaseMax = 85.0

// Controller regulates one blade at runtime.
type Controller struct {
	Sys *cosim.System
	// Op is the current cooling operating point; Regulate may raise the
	// flow rate.
	Op thermosyphon.Operating
	// FlowStepKgH is the valve increment per emergency reaction.
	FlowStepKgH float64
	// FlowMaxKgH is the valve's maximum flow.
	FlowMaxKgH float64
	// TCaseLimit is the emergency threshold (defaults to TCaseMax).
	TCaseLimit float64
	// Solver selects the thermal linear solver for the control loop's
	// session (zero value: Jacobi-CG; thermal.SolverMGPCG pays off on
	// fine grids).
	Solver thermal.Solver
}

// NewController returns a controller at the paper's design operating point
// with a 1 kg/h valve step up to 20 kg/h.
func NewController(sys *cosim.System) *Controller {
	return &Controller{
		Sys:         sys,
		Op:          thermosyphon.DefaultOperating(),
		FlowStepKgH: 1,
		FlowMaxKgH:  20,
		TCaseLimit:  TCaseMax,
	}
}

// Action describes one regulation step taken by the controller.
type Action struct {
	Kind string // "flow" or "dvfs"
	// FlowKgH is the flow after a "flow" action.
	FlowKgH float64
	// Freq is the frequency after a "dvfs" action.
	Freq power.Frequency
}

// Outcome reports the converged regulation result.
type Outcome struct {
	Result  *cosim.Result
	Op      thermosyphon.Operating
	Mapping core.Mapping
	TCase   float64
	Actions []Action
	// Emergency is true if the limit could not be met even after all
	// actions (the workload must then be migrated off the blade).
	Emergency bool
}

// Regulate runs the control loop for one application mapped by Algorithm 1
// under QoS q: solve the coupled steady state, and while TCASE exceeds the
// limit, first open the valve, then drop frequency while QoS allows.
// Cancelling ctx aborts the loop inside the current solve; a nil ctx means
// "not cancellable".
func (c *Controller) Regulate(ctx context.Context, b workload.Benchmark, m core.Mapping, q workload.QoS) (*Outcome, error) {
	if c.TCaseLimit <= 0 {
		c.TCaseLimit = TCaseMax
	}
	op := c.Op
	mapping := m
	out := &Outcome{Op: op, Mapping: mapping}

	// One warm-started session for the whole control loop: consecutive
	// valve/DVFS probes differ by one actuator step, so each re-solve
	// starts from the previous converged field and costs a few refinement
	// iterations instead of a cold solve.
	ses := c.Sys.NewSession(cosim.WithSolver(c.Solver))
	solve := func() error {
		st := core.PackageState(b, mapping)
		res, err := ses.SolveSteady(ctx, st, op)
		if err != nil {
			return err
		}
		// Copy the result header so the returned Outcome does not pin the
		// session (and its solver workspace) via an interior pointer.
		cp := *res
		out.Result = &cp
		out.TCase = c.Sys.TCase(res)
		out.Op = op
		out.Mapping = mapping
		return nil
	}
	if err := solve(); err != nil {
		return nil, err
	}

	for out.TCase >= c.TCaseLimit {
		// First remedy: open the valve (§VII: "we increase water flow
		// rate only if a thermal emergency occurs").
		if op.WaterFlowKgH+c.FlowStepKgH <= c.FlowMaxKgH {
			op.WaterFlowKgH += c.FlowStepKgH
			out.Actions = append(out.Actions, Action{Kind: "flow", FlowKgH: op.WaterFlowKgH})
			if err := solve(); err != nil {
				return nil, err
			}
			continue
		}
		// Valve exhausted: lower the frequency if QoS still holds.
		lower, ok := lowerFreq(mapping.Config.Freq)
		if !ok {
			out.Emergency = true
			break
		}
		cand := mapping.Config
		cand.Freq = lower
		if !q.Satisfied(b, cand) {
			out.Emergency = true
			break
		}
		mapping.Config = cand
		out.Actions = append(out.Actions, Action{Kind: "dvfs", Freq: lower})
		if err := solve(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func lowerFreq(f power.Frequency) (power.Frequency, bool) {
	levels := power.Levels()
	for i := 1; i < len(levels); i++ {
		if levels[i] == f {
			return levels[i-1], true
		}
	}
	return f, false
}

// ThrottleStep lowers a package state by one DVFS level, rescaling every
// active core's dynamic power by the paper's frequency-power law
// (power.DynScale). ok is false when the state is already at the lowest
// level — the blade cannot be throttled further and must be treated as
// infeasible. This is the degraded-mode actuator the datacenter solver
// applies to blades whose cooling loop cannot hold TCASE at full speed.
func ThrottleStep(st power.PackageState) (out power.PackageState, ok bool) {
	lower, ok := lowerFreq(st.Freq)
	if !ok {
		return st, false
	}
	scale := power.DynScale(lower) / power.DynScale(st.Freq)
	out = st
	out.Freq = lower
	for i := range out.Cores {
		if out.Cores[i].Active {
			out.Cores[i].DynWatts *= scale
		}
	}
	return out, true
}

// RegulatePlan is a convenience wrapper: run Algorithm 1 for the benchmark
// and then regulate the resulting mapping.
func (c *Controller) RegulatePlan(ctx context.Context, b workload.Benchmark, q workload.QoS) (*Outcome, error) {
	m, err := core.Plan(b, q)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	return c.Regulate(ctx, b, m, q)
}
