package sched

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func shortTrace(t *testing.T, name string) workload.Trace {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.SynthesizeTrace(b, 42)
	// Trim to keep the test quick.
	if len(tr.Phases) > 4 {
		tr.Phases = tr.Phases[:4]
	}
	return tr
}

func TestGovernorNominalRun(t *testing.T) {
	sys := coarseSystem(t)
	g := NewGovernor(sys)
	tr := shortTrace(t, "ferret")
	m, err := core.Plan(tr.Bench, workload.QoS2x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(tr, m, workload.QoS2x, thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) == 0 {
		t.Fatal("no samples")
	}
	// Nominal run at the design point: no actions, no emergencies.
	if len(out.Actions) != 0 || out.Emergencies != 0 {
		t.Fatalf("nominal run acted: %d actions, %d emergencies", len(out.Actions), out.Emergencies)
	}
	// Time advances monotonically and temperatures stay physical.
	for i, s := range out.Samples {
		if i > 0 && s.Time <= out.Samples[i-1].Time {
			t.Fatal("time not monotone")
		}
		if s.DieMaxC < 25 || s.DieMaxC > 110 {
			t.Fatalf("sample %d die %.1f implausible", i, s.DieMaxC)
		}
		if s.Phase == "" {
			t.Fatal("sample without phase")
		}
	}
}

func TestGovernorReactsToTightLimit(t *testing.T) {
	sys := coarseSystem(t)
	g := NewGovernor(sys)
	tr := shortTrace(t, "x264")
	m, err := core.Plan(tr.Bench, workload.QoS3x)
	if err != nil {
		t.Fatal(err)
	}
	m.Config.Freq = power.FMax
	// First find the nominal peak TCase, then re-run with the limit
	// below it.
	base, err := g.Run(tr, m, workload.QoS3x, thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, s := range base.Samples {
		if s.TCaseC > peak {
			peak = s.TCaseC
		}
	}
	g2 := NewGovernor(sys)
	g2.TCaseLimit = peak - 1
	out, err := g2.Run(tr, m, workload.QoS3x, thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Actions) == 0 {
		t.Fatal("tight limit must trigger actions")
	}
	// First action must be the valve (§VII).
	if out.Actions[0].Kind != "flow" {
		t.Fatalf("first action %v, want flow", out.Actions[0])
	}
	// Flow must be monotone non-decreasing across samples.
	for i := 1; i < len(out.Samples); i++ {
		if out.Samples[i].FlowKgH < out.Samples[i-1].FlowKgH {
			t.Fatal("valve closed spontaneously")
		}
	}
}

func TestGovernorDVFSWhenValveExhausted(t *testing.T) {
	sys := coarseSystem(t)
	g := NewGovernor(sys)
	g.FlowMaxKgH = thermosyphon.DefaultOperating().WaterFlowKgH // valve pinned
	g.TCaseLimit = 35                                           // force constant violation
	tr := shortTrace(t, "x264")
	m, err := core.Plan(tr.Bench, workload.QoS3x)
	if err != nil {
		t.Fatal(err)
	}
	m.Config.Freq = power.FMax
	out, err := g.Run(tr, m, workload.QoS3x, thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	var dvfs int
	for _, a := range out.Actions {
		if a.Kind == "flow" {
			t.Fatal("valve pinned; no flow actions allowed")
		}
		if a.Kind == "dvfs" {
			dvfs++
		}
	}
	// With QoS3x headroom the governor can step fmax→fmid→fmin: at most
	// two DVFS actions, then emergencies accumulate.
	if dvfs == 0 {
		t.Fatal("expected DVFS actions")
	}
	if dvfs > 2 {
		t.Fatalf("impossible: %d DVFS steps on a 3-level ladder", dvfs)
	}
	if out.Emergencies == 0 {
		t.Fatal("a 35 °C limit must end in emergencies")
	}
	// Frequency in the last sample must be the floor.
	last := out.Samples[len(out.Samples)-1]
	if last.Freq != power.FMin {
		t.Fatalf("final frequency %v, want FMin", last.Freq)
	}
}

func TestGovernorTimingValidation(t *testing.T) {
	sys := coarseSystem(t)
	g := NewGovernor(sys)
	g.Step = 0
	tr := shortTrace(t, "vips")
	m, _ := core.Plan(tr.Bench, workload.QoS2x)
	if _, err := g.Run(tr, m, workload.QoS2x, thermosyphon.DefaultOperating()); err == nil {
		t.Fatal("zero step must error")
	}
	g2 := NewGovernor(sys)
	bad := workload.Trace{Bench: tr.Bench}
	if _, err := g2.Run(bad, m, workload.QoS2x, thermosyphon.DefaultOperating()); err == nil {
		t.Fatal("empty trace must error")
	}
}

func TestGovernorValveRelease(t *testing.T) {
	sys := coarseSystem(t)
	b, err := workload.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	// A hot phase that forces the valve open, then a long cool tail.
	tr := workload.Trace{
		Bench: b,
		Phases: []workload.Phase{
			{Name: "hot", Duration: 8 * time.Second, DynScale: 1.2, MemScale: 0.8},
			{Name: "cool", Duration: 14 * time.Second, DynScale: 0.15, MemScale: 0.4},
		},
	}
	m, err := core.Plan(b, workload.QoS3x)
	if err != nil {
		t.Fatal(err)
	}
	m.Config.Freq = power.FMax

	g := NewGovernor(sys)
	base, err := g.Run(tr, m, workload.QoS3x, thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, s := range base.Samples {
		if s.TCaseC > peak {
			peak = s.TCaseC
		}
	}

	g2 := NewGovernor(sys)
	g2.TCaseLimit = peak - 0.5
	g2.ReleaseHysteresisC = 1
	g2.ReleasePeriods = 2
	out, err := g2.Run(tr, m, workload.QoS3x, thermosyphon.DefaultOperating())
	if err != nil {
		t.Fatal(err)
	}
	var opened, released bool
	for _, a := range out.Actions {
		if a.Kind == "flow" {
			opened = true
		}
		if a.Kind == "flow-release" {
			released = true
			if a.FlowKgH < thermosyphon.DefaultOperating().WaterFlowKgH {
				t.Fatal("release must not undershoot the base flow")
			}
		}
	}
	if !opened {
		t.Fatal("hot phase should open the valve")
	}
	if !released {
		t.Fatal("cool tail should release the valve")
	}
	// Final flow back at (or near) the base.
	last := out.Samples[len(out.Samples)-1]
	if last.FlowKgH > thermosyphon.DefaultOperating().WaterFlowKgH+2 {
		t.Fatalf("valve not released: final flow %.0f", last.FlowKgH)
	}
}
