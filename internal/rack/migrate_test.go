package rack

import "testing"

func blades() []BladeStatus {
	return []BladeStatus{
		{CPU: 0, TCaseC: 80, PowerW: 70, FreeCores: 0},
		{CPU: 1, TCaseC: 45, PowerW: 40, FreeCores: 4},
		{CPU: 2, TCaseC: 42, PowerW: 45, FreeCores: 2},
		{CPU: 3, TCaseC: 42, PowerW: 30, FreeCores: 6},
	}
}

func TestMigrationTargetPicksCoolest(t *testing.T) {
	got, err := MigrationTarget(blades(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// CPUs 2 and 3 tie at 42 °C; the lower-power one (3) wins.
	if got.CPU != 3 {
		t.Fatalf("target CPU %d, want 3", got.CPU)
	}
}

func TestMigrationTargetRespectsCores(t *testing.T) {
	got, err := MigrationTarget(blades(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPU != 3 {
		t.Fatalf("only CPU 3 has 5 free cores, got %d", got.CPU)
	}
	if _, err := MigrationTarget(blades(), 0, 7); err == nil {
		t.Fatal("no blade has 7 free cores")
	}
}

func TestMigrationTargetExcludesSource(t *testing.T) {
	got, err := MigrationTarget(blades(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPU == 3 {
		t.Fatal("source blade must be excluded")
	}
}

func TestMigrationTargetEmpty(t *testing.T) {
	if _, err := MigrationTarget(nil, 0, 1); err == nil {
		t.Fatal("empty rack must error")
	}
}

func TestTemperatureSpread(t *testing.T) {
	if got := TemperatureSpread(blades()); got != 38 {
		t.Fatalf("spread %v, want 38", got)
	}
	if TemperatureSpread(nil) != 0 {
		t.Fatal("empty spread should be 0")
	}
}
