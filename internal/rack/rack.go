// Package rack models the rack-level constraint of §V: one chiller per
// rack supplies every thermosyphon with the same water temperature, so
// workloads must be allocated across CPUs to balance package temperatures,
// and the shared water temperature must satisfy the hottest blade.
package rack

import (
	"fmt"
	"sort"

	"repro/internal/chiller"
	"repro/internal/refrigerant"
	"repro/internal/workload"
)

// App is a workload submitted to the rack.
type App struct {
	Bench workload.Benchmark
	QoS   workload.QoS
}

// Assignment places apps onto one CPU blade.
type Assignment struct {
	CPU  int
	Apps []App
	// PowerW is the estimated package power of the blade.
	PowerW float64
}

// Allocate distributes apps over nCPU blades balancing estimated package
// power (greedy longest-processing-time), the rack-level prerequisite for
// balanced package temperatures under a shared water loop.
func Allocate(apps []App, nCPU int) ([]Assignment, error) {
	if nCPU <= 0 {
		return nil, fmt.Errorf("rack: need at least one CPU, got %d", nCPU)
	}
	type scored struct {
		app App
		p   float64
	}
	scoredApps := make([]scored, 0, len(apps))
	for _, a := range apps {
		// Estimate with the cheapest QoS-satisfying configuration.
		prof := workload.NewProfile(a.Bench)
		best := -1.0
		for _, e := range prof.Entries {
			if a.QoS.Satisfied(a.Bench, e.Config) && (best < 0 || e.Power < best) {
				best = e.Power
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("rack: %s cannot meet QoS %s on any configuration", a.Bench.Name, a.QoS)
		}
		scoredApps = append(scoredApps, scored{app: a, p: best})
	}
	sort.SliceStable(scoredApps, func(i, j int) bool { return scoredApps[i].p > scoredApps[j].p })

	out := make([]Assignment, nCPU)
	for i := range out {
		out[i].CPU = i
	}
	for _, s := range scoredApps {
		// Place on the least-loaded blade.
		min := 0
		for i := 1; i < nCPU; i++ {
			if out[i].PowerW < out[min].PowerW {
				min = i
			}
		}
		out[min].Apps = append(out[min].Apps, s.app)
		out[min].PowerW += s.p
	}
	return out, nil
}

// Imbalance returns the max-min spread of blade power across assignments.
func Imbalance(assignments []Assignment) float64 {
	if len(assignments) == 0 {
		return 0
	}
	lo, hi := assignments[0].PowerW, assignments[0].PowerW
	for _, a := range assignments[1:] {
		if a.PowerW < lo {
			lo = a.PowerW
		}
		if a.PowerW > hi {
			hi = a.PowerW
		}
	}
	return hi - lo
}

// SharedLoop models the shared water loop as a coupled thermal boundary:
// every blade on the loop receives the same supply temperature, but that
// temperature is no longer an assumed constant — the chiller plant holds
// its setpoint only at zero load and backs off as the plant heat exchanger
// loads up, so the supply (and with it every blade's cooling boundary) is
// derived from the very blade heats it helps produce. The datacenter
// solver closes this loop with a damped fixed point; SharedLoop provides
// the loop-side physics.
type SharedLoop struct {
	// SetpointC is the chiller supply setpoint: the water temperature the
	// loop delivers at zero heat load.
	SetpointC float64
	// ApproachKPerKW is the supply-temperature rise per kW of loop heat —
	// the finite-UA approach of the plant heat exchanger. Zero reproduces
	// the old fixed-water-temperature behaviour.
	ApproachKPerKW float64
	// PerBladeFlowKgH is the condenser flow each blade receives.
	PerBladeFlowKgH float64
	// AmbientC is the heat-rejection temperature.
	AmbientC float64
}

// SupplyC returns the loop supply (blade inlet) water temperature at the
// given total heat load.
func (l SharedLoop) SupplyC(totalHeatW float64) float64 {
	return l.SetpointC + l.ApproachKPerKW*totalHeatW/1000
}

// LoopState is the water state of a loaded loop: both end temperatures are
// derived from the blade heats, not assumed.
type LoopState struct {
	// SupplyC is the blade inlet temperature at this load.
	SupplyC float64
	// ReturnC is the mixed blade outlet temperature entering the chiller.
	ReturnC float64
	// FlowKgH is the total loop water flow.
	FlowKgH float64
	// HeatW is the total heat the loop carries.
	HeatW float64
}

// Boundary derives the loop water state from the blade heats: the supply
// follows the plant's load-dependent approach, the blades (plumbed in
// parallel) heat the combined flow, and the return is the mixed outlet.
func (l SharedLoop) Boundary(bladeHeatW []float64) (LoopState, error) {
	var total float64
	for _, q := range bladeHeatW {
		if q < 0 {
			return LoopState{}, fmt.Errorf("rack: negative blade heat %g", q)
		}
		total += q
	}
	flow := l.PerBladeFlowKgH * float64(len(bladeHeatW))
	if flow <= 0 {
		return LoopState{}, fmt.Errorf("rack: no water flow")
	}
	supply := l.SupplyC(total)
	mdotCp := flow / 3600 * refrigerant.WaterCp(supply)
	return LoopState{
		SupplyC: supply,
		ReturnC: supply + total/mdotCp,
		FlowKgH: flow,
		HeatW:   total,
	}, nil
}

// Cost aggregates the loop cooling cost for the given blade heats (W),
// priced at the load-derived supply temperature.
func (l SharedLoop) Cost(bladeHeatW []float64) (chiller.Budget, error) {
	st, err := l.Boundary(bladeHeatW)
	if err != nil {
		return chiller.Budget{}, err
	}
	return chiller.Assess(st.FlowKgH, st.SupplyC, st.ReturnC, l.AmbientC)
}
