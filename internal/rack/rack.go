// Package rack models the rack-level constraint of §V: one chiller per
// rack supplies every thermosyphon with the same water temperature, so
// workloads must be allocated across CPUs to balance package temperatures,
// and the shared water temperature must satisfy the hottest blade.
package rack

import (
	"fmt"
	"sort"

	"repro/internal/chiller"
	"repro/internal/workload"
)

// App is a workload submitted to the rack.
type App struct {
	Bench workload.Benchmark
	QoS   workload.QoS
}

// Assignment places apps onto one CPU blade.
type Assignment struct {
	CPU  int
	Apps []App
	// PowerW is the estimated package power of the blade.
	PowerW float64
}

// Allocate distributes apps over nCPU blades balancing estimated package
// power (greedy longest-processing-time), the rack-level prerequisite for
// balanced package temperatures under a shared water loop.
func Allocate(apps []App, nCPU int) ([]Assignment, error) {
	if nCPU <= 0 {
		return nil, fmt.Errorf("rack: need at least one CPU, got %d", nCPU)
	}
	type scored struct {
		app App
		p   float64
	}
	scoredApps := make([]scored, 0, len(apps))
	for _, a := range apps {
		// Estimate with the cheapest QoS-satisfying configuration.
		prof := workload.NewProfile(a.Bench)
		best := -1.0
		for _, e := range prof.Entries {
			if a.QoS.Satisfied(a.Bench, e.Config) && (best < 0 || e.Power < best) {
				best = e.Power
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("rack: %s cannot meet QoS %s on any configuration", a.Bench.Name, a.QoS)
		}
		scoredApps = append(scoredApps, scored{app: a, p: best})
	}
	sort.SliceStable(scoredApps, func(i, j int) bool { return scoredApps[i].p > scoredApps[j].p })

	out := make([]Assignment, nCPU)
	for i := range out {
		out[i].CPU = i
	}
	for _, s := range scoredApps {
		// Place on the least-loaded blade.
		min := 0
		for i := 1; i < nCPU; i++ {
			if out[i].PowerW < out[min].PowerW {
				min = i
			}
		}
		out[min].Apps = append(out[min].Apps, s.app)
		out[min].PowerW += s.p
	}
	return out, nil
}

// Imbalance returns the max-min spread of blade power across assignments.
func Imbalance(assignments []Assignment) float64 {
	if len(assignments) == 0 {
		return 0
	}
	lo, hi := assignments[0].PowerW, assignments[0].PowerW
	for _, a := range assignments[1:] {
		if a.PowerW < lo {
			lo = a.PowerW
		}
		if a.PowerW > hi {
			hi = a.PowerW
		}
	}
	return hi - lo
}

// SharedLoop sizes the rack's shared water loop: every blade receives the
// same inlet temperature, so the loop must carry the total heat and the
// chiller bills for the coldest temperature any blade requires.
type SharedLoop struct {
	// WaterInC is the shared inlet temperature.
	WaterInC float64
	// PerBladeFlowKgH is the condenser flow each blade receives.
	PerBladeFlowKgH float64
	// AmbientC is the heat-rejection temperature.
	AmbientC float64
}

// Cost aggregates the rack cooling cost for the given blade heats (W).
func (l SharedLoop) Cost(bladeHeatW []float64) (chiller.Budget, error) {
	var total float64
	for _, q := range bladeHeatW {
		if q < 0 {
			return chiller.Budget{}, fmt.Errorf("rack: negative blade heat %g", q)
		}
		total += q
	}
	flow := l.PerBladeFlowKgH * float64(len(bladeHeatW))
	if flow <= 0 {
		return chiller.Budget{}, fmt.Errorf("rack: no water flow")
	}
	mdotCp := flow / 3600 * 4180
	dT := total / mdotCp
	return chiller.Assess(flow, l.WaterInC, l.WaterInC+dT, l.AmbientC)
}
