package rack

import (
	"fmt"
	"sort"
)

// BladeStatus is the scheduler's view of one blade when a thermal
// emergency forces a migration decision (§V: balanced package temperatures
// under the shared water loop).
type BladeStatus struct {
	CPU int
	// TCaseC is the blade's current case temperature.
	TCaseC float64
	// PowerW is the blade's current package power.
	PowerW float64
	// FreeCores is the number of unallocated cores.
	FreeCores int
}

// MigrationTarget picks the blade an emergency workload should move to:
// the coolest blade with enough free cores. The source blade is excluded.
func MigrationTarget(blades []BladeStatus, sourceCPU, coresNeeded int) (BladeStatus, error) {
	var candidates []BladeStatus
	for _, b := range blades {
		if b.CPU == sourceCPU || b.FreeCores < coresNeeded {
			continue
		}
		candidates = append(candidates, b)
	}
	if len(candidates) == 0 {
		return BladeStatus{}, fmt.Errorf("rack: no blade has %d free cores for migration from CPU %d", coresNeeded, sourceCPU)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].TCaseC != candidates[j].TCaseC {
			return candidates[i].TCaseC < candidates[j].TCaseC
		}
		return candidates[i].PowerW < candidates[j].PowerW
	})
	return candidates[0], nil
}

// TemperatureSpread returns the max−min TCase across blades — the §V
// balance objective under a shared water temperature.
func TemperatureSpread(blades []BladeStatus) float64 {
	if len(blades) == 0 {
		return 0
	}
	lo, hi := blades[0].TCaseC, blades[0].TCaseC
	for _, b := range blades[1:] {
		if b.TCaseC < lo {
			lo = b.TCaseC
		}
		if b.TCaseC > hi {
			hi = b.TCaseC
		}
	}
	return hi - lo
}
