package rack

import (
	"testing"

	"repro/internal/workload"
)

func apps(t *testing.T) []App {
	t.Helper()
	var out []App
	for _, b := range workload.All() {
		out = append(out, App{Bench: b, QoS: workload.QoS2x})
	}
	return out
}

func TestAllocateBalances(t *testing.T) {
	as, err := Allocate(apps(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 4 {
		t.Fatalf("got %d assignments", len(as))
	}
	var total int
	for _, a := range as {
		total += len(a.Apps)
		if a.PowerW <= 0 && len(a.Apps) > 0 {
			t.Fatal("loaded blade without power estimate")
		}
	}
	if total != 13 {
		t.Fatalf("placed %d of 13 apps", total)
	}
	// Greedy LPT: imbalance bounded by the largest single app (< 80 W).
	if im := Imbalance(as); im > 80 {
		t.Fatalf("imbalance %.1f W too large", im)
	}
}

func TestAllocateSingleCPU(t *testing.T) {
	as, err := Allocate(apps(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(as[0].Apps) != 13 {
		t.Fatal("single blade must take everything")
	}
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(nil, 0); err == nil {
		t.Fatal("zero CPUs must error")
	}
}

func TestImbalanceEmpty(t *testing.T) {
	if Imbalance(nil) != 0 {
		t.Fatal("empty imbalance should be 0")
	}
}

func TestSharedLoopCost(t *testing.T) {
	loop := SharedLoop{SetpointC: 30, PerBladeFlowKgH: 7, AmbientC: 35}
	b, err := loop.Cost([]float64{60, 70, 55})
	if err != nil {
		t.Fatal(err)
	}
	if b.HeatW < 180 || b.HeatW > 190 {
		t.Fatalf("total heat %v, want ≈185", b.HeatW)
	}
	if b.WaterDeltaT <= 0 {
		t.Fatal("water must warm up")
	}
	if _, err := loop.Cost([]float64{-5}); err == nil {
		t.Fatal("negative heat must error")
	}
	bad := SharedLoop{SetpointC: 30, PerBladeFlowKgH: 0, AmbientC: 35}
	if _, err := bad.Cost([]float64{10}); err == nil {
		t.Fatal("zero flow must error")
	}
}

func TestColderSharedWaterCostsMore(t *testing.T) {
	warm := SharedLoop{SetpointC: 30, PerBladeFlowKgH: 7, AmbientC: 35}
	cold := SharedLoop{SetpointC: 20, PerBladeFlowKgH: 7, AmbientC: 35}
	heats := []float64{70, 70}
	bw, _ := warm.Cost(heats)
	bc, _ := cold.Cost(heats)
	if bc.ChillerPowerW <= bw.ChillerPowerW {
		t.Fatal("colder shared loop must cost more chiller power")
	}
}

func TestSharedLoopBoundaryIsLoadCoupled(t *testing.T) {
	loop := SharedLoop{SetpointC: 27, ApproachKPerKW: 0.5, PerBladeFlowKgH: 7, AmbientC: 35}
	light, err := loop.Boundary([]float64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := loop.Boundary([]float64{150, 150})
	if err != nil {
		t.Fatal(err)
	}
	if light.SupplyC <= loop.SetpointC {
		t.Fatalf("loaded supply %.3f must exceed the zero-load setpoint %.1f", light.SupplyC, loop.SetpointC)
	}
	if heavy.SupplyC <= light.SupplyC {
		t.Fatalf("supply must rise with load: %.3f (300 W) vs %.3f (100 W)", heavy.SupplyC, light.SupplyC)
	}
	wantSupply := 27 + 0.5*300/1000
	if d := heavy.SupplyC - wantSupply; d > 1e-12 || d < -1e-12 {
		t.Fatalf("supply %.6f, want %.6f", heavy.SupplyC, wantSupply)
	}
	if heavy.ReturnC <= heavy.SupplyC {
		t.Fatal("return must be warmer than supply")
	}
	// Zero approach reproduces the fixed-water-temperature behaviour.
	fixed := SharedLoop{SetpointC: 27, PerBladeFlowKgH: 7, AmbientC: 35}
	st, err := fixed.Boundary([]float64{150, 150})
	if err != nil {
		t.Fatal(err)
	}
	if st.SupplyC != 27 {
		t.Fatalf("zero-approach supply %.3f, want the 27 °C setpoint", st.SupplyC)
	}
}
