// Package sweep is the parallel evaluation engine behind every
// embarrassingly parallel study in this repository: the design-space
// grids, the orientation and mapping scenario sweeps, the Table II policy
// comparison and the per-frequency plan search are all independent
// evaluations of a point list, so they fan out across a bounded worker
// pool here instead of looping serially.
//
// The engine guarantees:
//
//   - Deterministic, input-ordered results: Run(ctx, points, eval)[i] is the
//     result of eval(points[i]), regardless of worker count or scheduling.
//   - Fail-fast error aggregation: once any evaluation fails no new points
//     are started, and the error reported is the failing point with the
//     lowest input index among those evaluated. Context cancellation is
//     part of the same contract: workers observe ctx between points, stop
//     claiming as soon as it is done, and the call reports ctx.Err().
//   - Per-worker reusable state: RunState gives each worker one state
//     value (a solver, a system cache) built once and reused across all
//     points that worker claims, so operators and scratch vectors are not
//     rebuilt per point. A state that implements io.Closer is closed when
//     its worker retires — solve sessions configured with intra-solve
//     threads own goroutine teams, and the engine releases them so a
//     sweep leaves no goroutines behind.
//
// The worker count is an explicit per-call option (Workers); without it a
// call uses GOMAXPROCS. There is deliberately no process-wide override:
// concurrent sweeps with different worker budgets must not see each
// other's configuration. The core budget is shared with the intra-solve
// worker teams: callers split GOMAXPROCS between sweep workers and
// per-solve threads (see experiments.RunConfig) so the two layers of
// parallelism compose instead of oversubscribing.
package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// closeState releases a per-worker state that holds external resources:
// any state implementing io.Closer (a cosim.Session owning a worker team,
// for instance) is closed when its worker retires.
func closeState(st any) {
	if c, ok := st.(io.Closer); ok {
		c.Close()
	}
}

// Option configures one Run/RunState/First call.
type Option func(*config)

type config struct {
	workers int
}

// Workers fixes the worker count for one call (<= 0 means GOMAXPROCS).
// One worker forces the fully serial path, which is also the baseline the
// sweep benchmarks compare against.
func Workers(n int) Option {
	return func(c *config) { c.workers = n }
}

func resolve(opts []Option, points int) int {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > points {
		workers = points
	}
	return workers
}

// Run evaluates eval over every point concurrently and returns the
// results in input order. Evaluations must be independent; eval may run
// on any goroutine but never concurrently with itself on the same index.
// Cancelling ctx stops the sweep between points and returns ctx.Err().
func Run[P, R any](ctx context.Context, points []P, eval func(P) (R, error), opts ...Option) ([]R, error) {
	return RunState(ctx, points,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, p P) (R, error) { return eval(p) },
		opts...)
}

// RunState is Run with per-worker reusable state: newState runs once per
// worker (on the worker's goroutine) and its value is passed to every
// evaluation that worker performs. Use it to amortize expensive solver
// construction — each worker owns its state, so eval needs no locking.
func RunState[S, P, R any](ctx context.Context, points []P, newState func() (S, error), eval func(S, P) (R, error), opts ...Option) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := resolve(opts, len(points))

	results := make([]R, len(points))
	if len(points) == 0 {
		return results, ctx.Err()
	}
	if workers <= 1 {
		st, err := newState()
		if err != nil {
			return nil, fmt.Errorf("sweep: worker state: %w", err)
		}
		defer closeState(st)
		for i, p := range points {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := eval(st, p)
			if err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next     atomic.Int64 // next unclaimed point index
		done     atomic.Int64 // successfully evaluated points
		stop     atomic.Bool  // fail-fast: stop claiming new points
		wg       sync.WaitGroup
		pointErr = make([]error, len(points))
		stateErr = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := newState()
			if err != nil {
				stateErr[w] = err
				stop.Store(true)
				return
			}
			defer closeState(st)
			for !stop.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				r, err := eval(st, points[i])
				if err != nil {
					pointErr[i] = err
					stop.Store(true)
					return
				}
				results[i] = r
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()

	// A sweep that finished every point succeeded, full stop — matching
	// the serial path, where a cancellation arriving after the last
	// evaluation is never observed.
	if int(done.Load()) == len(points) {
		return results, nil
	}
	// Otherwise cancellation dominates: a cancelled sweep has evaluated
	// an unpredictable prefix, so its partial results and point errors
	// are meaningless to the caller.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Report the lowest-index failing point so the error is stable across
	// schedules whenever a single point is at fault.
	for i, err := range pointErr {
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	for _, err := range stateErr {
		if err != nil {
			return nil, fmt.Errorf("sweep: worker state: %w", err)
		}
	}
	return results, nil
}

// First evaluates points across the worker pool in claim order and
// returns the first point, in INPUT order, whose result satisfies accept —
// the parallel equivalent of a serial scan with an early exit. Exact
// serial semantics are preserved: evaluation errors at indices past the
// accepted point are ignored (a serial scan would never have reached
// them), while an error before it fails the search with the lowest-index
// error. Workers stop claiming once no lower-index acceptance is possible,
// so the overshoot past the accepted point is bounded by the pool size.
// Cancelling ctx stops the scan between points and returns ctx.Err(),
// except when an acceptance has already settled — a found result the
// serial scan would have returned wins over a late cancellation.
// Returns found=false with no error when no point is accepted.
func First[S, P, R any](ctx context.Context, points []P, newState func() (S, error), eval func(S, P) (R, error), accept func(R) bool, opts ...Option) (idx int, res R, found bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := resolve(opts, len(points))
	var zero R
	if len(points) == 0 {
		return 0, zero, false, ctx.Err()
	}
	if workers <= 1 {
		st, err := newState()
		if err != nil {
			return 0, zero, false, fmt.Errorf("sweep: worker state: %w", err)
		}
		defer closeState(st)
		for i, p := range points {
			if err := ctx.Err(); err != nil {
				return 0, zero, false, err
			}
			r, err := eval(st, p)
			if err != nil {
				return 0, zero, false, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			if accept(r) {
				return i, r, true, nil
			}
		}
		return 0, zero, false, nil
	}

	var (
		next atomic.Int64
		// bound is the lowest index at which a serial scan would stop —
		// an acceptance or an error; len(points) means no terminator yet.
		bound    atomic.Int64
		stop     atomic.Bool // a worker-state constructor failed
		wg       sync.WaitGroup
		results  = make([]R, len(points))
		pointErr = make([]error, len(points))
		stateErr = make([]error, workers)
	)
	bound.Store(int64(len(points)))
	lower := func(i int) {
		for {
			cur := bound.Load()
			if int64(i) >= cur || bound.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := newState()
			if err != nil {
				stateErr[w] = err
				stop.Store(true)
				return
			}
			defer closeState(st)
			for !stop.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				// Claims are monotonic, so every index below the final
				// bound is claimed before any worker stops here.
				if i >= len(points) || int64(i) > bound.Load() {
					return
				}
				r, err := eval(st, points[i])
				if err != nil {
					pointErr[i] = err
					lower(i)
					continue
				}
				if accept(r) {
					results[i] = r
					lower(i)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range stateErr {
		if err != nil {
			return 0, zero, false, fmt.Errorf("sweep: worker state: %w", err)
		}
	}
	// Every index below the final bound was evaluated and neither accepted
	// nor errored, so the terminator at the bound is exactly where the
	// serial scan would have stopped. An ACCEPTANCE at the bound therefore
	// wins over a late cancellation: the serial scan would have returned
	// this result before ever observing ctx — claims are monotonic, so all
	// lower indices completed cleanly before the accept settled.
	b := int(bound.Load())
	if b < len(points) && pointErr[b] == nil {
		return b, results[b], true, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, zero, false, err
	}
	if b >= len(points) {
		return 0, zero, false, nil
	}
	return 0, zero, false, fmt.Errorf("sweep: point %d: %w", b, pointErr[b])
}

// Pair couples two sweep axes into one point.
type Pair[A, B any] struct {
	A A
	B B
}

// Cross returns the cross product of two axes in row-major order: the A
// axis is the outer loop, matching the nested-loop order the serial
// studies used.
func Cross[A, B any](as []A, bs []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, Pair[A, B]{A: a, B: b})
		}
	}
	return out
}
