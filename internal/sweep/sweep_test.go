package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunOrdered(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 2, 3, 8, 64, 200} {
		got, err := Run(points, func(p int) (int, error) { return p * p, nil }, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(points) {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	points := make([]float64, 257)
	for i := range points {
		points[i] = float64(i) * 0.37
	}
	eval := func(p float64) (float64, error) { return p*p + 1/(p+1), nil }
	serial, err := Run(points, eval, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(points, eval, Workers(7))
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical, not merely approximately equal.
	if fmt.Sprintf("%v", serial) != fmt.Sprintf("%v", parallel) {
		t.Fatal("parallel results differ from serial")
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	got, err := Run(nil, func(p int) (int, error) { return p, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v, %v", got, err)
	}
	got, err = Run([]int{41}, func(p int) (int, error) { return p + 1, nil }, Workers(16))
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single run: %v, %v", got, err)
	}
}

func TestRunFailFast(t *testing.T) {
	boom := errors.New("boom")
	points := make([]int, 500)
	for i := range points {
		points[i] = i
	}
	var evals atomic.Int64
	_, err := Run(points, func(p int) (int, error) {
		evals.Add(1)
		if p == 3 {
			return 0, boom
		}
		return p, nil
	}, Workers(4))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "point 3") {
		t.Fatalf("err = %v, want point index 3", err)
	}
	if n := evals.Load(); n >= int64(len(points)) {
		t.Fatalf("fail-fast did not stop the sweep: %d evaluations", n)
	}
}

func TestRunSerialErrorIndex(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run([]int{0, 1, 2}, func(p int) (int, error) {
		if p > 0 {
			return 0, boom
		}
		return p, nil
	}, Workers(1))
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("err = %v, want point 1", err)
	}
}

func TestRunStateReuse(t *testing.T) {
	var built atomic.Int64
	points := make([]int, 64)
	const workers = 4
	got, err := RunState(points,
		func() (*int, error) {
			built.Add(1)
			return new(int), nil
		},
		func(st *int, _ int) (int, error) {
			*st++ // worker-private: must never race
			return *st, nil
		},
		Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if n := built.Load(); n > workers || n < 1 {
		t.Fatalf("built %d states for %d workers", n, workers)
	}
	var total int
	for _, g := range got {
		total += g
	}
	// Each worker's state counts 1..k for the k points it claimed; the
	// per-worker sums of 1..k always total at least len(points).
	if total < len(points) {
		t.Fatalf("state reuse accounting broken: total %d", total)
	}
}

func TestRunStateConstructorError(t *testing.T) {
	boom := errors.New("no state")
	_, err := RunState([]int{1, 2, 3},
		func() (int, error) { return 0, boom },
		func(int, int) (int, error) { return 0, nil },
		Workers(2))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want state error", err)
	}
	_, err = RunState([]int{1, 2, 3},
		func() (int, error) { return 0, boom },
		func(int, int) (int, error) { return 0, nil },
		Workers(1))
	if !errors.Is(err, boom) {
		t.Fatalf("serial err = %v, want state error", err)
	}
}

func noState() (struct{}, error) { return struct{}{}, nil }

func TestFirstFindsLowestAccepted(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 2, 7, 32} {
		idx, res, found, err := First(points, noState,
			func(_ struct{}, p int) (int, error) { return p * 10, nil },
			func(r int) bool { return r >= 370 }, // first true at index 37
			Workers(workers))
		if err != nil || !found {
			t.Fatalf("workers=%d: found=%v err=%v", workers, found, err)
		}
		if idx != 37 || res != 370 {
			t.Fatalf("workers=%d: got (%d, %d), want (37, 370)", workers, idx, res)
		}
	}
}

func TestFirstNotFound(t *testing.T) {
	points := []int{1, 2, 3}
	_, _, found, err := First(points, noState,
		func(_ struct{}, p int) (int, error) { return p, nil },
		func(int) bool { return false },
		Workers(2))
	if err != nil || found {
		t.Fatalf("found=%v err=%v, want not found", found, err)
	}
}

func TestFirstErrorBeforeAcceptWins(t *testing.T) {
	boom := errors.New("boom")
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 4} {
		// Error at index 5, acceptance only at index 20: the serial scan
		// stops at the error, so the search must fail.
		_, _, _, err := First(points, noState,
			func(_ struct{}, p int) (int, error) {
				if p == 5 {
					return 0, boom
				}
				return p, nil
			},
			func(r int) bool { return r == 20 },
			Workers(workers))
		if !errors.Is(err, boom) || !strings.Contains(err.Error(), "point 5") {
			t.Fatalf("workers=%d: err = %v, want point 5", workers, err)
		}
	}
}

func TestFirstErrorAfterAcceptIgnored(t *testing.T) {
	boom := errors.New("boom")
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 4} {
		// Acceptance at index 3, error at index 30: the serial scan exits
		// at 3 and never reaches 30, so the parallel search must too.
		idx, _, found, err := First(points, noState,
			func(_ struct{}, p int) (int, error) {
				if p == 30 {
					return 0, boom
				}
				return p, nil
			},
			func(r int) bool { return r == 3 },
			Workers(workers))
		if err != nil || !found || idx != 3 {
			t.Fatalf("workers=%d: idx=%d found=%v err=%v, want (3, true, nil)", workers, idx, found, err)
		}
	}
}

func TestFirstBoundedOvershoot(t *testing.T) {
	points := make([]int, 1000)
	for i := range points {
		points[i] = i
	}
	const workers = 4
	var evals atomic.Int64
	idx, _, found, err := First(points, noState,
		func(_ struct{}, p int) (int, error) {
			evals.Add(1)
			return p, nil
		},
		func(r int) bool { return r >= 2 },
		Workers(workers))
	if err != nil || !found || idx != 2 {
		t.Fatalf("idx=%d found=%v err=%v", idx, found, err)
	}
	// Workers stop claiming once the bound is set. The exact overshoot
	// depends on scheduling (claims issued while the accepting eval is in
	// flight), so only assert the scan clearly did not run to completion.
	if n := evals.Load(); n >= int64(len(points))/2 {
		t.Fatalf("early exit did not bound the scan: %d of %d evaluations", n, len(points))
	}
}

func TestFirstEmpty(t *testing.T) {
	_, _, found, err := First(nil, noState,
		func(_ struct{}, p int) (int, error) { return p, nil },
		func(int) bool { return true })
	if err != nil || found {
		t.Fatalf("found=%v err=%v on empty input", found, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("override %d, want 3", got)
	}
	SetDefaultWorkers(-5)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestCrossOrder(t *testing.T) {
	got := Cross([]string{"a", "b"}, []int{1, 2, 3})
	want := []Pair[string, int]{
		{"a", 1}, {"a", 2}, {"a", 3},
		{"b", 1}, {"b", 2}, {"b", 3},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// BenchmarkSweepEngineOverhead measures the engine's per-point dispatch
// cost with a trivial evaluation, serial vs pooled.
func BenchmarkSweepEngineOverhead(b *testing.B) {
	points := make([]int, 1024)
	eval := func(p int) (int, error) { return p + 1, nil }
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(points, eval, Workers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(points, eval, Workers(runtime.GOMAXPROCS(0))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
