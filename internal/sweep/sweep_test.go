package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

var bg = context.Background()

func TestRunOrdered(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 2, 3, 8, 64, 200} {
		got, err := Run(bg, points, func(p int) (int, error) { return p * p, nil }, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(points) {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	points := make([]float64, 257)
	for i := range points {
		points[i] = float64(i) * 0.37
	}
	eval := func(p float64) (float64, error) { return p*p + 1/(p+1), nil }
	serial, err := Run(bg, points, eval, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(bg, points, eval, Workers(7))
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical, not merely approximately equal.
	if fmt.Sprintf("%v", serial) != fmt.Sprintf("%v", parallel) {
		t.Fatal("parallel results differ from serial")
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	got, err := Run(bg, nil, func(p int) (int, error) { return p, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v, %v", got, err)
	}
	got, err = Run(bg, []int{41}, func(p int) (int, error) { return p + 1, nil }, Workers(16))
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single run: %v, %v", got, err)
	}
}

func TestRunNilContext(t *testing.T) {
	// A nil context means "not cancellable", matching context.Background().
	got, err := Run(nil, []int{1, 2}, func(p int) (int, error) { return p, nil }, Workers(2))
	if err != nil || len(got) != 2 {
		t.Fatalf("nil ctx run: %v, %v", got, err)
	}
}

func TestRunFailFast(t *testing.T) {
	boom := errors.New("boom")
	points := make([]int, 500)
	for i := range points {
		points[i] = i
	}
	var evals atomic.Int64
	_, err := Run(bg, points, func(p int) (int, error) {
		evals.Add(1)
		if p == 3 {
			return 0, boom
		}
		return p, nil
	}, Workers(4))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "point 3") {
		t.Fatalf("err = %v, want point index 3", err)
	}
	if n := evals.Load(); n >= int64(len(points)) {
		t.Fatalf("fail-fast did not stop the sweep: %d evaluations", n)
	}
}

func TestRunSerialErrorIndex(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(bg, []int{0, 1, 2}, func(p int) (int, error) {
		if p > 0 {
			return 0, boom
		}
		return p, nil
	}, Workers(1))
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("err = %v, want point 1", err)
	}
}

func TestRunStateReuse(t *testing.T) {
	var built atomic.Int64
	points := make([]int, 64)
	const workers = 4
	got, err := RunState(bg, points,
		func() (*int, error) {
			built.Add(1)
			return new(int), nil
		},
		func(st *int, _ int) (int, error) {
			*st++ // worker-private: must never race
			return *st, nil
		},
		Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if n := built.Load(); n > workers || n < 1 {
		t.Fatalf("built %d states for %d workers", n, workers)
	}
	var total int
	for _, g := range got {
		total += g
	}
	// Each worker's state counts 1..k for the k points it claimed; the
	// per-worker sums of 1..k always total at least len(points).
	if total < len(points) {
		t.Fatalf("state reuse accounting broken: total %d", total)
	}
}

func TestRunStateConstructorError(t *testing.T) {
	boom := errors.New("no state")
	_, err := RunState(bg, []int{1, 2, 3},
		func() (int, error) { return 0, boom },
		func(int, int) (int, error) { return 0, nil },
		Workers(2))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want state error", err)
	}
	_, err = RunState(bg, []int{1, 2, 3},
		func() (int, error) { return 0, boom },
		func(int, int) (int, error) { return 0, nil },
		Workers(1))
	if !errors.Is(err, boom) {
		t.Fatalf("serial err = %v, want state error", err)
	}
}

// leakCheck returns a func that fails the test if the goroutine count has
// not returned to (near) its starting value — the engine must not leave
// workers behind after a cancelled sweep.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestRunCancelMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		check := leakCheck(t)
		ctx, cancel := context.WithCancel(bg)
		points := make([]int, 1000)
		for i := range points {
			points[i] = i
		}
		var evals atomic.Int64
		start := time.Now()
		_, err := Run(ctx, points, func(p int) (int, error) {
			if evals.Add(1) == 3 {
				cancel() // cancel from inside the sweep: the next claims must stop
			}
			time.Sleep(100 * time.Microsecond)
			return p, nil
		}, Workers(workers))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Prompt return: nowhere near the full 1000-point sweep.
		if n := evals.Load(); n >= int64(len(points))/2 {
			t.Fatalf("workers=%d: cancellation did not stop the sweep (%d evaluations)", workers, n)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("workers=%d: cancelled sweep took %v", workers, el)
		}
		check()
	}
}

func TestRunCompletedSweepWinsOverLateCancel(t *testing.T) {
	// Cancellation arriving once every point has been evaluated must not
	// discard the finished sweep: the serial loop would never observe it.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(bg)
		points := []int{0, 1, 2, 3, 4, 5, 6, 7}
		var evals atomic.Int64
		got, err := Run(ctx, points, func(p int) (int, error) {
			if int(evals.Add(1)) == len(points) {
				cancel() // fires inside the last evaluation
			}
			return p, nil
		}, Workers(workers))
		cancel()
		if err != nil || len(got) != len(points) {
			t.Fatalf("workers=%d: completed sweep lost to late cancel: %v, %v", workers, got, err)
		}
	}
}

func TestFirstAcceptWinsOverLateCancel(t *testing.T) {
	// An acceptance that settles before the cancellation is a result the
	// serial scan would have returned — it must survive workers observing
	// ctx while they drain.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(bg)
		points := make([]int, 200)
		for i := range points {
			points[i] = i
		}
		idx, res, found, err := First(ctx, points, noState,
			func(_ struct{}, p int) (int, error) {
				if p == 2 {
					cancel() // cancel from inside the accepting evaluation
				}
				return p, nil
			},
			func(r int) bool { return r == 2 },
			Workers(workers))
		cancel()
		if err != nil || !found || idx != 2 || res != 2 {
			t.Fatalf("workers=%d: accepted result lost to late cancel: idx=%d found=%v err=%v", workers, idx, found, err)
		}
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	for _, workers := range []int{1, 4} {
		var evals atomic.Int64
		_, err := Run(ctx, []int{1, 2, 3, 4, 5, 6, 7, 8}, func(p int) (int, error) {
			evals.Add(1)
			return p, nil
		}, Workers(workers))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := evals.Load(); n != 0 {
			t.Fatalf("workers=%d: %d evaluations on a pre-cancelled context", workers, n)
		}
	}
}

func TestRunStateCancel(t *testing.T) {
	check := leakCheck(t)
	ctx, cancel := context.WithCancel(bg)
	points := make([]int, 500)
	var evals atomic.Int64
	_, err := RunState(ctx, points,
		func() (int, error) { return 0, nil },
		func(_ int, p int) (int, error) {
			if evals.Add(1) == 2 {
				cancel()
			}
			time.Sleep(100 * time.Microsecond)
			return p, nil
		},
		Workers(4))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := evals.Load(); n >= int64(len(points))/2 {
		t.Fatalf("cancellation did not stop the sweep (%d evaluations)", n)
	}
	check()
}

func TestFirstCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		check := leakCheck(t)
		ctx, cancel := context.WithCancel(bg)
		points := make([]int, 1000)
		for i := range points {
			points[i] = i
		}
		var evals atomic.Int64
		_, _, found, err := First(ctx, points, noState,
			func(_ struct{}, p int) (int, error) {
				if evals.Add(1) == 3 {
					cancel()
				}
				time.Sleep(100 * time.Microsecond)
				return p, nil
			},
			func(int) bool { return false }, // never accepts: only ctx stops the scan early
			Workers(workers))
		cancel()
		if found || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: found=%v err=%v, want context.Canceled", workers, found, err)
		}
		if n := evals.Load(); n >= int64(len(points))/2 {
			t.Fatalf("workers=%d: cancellation did not stop the scan (%d evaluations)", workers, n)
		}
		check()
	}
}

func noState() (struct{}, error) { return struct{}{}, nil }

func TestFirstFindsLowestAccepted(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 2, 7, 32} {
		idx, res, found, err := First(bg, points, noState,
			func(_ struct{}, p int) (int, error) { return p * 10, nil },
			func(r int) bool { return r >= 370 }, // first true at index 37
			Workers(workers))
		if err != nil || !found {
			t.Fatalf("workers=%d: found=%v err=%v", workers, found, err)
		}
		if idx != 37 || res != 370 {
			t.Fatalf("workers=%d: got (%d, %d), want (37, 370)", workers, idx, res)
		}
	}
}

func TestFirstNotFound(t *testing.T) {
	points := []int{1, 2, 3}
	_, _, found, err := First(bg, points, noState,
		func(_ struct{}, p int) (int, error) { return p, nil },
		func(int) bool { return false },
		Workers(2))
	if err != nil || found {
		t.Fatalf("found=%v err=%v, want not found", found, err)
	}
}

func TestFirstErrorBeforeAcceptWins(t *testing.T) {
	boom := errors.New("boom")
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 4} {
		// Error at index 5, acceptance only at index 20: the serial scan
		// stops at the error, so the search must fail.
		_, _, _, err := First(bg, points, noState,
			func(_ struct{}, p int) (int, error) {
				if p == 5 {
					return 0, boom
				}
				return p, nil
			},
			func(r int) bool { return r == 20 },
			Workers(workers))
		if !errors.Is(err, boom) || !strings.Contains(err.Error(), "point 5") {
			t.Fatalf("workers=%d: err = %v, want point 5", workers, err)
		}
	}
}

func TestFirstErrorAfterAcceptIgnored(t *testing.T) {
	boom := errors.New("boom")
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 4} {
		// Acceptance at index 3, error at index 30: the serial scan exits
		// at 3 and never reaches 30, so the parallel search must too.
		idx, _, found, err := First(bg, points, noState,
			func(_ struct{}, p int) (int, error) {
				if p == 30 {
					return 0, boom
				}
				return p, nil
			},
			func(r int) bool { return r == 3 },
			Workers(workers))
		if err != nil || !found || idx != 3 {
			t.Fatalf("workers=%d: idx=%d found=%v err=%v, want (3, true, nil)", workers, idx, found, err)
		}
	}
}

func TestFirstBoundedOvershoot(t *testing.T) {
	points := make([]int, 1000)
	for i := range points {
		points[i] = i
	}
	const workers = 4
	var evals atomic.Int64
	idx, _, found, err := First(bg, points, noState,
		func(_ struct{}, p int) (int, error) {
			evals.Add(1)
			return p, nil
		},
		func(r int) bool { return r >= 2 },
		Workers(workers))
	if err != nil || !found || idx != 2 {
		t.Fatalf("idx=%d found=%v err=%v", idx, found, err)
	}
	// Workers stop claiming once the bound is set. The exact overshoot
	// depends on scheduling (claims issued while the accepting eval is in
	// flight), so only assert the scan clearly did not run to completion.
	if n := evals.Load(); n >= int64(len(points))/2 {
		t.Fatalf("early exit did not bound the scan: %d of %d evaluations", n, len(points))
	}
}

func TestFirstEmpty(t *testing.T) {
	_, _, found, err := First(bg, nil, noState,
		func(_ struct{}, p int) (int, error) { return p, nil },
		func(int) bool { return true })
	if err != nil || found {
		t.Fatalf("found=%v err=%v on empty input", found, err)
	}
}

func TestCrossOrder(t *testing.T) {
	got := Cross([]string{"a", "b"}, []int{1, 2, 3})
	want := []Pair[string, int]{
		{"a", 1}, {"a", 2}, {"a", 3},
		{"b", 1}, {"b", 2}, {"b", 3},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// closerState counts Close calls for the state-lifecycle tests.
type closerState struct{ closes *atomic.Int64 }

func (c *closerState) Close() error {
	c.closes.Add(1)
	return nil
}

// TestRunStateClosesStates: per-worker states implementing io.Closer are
// closed exactly once per constructed state, on the serial path, the
// pooled path, and through First — the lifecycle hook that lets solve
// sessions release their worker teams.
func TestRunStateClosesStates(t *testing.T) {
	points := make([]int, 50)
	for _, workers := range []int{1, 4} {
		var built, closes atomic.Int64
		newState := func() (*closerState, error) {
			built.Add(1)
			return &closerState{closes: &closes}, nil
		}
		_, err := RunState(bg, points, newState,
			func(st *closerState, p int) (int, error) { return p, nil },
			Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if built.Load() == 0 || closes.Load() != built.Load() {
			t.Fatalf("workers=%d: %d states built, %d closed", workers, built.Load(), closes.Load())
		}

		built.Store(0)
		closes.Store(0)
		_, _, found, err := First(bg, points, newState,
			func(st *closerState, p int) (int, error) { return p, nil },
			func(int) bool { return true },
			Workers(workers))
		if err != nil || !found {
			t.Fatalf("workers=%d: First found=%v err=%v", workers, found, err)
		}
		if built.Load() == 0 || closes.Load() != built.Load() {
			t.Fatalf("workers=%d: First %d states built, %d closed", workers, built.Load(), closes.Load())
		}
	}
	// Non-closer states keep working untouched.
	if _, err := RunState(bg, points,
		func() (int, error) { return 0, nil },
		func(int, int) (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSweepEngineOverhead measures the engine's per-point dispatch
// cost with a trivial evaluation, serial vs pooled.
func BenchmarkSweepEngineOverhead(b *testing.B) {
	points := make([]int, 1024)
	eval := func(p int) (int, error) { return p + 1, nil }
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(bg, points, eval, Workers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(bg, points, eval, Workers(runtime.GOMAXPROCS(0))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
