package linalg

import (
	"errors"
	"math"
	"testing"
)

// negOperator is -I: definitely not positive definite.
type negOperator struct{ n int }

func (o negOperator) Size() int { return o.n }
func (o negOperator) Apply(x, y Vector) {
	for i := range x {
		y[i] = -x[i]
	}
}

func TestCGRejectsNonSPD(t *testing.T) {
	n := 10
	b := make(Vector, n)
	b.Fill(1)
	x := make(Vector, n)
	_, err := CG(negOperator{n}, b, x, CGOptions{})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("non-SPD operator should abort with ErrNotConverged, got %v", err)
	}
	var se *SolveError
	if !errors.As(err, &se) || se.Cause != CauseBreakdown {
		t.Fatalf("non-SPD operator should report CauseBreakdown, got %v", err)
	}
}

func TestDenseMulVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch must panic")
		}
	}()
	m := NewDense(2, 3)
	m.MulVec(make(Vector, 2), make(Vector, 2))
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims must panic")
		}
	}()
	NewDense(-1, 2)
}

func TestDenseAddAt(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 5 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone aliases")
	}
}

func TestSORDefaultOptions(t *testing.T) {
	n := 30
	op := laplace1D{n}
	want := make(Vector, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	b := poissonRHS(n, want)
	x := make(Vector, n)
	// Zero-value options must be filled with sane defaults.
	if _, err := SOR(op, b, x, SOROptions{MaxIter: 100000}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-4 {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestSORZeroRHS(t *testing.T) {
	n := 10
	op := laplace1D{n}
	x := make(Vector, n)
	if _, err := SOR(op, make(Vector, n), x, SOROptions{}); err != nil {
		t.Fatal(err)
	}
	if x.NormInf() > 1e-7 {
		t.Fatalf("zero RHS should stay zero, got %v", x.NormInf())
	}
}

func TestVectorFill(t *testing.T) {
	v := make(Vector, 3)
	v.Fill(7)
	for _, x := range v {
		if x != 7 {
			t.Fatal("Fill wrong")
		}
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for _, f := range []func(){
		func() { Vector{}.Max() },
		func() { Vector{}.Min() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("empty Max/Min must panic")
				}
			}()
			f()
		}()
	}
}

func TestLUSolveWrongLength(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(Vector{1, 2, 3}); err == nil {
		t.Fatal("wrong RHS length must error")
	}
}
