package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// lap1DLevel is a 1-D conductance-chain Poisson operator with Dirichlet
// walls at both ends, implementing Smoother. Interior edges have
// conductance g; the end cells couple to the walls with conductance wall.
// Rediscretizing on a 2:1-coarsened grid halves g (the cell pitch
// doubles) but keeps wall as is — external couplings are aggregated, not
// stretched — mirroring the rule the thermal hierarchy uses for its
// boundary conductances. At g = wall = 1 the fine level is the classic
// tridiag(-1, 2, -1).
type lap1DLevel struct {
	n    int
	g    float64 // interior edge conductance
	wall float64 // end-cell coupling to the Dirichlet wall
}

func (l lap1DLevel) Size() int { return l.n }

func (l lap1DLevel) diag(i int) float64 {
	d := 2 * l.g
	if i == 0 {
		d += l.wall - l.g
	}
	if i == l.n-1 {
		d += l.wall - l.g
	}
	return d
}

func (l lap1DLevel) Apply(x, y Vector) {
	for i := 0; i < l.n; i++ {
		s := l.diag(i) * x[i]
		if i > 0 {
			s -= l.g * x[i-1]
		}
		if i < l.n-1 {
			s -= l.g * x[i+1]
		}
		y[i] = s
	}
}

func (l lap1DLevel) Residual(b, x, r Vector) {
	l.Apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

func (l lap1DLevel) Smooth(b, x Vector, reverse bool) {
	colors := [2]int{0, 1}
	if reverse {
		colors = [2]int{1, 0}
	}
	for _, color := range colors {
		for i := color; i < l.n; i += 2 {
			s := b[i]
			if i > 0 {
				s += l.g * x[i-1]
			}
			if i < l.n-1 {
				s += l.g * x[i+1]
			}
			x[i] = s / l.diag(i)
		}
	}
}

// lap1DTransfer is the cell-centered 2:1 transfer pair: bilinear
// prolongation with constant fallback at the ends, and its transpose as
// full-weighting restriction.
type lap1DTransfer struct{ nf, nc int }

func (t lap1DTransfer) weights(i int) (p, o int, wo float64) {
	p = i / 2
	o = p + 1
	if i%2 == 0 {
		o = p - 1
	}
	if o < 0 || o >= t.nc {
		return p, -1, 0
	}
	return p, o, 0.25
}

func (t lap1DTransfer) Restrict(fine, coarse Vector) {
	coarse.Fill(0)
	for i := 0; i < t.nf; i++ {
		p, o, wo := t.weights(i)
		coarse[p] += (1 - wo) * fine[i]
		if o >= 0 {
			coarse[o] += wo * fine[i]
		}
	}
}

func (t lap1DTransfer) Prolong(coarse, fine Vector) {
	for i := 0; i < t.nf; i++ {
		p, o, wo := t.weights(i)
		v := (1 - wo) * coarse[p]
		if o >= 0 {
			v += wo * coarse[o]
		}
		fine[i] += v
	}
}

// buildLap1DMG assembles a hierarchy for an n-point 1-D Poisson problem,
// coarsening until 8 points remain.
func buildLap1DMG(t testing.TB, n int) *Multigrid {
	t.Helper()
	var levels []MGLevel
	g := 1.0
	for {
		lv := MGLevel{A: lap1DLevel{n: n, g: g, wall: 1}}
		if n > 8 {
			lv.Down = lap1DTransfer{nf: n, nc: (n + 1) / 2}
		}
		levels = append(levels, lv)
		if n <= 8 {
			break
		}
		n = (n + 1) / 2
		g /= 2
	}
	mg, err := NewMultigrid(levels)
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

// TestMGSolvePoisson: V-cycles alone must solve the 1-D Poisson problem
// to tight tolerance in a resolution-independent number of cycles: the
// count must not grow as the grid refines 16× (unlike CG or SOR, whose
// iteration counts scale with a power of n).
func TestMGSolvePoisson(t *testing.T) {
	cycles := map[int]int{}
	for _, n := range []int{64, 256, 1024} {
		want := make(Vector, n)
		for i := range want {
			want[i] = math.Sin(float64(i)*0.05) + 0.3*math.Cos(float64(i)*0.011)
		}
		b := poissonRHS(n, want)
		mg := buildLap1DMG(t, n)
		mg.Pre, mg.Post = 2, 2
		x := make(Vector, n)
		res, err := MGSolve(mg, b, x, MGOptions{Tol: 1e-11})
		if err != nil {
			t.Fatalf("n=%d: MGSolve failed after %d cycles, res %g: %v", n, res.Iterations, res.Residual, err)
		}
		cycles[n] = res.Iterations
		if res.Iterations > 40 {
			t.Fatalf("n=%d: %d cycles — V-cycle convergence has degraded", n, res.Iterations)
		}
		for i := range want {
			if !almostEqual(x[i], want[i], 1e-6) {
				t.Fatalf("n=%d: x[%d]=%v want %v", n, i, x[i], want[i])
			}
		}
	}
	// 16× refinement may cost a few extra cycles (boundary interpolation
	// is only first-order at the Dirichlet walls) but nothing like the
	// 16× more iterations an unpreconditioned Krylov solver would need.
	if cycles[1024] > cycles[64]+10 {
		t.Fatalf("cycle count grows with resolution: %v", cycles)
	}
}

// TestMGPreconditionedCG: with a V-cycle as preconditioner, CG must
// converge in far fewer iterations than with Jacobi alone, and reach the
// same answer.
func TestMGPreconditionedCG(t *testing.T) {
	const n = 512
	want := make(Vector, n)
	for i := range want {
		want[i] = float64(i%13) - 6
	}
	op := lap1DLevel{n: n, g: 1, wall: 1}
	b := poissonRHS(n, want)

	xJacobi := make(Vector, n)
	inv := make(Vector, n)
	inv.Fill(0.5)
	resJacobi, err := CG(op, b, xJacobi, CGOptions{Tol: 1e-11, Precond: &DiagonalPreconditioner{InvDiag: inv}})
	if err != nil {
		t.Fatal(err)
	}
	xMG := make(Vector, n)
	resMG, err := CG(op, b, xMG, CGOptions{Tol: 1e-11, Precond: buildLap1DMG(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	if resMG.Iterations*5 > resJacobi.Iterations {
		t.Fatalf("MG-PCG took %d iterations vs Jacobi-CG %d — expected at least 5× fewer",
			resMG.Iterations, resJacobi.Iterations)
	}
	// Applies must charge the V-cycle work: K+1 operator applications
	// plus ApplyCost (= Pre+Post+1 = 3) for each of the K preconditioner
	// applications (one initial, one per completed iteration).
	if want := resMG.Iterations + 1 + 3*resMG.Iterations; resMG.Applies != want {
		t.Fatalf("MG-PCG applies = %d, want %d (V-cycle work must be charged)", resMG.Applies, want)
	}
	for i := range want {
		if !almostEqual(xMG[i], want[i], 1e-6) {
			t.Fatalf("x[%d]=%v want %v", i, xMG[i], want[i])
		}
	}
}

// TestMGPreconditionerSymmetric: the V-cycle must be a symmetric linear
// map (⟨u, M⁻¹v⟩ == ⟨M⁻¹u, v⟩) — the property CG requires of its
// preconditioner, guaranteed by the forward/reverse smoothing pairing and
// transposed transfers.
func TestMGPreconditionerSymmetric(t *testing.T) {
	const n = 96
	mg := buildLap1DMG(t, n)
	rng := rand.New(rand.NewSource(3))
	u := make(Vector, n)
	v := make(Vector, n)
	mu := make(Vector, n)
	mv := make(Vector, n)
	for trial := 0; trial < 5; trial++ {
		for i := 0; i < n; i++ {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		mg.Apply(u, mu)
		mg.Apply(v, mv)
		left := u.Dot(mv)
		right := mu.Dot(v)
		if math.Abs(left-right) > 1e-9*(math.Abs(left)+math.Abs(right)+1) {
			t.Fatalf("trial %d: V-cycle not symmetric: %g vs %g", trial, left, right)
		}
	}
}

// TestMGCycleZeroAllocs: cycles and preconditioner applications must not
// touch the heap once the hierarchy exists.
func TestMGCycleZeroAllocs(t *testing.T) {
	const n = 128
	mg := buildLap1DMG(t, n)
	want := make(Vector, n)
	for i := range want {
		want[i] = float64(i) / 7
	}
	b := poissonRHS(n, want)
	x := make(Vector, n)
	cycle := func() { mg.Cycle(b, x) }
	cycle() // warm-up
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("V-cycle allocated %.1f times per run, want 0", allocs)
	}
	z := make(Vector, n)
	apply := func() { mg.Apply(b, z) }
	apply()
	if allocs := testing.AllocsPerRun(20, apply); allocs != 0 {
		t.Fatalf("preconditioner Apply allocated %.1f times per run, want 0", allocs)
	}
}

// TestNewMultigridValidation: malformed hierarchies are rejected.
func TestNewMultigridValidation(t *testing.T) {
	if _, err := NewMultigrid(nil); err == nil {
		t.Fatal("empty hierarchy must error")
	}
	if _, err := NewMultigrid([]MGLevel{{A: lap1DLevel{n: 8, g: 1, wall: 1}, Down: lap1DTransfer{nf: 8, nc: 4}}}); err == nil {
		t.Fatal("coarsest level with a transfer must error")
	}
	if _, err := NewMultigrid([]MGLevel{
		{A: lap1DLevel{n: 8, g: 1, wall: 1}},
		{A: lap1DLevel{n: 4, g: 0.5, wall: 1}},
	}); err == nil {
		t.Fatal("fine level without a transfer must error")
	}
}
