package linalg

import (
	"math"
	"testing"
)

// The tests in this file pin the tentpole contract of the worker team:
// thread count is a pure performance knob. Every kernel — and every full
// CG solve built on them — must return byte-identical results at any
// team width, enforced here by comparing against the serial (nil-team)
// path. Running them under -race doubles as the data-race gate for the
// team and the fused kernels.

// parVec builds a deterministic, sign-varying test vector.
func parVec(n int, seed float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = math.Sin(seed+float64(i)*0.7) + 0.01*float64(i%17)
	}
	return v
}

func TestBandPartitionsExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 4097} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			covered := 0
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Band(n, w, workers)
				if lo != prevHi {
					t.Fatalf("Band(%d,%d,%d): lo %d, want %d", n, w, workers, lo, prevHi)
				}
				if hi < lo || hi > n {
					t.Fatalf("Band(%d,%d,%d): bad hi %d", n, w, workers, hi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("Band(%d,_,%d) covered %d ending at %d", n, workers, covered, prevHi)
			}
		}
	}
}

// TestReductionKernelsByteIdenticalAcrossTeams runs every reduction and
// fused kernel at several team widths and demands bit equality with the
// serial result — the fixed-chunk/fixed-order contract.
func TestReductionKernelsByteIdenticalAcrossTeams(t *testing.T) {
	const n = 3*ParChunk + 517 // ragged chunk tail on purpose
	a, b := parVec(n, 1), parVec(n, 2)
	invD := parVec(n, 3)
	for i := range invD {
		invD[i] = 1 / (2 + math.Abs(invD[i]))
	}

	ws := NewCGWorkspace(n)
	wantDot := ws.dot(a, b)

	xRef, rRef := a.Clone(), b.Clone()
	wantNorm := ws.fusedUpdate(xRef, rRef, a, b, 0.37)

	zRef := make(Vector, n)
	wantJac := ws.jacobiDot(rRef, invD, zRef)

	for _, workers := range []int{2, 3, 5, 8} {
		team := NewTeam(workers)
		tws := NewCGWorkspace(n)
		tws.SetTeam(team)
		if got := tws.dot(a, b); got != wantDot {
			t.Errorf("dot at %d workers: %x, serial %x", workers, got, wantDot)
		}
		x, r := a.Clone(), b.Clone()
		if got := tws.fusedUpdate(x, r, a, b, 0.37); got != wantNorm {
			t.Errorf("fusedUpdate norm at %d workers: %x, serial %x", workers, got, wantNorm)
		}
		for i := range x {
			if x[i] != xRef[i] || r[i] != rRef[i] {
				t.Fatalf("fusedUpdate vectors differ at %d workers, element %d", workers, i)
			}
		}
		z := make(Vector, n)
		if got := tws.jacobiDot(r, invD, z); got != wantJac {
			t.Errorf("jacobiDot at %d workers: %x, serial %x", workers, got, wantJac)
		}
		for i := range z {
			if z[i] != zRef[i] {
				t.Fatalf("jacobiDot z differs at %d workers, element %d", workers, i)
			}
		}
		team.Close()
	}
}

// lap1D is a shifted 1-D Laplacian (SPD, well conditioned) used to
// exercise full CG solves over the team.
type lap1D struct{ n int }

func (o lap1D) Size() int { return o.n }
func (o lap1D) Apply(x, y Vector) {
	for i := range y {
		v := 3 * x[i]
		if i > 0 {
			v -= x[i-1]
		}
		if i < o.n-1 {
			v -= x[i+1]
		}
		y[i] = v
	}
}

// TestCGByteIdenticalAcrossTeams solves the same SPD system serially and
// over teams of several widths; the iterates share every reduction, so
// the solutions and the convergence reports must match exactly.
func TestCGByteIdenticalAcrossTeams(t *testing.T) {
	const n = 2*ParMin + 331
	op := lap1D{n: n}
	b := parVec(n, 4)
	invD := make(Vector, n)
	for i := range invD {
		invD[i] = 1.0 / 3
	}

	for _, precond := range []Preconditioner{nil, &DiagonalPreconditioner{InvDiag: invD}} {
		xRef := make(Vector, n)
		ref, err := CGWith(op, b, xRef, CGOptions{Tol: 1e-12, Precond: precond}, NewCGWorkspace(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			team := NewTeam(workers)
			ws := NewCGWorkspace(n)
			ws.SetTeam(team)
			x := make(Vector, n)
			res, err := CGWith(op, b, x, CGOptions{Tol: 1e-12, Precond: precond}, ws)
			team.Close()
			if err != nil {
				t.Fatal(err)
			}
			if res != ref {
				t.Errorf("precond=%T %d workers: result %+v, serial %+v", precond, workers, res, ref)
			}
			for i := range x {
				if x[i] != xRef[i] {
					t.Fatalf("precond=%T %d workers: x[%d] %x, serial %x", precond, workers, i, x[i], xRef[i])
				}
			}
		}
	}
}

// TestCGWithTeamZeroAllocs extends the PR 2 zero-alloc contract to the
// parallel path: a warm workspace with an attached team must dispatch
// every kernel without allocating.
func TestCGWithTeamZeroAllocs(t *testing.T) {
	const n = ParMin + 100
	var op Operator = lap1D{n: n} // one interface conversion, outside the loop
	b := parVec(n, 5)
	team := NewTeam(4)
	defer team.Close()
	ws := NewCGWorkspace(n)
	ws.SetTeam(team)
	x := make(Vector, n)
	solve := func() {
		x.Fill(0)
		if _, err := CGWith(op, b, x, CGOptions{Tol: 1e-10}, ws); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm-up
	if allocs := testing.AllocsPerRun(10, solve); allocs != 0 {
		t.Fatalf("team-parallel CG allocated %.1f times per run, want 0", allocs)
	}
}

func TestTeamCloseIsIdempotentAndSerialAfter(t *testing.T) {
	team := NewTeam(3)
	if team.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", team.Workers())
	}
	team.Close()
	team.Close() // must not panic
	if team.Workers() != 1 {
		t.Fatalf("closed team Workers() = %d, want 1", team.Workers())
	}
	// Running after Close degrades to the serial path.
	k := &xpbyTask{p: parVec(64, 1), z: parVec(64, 2), beta: 0.5}
	team.Run(k)

	if NewTeam(1) != nil {
		t.Fatal("NewTeam(1) must be the nil serial team")
	}
	var nilTeam *Team
	nilTeam.Run(k)
	nilTeam.Close()
	if nilTeam.Workers() != 1 {
		t.Fatal("nil team must report one worker")
	}
}
