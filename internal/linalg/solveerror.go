package linalg

import (
	"fmt"
	"math"
)

// Cause classifies why an iterative solve stopped without converging.
// The distinction matters to callers: a MaxIter failure means "needs more
// work or a better preconditioner" (retrying the same solver is
// pointless but the iterate is still meaningful), while NaN and Breakdown
// mean the iterate is poisoned and any warm-start state derived from it
// must be discarded before retrying on a safer solver.
type Cause int

// Failure causes.
const (
	// CauseMaxIter: the iteration budget ran out before the tolerance was
	// met. The final iterate is the best approximation produced.
	CauseMaxIter Cause = iota
	// CauseNaN: a NaN or Inf contaminated the recurrence (overflow, a
	// poisoned warm-start seed, or a fault-injected preconditioner). The
	// iterate is unusable.
	CauseNaN
	// CauseBreakdown: the Krylov recurrence observed pᵀAp ≤ 0, i.e. the
	// (preconditioned) operator is not symmetric positive definite along
	// the search direction. Typical trigger: a preconditioner that lost
	// SPD-ness (float32 rounding under extreme conductance ratios).
	CauseBreakdown
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseMaxIter:
		return "maxiter"
	case CauseNaN:
		return "nan"
	case CauseBreakdown:
		return "breakdown"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// SolveError is the diagnostic failure report of an iterative solver: the
// cause, how far the solve got, and the last relative residual. It wraps
// ErrNotConverged, so existing callers testing
// errors.Is(err, ErrNotConverged) keep working unchanged.
type SolveError struct {
	// Method is the solver that failed ("cg", "sor", "mg").
	Method string
	// Cause classifies the failure.
	Cause Cause
	// Iterations is the iteration (or sweep / V-cycle) count reached.
	Iterations int
	// Residual is the final relative residual ‖r‖/‖b‖ (may be NaN for
	// CauseNaN failures).
	Residual float64
}

// Error formats the diagnostic.
func (e *SolveError) Error() string {
	return fmt.Sprintf("linalg: %s did not converge (%s after %d iterations, residual %.3g)",
		e.Method, e.Cause, e.Iterations, e.Residual)
}

// Unwrap makes errors.Is(err, ErrNotConverged) hold for every SolveError.
func (e *SolveError) Unwrap() error { return ErrNotConverged }

// Recoverable reports whether the iterate the solver left behind is still
// a meaningful approximation: true for a plain iteration-budget failure,
// false when the recurrence itself broke (NaN, SPD breakdown) and the
// iterate — plus any warm-start state seeded from it — must be discarded.
func (e *SolveError) Recoverable() bool { return e.Cause == CauseMaxIter }

// failure builds the diagnostic error for one solver failure.
func failure(method string, cause Cause, res CGResult) error {
	return &SolveError{Method: method, Cause: cause, Iterations: res.Iterations, Residual: res.Residual}
}

// badFloat reports a NaN or Inf — the sentinel of a poisoned iterate.
func badFloat(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
