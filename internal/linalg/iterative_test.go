package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseOperator adapts a Dense matrix to the Operator interface for tests.
type denseOperator struct{ m *Dense }

func (d denseOperator) Apply(x, y Vector) { d.m.MulVec(x, y) }
func (d denseOperator) Size() int         { return d.m.Rows }

// laplace1D is a 1-D Poisson stencil operator with Dirichlet boundaries,
// exercising both Operator and StencilSweeper.
type laplace1D struct{ n int }

func (l laplace1D) Size() int { return l.n }

func (l laplace1D) Apply(x, y Vector) {
	for i := 0; i < l.n; i++ {
		s := 2 * x[i]
		if i > 0 {
			s -= x[i-1]
		}
		if i < l.n-1 {
			s -= x[i+1]
		}
		y[i] = s
	}
}

func (l laplace1D) SweepSOR(b, x Vector, omega float64) float64 {
	var maxDelta float64
	for i := 0; i < l.n; i++ {
		s := b[i]
		if i > 0 {
			s += x[i-1]
		}
		if i < l.n-1 {
			s += x[i+1]
		}
		xNew := s / 2
		delta := omega * (xNew - x[i])
		x[i] += delta
		if a := math.Abs(delta); a > maxDelta {
			maxDelta = a
		}
	}
	return maxDelta
}

func poissonRHS(n int, want Vector) Vector {
	b := make(Vector, n)
	for i := 0; i < n; i++ {
		b[i] = 2 * want[i]
		if i > 0 {
			b[i] -= want[i-1]
		}
		if i < n-1 {
			b[i] -= want[i+1]
		}
	}
	return b
}

func TestCGPoisson(t *testing.T) {
	n := 200
	want := make(Vector, n)
	for i := range want {
		want[i] = math.Sin(float64(i) * 0.1)
	}
	op := laplace1D{n}
	b := poissonRHS(n, want)
	x := make(Vector, n)
	res, err := CG(op, b, x, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("CG failed after %d iters, res %g: %v", res.Iterations, res.Residual, err)
	}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-6) {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestCGPreconditioned(t *testing.T) {
	n := 120
	op := laplace1D{n}
	want := make(Vector, n)
	for i := range want {
		want[i] = float64(i%7) - 3
	}
	b := poissonRHS(n, want)
	inv := make(Vector, n)
	inv.Fill(0.5) // diag of the stencil is 2
	x := make(Vector, n)
	res, err := CG(op, b, x, CGOptions{Tol: 1e-10, Precond: &DiagonalPreconditioner{InvDiag: inv}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > n {
		t.Fatalf("preconditioned CG too slow: %d iterations", res.Iterations)
	}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-6) {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	op := laplace1D{10}
	x := make(Vector, 10)
	x.Fill(3)
	res, err := CG(op, make(Vector, 10), x, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || x.NormInf() != 0 {
		t.Fatalf("zero RHS should produce zero solution immediately, got %v after %d", x, res.Iterations)
	}
}

func TestCGNonConvergenceBudget(t *testing.T) {
	n := 400
	op := laplace1D{n}
	want := make(Vector, n)
	for i := range want {
		want[i] = math.Cos(float64(i) * 0.05)
	}
	b := poissonRHS(n, want)
	x := make(Vector, n)
	_, err := CG(op, b, x, CGOptions{Tol: 1e-14, MaxIter: 3})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged with tiny budget, got %v", err)
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("expected a *SolveError diagnostic, got %T: %v", err, err)
	}
	if se.Cause != CauseMaxIter || se.Iterations != 3 || !se.Recoverable() {
		t.Fatalf("expected recoverable maxiter after 3 iterations, got %+v", se)
	}
}

func TestSORPoisson(t *testing.T) {
	n := 100
	op := laplace1D{n}
	want := make(Vector, n)
	for i := range want {
		want[i] = float64(i) / 10
	}
	b := poissonRHS(n, want)
	x := make(Vector, n)
	if _, err := SOR(op, b, x, SOROptions{Omega: 1.9, Tol: 1e-11, MaxIter: 200000}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-5) {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestCGMatchesLUOnRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		// Build SPD matrix A = M^T M + n·I.
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += m.At(k, i) * m.At(k, j)
				}
				a.Set(i, j, s)
			}
			a.Add(i, i, float64(n))
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		luX, err := SolveDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		cgX := make(Vector, n)
		if _, err := CG(denseOperator{a}, b, cgX, CGOptions{Tol: 1e-12, MaxIter: 50 * n}); err != nil {
			t.Fatal(err)
		}
		for i := range luX {
			if !almostEqual(cgX[i], luX[i], 1e-6) {
				t.Fatalf("trial %d: CG[%d]=%v LU=%v", trial, i, cgX[i], luX[i])
			}
		}
	}
}

func TestBisect(t *testing.T) {
	cases := []struct {
		name     string
		f        func(float64) float64
		lo, hi   float64
		want     float64
		wantOK   bool
		tol      float64 // comparison tolerance on the root (0 = exact)
		maxIter  int
		interval float64 // bisection interval tolerance
	}{
		{
			name: "bracketed sqrt2",
			f:    func(x float64) float64 { return x*x - 2 },
			lo:   0, hi: 2, want: math.Sqrt2, wantOK: true, tol: 1e-9,
			maxIter: 200, interval: 1e-12,
		},
		{
			name: "root at lo endpoint",
			f:    func(x float64) float64 { return x },
			lo:   0, hi: 1, want: 0, wantOK: true,
			maxIter: 50, interval: 1e-9,
		},
		{
			name: "root at hi endpoint",
			f:    func(x float64) float64 { return x - 1 },
			lo:   0, hi: 1, want: 1, wantOK: true,
			maxIter: 50, interval: 1e-9,
		},
		{
			name: "no bracket, lo closer",
			f:    func(x float64) float64 { return x + 10 },
			lo:   0, hi: 1, want: 0, wantOK: false,
			maxIter: 50, interval: 1e-9,
		},
		{
			name: "no bracket, hi closer",
			f:    func(x float64) float64 { return 10 - x },
			lo:   0, hi: 1, want: 1, wantOK: false,
			maxIter: 50, interval: 1e-9,
		},
		{
			name: "no bracket, tie prefers lo",
			f:    func(x float64) float64 { return x*x + 1 }, // |f(-1)| == |f(1)| == 2
			lo:   -1, hi: 1, want: -1, wantOK: false,
			maxIter: 50, interval: 1e-9,
		},
		{
			name: "negative-slope bracket",
			f:    func(x float64) float64 { return 1 - x*x },
			lo:   0, hi: 3, want: 1, wantOK: true, tol: 1e-8,
			maxIter: 100, interval: 1e-10,
		},
		{
			name: "iteration budget exhausted mid-bracket",
			f:    func(x float64) float64 { return x - 0.7 },
			lo:   0, hi: 1, want: 0.7, wantOK: true, tol: 0.3,
			maxIter: 2, interval: 1e-12,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, ok := Bisect(c.f, c.lo, c.hi, c.interval, c.maxIter)
			if ok != c.wantOK {
				t.Fatalf("ok = %v, want %v", ok, c.wantOK)
			}
			if c.tol == 0 {
				if got != c.want {
					t.Fatalf("root = %v, want exactly %v", got, c.want)
				}
			} else if !almostEqual(got, c.want, c.tol) {
				t.Fatalf("root = %v, want %v ± %g", got, c.want, c.tol)
			}
		})
	}
}

// countingOperator wraps an Operator and counts Apply invocations, to pin
// down the CG work accounting.
type countingOperator struct {
	Operator
	applies int
}

func (c *countingOperator) Apply(x, y Vector) {
	c.applies++
	c.Operator.Apply(x, y)
}

// TestCGAppliesAccounting: CGResult.Applies must equal the true number of
// operator applications — one initial residual plus one per iteration —
// and the hoisted convergence check must not add extra applies.
func TestCGAppliesAccounting(t *testing.T) {
	n := 150
	want := make(Vector, n)
	for i := range want {
		want[i] = math.Sin(float64(i) * 0.21)
	}
	op := &countingOperator{Operator: laplace1D{n}}
	b := poissonRHS(n, want)
	x := make(Vector, n)
	res, err := CG(op, b, x, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applies != op.applies {
		t.Fatalf("reported %d applies, operator saw %d", res.Applies, op.applies)
	}
	if res.Applies != res.Iterations+1 {
		t.Fatalf("applies = %d, want iterations+1 = %d", res.Applies, res.Iterations+1)
	}
	// A converged initial guess must cost exactly the initial residual.
	op.applies = 0
	res, err = CG(op, b, x, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || res.Applies != 1 || op.applies != 1 {
		t.Fatalf("warm-started solve: %+v with %d operator applies, want 0 iterations / 1 apply", res, op.applies)
	}
}

func TestBisectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := rng.Float64()*10 - 5
		g := func(x float64) float64 { return x - target }
		root, ok := Bisect(g, -6, 6, 1e-10, 100)
		return ok && math.Abs(root-target) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1D(t *testing.T) {
	tab := MustTable1D([]float64{0, 1, 2}, []float64{10, 20, 40})
	cases := []struct{ x, want float64 }{
		{-1, 10}, {0, 10}, {0.5, 15}, {1, 20}, {1.5, 30}, {2, 40}, {3, 40},
	}
	for _, c := range cases {
		if got := tab.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("At(%v)=%v want %v", c.x, got, c.want)
		}
	}
	if tab.Min() != 0 || tab.Max() != 2 {
		t.Fatalf("range = [%v %v]", tab.Min(), tab.Max())
	}
}

func TestTable1DInverse(t *testing.T) {
	tab := MustTable1D([]float64{0, 1, 2}, []float64{10, 20, 40})
	inv, err := tab.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if got := inv.At(30); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("inverse At(30)=%v want 1.5", got)
	}
	dec := MustTable1D([]float64{0, 1, 2}, []float64{40, 20, 10})
	invDec, err := dec.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if got := invDec.At(15); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("decreasing inverse At(15)=%v want 1.5", got)
	}
	if _, err := MustTable1D([]float64{0, 1, 2}, []float64{1, 5, 3}).Inverse(); err == nil {
		t.Fatal("non-monotonic inverse should fail")
	}
}

func TestTable1DErrors(t *testing.T) {
	if _, err := NewTable1D([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Fatal("non-increasing xs should error")
	}
	if _, err := NewTable1D(nil, nil); err == nil {
		t.Fatal("empty table should error")
	}
	if _, err := NewTable1D([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
	if Lerp(10, 20, 0.25) != 12.5 {
		t.Fatal("Lerp wrong")
	}
}

// Property: interpolation is monotone for monotone tables.
func TestTableMonotoneProperty(t *testing.T) {
	tab := MustTable1D([]float64{0, 1, 3, 7}, []float64{0, 2, 3, 11})
	f := func(a, b float64) bool {
		x1 := Clamp(math.Abs(a), 0, 7)
		x2 := Clamp(math.Abs(b), 0, 7)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return tab.At(x1) <= tab.At(x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCGWithMatchesCG: the workspace-backed solver must be bit-identical
// to the allocating one — the workspace only changes where scratch lives.
func TestCGWithMatchesCG(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	want := make(Vector, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	op := laplace1D{n: n}
	b := poissonRHS(n, want)

	x1 := make(Vector, n)
	res1, err1 := CG(op, b, x1, CGOptions{Tol: 1e-12})
	x2 := make(Vector, n)
	ws := NewCGWorkspace(n)
	res2, err2 := CGWith(op, b, x2, CGOptions{Tol: 1e-12}, ws)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v vs %v", err1, err2)
	}
	if res1 != res2 {
		t.Fatalf("results differ: %+v vs %+v", res1, res2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solution differs at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
	// Reusing the workspace (dirty scratch) must not change the answer.
	x3 := make(Vector, n)
	res3, err := CGWith(op, b, x3, CGOptions{Tol: 1e-12}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if res3 != res1 {
		t.Fatalf("reused workspace changed the result: %+v vs %+v", res3, res1)
	}
	for i := range x1 {
		if x1[i] != x3[i] {
			t.Fatalf("reused-workspace solution differs at %d", i)
		}
	}
}

// TestCGWithZeroAllocs: after warm-up, a workspace-backed CG solve must
// not touch the heap.
func TestCGWithZeroAllocs(t *testing.T) {
	const n = 128
	rng := rand.New(rand.NewSource(11))
	want := make(Vector, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	op := laplace1D{n: n}
	b := poissonRHS(n, want)
	x := make(Vector, n)
	ws := NewCGWorkspace(n)
	inv := make(Vector, n)
	inv.Fill(0.5)
	pre := DiagonalPreconditioner{InvDiag: inv}
	opts := CGOptions{Tol: 1e-10, Precond: &pre}
	solve := func() {
		x.Fill(0)
		if _, err := CGWith(op, b, x, opts, ws); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm-up
	if allocs := testing.AllocsPerRun(20, solve); allocs != 0 {
		t.Fatalf("CGWith allocated %.1f times per solve, want 0", allocs)
	}
}
