package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zero-initialized rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimensions")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Add accumulates x into the element at row i, column j.
func (m *Dense) Add(i, j int, x float64) { m.Data[i*m.Cols+j] += x }

// Clone returns an independent copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = M·x. It panics on dimension mismatch.
func (m *Dense) MulVec(x, y Vector) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with x=%d y=%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorizeLU computes the LU factorization with partial pivoting of the
// square matrix m. m is not modified.
func FactorizeLU(m *Dense) (*LU, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: LU requires square matrix, got %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	lu := m.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude entry in column k.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Data[k*n : (k+1)*n]
			rp := lu.Data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (f *LU) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU solve length %d for %dx%d system", len(b), n, n)
	}
	x := make(Vector, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense solves A·x = b for a dense square A via LU factorization.
func SolveDense(a *Dense, b Vector) (Vector, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveTridiagonal solves a tridiagonal system using the Thomas algorithm.
// lower, diag, upper are the sub-, main and super-diagonals; lower[0] and
// upper[n-1] are ignored. All inputs are left unmodified.
func SolveTridiagonal(lower, diag, upper, rhs Vector) (Vector, error) {
	n := len(diag)
	if len(lower) != n || len(upper) != n || len(rhs) != n {
		return nil, fmt.Errorf("linalg: tridiagonal length mismatch")
	}
	if n == 0 {
		return Vector{}, nil
	}
	c := make(Vector, n) // modified super-diagonal
	d := make(Vector, n) // modified rhs
	if diag[0] == 0 {
		return nil, ErrSingular
	}
	c[0] = upper[0] / diag[0]
	d[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - lower[i]*c[i-1]
		if den == 0 {
			return nil, ErrSingular
		}
		c[i] = upper[i] / den
		d[i] = (rhs[i] - lower[i]*d[i-1]) / den
	}
	x := make(Vector, n)
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x, nil
}
