package linalg

import "testing"

// streamN is the triad working-set length: 3 × 16 MiB of float64, far
// beyond any last-level cache, so the measured rate is main-memory
// bandwidth rather than cache bandwidth.
const streamN = 1 << 21

// BenchmarkStreamTriad is the STREAM triad (a[i] = b[i] + s·c[i]) on this
// host — the canonical memory-bandwidth ceiling every stencil and smoother
// kernel is judged against. scripts/bench_json.py lifts this benchmark's
// MB/s into the document-level `stream_triad_mb_s` and derives each
// kernel bench's `fraction_of_peak` from it, so BENCH_*.json reads as
// "kernel X at Y% of measured memory bandwidth" instead of a bare ns/op.
// Bytes per element follow the STREAM convention: 8 B read from b, 8 B
// read from c, 8 B written to a (write-allocate traffic not counted), so
// fractions computed against it are conservative.
func BenchmarkStreamTriad(b *testing.B) {
	dst := make(Vector, streamN)
	src1 := make(Vector, streamN)
	src2 := make(Vector, streamN)
	for i := range src1 {
		src1[i] = float64(i)
		src2[i] = float64(streamN - i)
	}
	const scalar = 3.0
	b.ReportAllocs()
	b.SetBytes(int64(streamN * 3 * 8))
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for i := range dst {
			dst[i] = src1[i] + scalar*src2[i]
		}
	}
	if dst[1] == 0 { // keep the kernel from being optimized away
		b.Fatal("triad produced zeros")
	}
}
