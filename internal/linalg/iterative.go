package linalg

import (
	"math"
)

// Operator is an abstract square linear operator y = A·x. Implementations
// must not retain x or y.
type Operator interface {
	// Apply computes y = A·x. len(x) == len(y) == Size().
	Apply(x, y Vector)
	// Size returns the dimension of the operator.
	Size() int
}

// DiagonalPreconditioner applies z = D^-1·r for a diagonal D.
type DiagonalPreconditioner struct {
	InvDiag Vector
}

// Apply computes z = D^-1 · r element-wise.
func (p *DiagonalPreconditioner) Apply(r, z Vector) {
	for i, d := range p.InvDiag {
		z[i] = r[i] * d
	}
}

// CGOptions configures the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖. Default 1e-9.
	Tol float64
	// MaxIter caps CG iterations. Default 10·n.
	MaxIter int
	// Precond, if non-nil, is applied as a left preconditioner.
	Precond *DiagonalPreconditioner
}

// CGResult reports convergence statistics.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
}

// CGWorkspace holds the scratch vectors one conjugate-gradient solve
// needs. A zero value is ready to use: the buffers are grown on first use
// and reused afterwards, so repeated solves of the same size perform no
// allocations. A workspace is not safe for concurrent use.
type CGWorkspace struct {
	r, z, p, ap Vector
}

// NewCGWorkspace returns a workspace pre-sized for operators of dimension n.
func NewCGWorkspace(n int) *CGWorkspace {
	ws := &CGWorkspace{}
	ws.grow(n)
	return ws
}

// grow resizes every scratch vector to length n, reusing capacity.
func (ws *CGWorkspace) grow(n int) {
	resize := func(v Vector) Vector {
		if cap(v) < n {
			return make(Vector, n)
		}
		return v[:n]
	}
	ws.r = resize(ws.r)
	ws.z = resize(ws.z)
	ws.p = resize(ws.p)
	ws.ap = resize(ws.ap)
}

// CG solves A·x = b for a symmetric positive-definite operator using the
// (optionally Jacobi-preconditioned) conjugate-gradient method. x is used
// as the initial guess and is updated in place.
func CG(a Operator, b, x Vector, opt CGOptions) (CGResult, error) {
	return CGWith(a, b, x, opt, &CGWorkspace{})
}

// CGWith is CG with caller-owned scratch: all intermediate vectors live in
// ws, so a reused workspace makes the solve allocation-free. The result is
// bit-identical to CG — the workspace only changes where the scratch lives.
func CGWith(a Operator, b, x Vector, opt CGOptions, ws *CGWorkspace) (CGResult, error) {
	n := a.Size()
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	bNorm := b.Norm2()
	if bNorm == 0 {
		x.Fill(0)
		return CGResult{Iterations: 0, Residual: 0}, nil
	}

	ws.grow(n)
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap
	a.Apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if opt.Precond != nil {
		opt.Precond.Apply(r, z)
	} else {
		copy(z, r)
	}
	copy(p, z)
	rz := r.Dot(z)

	var res CGResult
	for k := 0; k < opt.MaxIter; k++ {
		res.Iterations = k
		rel := r.Norm2() / bNorm
		res.Residual = rel
		if rel < opt.Tol {
			return res, nil
		}
		a.Apply(p, ap)
		pap := p.Dot(ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Operator is not SPD along p; bail out with the current iterate.
			return res, ErrNotConverged
		}
		alpha := rz / pap
		x.AXPY(alpha, p)
		r.AXPY(-alpha, ap)
		if opt.Precond != nil {
			opt.Precond.Apply(r, z)
		} else {
			copy(z, r)
		}
		rzNew := r.Dot(z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Residual = r.Norm2() / bNorm
	if res.Residual < opt.Tol {
		return res, nil
	}
	return res, ErrNotConverged
}

// SOROptions configures the successive-over-relaxation solver.
type SOROptions struct {
	// Omega is the relaxation factor in (0,2). Default 1.6.
	Omega float64
	// Tol is the relative update tolerance. Default 1e-8.
	Tol float64
	// MaxIter caps sweeps. Default 20·sqrt(n)+200.
	MaxIter int
}

// StencilSweeper is implemented by operators that support in-place
// Gauss-Seidel/SOR sweeps (the structured thermal grid does).
type StencilSweeper interface {
	Operator
	// SweepSOR performs one SOR sweep updating x toward A·x = b and
	// returns the maximum absolute update applied.
	SweepSOR(b, x Vector, omega float64) float64
}

// SOR solves A·x = b by successive over-relaxation for operators that
// provide sweeps. x is the initial guess, updated in place. The sweeps
// work entirely inside x, so the solve needs no scratch workspace and is
// allocation-free by construction.
func SOR(a StencilSweeper, b, x Vector, opt SOROptions) (CGResult, error) {
	if opt.Omega <= 0 || opt.Omega >= 2 {
		opt.Omega = 1.6
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 20*int(math.Sqrt(float64(a.Size()))) + 200
	}
	scale := b.NormInf()
	if scale == 0 {
		scale = 1
	}
	var res CGResult
	for k := 0; k < opt.MaxIter; k++ {
		res.Iterations = k + 1
		delta := a.SweepSOR(b, x, opt.Omega)
		res.Residual = delta / scale
		if res.Residual < opt.Tol {
			return res, nil
		}
	}
	return res, ErrNotConverged
}

// Bisect finds a root of f in [lo, hi] assuming f(lo) and f(hi) bracket a
// sign change. It returns the midpoint after the interval shrinks below tol
// or maxIter iterations. If the interval does not bracket a root, the
// endpoint with the smaller |f| is returned and ok is false.
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (root float64, ok bool) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, true
	}
	if fhi == 0 {
		return hi, true
	}
	if flo*fhi > 0 {
		if math.Abs(flo) < math.Abs(fhi) {
			return lo, false
		}
		return hi, false
	}
	for i := 0; i < maxIter && hi-lo > tol; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 {
			return mid, true
		}
		if flo*fm < 0 {
			hi, fhi = mid, fm
		} else {
			lo, flo = mid, fm
		}
	}
	_ = fhi
	return 0.5 * (lo + hi), true
}
