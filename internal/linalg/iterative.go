package linalg

import (
	"math"
)

// Operator is an abstract square linear operator y = A·x. Implementations
// must not retain x or y.
type Operator interface {
	// Apply computes y = A·x. len(x) == len(y) == Size().
	Apply(x, y Vector)
	// Size returns the dimension of the operator.
	Size() int
}

// Preconditioner approximates z = M⁻¹·r for a matrix M ≈ A. For use
// inside CG the approximation must be symmetric positive definite and a
// fixed linear map (no convergence-dependent iteration counts), otherwise
// the Krylov recurrence loses its orthogonality guarantees.
// Implementations must not retain r or z.
type Preconditioner interface {
	// Apply computes z = M⁻¹ · r. len(r) == len(z).
	Apply(r, z Vector)
}

// CostedPreconditioner is optionally implemented by preconditioners whose
// Apply performs operator-equivalent work on the solver's grid (a
// multigrid V-cycle's smoothing sweeps and residual, for instance). CG
// adds ApplyCost to CGResult.Applies for every preconditioner
// application, which keeps Applies an honest cross-solver work measure
// instead of hiding the preconditioner's dominant cost. Lightweight
// preconditioners (a diagonal scale) need not implement it.
type CostedPreconditioner interface {
	Preconditioner
	// ApplyCost returns the fine-grid operator-application equivalents
	// one Apply costs.
	ApplyCost() int
}

// DiagonalPreconditioner applies z = D^-1·r for a diagonal D.
type DiagonalPreconditioner struct {
	InvDiag Vector
}

// Apply computes z = D^-1 · r element-wise.
func (p *DiagonalPreconditioner) Apply(r, z Vector) {
	for i, d := range p.InvDiag {
		z[i] = r[i] * d
	}
}

// CGOptions configures the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖. Default 1e-9.
	Tol float64
	// MaxIter caps CG iterations. Default 10·n.
	MaxIter int
	// Precond, if non-nil, is applied as a left preconditioner. It must
	// be SPD; *DiagonalPreconditioner and *Multigrid both qualify.
	Precond Preconditioner
}

// CGResult reports convergence statistics.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	// Applies counts fine-grid operator applications, including the
	// operator-equivalent work a CostedPreconditioner reports — the
	// resolution-independent work unit that lets benchmarks compare
	// solvers by effort rather than wall time. Plain CG charges one
	// initial residual plus one per iteration; MG-PCG additionally
	// charges each V-cycle's smoothing sweeps and residual, and MGSolve
	// charges the same per cycle (coarser-level work is a
	// geometric-series fraction (~⅓) on top and is not itemized).
	Applies int
}

// CGWorkspace holds the scratch vectors one conjugate-gradient solve
// needs. A zero value is ready to use: the buffers are grown on first use
// and reused afterwards, so repeated solves of the same size perform no
// allocations. A workspace is not safe for concurrent use.
//
// A workspace optionally carries a worker Team: with one set, the fused
// vector kernels of every solve fan out across the team. Thread count is
// a pure performance knob — the chunked reductions in par.go make the
// solve byte-identical at any team width, including the nil (serial)
// team.
type CGWorkspace struct {
	r, z, p, ap Vector

	team    *Team
	partial Vector // reduction chunk partials

	// Persistent task adapters: the solver writes their fields and submits
	// the same pointers each iteration, so dispatch never allocates.
	dotT   dotTask
	fusedT fusedTask
	jacT   jacobiTask
	xpbyT  xpbyTask
}

// NewCGWorkspace returns a workspace pre-sized for operators of dimension n.
func NewCGWorkspace(n int) *CGWorkspace {
	ws := &CGWorkspace{}
	ws.grow(n)
	return ws
}

// SetTeam attaches the worker team the fused CG kernels dispatch on (nil
// = serial). The workspace borrows the team; the caller owns its
// lifecycle.
func (ws *CGWorkspace) SetTeam(t *Team) { ws.team = t }

// grow resizes every scratch vector to length n, reusing capacity.
func (ws *CGWorkspace) grow(n int) {
	resize := func(v Vector) Vector {
		if cap(v) < n {
			return make(Vector, n)
		}
		return v[:n]
	}
	ws.r = resize(ws.r)
	ws.z = resize(ws.z)
	ws.p = resize(ws.p)
	ws.ap = resize(ws.ap)
	if chunks := redChunks(n); cap(ws.partial) < chunks {
		ws.partial = make(Vector, chunks)
	} else {
		ws.partial = ws.partial[:chunks]
	}
}

// run dispatches a kernel task over n elements: across the team when the
// problem is big enough to pay for the barrier, inline otherwise. The
// size gate depends only on n, so it cannot affect results.
func (ws *CGWorkspace) run(tk Task, n int) {
	if n < ParMin {
		tk.Do(0, 1)
		return
	}
	ws.team.Run(tk)
}

// dot returns a·b via the fixed-chunk deterministic reduction.
func (ws *CGWorkspace) dot(a, b Vector) float64 {
	ws.dotT = dotTask{a: a, b: b, partial: ws.partial}
	ws.run(&ws.dotT, len(a))
	return reduceTree(ws.partial[:redChunks(len(a))])
}

// fusedUpdate applies x += α·p, r -= α·q and returns the new ‖r‖².
func (ws *CGWorkspace) fusedUpdate(x, r, p, q Vector, alpha float64) float64 {
	ws.fusedT = fusedTask{x: x, r: r, p: p, q: q, partial: ws.partial, alpha: alpha}
	ws.run(&ws.fusedT, len(x))
	return reduceTree(ws.partial[:redChunks(len(x))])
}

// jacobiDot applies z = D⁻¹·r and returns r·z in the same pass.
func (ws *CGWorkspace) jacobiDot(r, invDiag, z Vector) float64 {
	ws.jacT = jacobiTask{r: r, invDiag: invDiag, z: z, partial: ws.partial}
	ws.run(&ws.jacT, len(r))
	return reduceTree(ws.partial[:redChunks(len(r))])
}

// xpby applies p = z + β·p.
func (ws *CGWorkspace) xpby(p, z Vector, beta float64) {
	ws.xpbyT = xpbyTask{p: p, z: z, beta: beta}
	ws.run(&ws.xpbyT, len(p))
}

// CG solves A·x = b for a symmetric positive-definite operator using the
// (optionally Jacobi-preconditioned) conjugate-gradient method. x is used
// as the initial guess and is updated in place.
func CG(a Operator, b, x Vector, opt CGOptions) (CGResult, error) {
	return CGWith(a, b, x, opt, &CGWorkspace{})
}

// CGWith is CG with caller-owned scratch: all intermediate vectors live in
// ws, so a reused workspace makes the solve allocation-free, and the ws
// team (SetTeam) parallelizes the vector work.
//
// The iteration body runs on fused kernels to cut memory traffic: the
// x/r updates and the new residual norm share one pass (fusedUpdate), and
// a diagonal preconditioner's application is fused with the r·z inner
// product the recurrence needs next (jacobiDot). Every reduction uses the
// fixed-chunk, fixed-order scheme of par.go, so the iterates — and hence
// the solution — are byte-identical at any team width, including none.
func CGWith(a Operator, b, x Vector, opt CGOptions, ws *CGWorkspace) (CGResult, error) {
	n := a.Size()
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	bNorm := b.Norm2()
	if bNorm == 0 {
		x.Fill(0)
		return CGResult{Iterations: 0, Residual: 0}, nil
	}

	precondCost := 0
	if cp, ok := opt.Precond.(CostedPreconditioner); ok {
		precondCost = cp.ApplyCost()
	}
	// A diagonal preconditioner takes the fused apply+dot path; any other
	// preconditioner (a multigrid V-cycle) applies as an opaque operator.
	diag, _ := opt.Precond.(*DiagonalPreconditioner)
	ws.grow(n)
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap
	a.Apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	res := CGResult{Applies: 1}
	// The residual norm is computed exactly once per residual state: here
	// for the initial guess, then once after each update inside the loop —
	// the convergence check rides on the norm the update just produced
	// instead of recomputing it at the top of the next iteration.
	res.Residual = r.Norm2() / bNorm
	if badFloat(res.Residual) {
		// NaN/Inf before the first iteration: the initial guess (typically
		// a warm-start seed) or b itself is poisoned.
		return res, failure("cg", CauseNaN, res)
	}
	if res.Residual < opt.Tol {
		return res, nil
	}
	var rz float64
	switch {
	case diag != nil:
		rz = ws.jacobiDot(r, diag.InvDiag, z)
		res.Applies += precondCost
	case opt.Precond != nil:
		opt.Precond.Apply(r, z)
		res.Applies += precondCost
		rz = ws.dot(r, z)
	default:
		// Identity preconditioner: z aliases r, skipping the copy.
		z = r
		rz = ws.dot(r, r)
	}
	copy(p, z)

	for k := 0; k < opt.MaxIter; k++ {
		a.Apply(p, ap)
		res.Applies++
		pap := ws.dot(p, ap)
		if badFloat(pap) {
			// A NaN/Inf reached the recurrence (overflow, or a poisoned
			// preconditioner output last iteration); the iterate is unusable.
			return res, failure("cg", CauseNaN, res)
		}
		if pap <= 0 {
			// Operator is not SPD along p; bail out with the current iterate.
			return res, failure("cg", CauseBreakdown, res)
		}
		alpha := rz / pap
		rNormSq := ws.fusedUpdate(x, r, p, ap, alpha)
		res.Iterations = k + 1
		res.Residual = math.Sqrt(rNormSq) / bNorm
		if badFloat(res.Residual) {
			return res, failure("cg", CauseNaN, res)
		}
		if res.Residual < opt.Tol {
			return res, nil
		}
		var rzNew float64
		switch {
		case diag != nil:
			rzNew = ws.jacobiDot(r, diag.InvDiag, z)
		case opt.Precond != nil:
			opt.Precond.Apply(r, z)
			res.Applies += precondCost
			rzNew = ws.dot(r, z)
		default:
			// z aliases r, so r·z is the ‖r‖² the fused update already
			// reduced — the dot pass disappears entirely.
			rzNew = rNormSq
		}
		beta := rzNew / rz
		rz = rzNew
		ws.xpby(p, z, beta)
	}
	return res, failure("cg", CauseMaxIter, res)
}

// SOROptions configures the successive-over-relaxation solver.
type SOROptions struct {
	// Omega is the relaxation factor in (0,2). Default 1.6.
	Omega float64
	// Tol is the relative update tolerance. Default 1e-8.
	Tol float64
	// MaxIter caps sweeps. Default 20·sqrt(n)+200.
	MaxIter int
}

// StencilSweeper is implemented by operators that support in-place
// Gauss-Seidel/SOR sweeps (the structured thermal grid does).
type StencilSweeper interface {
	Operator
	// SweepSOR performs one SOR sweep updating x toward A·x = b and
	// returns the maximum absolute update applied.
	SweepSOR(b, x Vector, omega float64) float64
}

// SOR solves A·x = b by successive over-relaxation for operators that
// provide sweeps. x is the initial guess, updated in place. The sweeps
// work entirely inside x, so the solve needs no scratch workspace and is
// allocation-free by construction.
func SOR(a StencilSweeper, b, x Vector, opt SOROptions) (CGResult, error) {
	if opt.Omega <= 0 || opt.Omega >= 2 {
		opt.Omega = 1.6
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 20*int(math.Sqrt(float64(a.Size()))) + 200
	}
	scale := b.NormInf()
	if scale == 0 {
		scale = 1
	}
	var res CGResult
	for k := 0; k < opt.MaxIter; k++ {
		res.Iterations = k + 1
		res.Applies = res.Iterations // one sweep costs one operator pass
		delta := a.SweepSOR(b, x, opt.Omega)
		res.Residual = delta / scale
		if badFloat(res.Residual) {
			return res, failure("sor", CauseNaN, res)
		}
		if res.Residual < opt.Tol {
			return res, nil
		}
	}
	return res, failure("sor", CauseMaxIter, res)
}

// Bisect finds a root of f in [lo, hi] assuming f(lo) and f(hi) bracket a
// sign change. It returns the midpoint after the interval shrinks below tol
// or maxIter iterations. If the interval does not bracket a root, the
// endpoint with the smaller |f| is returned and ok is false.
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (root float64, ok bool) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, true
	}
	if fhi == 0 {
		return hi, true
	}
	if flo*fhi > 0 {
		// No sign change: report the endpoint closest to a root (smallest
		// |f|, lo on ties) so callers still get the best available guess.
		if math.Abs(flo) <= math.Abs(fhi) {
			return lo, false
		}
		return hi, false
	}
	for i := 0; i < maxIter && hi-lo > tol; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 {
			return mid, true
		}
		if flo*fm < 0 {
			hi = mid
		} else {
			lo, flo = mid, fm
		}
	}
	return 0.5 * (lo + hi), true
}
