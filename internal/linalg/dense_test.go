package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVectorDotAndNorms(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := v.Norm2(); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
	w := Vector{-7, 2}
	if got := w.NormInf(); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
}

func TestVectorAXPYAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{10, 20, 30}
	v.AXPY(2, w)
	want := Vector{21, 42, 63}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("AXPY[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	v.Sub(w)
	if v[0] != 11 || v[2] != 33 {
		t.Fatalf("Sub wrong: %v", v)
	}
	v.Add(w)
	if v[0] != 21 {
		t.Fatalf("Add wrong: %v", v)
	}
	v.Scale(0.5)
	if v[0] != 10.5 {
		t.Fatalf("Scale wrong: %v", v)
	}
}

func TestVectorStats(t *testing.T) {
	v := Vector{4, -1, 7, 2}
	if v.Max() != 7 {
		t.Fatalf("Max = %v", v.Max())
	}
	if v.Min() != -1 {
		t.Fatalf("Min = %v", v.Min())
	}
	if v.Mean() != 3 {
		t.Fatalf("Mean = %v", v.Mean())
	}
	var empty Vector
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean = %v", empty.Mean())
	}
}

func TestVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("solution %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveDense(a, Vector{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestLUNonSquare(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := FactorizeLU(a); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 10, 1e-12) {
		t.Fatalf("Det = %v, want 10", f.Det())
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonally dominate to guarantee non-singularity.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		want := make(Vector, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make(Vector, n)
		a.MulVec(want, b)
		got, err := SolveDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-8) {
				t.Fatalf("trial %d n=%d x[%d]=%v want %v", trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestTridiagonalSolve(t *testing.T) {
	// Classic -1 2 -1 Poisson system with known RHS.
	n := 50
	lower := make(Vector, n)
	diag := make(Vector, n)
	upper := make(Vector, n)
	for i := 0; i < n; i++ {
		lower[i], diag[i], upper[i] = -1, 2, -1
	}
	want := make(Vector, n)
	for i := range want {
		want[i] = math.Sin(float64(i) / 5)
	}
	rhs := make(Vector, n)
	for i := 0; i < n; i++ {
		rhs[i] = 2 * want[i]
		if i > 0 {
			rhs[i] -= want[i-1]
		}
		if i < n-1 {
			rhs[i] -= want[i+1]
		}
	}
	got, err := SolveTridiagonal(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-10) {
			t.Fatalf("x[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

func TestTridiagonalErrors(t *testing.T) {
	if _, err := SolveTridiagonal(Vector{0}, Vector{0}, Vector{0}, Vector{1}); err == nil {
		t.Fatal("expected singular error for zero diagonal")
	}
	if _, err := SolveTridiagonal(Vector{0, 0}, Vector{1}, Vector{0}, Vector{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	x, err := SolveTridiagonal(Vector{}, Vector{}, Vector{}, Vector{})
	if err != nil || len(x) != 0 {
		t.Fatalf("empty system should solve trivially, got %v %v", x, err)
	}
}

// Property: for random SPD tridiagonal-dominant systems, Thomas solution
// satisfies the original equations.
func TestTridiagonalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		lower := make(Vector, n)
		diag := make(Vector, n)
		upper := make(Vector, n)
		rhs := make(Vector, n)
		for i := 0; i < n; i++ {
			lower[i] = rng.Float64()
			upper[i] = rng.Float64()
			diag[i] = lower[i] + upper[i] + 1 + rng.Float64() // dominant
			rhs[i] = rng.NormFloat64()
		}
		x, err := SolveTridiagonal(lower, diag, upper, rhs)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			s := diag[i] * x[i]
			if i > 0 {
				s += lower[i] * x[i-1]
			}
			if i < n-1 {
				s += upper[i] * x[i+1]
			}
			if !almostEqual(s, rhs[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
