package linalg

import (
	"runtime"
	"sync"
)

// This file is the intra-solve parallel execution layer: a persistent
// worker team plus the deterministic partitioning and reduction rules
// every parallel kernel in the solve stack follows.
//
// The determinism contract is the point. Elementwise kernels (AXPY-style
// updates, stencil applications, red-black half-sweeps) compute each
// output element from inputs that are frozen for the duration of the
// pass, so any partition of the index space yields bit-identical results.
// Reductions are the only place floating-point order could leak the
// thread count; they are therefore computed over FIXED chunks of the
// index space — chunk boundaries depend only on the vector length, never
// on the team width — with the per-chunk partials combined by a
// fixed-order tree. A dot product at 1 thread and at 16 threads adds the
// same numbers in the same order and returns the same bytes.

// ParChunk is the reduction chunk width in elements. Chunk boundaries are
// a pure function of the vector length, which is what makes every
// team-parallel reduction byte-identical at any thread count.
const ParChunk = 2048

// ParMin is the problem size below which parallel dispatch is not worth
// the synchronization cost; kernels fall back to the worker-0 path. It is
// THE size gate of the whole solve stack — the CG vector kernels here and
// the thermal stencil/transfer kernels all compare against this one
// constant, so there is exactly one tuning point.
//
// Derivation: one Team.Run costs a channel send per worker plus a
// WaitGroup barrier, ~1–2 µs end to end on commodity hardware. The
// lightest banded kernel moves ~3 streams × 8 B ≈ 24 B per element, so at
// ~10 GB/s effective single-core bandwidth a worker covers roughly 4096
// elements in the same 1–2 µs the dispatch costs. Below that, the barrier
// dominates and the serial path wins; above it, fan-out pays for itself.
// The threshold depends only on the input size, so it cannot break the
// thread-count-invariance of results.
const ParMin = 4096

// Task is one unit of team-parallel work. Do is invoked exactly once per
// worker with the worker index and the team width; implementations carve
// their share of the index space with Band (elementwise work) or by
// banding reduction chunks (ParChunk). Do must not allocate on the hot
// path and must only write locations owned by its band.
type Task interface {
	Do(worker, workers int)
}

// Team is a persistent goroutine team for intra-solve parallelism. A team
// is created once per solver workspace and reused for every kernel
// dispatch, so the solve hot path starts no goroutines and performs no
// allocations. A Team is not safe for concurrent Run calls — it belongs
// to exactly one solve context, mirroring the workspace ownership rule —
// and must be Closed to release its goroutines.
//
// The nil *Team is valid and means "serial": all methods degrade to
// running the task on the caller's goroutine.
type Team struct {
	workers int
	jobs    []chan Task
	wg      sync.WaitGroup
	closed  bool
}

// NewTeam returns a team of n workers, spawning n-1 persistent goroutines
// (worker 0 is the calling goroutine). n <= 0 selects GOMAXPROCS; n == 1
// returns nil, the serial team.
func NewTeam(n int) *Team {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n <= 1 {
		return nil
	}
	t := &Team{workers: n, jobs: make([]chan Task, n-1)}
	for i := range t.jobs {
		ch := make(chan Task, 1)
		t.jobs[i] = ch
		go func(w int, ch chan Task) {
			for tk := range ch {
				tk.Do(w, n)
				t.wg.Done()
			}
		}(i+1, ch)
	}
	return t
}

// Workers returns the team width (1 for the nil or closed team).
func (t *Team) Workers() int {
	if t == nil || t.closed {
		return 1
	}
	return t.workers
}

// Run executes the task across the team and returns when every worker has
// finished — one barrier per call. Worker 0 runs on the calling
// goroutine. Dispatch is allocation-free: the task travels as an
// interface holding the caller's persistent pointer.
func (t *Team) Run(task Task) {
	if t == nil || t.closed {
		task.Do(0, 1)
		return
	}
	t.wg.Add(t.workers - 1)
	for _, ch := range t.jobs {
		ch <- task
	}
	task.Do(0, t.workers)
	t.wg.Wait()
}

// Close releases the team's goroutines. Idempotent and nil-safe; after
// Close the team runs tasks serially, so late callers still get correct
// (and, by the chunking rules, identical) results.
func (t *Team) Close() {
	if t == nil || t.closed {
		return
	}
	t.closed = true
	for _, ch := range t.jobs {
		close(ch)
	}
}

// Band returns worker w's half-open share [lo, hi) of n items under an
// even contiguous partition: the first n%workers bands are one longer.
// Band is the one partitioning rule every elementwise kernel uses.
func Band(n, w, workers int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w * q
	if w < r {
		lo += w
	} else {
		lo += r
	}
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// redChunks returns the reduction chunk count for an n-vector.
func redChunks(n int) int { return (n + ParChunk - 1) / ParChunk }

// chunkBounds returns chunk c's half-open element range in an n-vector.
func chunkBounds(n, c int) (lo, hi int) {
	lo = c * ParChunk
	hi = lo + ParChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// reduceTree combines chunk partials by fixed-order pairwise halving —
// the same additions in the same order for any team width, and better
// conditioned than a straight left fold. It consumes p as scratch.
func reduceTree(p Vector) float64 {
	n := len(p)
	if n == 0 {
		return 0
	}
	for n > 1 {
		half := (n + 1) / 2
		for i := half; i < n; i++ {
			p[i-half] += p[i]
		}
		n = half
	}
	return p[0]
}

// The CG kernel tasks below are persistent fields of a CGWorkspace: the
// solver writes their parameters and submits the same pointer every
// iteration, so team dispatch never allocates.

// dotTask computes partial[c] = Σ_chunk a·b for its band of chunks.
type dotTask struct {
	a, b, partial Vector
}

func (k *dotTask) Do(w, workers int) {
	n := len(k.a)
	a, b := k.a, k.b
	lo, hi := Band(redChunks(n), w, workers)
	for c := lo; c < hi; c++ {
		i0, i1 := chunkBounds(n, c)
		var s float64
		for i := i0; i < i1; i++ {
			s += a[i] * b[i]
		}
		k.partial[c] = s
	}
}

// fusedTask is the fused CG update: x += α·p and r -= α·q in one memory
// pass, accumulating the new ‖r‖² into chunk partials on the way out —
// three historical passes (two AXPYs and a norm) collapsed into one.
type fusedTask struct {
	x, r, p, q, partial Vector
	alpha               float64
}

func (k *fusedTask) Do(w, workers int) {
	n := len(k.x)
	x, r, p, q := k.x, k.r, k.p, k.q
	alpha := k.alpha
	lo, hi := Band(redChunks(n), w, workers)
	for c := lo; c < hi; c++ {
		i0, i1 := chunkBounds(n, c)
		var s float64
		for i := i0; i < i1; i++ {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*q[i]
			r[i] = ri
			s += ri * ri
		}
		k.partial[c] = s
	}
}

// jacobiTask fuses the diagonal preconditioner application z = D⁻¹·r with
// the r·z inner product the CG recurrence needs next — one pass instead
// of an apply pass followed by a dot pass.
type jacobiTask struct {
	r, invDiag, z, partial Vector
}

func (k *jacobiTask) Do(w, workers int) {
	n := len(k.r)
	r, d, z := k.r, k.invDiag, k.z
	lo, hi := Band(redChunks(n), w, workers)
	for c := lo; c < hi; c++ {
		i0, i1 := chunkBounds(n, c)
		var s float64
		for i := i0; i < i1; i++ {
			zi := r[i] * d[i]
			z[i] = zi
			s += r[i] * zi
		}
		k.partial[c] = s
	}
}

// xpbyTask computes p = z + β·p, the CG direction update. Pure
// elementwise work: banded directly, no chunking needed.
type xpbyTask struct {
	p, z Vector
	beta float64
}

func (k *xpbyTask) Do(w, workers int) {
	p, z := k.p, k.z
	beta := k.beta
	lo, hi := Band(len(p), w, workers)
	for i := lo; i < hi; i++ {
		p[i] = z[i] + beta*p[i]
	}
}
