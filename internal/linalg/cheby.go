package linalg

import "math"

// Chebyshev polynomial smoothing: an alternative to red-black
// Gauss-Seidel for the V-cycle levels. A degree-d Chebyshev smoother is a
// fixed sequence of damped-Jacobi steps
//
//	x ← x + ω_j · D⁻¹(b − A·x),   ω_j = 1/t_j,
//
// where the t_j are the roots of the degree-d Chebyshev polynomial on the
// target interval [a, b] ⊂ (0, λmax(D⁻¹A)]. Two properties make it
// attractive here: each step is ONE gather pass over the grid (one
// barrier), where a red-black sweep needs two color phases (two barriers)
// — so the synchronization cost per sweep halves; and the error
// propagator is a fixed polynomial in D⁻¹A, which is self-adjoint in the
// A-inner product, so the same polynomial serves as pre- and post-smoother
// with the V-cycle staying a symmetric operator (no forward/reverse pair
// needed — Smooth ignores its reverse flag).
//
// The interval comes from a power-iteration estimate of λmax(D⁻¹A) at
// setup: b = 1.1·λ̂ (headroom for the estimate and for per-solve diagonal
// drift — boundary and capacitive terms move the spectrum only toward 1),
// a = 0.3·b (the classic smoothing split: modes below a belong to the
// coarse grid). For the Jacobi-scaled M-matrices of the thermal stack,
// λmax ≤ 2 by Gershgorin, so the headroom is safe at both ends.

// JacobiStepper is optionally implemented by operators that can run one
// damped-Jacobi step y = x + ω·D⁻¹(b − A·x) as a single fused gather pass
// (the thermal stencil does: residual, scale and update in one sweep of
// the coefficient arrays). x and y must not alias; x is read-only for the
// pass, which is what keeps banded execution deterministic.
type JacobiStepper interface {
	JacobiStep(b, x, y Vector, omega float64)
}

// chebySetupIters is the fixed power-iteration count of the λmax estimate.
// Fixed, so setup is a deterministic function of the operator.
const chebySetupIters = 16

// chebyLowerFrac positions the lower edge of the smoothing interval at
// this fraction of the upper edge.
const chebyLowerFrac = 0.3

// chebyHeadroom scales the power-iteration λmax estimate up to the
// interval's upper edge.
const chebyHeadroom = 1.1

// ChebySmoother wraps a level operator with Chebyshev polynomial
// smoothing, implementing Smoother so it can stand in for the operator in
// an MGLevel. Apply/Residual/Size delegate to the wrapped operator;
// Smooth runs the degree-d Chebyshev iteration. The eigenvalue estimate
// and root weights are computed once, lazily, on the first Smooth after
// construction (by which time the caller has assembled the diagonal);
// Reset discards them when the operator changes materially.
//
// A ChebySmoother owns scratch sized to the operator and is not safe for
// concurrent use.
type ChebySmoother struct {
	a       Smoother
	invDiag Vector // aliases the operator's inverse diagonal
	degree  int

	lambdaMax float64   // power-iteration estimate (0 = not yet set up)
	omegas    []float64 // Chebyshev root weights 1/t_j, one per step

	y, r Vector // ping-pong iterate and fallback residual scratch
}

// NewChebySmoother wraps a with degree-d Chebyshev smoothing (d < 1
// selects the default degree 2). invDiag must alias the operator's
// current inverse diagonal — the smoother re-reads it every step, so
// in-place diagonal refreshes are picked up automatically.
func NewChebySmoother(a Smoother, invDiag Vector, degree int) *ChebySmoother {
	if degree < 1 {
		degree = 2
	}
	n := a.Size()
	return &ChebySmoother{
		a:       a,
		invDiag: invDiag,
		degree:  degree,
		y:       make(Vector, n),
		r:       make(Vector, n),
	}
}

// Size returns the dimension of the wrapped operator.
func (c *ChebySmoother) Size() int { return c.a.Size() }

// Apply computes y = A·x via the wrapped operator.
func (c *ChebySmoother) Apply(x, y Vector) { c.a.Apply(x, y) }

// Residual computes r = b − A·x via the wrapped operator.
func (c *ChebySmoother) Residual(b, x, r Vector) { c.a.Residual(b, x, r) }

// LambdaMax returns the power-iteration estimate of λmax(D⁻¹A), running
// setup if it has not happened yet.
func (c *ChebySmoother) LambdaMax() float64 {
	c.ensureSetup()
	return c.lambdaMax
}

// Reset discards the eigenvalue estimate and weights; the next Smooth
// re-runs setup against the operator's current diagonal.
func (c *ChebySmoother) Reset() { c.lambdaMax = 0; c.omegas = c.omegas[:0] }

// ensureSetup estimates λmax(D⁻¹A) by fixed-count power iteration and
// derives the Chebyshev root weights. Deterministic: fixed start vector,
// fixed iteration count, and the matvec follows the operator's own
// (thread-count-invariant) kernels while the normalizations are plain
// serial loops.
func (c *ChebySmoother) ensureSetup() {
	if c.lambdaMax > 0 {
		return
	}
	v, w := c.y, c.r
	// Start vector with broad frequency content; the precise pattern only
	// affects convergence speed of the estimate, never determinism.
	for i := range v {
		v[i] = 1 + float64(i%7)/7
	}
	lambda := 1.0
	for it := 0; it < chebySetupIters; it++ {
		c.a.Apply(v, w)
		var norm float64
		for i := range w {
			wi := w[i] * c.invDiag[i]
			w[i] = wi
			if a := math.Abs(wi); a > norm {
				norm = a
			}
		}
		if norm == 0 {
			break
		}
		lambda = norm // v is ∞-normalized, so ‖D⁻¹A·v‖∞ estimates λmax
		inv := 1 / norm
		for i := range v {
			v[i] = w[i] * inv
		}
	}
	c.lambdaMax = lambda
	upper := chebyHeadroom * lambda
	lower := chebyLowerFrac * upper
	center, radius := (upper+lower)/2, (upper-lower)/2
	c.omegas = c.omegas[:0]
	for j := 0; j < c.degree; j++ {
		root := center + radius*math.Cos(math.Pi*(2*float64(j)+1)/(2*float64(c.degree)))
		c.omegas = append(c.omegas, 1/root)
	}
}

// Smooth runs the degree-d Chebyshev iteration toward A·x = b, updating x
// in place. The polynomial is self-adjoint in the A-inner product, so the
// reverse flag is ignored — pre- and post-smoothing apply the identical
// map and the V-cycle stays symmetric.
func (c *ChebySmoother) Smooth(b, x Vector, _ bool) {
	c.ensureSetup()
	stepper, _ := c.a.(JacobiStepper)
	cur, other := x, c.y
	for _, omega := range c.omegas {
		if stepper != nil {
			stepper.JacobiStep(b, cur, other, omega)
		} else {
			c.a.Residual(b, cur, c.r)
			for i := range other {
				other[i] = cur[i] + omega*c.invDiag[i]*c.r[i]
			}
		}
		cur, other = other, cur
	}
	if len(c.omegas)%2 == 1 {
		copy(x, cur)
	}
}
