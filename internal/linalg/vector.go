// Package linalg provides the hand-rolled numerical kernels used by the
// thermal and thermosyphon simulators: dense vectors and matrices, LU and
// tridiagonal direct solvers, and iterative solvers (Jacobi, SOR, and
// preconditioned conjugate gradient) over abstract linear operators.
//
// The package deliberately uses only the standard library. The thermal
// solver operates on structured-grid stencils, so the iterative solvers
// accept an Operator interface instead of requiring an assembled sparse
// matrix; this keeps the hot path allocation-free.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero-initialized vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute element of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes v = v + alpha*w in place. It panics if lengths differ.
func (v Vector) AXPY(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sub computes v = v - w in place. It panics if lengths differ.
func (v Vector) Sub(w Vector) { v.AXPY(-1, w) }

// Add computes v = v + w in place. It panics if lengths differ.
func (v Vector) Add(w Vector) { v.AXPY(1, w) }

// Max returns the maximum element of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean of v (0 for an empty vector).
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// ErrNotConverged is returned by iterative solvers that exhaust their
// iteration budget before reaching the requested tolerance.
var ErrNotConverged = errors.New("linalg: iterative solver did not converge")

// ErrSingular is returned by direct solvers when the system is singular
// to working precision.
var ErrSingular = errors.New("linalg: singular matrix")
