package linalg

import "fmt"

// This file is the float32 mirror of the V-cycle driver: the same level
// interfaces and the same cycle structure as Multigrid, but over []float32
// vectors. Its single purpose is memory bandwidth — the solve stack is
// bound by bytes moved, and a preconditioner does not need float64: one
// V-cycle only has to *approximate* A⁻¹, so halving every stream (field,
// right-hand side, conductances, diagonals) halves the dominant cost of an
// MG-preconditioned CG iteration while the float64 outer loop keeps full
// accuracy. Apply converts at the fine-level boundary, so from CG's point
// of view the preconditioner is still a fixed map from float64 residuals
// to float64 corrections — deterministic per build, byte-identical at any
// thread count (the float32 kernels follow the same banding and gating
// rules as their float64 twins).

// Smoother32 is the float32 level operator of a Multigrid32 hierarchy.
type Smoother32 interface {
	// Size returns the dimension of the operator.
	Size() int
	// Smooth performs one red-black Gauss-Seidel sweep toward A·x = b
	// (forward: red then black; reverse: black then red).
	Smooth(b, x []float32, reverse bool)
	// Residual computes r = b - A·x.
	Residual(b, x, r []float32)
}

// FusedSmoother32 mirrors FusedSmoother for float32 levels, with the same
// bit-equality contract against Smooth(false)+Residual.
type FusedSmoother32 interface {
	Smoother32
	// SmoothResidual performs one forward sweep and computes the residual
	// of the updated iterate in one fused pass.
	SmoothResidual(b, x, r []float32)
}

// Transfer32 moves float32 vectors between a fine level and the next
// coarser one; Restrict must be (a scaling of) the transpose of Prolong.
type Transfer32 interface {
	// Restrict projects a fine-level residual onto the coarse level,
	// overwriting coarse.
	Restrict(fine, coarse []float32)
	// Prolong interpolates a coarse-level correction and ADDS it into the
	// fine-level iterate.
	Prolong(coarse, fine []float32)
}

// MGLevel32 is one level of a float32 hierarchy: its operator plus the
// transfer to the next coarser level (nil on the coarsest).
type MGLevel32 struct {
	A    Smoother32
	Down Transfer32
}

// Multigrid32 runs geometric V-cycles over a float32 level hierarchy. It
// exists to be a CG preconditioner: Apply converts the float64 residual to
// float32, runs one V-cycle from a zero initial guess, and converts the
// correction back — so the float64 CG outer loop is untouched while the
// V-cycle moves half the bytes. All scratch is allocated at construction;
// cycles and Apply are allocation-free. Not safe for concurrent use.
type Multigrid32 struct {
	levels []MGLevel32
	// Pre and Post are the smoothing sweep counts per level (default 1 and
	// 1). Keep them equal to preserve cycle symmetry.
	Pre, Post int
	// CoarseSweeps is the number of symmetric (forward+reverse) sweep
	// pairs solving the coarsest level (default 32).
	CoarseSweeps int

	b, x, r [][]float32 // per-level scratch; index 0 of b/x is the
	// fine-level float32 mirror of Apply's float64 arguments
}

// NewMultigrid32 builds a float32 V-cycle solver over the hierarchy,
// finest level first, allocating every per-level buffer up front.
func NewMultigrid32(levels []MGLevel32) (*Multigrid32, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("linalg: multigrid32 needs at least one level")
	}
	for i, l := range levels {
		if l.A == nil {
			return nil, fmt.Errorf("linalg: multigrid32 level %d has no operator", i)
		}
		if (l.Down == nil) != (i == len(levels)-1) {
			return nil, fmt.Errorf("linalg: multigrid32 level %d transfer mismatch", i)
		}
	}
	mg := &Multigrid32{
		levels:       levels,
		Pre:          1,
		Post:         1,
		CoarseSweeps: 32,
		b:            make([][]float32, len(levels)),
		x:            make([][]float32, len(levels)),
		r:            make([][]float32, len(levels)),
	}
	for k, l := range levels {
		n := l.A.Size()
		mg.b[k] = make([]float32, n)
		mg.x[k] = make([]float32, n)
		mg.r[k] = make([]float32, n)
	}
	return mg, nil
}

// Levels returns the depth of the hierarchy.
func (mg *Multigrid32) Levels() int { return len(mg.levels) }

// Cycle performs one V-cycle improving x toward A·x = b on the finest
// level, entirely in float32. Allocation-free.
func (mg *Multigrid32) Cycle(b, x []float32) { mg.vcycle(0, b, x) }

func (mg *Multigrid32) vcycle(k int, b, x []float32) {
	a := mg.levels[k].A
	if k == len(mg.levels)-1 {
		for s := 0; s < mg.CoarseSweeps; s++ {
			a.Smooth(b, x, false)
			a.Smooth(b, x, true)
		}
		return
	}
	if fa, ok := a.(FusedSmoother32); ok && mg.Pre >= 1 {
		for s := 0; s < mg.Pre-1; s++ {
			a.Smooth(b, x, false)
		}
		fa.SmoothResidual(b, x, mg.r[k])
	} else {
		for s := 0; s < mg.Pre; s++ {
			a.Smooth(b, x, false)
		}
		a.Residual(b, x, mg.r[k])
	}
	down := mg.levels[k].Down
	down.Restrict(mg.r[k], mg.b[k+1])
	xc := mg.x[k+1]
	for i := range xc {
		xc[i] = 0
	}
	mg.vcycle(k+1, mg.b[k+1], xc)
	down.Prolong(xc, x)
	for s := 0; s < mg.Post; s++ {
		a.Smooth(b, x, true)
	}
}

// Apply implements Preconditioner: z ≈ A⁻¹·r via one float32 V-cycle from
// a zero initial guess, converting at the fine-level boundary. The
// conversion is elementwise (r[i] → float32 → cycle → float64), so the
// map stays deterministic and thread-count invariant; the quantization it
// introduces only perturbs the *preconditioner*, never the float64
// residuals CG converges on.
func (mg *Multigrid32) Apply(r, z Vector) {
	b0, x0 := mg.b[0], mg.x[0]
	for i, v := range r {
		b0[i] = float32(v)
		x0[i] = 0
	}
	mg.vcycle(0, b0, x0)
	for i, v := range x0 {
		z[i] = float64(v)
	}
}

// ApplyCost implements CostedPreconditioner, charging the same fine-level
// operator-equivalents as the float64 cycle (Pre + Post sweeps plus one
// residual); the halved bandwidth is a wall-clock property, not a work
// accounting one.
func (mg *Multigrid32) ApplyCost() int { return mg.Pre + mg.Post + 1 }
