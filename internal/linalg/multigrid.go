package linalg

import "fmt"

// Smoother is a level operator of a multigrid hierarchy: besides the plain
// matrix-vector product it supports red-black Gauss-Seidel relaxation
// sweeps and residual evaluation. Red-black ordering makes the sweep
// independent of cell enumeration order (all cells of one color update
// against a frozen opposite color), which keeps smoothing deterministic
// and leaves the door open to parallel sweeps later.
type Smoother interface {
	Operator
	// Smooth performs one red-black Gauss-Seidel sweep toward A·x = b.
	// A forward sweep relaxes red then black; reverse relaxes black then
	// red. Pairing a forward pre-smooth with a reverse post-smooth makes
	// the V-cycle a symmetric operator — the property that lets it serve
	// as a CG preconditioner.
	Smooth(b, x Vector, reverse bool)
	// Residual computes r = b - A·x.
	Residual(b, x, r Vector)
}

// FusedSmoother is optionally implemented by level operators that can run
// a forward Smooth and the trailing Residual as one fused, temporally
// blocked pass over the grid. The contract is strict bit-equality: for any
// (b, x), SmoothResidual must leave x and r with exactly the bytes that
//
//	A.Smooth(b, x, false); A.Residual(b, x, r)
//
// would produce — fusion is a pure memory-traffic optimization (the field
// and coefficients are streamed once less), never a numerical variant. The
// V-cycle uses it for the pre-smooth/residual pair on every level that
// provides it.
type FusedSmoother interface {
	Smoother
	// SmoothResidual performs one forward red-black sweep toward A·x = b
	// and computes r = b - A·x for the updated x, in one fused pass.
	SmoothResidual(b, x, r Vector)
}

// Transfer moves vectors between a fine level and the next coarser one.
// Restrict must be (a scaling of) the transpose of Prolong, or the V-cycle
// stops being symmetric.
type Transfer interface {
	// Restrict projects a fine-level residual onto the coarse level
	// (full weighting), overwriting coarse.
	Restrict(fine, coarse Vector)
	// Prolong interpolates a coarse-level correction and ADDS it into
	// the fine-level iterate (bilinear interpolation).
	Prolong(coarse, fine Vector)
}

// MGLevel is one level of a multigrid hierarchy: its operator plus the
// transfer to the next coarser level (nil on the coarsest).
type MGLevel struct {
	A    Smoother
	Down Transfer
}

// Multigrid runs geometric V-cycles over a prebuilt level hierarchy. All
// per-level scratch (coarse right-hand sides, iterates, residuals) is
// owned by the Multigrid and allocated at construction, so cycles are
// allocation-free. It doubles as a CG Preconditioner: Apply runs one
// V-cycle from a zero initial guess.
//
// With Pre == Post the cycle is a symmetric linear operator (forward
// pre-smooth, symmetric coarse solve, reverse post-smooth), which is what
// makes MG-PCG legitimate. A Multigrid is not safe for concurrent use.
type Multigrid struct {
	levels []MGLevel
	// Pre and Post are the smoothing sweep counts per level (default 1
	// and 1). Keep them equal to preserve cycle symmetry.
	Pre, Post int
	// CoarseSweeps is the number of symmetric (forward+reverse) sweep
	// pairs used to solve the coarsest level (default 32). A fixed count
	// keeps the cycle a fixed linear map.
	CoarseSweeps int

	b, x, r []Vector // per-level scratch; index 0 of b/x unused
}

// NewMultigrid builds a V-cycle solver over the hierarchy, finest level
// first. It allocates every per-level buffer up front.
func NewMultigrid(levels []MGLevel) (*Multigrid, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("linalg: multigrid needs at least one level")
	}
	for i, l := range levels {
		if l.A == nil {
			return nil, fmt.Errorf("linalg: multigrid level %d has no operator", i)
		}
		if (l.Down == nil) != (i == len(levels)-1) {
			return nil, fmt.Errorf("linalg: multigrid level %d transfer mismatch", i)
		}
	}
	mg := &Multigrid{
		levels:       levels,
		Pre:          1,
		Post:         1,
		CoarseSweeps: 32,
		b:            make([]Vector, len(levels)),
		x:            make([]Vector, len(levels)),
		r:            make([]Vector, len(levels)),
	}
	for k, l := range levels {
		n := l.A.Size()
		if k > 0 {
			mg.b[k] = make(Vector, n)
			mg.x[k] = make(Vector, n)
		}
		mg.r[k] = make(Vector, n)
	}
	return mg, nil
}

// Levels returns the depth of the hierarchy.
func (mg *Multigrid) Levels() int { return len(mg.levels) }

// Cycle performs one V-cycle improving x toward A·x = b on the finest
// level. It is allocation-free.
func (mg *Multigrid) Cycle(b, x Vector) { mg.vcycle(0, b, x) }

func (mg *Multigrid) vcycle(k int, b, x Vector) {
	a := mg.levels[k].A
	if k == len(mg.levels)-1 {
		// Coarsest level: symmetric sweep pairs stand in for a direct
		// solve — the grid is small enough that this is exhaustive.
		for s := 0; s < mg.CoarseSweeps; s++ {
			a.Smooth(b, x, false)
			a.Smooth(b, x, true)
		}
		return
	}
	// Pre-smooth, with the last forward sweep fused into the residual
	// evaluation when the level supports it (bit-identical by the
	// FusedSmoother contract, one less pass over the level's memory).
	if fa, ok := a.(FusedSmoother); ok && mg.Pre >= 1 {
		for s := 0; s < mg.Pre-1; s++ {
			a.Smooth(b, x, false)
		}
		fa.SmoothResidual(b, x, mg.r[k])
	} else {
		for s := 0; s < mg.Pre; s++ {
			a.Smooth(b, x, false)
		}
		a.Residual(b, x, mg.r[k])
	}
	down := mg.levels[k].Down
	down.Restrict(mg.r[k], mg.b[k+1])
	mg.x[k+1].Fill(0)
	mg.vcycle(k+1, mg.b[k+1], mg.x[k+1])
	down.Prolong(mg.x[k+1], x)
	for s := 0; s < mg.Post; s++ {
		a.Smooth(b, x, true)
	}
}

// Apply implements Preconditioner: z ≈ A⁻¹·r via one V-cycle from a zero
// initial guess. The cycle is a fixed symmetric positive-definite linear
// map, so a *Multigrid can be passed as CGOptions.Precond (MG-PCG).
func (mg *Multigrid) Apply(r, z Vector) {
	z.Fill(0)
	mg.vcycle(0, r, z)
}

// ApplyCost implements CostedPreconditioner: one V-cycle performs Pre +
// Post fine-level smoothing sweeps plus one fine-level residual, each an
// operator-application equivalent (coarser levels add a geometric-series
// fraction that is not itemized). CG folds this into CGResult.Applies so
// MG-PCG's reported work includes the cycles it spends.
func (mg *Multigrid) ApplyCost() int { return mg.Pre + mg.Post + 1 }

// MGOptions configures the standalone multigrid solver.
type MGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖. Default 1e-9.
	Tol float64
	// MaxCycles caps V-cycles. Default 200.
	MaxCycles int
}

// MGSolve iterates V-cycles until the finest-level relative residual drops
// below the tolerance. x is the initial guess, updated in place.
// CGResult.Iterations counts V-cycles; Applies charges each cycle with its
// fine-level work (Pre+Post sweeps plus two residual evaluations — the one
// inside the cycle and the convergence check), so solver comparisons by
// Applies are conservative against multigrid.
func MGSolve(mg *Multigrid, b, x Vector, opt MGOptions) (CGResult, error) {
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxCycles <= 0 {
		opt.MaxCycles = 200
	}
	bNorm := b.Norm2()
	if bNorm == 0 {
		x.Fill(0)
		return CGResult{}, nil
	}
	a := mg.levels[0].A
	r := mg.r[0]
	var res CGResult
	a.Residual(b, x, r)
	res.Applies = 1
	res.Residual = r.Norm2() / bNorm
	if badFloat(res.Residual) {
		return res, failure("mg", CauseNaN, res)
	}
	if res.Residual < opt.Tol {
		return res, nil
	}
	for k := 0; k < opt.MaxCycles; k++ {
		mg.Cycle(b, x)
		a.Residual(b, x, r)
		res.Iterations = k + 1
		res.Applies += mg.Pre + mg.Post + 2
		res.Residual = r.Norm2() / bNorm
		if badFloat(res.Residual) {
			return res, failure("mg", CauseNaN, res)
		}
		if res.Residual < opt.Tol {
			return res, nil
		}
	}
	return res, failure("mg", CauseMaxIter, res)
}
