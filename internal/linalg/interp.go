package linalg

import (
	"fmt"
	"sort"
)

// Table1D is a piecewise-linear interpolation table over strictly
// increasing abscissae. Queries outside the range clamp to the endpoints
// (property tables must never extrapolate wildly).
type Table1D struct {
	xs, ys []float64
}

// NewTable1D builds an interpolation table. xs must be strictly increasing
// and the slices must have equal nonzero length.
func NewTable1D(xs, ys []float64) (*Table1D, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("linalg: table needs equal nonzero lengths, got %d and %d", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("linalg: table abscissae not strictly increasing at %d (%g ≤ %g)", i, xs[i], xs[i-1])
		}
	}
	t := &Table1D{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return t, nil
}

// MustTable1D is NewTable1D that panics on error; for package-level tables.
func MustTable1D(xs, ys []float64) *Table1D {
	t, err := NewTable1D(xs, ys)
	if err != nil {
		panic(err)
	}
	return t
}

// At returns the interpolated value at x, clamped to the table range.
func (t *Table1D) At(x float64) float64 {
	xs, ys := t.xs, t.ys
	if x <= xs[0] {
		return ys[0]
	}
	n := len(xs)
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// sort.SearchFloat64s returns the first index with xs[i] >= x.
	i := sort.SearchFloat64s(xs, x)
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Inverse returns a table with the roles of x and y swapped. It requires
// the ys to be strictly monotonic; decreasing tables are reversed.
func (t *Table1D) Inverse() (*Table1D, error) {
	n := len(t.xs)
	inc, dec := true, true
	for i := 1; i < n; i++ {
		if t.ys[i] <= t.ys[i-1] {
			inc = false
		}
		if t.ys[i] >= t.ys[i-1] {
			dec = false
		}
	}
	switch {
	case inc:
		return NewTable1D(t.ys, t.xs)
	case dec:
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = t.ys[n-1-i]
			ys[i] = t.xs[n-1-i]
		}
		return NewTable1D(xs, ys)
	default:
		return nil, fmt.Errorf("linalg: table values not monotonic; cannot invert")
	}
}

// Min and Max return the abscissa range of the table.
func (t *Table1D) Min() float64 { return t.xs[0] }

// Max returns the largest abscissa of the table.
func (t *Table1D) Max() float64 { return t.xs[len(t.xs)-1] }

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a (t=0) and b (t=1).
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
