package experiments

import (
	"fmt"

	"repro/internal/cosim"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/thermosyphon"
)

// ScalabilityCell is one (die, mapping) cell of the scalability extension.
type ScalabilityCell struct {
	Cores     int
	Mapping   string
	Die       metrics.MapStats
	DryoutPct float64 // fraction of evaporator cells past critical quality
}

// ExtScalability exercises the mapping rule on a scaled 16-core die (the
// §III note that the evaporator scales with the CPU dimension): half the
// cores run a fixed per-core load, placed either with the generalized
// row-exclusive stagger or clustered into adjacent columns. The staggered
// placement should keep its advantage as the die grows.
func ExtScalability(res Resolution) ([]ScalabilityCell, error) {
	var out []ScalabilityCell
	for _, dims := range [][2]int{{4, 2}, {4, 4}} {
		spec := floorplan.DefaultGridSpec(dims[0], dims[1])
		fp, err := floorplan.Generic(spec)
		if err != nil {
			return nil, err
		}
		pg := floorplan.GenericPackage(fp)
		nx, ny := res.dims()
		// Keep roughly square cells on the larger package.
		if dims[1] > 2 {
			nx = nx * 3 / 2
		}
		cfg := cosim.DefaultConfig()
		cfg.Stack.NX, cfg.Stack.NY = nx, ny
		cfg.Stack.Package = pg
		sys, err := cosim.NewCustomSystem(fp, cfg)
		if err != nil {
			return nil, err
		}
		n := dims[0] * dims[1]
		active := n / 2

		staggered := floorplan.GenericRowExclusiveOrder(spec)[:active]
		clustered := make([]int, active)
		for i := range clustered {
			clustered[i] = i // column-major: fills adjacent east columns
		}
		for _, m := range []struct {
			name  string
			cores []int
		}{
			{"staggered", staggered},
			{"clustered", clustered},
		} {
			bp := map[string]float64{
				"LLC":     2,
				"MemCtrl": 6.3,
				"Uncore":  7.7,
			}
			activeSet := map[int]bool{}
			for _, c := range m.cores {
				activeSet[c] = true
			}
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("Core%d", i+1)
				if activeSet[i] {
					bp[name] = 7.5 // POLL baseline + heavy dynamic
				} else {
					bp[name] = 2.0 // C1-parked
				}
			}
			r, err := sys.SolveSteadyPower(bp, thermosyphon.DefaultOperating())
			if err != nil {
				return nil, fmt.Errorf("%dx%d/%s: %w", dims[0], dims[1], m.name, err)
			}
			die, err := sys.DieStats(r)
			if err != nil {
				return nil, err
			}
			out = append(out, ScalabilityCell{
				Cores:     n,
				Mapping:   m.name,
				Die:       die,
				DryoutPct: float64(r.Syphon.DryoutCells) / float64(sys.Thermal.Cells()),
			})
		}
	}
	return out, nil
}
