package experiments

import (
	"fmt"

	"repro/internal/cosim"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
)

// ScalabilityCell is one (die, mapping) cell of the scalability extension.
type ScalabilityCell struct {
	Cores     int
	Mapping   string
	Die       metrics.MapStats
	DryoutPct float64 // fraction of evaporator cells past critical quality
}

// scaledSystem builds the generic die and custom co-simulation system for
// one grid dimension of the scalability study.
func scaledSystem(dims [2]int, res Resolution) (*cosim.System, floorplan.GridSpec, error) {
	spec := floorplan.DefaultGridSpec(dims[0], dims[1])
	fp, err := floorplan.Generic(spec)
	if err != nil {
		return nil, spec, err
	}
	pg := floorplan.GenericPackage(fp)
	nx, ny := res.dims()
	// Keep roughly square cells on the larger package.
	if dims[1] > 2 {
		nx = nx * 3 / 2
	}
	cfg := cosim.DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = nx, ny
	cfg.Stack.Package = pg
	sys, err := cosim.NewCustomSystem(fp, cfg)
	return sys, spec, err
}

// ExtScalability exercises the mapping rule on a scaled 16-core die (the
// §III note that the evaporator scales with the CPU dimension): half the
// cores run a fixed per-core load, placed either with the generalized
// row-exclusive stagger or clustered into adjacent columns. The staggered
// placement should keep its advantage as the die grows. The four (die,
// mapping) cells run through the sweep pool; each worker caches the custom
// systems (wrapped in non-carrying solve sessions) it builds per die
// dimension.
func ExtScalability(res Resolution) ([]ScalabilityCell, error) {
	type cached struct {
		ses  *cosim.Session
		spec floorplan.GridSpec
	}
	cells := sweep.Cross([][2]int{{4, 2}, {4, 4}}, []string{"staggered", "clustered"})
	return sweep.RunState(cells,
		func() (map[[2]int]*cached, error) { return map[[2]int]*cached{}, nil },
		func(cache map[[2]int]*cached, p sweep.Pair[[2]int, string]) (ScalabilityCell, error) {
			dims, name := p.A, p.B
			c := cache[dims]
			if c == nil {
				sys, spec, err := scaledSystem(dims, res)
				if err != nil {
					return ScalabilityCell{}, err
				}
				c = &cached{ses: sys.NewSession(cosim.CarryWarmStart(false)), spec: spec}
				cache[dims] = c
			}
			n := dims[0] * dims[1]
			active := n / 2

			var cores []int
			if name == "staggered" {
				cores = floorplan.GenericRowExclusiveOrder(c.spec)[:active]
			} else {
				cores = make([]int, active)
				for i := range cores {
					cores[i] = i // column-major: fills adjacent east columns
				}
			}
			bp := map[string]float64{
				"LLC":     2,
				"MemCtrl": 6.3,
				"Uncore":  7.7,
			}
			activeSet := map[int]bool{}
			for _, core := range cores {
				activeSet[core] = true
			}
			for i := 0; i < n; i++ {
				blk := fmt.Sprintf("Core%d", i+1)
				if activeSet[i] {
					bp[blk] = 7.5 // POLL baseline + heavy dynamic
				} else {
					bp[blk] = 2.0 // C1-parked
				}
			}
			r, err := c.ses.SolveSteadyPower(bp, thermosyphon.DefaultOperating())
			if err != nil {
				return ScalabilityCell{}, fmt.Errorf("%dx%d/%s: %w", dims[0], dims[1], name, err)
			}
			sys := c.ses.System()
			die, err := sys.DieStats(r)
			if err != nil {
				return ScalabilityCell{}, err
			}
			return ScalabilityCell{
				Cores:     n,
				Mapping:   name,
				Die:       die,
				DryoutPct: float64(r.Syphon.DryoutCells) / float64(sys.Thermal.Cells()),
			}, nil
		})
}
