package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cosim"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// ScalabilityCell is one (die, mapping) cell of the scalability extension.
type ScalabilityCell struct {
	Cores     int
	Mapping   string
	Die       metrics.MapStats
	DryoutPct float64 // fraction of evaporator cells past critical quality
}

// scaledSystem builds the generic die and custom co-simulation system for
// one grid dimension of the scalability study.
func scaledSystem(dims [2]int, res Resolution) (*cosim.System, floorplan.GridSpec, error) {
	spec := floorplan.DefaultGridSpec(dims[0], dims[1])
	fp, err := floorplan.Generic(spec)
	if err != nil {
		return nil, spec, err
	}
	pg := floorplan.GenericPackage(fp)
	nx, ny := res.dims()
	// Keep roughly square cells on the larger package.
	if dims[1] > 2 {
		nx = nx * 3 / 2
	}
	cfg := cosim.DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = nx, ny
	cfg.Stack.Package = pg
	sys, err := cosim.NewCustomSystem(fp, cfg)
	return sys, spec, err
}

// ResolutionCell is one (grid size, solver) point of the
// resolution-scaling extension: the worst-case full-load steady solve at
// an nx×ny per-layer grid, with the linear-solver effort it took.
type ResolutionCell struct {
	NX, NY   int
	Unknowns int // total cells across the stack's layers
	Solver   string
	// DieMaxC pins the physics: every solver must land on the same field.
	DieMaxC float64
	// OuterIters is the coupled thermal↔thermosyphon fixed-point count.
	OuterIters int
	// LinIters and Applies total the linear iterations (CG iterations or
	// V-cycles) and operator applications over the whole coupled solve.
	LinIters int
	Applies  int
	// WallMS is the wall-clock solve time. Informational: unlike the
	// other fields it naturally varies run to run and is not part of any
	// determinism contract.
	WallMS float64
}

// ExtResolutionScaling sweeps the per-layer grid resolution of the
// standard blade — not the blade count — and solves the same worst-case
// full-load steady state at every size with each requested solver. It is
// the experiment behind the O(n) claim: Jacobi-CG's applies grow with
// grid dimension while MG-PCG's stay flat, so by 256×256 the multigrid
// path wins by well over an order of magnitude in operator work.
// The sizes and solvers axes are explicit — this experiment sweeps
// solvers, so cfg.Solver is ignored. Passing nil selects the default
// sizes {32, 64, 96, 128} and solvers {cg, mgpcg}.
func ExtResolutionScaling(ctx context.Context, cfg RunConfig, sizes []int, solvers []thermal.Solver) ([]ResolutionCell, error) {
	if len(sizes) == 0 {
		sizes = []int{32, 64, 96, 128}
	}
	if len(solvers) == 0 {
		solvers = []thermal.Solver{thermal.SolverCG, thermal.SolverMGPCG}
	}
	bench, cfgW := workload.WorstCase()
	mapping := FullLoadMapping(cfgW, power.POLL)
	points := sweep.Cross(sizes, solvers)
	// Depth-first core split: the biggest grid dominates the study's wall
	// time, so the budget goes to each solve's worker team rather than to
	// sweep fan-out — "all cores inside one big solve".
	cfg = cfg.SplitBudgetDepthFirst(len(points))
	return sweep.Run(ctx, points, func(p sweep.Pair[int, thermal.Solver]) (ResolutionCell, error) {
		n, solver := p.A, p.B
		ccfg := cosim.DefaultConfig()
		ccfg.Stack.NX, ccfg.Stack.NY = n, n
		sys, err := cosim.NewSystem(ccfg)
		if err != nil {
			return ResolutionCell{}, fmt.Errorf("%dx%d: %w", n, n, err)
		}
		ses := sys.NewSession(cosim.WithSolver(solver), cosim.WithThreads(cfg.Threads), cosim.CarryWarmStart(false))
		defer ses.Close()
		start := time.Now()
		die, _, r, err := SolveMappingSession(ctx, ses, bench, mapping, thermosyphon.DefaultOperating())
		if err != nil {
			return ResolutionCell{}, fmt.Errorf("%dx%d/%v: %w", n, n, solver, err)
		}
		wall := time.Since(start)
		stats := ses.SolverStats()
		return ResolutionCell{
			NX: n, NY: n,
			Unknowns:   sys.Thermal.Cells() * sys.Thermal.Layers(),
			Solver:     solver.String(),
			DieMaxC:    die.MaxC,
			OuterIters: r.Iterations,
			LinIters:   stats.Iterations,
			Applies:    stats.Applies,
			WallMS:     float64(wall.Microseconds()) / 1e3,
		}, nil
	}, cfg.sweepOpts()...)
}

// cached is one die dimension's reusable solve context in the
// scalability study.
type cached struct {
	ses  *cosim.Session
	spec floorplan.GridSpec
}

// scaledCache is the per-worker session cache of the scalability study;
// Close lets the sweep engine release each session's worker team when
// the worker retires.
type scaledCache map[[2]int]*cached

// Close releases every cached session's worker team.
func (c scaledCache) Close() error {
	for _, v := range c {
		v.ses.Close()
	}
	return nil
}

// ExtScalability exercises the mapping rule on a scaled 16-core die (the
// §III note that the evaporator scales with the CPU dimension): half the
// cores run a fixed per-core load, placed either with the generalized
// row-exclusive stagger or clustered into adjacent columns. The staggered
// placement should keep its advantage as the die grows. The four (die,
// mapping) cells run through the sweep pool; each worker caches the custom
// systems (wrapped in non-carrying solve sessions) it builds per die
// dimension.
func ExtScalability(ctx context.Context, cfg RunConfig) ([]ScalabilityCell, error) {
	cells := sweep.Cross([][2]int{{4, 2}, {4, 4}}, []string{"staggered", "clustered"})
	cfg = cfg.SplitBudget(len(cells))
	return sweep.RunState(ctx, cells,
		func() (scaledCache, error) { return scaledCache{}, nil },
		func(cache scaledCache, p sweep.Pair[[2]int, string]) (ScalabilityCell, error) {
			dims, name := p.A, p.B
			c := cache[dims]
			if c == nil {
				sys, spec, err := scaledSystem(dims, cfg.Resolution)
				if err != nil {
					return ScalabilityCell{}, err
				}
				c = &cached{ses: sys.NewSession(cfg.sessionOptions(cosim.CarryWarmStart(false))...), spec: spec}
				cache[dims] = c
			}
			n := dims[0] * dims[1]
			active := n / 2

			var cores []int
			if name == "staggered" {
				cores = floorplan.GenericRowExclusiveOrder(c.spec)[:active]
			} else {
				cores = make([]int, active)
				for i := range cores {
					cores[i] = i // column-major: fills adjacent east columns
				}
			}
			bp := map[string]float64{
				"LLC":     2,
				"MemCtrl": 6.3,
				"Uncore":  7.7,
			}
			activeSet := map[int]bool{}
			for _, core := range cores {
				activeSet[core] = true
			}
			for i := 0; i < n; i++ {
				blk := fmt.Sprintf("Core%d", i+1)
				if activeSet[i] {
					bp[blk] = 7.5 // POLL baseline + heavy dynamic
				} else {
					bp[blk] = 2.0 // C1-parked
				}
			}
			r, err := c.ses.SolveSteadyPower(ctx, bp, thermosyphon.DefaultOperating())
			if err != nil {
				return ScalabilityCell{}, fmt.Errorf("%dx%d/%s: %w", dims[0], dims[1], name, err)
			}
			sys := c.ses.System()
			die, err := sys.DieStats(r)
			if err != nil {
				return ScalabilityCell{}, err
			}
			return ScalabilityCell{
				Cores:     n,
				Mapping:   name,
				Die:       die,
				DryoutPct: float64(r.Syphon.DryoutCells) / float64(sys.Thermal.Cells()),
			}, nil
		},
		cfg.sweepOpts()...)
}
