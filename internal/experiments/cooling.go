package experiments

import (
	"context"
	"fmt"

	"repro/internal/chiller"
	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/linalg"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// CoolingResult reproduces §VIII-B: the water temperature the baseline
// needs to match the proposed approach's hot spot at the same flow, the
// water-side ΔT of both, and the resulting Eq. (1) and chiller powers.
type CoolingResult struct {
	// HotspotC is the die hot spot both configurations are held to.
	HotspotC float64
	// Proposed and Baseline operating points and budgets.
	ProposedWaterC, BaselineWaterC float64
	ProposedDeltaT, BaselineDeltaT float64
	ProposedBudget, BaselineBudget chiller.Budget
	// ReductionEq1 is 1 − P_prop/P_base under Eq. (1).
	ReductionEq1 float64
	// ReductionChiller is the same for the electrical chiller model.
	ReductionChiller float64
}

// CoolingPowerStudy runs the §VIII-B experiment at 2x QoS with the paper's
// 7 kg/h water flow and 35 °C data-center ambient: solve the proposed stack
// at 30 °C water, then find the water temperature at which the baseline
// stack ([8]+[27]+[9]) reaches the same die hot spot, and compare cooling
// powers via Eq. (1) and the chiller COP model. The two stacks are set up
// in parallel; the solves then run on per-stack warm-started sessions —
// the bisection probes differ only in water temperature, so every probe
// after the first starts from the previous converged field and costs a
// few refinement iterations instead of a cold solve. The probe sequence
// is serial and fixed, so the warm starts are deterministic.
func CoolingPowerStudy(ctx context.Context, cfg RunConfig) (*CoolingResult, error) {
	const (
		qos      = workload.QoS2x
		flowKgH  = 7.0
		ambientC = 35.0
	)
	bench, err := workload.ByName("freqmine")
	if err != nil {
		return nil, err
	}

	// Build each approach's system and mapping once; each gets its own
	// warm-started session for the serial solve sequence below. The
	// sessions themselves (which may own worker teams) are created only
	// after the sweep succeeds, so a failed setup cannot strand a team.
	type setup struct {
		sys *cosim.System
		ses *cosim.Session
		m   core.Mapping
	}
	// Depth-first split: the setup sweep below performs no thermal solves
	// (systems and plans only), and the bisection that dominates this
	// experiment solves one session at a time — so the whole core budget
	// belongs to each solve's worker team.
	cfg = cfg.SplitBudgetDepthFirst(2)
	setups, err := sweep.Run(ctx, []Approach{Proposed, SoACoskun}, func(a Approach) (setup, error) {
		sys, err := NewSystem(a.design(), cfg.Resolution)
		if err != nil {
			return setup{}, err
		}
		m, err := a.plan(bench, qos)
		if err != nil {
			return setup{}, err
		}
		return setup{sys: sys, m: m}, nil
	}, cfg.sweepOpts()...)
	if err != nil {
		return nil, err
	}
	prop, base := setups[0], setups[1]
	prop.ses = prop.sys.NewSession(cfg.sessionOptions()...)
	defer prop.ses.Close()
	base.ses = base.sys.NewSession(cfg.sessionOptions()...)
	defer base.ses.Close()

	solveAt := func(s setup, waterC float64) (dieMax float64, waterOut float64, err error) {
		op := thermosyphon.Operating{WaterInC: waterC, WaterFlowKgH: flowKgH}
		die, _, r, err := SolveMappingSession(ctx, s.ses, bench, s.m, op)
		if err != nil {
			return 0, 0, err
		}
		return die.MaxC, r.Syphon.Condenser.WaterOutC, nil
	}

	out := &CoolingResult{ProposedWaterC: 30}
	propMax, propOut, err := solveAt(prop, 30)
	if err != nil {
		return nil, err
	}
	out.HotspotC = propMax
	out.ProposedDeltaT = propOut - 30

	// Find the baseline water temperature that matches the hot spot.
	var baseOut float64
	target := func(waterC float64) float64 {
		dieMax, wOut, err2 := solveAt(base, waterC)
		if err2 != nil {
			err = err2
			return 0
		}
		baseOut = wOut
		return dieMax - propMax
	}
	waterC, _ := linalg.Bisect(target, 5, 30, 0.25, 30)
	if err != nil {
		return nil, err
	}
	// Evaluate the final baseline point: Bisect returns the interval
	// midpoint without evaluating there, so this solve is what makes
	// baseOut correspond to the returned waterC.
	if _, wOut, err := solveAt(base, waterC); err != nil {
		return nil, err
	} else {
		baseOut = wOut
	}
	out.BaselineWaterC = waterC
	out.BaselineDeltaT = baseOut - waterC

	if out.BaselineWaterC >= out.ProposedWaterC {
		return nil, fmt.Errorf("experiments: baseline did not need colder water (%.1f vs %.1f)",
			out.BaselineWaterC, out.ProposedWaterC)
	}

	pb, err := chiller.Assess(flowKgH, out.ProposedWaterC, out.ProposedWaterC+out.ProposedDeltaT, ambientC)
	if err != nil {
		return nil, err
	}
	bb, err := chiller.Assess(flowKgH, out.BaselineWaterC, out.BaselineWaterC+out.BaselineDeltaT, ambientC)
	if err != nil {
		return nil, err
	}
	out.ProposedBudget, out.BaselineBudget = pb, bb
	out.ReductionEq1 = 1 - pb.Eq1PowerW/bb.Eq1PowerW
	out.ReductionChiller = 1 - pb.ChillerPowerW/bb.ChillerPowerW
	return out, nil
}
