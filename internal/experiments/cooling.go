package experiments

import (
	"fmt"

	"repro/internal/chiller"
	"repro/internal/linalg"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// CoolingResult reproduces §VIII-B: the water temperature the baseline
// needs to match the proposed approach's hot spot at the same flow, the
// water-side ΔT of both, and the resulting Eq. (1) and chiller powers.
type CoolingResult struct {
	// HotspotC is the die hot spot both configurations are held to.
	HotspotC float64
	// Proposed and Baseline operating points and budgets.
	ProposedWaterC, BaselineWaterC float64
	ProposedDeltaT, BaselineDeltaT float64
	ProposedBudget, BaselineBudget chiller.Budget
	// ReductionEq1 is 1 − P_prop/P_base under Eq. (1).
	ReductionEq1 float64
	// ReductionChiller is the same for the electrical chiller model.
	ReductionChiller float64
}

// CoolingPowerStudy runs the §VIII-B experiment at 2x QoS with the paper's
// 7 kg/h water flow and 35 °C data-center ambient: solve the proposed stack
// at 30 °C water, then find the water temperature at which the baseline
// stack ([8]+[27]+[9]) reaches the same die hot spot, and compare cooling
// powers via Eq. (1) and the chiller COP model.
func CoolingPowerStudy(res Resolution) (*CoolingResult, error) {
	const (
		qos      = workload.QoS2x
		flowKgH  = 7.0
		ambientC = 35.0
	)
	bench, err := workload.ByName("freqmine")
	if err != nil {
		return nil, err
	}

	solveAt := func(a Approach, waterC float64) (dieMax float64, waterOut float64, err error) {
		sys, err := NewSystem(a.design(), res)
		if err != nil {
			return 0, 0, err
		}
		m, err := a.plan(bench, qos)
		if err != nil {
			return 0, 0, err
		}
		op := thermosyphon.Operating{WaterInC: waterC, WaterFlowKgH: flowKgH}
		die, _, r, err := SolveMapping(sys, bench, m, op)
		if err != nil {
			return 0, 0, err
		}
		return die.MaxC, r.Syphon.Condenser.WaterOutC, nil
	}

	out := &CoolingResult{ProposedWaterC: 30}
	propMax, propOut, err := solveAt(Proposed, 30)
	if err != nil {
		return nil, err
	}
	out.HotspotC = propMax
	out.ProposedDeltaT = propOut - 30

	// Find the baseline water temperature that matches the hot spot.
	var baseOut float64
	target := func(waterC float64) float64 {
		dieMax, wOut, err2 := solveAt(SoACoskun, waterC)
		if err2 != nil {
			err = err2
			return 0
		}
		baseOut = wOut
		return dieMax - propMax
	}
	waterC, _ := linalg.Bisect(target, 5, 30, 0.25, 30)
	if err != nil {
		return nil, err
	}
	// Evaluate the final baseline point.
	if _, _, err := solveAt(SoACoskun, waterC); err != nil {
		return nil, err
	}
	out.BaselineWaterC = waterC
	out.BaselineDeltaT = baseOut - waterC

	if out.BaselineWaterC >= out.ProposedWaterC {
		return nil, fmt.Errorf("experiments: baseline did not need colder water (%.1f vs %.1f)",
			out.BaselineWaterC, out.ProposedWaterC)
	}

	pb, err := chiller.Assess(flowKgH, out.ProposedWaterC, out.ProposedWaterC+out.ProposedDeltaT, ambientC)
	if err != nil {
		return nil, err
	}
	bb, err := chiller.Assess(flowKgH, out.BaselineWaterC, out.BaselineWaterC+out.BaselineDeltaT, ambientC)
	if err != nil {
		return nil, err
	}
	out.ProposedBudget, out.BaselineBudget = pb, bb
	out.ReductionEq1 = 1 - pb.Eq1PowerW/bb.Eq1PowerW
	out.ReductionChiller = 1 - pb.ChillerPowerW/bb.ChillerPowerW
	return out, nil
}
