package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datacenter"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// The datacenter extension scales the paper's single-blade co-simulation
// to a facility: N racks × M blades share chiller water loops, the loop
// supply temperatures are coupled to the blade heat through the
// internal/datacenter nested fixed point, and the facility is priced as a
// chiller plant (PUE). Two studies ride on it: the scale ladder (solve
// cost and convergence vs fleet size up to 1000 blades) and a diurnal
// 24-hour quasi-static transient driven by a workload trace.

// datacenterLoop is the shared-loop parameter set of both studies: the
// paper's §VI-C water point (per-blade flow, ~27 °C class supply) plus a
// finite plant approach so supply genuinely rises with load.
func datacenterLoop() rack.SharedLoop {
	op := thermosyphon.DefaultOperating()
	return rack.SharedLoop{
		SetpointC:       op.WaterInC - 3, // chiller setpoint; load lifts supply back up
		ApproachKPerKW:  0.3,
		PerBladeFlowKgH: op.WaterFlowKgH,
		AmbientC:        35,
	}
}

// datacenterStates is the fleet's blade mix: each PARSEC benchmark fully
// loads a blade at FMax with POLL idles, assigned round-robin across the
// fleet. The fixed 13-state roster bounds the class count, which is what
// keeps the 1000-blade solve affordable.
func datacenterStates() []power.PackageState {
	wcfg := workload.Config{Cores: 8, Threads: 8, Freq: power.FMax}
	m := FullLoadMapping(wcfg, power.POLL)
	benches := workload.All()
	states := make([]power.PackageState, len(benches))
	for i, b := range benches {
		states[i] = core.PackageState(b, m)
	}
	return states
}

// DatacenterScalePoint is one rung of the fleet-size ladder.
type DatacenterScalePoint struct {
	Blades, Racks, Loops int
	// Classes is the distinct blade-class count; BladeSolves the coupled
	// solves performed (Classes × OuterIterations).
	Classes     int
	BladeSolves int
	// OuterIterations is the damped water-temperature fixed point's count;
	// Converged whether it met the solver tolerance.
	OuterIterations int
	Converged       bool
	ITPowerW        float64
	MaxDieC         float64
	// MaxSupplyC is the hottest loop's converged supply temperature.
	MaxSupplyC float64
	PUE        float64
	// Wall is the measured solve time. It lives only in this typed API —
	// the registry tables stay deterministic.
	Wall time.Duration
}

// datacenterLadder is the fleet-size ladder of the scale study; loops
// grow with the fleet so per-loop load stays in a realistic band.
var datacenterLadder = []struct{ racks, perRack, loops int }{
	{2, 16, 1},  // 32 blades
	{8, 32, 2},  // 256 blades
	{25, 40, 4}, // 1000 blades
}

// ExtDatacenterScale runs the nested fleet solve at each ladder rung and
// reports convergence, cost and facility metrics. One blade system is
// shared by every rung (the fleet shares a floorplan and thermosyphon
// design); each rung gets a fresh solver so every solve starts from cold
// loop temperatures and the outer-iteration counts are comparable.
func ExtDatacenterScale(ctx context.Context, cfg RunConfig) ([]DatacenterScalePoint, error) {
	sys, err := NewSystem(thermosyphon.DefaultDesign(), cfg.Resolution)
	if err != nil {
		return nil, err
	}
	states := datacenterStates()
	out := make([]DatacenterScalePoint, 0, len(datacenterLadder))
	for _, rung := range datacenterLadder {
		topo, err := datacenter.Uniform(rung.racks, rung.perRack, rung.loops, datacenterLoop(), states)
		if err != nil {
			return nil, err
		}
		rcfg := cfg.SplitBudget(topo.NumClasses())
		s, err := datacenter.New(sys, topo, datacenter.Options{
			Solver:  rcfg.Solver,
			Workers: rcfg.Workers,
			Threads: rcfg.Threads,
			Leakage: power.DefaultLeakage(),
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := s.Solve(ctx)
		wall := time.Since(start)
		s.Close()
		if err != nil {
			return nil, fmt.Errorf("datacenter: %d blades: %w", topo.NumBlades(), err)
		}
		p := DatacenterScalePoint{
			Blades: topo.NumBlades(), Racks: rung.racks, Loops: rung.loops,
			Classes: rep.Classes, BladeSolves: rep.BladeSolves,
			OuterIterations: rep.OuterIterations, Converged: rep.Converged,
			ITPowerW: rep.ITPowerW, MaxDieC: rep.MaxDieC, PUE: rep.Plant.PUE,
			Wall: wall,
		}
		for _, l := range rep.Loops {
			if l.State.SupplyC > p.MaxSupplyC {
				p.MaxSupplyC = l.State.SupplyC
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// DatacenterHour is one hour of the diurnal transient.
type DatacenterHour struct {
	Hour int
	// LoadFactor is the fleet-wide dynamic-power multiplier from the
	// diurnal trace.
	LoadFactor      float64
	ITPowerW        float64
	MaxDieC         float64
	MaxSupplyC      float64
	PUE             float64
	OuterIterations int
}

// ExtDatacenterDiurnal drives a fixed fleet through the 24-hour diurnal
// utilization curve as a quasi-static series: blade thermal time
// constants are far below an hour, so each hour is a steady solve at that
// hour's load factor. One solver carries the converged loop temperatures
// and blade warm starts from hour to hour, so only the load steps at the
// morning ramp and evening tail cost more than a couple of outer
// iterations.
func ExtDatacenterDiurnal(ctx context.Context, cfg RunConfig) ([]DatacenterHour, error) {
	sys, err := NewSystem(thermosyphon.DefaultDesign(), cfg.Resolution)
	if err != nil {
		return nil, err
	}
	topo, err := datacenter.Uniform(4, 8, 2, datacenterLoop(), datacenterStates())
	if err != nil {
		return nil, err
	}
	rcfg := cfg.SplitBudget(topo.NumClasses())
	s, err := datacenter.New(sys, topo, datacenter.Options{
		Solver:  rcfg.Solver,
		Workers: rcfg.Workers,
		Threads: rcfg.Threads,
		Leakage: power.DefaultLeakage(),
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	trace := workload.DiurnalTrace(24)
	out := make([]DatacenterHour, 0, len(trace))
	for hour, factor := range trace {
		rep, err := s.SolveScaled(ctx, factor)
		if err != nil {
			return nil, fmt.Errorf("datacenter: hour %d: %w", hour, err)
		}
		h := DatacenterHour{
			Hour: hour, LoadFactor: factor,
			ITPowerW: rep.ITPowerW, MaxDieC: rep.MaxDieC, PUE: rep.Plant.PUE,
			OuterIterations: rep.OuterIterations,
		}
		for _, l := range rep.Loops {
			if l.State.SupplyC > h.MaxSupplyC {
				h.MaxSupplyC = l.State.SupplyC
			}
		}
		out = append(out, h)
	}
	return out, nil
}
