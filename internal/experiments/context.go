package experiments

import (
	"context"
	"time"
)

// WithTimeout bounds ctx by the given timeout when it is positive and
// returns ctx unchanged (with a no-op cancel) otherwise. It is the one
// implementation of the "-timeout 0 means no limit" contract every
// command and the thermservd request-deadline path share, so the
// zero-disables convention cannot drift between callers. The returned
// cancel must always be called, exactly like context.WithTimeout's.
func WithTimeout(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}
