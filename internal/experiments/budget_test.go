package experiments

import (
	"runtime"
	"testing"
)

// TestSplitBudget pins the shared-core-budget rules: explicit settings
// are honored, derived settings never oversubscribe GOMAXPROCS, and the
// auto modes fill the machine width-first (sweeps) or depth-first (big
// solves). GOMAXPROCS is pinned to 8 so the arithmetic is meaningful on
// any host; thread-count invariance of results makes the temporary
// change safe for concurrently scheduled goroutines.
func TestSplitBudget(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	cases := []struct {
		name         string
		in           RunConfig
		points       int
		depthFirst   bool
		wantW, wantT int
	}{
		{name: "auto wide sweep", in: RunConfig{}, points: 13, wantW: 8, wantT: 1},
		{name: "auto narrow sweep", in: RunConfig{}, points: 2, wantW: 2, wantT: 4},
		{name: "auto single point", in: RunConfig{}, points: 1, wantW: 1, wantT: 8},
		{name: "auto depth-first", in: RunConfig{}, points: 6, depthFirst: true, wantW: 1, wantT: 8},
		{name: "explicit workers", in: RunConfig{Workers: 4}, points: 13, wantW: 4, wantT: 2},
		{name: "explicit serial workers", in: RunConfig{Workers: 1}, points: 13, wantW: 1, wantT: 8},
		{name: "explicit threads", in: RunConfig{Threads: 4}, points: 13, wantW: 2, wantT: 4},
		{name: "both explicit", in: RunConfig{Workers: 5, Threads: 3}, points: 13, wantW: 5, wantT: 3},
		{name: "threads over budget", in: RunConfig{Threads: 16}, points: 13, wantW: 1, wantT: 16},
		{name: "workers capped by points", in: RunConfig{}, points: 3, wantW: 3, wantT: 2},
		{name: "explicit workers above points", in: RunConfig{Workers: 8}, points: 2, wantW: 2, wantT: 4},
		{name: "zero points", in: RunConfig{}, points: 0, wantW: 1, wantT: 8},
	}
	for _, c := range cases {
		got := c.in.split(c.points, c.depthFirst)
		if got.Workers != c.wantW || got.Threads != c.wantT {
			t.Errorf("%s: got workers=%d threads=%d, want %d/%d",
				c.name, got.Workers, got.Threads, c.wantW, c.wantT)
		}
		if got.Workers < 1 || got.Threads < 1 {
			t.Errorf("%s: non-positive resolution %+v", c.name, got)
		}
		// Re-splitting a resolved config is a no-op: both fields explicit.
		again := got.SplitBudget(c.points)
		if again.Workers != got.Workers || again.Threads != got.Threads {
			t.Errorf("%s: resolve not idempotent: %+v vs %+v", c.name, again, got)
		}
	}
}
