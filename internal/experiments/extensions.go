package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// The experiments in this file extend the paper's evaluation along axes
// the text motivates but does not quantify: the interaction between the
// evaporator orientation and the mapping policy, and the closed-loop
// runtime controller's reaction to a thermal emergency.

// OrientationMappingCell is one (orientation, mapping) cell of the
// extension cross study.
type OrientationMappingCell struct {
	Orientation thermosyphon.Orientation
	Scenario    string
	Die         metrics.MapStats
}

// ExtOrientationMapping crosses the four evaporator orientations with the
// three Fig. 6 mappings under C1 idles: the paper argues the mapping rule
// ("one hot core per channel") is orientation-relative, so the staggered
// mapping's advantage should persist across orientations while the
// clustered mapping's penalty should depend on whether the cluster shares
// channels. The twelve cells run through the sweep pool; each worker
// caches the per-orientation solve sessions it builds, so no orientation's
// system or workspace is assembled more than once per worker.
func ExtOrientationMapping(ctx context.Context, cfg RunConfig) ([]OrientationMappingCell, error) {
	bench, err := workload.ByName("facesim")
	if err != nil {
		return nil, err
	}
	wcfg := workload.Config{Cores: 4, Threads: 8, Freq: power.FMax}
	cells := sweep.Cross(thermosyphon.Orientations(), Fig6Scenarios())
	cfg = cfg.SplitBudget(len(cells))
	return sweep.RunState(ctx, cells,
		func() (sessionCache[thermosyphon.Orientation], error) {
			return sessionCache[thermosyphon.Orientation]{}, nil
		},
		func(cache sessionCache[thermosyphon.Orientation], p sweep.Pair[thermosyphon.Orientation, Fig6Scenario]) (OrientationMappingCell, error) {
			o, sc := p.A, p.B
			ses := cache[o]
			if ses == nil {
				d := thermosyphon.DefaultDesign()
				d.Orientation = o
				var err error
				ses, err = cfg.NewSweepSession(d)
				if err != nil {
					return OrientationMappingCell{}, err
				}
				cache[o] = ses
			}
			m := core.Mapping{ActiveCores: sc.Active, IdleState: power.C1, Config: wcfg}
			die, _, _, err := SolveMappingSession(ctx, ses, bench, m, thermosyphon.DefaultOperating())
			if err != nil {
				return OrientationMappingCell{}, fmt.Errorf("%v/%s: %w", o, sc.Name, err)
			}
			return OrientationMappingCell{Orientation: o, Scenario: sc.Name, Die: die}, nil
		},
		cfg.sweepOpts()...)
}

// RuntimeControlResult summarizes the §VII closed-loop experiment.
type RuntimeControlResult struct {
	// NominalTCase is the uncontrolled case temperature.
	NominalTCase float64
	// Limit is the synthetic emergency threshold applied.
	Limit float64
	// FinalTCase is the regulated case temperature.
	FinalTCase float64
	// FlowActions and DVFSActions count the remedies used.
	FlowActions, DVFSActions int
	// FinalFlowKgH is the valve position after regulation.
	FinalFlowKgH float64
	// QoSHeld reports whether the final configuration still meets QoS.
	QoSHeld bool
}

// ExtRuntimeControl stresses the runtime controller: the worst-case
// workload at 1x QoS with a case-temperature limit placed 2 °C below the
// nominal operating point, forcing the §VII control law to act.
func ExtRuntimeControl(ctx context.Context, cfg RunConfig) (*RuntimeControlResult, error) {
	sys, err := NewSystem(thermosyphon.DefaultDesign(), cfg.Resolution)
	if err != nil {
		return nil, err
	}
	bench, wcfg := workload.WorstCase()
	m := FullLoadMapping(wcfg, power.POLL)
	const qos = workload.QoS1x

	ctl := sched.NewController(sys)
	ctl.Solver = cfg.Solver
	nominal, err := ctl.Regulate(ctx, bench, m, qos)
	if err != nil {
		return nil, err
	}
	out := &RuntimeControlResult{NominalTCase: nominal.TCase, Limit: nominal.TCase - 2}

	ctl2 := sched.NewController(sys)
	ctl2.Solver = cfg.Solver
	ctl2.TCaseLimit = out.Limit
	regulated, err := ctl2.Regulate(ctx, bench, m, qos)
	if err != nil {
		return nil, err
	}
	out.FinalTCase = regulated.TCase
	out.FinalFlowKgH = regulated.Op.WaterFlowKgH
	for _, a := range regulated.Actions {
		switch a.Kind {
		case "flow":
			out.FlowActions++
		case "dvfs":
			out.DVFSActions++
		}
	}
	out.QoSHeld = qos.Satisfied(bench, regulated.Mapping.Config)
	return out, nil
}
