package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("registry has %d experiments, expected the full paper catalog", len(all))
	}
	names := Names()
	if len(names) != len(all) {
		t.Fatalf("Names() returned %d names for %d experiments", len(names), len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.Name == "" || e.Description == "" || e.Run == nil {
			t.Fatalf("experiment %d is not self-describing: %+v", i, e)
		}
		if e.Name != names[i] {
			t.Fatalf("All()[%d].Name = %q but Names()[%d] = %q", i, e.Name, i, names[i])
		}
		if seen[e.Name] {
			t.Fatalf("duplicate name %q", e.Name)
		}
		seen[e.Name] = true
		got, ok := Lookup(e.Name)
		if !ok || got.Name != e.Name {
			t.Fatalf("Lookup(%q) = %+v, %v", e.Name, got, ok)
		}
	}
	if _, ok := Lookup("definitely-not-registered"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}

// TestRegistryRoundTrip runs every registered experiment at Coarse and
// checks the uniform Result contract: non-empty tables with consistent
// row widths, JSON that parses back into a Result, and markdown with a
// section heading.
func TestRegistryRoundTrip(t *testing.T) {
	cfg := At(Coarse)
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			if e.Name == "faults" {
				// The survival sweep solves the 1000-blade fleet under
				// degraded-mode throttle re-runs — minutes even at Coarse.
				// Its Result contract is covered by TestFaultsResultShape
				// (same checks, synthetic survival points) and the sweep
				// itself by TestFailureSweepDeterministic on a small fleet;
				// CI's faults smoke runs the real thing end to end.
				t.Skip("1000-blade survival sweep; see TestFaultsResultShape")
			}
			r, err := e.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.Name != e.Name {
				t.Fatalf("result name %q for experiment %q", r.Name, e.Name)
			}
			if r.Title == "" || r.Resolution != "coarse" {
				t.Fatalf("bad envelope: %+v", r)
			}
			if len(r.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range r.Tables {
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("table %q is empty", tb.Name)
				}
				for i, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %q row %d has %d cells for %d columns", tb.Name, i, len(row), len(tb.Columns))
					}
					// Numbers stay numbers: a column declared with a float
					// precision must never hold strings, so JSON consumers
					// can parse it numerically without special cases.
					for j, cell := range row {
						if tb.Columns[j].Prec >= 0 {
							switch cell.(type) {
							case float64, int:
							default:
								t.Fatalf("table %q row %d col %q: non-numeric cell %T in numeric column", tb.Name, i, tb.Columns[j].Name, cell)
							}
						}
					}
				}
			}
			// JSON round trip.
			data, err := r.JSON()
			if err != nil {
				t.Fatal(err)
			}
			var back Result
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("JSON does not round-trip: %v", err)
			}
			if back.Name != r.Name || len(back.Tables) != len(r.Tables) {
				t.Fatalf("round-tripped result lost structure: %+v", back)
			}
			// Markdown shape.
			md := r.Markdown()
			if !strings.HasPrefix(md, "## ") || !strings.Contains(md, "|") {
				t.Fatalf("markdown missing heading or table:\n%s", md)
			}
		})
	}
}

// TestExperimentCancellation: a pre-cancelled context must abort every
// solving experiment promptly with context.Canceled — the cancellation
// threads from RunConfig through the sweep pool into the coupled solves.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"fig2", "fig3", "tablei", "fig5", "fig6", "tableii", "design", "cooling", "scaling", "datacenter", "diurnal", "faults"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q missing", name)
		}
		start := time.Now()
		_, err := e.Run(ctx, At(Coarse))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("%s: cancelled run took %v", name, el)
		}
	}
}

// TestRegistryNilContext: every registered experiment must honor the
// repo-wide "nil ctx means not cancellable" convention — quick entries
// run to completion, none panic. Only the two cheap pure-model entries
// are executed; the rest share the nil-tolerant sweep/cosim layers the
// round-trip test already exercises.
func TestRegistryNilContext(t *testing.T) {
	for _, name := range []string{"fig3", "tablei"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q missing", name)
		}
		r, err := e.Run(nil, At(Coarse))
		if err != nil || r == nil {
			t.Fatalf("%s with nil ctx: %v, %v", name, r, err)
		}
	}
}

func TestParseResolution(t *testing.T) {
	for s, want := range map[string]Resolution{
		"coarse": Coarse,
		"medium": Medium,
		"full":   Full,
	} {
		got, err := ParseResolution(s)
		if err != nil || got != want {
			t.Fatalf("ParseResolution(%q) = %v, %v", s, got, err)
		}
		// Round trip through String.
		back, err := ParseResolution(got.String())
		if err != nil || back != got {
			t.Fatalf("round trip %v failed", got)
		}
	}
	if _, err := ParseResolution("nope"); err == nil {
		t.Fatal("expected error for unknown resolution")
	}
}

func TestResolutionGrid(t *testing.T) {
	for _, res := range []Resolution{Coarse, Medium, Full} {
		g := res.Grid()
		if g.NX <= 0 || g.NY <= 0 || g.DX <= 0 || g.DY <= 0 {
			t.Fatalf("Grid(%v) = %+v", res, g)
		}
	}
}
