package experiments

import (
	"context"
	"fmt"

	"repro/internal/datacenter"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
)

// The failure-scenarios extension answers the question operators ask of a
// two-phase-cooled fleet: what happens when the cooling degrades? Each
// scenario injects one cooling fault (or a composition) into the
// 1000-blade fleet of the scale ladder's top rung and runs the nested
// datacenter fixed point in degraded mode: the outer loop adapts its
// damping when the faulted loop gain makes it stall, blades that cannot
// hold TCASE at full speed are throttled one DVFS step at a time, and
// blades with no feasible operating point at all are named in the report.
// The survival table summarizes each scenario's outcome: feasibility,
// adaptation effort, throttle depth, and the thermal/efficiency cost.

// failureFleet is the fleet every scenario solves: the scale ladder's
// 1000-blade top rung.
const (
	failureRacks   = 25
	failurePerRack = 40
	failureLoops   = 4
)

// failureSeverities is the per-resolution severity grid: coarse keeps the
// sweep CI-sized but severe enough (0.8) that the degraded-mode machinery
// — throttling, and infeasibility when even the lowest DVFS level cannot
// hold TCASE — actually engages; full resolves the survival boundary.
func failureSeverities(res Resolution) []float64 {
	switch res {
	case Coarse:
		return []float64{0.8}
	case Medium:
		return []float64{0.4, 0.8}
	default:
		return []float64{0.2, 0.4, 0.6, 0.8}
	}
}

// failureScenarios builds the scenario sweep: the healthy baseline, every
// fault kind at every grid severity, the pump+fouling composition the
// degraded-mode path is specified against, and the caller's custom
// scenario (the -fault flag) when present. Blade-level cooling loss
// targets one named blade — a single failed quick-disconnect in a healthy
// fleet.
func failureScenarios(res Resolution, custom *faults.Scenario) []faults.Scenario {
	out := []faults.Scenario{{Name: "healthy"}}
	sevs := failureSeverities(res)
	for _, k := range faults.Kinds() {
		for _, sev := range sevs {
			f := faults.Fault{Kind: k, Severity: sev}
			if k == faults.BladeCoolingLoss {
				f.Blade = "r0b0"
			}
			out = append(out, faults.Scenario{
				Name:   fmt.Sprintf("%s:%.1f", k, sev),
				Faults: []faults.Fault{f},
			})
		}
	}
	// The composition runs at 0.6, not the grid top: severe enough that
	// TCASE is violated fleet-wide, mild enough that one DVFS step rescues
	// every blade — the flagship degraded-but-survivable row. The
	// unsurvivable regime (throttling exhausted, blades named infeasible)
	// is covered by the per-kind rows at severity 0.8.
	const comp = 0.6
	out = append(out, faults.Scenario{
		Name: fmt.Sprintf("pump:%.1f+fouling:%.1f", comp, comp),
		Faults: []faults.Fault{
			{Kind: faults.PumpDegradation, Severity: comp},
			{Kind: faults.CondenserFouling, Severity: comp},
		},
	})
	if custom != nil && !custom.Empty() {
		out = append(out, *custom)
	}
	return out
}

// FailurePoint is one row of the survival table: the fleet outcome under
// one fault scenario.
type FailurePoint struct {
	Scenario string
	// Feasible: the fixed point converged and every blade found a feasible
	// operating point (throttled or not).
	Feasible  bool
	Converged bool
	// OuterIterations is the final throttle round's fixed-point length;
	// DampingHalvings its stall-adaptation descents; FinalDamping the
	// damping it ended on.
	OuterIterations int
	DampingHalvings int
	FinalDamping    float64
	// Escalations counts solver-ladder descents across every blade solve.
	Escalations int
	// ThrottledBlades / MaxThrottleSteps: degraded-mode DVFS actuation;
	// InfeasibleBlades counts blades with no feasible point at any level.
	ThrottledBlades  int
	MaxThrottleSteps int
	InfeasibleBlades int
	ITPowerW         float64
	MaxDieC          float64
	MaxSupplyC       float64
	PUE              float64
}

// ExtFailureScenarios sweeps fault type × severity across the 1000-blade
// fleet. Scenarios fan out through the sweep pool — each worker solves
// whole fleets, so per-fleet parallelism stays inside the blade sessions
// (Threads) while Workers spans scenarios — and results come back
// input-ordered, so the survival table is byte-identical pooled vs
// serial. The blade system is shared read-only across workers, exactly as
// the datacenter solver already shares it across class sessions.
func ExtFailureScenarios(ctx context.Context, cfg RunConfig) ([]FailurePoint, error) {
	return failureSweep(ctx, cfg, failureRacks, failurePerRack, failureLoops)
}

// failureSweep is ExtFailureScenarios on an arbitrary fleet — the tests
// run it on a small one.
func failureSweep(ctx context.Context, cfg RunConfig, racks, perRack, loops int) ([]FailurePoint, error) {
	sys, err := NewSystem(thermosyphon.DefaultDesign(), cfg.Resolution)
	if err != nil {
		return nil, err
	}
	scenarios := failureScenarios(cfg.Resolution, cfg.Scenario)
	rcfg := cfg.SplitBudget(len(scenarios))
	states := datacenterStates()

	return sweep.RunState(ctx, scenarios,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, sc faults.Scenario) (FailurePoint, error) {
			topo, err := datacenter.Uniform(racks, perRack, loops, datacenterLoop(), states)
			if err != nil {
				return FailurePoint{}, err
			}
			s, err := datacenter.New(sys, topo, datacenter.Options{
				Solver:   rcfg.Solver,
				Workers:  1, // the scenario sweep owns the width
				Threads:  rcfg.Threads,
				Leakage:  power.DefaultLeakage(),
				Scenario: &sc,
			})
			if err != nil {
				return FailurePoint{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			rep, err := s.Solve(ctx)
			s.Close()
			if err != nil {
				return FailurePoint{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			p := FailurePoint{
				Scenario:         sc.Name,
				Feasible:         rep.Feasible(),
				Converged:        rep.Converged,
				OuterIterations:  rep.OuterIterations,
				DampingHalvings:  rep.DampingHalvings,
				FinalDamping:     rep.FinalDamping,
				Escalations:      rep.Escalations,
				ThrottledBlades:  rep.ThrottledBlades,
				MaxThrottleSteps: rep.MaxThrottleSteps,
				InfeasibleBlades: len(rep.Infeasible),
				ITPowerW:         rep.ITPowerW,
				MaxDieC:          rep.MaxDieC,
				PUE:              rep.Plant.PUE,
			}
			for _, l := range rep.Loops {
				if l.State.SupplyC > p.MaxSupplyC {
					p.MaxSupplyC = l.State.SupplyC
				}
			}
			return p, nil
		},
		rcfg.sweepOpts()...)
}
