package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// Fig6Scenario is one of the three 4-core mappings of Fig. 6.
type Fig6Scenario struct {
	Name   string
	Active []int
}

// Fig6Scenarios returns the paper's three mappings of four active cores:
// scenario 1 staggers one active per row, scenario 2 balances into the
// corners (the conventional policy), scenario 3 clusters a 2×2 block.
func Fig6Scenarios() []Fig6Scenario {
	mk := func(name string, slots ...[2]int) Fig6Scenario {
		s := Fig6Scenario{Name: name}
		for _, rc := range slots {
			s.Active = append(s.Active, floorplan.CoreAtGridPos(rc[0], rc[1]))
		}
		sort.Ints(s.Active)
		return s
	}
	return []Fig6Scenario{
		mk("scenario1-staggered", [2]int{0, 0}, [2]int{1, 1}, [2]int{2, 0}, [2]int{3, 1}),
		mk("scenario2-corners", [2]int{0, 0}, [2]int{0, 1}, [2]int{3, 0}, [2]int{3, 1}),
		mk("scenario3-clustered", [2]int{0, 0}, [2]int{0, 1}, [2]int{1, 0}, [2]int{1, 1}),
	}
}

// Fig6Result is one (scenario, idle state) cell of the Fig. 6d table.
type Fig6Result struct {
	Scenario string
	Idle     power.CState
	Die      metrics.MapStats
}

// Fig6MappingScenarios reproduces Fig. 6: the three mappings under POLL and
// C1 idle states, reporting die hot spot, average, and maximum gradient.
// The paper's headline ordering: with POLL the corner balancing (scenario
// 2) wins; with C1 the staggered mapping (scenario 1) wins; the clustered
// mapping (scenario 3) is always worst. All six cells share one design, so
// each sweep worker builds a single solve session and reuses its system
// and workspace across every cell it claims.
func Fig6MappingScenarios(ctx context.Context, cfg RunConfig) ([]Fig6Result, error) {
	// A mid-roster benchmark at (4,8,fmax), per the paper's setup of four
	// loaded cores.
	bench, err := workload.ByName("facesim")
	if err != nil {
		return nil, err
	}
	wcfg := workload.Config{Cores: 4, Threads: 8, Freq: power.FMax}
	cells := sweep.Cross([]power.CState{power.POLL, power.C1}, Fig6Scenarios())
	cfg = cfg.SplitBudget(len(cells))
	return sweep.RunState(ctx, cells,
		func() (*cosim.Session, error) { return cfg.NewSweepSession(thermosyphon.DefaultDesign()) },
		func(ses *cosim.Session, p sweep.Pair[power.CState, Fig6Scenario]) (Fig6Result, error) {
			idle, sc := p.A, p.B
			m := core.Mapping{ActiveCores: sc.Active, IdleState: idle, Config: wcfg}
			die, _, _, err := SolveMappingSession(ctx, ses, bench, m, thermosyphon.DefaultOperating())
			if err != nil {
				return Fig6Result{}, fmt.Errorf("%s/%v: %w", sc.Name, idle, err)
			}
			return Fig6Result{Scenario: sc.Name, Idle: idle, Die: die}, nil
		},
		cfg.sweepOpts()...)
}
