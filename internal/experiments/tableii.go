package experiments

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// Approach identifies one policy stack of Table II.
type Approach int

// The three compared stacks.
const (
	// Proposed is this paper: workload-aware design + Algorithm 1.
	Proposed Approach = iota
	// SoACoskun is [8]+[27]+[9]: Seuret design, Pack&Cap selection,
	// Coskun corner balancing.
	SoACoskun
	// SoASabry is [8]+[27]+[7]: Seuret design, Pack&Cap selection,
	// Sabry inlet-first mapping.
	SoASabry
)

// String names the approach the way Table II does.
func (a Approach) String() string {
	switch a {
	case Proposed:
		return "Proposed"
	case SoACoskun:
		return "[8]+[27]+[9]"
	case SoASabry:
		return "[8]+[27]+[7]"
	default:
		return fmt.Sprintf("approach(%d)", int(a))
	}
}

// Approaches lists the Table II rows in paper order.
func Approaches() []Approach { return []Approach{Proposed, SoACoskun, SoASabry} }

// design returns the thermosyphon design an approach runs on.
func (a Approach) design() thermosyphon.Design {
	if a == Proposed {
		return thermosyphon.DefaultDesign()
	}
	return baselines.SeuretDesign()
}

// plan runs the approach's configuration selection and mapping.
func (a Approach) plan(b workload.Benchmark, q workload.QoS) (core.Mapping, error) {
	switch a {
	case Proposed:
		return core.Plan(b, q)
	case SoACoskun:
		cfg, err := baselines.PackAndCapConfig(b, q)
		if err != nil {
			return core.Mapping{}, err
		}
		return baselines.CoskunMapping(b, cfg)
	case SoASabry:
		cfg, err := baselines.PackAndCapConfig(b, q)
		if err != nil {
			return core.Mapping{}, err
		}
		return baselines.SabryMapping(b, cfg, a.design().Orientation)
	default:
		return core.Mapping{}, fmt.Errorf("experiments: unknown approach %d", int(a))
	}
}

// TableIIRow is one (approach, QoS) row: benchmark-averaged die and package
// hot spots and maximum gradients, as in the paper's Table II.
type TableIIRow struct {
	Approach Approach
	QoS      workload.QoS
	// Benchmark-averaged statistics.
	DieMaxC, DieGradCPerMM float64
	PkgMaxC, PkgGradCPerMM float64
	// AvgPowerW is the benchmark-averaged package power, which drives the
	// cooling-power comparison.
	AvgPowerW float64
	// Benchmarks is the number of workloads averaged.
	Benchmarks int
}

// TableIIPolicyComparison reproduces Table II over the given benchmarks
// (nil = the full PARSEC roster) at the three QoS levels. Every (approach,
// QoS, benchmark) cell is an independent plan + co-simulation, so the
// full 117-solve grid fans out across the sweep pool; each worker lazily
// builds and reuses one solve session per approach, amortizing the system
// and the solver workspace over all the cells it claims. The cells come
// back in input order, so the per-row averages accumulate in exactly the
// serial order and the rows are bit-identical to the sequential sweep
// (the sessions do not carry warm starts across cells for that reason).
func TableIIPolicyComparison(ctx context.Context, cfg RunConfig, benches []workload.Benchmark) ([]TableIIRow, error) {
	if benches == nil {
		benches = workload.All()
	}
	qosLevels := []workload.QoS{workload.QoS1x, workload.QoS2x, workload.QoS3x}
	type cellKey struct {
		a Approach
		q workload.QoS
		b workload.Benchmark
	}
	type cellVal struct {
		die, pkg metrics.MapStats
		powerW   float64
	}
	var cells []cellKey
	for _, a := range Approaches() {
		for _, q := range qosLevels {
			for _, b := range benches {
				cells = append(cells, cellKey{a: a, q: q, b: b})
			}
		}
	}
	cfg = cfg.SplitBudget(len(cells))
	vals, err := sweep.RunState(ctx, cells,
		func() (sessionCache[Approach], error) { return sessionCache[Approach]{}, nil },
		func(sessions sessionCache[Approach], c cellKey) (cellVal, error) {
			ses := sessions[c.a]
			if ses == nil {
				var err error
				ses, err = cfg.NewSweepSession(c.a.design())
				if err != nil {
					return cellVal{}, err
				}
				sessions[c.a] = ses
			}
			m, err := c.a.plan(c.b, c.q)
			if err != nil {
				return cellVal{}, fmt.Errorf("%v @%s %s: %w", c.a, c.q, c.b.Name, err)
			}
			die, pkg, r, err := SolveMappingSession(ctx, ses, c.b, m, thermosyphon.DefaultOperating())
			if err != nil {
				return cellVal{}, fmt.Errorf("%v @%s %s: %w", c.a, c.q, c.b.Name, err)
			}
			return cellVal{die: die, pkg: pkg, powerW: r.TotalPowerW}, nil
		},
		cfg.sweepOpts()...)
	if err != nil {
		return nil, err
	}

	var rows []TableIIRow
	i := 0
	for _, a := range Approaches() {
		for _, q := range qosLevels {
			row := TableIIRow{Approach: a, QoS: q}
			for range benches {
				v := vals[i]
				i++
				row.DieMaxC += v.die.MaxC
				row.DieGradCPerMM += v.die.MaxGradCPerMM
				row.PkgMaxC += v.pkg.MaxC
				row.PkgGradCPerMM += v.pkg.MaxGradCPerMM
				row.AvgPowerW += v.powerW
				row.Benchmarks++
			}
			n := float64(row.Benchmarks)
			row.DieMaxC /= n
			row.DieGradCPerMM /= n
			row.PkgMaxC /= n
			row.PkgGradCPerMM /= n
			row.AvgPowerW /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig7Result holds the sample die maps of Fig. 7: proposed vs state of the
// art under 2x QoS degradation. The paper reports 71.5 °C vs 78.2 °C.
type Fig7Result struct {
	ProposedMap, SoAMap []float64
	ProposedMax, SoAMax float64
	ProposedBench       string
	Grid                struct{ NX, NY int }
}

// Fig7ThermalMaps regenerates the Fig. 7 pair of die thermal maps using a
// representative benchmark at 2x QoS.
func Fig7ThermalMaps(ctx context.Context, cfg RunConfig) (*Fig7Result, error) {
	bench, err := workload.ByName("freqmine")
	if err != nil {
		return nil, err
	}
	const q = workload.QoS2x
	out := &Fig7Result{ProposedBench: bench.Name}
	cfg = cfg.SplitBudgetDepthFirst(1)
	for _, a := range []Approach{Proposed, SoACoskun} {
		ses, err := cfg.NewSweepSession(a.design())
		if err != nil {
			return nil, err
		}
		defer ses.Close()
		m, err := a.plan(bench, q)
		if err != nil {
			return nil, err
		}
		die, _, r, err := SolveMappingSession(ctx, ses, bench, m, thermosyphon.DefaultOperating())
		if err != nil {
			return nil, err
		}
		sys := ses.System()
		dieMap := append([]float64(nil), sys.DieTemps(r)...)
		if a == Proposed {
			out.ProposedMap, out.ProposedMax = dieMap, die.MaxC
			out.Grid.NX, out.Grid.NY = sys.Thermal.Grid().NX, sys.Thermal.Grid().NY
		} else {
			out.SoAMap, out.SoAMax = dieMap, die.MaxC
		}
	}
	return out, nil
}
