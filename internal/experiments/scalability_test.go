package experiments

import "testing"

func TestExtScalability(t *testing.T) {
	cells, err := ExtScalability(Coarse)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // two dies × two mappings
		t.Fatalf("got %d cells", len(cells))
	}
	get := func(cores int, mapping string) ScalabilityCell {
		for _, c := range cells {
			if c.Cores == cores && c.Mapping == mapping {
				return c
			}
		}
		t.Fatalf("missing %d/%s", cores, mapping)
		return ScalabilityCell{}
	}
	for _, n := range []int{8, 16} {
		st := get(n, "staggered")
		cl := get(n, "clustered")
		if st.Die.MaxC >= cl.Die.MaxC {
			t.Fatalf("%d cores: staggered %.2f should beat clustered %.2f",
				n, st.Die.MaxC, cl.Die.MaxC)
		}
		if st.Die.MaxC < 35 || st.Die.MaxC > 100 {
			t.Fatalf("%d cores: die max %.1f implausible", n, st.Die.MaxC)
		}
	}
	// The 16-core die carries twice the core count at the same per-core
	// load: it must run at least as hot as the 8-core die under the same
	// mapping discipline.
	if get(16, "staggered").Die.MaxC < get(8, "staggered").Die.MaxC-2 {
		t.Fatal("scaled die implausibly cooler than the small die")
	}
}
