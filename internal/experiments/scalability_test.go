package experiments

import (
	"testing"

	"repro/internal/thermal"
)

func TestExtResolutionScaling(t *testing.T) {
	sizes := []int{16, 24}
	cells, err := ExtResolutionScaling(nil, At(Coarse), sizes, []thermal.Solver{thermal.SolverCG, thermal.SolverMGPCG})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // two sizes × two solvers
		t.Fatalf("got %d cells", len(cells))
	}
	get := func(n int, solver string) ResolutionCell {
		for _, c := range cells {
			if c.NX == n && c.Solver == solver {
				return c
			}
		}
		t.Fatalf("missing %d/%s", n, solver)
		return ResolutionCell{}
	}
	for _, n := range sizes {
		cg, mg := get(n, "cg"), get(n, "mgpcg")
		// Same physics whatever the solver: the coupled fixed point must
		// land on the same die temperature to solver tolerance.
		if d := cg.DieMaxC - mg.DieMaxC; d > 0.01 || d < -0.01 {
			t.Fatalf("%d×%d: cg die %.4f vs mgpcg die %.4f", n, n, cg.DieMaxC, mg.DieMaxC)
		}
		if cg.DieMaxC < 35 || cg.DieMaxC > 110 {
			t.Fatalf("%d×%d: die max %.1f implausible", n, n, cg.DieMaxC)
		}
		for _, c := range []ResolutionCell{cg, mg} {
			if c.Unknowns != n*n*5 || c.OuterIters <= 0 || c.LinIters <= 0 || c.Applies <= 0 {
				t.Fatalf("%d×%d/%s: implausible accounting %+v", n, n, c.Solver, c)
			}
		}
	}
	// The O(n) signature: Jacobi-CG's per-solve work grows with grid
	// dimension, MG-PCG's stays near-flat, so the advantage must widen as
	// the grid refines.
	ratio := func(n int) float64 {
		return float64(get(n, "cg").Applies) / float64(get(n, "mgpcg").Applies)
	}
	if ratio(24) <= 1 {
		t.Fatalf("MG-PCG not ahead at 24×24: ratio %.2f", ratio(24))
	}
	if ratio(24) < ratio(16)*0.8 {
		t.Fatalf("solver advantage shrinks with resolution: %.2f at 16 vs %.2f at 24", ratio(16), ratio(24))
	}
}

func TestExtScalability(t *testing.T) {
	cells, err := ExtScalability(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // two dies × two mappings
		t.Fatalf("got %d cells", len(cells))
	}
	get := func(cores int, mapping string) ScalabilityCell {
		for _, c := range cells {
			if c.Cores == cores && c.Mapping == mapping {
				return c
			}
		}
		t.Fatalf("missing %d/%s", cores, mapping)
		return ScalabilityCell{}
	}
	for _, n := range []int{8, 16} {
		st := get(n, "staggered")
		cl := get(n, "clustered")
		if st.Die.MaxC >= cl.Die.MaxC {
			t.Fatalf("%d cores: staggered %.2f should beat clustered %.2f",
				n, st.Die.MaxC, cl.Die.MaxC)
		}
		if st.Die.MaxC < 35 || st.Die.MaxC > 100 {
			t.Fatalf("%d cores: die max %.1f implausible", n, st.Die.MaxC)
		}
	}
	// The 16-core die carries twice the core count at the same per-core
	// load: it must run at least as hot as the 8-core die under the same
	// mapping discipline.
	if get(16, "staggered").Die.MaxC < get(8, "staggered").Die.MaxC-2 {
		t.Fatal("scaled die implausibly cooler than the small die")
	}
}
