package experiments

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func TestResolutionNames(t *testing.T) {
	for _, r := range []Resolution{Coarse, Medium, Full} {
		if r.String() == "" {
			t.Fatal("unnamed resolution")
		}
		nx, ny := r.dims()
		if nx < 10 || ny < 10 {
			t.Fatalf("%v dims %dx%d too small", r, nx, ny)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	// The Fig. 2 motivational claim: die hot spots and gradients are
	// scaled-up versions of the package's (die 66.1 vs pkg 46.4 °C;
	// ∇ 6.6 vs 0.5 °C/mm in the paper).
	r, err := Fig2DieVsPackage(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	if r.Die.MaxC <= r.Pkg.MaxC+10 {
		t.Fatalf("die max %.1f should clearly exceed package max %.1f", r.Die.MaxC, r.Pkg.MaxC)
	}
	if r.Die.MaxGradCPerMM <= 2*r.Pkg.MaxGradCPerMM {
		t.Fatalf("die gradient %.2f should be a multiple of package gradient %.2f",
			r.Die.MaxGradCPerMM, r.Pkg.MaxGradCPerMM)
	}
	// Calibrated bands around the paper's values.
	if r.Die.MaxC < 55 || r.Die.MaxC > 85 {
		t.Fatalf("die max %.1f outside calibrated band (paper 66.1)", r.Die.MaxC)
	}
	if r.Pkg.MaxC < 40 || r.Pkg.MaxC > 60 {
		t.Fatalf("pkg max %.1f outside calibrated band (paper 46.4)", r.Pkg.MaxC)
	}
	if len(r.DieMap) != r.Grid.Cells() || len(r.PkgMap) != r.Grid.Cells() {
		t.Fatal("maps missing")
	}
	if r.TotalPowerW < 60 || r.TotalPowerW > 85 {
		t.Fatalf("worst-case power %.1f outside band", r.TotalPowerW)
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3NormalizedExecTime()
	if len(rows) != 13 {
		t.Fatalf("got %d rows, want 13", len(rows))
	}
	cfgs := workload.Fig3Configs()
	for _, row := range rows {
		if len(row.NormToQoS) != len(cfgs) {
			t.Fatalf("%s: %d entries", row.Bench, len(row.NormToQoS))
		}
		// The native configuration (8,16,fmax) normalized to the 2x QoS
		// limit is exactly 0.5.
		last := row.NormToQoS[len(row.NormToQoS)-1]
		if math.Abs(last-0.5) > 1e-9 {
			t.Fatalf("%s native point = %v, want 0.5", row.Bench, last)
		}
		// (2,4,fmax) is the slowest plotted configuration.
		for i := 1; i < len(row.NormToQoS); i++ {
			if row.NormToQoS[i] > row.NormToQoS[0]+1e-9 {
				t.Fatalf("%s: config %d slower than (2,4)", row.Bench, i)
			}
		}
	}
	// Fig. 3 shows several benchmarks above the QoS limit at (2,4,fmax).
	var above int
	for _, row := range rows {
		if row.NormToQoS[0] > 1 {
			above++
		}
	}
	if above < 6 {
		t.Fatalf("only %d benchmarks above the 2x QoS at (2,4,fmax)", above)
	}
}

func TestTableIExact(t *testing.T) {
	rows := TableICStatePower()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	want := map[power.CState][3]float64{
		power.POLL: {27, 32, 40},
		power.C1:   {14, 15, 17},
		power.C1E:  {9, 9, 9},
	}
	for _, r := range rows {
		if r.PowerW != want[r.State] {
			t.Fatalf("%v = %v, want %v", r.State, r.PowerW, want[r.State])
		}
	}
}

func TestFig5OrientationOrdering(t *testing.T) {
	rows, err := Fig5Orientation(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d orientations", len(rows))
	}
	byO := map[thermosyphon.Orientation]OrientationResult{}
	for _, r := range rows {
		byO[r.Orientation] = r
	}
	w := byO[thermosyphon.InletWest]
	// §VI-A: Design 1 (east-west channels, inlet west) beats Design 2
	// (north-south) on both package and die hot spots.
	for _, o := range []thermosyphon.Orientation{thermosyphon.InletNorth, thermosyphon.InletSouth, thermosyphon.InletEast} {
		if w.Die.MaxC >= byO[o].Die.MaxC {
			t.Fatalf("inlet-west die %.2f should beat %v die %.2f", w.Die.MaxC, o, byO[o].Die.MaxC)
		}
		if w.Pkg.MaxC >= byO[o].Pkg.MaxC {
			t.Fatalf("inlet-west pkg %.2f should beat %v pkg %.2f", w.Pkg.MaxC, o, byO[o].Pkg.MaxC)
		}
	}
	if len(w.PkgMap) == 0 {
		t.Fatal("package map missing")
	}
}

func TestFig6ScenarioDefinitions(t *testing.T) {
	scs := Fig6Scenarios()
	if len(scs) != 3 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	for _, s := range scs {
		if len(s.Active) != 4 {
			t.Fatalf("%s has %d actives", s.Name, len(s.Active))
		}
	}
}

func TestFig6Orderings(t *testing.T) {
	rows, err := Fig6MappingScenarios(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(name string, idle power.CState) float64 {
		for _, r := range rows {
			if r.Scenario == name && r.Idle == idle {
				return r.Die.MaxC
			}
		}
		t.Fatalf("missing %s/%v", name, idle)
		return 0
	}
	// Paper Fig. 6d orderings. With POLL idles the conventional corner
	// balancing (scenario 2) wins; with C1 the staggered row-exclusive
	// mapping (scenario 1) wins; the clustered mapping is always worst.
	s1p, s2p, s3p := get("scenario1-staggered", power.POLL), get("scenario2-corners", power.POLL), get("scenario3-clustered", power.POLL)
	s1c, s2c, s3c := get("scenario1-staggered", power.C1), get("scenario2-corners", power.C1), get("scenario3-clustered", power.C1)
	if !(s2p < s1p && s1p < s3p) {
		t.Fatalf("POLL ordering violated: s1=%.2f s2=%.2f s3=%.2f (paper: s2<s1<s3)", s1p, s2p, s3p)
	}
	if !(s1c < s2c && s2c < s3c) {
		t.Fatalf("C1 ordering violated: s1=%.2f s2=%.2f s3=%.2f (paper: s1<s2<s3)", s1c, s2c, s3c)
	}
	// Deeper idle states run cooler across the board.
	if s1c >= s1p || s2c >= s2p || s3c >= s3p {
		t.Fatal("C1 must be cooler than POLL for every scenario")
	}
}

func TestApproachNames(t *testing.T) {
	for _, a := range Approaches() {
		if a.String() == "" {
			t.Fatal("unnamed approach")
		}
	}
	if Proposed.String() != "Proposed" {
		t.Fatalf("Proposed = %q", Proposed.String())
	}
}

func TestTableIIOrderings(t *testing.T) {
	// Run a three-benchmark subset at coarse resolution to keep the test
	// fast while still averaging across distinct workload characters.
	var subset []workload.Benchmark
	for _, name := range []string{"canneal", "freqmine", "raytrace"} {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, b)
	}
	rows, err := TableIIPolicyComparison(nil, At(Coarse), subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(a Approach, q workload.QoS) TableIIRow {
		for _, r := range rows {
			if r.Approach == a && r.QoS == q {
				return r
			}
		}
		t.Fatalf("missing %v/%v", a, q)
		return TableIIRow{}
	}
	for _, q := range []workload.QoS{workload.QoS1x, workload.QoS2x, workload.QoS3x} {
		p := get(Proposed, q)
		c := get(SoACoskun, q)
		s := get(SoASabry, q)
		// The paper's headline: proposed beats both baselines on die hot
		// spot and gradient at every QoS level; [7] is the worst mapping.
		if p.DieMaxC >= c.DieMaxC || p.DieMaxC >= s.DieMaxC {
			t.Fatalf("@%s: proposed die %.2f not best (%.2f / %.2f)", q, p.DieMaxC, c.DieMaxC, s.DieMaxC)
		}
		// At 1x all stacks run the full machine, so gradients differ only
		// through the design and can tie; the mapping-driven gradient
		// advantage is asserted where the policy has freedom (2x, 3x).
		if q != workload.QoS1x && (p.DieGradCPerMM >= c.DieGradCPerMM || p.DieGradCPerMM >= s.DieGradCPerMM) {
			t.Fatalf("@%s: proposed gradient %.2f not best (%.2f / %.2f)", q, p.DieGradCPerMM, c.DieGradCPerMM, s.DieGradCPerMM)
		}
		if q != workload.QoS1x && s.DieMaxC <= c.DieMaxC {
			t.Fatalf("@%s: Sabry %.2f should be worst vs Coskun %.2f", q, s.DieMaxC, c.DieMaxC)
		}
	}
	// Looser QoS lets the proposed approach run cooler.
	if !(get(Proposed, workload.QoS3x).DieMaxC < get(Proposed, workload.QoS2x).DieMaxC &&
		get(Proposed, workload.QoS2x).DieMaxC < get(Proposed, workload.QoS1x).DieMaxC) {
		t.Fatal("proposed die max should fall as QoS relaxes")
	}
}

func TestFig7Gap(t *testing.T) {
	r, err := Fig7ThermalMaps(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 71.5 vs 78.2 °C — the proposed map must be clearly cooler.
	gap := r.SoAMax - r.ProposedMax
	if gap < 3 || gap > 15 {
		t.Fatalf("Fig7 gap %.1f °C outside band (paper 6.7)", gap)
	}
	if len(r.ProposedMap) == 0 || len(r.SoAMap) == 0 {
		t.Fatal("maps missing")
	}
}

func TestCoolingPowerStudy(t *testing.T) {
	r, err := CoolingPowerStudy(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	// §VIII-B shape: the baseline needs colder water (paper 20 vs 30 °C)
	// and the chiller reduction approaches the paper's ≥45 %.
	if r.BaselineWaterC >= r.ProposedWaterC-3 {
		t.Fatalf("baseline water %.1f should be clearly colder than %.1f", r.BaselineWaterC, r.ProposedWaterC)
	}
	if r.ReductionChiller < 0.30 {
		t.Fatalf("chiller reduction %.2f below reproduction floor (paper ≥0.45)", r.ReductionChiller)
	}
	if r.ReductionEq1 <= 0 {
		t.Fatalf("Eq1 reduction %.2f should be positive", r.ReductionEq1)
	}
	if r.ProposedBudget.ChillerPowerW >= r.BaselineBudget.ChillerPowerW {
		t.Fatal("proposed chiller power must be lower")
	}
}

func TestDesignSpaceStudy(t *testing.T) {
	r, err := DesignSpaceStudy(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 20 {
		t.Fatalf("got %d design points", len(r.Points))
	}
	if !r.Best.Feasible {
		t.Fatal("best point must be feasible")
	}
	// All points should hold TCASE_MAX comfortably at the design point.
	for _, p := range r.Points {
		if p.TCaseC <= 30 || p.TCaseC >= 85 {
			t.Fatalf("%s@%.2f tcase %.1f implausible", p.Fluid, p.FillingRatio, p.TCaseC)
		}
	}
	// Dryout shrinks with filling ratio for each fluid (§VI-B mechanism).
	byFluid := map[string][]DesignPoint{}
	for _, p := range r.Points {
		byFluid[p.Fluid] = append(byFluid[p.Fluid], p)
	}
	for fl, pts := range byFluid {
		for i := 1; i < len(pts); i++ {
			if pts[i].FillingRatio > pts[i-1].FillingRatio && pts[i].DryoutCells > pts[i-1].DryoutCells {
				t.Fatalf("%s: dryout grew with fill (%d → %d)", fl, pts[i-1].DryoutCells, pts[i].DryoutCells)
			}
		}
	}
	if r.WaterSelection.FlowKgH <= 0 || r.WaterSelection.TCaseC >= 85 {
		t.Fatalf("bad water selection %+v", r.WaterSelection)
	}
}

func TestFullLoadMapping(t *testing.T) {
	cfg := workload.Config{Cores: 8, Threads: 16, Freq: power.FMax}
	m := FullLoadMapping(cfg, power.POLL)
	if len(m.ActiveCores) != 8 {
		t.Fatal("full load must use 8 cores")
	}
}
