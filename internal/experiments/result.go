package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/render"
)

// Result is the uniform output of every registered experiment: a headline
// title, optional commentary notes (paper comparisons, selections), one
// or more named tables of typed rows, and optional map artifacts (2-D
// thermal fields). Consumers render it generically — text for the CLI,
// markdown for the reproduction report, JSON for machine use — so adding
// an experiment to the registry requires no renderer changes anywhere.
type Result struct {
	// Name is the registry name the result came from.
	Name string `json:"name"`
	// Title is the headline, typically including the paper's published
	// values for comparison.
	Title string `json:"title"`
	// Resolution and Solver echo the RunConfig the result was produced
	// under.
	Resolution string `json:"resolution"`
	Solver     string `json:"solver"`
	// Notes are free-form commentary lines printed after the title.
	Notes []string `json:"notes,omitempty"`
	// Tables are the named data tables, in presentation order.
	Tables []Table `json:"tables"`
	// Maps are the rendered thermal-map artifacts, if any.
	Maps []MapArtifact `json:"maps,omitempty"`
}

// Table is one named table of a Result. Cells are typed — string, bool,
// int or float64 — so the JSON emitter keeps numbers as numbers while the
// text and markdown emitters format floats to the column's precision.
type Table struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// Column names one table column and fixes how float cells print.
type Column struct {
	Name string `json:"name"`
	// Prec is the decimal precision float cells render with (-1 = %g).
	Prec int `json:"prec"`
}

// Col is the column-literal shorthand the experiment wrappers use.
func Col(name string, prec int) Column { return Column{Name: name, Prec: prec} }

// AddRow appends one row; the cell count must match the column count.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: table %q row has %d cells for %d columns", t.Name, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// MapArtifact is one 2-D thermal field an experiment renders (a die or
// package map) together with its grid geometry, so any consumer can turn
// it into ASCII art, CSV or SVG without knowing which experiment made it.
type MapArtifact struct {
	Name     string    `json:"name"`
	NX       int       `json:"nx"`
	NY       int       `json:"ny"`
	WidthMM  float64   `json:"width_mm"`
	HeightMM float64   `json:"height_mm"`
	CellC    []float64 `json:"cell_c"`
}

// Grid reconstructs the floorplan grid the map was sampled on.
func (m MapArtifact) Grid() floorplan.Grid {
	return floorplan.NewGrid(m.NX, m.NY, m.WidthMM, m.HeightMM)
}

// ArtifactSink receives map artifacts as an experiment emits them.
// cmd/paperbench implements it as a directory of SVG/CSV files; a nil
// sink in RunConfig discards nothing — the maps still ride on the Result.
type ArtifactSink interface {
	SaveMap(m MapArtifact) error
}

// newResult stamps the envelope fields every wrapper shares.
func newResult(name, title string, cfg RunConfig) *Result {
	return &Result{
		Name:       name,
		Title:      title,
		Resolution: cfg.Resolution.String(),
		Solver:     cfg.Solver.String(),
	}
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// addMap attaches a map artifact to the result and forwards it to the
// config's artifact sink, if one is set.
func (r *Result) addMap(cfg RunConfig, name string, grid floorplan.Grid, cellC []float64) error {
	m := MapArtifact{
		Name: name,
		NX:   grid.NX, NY: grid.NY,
		WidthMM:  grid.DX * float64(grid.NX),
		HeightMM: grid.DY * float64(grid.NY),
		CellC:    append([]float64(nil), cellC...),
	}
	r.Maps = append(r.Maps, m)
	if cfg.Artifacts != nil {
		return cfg.Artifacts.SaveMap(m)
	}
	return nil
}

// formatCell renders one typed cell for the text and markdown emitters.
func formatCell(v any, prec int) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case float64:
		if prec < 0 {
			return strconv.FormatFloat(x, 'g', -1, 64)
		}
		return strconv.FormatFloat(x, 'f', prec, 64)
	default:
		return fmt.Sprint(x)
	}
}

// strings returns the formatted header and rows of a table.
func (t *Table) strings() (header []string, rows [][]string) {
	header = make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
	}
	rows = make([][]string, len(t.Rows))
	for i, row := range t.Rows {
		out := make([]string, len(row))
		for j, cell := range row {
			prec := -1
			if j < len(t.Columns) {
				prec = t.Columns[j].Prec
			}
			out[j] = formatCell(cell, prec)
		}
		rows[i] = out
	}
	return header, rows
}

// JSON emits the result as indented JSON. The encoding round-trips: a
// Result unmarshalled from it re-marshals to the same bytes (cells come
// back as float64/string/bool, which marshal identically).
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteText renders the result for a terminal: title, notes, and each
// table through the aligned text renderer. Maps are NOT rendered here —
// callers decide between ASCII art, files or nothing.
func (r *Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	for i, t := range r.Tables {
		if len(r.Tables) > 1 {
			if _, err := fmt.Fprintf(w, "%s:\n", t.Name); err != nil {
				return err
			}
		}
		header, rows := t.strings()
		if err := render.Table(w, header, rows); err != nil {
			return err
		}
		if i < len(r.Tables)-1 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// Markdown renders the result as a GitHub-markdown section: an H2 title,
// the notes as a paragraph, and each table as a pipe table.
func (r *Result) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n\n", r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "%s\n", n)
	}
	if len(r.Notes) > 0 {
		sb.WriteString("\n")
	}
	for _, t := range r.Tables {
		if len(r.Tables) > 1 {
			fmt.Fprintf(&sb, "### %s\n\n", t.Name)
		}
		header, rows := t.strings()
		sb.WriteString("| " + strings.Join(header, " | ") + " |\n")
		sb.WriteString("|" + strings.Repeat("---|", len(header)) + "\n")
		for _, row := range rows {
			sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
