package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestFailureScenarioRoster: the sweep must lead with the healthy
// baseline, cover every fault kind at every grid severity, end with the
// pump+fouling composition, and append the caller's custom scenario.
func TestFailureScenarioRoster(t *testing.T) {
	custom := faults.Scenario{Name: "custom", Faults: []faults.Fault{
		{Kind: faults.HTCDrift, Severity: 0.3},
	}}
	scs := failureScenarios(Coarse, &custom)
	want := 1 + len(faults.Kinds())*len(failureSeverities(Coarse)) + 1 + 1
	if len(scs) != want {
		t.Fatalf("%d scenarios, want %d", len(scs), want)
	}
	if scs[0].Name != "healthy" || !scs[0].Empty() {
		t.Fatalf("first scenario = %+v, want the healthy baseline", scs[0])
	}
	if got := scs[len(scs)-1].Name; got != "custom" {
		t.Fatalf("last scenario = %q, want the custom one", got)
	}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.Name, err)
		}
	}
	// Without a custom scenario the composition closes the roster.
	scs = failureScenarios(Coarse, nil)
	if got := scs[len(scs)-1].Name; got != "pump:0.6+fouling:0.6" {
		t.Fatalf("roster tail = %q, want the pump+fouling composition", got)
	}
}

// TestFailureSweepDeterministic: the survival sweep must be byte-identical
// between a fully serial run and a pooled workers × threads split — the
// experiments-level guarantee that fault scenarios keep the determinism
// contract. A small fleet keeps the double solve affordable; the serial
// pass doubles as the shape check on the survival rows.
func TestFailureSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double fleet sweep in -short mode")
	}
	run := func(workers, threads int) []FailurePoint {
		cfg := RunConfig{Resolution: Coarse, Workers: workers, Threads: threads}
		pts, err := failureSweep(context.Background(), cfg, 1, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	serial := run(1, 1)
	if len(serial) == 0 {
		t.Fatal("empty sweep")
	}

	// Survival-row shape: the healthy baseline leads, feasibility implies
	// convergence, and converged infeasibility names its blades.
	if serial[0].Scenario != "healthy" {
		t.Fatalf("first row %q, want healthy", serial[0].Scenario)
	}
	if !serial[0].Feasible || serial[0].ThrottledBlades != 0 || serial[0].Escalations != 0 {
		t.Fatalf("healthy baseline degraded: %+v", serial[0])
	}
	for _, p := range serial {
		if p.Feasible && !p.Converged {
			t.Errorf("%s: feasible but unconverged", p.Scenario)
		}
		if !p.Feasible && p.Converged && p.InfeasibleBlades == 0 {
			t.Errorf("%s: converged and infeasible but no blades named", p.Scenario)
		}
		if p.PUE <= 1 {
			t.Errorf("%s: PUE %.3f must exceed 1", p.Scenario, p.PUE)
		}
	}

	pooled := run(4, 2)
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("pooled sweep differs from serial:\nserial %+v\npooled %+v", serial, pooled)
	}
}

// TestFaultsResultShape: the survival renderer must satisfy the uniform
// Result contract (the same checks TestRegistryRoundTrip applies — that
// test skips the faults experiment because the real sweep solves the
// 1000-blade fleet). Synthetic points stand in for the solve.
func TestFaultsResultShape(t *testing.T) {
	points := []FailurePoint{
		{Scenario: "healthy", Feasible: true, Converged: true, OuterIterations: 6,
			FinalDamping: 0.8, ITPowerW: 73110, MaxDieC: 76.3, MaxSupplyC: 33.2, PUE: 1.116},
		{Scenario: "pump:0.8", Converged: true, OuterIterations: 12, FinalDamping: 0.8,
			ThrottledBlades: 1000, MaxThrottleSteps: 2, InfeasibleBlades: 657,
			ITPowerW: 74470, MaxDieC: 119.3, MaxSupplyC: 33.4, PUE: 1.115},
	}
	r := faultsResult(points, At(Coarse))
	if r.Name != "faults" || r.Resolution != "coarse" || r.Title == "" {
		t.Fatalf("bad envelope: %+v", r)
	}
	if len(r.Tables) != 1 || r.Tables[0].Name != "survival" {
		t.Fatalf("tables = %+v, want one survival table", r.Tables)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != len(points) {
		t.Fatalf("%d rows for %d points", len(tb.Rows), len(points))
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tb.Columns))
		}
		for j, cell := range row {
			if tb.Columns[j].Prec >= 0 {
				switch cell.(type) {
				case float64, int:
				default:
					t.Fatalf("row %d col %q: non-numeric cell %T in numeric column", i, tb.Columns[j].Name, cell)
				}
			}
		}
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if back.Name != r.Name || len(back.Tables) != 1 {
		t.Fatalf("round-tripped result lost structure: %+v", back)
	}
	if md := r.Markdown(); !strings.HasPrefix(md, "## ") || !strings.Contains(md, "pump:0.8") {
		t.Fatalf("markdown missing heading or rows:\n%s", md)
	}
	// The worst-scenario note names the hottest row.
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[len(r.Notes)-1], "pump:0.8") {
		t.Fatalf("notes do not name the hottest scenario: %v", r.Notes)
	}
}
