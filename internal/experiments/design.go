package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/refrigerant"
	"repro/internal/sched"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// OrientationResult is one design's row in the Fig. 5 comparison.
type OrientationResult struct {
	Orientation thermosyphon.Orientation
	Die, Pkg    metrics.MapStats
	// PkgMap is the package-layer map for rendering Fig. 5a/5b.
	PkgMap []float64
}

// Fig5Orientation reproduces the §VI-A orientation study: all cores equally
// loaded, comparing evaporator orientations. The paper's Design 1
// (east-west channels) yields pkg 52.7/50.3 °C ∇0.33 versus Design 2
// (north-south) 53.5/50.6 °C ∇0.43; die 73.2 vs 79.4 °C.
func Fig5Orientation(res Resolution) ([]OrientationResult, error) {
	bench, cfg := workload.WorstCase()
	m := FullLoadMapping(cfg, power.POLL)
	var out []OrientationResult
	for _, o := range thermosyphon.Orientations() {
		d := thermosyphon.DefaultDesign()
		d.Orientation = o
		sys, err := NewSystem(d, res)
		if err != nil {
			return nil, err
		}
		die, pkg, r, err := SolveMapping(sys, bench, m, thermosyphon.DefaultOperating())
		if err != nil {
			return nil, fmt.Errorf("orientation %v: %w", o, err)
		}
		pkgMap, err := r.Field.LayerByName("spreader")
		if err != nil {
			return nil, err
		}
		out = append(out, OrientationResult{
			Orientation: o,
			Die:         die,
			Pkg:         pkg,
			PkgMap:      append([]float64(nil), pkgMap...),
		})
	}
	return out, nil
}

// DesignPoint is one refrigerant/filling-ratio candidate in the §VI-B
// design-space study.
type DesignPoint struct {
	Fluid        string
	FillingRatio float64
	DieMaxC      float64
	TCaseC       float64
	// Feasible indicates TCASE stays below the 85 °C constraint at the
	// worst-case workload.
	Feasible bool
	// DryoutCells counts evaporator cells beyond critical quality.
	DryoutCells int
}

// DesignSpaceResult is the §VI-B/C design-space study output.
type DesignSpaceResult struct {
	Points []DesignPoint
	// Best is the feasible point with the lowest die hotspot.
	Best DesignPoint
	// WaterSelection is the §VI-C operating-point choice.
	WaterSelection WaterChoice
}

// WaterChoice records the §VI-C selection: the lowest flow and the warmest
// water that keep TCASE below TCASE_MAX for the worst case.
type WaterChoice struct {
	FlowKgH  float64
	WaterInC float64
	TCaseC   float64
}

// DesignSpaceStudy sweeps refrigerant × filling ratio at the worst-case
// workload (§VI-B), then selects the cheapest water operating point that
// holds TCASE_MAX (§VI-C).
func DesignSpaceStudy(res Resolution) (*DesignSpaceResult, error) {
	bench, cfg := workload.WorstCase()
	m := FullLoadMapping(cfg, power.POLL)
	var out DesignSpaceResult
	best := DesignPoint{DieMaxC: 1e9}
	for _, fl := range refrigerant.Candidates() {
		for _, fr := range []float64{0.35, 0.45, 0.55, 0.65, 0.75} {
			d := thermosyphon.DefaultDesign()
			d.Fluid = fl
			d.FillingRatio = fr
			sys, err := NewSystem(d, res)
			if err != nil {
				return nil, err
			}
			die, _, r, err := SolveMapping(sys, bench, m, thermosyphon.DefaultOperating())
			if err != nil {
				return nil, fmt.Errorf("%s fill %.2f: %w", fl.Name(), fr, err)
			}
			pt := DesignPoint{
				Fluid:        fl.Name(),
				FillingRatio: fr,
				DieMaxC:      die.MaxC,
				TCaseC:       sys.TCase(r),
				DryoutCells:  r.Syphon.DryoutCells,
			}
			pt.Feasible = pt.TCaseC < sched.TCaseMax
			out.Points = append(out.Points, pt)
			if pt.Feasible && pt.DieMaxC < best.DieMaxC {
				best = pt
			}
		}
	}
	out.Best = best

	// §VI-C: fix the best design; scan flow ascending and water
	// temperature descending from a warm start, accepting the first
	// combination that meets the constraint.
	d := thermosyphon.DefaultDesign()
	fl, err := refrigerant.ByName(best.Fluid)
	if err != nil {
		return nil, err
	}
	d.Fluid = fl
	d.FillingRatio = best.FillingRatio
	sys, err := NewSystem(d, res)
	if err != nil {
		return nil, err
	}
	for _, flow := range []float64{3, 5, 7, 9, 12} {
		for _, tw := range []float64{45, 40, 35, 30, 25, 20} {
			op := thermosyphon.Operating{WaterInC: tw, WaterFlowKgH: flow}
			_, _, r, err := SolveMapping(sys, bench, m, op)
			if err != nil {
				return nil, err
			}
			if tc := sys.TCase(r); tc < sched.TCaseMax {
				out.WaterSelection = WaterChoice{FlowKgH: flow, WaterInC: tw, TCaseC: tc}
				return &out, nil
			}
		}
	}
	return nil, fmt.Errorf("experiments: no feasible water operating point found")
}
