package experiments

import (
	"context"
	"fmt"

	"repro/internal/cosim"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/refrigerant"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// OrientationResult is one design's row in the Fig. 5 comparison.
type OrientationResult struct {
	Orientation thermosyphon.Orientation
	Die, Pkg    metrics.MapStats
	// PkgMap is the package-layer map for rendering Fig. 5a/5b.
	PkgMap []float64
}

// Fig5Orientation reproduces the §VI-A orientation study: all cores equally
// loaded, comparing evaporator orientations. The paper's Design 1
// (east-west channels) yields pkg 52.7/50.3 °C ∇0.33 versus Design 2
// (north-south) 53.5/50.6 °C ∇0.43; die 73.2 vs 79.4 °C. The four designs
// are independent full co-simulations, so they run through the sweep pool.
func Fig5Orientation(ctx context.Context, cfg RunConfig) ([]OrientationResult, error) {
	bench, wcfg := workload.WorstCase()
	m := FullLoadMapping(wcfg, power.POLL)
	cfg = cfg.SplitBudget(len(thermosyphon.Orientations()))
	return sweep.Run(ctx, thermosyphon.Orientations(), func(o thermosyphon.Orientation) (OrientationResult, error) {
		d := thermosyphon.DefaultDesign()
		d.Orientation = o
		ses, err := cfg.NewSweepSession(d)
		if err != nil {
			return OrientationResult{}, err
		}
		defer ses.Close()
		die, pkg, r, err := SolveMappingSession(ctx, ses, bench, m, thermosyphon.DefaultOperating())
		if err != nil {
			return OrientationResult{}, fmt.Errorf("orientation %v: %w", o, err)
		}
		pkgMap, err := r.Field.LayerByName("spreader")
		if err != nil {
			return OrientationResult{}, err
		}
		return OrientationResult{
			Orientation: o,
			Die:         die,
			Pkg:         pkg,
			PkgMap:      append([]float64(nil), pkgMap...),
		}, nil
	}, cfg.sweepOpts()...)
}

// DesignPoint is one refrigerant/filling-ratio candidate in the §VI-B
// design-space study.
type DesignPoint struct {
	Fluid        string
	FillingRatio float64
	DieMaxC      float64
	TCaseC       float64
	// Feasible indicates TCASE stays below the 85 °C constraint at the
	// worst-case workload.
	Feasible bool
	// DryoutCells counts evaporator cells beyond critical quality.
	DryoutCells int
}

// DesignSpaceResult is the §VI-B/C design-space study output.
type DesignSpaceResult struct {
	Points []DesignPoint
	// Best is the feasible point with the lowest die hotspot.
	Best DesignPoint
	// WaterSelection is the §VI-C operating-point choice.
	WaterSelection WaterChoice
}

// WaterChoice records the §VI-C selection: the lowest flow and the warmest
// water that keep TCASE below TCASE_MAX for the worst case.
type WaterChoice struct {
	FlowKgH  float64
	WaterInC float64
	TCaseC   float64
}

// designFills are the §VI-B filling-ratio candidates.
var designFills = []float64{0.35, 0.45, 0.55, 0.65, 0.75}

// waterFlows and waterTemps span the §VI-C operating-point scan, ordered
// cheapest first: lowest flow outer, warmest water inner.
var (
	waterFlows = []float64{3, 5, 7, 9, 12}
	waterTemps = []float64{45, 40, 35, 30, 25, 20}
)

// DesignSpaceStudy sweeps refrigerant × filling ratio at the worst-case
// workload (§VI-B), then selects the cheapest water operating point that
// holds TCASE_MAX (§VI-C). Both grids are independent solves and fan out
// across the sweep pool; results and the selected points are identical to
// the serial scan because the pool preserves input order.
func DesignSpaceStudy(ctx context.Context, cfg RunConfig) (*DesignSpaceResult, error) {
	bench, wcfg := workload.WorstCase()
	m := FullLoadMapping(wcfg, power.POLL)
	var out DesignSpaceResult

	// §VI-B: every (fluid, fill) pair is its own design, hence its own
	// system; build it inside the evaluation. Even a single-point session
	// pays for itself here: the coupled fixed point re-solves the thermal
	// stack a dozen times, and the session reuses one workspace for all of
	// those inner solves.
	grid := sweep.Cross(refrigerant.Candidates(), designFills)
	cfg = cfg.SplitBudget(len(grid))
	points, err := sweep.Run(ctx, grid, func(p sweep.Pair[*refrigerant.Fluid, float64]) (DesignPoint, error) {
		fl, fr := p.A, p.B
		d := thermosyphon.DefaultDesign()
		d.Fluid = fl
		d.FillingRatio = fr
		ses, err := cfg.NewSweepSession(d)
		if err != nil {
			return DesignPoint{}, err
		}
		defer ses.Close()
		die, _, r, err := SolveMappingSession(ctx, ses, bench, m, thermosyphon.DefaultOperating())
		if err != nil {
			return DesignPoint{}, fmt.Errorf("%s fill %.2f: %w", fl.Name(), fr, err)
		}
		pt := DesignPoint{
			Fluid:        fl.Name(),
			FillingRatio: fr,
			DieMaxC:      die.MaxC,
			TCaseC:       ses.System().TCase(r),
			DryoutCells:  r.Syphon.DryoutCells,
		}
		pt.Feasible = pt.TCaseC < sched.TCaseMax
		return pt, nil
	}, cfg.sweepOpts()...)
	if err != nil {
		return nil, err
	}
	out.Points = points
	best := DesignPoint{DieMaxC: 1e9}
	for _, pt := range out.Points {
		if pt.Feasible && pt.DieMaxC < best.DieMaxC {
			best = pt
		}
	}
	out.Best = best

	// §VI-C: fix the best design; scan the flow × water-temperature grid
	// in cheapest-first order and accept the first combination that meets
	// the constraint. sweep.First preserves the serial early exit — points
	// past the accepted one are never required — while evaluating ahead
	// in parallel; the design is shared, so each worker reuses one solve
	// session (system + workspace) across all points it claims.
	d := thermosyphon.DefaultDesign()
	fl, err := refrigerant.ByName(best.Fluid)
	if err != nil {
		return nil, err
	}
	d.Fluid = fl
	d.FillingRatio = best.FillingRatio
	ops := sweep.Cross(waterFlows, waterTemps)
	i, tc, found, err := sweep.First(ctx, ops,
		func() (*cosim.Session, error) { return cfg.NewSweepSession(d) },
		func(ses *cosim.Session, p sweep.Pair[float64, float64]) (float64, error) {
			op := thermosyphon.Operating{WaterInC: p.B, WaterFlowKgH: p.A}
			_, _, r, err := SolveMappingSession(ctx, ses, bench, m, op)
			if err != nil {
				return 0, err
			}
			return ses.System().TCase(r), nil
		},
		func(tc float64) bool { return tc < sched.TCaseMax },
		cfg.sweepOpts()...)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("experiments: no feasible water operating point found")
	}
	out.WaterSelection = WaterChoice{FlowKgH: ops[i].A, WaterInC: ops[i].B, TCaseC: tc}
	return &out, nil
}
