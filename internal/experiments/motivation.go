package experiments

import (
	"context"

	"repro/internal/baselines"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// Fig2Result reproduces Fig. 2 / table 2d: the die vs package thermal
// profile when the thermosyphon design and the workload mapping are both
// non-optimized. The paper reports die 66.1/55.9 °C with ∇θmax 6.6 °C/mm
// against package 46.4/42.9 °C with 0.5 °C/mm.
type Fig2Result struct {
	Die, Pkg metrics.MapStats
	// DieMap and PkgMap are the raw layer maps for rendering.
	DieMap, PkgMap []float64
	Grid           floorplan.Grid
	TotalPowerW    float64
}

// Fig2DieVsPackage runs the motivational experiment: worst-case workload on
// all eight cores through the non-optimized ([8]) design with a naive
// mapping, comparing die-level and package-level thermal profiles.
func Fig2DieVsPackage(ctx context.Context, cfg RunConfig) (*Fig2Result, error) {
	// A single coupled solve: the whole core budget goes to the solve team.
	cfg = cfg.SplitBudgetDepthFirst(1)
	ses, err := cfg.NewSweepSession(baselines.SeuretDesign())
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	bench, wcfg := workload.WorstCase()
	m := FullLoadMapping(wcfg, power.POLL)
	die, pkg, r, err := SolveMappingSession(ctx, ses, bench, m, thermosyphon.DefaultOperating())
	if err != nil {
		return nil, err
	}
	sys := ses.System()
	dieMap := append([]float64(nil), sys.DieTemps(r)...)
	pkgMap, err := r.Field.LayerByName("spreader")
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		Die:         die,
		Pkg:         pkg,
		DieMap:      dieMap,
		PkgMap:      append([]float64(nil), pkgMap...),
		Grid:        sys.Thermal.Grid(),
		TotalPowerW: r.TotalPowerW,
	}, nil
}

// Fig3Row is one benchmark's series in Fig. 3: execution time normalized
// to the 2x QoS limit for the five plotted configurations at fmax.
type Fig3Row struct {
	Bench string
	// NormToQoS holds T/(QoS·T_ref) per configuration, in the order of
	// workload.Fig3Configs(). Values above 1 violate the 2x QoS.
	NormToQoS []float64
}

// Fig3NormalizedExecTime regenerates Fig. 3 (QoS limit 2x). It is a pure
// model evaluation — no thermal solves — so it takes no context or
// configuration.
func Fig3NormalizedExecTime() []Fig3Row {
	const qos = workload.QoS2x
	cfgs := workload.Fig3Configs()
	var rows []Fig3Row
	for _, b := range workload.All() {
		row := Fig3Row{Bench: b.Name}
		for _, c := range cfgs {
			row.NormToQoS = append(row.NormToQoS, b.NormalizedTime(c)/float64(qos))
		}
		rows = append(rows, row)
	}
	return rows
}

// TableIRow is one C-state row of Table I.
type TableIRow struct {
	State   power.CState
	Latency string
	// PowerW holds total 8-core power at 2.6, 2.9 and 3.2 GHz.
	PowerW [3]float64
}

// TableICStatePower regenerates Table I from the power model.
func TableICStatePower() []TableIRow {
	var rows []TableIRow
	for _, s := range []power.CState{power.POLL, power.C1, power.C1E} {
		r := TableIRow{State: s, Latency: s.Latency().String()}
		for i, f := range power.Levels() {
			r.PowerW[i] = power.CStateTotalPower(s, f)
		}
		rows = append(rows, r)
	}
	return rows
}
