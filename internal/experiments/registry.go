package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/thermal"
	"repro/internal/workload"
)

// Experiment is one self-describing entry of the registry: a stable name
// (the -exp flag value), a one-line description (the -list output), and a
// typed run entry point. Run must honor every field of RunConfig and
// return promptly with ctx.Err() once the context is cancelled.
type Experiment struct {
	Name        string
	Description string
	Run         func(ctx context.Context, cfg RunConfig) (*Result, error)
}

var registry struct {
	mu     sync.RWMutex
	order  []string
	byName map[string]Experiment
}

// Register adds an experiment to the registry. Names must be unique and
// non-empty; "all" is reserved for the run-everything CLI selector.
// Registration order is presentation order — All returns it unchanged, so
// there is no second hand-maintained ordering to drift out of sync.
func Register(e Experiment) {
	if e.Name == "" || e.Name == "all" || e.Run == nil {
		panic(fmt.Sprintf("experiments: invalid registration %+v", e))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byName == nil {
		registry.byName = map[string]Experiment{}
	}
	if _, dup := registry.byName[e.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration %q", e.Name))
	}
	registry.byName[e.Name] = e
	registry.order = append(registry.order, e.Name)
}

// Lookup resolves a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	e, ok := registry.byName[name]
	return e, ok
}

// All returns every registered experiment in registration order.
func All() []Experiment {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Experiment, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return append([]string(nil), registry.order...)
}

// The paper's evaluation catalog, in paper order, followed by the
// extension studies. Everything cmd/paperbench serves comes from here.
func init() {
	Register(Experiment{
		Name:        "fig2",
		Description: "Fig. 2 — die vs package thermal profile, non-optimized design+mapping",
		Run:         runFig2,
	})
	Register(Experiment{
		Name:        "fig3",
		Description: "Fig. 3 — execution time normalized to the 2x QoS limit",
		Run:         runFig3,
	})
	Register(Experiment{
		Name:        "tablei",
		Description: "Table I — C-state power of the Xeon E5 v4",
		Run:         runTableI,
	})
	Register(Experiment{
		Name:        "fig5",
		Description: "Fig. 5 — thermosyphon orientation study, all cores loaded",
		Run:         runFig5,
	})
	Register(Experiment{
		Name:        "fig6",
		Description: "Fig. 6 — three 4-core mappings × idle C-state",
		Run:         runFig6,
	})
	Register(Experiment{
		Name:        "tableii",
		Description: "Table II — policy stacks × QoS over the PARSEC roster",
		Run:         runTableII,
	})
	Register(Experiment{
		Name:        "fig7",
		Description: "Fig. 7 — sample die maps at 2x QoS, proposed vs state of the art",
		Run:         runFig7,
	})
	Register(Experiment{
		Name:        "cooling",
		Description: "§VIII-B — cooling power needed to match hot spots",
		Run:         runCooling,
	})
	Register(Experiment{
		Name:        "design",
		Description: "§VI-B/C — refrigerant × filling design space and water point",
		Run:         runDesign,
	})
	Register(Experiment{
		Name:        "scaling",
		Description: "extension — linear-solver work vs grid resolution",
		Run:         runScaling,
	})
	Register(Experiment{
		Name:        "orientmap",
		Description: "extension — orientation × mapping cross study",
		Run:         runOrientMap,
	})
	Register(Experiment{
		Name:        "scalability",
		Description: "extension — mapping rule on a scaled 16-core die",
		Run:         runScalability,
	})
	Register(Experiment{
		Name:        "runtime",
		Description: "extension — §VII closed-loop controller under a forced emergency",
		Run:         runRuntime,
	})
	Register(Experiment{
		Name:        "datacenter",
		Description: "extension — nested N-rack × M-blade fixed point, fleet ladder to 1000 blades",
		Run:         runDatacenter,
	})
	Register(Experiment{
		Name:        "diurnal",
		Description: "extension — 24 h diurnal fleet transient, quasi-static hourly solves",
		Run:         runDiurnal,
	})
	Register(Experiment{
		Name:        "faults",
		Description: "extension — cooling-failure survival sweep, fault kind × severity on the 1000-blade fleet",
		Run:         runFaults,
	})
}

func runFig2(ctx context.Context, cfg RunConfig) (*Result, error) {
	r, err := Fig2DieVsPackage(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("fig2", "Fig. 2 — die vs package profile, non-optimized design+mapping", cfg)
	out.notef("(paper: die 66.1/55.9 °C ∇6.6; package 46.4/42.9 °C ∇0.5)")
	t := Table{Name: "profile", Columns: []Column{
		Col("plane", -1), Col("θmax(°C)", 1), Col("θavg(°C)", 1), Col("∇θmax(°C/mm)", 2),
	}}
	t.AddRow("Die", r.Die.MaxC, r.Die.MeanC, r.Die.MaxGradCPerMM)
	t.AddRow("Package", r.Pkg.MaxC, r.Pkg.MeanC, r.Pkg.MaxGradCPerMM)
	out.Tables = append(out.Tables, t)
	if err := out.addMap(cfg, "fig2_die", r.Grid, r.DieMap); err != nil {
		return nil, err
	}
	if err := out.addMap(cfg, "fig2_package", r.Grid, r.PkgMap); err != nil {
		return nil, err
	}
	return out, nil
}

func runFig3(ctx context.Context, cfg RunConfig) (*Result, error) {
	// Pure model evaluation, but the registry contract still holds: a
	// cancelled context must not produce a result (and, as everywhere
	// else, a nil ctx means "not cancellable").
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	rows := Fig3NormalizedExecTime()
	out := newResult("fig3", "Fig. 3 — execution time normalized to the 2x QoS limit (>1 violates)", cfg)
	cols := []Column{Col("benchmark", -1)}
	for _, c := range workload.Fig3Configs() {
		cols = append(cols, Col(fmt.Sprintf("(%d,%d)", c.Cores, c.Threads), 2))
	}
	t := Table{Name: "normalized", Columns: cols}
	for _, r := range rows {
		cells := []any{r.Bench}
		for _, v := range r.NormToQoS {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runTableI(ctx context.Context, cfg RunConfig) (*Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	out := newResult("tablei", "Table I — C-state power of the Xeon E5 v4 (all 8 cores)", cfg)
	t := Table{Name: "cstates", Columns: []Column{
		Col("state", -1), Col("latency", -1),
		Col("W@2.6GHz", 1), Col("W@2.9GHz", 1), Col("W@3.2GHz", 1),
	}}
	for _, r := range TableICStatePower() {
		t.AddRow(r.State.String(), r.Latency, r.PowerW[0], r.PowerW[1], r.PowerW[2])
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runFig5(ctx context.Context, cfg RunConfig) (*Result, error) {
	rows, err := Fig5Orientation(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("fig5", "Fig. 5 — thermosyphon orientation study, all cores loaded", cfg)
	out.notef("(paper: Design1 E-W pkg 52.7 ∇0.33, die 73.2; Design2 N-S pkg 53.5 ∇0.43, die 79.4)")
	t := Table{Name: "orientations", Columns: []Column{
		Col("orientation", -1),
		Col("die θmax", 1), Col("die θavg", 1), Col("die ∇θmax", 2),
		Col("pkg θmax", 1), Col("pkg θavg", 1), Col("pkg ∇θmax", 2),
	}}
	grid := cfg.Resolution.Grid()
	for _, r := range rows {
		t.AddRow(r.Orientation.String(),
			r.Die.MaxC, r.Die.MeanC, r.Die.MaxGradCPerMM,
			r.Pkg.MaxC, r.Pkg.MeanC, r.Pkg.MaxGradCPerMM)
		if r.Orientation.Horizontal() {
			if err := out.addMap(cfg, "fig5_pkg_"+r.Orientation.String(), grid, r.PkgMap); err != nil {
				return nil, err
			}
		}
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runFig6(ctx context.Context, cfg RunConfig) (*Result, error) {
	rows, err := Fig6MappingScenarios(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("fig6", "Fig. 6 — three 4-core mappings × idle C-state (die plane)", cfg)
	out.notef("(paper θmax: POLL 68.2/65.0/77.6; C1 57.1/64.2/73.3)")
	t := Table{Name: "scenarios", Columns: []Column{
		Col("scenario", -1), Col("idle", -1),
		Col("θmax(°C)", 1), Col("θavg(°C)", 1), Col("∇θmax(°C/mm)", 2),
	}}
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Idle.String(), r.Die.MaxC, r.Die.MeanC, r.Die.MaxGradCPerMM)
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runTableII(ctx context.Context, cfg RunConfig) (*Result, error) {
	rows, err := TableIIPolicyComparison(ctx, cfg, nil)
	if err != nil {
		return nil, err
	}
	out := newResult("tableii", "Table II — hot spots and gradients per approach and QoS (13-benchmark average)", cfg)
	out.notef("(paper die θmax: Proposed 78.3/72.2/68.4; [8]+[27]+[9] 83.0/79.5/77.8; [8]+[27]+[7] 83.0/80.5/79.1)")
	t := Table{Name: "policies", Columns: []Column{
		Col("approach", -1), Col("QoS", -1),
		Col("die θmax", 1), Col("die ∇θmax", 2),
		Col("pkg θmax", 1), Col("pkg ∇θmax", 2),
		Col("avg W", 1),
	}}
	for _, r := range rows {
		t.AddRow(r.Approach.String(), r.QoS.String(),
			r.DieMaxC, r.DieGradCPerMM, r.PkgMaxC, r.PkgGradCPerMM, r.AvgPowerW)
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runFig7(ctx context.Context, cfg RunConfig) (*Result, error) {
	r, err := Fig7ThermalMaps(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("fig7", "Fig. 7 — sample die maps at 2x QoS (paper: proposed 71.5 °C vs SoA 78.2 °C)", cfg)
	out.notef("proposed (%s): %.1f °C   state of the art: %.1f °C   gap %.1f °C",
		r.ProposedBench, r.ProposedMax, r.SoAMax, r.SoAMax-r.ProposedMax)
	t := Table{Name: "hotspots", Columns: []Column{Col("map", -1), Col("θmax(°C)", 1)}}
	t.AddRow("proposed", r.ProposedMax)
	t.AddRow("state of the art", r.SoAMax)
	out.Tables = append(out.Tables, t)
	grid := cfg.Resolution.Grid()
	if err := out.addMap(cfg, "fig7_proposed", grid, r.ProposedMap); err != nil {
		return nil, err
	}
	if err := out.addMap(cfg, "fig7_soa", grid, r.SoAMap); err != nil {
		return nil, err
	}
	return out, nil
}

func runCooling(ctx context.Context, cfg RunConfig) (*Result, error) {
	r, err := CoolingPowerStudy(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("cooling", "§VIII-B — cooling power (paper: 20 °C water needed without the mapping; ≥45% chiller reduction)", cfg)
	out.notef("baseline needs %.1f °C water (proposed: %.1f °C) to match a %.1f °C hot spot",
		r.BaselineWaterC, r.ProposedWaterC, r.HotspotC)
	t := Table{Name: "budgets", Columns: []Column{
		Col("approach", -1), Col("water in (°C)", 1), Col("water ΔT (°C)", 2),
		Col("Eq.(1) P (W)", 1), Col("chiller P (W)", 1),
	}}
	t.AddRow("Proposed", r.ProposedWaterC, r.ProposedDeltaT, r.ProposedBudget.Eq1PowerW, r.ProposedBudget.ChillerPowerW)
	t.AddRow("[8]+[27]+[9]", r.BaselineWaterC, r.BaselineDeltaT, r.BaselineBudget.Eq1PowerW, r.BaselineBudget.ChillerPowerW)
	out.Tables = append(out.Tables, t)
	// The reductions are commentary, not another budget row: keeping them
	// out of the table preserves the numbers-stay-numbers JSON contract.
	out.notef("reduction: Eq.(1) %.1f%%, chiller %.1f%%", r.ReductionEq1*100, r.ReductionChiller*100)
	return out, nil
}

func runDesign(ctx context.Context, cfg RunConfig) (*Result, error) {
	r, err := DesignSpaceStudy(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("design", "§VI-B/C — design space (paper choice: R236fa @ 55% fill, 7 kg/h @ 30 °C)", cfg)
	t := Table{Name: "points", Columns: []Column{
		Col("fluid", -1), Col("fill", 2), Col("die θmax", 1), Col("TCASE", 1),
		Col("dryout cells", -1), Col("feasible", -1),
	}}
	for _, p := range r.Points {
		t.AddRow(p.Fluid, p.FillingRatio, p.DieMaxC, p.TCaseC, p.DryoutCells, p.Feasible)
	}
	out.Tables = append(out.Tables, t)
	out.notef("best feasible: %s @ %.2f (die %.1f °C)", r.Best.Fluid, r.Best.FillingRatio, r.Best.DieMaxC)
	out.notef("water selection: %.0f kg/h @ %.0f °C (TCASE %.1f °C, limit 85)",
		r.WaterSelection.FlowKgH, r.WaterSelection.WaterInC, r.WaterSelection.TCaseC)
	return out, nil
}

// scalingSizes picks the grid-resolution ladder for the solver-scaling
// extension: modest at coarse/medium so the Jacobi-CG reference stays
// affordable, up to the 256×256 rack-scale grids at full resolution.
func scalingSizes(res Resolution) []int {
	switch res {
	case Coarse:
		return []int{16, 32, 64}
	case Medium:
		return []int{32, 64, 128}
	default:
		return []int{64, 128, 256}
	}
}

func runScaling(ctx context.Context, cfg RunConfig) (*Result, error) {
	// The scaling study always carries the {cg, mgpcg} reference pair (it
	// exists to contrast them); a non-default cfg.Solver joins the sweep as
	// a third column, so `-exp scaling -solver mgpcg-cheb` (or mgpcg32)
	// puts the alternative preconditioner on the same axes as the pair it
	// competes with instead of being silently ignored.
	solvers := []thermal.Solver{thermal.SolverCG, thermal.SolverMGPCG}
	if cfg.Solver != thermal.SolverCG && cfg.Solver != thermal.SolverMGPCG {
		solvers = append(solvers, cfg.Solver)
	}
	cells, err := ExtResolutionScaling(ctx, cfg, scalingSizes(cfg.Resolution), solvers)
	if err != nil {
		return nil, err
	}
	out := newResult("scaling", "extension — solver scaling with grid resolution (full-load steady solve per size)", cfg)
	// Wall time is deliberately absent: it varies run to run, and the
	// Result feeds byte-reproducible artifacts (the markdown report, the
	// -json output). Work is reported in deterministic units (iterations
	// and operator applications); callers who want wall clock use the
	// typed ExtResolutionScaling API directly.
	t := Table{Name: "cells", Columns: []Column{
		Col("grid", -1), Col("unknowns", -1), Col("solver", -1), Col("die θmax", 1),
		Col("outer", -1), Col("lin iters", -1), Col("applies", -1),
	}}
	for _, c := range cells {
		t.AddRow(fmt.Sprintf("%d×%d", c.NX, c.NY), c.Unknowns, c.Solver,
			c.DieMaxC, c.OuterIters, c.LinIters, c.Applies)
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runOrientMap(ctx context.Context, cfg RunConfig) (*Result, error) {
	cells, err := ExtOrientationMapping(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("orientmap", "extension — orientation × mapping cross study (C1 idles, die plane)", cfg)
	t := Table{Name: "cells", Columns: []Column{
		Col("orientation", -1), Col("scenario", -1),
		Col("θmax(°C)", 1), Col("θavg(°C)", 1), Col("∇θmax(°C/mm)", 2),
	}}
	for _, c := range cells {
		t.AddRow(c.Orientation.String(), c.Scenario, c.Die.MaxC, c.Die.MeanC, c.Die.MaxGradCPerMM)
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runScalability(ctx context.Context, cfg RunConfig) (*Result, error) {
	cells, err := ExtScalability(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("scalability", "extension — mapping rule on scaled dies (half the cores loaded)", cfg)
	t := Table{Name: "cells", Columns: []Column{
		Col("cores", -1), Col("mapping", -1),
		Col("die θmax", 1), Col("die θavg", 1), Col("dryout %", 1),
	}}
	for _, c := range cells {
		t.AddRow(c.Cores, c.Mapping, c.Die.MaxC, c.Die.MeanC, c.DryoutPct*100)
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runDatacenter(ctx context.Context, cfg RunConfig) (*Result, error) {
	points, err := ExtDatacenterScale(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("datacenter", "extension — datacenter nested solve, fleet ladder (cold start per rung)", cfg)
	// Wall time is deliberately absent (it lives in the typed
	// ExtDatacenterScale API and the Go benchmarks): the Result feeds
	// byte-reproducible artifacts, so cost is reported in deterministic
	// units — outer iterations and coupled blade solves.
	t := Table{Name: "ladder", Columns: []Column{
		Col("blades", -1), Col("racks", -1), Col("loops", -1), Col("classes", -1),
		Col("outer", -1), Col("solves", -1), Col("converged", -1),
		Col("IT kW", 2), Col("die θmax", 1), Col("supply θmax", 2), Col("PUE", 3),
	}}
	for _, p := range points {
		t.AddRow(p.Blades, p.Racks, p.Loops, p.Classes,
			p.OuterIterations, p.BladeSolves, p.Converged,
			p.ITPowerW/1000, p.MaxDieC, p.MaxSupplyC, p.PUE)
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runDiurnal(ctx context.Context, cfg RunConfig) (*Result, error) {
	hours, err := ExtDatacenterDiurnal(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("diurnal", "extension — 24 h diurnal fleet transient (32 blades, 2 loops, warm-carried)", cfg)
	t := Table{Name: "hours", Columns: []Column{
		Col("hour", -1), Col("load", 2), Col("outer", -1),
		Col("IT kW", 2), Col("die θmax", 1), Col("supply θmax", 2), Col("PUE", 3),
	}}
	var peak, valley DatacenterHour
	valley.MaxDieC = 1e9
	for _, h := range hours {
		t.AddRow(h.Hour, h.LoadFactor, h.OuterIterations,
			h.ITPowerW/1000, h.MaxDieC, h.MaxSupplyC, h.PUE)
		if h.MaxDieC > peak.MaxDieC {
			peak = h
		}
		if h.MaxDieC < valley.MaxDieC {
			valley = h
		}
	}
	out.Tables = append(out.Tables, t)
	out.notef("daily swing: die %.1f → %.1f °C, IT %.2f → %.2f kW (valley %02d:00, peak %02d:00)",
		valley.MaxDieC, peak.MaxDieC, valley.ITPowerW/1000, peak.ITPowerW/1000, valley.Hour, peak.Hour)
	return out, nil
}

func runFaults(ctx context.Context, cfg RunConfig) (*Result, error) {
	points, err := ExtFailureScenarios(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return faultsResult(points, cfg), nil
}

// faultsResult renders survival points into the uniform Result — split
// from runFaults so the table contract is testable without solving the
// 1000-blade fleet.
func faultsResult(points []FailurePoint, cfg RunConfig) *Result {
	out := newResult("faults", "extension — cooling-failure survival sweep (1000-blade fleet, graceful degradation)", cfg)
	t := Table{Name: "survival", Columns: []Column{
		Col("scenario", -1), Col("feasible", -1), Col("converged", -1),
		Col("outer", -1), Col("halvings", -1), Col("damping", 2), Col("escalations", -1),
		Col("throttled", -1), Col("max steps", -1), Col("infeasible", -1),
		Col("IT kW", 2), Col("die θmax", 1), Col("supply θmax", 2), Col("PUE", 3),
	}}
	var worst FailurePoint
	for _, p := range points {
		t.AddRow(p.Scenario, p.Feasible, p.Converged,
			p.OuterIterations, p.DampingHalvings, p.FinalDamping, p.Escalations,
			p.ThrottledBlades, p.MaxThrottleSteps, p.InfeasibleBlades,
			p.ITPowerW/1000, p.MaxDieC, p.MaxSupplyC, p.PUE)
		if p.MaxDieC > worst.MaxDieC {
			worst = p
		}
	}
	out.Tables = append(out.Tables, t)
	out.notef("hottest scenario: %s (die %.1f °C, %d throttled, %d infeasible)",
		worst.Scenario, worst.MaxDieC, worst.ThrottledBlades, worst.InfeasibleBlades)
	return out
}

func runRuntime(ctx context.Context, cfg RunConfig) (*Result, error) {
	r, err := ExtRuntimeControl(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newResult("runtime", "extension — §VII closed-loop control under a forced thermal emergency", cfg)
	t := Table{Name: "regulation", Columns: []Column{
		Col("nominal TCASE", 1), Col("limit", 1), Col("final TCASE", 1),
		Col("flow actions", -1), Col("dvfs actions", -1), Col("final flow kg/h", 1), Col("QoS held", -1),
	}}
	t.AddRow(r.NominalTCase, r.Limit, r.FinalTCase, r.FlowActions, r.DVFSActions, r.FinalFlowKgH, r.QoSHeld)
	out.Tables = append(out.Tables, t)
	return out, nil
}
