// Package experiments regenerates every table and figure of the paper's
// evaluation (§III-B Fig. 2, §IV Fig. 3 and Table I, §VI Fig. 5, §VII
// Fig. 6, §VIII Table II, Fig. 7 and the cooling-power study), plus the
// §VI design-space study and the extension studies.
//
// The package is organized as a registry of self-describing experiments:
// each scenario registers an Experiment (name, description, a typed
// Run(ctx, RunConfig) entry point) and every consumer — cmd/paperbench,
// internal/report, the benchmarks — renders the uniform Result it
// returns. Configuration travels exclusively through RunConfig; there is
// deliberately no process-wide mutable state, so concurrent runs with
// different solvers or worker budgets cannot observe each other.
package experiments

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/faults"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// Resolution selects the thermal grid density. Figures use Full; the bulk
// policy sweeps use Medium; unit tests and benchmarks use Coarse.
type Resolution int

// Available resolutions.
const (
	// Coarse is 2 mm cells (19×15): fast, for tests and benchmarks.
	Coarse Resolution = iota
	// Medium is 1 mm cells (38×30): the bulk-sweep default.
	Medium
	// Full is 0.5 mm cells (76×60): the figure-quality default.
	Full
)

// String names the resolution.
func (r Resolution) String() string {
	switch r {
	case Coarse:
		return "coarse"
	case Medium:
		return "medium"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("resolution(%d)", int(r))
	}
}

// ParseResolution is the inverse of Resolution.String: it resolves the
// -res flag every command exposes.
func ParseResolution(s string) (Resolution, error) {
	switch s {
	case "coarse":
		return Coarse, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("experiments: unknown resolution %q (want coarse|medium|full)", s)
	}
}

func (r Resolution) dims() (nx, ny int) {
	switch r {
	case Coarse:
		return 19, 15
	case Medium:
		return 38, 30
	default:
		return 76, 60
	}
}

// Grid returns the package-plane thermal grid of the resolution — the
// geometry the map artifacts of every experiment are rendered on.
func (r Resolution) Grid() floorplan.Grid {
	pg := floorplan.XeonE5Package()
	nx, ny := r.dims()
	return floorplan.NewGrid(nx, ny, pg.Width, pg.Height)
}

// RunConfig carries everything a single experiment run needs. A zero
// value is valid: coarse resolution, the Jacobi-CG solver, GOMAXPROCS
// sweep workers, and no artifact sink. RunConfig is a value type passed
// explicitly through every run — two concurrent runs with different
// configurations are fully isolated.
type RunConfig struct {
	// Resolution selects the thermal grid density.
	Resolution Resolution
	// Solver selects the thermal linear solver for every solve session
	// the run creates. A fixed selection keeps pooled sweeps
	// byte-identical to serial runs; the knob only trades solver work for
	// the same answers.
	Solver thermal.Solver
	// Workers bounds the sweep worker pool (0 = auto, 1 = serial).
	Workers int
	// Threads is the intra-solve thread count of every solve session the
	// run creates: the stencil and fused CG kernels fan out across a
	// per-session worker team of this width (0 = auto, 1 = serial). Like
	// Workers and Solver it never changes results — solves are
	// byte-identical at any thread count.
	//
	// Workers and Threads share one core budget: when either is 0 the run
	// splits GOMAXPROCS between them (workers × threads ≤ GOMAXPROCS),
	// width-first for point-heavy sweeps and depth-first for solves big
	// enough to dominate a core each, so a run uses the whole machine
	// whether its parallelism lives across points or inside one solve.
	Threads int
	// Artifacts, when non-nil, receives every map artifact the experiment
	// emits, as it is produced. The maps are also attached to the Result.
	Artifacts ArtifactSink
	// Scenario, when non-nil, is a custom cooling-fault scenario (the
	// -fault flag). The failure-scenarios experiment appends it to its
	// sweep; experiments that do not model faults ignore it.
	Scenario *faults.Scenario
}

// At is the short-form RunConfig for a resolution with the default solver
// and worker pool — what tests and benchmarks use.
func At(res Resolution) RunConfig { return RunConfig{Resolution: res} }

// SplitBudget resolves the (Workers, Threads) pair for a sweep over the
// given number of points under the shared GOMAXPROCS core budget.
// Explicit non-zero settings are honored as-is (setting both lets a
// caller deliberately oversubscribe); a zero field is derived from the
// other so that workers × threads ≤ GOMAXPROCS. When both are zero,
// width-first fills the worker pool up to the point count and hands the
// leftover cores to each solve's team — a 13-point sweep on 8 cores runs
// 8 workers × 1 thread, a 2-point study runs 2 workers × 4 threads.
//
// Beyond the sweep studies, this is the one budget rule every consumer of
// the solve stack shares: the thermservd lease manager resolves its
// concurrent-solve bound (Workers) and per-session team width (Threads)
// through the same split, so a daemon and a batch sweep divide a machine
// identically.
func (cfg RunConfig) SplitBudget(points int) RunConfig {
	return cfg.split(points, false)
}

// SplitBudgetDepthFirst is SplitBudget for sweeps whose individual solves
// are large enough to use the whole machine (the resolution-scaling
// study's 256×256 grids): all cores go to the solve team and the points
// run serially through one worker.
func (cfg RunConfig) SplitBudgetDepthFirst(points int) RunConfig {
	return cfg.split(points, true)
}

func (cfg RunConfig) split(points int, depthFirst bool) RunConfig {
	procs := runtime.GOMAXPROCS(0)
	if points < 1 {
		points = 1
	}
	w, t := cfg.Workers, cfg.Threads
	switch {
	case w > 0 && t > 0:
		// Both explicit: the caller owns the budget.
	case w > 0:
		// Clamp to the point count before deriving threads, so the cores
		// a too-wide worker request would strand flow to the solve teams
		// instead of idling.
		if w > points {
			w = points
		}
		t = procs / w
	case t > 0:
		w = procs / t
	case depthFirst:
		t = procs
		w = 1
	default:
		w = points
		if w > procs {
			w = procs
		}
		t = procs / w
	}
	if w < 1 {
		w = 1
	}
	if w > points {
		w = points
	}
	if t < 1 {
		t = 1
	}
	cfg.Workers, cfg.Threads = w, t
	return cfg
}

// sweepOpts translates the config into per-call sweep engine options.
func (cfg RunConfig) sweepOpts() []sweep.Option {
	return []sweep.Option{sweep.Workers(cfg.Workers)}
}

// sessionOptions returns the solver- and thread-selection option set
// applied to every session the run creates, prepended to any caller
// extras.
func (cfg RunConfig) sessionOptions(extra ...cosim.SessionOption) []cosim.SessionOption {
	opts := []cosim.SessionOption{cosim.WithSolver(cfg.Solver)}
	if cfg.Threads > 1 {
		opts = append(opts, cosim.WithThreads(cfg.Threads))
	}
	return append(opts, extra...)
}

// NewSystem builds a co-simulation system with the given thermosyphon
// design at the resolution.
func NewSystem(design thermosyphon.Design, res Resolution) (*cosim.System, error) {
	cfg := cosim.DefaultConfig()
	cfg.Design = design
	cfg.Stack.NX, cfg.Stack.NY = res.dims()
	return cosim.NewSystem(cfg)
}

// FullLoadMapping returns the all-cores mapping used whenever a workload
// occupies the whole CPU.
func FullLoadMapping(cfg workload.Config, idle power.CState) core.Mapping {
	m := core.Mapping{IdleState: idle, Config: cfg}
	for i := 0; i < 8; i++ {
		m.ActiveCores = append(m.ActiveCores, i)
	}
	return m
}

// SolveMapping runs the coupled solve for a benchmark under a mapping and
// returns die and package statistics. It is the uncancellable
// fresh-system form; experiment runs use SolveMappingSession.
func SolveMapping(sys *cosim.System, b workload.Benchmark, m core.Mapping, op thermosyphon.Operating) (die, pkg metrics.MapStats, res *cosim.Result, err error) {
	st := core.PackageState(b, m)
	res, err = sys.SolveSteady(st, op)
	if err != nil {
		return
	}
	die, err = sys.DieStats(res)
	if err != nil {
		return
	}
	pkg, err = sys.PackageStats(res)
	return
}

// SolveMappingSession is SolveMapping on a reusable solve session — the
// form every pooled study uses so each sweep worker amortizes its solver
// workspace across all the points it claims. Cancelling ctx aborts the
// coupled solve between outer iterations. The returned result aliases
// session buffers and is valid until the session's next solve.
func SolveMappingSession(ctx context.Context, ses *cosim.Session, b workload.Benchmark, m core.Mapping, op thermosyphon.Operating) (die, pkg metrics.MapStats, res *cosim.Result, err error) {
	st := core.PackageState(b, m)
	res, err = ses.SolveSteady(ctx, st, op)
	if err != nil {
		return
	}
	sys := ses.System()
	die, err = sys.DieStats(res)
	if err != nil {
		return
	}
	pkg, err = sys.PackageStats(res)
	return
}

// sessionCache is a per-worker cache of solve sessions keyed by sweep
// axis. It implements io.Closer, so the sweep engine releases every
// cached session's worker team when the worker retires.
type sessionCache[K comparable] map[K]*cosim.Session

// Close releases every cached session's worker team.
func (c sessionCache[K]) Close() error {
	for _, ses := range c {
		ses.Close()
	}
	return nil
}

// NewSweepSession builds a system and wraps it in a session with the
// cross-solve warm start disabled: pooled sweeps claim points in a
// schedule-dependent order, so carrying state across points would make a
// parallel run differ from the serial one. A non-carrying session keeps
// the byte-identical determinism contract while still reusing every solve
// buffer the worker owns. The session solves with the config's solver;
// extra options are applied on top.
func (cfg RunConfig) NewSweepSession(design thermosyphon.Design, extra ...cosim.SessionOption) (*cosim.Session, error) {
	sys, err := NewSystem(design, cfg.Resolution)
	if err != nil {
		return nil, err
	}
	opts := cfg.sessionOptions(extra...)
	opts = append(opts, cosim.CarryWarmStart(false))
	return sys.NewSession(opts...), nil
}
