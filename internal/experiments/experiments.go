// Package experiments regenerates every table and figure of the paper's
// evaluation (§III-B Fig. 2, §IV Fig. 3 and Table I, §VI Fig. 5, §VII
// Fig. 6, §VIII Table II, Fig. 7 and the cooling-power study), plus the
// §VI design-space study. Each experiment has one entry point returning a
// structured result; cmd/paperbench prints them and bench_test.go wraps
// them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// defaultSolver is the process-wide thermal solver selection, following
// the same pattern as sweep.SetDefaultWorkers: the command-line tools
// expose it as -solver, and every experiment picks it up through the
// session constructors below without any per-experiment plumbing. The
// zero value is thermal.SolverCG.
var defaultSolver atomic.Int64

// DefaultSolver returns the solver every experiment session uses.
func DefaultSolver() thermal.Solver { return thermal.Solver(defaultSolver.Load()) }

// SetDefaultSolver overrides the process-wide solver selection. A fixed
// selection keeps the pooled sweeps byte-identical to serial runs; the
// knob only trades solver work for the same answers.
func SetDefaultSolver(s thermal.Solver) { defaultSolver.Store(int64(s)) }

// sessionOptions returns the solver-selection option set applied to every
// session the experiments create, prepended to any caller extras.
func sessionOptions(extra ...cosim.SessionOption) []cosim.SessionOption {
	return append([]cosim.SessionOption{cosim.WithSolver(DefaultSolver())}, extra...)
}

// Resolution selects the thermal grid density. Figures use Full; the bulk
// policy sweeps use Medium; unit tests and benchmarks use Coarse.
type Resolution int

// Available resolutions.
const (
	// Coarse is 2 mm cells (19×15): fast, for tests and benchmarks.
	Coarse Resolution = iota
	// Medium is 1 mm cells (38×30): the bulk-sweep default.
	Medium
	// Full is 0.5 mm cells (76×60): the figure-quality default.
	Full
)

// String names the resolution.
func (r Resolution) String() string {
	switch r {
	case Coarse:
		return "coarse"
	case Medium:
		return "medium"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("resolution(%d)", int(r))
	}
}

func (r Resolution) dims() (nx, ny int) {
	switch r {
	case Coarse:
		return 19, 15
	case Medium:
		return 38, 30
	default:
		return 76, 60
	}
}

// NewSystem builds a co-simulation system with the given thermosyphon
// design at the resolution.
func NewSystem(design thermosyphon.Design, res Resolution) (*cosim.System, error) {
	cfg := cosim.DefaultConfig()
	cfg.Design = design
	cfg.Stack.NX, cfg.Stack.NY = res.dims()
	return cosim.NewSystem(cfg)
}

// FullLoadMapping returns the all-cores mapping used whenever a workload
// occupies the whole CPU.
func FullLoadMapping(cfg workload.Config, idle power.CState) core.Mapping {
	m := core.Mapping{IdleState: idle, Config: cfg}
	for i := 0; i < 8; i++ {
		m.ActiveCores = append(m.ActiveCores, i)
	}
	return m
}

// SolveMapping runs the coupled solve for a benchmark under a mapping and
// returns die and package statistics.
func SolveMapping(sys *cosim.System, b workload.Benchmark, m core.Mapping, op thermosyphon.Operating) (die, pkg metrics.MapStats, res *cosim.Result, err error) {
	st := core.PackageState(b, m)
	res, err = sys.SolveSteady(st, op)
	if err != nil {
		return
	}
	die, err = sys.DieStats(res)
	if err != nil {
		return
	}
	pkg, err = sys.PackageStats(res)
	return
}

// SolveMappingSession is SolveMapping on a reusable solve session — the
// form every pooled study uses so each sweep worker amortizes its solver
// workspace across all the points it claims. The returned result aliases
// session buffers and is valid until the session's next solve.
func SolveMappingSession(ses *cosim.Session, b workload.Benchmark, m core.Mapping, op thermosyphon.Operating) (die, pkg metrics.MapStats, res *cosim.Result, err error) {
	st := core.PackageState(b, m)
	res, err = ses.SolveSteady(st, op)
	if err != nil {
		return
	}
	sys := ses.System()
	die, err = sys.DieStats(res)
	if err != nil {
		return
	}
	pkg, err = sys.PackageStats(res)
	return
}

// NewSweepSession builds a system and wraps it in a session with the
// cross-solve warm start disabled: pooled sweeps claim points in a
// schedule-dependent order, so carrying state across points would make a
// parallel run differ from the serial one. A non-carrying session keeps
// the byte-identical determinism contract while still reusing every solve
// buffer the worker owns. The session solves with the process-wide
// DefaultSolver; extra options are applied on top.
func NewSweepSession(design thermosyphon.Design, res Resolution, extra ...cosim.SessionOption) (*cosim.Session, error) {
	sys, err := NewSystem(design, res)
	if err != nil {
		return nil, err
	}
	opts := sessionOptions(extra...)
	opts = append(opts, cosim.CarryWarmStart(false))
	return sys.NewSession(opts...), nil
}
