package experiments

import (
	"testing"

	"repro/internal/thermosyphon"
)

func TestExtOrientationMapping(t *testing.T) {
	cells, err := ExtOrientationMapping(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 { // 4 orientations × 3 scenarios
		t.Fatalf("got %d cells", len(cells))
	}
	get := func(o thermosyphon.Orientation, sc string) float64 {
		for _, c := range cells {
			if c.Orientation == o && c.Scenario == sc {
				return c.Die.MaxC
			}
		}
		t.Fatalf("missing %v/%s", o, sc)
		return 0
	}
	// The staggered mapping must beat the clustered mapping under every
	// orientation — the rule is robust to the design choice.
	for _, o := range thermosyphon.Orientations() {
		s1 := get(o, "scenario1-staggered")
		s3 := get(o, "scenario3-clustered")
		if s1 >= s3 {
			t.Fatalf("%v: staggered %.2f should beat clustered %.2f", o, s1, s3)
		}
	}
}

func TestExtRuntimeControl(t *testing.T) {
	r, err := ExtRuntimeControl(nil, At(Coarse))
	if err != nil {
		t.Fatal(err)
	}
	if r.Limit >= r.NominalTCase {
		t.Fatal("limit must sit below the nominal TCase")
	}
	// The controller must have acted, starting with the valve, and the
	// regulated temperature must respect the limit (the controller stops
	// only when it does or when remedies are exhausted).
	if r.FlowActions == 0 {
		t.Fatal("expected valve actions")
	}
	if r.FinalTCase >= r.Limit && r.FinalFlowKgH < 20 {
		t.Fatalf("regulation stopped early: TCase %.1f, limit %.1f, flow %.0f",
			r.FinalTCase, r.Limit, r.FinalFlowKgH)
	}
	if !r.QoSHeld {
		t.Fatal("controller must never break QoS")
	}
}
