package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(4, 2, 8, 2)
	if g.Cells() != 8 {
		t.Fatalf("Cells = %d", g.Cells())
	}
	if g.DX != 2 || g.DY != 1 {
		t.Fatalf("cell size %v×%v", g.DX, g.DY)
	}
	if g.Index(3, 1) != 7 {
		t.Fatalf("Index = %d", g.Index(3, 1))
	}
	cx, cy := g.CellCenter(0, 0)
	if cx != 1 || cy != 0.5 {
		t.Fatalf("center = (%v,%v)", cx, cy)
	}
	ix, iy := g.CellAt(7.9, 1.9)
	if ix != 3 || iy != 1 {
		t.Fatalf("CellAt = (%d,%d)", ix, iy)
	}
	// Clamping outside the grid.
	ix, iy = g.CellAt(-5, 100)
	if ix != 0 || iy != 1 {
		t.Fatalf("clamped CellAt = (%d,%d)", ix, iy)
	}
}

func TestRasterizeConservesPower(t *testing.T) {
	fp := BroadwellEP()
	for _, res := range []struct{ nx, ny int }{{10, 10}, {36, 27}, {52, 26}, {77, 41}} {
		grid := NewGrid(res.nx, res.ny, fp.Width, fp.Height)
		cm := Rasterize(fp, grid)
		power := map[string]float64{}
		var want float64
		for i, b := range fp.Blocks {
			p := float64(i+1) * 1.5
			power[b.Name] = p
			want += p
		}
		cells, err := cm.PowerMap(power)
		if err != nil {
			t.Fatal(err)
		}
		var got float64
		for _, p := range cells {
			got += p
		}
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("grid %dx%d: power %v, want %v", res.nx, res.ny, got, want)
		}
	}
}

func TestRasterizeBlockFractionSumsToOne(t *testing.T) {
	fp := BroadwellEP()
	grid := NewGrid(40, 30, fp.Width, fp.Height)
	cm := Rasterize(fp, grid)
	for _, name := range cm.Blocks() {
		var s float64
		for _, f := range cm.BlockFraction(name) {
			if f < 0 {
				t.Fatalf("negative coverage in %s", name)
			}
			s += f
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("block %s coverage sums to %v", name, s)
		}
	}
}

func TestPowerMapUnknownBlock(t *testing.T) {
	fp := BroadwellEP()
	cm := Rasterize(fp, NewGrid(10, 10, fp.Width, fp.Height))
	if _, err := cm.PowerMap(map[string]float64{"nope": 1}); err == nil {
		t.Fatal("unknown block must error")
	}
}

func TestPowerMapZeroPowerSkipped(t *testing.T) {
	fp := BroadwellEP()
	cm := Rasterize(fp, NewGrid(10, 10, fp.Width, fp.Height))
	cells, err := cm.PowerMap(map[string]float64{"LLC": 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cells {
		if p != 0 {
			t.Fatal("zero-power block leaked power")
		}
	}
}

func TestRasterizeDeadAreaHasNoPower(t *testing.T) {
	fp := BroadwellEP()
	grid := NewGrid(60, 40, fp.Width, fp.Height)
	cm := Rasterize(fp, grid)
	power := map[string]float64{}
	for _, b := range fp.Blocks {
		power[b.Name] = 10
	}
	cells, err := cm.PowerMap(power)
	if err != nil {
		t.Fatal(err)
	}
	// Cells wholly inside the east dead area north of the strips must be 0.
	llc, _ := fp.Block("LLC")
	deadStartX := llc.Rect.X + llc.Rect.W
	mem, _ := fp.Block("MemCtrl")
	for iy := 0; iy < grid.NY; iy++ {
		for ix := 0; ix < grid.NX; ix++ {
			r := grid.CellRect(ix, iy)
			if r.X >= deadStartX+1e-12 && r.Y+r.H <= mem.Rect.Y-1e-12 {
				if p := cells[grid.Index(ix, iy)]; p != 0 {
					t.Fatalf("dead cell (%d,%d) has power %v", ix, iy, p)
				}
			}
		}
	}
}

// Property: total power is conserved for any positive block powers and any
// reasonable grid resolution.
func TestRasterizeConservationProperty(t *testing.T) {
	fp := BroadwellEP()
	f := func(nx8, ny8 uint8, pCore, pLLC float64) bool {
		nx := 5 + int(nx8)%60
		ny := 5 + int(ny8)%60
		pc := math.Mod(math.Abs(pCore), 100) + 0.1
		pl := math.Mod(math.Abs(pLLC), 100) + 0.1
		if math.IsNaN(pc) || math.IsNaN(pl) {
			return true
		}
		cm := Rasterize(fp, NewGrid(nx, ny, fp.Width, fp.Height))
		power := map[string]float64{"Core1": pc, "LLC": pl}
		cells, err := cm.PowerMap(power)
		if err != nil {
			return false
		}
		var got float64
		for _, p := range cells {
			got += p
		}
		return math.Abs(got-(pc+pl)) < 1e-9*(pc+pl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPowerMapIntoMatchesPowerMap: the buffer-reusing variant must return
// bit-identical cell powers and actually recycle the buffer.
func TestPowerMapIntoMatchesPowerMap(t *testing.T) {
	fp := BroadwellEP()
	cm := Rasterize(fp, NewGrid(10, 10, fp.Width, fp.Height))
	bp := map[string]float64{"Core1": 7.5, "Core5": 3.25, "LLC": 2, "MemCtrl": 6.3}
	fresh, err := cm.PowerMap(bp)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, cm.Grid.Cells())
	for i := range buf {
		buf[i] = 999 // dirty: every cell must be overwritten
	}
	got, err := cm.PowerMapInto(buf, bp)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("PowerMapInto did not reuse the buffer")
	}
	for i := range fresh {
		if fresh[i] != got[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, fresh[i], got[i])
		}
	}
	if _, err := cm.PowerMapInto(buf, map[string]float64{"bogus": 1}); err == nil {
		t.Fatal("unknown block must error")
	}
	// Too-small buffers are grown, not faulted.
	grown, err := cm.PowerMapInto(make([]float64, 3), bp)
	if err != nil || len(grown) != cm.Grid.Cells() {
		t.Fatalf("grow failed: len %d err %v", len(grown), err)
	}
}
