package floorplan

import "fmt"

// Broadwell-EP deca-core die dimensions. The paper reports a 246 mm² die in
// 14 nm with two of the ten cores fused off ("reserved"), eight usable
// cores, a 25 MB LLC, a memory-controller strip and a queue/uncore/IO strip.
const (
	// BroadwellDieWidth is the east-west die extent (m).
	BroadwellDieWidth = 18.0e-3
	// BroadwellDieHeight is the north-south die extent (m). 18.0 mm ×
	// 13.67 mm ≈ 246 mm², matching the paper.
	BroadwellDieHeight = 13.67e-3

	// NumCores is the number of usable cores on the Broadwell-EP CPU.
	NumCores = 8
	// CoreRows and CoreCols describe the usable-core grid: two columns of
	// four cores each on the die's west side.
	CoreRows = 4
	// CoreCols is the number of core columns.
	CoreCols = 2
)

// Core-grid geometry (meters). Cores occupy the die's west side in two
// columns of five slots; the southernmost slot of each column is a fused-off
// reserved core, leaving a 4×2 grid of usable cores.
const (
	coreW      = 3.6e-3
	coreH      = 2.0e-3
	coreRowsNS = 5 // 4 usable + 1 reserved per column
	llcX       = 2 * coreW
	llcW       = 14.4e-3 - llcX // LLC spans from the core columns to the dead area
	deadX      = 14.4e-3        // east of this: dead silicon (no block)
	stripY     = float64(coreRowsNS) * coreH
	memCtrlH   = 1.8e-3
	uncoreH    = BroadwellDieHeight - stripY - memCtrlH
)

// CoreName returns the canonical name of usable core i (0-based index,
// "Core1" … "Core8"). Cores 1-4 are the east column, 5-8 the west column,
// matching the paper's die shot.
func CoreName(i int) string { return fmt.Sprintf("Core%d", i+1) }

// CoreIndex parses a canonical core name back to its 0-based index.
func CoreIndex(name string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(name, "Core%d", &i); err != nil || i < 1 || i > NumCores {
		return 0, false
	}
	return i - 1, true
}

// CoreGridPos returns the (row, col) of usable core i in the 4×2 usable-core
// grid. Row 0 is the northernmost row; col 0 is the west column (Cores 5-8),
// col 1 the east column (Cores 1-4).
func CoreGridPos(i int) (row, col int) {
	if i < 4 {
		return i, 1 // Core1-4: east column, top to bottom
	}
	return i - 4, 0 // Core5-8: west column, top to bottom
}

// CoreAtGridPos is the inverse of CoreGridPos.
func CoreAtGridPos(row, col int) int {
	if col == 1 {
		return row
	}
	return row + 4
}

// BroadwellEP constructs the Xeon E5 v4 deca-core die floorplan used in the
// paper's evaluation (Fig. 2c): two west-side core columns (Core5-8 west,
// Core1-4 east of them, a reserved fused-off core at the foot of each
// column), the LLC occupying the center-east, a dead area on the far east,
// and memory-controller and queue/uncore/IO strips across the south edge.
func BroadwellEP() *Floorplan {
	blocks := make([]Block, 0, 16)
	// West column: Core5..Core8 from north to south.
	for r := 0; r < CoreRows; r++ {
		blocks = append(blocks, Block{
			Name: CoreName(CoreAtGridPos(r, 0)),
			Kind: KindCore,
			Rect: Rect{X: 0, Y: float64(r) * coreH, W: coreW, H: coreH},
		})
	}
	// East core column: Core1..Core4 from north to south.
	for r := 0; r < CoreRows; r++ {
		blocks = append(blocks, Block{
			Name: CoreName(CoreAtGridPos(r, 1)),
			Kind: KindCore,
			Rect: Rect{X: coreW, Y: float64(r) * coreH, W: coreW, H: coreH},
		})
	}
	// Reserved (fused-off) cores at the southern end of each column.
	blocks = append(blocks,
		Block{Name: "ReservedW", Kind: KindReserved, Rect: Rect{X: 0, Y: float64(CoreRows) * coreH, W: coreW, H: coreH}},
		Block{Name: "ReservedE", Kind: KindReserved, Rect: Rect{X: coreW, Y: float64(CoreRows) * coreH, W: coreW, H: coreH}},
	)
	// LLC occupies the center-east region beside the cores. The area east
	// of deadX is dead silicon and deliberately has no block: it produces
	// no power, which is what skews the die's hot spots westward (§VI-A).
	blocks = append(blocks, Block{
		Name: "LLC",
		Kind: KindCache,
		Rect: Rect{X: llcX, Y: 0, W: llcW, H: stripY},
	})
	// South strips span the full die width.
	blocks = append(blocks,
		Block{Name: "MemCtrl", Kind: KindMemCtrl, Rect: Rect{X: 0, Y: stripY, W: BroadwellDieWidth, H: memCtrlH}},
		Block{Name: "Uncore", Kind: KindUncore, Rect: Rect{X: 0, Y: stripY + memCtrlH, W: BroadwellDieWidth, H: uncoreH}},
	)
	return MustNew("BroadwellEP-10c", BroadwellDieWidth, BroadwellDieHeight, blocks)
}

// PackageGeometry describes the heat spreader / package lid on which the
// thermosyphon evaporator sits. The die is centered on the spreader.
type PackageGeometry struct {
	// Width and Height are the heat-spreader extents (m).
	Width, Height float64
	// DieOffsetX and DieOffsetY locate the die's NW corner on the spreader.
	DieOffsetX, DieOffsetY float64
	// DieWidth and DieHeight are the die extents (m).
	DieWidth, DieHeight float64
}

// XeonE5Package returns the LGA2011-3 integrated-heat-spreader geometry used
// for the Xeon E5 v4, with the die centered.
func XeonE5Package() PackageGeometry {
	const w, h = 38.0e-3, 30.0e-3
	return PackageGeometry{
		Width:      w,
		Height:     h,
		DieOffsetX: (w - BroadwellDieWidth) / 2,
		DieOffsetY: (h - BroadwellDieHeight) / 2,
		DieWidth:   BroadwellDieWidth,
		DieHeight:  BroadwellDieHeight,
	}
}

// DieRectOnPackage returns the die outline in package coordinates.
func (pg PackageGeometry) DieRectOnPackage() Rect {
	return Rect{X: pg.DieOffsetX, Y: pg.DieOffsetY, W: pg.DieWidth, H: pg.DieHeight}
}
