package floorplan

import (
	"fmt"
	"testing"
)

func TestGenericMatchesBroadwellShape(t *testing.T) {
	fp, err := Generic(DefaultGridSpec(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fp.BlocksOfKind(KindCore)); got != 8 {
		t.Fatalf("got %d cores", got)
	}
	for _, name := range []string{"LLC", "MemCtrl", "Uncore"} {
		if _, ok := fp.Block(name); !ok {
			t.Fatalf("missing %s", name)
		}
	}
	// Dead area exists east of the LLC.
	if fp.CoveredArea() >= fp.Area() {
		t.Fatal("no dead area")
	}
}

func TestGenericSixteenCores(t *testing.T) {
	spec := DefaultGridSpec(4, 4)
	fp, err := Generic(spec)
	if err != nil {
		t.Fatal(err)
	}
	cores := fp.BlocksOfKind(KindCore)
	if len(cores) != 16 {
		t.Fatalf("got %d cores", len(cores))
	}
	// Core grid positions must be unique and in range.
	seen := map[[2]int]bool{}
	for i := 0; i < 16; i++ {
		r, c := GenericCoreGridPos(spec, i)
		if r < 0 || r >= 4 || c < 0 || c >= 4 {
			t.Fatalf("core %d at (%d,%d)", i, r, c)
		}
		if seen[[2]int{r, c}] {
			t.Fatalf("grid slot (%d,%d) duplicated", r, c)
		}
		seen[[2]int{r, c}] = true
		// Geometry must agree with the naming.
		blk, ok := fp.Block(fmt.Sprintf("Core%d", i+1))
		if !ok {
			t.Fatalf("Core%d missing", i+1)
		}
		wantX := float64(c) * spec.CoreW
		wantY := float64(r) * spec.CoreH
		if blk.Rect.X != wantX || blk.Rect.Y != wantY {
			t.Fatalf("Core%d at (%g,%g), want (%g,%g)", i+1, blk.Rect.X, blk.Rect.Y, wantX, wantY)
		}
	}
}

func TestGenericValidation(t *testing.T) {
	bad := []GridSpec{
		{Rows: 0, Cols: 2, CoreW: 1e-3, CoreH: 1e-3, LLCShare: 0.5},
		{Rows: 2, Cols: 2, CoreW: 0, CoreH: 1e-3, LLCShare: 0.5},
		{Rows: 2, Cols: 2, CoreW: 1e-3, CoreH: 1e-3, LLCShare: 0.95},
	}
	for i, s := range bad {
		if _, err := Generic(s); err == nil {
			t.Fatalf("spec %d should fail", i)
		}
	}
}

func TestGenericPackageCentersDie(t *testing.T) {
	fp, _ := Generic(DefaultGridSpec(4, 4))
	pg := GenericPackage(fp)
	die := pg.DieRectOnPackage()
	if die.W != fp.Width || die.H != fp.Height {
		t.Fatal("die size mismatch")
	}
	if pg.Width <= fp.Width || pg.Height <= fp.Height {
		t.Fatal("package must exceed die")
	}
}

func TestGenericRowExclusiveOrder(t *testing.T) {
	for _, dims := range [][2]int{{4, 2}, {4, 4}, {3, 3}, {2, 5}} {
		spec := DefaultGridSpec(dims[0], dims[1])
		order := GenericRowExclusiveOrder(spec)
		n := dims[0] * dims[1]
		if len(order) != n {
			t.Fatalf("%v: order length %d", dims, len(order))
		}
		seen := map[int]bool{}
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("%v: order %v not a permutation", dims, order)
			}
			seen[i] = true
		}
		// The first Rows entries cover every row exactly once.
		rows := map[int]int{}
		for _, i := range order[:spec.Rows] {
			r, _ := GenericCoreGridPos(spec, i)
			rows[r]++
		}
		for r := 0; r < spec.Rows; r++ {
			if rows[r] != 1 {
				t.Fatalf("%v: first pass row histogram %v", dims, rows)
			}
		}
		// Occupancy stays optimal at every prefix.
		for k := 1; k <= n; k++ {
			hist := map[int]int{}
			max := 0
			for _, i := range order[:k] {
				r, _ := GenericCoreGridPos(spec, i)
				hist[r]++
				if hist[r] > max {
					max = hist[r]
				}
			}
			want := (k + spec.Rows - 1) / spec.Rows
			if max != want {
				t.Fatalf("%v: prefix %d max-per-row %d, want %d", dims, k, max, want)
			}
		}
	}
}
