package floorplan

import "fmt"

// The paper notes (§III) that the evaporator scales linearly with the CPU
// dimension; this file provides scaled die variants so the mapping policy
// can be exercised beyond the 8-core Broadwell-EP — e.g. a 16-core die —
// as a forward-looking extension study.

// GridSpec describes a generic core-grid die: Rows×Cols usable cores laid
// out like the Broadwell floorplan (west-side core columns, center LLC,
// east dead area, south uncore strips).
type GridSpec struct {
	Rows, Cols int
	// CoreW, CoreH are the per-core dimensions (m).
	CoreW, CoreH float64
	// LLCShare is the fraction of the die width granted to the LLC+dead
	// region east of the cores.
	LLCShare float64
}

// DefaultGridSpec mirrors the Broadwell-EP proportions for the given core
// grid.
func DefaultGridSpec(rows, cols int) GridSpec {
	return GridSpec{
		Rows:     rows,
		Cols:     cols,
		CoreW:    3.6e-3,
		CoreH:    2.0e-3,
		LLCShare: 0.55,
	}
}

// Generic builds a scaled die floorplan with rows×cols usable cores. The
// layout follows the Broadwell pattern: core columns on the west, an LLC
// block east of them, a dead strip on the far east, and memory-controller
// plus uncore strips across the south. Core naming is Core1..CoreN in the
// same column-major order as the Broadwell floorplan.
func Generic(spec GridSpec) (*Floorplan, error) {
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, fmt.Errorf("floorplan: invalid core grid %d×%d", spec.Rows, spec.Cols)
	}
	if spec.CoreW <= 0 || spec.CoreH <= 0 {
		return nil, fmt.Errorf("floorplan: non-positive core size")
	}
	if spec.LLCShare < 0.1 || spec.LLCShare > 0.8 {
		return nil, fmt.Errorf("floorplan: LLC share %.2f outside [0.1,0.8]", spec.LLCShare)
	}
	n := spec.Rows * spec.Cols
	coreAreaW := float64(spec.Cols) * spec.CoreW
	dieW := coreAreaW / (1 - spec.LLCShare)
	coreAreaH := float64(spec.Rows) * spec.CoreH
	memH := 1.8e-3
	uncoreH := 1.87e-3
	dieH := coreAreaH + memH + uncoreH

	blocks := make([]Block, 0, n+4)
	// Column-major like Broadwell: the east-most column holds Core1..CoreR
	// top to bottom, then the column west of it, and so on.
	idx := 1
	for col := spec.Cols - 1; col >= 0; col-- {
		for row := 0; row < spec.Rows; row++ {
			blocks = append(blocks, Block{
				Name: fmt.Sprintf("Core%d", idx),
				Kind: KindCore,
				Rect: Rect{
					X: float64(col) * spec.CoreW,
					Y: float64(row) * spec.CoreH,
					W: spec.CoreW,
					H: spec.CoreH,
				},
			})
			idx++
		}
	}
	llcW := (dieW - coreAreaW) * 0.8 // the remaining 20% stays dead
	blocks = append(blocks,
		Block{Name: "LLC", Kind: KindCache, Rect: Rect{X: coreAreaW, Y: 0, W: llcW, H: coreAreaH}},
		Block{Name: "MemCtrl", Kind: KindMemCtrl, Rect: Rect{X: 0, Y: coreAreaH, W: dieW, H: memH}},
		Block{Name: "Uncore", Kind: KindUncore, Rect: Rect{X: 0, Y: coreAreaH + memH, W: dieW, H: uncoreH}},
	)
	return New(fmt.Sprintf("generic-%dx%d", spec.Rows, spec.Cols), dieW, dieH, blocks)
}

// GenericPackage returns a package geometry for a generic die, keeping the
// Broadwell margin proportions.
func GenericPackage(fp *Floorplan) PackageGeometry {
	const marginX, marginY = 10.0e-3, 8.165e-3
	return PackageGeometry{
		Width:      fp.Width + 2*marginX,
		Height:     fp.Height + 2*marginY,
		DieOffsetX: marginX,
		DieOffsetY: marginY,
		DieWidth:   fp.Width,
		DieHeight:  fp.Height,
	}
}

// GenericCoreGridPos returns the (row, col) of core index i (0-based) on a
// generic rows×cols die built by Generic.
func GenericCoreGridPos(spec GridSpec, i int) (row, col int) {
	colFromEast := i / spec.Rows
	return i % spec.Rows, spec.Cols - 1 - colFromEast
}

// GenericRowExclusiveOrder builds the proposed placement order for a
// generic die: one core per row first (round-robin over columns starting
// west), then refilling row by row.
func GenericRowExclusiveOrder(spec GridSpec) []int {
	n := spec.Rows * spec.Cols
	// index lookup: core index at (row, col).
	at := make(map[[2]int]int, n)
	for i := 0; i < n; i++ {
		r, c := GenericCoreGridPos(spec, i)
		at[[2]int{r, c}] = i
	}
	var order []int
	for pass := 0; pass < spec.Cols; pass++ {
		for row := 0; row < spec.Rows; row++ {
			// Stagger the starting column per row so consecutive rows do
			// not stack in the same column.
			col := (row + pass) % spec.Cols
			order = append(order, at[[2]int{row, col}])
		}
	}
	return order
}
