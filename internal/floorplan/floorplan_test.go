package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	if r.Area() != 12 {
		t.Fatalf("Area = %v", r.Area())
	}
	if r.CenterX() != 2.5 || r.CenterY() != 4 {
		t.Fatalf("center = (%v,%v)", r.CenterX(), r.CenterY())
	}
	if !r.Contains(1, 2) || r.Contains(4, 6) || r.Contains(0.9, 3) {
		t.Fatal("Contains wrong")
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 2, H: 2}
	b := Rect{X: 1, Y: 1, W: 2, H: 2}
	if got := a.Intersect(b); got != 1 {
		t.Fatalf("Intersect = %v, want 1", got)
	}
	c := Rect{X: 5, Y: 5, W: 1, H: 1}
	if a.Intersect(c) != 0 || a.Overlaps(c) {
		t.Fatal("disjoint rects should not intersect")
	}
	if !a.Overlaps(b) {
		t.Fatal("overlapping rects should overlap")
	}
	// Touching edges: zero-area intersection.
	d := Rect{X: 2, Y: 0, W: 1, H: 2}
	if a.Intersect(d) != 0 {
		t.Fatal("edge-touching rects must have zero intersection")
	}
}

func TestIntersectSymmetricProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{X: ax, Y: ay, W: math.Abs(aw) + 0.01, H: math.Abs(ah) + 0.01}
		b := Rect{X: bx, Y: by, W: math.Abs(bw) + 0.01, H: math.Abs(bh) + 0.01}
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if math.Abs(i1-i2) > 1e-9*(1+i1) {
			return false
		}
		// Intersection can never exceed either area.
		return i1 <= a.Area()+1e-9 && i1 <= b.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	good := []Block{{Name: "a", Rect: Rect{X: 0, Y: 0, W: 1, H: 1}}}
	if _, err := New("fp", 2, 2, good); err != nil {
		t.Fatalf("valid floorplan rejected: %v", err)
	}
	cases := []struct {
		name   string
		w, h   float64
		blocks []Block
	}{
		{"zero die", 0, 1, nil},
		{"block outside", 2, 2, []Block{{Name: "a", Rect: Rect{X: 1.5, Y: 0, W: 1, H: 1}}}},
		{"zero-size block", 2, 2, []Block{{Name: "a", Rect: Rect{X: 0, Y: 0, W: 0, H: 1}}}},
		{"overlap", 2, 2, []Block{
			{Name: "a", Rect: Rect{X: 0, Y: 0, W: 1, H: 1}},
			{Name: "b", Rect: Rect{X: 0.5, Y: 0.5, W: 1, H: 1}},
		}},
		{"duplicate name", 2, 2, []Block{
			{Name: "a", Rect: Rect{X: 0, Y: 0, W: 0.5, H: 0.5}},
			{Name: "a", Rect: Rect{X: 1, Y: 1, W: 0.5, H: 0.5}},
		}},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.w, c.h, c.blocks); err == nil {
			t.Fatalf("%s: expected validation error", c.name)
		}
	}
}

func TestBroadwellEPGeometry(t *testing.T) {
	fp := BroadwellEP()
	areaMM2 := fp.Area() * 1e6
	if math.Abs(areaMM2-246) > 1 {
		t.Fatalf("die area = %.1f mm², want ≈246", areaMM2)
	}
	cores := fp.BlocksOfKind(KindCore)
	if len(cores) != NumCores {
		t.Fatalf("got %d cores, want %d", len(cores), NumCores)
	}
	if res := fp.BlocksOfKind(KindReserved); len(res) != 2 {
		t.Fatalf("got %d reserved blocks, want 2", len(res))
	}
	for _, name := range []string{"LLC", "MemCtrl", "Uncore"} {
		if _, ok := fp.Block(name); !ok {
			t.Fatalf("missing block %q", name)
		}
	}
	// Dead area exists: covered area strictly less than die area.
	if fp.CoveredArea() >= fp.Area() {
		t.Fatal("expected uncovered dead silicon on the east side")
	}
	// All cores sit west of the LLC.
	llc, _ := fp.Block("LLC")
	for _, c := range cores {
		if c.Rect.X+c.Rect.W > llc.Rect.X+1e-12 {
			t.Fatalf("core %s overlaps LLC region", c.Name)
		}
	}
}

func TestCoreNaming(t *testing.T) {
	for i := 0; i < NumCores; i++ {
		name := CoreName(i)
		j, ok := CoreIndex(name)
		if !ok || j != i {
			t.Fatalf("CoreIndex(CoreName(%d)) = %d,%v", i, j, ok)
		}
	}
	if _, ok := CoreIndex("Core9"); ok {
		t.Fatal("Core9 must be invalid")
	}
	if _, ok := CoreIndex("LLC"); ok {
		t.Fatal("LLC is not a core")
	}
}

func TestCoreGridRoundTrip(t *testing.T) {
	seen := map[[2]int]bool{}
	for i := 0; i < NumCores; i++ {
		r, c := CoreGridPos(i)
		if r < 0 || r >= CoreRows || c < 0 || c >= CoreCols {
			t.Fatalf("core %d grid pos (%d,%d) out of range", i, r, c)
		}
		key := [2]int{r, c}
		if seen[key] {
			t.Fatalf("grid pos (%d,%d) assigned twice", r, c)
		}
		seen[key] = true
		if CoreAtGridPos(r, c) != i {
			t.Fatalf("CoreAtGridPos(%d,%d) = %d, want %d", r, c, CoreAtGridPos(r, c), i)
		}
	}
}

func TestCoreGeometryMatchesGrid(t *testing.T) {
	fp := BroadwellEP()
	// Cores in the same grid row must share their y extent; same column,
	// their x extent. This is what "same horizontal line" means in §VII.
	for i := 0; i < NumCores; i++ {
		bi, _ := fp.Block(CoreName(i))
		ri, ci := CoreGridPos(i)
		for j := i + 1; j < NumCores; j++ {
			bj, _ := fp.Block(CoreName(j))
			rj, cj := CoreGridPos(j)
			if ri == rj && math.Abs(bi.Rect.Y-bj.Rect.Y) > 1e-12 {
				t.Fatalf("cores %d,%d share row but not y", i, j)
			}
			if ci == cj && math.Abs(bi.Rect.X-bj.Rect.X) > 1e-12 {
				t.Fatalf("cores %d,%d share col but not x", i, j)
			}
		}
	}
}

func TestXeonE5PackageCentersDie(t *testing.T) {
	pg := XeonE5Package()
	die := pg.DieRectOnPackage()
	left := die.X
	right := pg.Width - (die.X + die.W)
	if math.Abs(left-right) > 1e-12 {
		t.Fatalf("die not centered horizontally: %v vs %v", left, right)
	}
	top := die.Y
	bottom := pg.Height - (die.Y + die.H)
	if math.Abs(top-bottom) > 1e-12 {
		t.Fatalf("die not centered vertically: %v vs %v", top, bottom)
	}
	if die.W > pg.Width || die.H > pg.Height {
		t.Fatal("die larger than spreader")
	}
}
