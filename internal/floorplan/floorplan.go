// Package floorplan models die and package geometry: rectangular functional
// blocks, the Intel Xeon E5 v4 (Broadwell-EP) deca-core die floorplan used
// throughout the paper, and rasterization of per-block power onto the
// structured grids consumed by the thermal simulator.
//
// Coordinates follow the paper's figures: x grows eastward (left→right) and
// y grows southward (top→bottom), with the origin at the die's north-west
// corner. All lengths are in meters.
package floorplan

import (
	"fmt"
	"sort"
)

// BlockKind categorizes a functional block for power modeling.
type BlockKind int

// Block kinds present on the Broadwell-EP die.
const (
	KindCore BlockKind = iota
	KindCache
	KindMemCtrl
	KindUncore
	KindReserved // fused-off cores: the die's dead area
)

// String returns a human-readable kind name.
func (k BlockKind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindCache:
		return "cache"
	case KindMemCtrl:
		return "memctrl"
	case KindUncore:
		return "uncore"
	case KindReserved:
		return "reserved"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rect is an axis-aligned rectangle. X,Y locate the north-west corner.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle area in m².
func (r Rect) Area() float64 { return r.W * r.H }

// CenterX and CenterY return the rectangle centroid.
func (r Rect) CenterX() float64 { return r.X + r.W/2 }

// CenterY returns the y coordinate of the rectangle centroid.
func (r Rect) CenterY() float64 { return r.Y + r.H/2 }

// Contains reports whether the point (x,y) lies inside the rectangle
// (inclusive of the north/west edges, exclusive of south/east).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Intersect returns the overlapping area of r and s in m² (0 if disjoint).
func (r Rect) Intersect(s Rect) float64 {
	w := minF(r.X+r.W, s.X+s.W) - maxF(r.X, s.X)
	h := minF(r.Y+r.H, s.Y+s.H) - maxF(r.Y, s.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Overlaps reports whether r and s overlap with positive area.
func (r Rect) Overlaps(s Rect) bool { return r.Intersect(s) > 0 }

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Block is a named functional unit on the die.
type Block struct {
	Name string
	Kind BlockKind
	Rect Rect
}

// Floorplan is a set of non-overlapping blocks within a die outline.
type Floorplan struct {
	Name   string
	Width  float64 // die extent in x (m)
	Height float64 // die extent in y (m)
	Blocks []Block

	byName map[string]int
}

// New builds a floorplan and validates that every block lies within the die
// outline and that no two blocks overlap.
func New(name string, width, height float64, blocks []Block) (*Floorplan, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("floorplan %q: non-positive die size %g×%g", name, width, height)
	}
	fp := &Floorplan{Name: name, Width: width, Height: height, Blocks: blocks, byName: make(map[string]int, len(blocks))}
	const eps = 1e-9
	for i, b := range blocks {
		if b.Rect.W <= 0 || b.Rect.H <= 0 {
			return nil, fmt.Errorf("floorplan %q: block %q has non-positive size", name, b.Name)
		}
		if b.Rect.X < -eps || b.Rect.Y < -eps || b.Rect.X+b.Rect.W > width+eps || b.Rect.Y+b.Rect.H > height+eps {
			return nil, fmt.Errorf("floorplan %q: block %q exceeds die outline", name, b.Name)
		}
		if _, dup := fp.byName[b.Name]; dup {
			return nil, fmt.Errorf("floorplan %q: duplicate block name %q", name, b.Name)
		}
		fp.byName[b.Name] = i
		for j := 0; j < i; j++ {
			if ov := b.Rect.Intersect(blocks[j].Rect); ov > eps*eps {
				return nil, fmt.Errorf("floorplan %q: blocks %q and %q overlap by %g m²", name, b.Name, blocks[j].Name, ov)
			}
		}
	}
	return fp, nil
}

// MustNew is New that panics on error; for the built-in floorplans.
func MustNew(name string, width, height float64, blocks []Block) *Floorplan {
	fp, err := New(name, width, height, blocks)
	if err != nil {
		panic(err)
	}
	return fp
}

// Block returns the named block, or false if absent.
func (fp *Floorplan) Block(name string) (Block, bool) {
	i, ok := fp.byName[name]
	if !ok {
		return Block{}, false
	}
	return fp.Blocks[i], true
}

// BlocksOfKind returns the blocks of the given kind, sorted by name.
func (fp *Floorplan) BlocksOfKind(kind BlockKind) []Block {
	var out []Block
	for _, b := range fp.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Area returns the die area in m².
func (fp *Floorplan) Area() float64 { return fp.Width * fp.Height }

// CoveredArea returns the total block area in m².
func (fp *Floorplan) CoveredArea() float64 {
	var s float64
	for _, b := range fp.Blocks {
		s += b.Rect.Area()
	}
	return s
}
