package floorplan

import "fmt"

// Grid is a uniform 2-D rasterization target. Cell (ix, iy) covers the area
// [ix·dx, (ix+1)·dx) × [iy·dy, (iy+1)·dy) offset by (OriginX, OriginY).
type Grid struct {
	NX, NY           int
	DX, DY           float64
	OriginX, OriginY float64
}

// NewGrid returns a grid of nx×ny cells covering width×height from (0,0).
func NewGrid(nx, ny int, width, height float64) Grid {
	return Grid{NX: nx, NY: ny, DX: width / float64(nx), DY: height / float64(ny)}
}

// Cells returns the total cell count.
func (g Grid) Cells() int { return g.NX * g.NY }

// Index linearizes (ix, iy) in row-major order (iy outer).
func (g Grid) Index(ix, iy int) int { return iy*g.NX + ix }

// CellRect returns the rectangle of cell (ix, iy).
func (g Grid) CellRect(ix, iy int) Rect {
	return Rect{
		X: g.OriginX + float64(ix)*g.DX,
		Y: g.OriginY + float64(iy)*g.DY,
		W: g.DX,
		H: g.DY,
	}
}

// CellCenter returns the centroid of cell (ix, iy).
func (g Grid) CellCenter(ix, iy int) (x, y float64) {
	return g.OriginX + (float64(ix)+0.5)*g.DX, g.OriginY + (float64(iy)+0.5)*g.DY
}

// CellAt returns the cell containing the point (x, y), clamped to the grid.
func (g Grid) CellAt(x, y float64) (ix, iy int) {
	ix = int((x - g.OriginX) / g.DX)
	iy = int((y - g.OriginY) / g.DY)
	if ix < 0 {
		ix = 0
	}
	if ix >= g.NX {
		ix = g.NX - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return ix, iy
}

// CoverageMap holds, for each block, the fraction of the block's area
// falling in each grid cell. It lets callers turn per-block power into
// per-cell power without re-rasterizing geometry every step.
type CoverageMap struct {
	Grid   Grid
	blocks []string
	// frac[b][cell] = (area of block b ∩ cell) / (area of block b)
	frac map[string][]float64
}

// Rasterize computes the coverage of every floorplan block on the grid.
// The grid origin is expressed in the same coordinate frame as the
// floorplan (use Grid.OriginX/Y to place a die on a larger spreader grid).
func Rasterize(fp *Floorplan, grid Grid) *CoverageMap {
	cm := &CoverageMap{Grid: grid, frac: make(map[string][]float64, len(fp.Blocks))}
	for _, b := range fp.Blocks {
		f := make([]float64, grid.Cells())
		area := b.Rect.Area()
		// Restrict the scan to cells that can overlap the block.
		ix0, iy0 := grid.CellAt(b.Rect.X, b.Rect.Y)
		ix1, iy1 := grid.CellAt(b.Rect.X+b.Rect.W-1e-12, b.Rect.Y+b.Rect.H-1e-12)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				if ov := b.Rect.Intersect(grid.CellRect(ix, iy)); ov > 0 {
					f[grid.Index(ix, iy)] = ov / area
				}
			}
		}
		cm.blocks = append(cm.blocks, b.Name)
		cm.frac[b.Name] = f
	}
	return cm
}

// PowerMap distributes the given per-block powers (W) onto the grid,
// returning per-cell power (W). Blocks absent from the map contribute
// nothing. An error is reported for powers naming unknown blocks.
// Accumulation runs in rasterization order, not map order: float addition
// is not associative and Go randomizes map iteration, so summing in a
// fixed order is what keeps repeated solves bit-identical.
func (cm *CoverageMap) PowerMap(blockPower map[string]float64) ([]float64, error) {
	return cm.PowerMapInto(nil, blockPower)
}

// PowerMapInto is PowerMap writing into a caller-owned buffer, grown as
// needed and returned — the allocation-free variant solve sessions use.
// The buffer is fully overwritten; accumulation order is identical to
// PowerMap, so the results are bit-identical.
func (cm *CoverageMap) PowerMapInto(dst []float64, blockPower map[string]float64) ([]float64, error) {
	for name := range blockPower {
		if _, ok := cm.frac[name]; !ok {
			return nil, fmt.Errorf("floorplan: power assigned to unknown block %q", name)
		}
	}
	cells := cm.Grid.Cells()
	if cap(dst) < cells {
		dst = make([]float64, cells)
	}
	out := dst[:cells]
	for i := range out {
		out[i] = 0
	}
	for _, name := range cm.blocks {
		p, ok := blockPower[name]
		if !ok || p == 0 {
			continue
		}
		for i, fr := range cm.frac[name] {
			if fr != 0 {
				out[i] += p * fr
			}
		}
	}
	return out, nil
}

// BlockFraction returns the coverage vector of one block (nil if unknown).
func (cm *CoverageMap) BlockFraction(name string) []float64 { return cm.frac[name] }

// Blocks returns the rasterized block names in floorplan order.
func (cm *CoverageMap) Blocks() []string { return cm.blocks }
