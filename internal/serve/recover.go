package serve

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/debug"
	"time"
)

// debugLogWriter receives recovered-panic reports. It is a variable so
// the chaos test can capture (and silence) the expected panic spam.
var debugLogWriter io.Writer = os.Stderr

// recoverMiddleware turns a handler panic into a structured 500 instead
// of killing the process: the panic value and stack go to stderr via the
// standard log of last resort (os.Stderr through debug.PrintStack-style
// output), the client gets a JSON error, and the panics_recovered
// counter makes the event observable in /v1/stats. A panic after the
// handler already started writing cannot be turned into a clean 500 —
// the WriteHeader below is then a no-op and the client sees a truncated
// body — but the process survives either way, which is the contract a
// long-running digital twin actually needs.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.stats.panicsRecovered.Add(1)
				fmt.Fprintf(debugLogWriter, "serve: recovered panic in %s %s: %v\n%s",
					r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal panic (recovered): %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// chaosMiddleware applies the armed infrastructure chaos to a request:
// injected latency first, then a possible injected panic (which the
// recovery middleware above must catch — chaos deliberately sits inside
// it). Disarmed chaos costs one mutex-guarded nil check.
func (s *Server) chaosMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c := s.loadChaos(); c != nil {
			if d := c.latency(); d > 0 {
				time.Sleep(d)
			}
			if c.roll(c.cfg.PanicRate) {
				panic("chaos-injected handler panic")
			}
		}
		next.ServeHTTP(w, r)
	})
}
