package serve

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ChaosConfig arms deterministic infrastructure-fault injection inside a
// Server — the service-layer extension of the internal/faults idea: where
// a faults.Scenario derates pumps and condensers, chaos derates the
// *service* (latency, panics, sabotaged solvers, poisoned leases). Every
// decision is drawn from one seeded PRNG, so a chaos run replays the
// same fault sequence for the same seed; the chaos test leans on that to
// assert invariants (bounded error rates, byte-deterministic successes,
// clean drains) instead of eyeballing flakes.
//
// Chaos is a test/drill facility: it is armed through Server.SetChaos,
// never through configuration or an endpoint.
type ChaosConfig struct {
	// Seed fixes the PRNG (0 is a valid, fixed seed).
	Seed int64
	// LatencyRate is the probability a request sleeps a uniform random
	// duration up to MaxLatency before being handled.
	LatencyRate float64
	MaxLatency  time.Duration
	// PanicRate is the probability a request panics mid-handler — the
	// recovery middleware must turn it into a structured 500.
	PanicRate float64
	// SabotageRate is the probability a steady solve runs with the
	// multigrid fault hook armed (cosim.Session.InjectMGFault): the
	// escalation ladder rescues the solve, and the breaker sees the storm.
	SabotageRate float64
	// FailRate is the probability a steady solve fails outright with an
	// injected solver error (counted by the breaker, lease evicted).
	FailRate float64
	// PoisonRate is the probability a *successful* steady solve releases
	// its lease poisoned, forcing the next request on the key to rebuild.
	PoisonRate float64
}

// errChaosFail is the injected hard solver failure.
var errChaosFail = errors.New("serve: chaos-injected solve failure")

// chaos is the armed injector. All rolls serialize through mu: the draw
// *sequence* is deterministic in the seed even though which request gets
// which draw depends on goroutine interleaving.
type chaos struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg ChaosConfig
}

// SetChaos arms fault injection (nil disarms). Safe to call on a live
// server; in-flight requests finish under the previous regime.
func (s *Server) SetChaos(cfg *ChaosConfig) {
	s.chaosMu.Lock()
	defer s.chaosMu.Unlock()
	if cfg == nil {
		s.chaos = nil
		return
	}
	s.chaos = &chaos{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: *cfg}
}

// loadChaos returns the armed injector, or nil.
func (s *Server) loadChaos() *chaos {
	s.chaosMu.Lock()
	defer s.chaosMu.Unlock()
	return s.chaos
}

// roll draws one Bernoulli decision.
func (c *chaos) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < rate
}

// latency draws an injected handler delay (0 = none this time).
func (c *chaos) latency() time.Duration {
	if c.cfg.LatencyRate <= 0 || c.cfg.MaxLatency <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.cfg.LatencyRate {
		return 0
	}
	return time.Duration(c.rng.Int63n(int64(c.cfg.MaxLatency)))
}
