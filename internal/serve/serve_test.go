package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// newTestServer builds a coarse-resolution server sized for tests.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// post issues a JSON POST against a handler and returns the recorder.
func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestSteadyBasics(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	w := post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("steady: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	var resp SteadyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.DieMaxC <= resp.Proposal.WaterC {
		t.Fatalf("die max %.1f not above water %.1f", resp.DieMaxC, resp.Proposal.WaterC)
	}
	if resp.TCaseC >= resp.DieMaxC {
		t.Fatalf("tcase %.1f should sit below die max %.1f", resp.TCaseC, resp.DieMaxC)
	}
	if len(resp.Blocks) == 0 {
		t.Fatal("no per-block temperatures")
	}
	if resp.TotalPowerW <= 0 || resp.Cooling.PUE <= 1 {
		t.Fatalf("power %.1f, PUE %.3f", resp.TotalPowerW, resp.Cooling.PUE)
	}
	// Defaults echoed in the normalized proposal.
	p := resp.Proposal
	if p.Cores != 8 || p.FreqGHz != 3.2 || p.Idle != "POLL" || len(p.ActiveCores) != 8 {
		t.Fatalf("unexpected normalized proposal: %+v", p)
	}

	// The identical proposal answers from the memo.
	w2 := post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("hit body differs from miss body")
	}
	// A differently-spelled identical proposal (explicit defaults) shares
	// the cache line.
	w3 := post(t, h, "/v1/steady",
		`{"benchmark":"x264","cores":8,"threads":8,"freq_ghz":3.2,"idle":"POLL","active_cores":[7,6,5,4,3,2,1,0],"water_c":30,"water_flow_kgh":7}`)
	if got := w3.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("normalized respelling X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w.Body.Bytes(), w3.Body.Bytes()) {
		t.Fatal("respelled proposal body differs")
	}
}

func TestSteadyExplicitPowerAndFaults(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	w := post(t, h, "/v1/steady", `{"block_power_w":{"Core1":12,"Core2":12,"LLC":8},"water_c":30,"water_flow_kgh":7}`)
	if w.Code != http.StatusOK {
		t.Fatalf("explicit power: %d %s", w.Code, w.Body)
	}
	var base SteadyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}

	// A pump fault derates flow and must run hotter (or at least not
	// cooler) than the healthy solve.
	wf := post(t, h, "/v1/steady", `{"block_power_w":{"Core1":12,"Core2":12,"LLC":8},"water_c":30,"water_flow_kgh":7,"fault":"pump:0.5"}`)
	if wf.Code != http.StatusOK {
		t.Fatalf("faulted: %d %s", wf.Code, wf.Body)
	}
	var faulted SteadyResponse
	if err := json.Unmarshal(wf.Body.Bytes(), &faulted); err != nil {
		t.Fatal(err)
	}
	if faulted.FlowKgHUsed >= base.FlowKgHUsed {
		t.Fatalf("pump:0.5 flow %.2f should derate below %.2f", faulted.FlowKgHUsed, base.FlowKgHUsed)
	}
	if faulted.DieMaxC < base.DieMaxC {
		t.Fatalf("faulted die %.2f cooler than healthy %.2f", faulted.DieMaxC, base.DieMaxC)
	}
}

func TestSteadyRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"unknown benchmark", `{"benchmark":"doom"}`},
		{"both power sources", `{"benchmark":"x264","block_power_w":{"Core1":5}}`},
		{"unknown block", `{"block_power_w":{"warpcore":5}}`},
		{"negative power", `{"block_power_w":{"Core1":-5}}`},
		{"bad freq", `{"benchmark":"x264","freq_ghz":4.5}`},
		{"bad idle", `{"benchmark":"x264","idle":"C9"}`},
		{"dup cores", `{"benchmark":"x264","cores":2,"threads":2,"active_cores":[3,3]}`},
		{"core range", `{"benchmark":"x264","cores":1,"threads":1,"active_cores":[9]}`},
		{"bad fault", `{"benchmark":"x264","fault":"gremlin:0.5"}`},
		{"bad solver", `{"benchmark":"x264","solver":"gauss"}`},
		{"bad resolution", `{"benchmark":"x264","resolution":"ultra"}`},
		{"unknown field", `{"benchmark":"x264","turbo":true}`},
		{"bad water", `{"benchmark":"x264","water_c":-5,"water_flow_kgh":7}`},
	}
	for _, c := range cases {
		if w := post(t, h, "/v1/steady", c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (%s)", c.name, w.Code, w.Body)
		}
	}
	if w := get(t, h, "/v1/steady"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET steady: got %d, want 405", w.Code)
	}
}

// TestSteadyConcurrentDeterminism is the service-level byte-determinism
// contract: concurrent clients asking the same question get byte-identical
// bodies, a recompute after memo eviction matches, and a fresh server
// matches too.
func TestSteadyConcurrentDeterminism(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	body := `{"benchmark":"streamcluster","cores":4,"threads":4,"freq_ghz":2.6,"idle":"C6"}`

	const clients = 8
	results := make([][]byte, clients)
	done := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			w := post(t, h, "/v1/steady", body)
			if w.Code == http.StatusOK {
				results[i] = w.Body.Bytes()
			}
			done <- i
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-done
	}
	for i := 1; i < clients; i++ {
		if results[i] == nil || !bytes.Equal(results[0], results[i]) {
			t.Fatalf("client %d body differs from client 0", i)
		}
	}
	// Exactly one solve happened: the racers collapsed onto the memo.
	if st := s.Snapshot(); st.MemoMisses != 1 {
		t.Fatalf("%d misses for %d identical concurrent clients, want 1", st.MemoMisses, clients)
	}

	// Recompute after memo eviction: byte-identical (warm-carry is off by
	// default, so the session seeds like a fresh one).
	s.memo.reset()
	w := post(t, h, "/v1/steady", body)
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("post-reset X-Cache = %q, want miss", got)
	}
	if !bytes.Equal(results[0], w.Body.Bytes()) {
		t.Fatal("recomputed body differs from original")
	}

	// A fresh server answers byte-identically.
	s2 := newTestServer(t, Config{})
	w2 := post(t, s2.Handler(), "/v1/steady", body)
	if !bytes.Equal(results[0], w2.Body.Bytes()) {
		t.Fatal("fresh-server body differs")
	}
}

// TestSteadyBackpressure drives the admission queue to refusal: with every
// solve slot held and the wait queue full, a new proposal is refused with
// 429 + Retry-After instead of queueing unboundedly.
func TestSteadyBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Threads: 1, QueueDepth: 1})
	h := s.Handler()

	// Hold the only solve slot directly.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()

	// Fill the single queue slot with a request that waits on a
	// cancellable context.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/steady",
			strings.NewReader(`{"benchmark":"x264"}`)).WithContext(ctx)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		queued <- w.Code
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.waiting.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never started waiting")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next distinct proposal is refused.
	w := post(t, h, "/v1/steady", `{"benchmark":"canneal"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload: got %d, want 429 (%s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if st := s.Snapshot(); st.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", st.Rejected)
	}

	cancel()
	if code := <-queued; code == http.StatusOK {
		t.Fatal("cancelled queued request reported 200")
	}
}

func TestLeaseEviction(t *testing.T) {
	s := newTestServer(t, Config{Sessions: 1})
	h := s.Handler()
	// Distinct benchmarks are distinct lease keys; push enough through a
	// 1-per-shard cache to force evictions.
	for _, b := range []string{"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
		"ferret", "fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions", "vips", "x264"} {
		w := post(t, h, "/v1/steady", fmt.Sprintf(`{"benchmark":%q}`, b))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", b, w.Code, w.Body)
		}
	}
	st := s.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("13 distinct keys through a 1-session-per-shard cache evicted nothing")
	}
	if st.Sessions > leaseShardCount {
		t.Fatalf("%d sessions cached, cap is %d", st.Sessions, leaseShardCount)
	}
	// Every evicted key still answers (rebuilt), and the memo still hits.
	w := post(t, h, "/v1/steady", `{"benchmark":"blackscholes"}`)
	if got := w.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("memo should outlive lease eviction, got X-Cache=%q", got)
	}
}

func TestTransientLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	var st TransientStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Blade != "b0" || st.TimeS != 0 || st.BasePowerW <= 0 {
		t.Fatalf("register status: %+v", st)
	}
	if w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusConflict {
		t.Fatalf("duplicate register: %d, want 409", w.Code)
	}

	// Advance a chunk; time accumulates across chunks.
	w = post(t, h, "/v1/transient/b0/step", `{"dt_s":0.1,"steps":[{},{},{},{},{}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("step: %d %s", w.Code, w.Body)
	}
	var out struct {
		Samples []TransientSample `json:"samples"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 5 {
		t.Fatalf("%d samples, want 5", len(out.Samples))
	}
	last := out.Samples[4]
	if last.TimeS < 0.5-1e-9 {
		t.Fatalf("time %.3f after 5×0.1 s", last.TimeS)
	}
	if last.DieMaxC <= 30 {
		t.Fatalf("die %.1f did not heat from the 30 °C start", last.DieMaxC)
	}
	// A second chunk continues the same state.
	w = post(t, h, "/v1/transient/b0/step", `{"dt_s":0.1,"steps":[{"load":0.5}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("chunk 2: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Samples[0].TimeS < 0.6-1e-9 {
		t.Fatalf("time %.3f did not persist across chunks", out.Samples[0].TimeS)
	}

	if w := get(t, h, "/v1/transient/b0"); w.Code != http.StatusOK {
		t.Fatalf("status: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodDelete, "/v1/transient/b0", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("release: %d %s", rw.Code, rw.Body)
	}
	if w := get(t, h, "/v1/transient/b0"); w.Code != http.StatusNotFound {
		t.Fatalf("status after release: %d, want 404", w.Code)
	}
	if w := post(t, h, "/v1/transient/b0/step", `{"dt_s":0.1,"steps":[{}]}`); w.Code != http.StatusNotFound {
		t.Fatalf("step after release: %d, want 404", w.Code)
	}
}

func TestTransientValidation(t *testing.T) {
	s := newTestServer(t, Config{Transients: 1, MaxSteps: 4})
	h := s.Handler()
	if w := post(t, h, "/v1/transient", `{"benchmark":"x264"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("nameless register: %d, want 400", w.Code)
	}
	if w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/transient", `{"blade":"b1","benchmark":"x264"}`); w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity register: %d, want 429", w.Code)
	}
	bad := []struct{ name, body string }{
		{"zero dt", `{"dt_s":0,"steps":[{}]}`},
		{"no steps", `{"dt_s":0.1}`},
		{"chunk too long", `{"dt_s":0.1,"steps":[{},{},{},{},{}]}`},
		{"both sources", `{"dt_s":0.1,"steps":[{"load":1,"block_power_w":{"Core1":5}}]}`},
		{"unknown block", `{"dt_s":0.1,"steps":[{"block_power_w":{"flux":5}}]}`},
		{"negative load", `{"dt_s":0.1,"steps":[{"load":-1}]}`},
	}
	for _, c := range bad {
		if w := post(t, h, "/v1/transient/b0/step", c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400 (%s)", c.name, w.Code, w.Body)
		}
	}
}

func TestExperimentsEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	w := get(t, h, "/v1/experiments")
	if w.Code != http.StatusOK {
		t.Fatalf("list: %d", w.Code)
	}
	var list struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	names := experiments.Names()
	if len(list.Experiments) != len(names) {
		t.Fatalf("%d experiments listed, registry has %d", len(list.Experiments), len(names))
	}
	for i, e := range list.Experiments {
		if e.Name != names[i] {
			t.Fatalf("order: %q at %d, want %q", e.Name, i, names[i])
		}
	}

	// tablei is solve-free: cheap enough to run end to end.
	w = post(t, h, "/v1/experiments/tablei", "")
	if w.Code != http.StatusOK {
		t.Fatalf("run tablei: %d %s", w.Code, w.Body)
	}
	var result struct {
		Name   string `json:"Name"`
		Tables []struct {
			Rows [][]any `json:"Rows"`
		} `json:"Tables"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &result); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	if len(result.Tables) == 0 || len(result.Tables[0].Rows) == 0 {
		t.Fatal("tablei result has no table rows")
	}
	if w := post(t, h, "/v1/experiments/atlantis", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown experiment: %d, want 404", w.Code)
	}
	if w := post(t, h, "/v1/experiments/tablei", `{"resolution":"ultra"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad override: %d, want 400", w.Code)
	}
	if st := s.Snapshot(); st.ExperimentRuns != 1 {
		t.Fatalf("experimentRuns = %d, want 1", st.ExperimentRuns)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	w := get(t, h, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SteadyRequests != 2 || st.MemoHits != 1 || st.MemoMisses != 1 || st.SessionBuilds != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	s.BeginDrain()
	w := post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining steady: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("drain refusal without Retry-After")
	}
	if w := get(t, h, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", w.Code)
	}
	// Stats stay reachable for the operator watching the drain.
	if w := get(t, h, "/v1/stats"); w.Code != http.StatusOK {
		t.Fatalf("draining stats: %d, want 200", w.Code)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := newTestServer(t, Config{})
	post(t, s.Handler(), "/v1/steady", `{"benchmark":"x264"}`)
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if got := s.leases.len(); got != 0 {
		t.Fatalf("%d sessions survive Close", got)
	}
}

// TestWarmHitSpeedup is the PR's acceptance gate in miniature: a
// warm-cache hit must be at least 50× faster than a cold miss (full
// system build + cold coupled solve) at medium resolution.
func TestWarmHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := newTestServer(t, Config{Resolution: experiments.Medium})
	h := s.Handler()
	body := `{"benchmark":"x264"}`

	coldest := func() time.Duration {
		s.ResetCaches()
		t0 := time.Now()
		w := post(t, h, "/v1/steady", body)
		if w.Code != http.StatusOK {
			t.Fatalf("cold: %d %s", w.Code, w.Body)
		}
		return time.Since(t0)
	}
	var cold time.Duration
	for i := 0; i < 3; i++ {
		if d := coldest(); cold == 0 || d < cold {
			cold = d
		}
	}
	post(t, h, "/v1/steady", body) // prime
	var hit time.Duration
	for i := 0; i < 20; i++ {
		t0 := time.Now()
		w := post(t, h, "/v1/steady", body)
		if got := w.Header().Get("X-Cache"); got != "hit" {
			t.Fatalf("X-Cache = %q, want hit", got)
		}
		if d := time.Since(t0); hit == 0 || d < hit {
			hit = d
		}
	}
	if ratio := float64(cold) / float64(hit); ratio < 50 {
		t.Fatalf("warm hit only %.1f× faster than cold miss (cold %v, hit %v), want ≥50×", ratio, cold, hit)
	}
}

func TestLoadEngine(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := LoadConfig{
		BaseURL:     ts.URL,
		Requests:    40,
		Concurrency: 4,
		Keys:        4,
		Seed:        7,
	}
	rep, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Completed+rep.Dropped+rep.Rejected+rep.Errors != rep.Requests {
		t.Fatalf("accounting: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors: %+v", rep.Errors, rep)
	}
	if rep.Misses > cfg.Keys {
		t.Fatalf("%d misses for a %d-key pool", rep.Misses, cfg.Keys)
	}
	// Same seed, warm server: the key pool is already memoized, so a
	// replay is all hits — the sequence is deterministic.
	rep2, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Misses != 0 || rep2.Hits != rep2.Completed {
		t.Fatalf("replay on a warm server should be all hits: %+v", rep2)
	}

	// Zipf skew concentrates on the head of the pool.
	repZ, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: ts.URL, Requests: 40, Concurrency: 4, Keys: 8, Skew: 1.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if repZ.Errors != 0 {
		t.Fatalf("zipf run errors: %+v", repZ)
	}
}

// drainBody is a helper for reading a real HTTP response.
func drainBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
