package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepChunk posts a seq-numbered step chunk and returns the recorder.
func stepChunk(t *testing.T, h http.Handler, blade string, seq int, body string) *bytes.Buffer {
	t.Helper()
	w := post(t, h, "/v1/transient/"+blade+"/step", body)
	if w.Code != http.StatusOK {
		t.Fatalf("step seq %d: %d %s", seq, w.Code, w.Body)
	}
	return w.Body
}

// TestCheckpointRestoreByteIdentical is the crash-safety contract:
// checkpoint a streaming blade mid-trace, rebuild a fresh server from the
// file, and the restored blade's next chunk is byte-identical to the one
// the uninterrupted server produces.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	for _, solver := range []string{"cg", "mgpcg"} {
		t.Run(solver, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "ckpt.json")
			reg := `{"blade":"b0","benchmark":"x264","solver":"` + solver + `"}`
			chunk1 := `{"seq":1,"dt_s":0.25,"steps":[{},{"load":1.2}]}`
			chunk2 := `{"seq":2,"dt_s":0.25,"steps":[{"load":0.7},{}]}`

			s1 := newTestServer(t, Config{CheckpointPath: ckpt})
			h1 := s1.Handler()
			if w := post(t, h1, "/v1/transient", reg); w.Code != http.StatusCreated {
				t.Fatalf("register: %d %s", w.Code, w.Body)
			}
			stepChunk(t, h1, "b0", 1, chunk1)
			if w := post(t, h1, "/v1/checkpoint", ""); w.Code != http.StatusOK {
				t.Fatalf("checkpoint: %d %s", w.Code, w.Body)
			}
			// The uninterrupted server continues past the checkpoint.
			ref := stepChunk(t, h1, "b0", 2, chunk2)

			// A fresh server restores from the file and replays chunk 2.
			s2 := newTestServer(t, Config{CheckpointPath: ckpt, RestoreOnStart: true})
			h2 := s2.Handler()
			if got := s2.Snapshot().CheckpointBladesRestored; got != 1 {
				t.Fatalf("restored %d blades, want 1", got)
			}
			var st struct {
				TimeS float64 `json:"time_s"`
			}
			w := get(t, h2, "/v1/transient/b0")
			if w.Code != http.StatusOK {
				t.Fatalf("restored status: %d %s", w.Code, w.Body)
			}
			if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
				t.Fatal(err)
			}
			if st.TimeS != 0.5 {
				t.Fatalf("restored time_s = %v, want 0.5", st.TimeS)
			}
			got := stepChunk(t, h2, "b0", 2, chunk2)
			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Fatalf("restore-then-step diverged from the uninterrupted run:\nref %s\ngot %s", ref, got)
			}
		})
	}
}

// TestCheckpointSurvivesDrain: Close takes a final snapshot, so a
// graceful shutdown preserves the registry without an explicit POST.
func TestCheckpointSurvivesDrain(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	s1 := newTestServer(t, Config{CheckpointPath: ckpt})
	h1 := s1.Handler()
	if w := post(t, h1, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	stepChunk(t, h1, "b0", 1, `{"seq":1,"dt_s":0.5,"steps":[{}]}`)
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := newTestServer(t, Config{CheckpointPath: ckpt, RestoreOnStart: true})
	if got := s2.trans.len(); got != 1 {
		t.Fatalf("drain checkpoint restored %d blades, want 1", got)
	}
}

// TestCheckpointPeriodic: the background loop snapshots without any
// operator action.
func TestCheckpointPeriodic(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	s := newTestServer(t, Config{CheckpointPath: ckpt, CheckpointEvery: 10 * time.Millisecond})
	h := s.Handler()
	if w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil && s.Snapshot().CheckpointSaves > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckpointRejectsCorruption: a flipped payload byte fails the
// checksum and a restoring boot refuses to start half-right.
func TestCheckpointRejectsCorruption(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	s := newTestServer(t, Config{CheckpointPath: ckpt})
	h := s.Handler()
	if w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	if _, err := s.SaveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the payload's time field region.
	corrupted := bytes.Replace(raw, []byte(`"blade":"b0"`), []byte(`"blade":"bX"`), 1)
	if bytes.Equal(corrupted, raw) {
		t.Fatal("corruption did not apply")
	}
	if err := os.WriteFile(ckpt, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CheckpointPath: ckpt, RestoreOnStart: true}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}

	// A missing file is a fresh boot, not an error.
	if err := os.Remove(ckpt); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{CheckpointPath: ckpt, RestoreOnStart: true})
	if err != nil {
		t.Fatalf("missing checkpoint should be a fresh boot: %v", err)
	}
	s2.Close()
}

// TestStepExactlyOnce: a retried chunk replays the cached body without
// advancing the sim, and a stale seq is refused with 409.
func TestStepExactlyOnce(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	chunk := `{"seq":1,"dt_s":0.5,"steps":[{},{}]}`
	first := stepChunk(t, h, "b0", 1, chunk)

	// The retry replays: same bytes, marked, counted, sim not advanced.
	w := post(t, h, "/v1/transient/b0/step", chunk)
	if w.Code != http.StatusOK {
		t.Fatalf("retry: %d %s", w.Code, w.Body)
	}
	if w.Header().Get("X-Replayed") != "true" {
		t.Fatal("retry not marked X-Replayed")
	}
	if !bytes.Equal(first.Bytes(), w.Body.Bytes()) {
		t.Fatalf("replayed body differs:\n%s\n%s", first, w.Body)
	}
	st := s.Snapshot()
	if st.StepsDeduped != 1 {
		t.Fatalf("steps_deduped = %d, want 1", st.StepsDeduped)
	}
	if st.TransientSteps != 2 {
		t.Fatalf("transient_steps = %d, want 2 (retry must not re-step)", st.TransientSteps)
	}

	// Advancing to seq 2 then retrying seq 1 is a stale duplicate: 409.
	stepChunk(t, h, "b0", 2, `{"seq":2,"dt_s":0.5,"steps":[{}]}`)
	if w := post(t, h, "/v1/transient/b0/step", chunk); w.Code != http.StatusConflict {
		t.Fatalf("stale seq: %d, want 409 (%s)", w.Code, w.Body)
	}

	// Seq 0 opts out: the legacy at-least-once path still works.
	if w := post(t, h, "/v1/transient/b0/step", `{"dt_s":0.5,"steps":[{}]}`); w.Code != http.StatusOK {
		t.Fatalf("unsequenced step: %d %s", w.Code, w.Body)
	}
}

// errAfterCtx reports no error for the first n Err() calls, then
// context.Canceled — it simulates a client disconnecting partway through
// a step chunk (the step loop polls Err() once per step).
type errAfterCtx struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *errAfterCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.Canceled
}

// TestStepChunkAtomic: a chunk that dies partway through (client cancel
// after the first of three steps) must roll the sim back to the chunk
// boundary, so the retry of the same seq applies the whole chunk exactly
// once — byte-identical to a run that never failed. Without the rollback
// the retry would double-step the successful prefix.
func TestStepChunkAtomic(t *testing.T) {
	reg := `{"blade":"b0","benchmark":"x264"}`
	chunk := `{"seq":1,"dt_s":0.5,"steps":[{},{"load":1.1},{}]}`

	// Reference: the chunk applied uninterrupted.
	ref := newTestServer(t, Config{})
	hr := ref.Handler()
	if w := post(t, hr, "/v1/transient", reg); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	want := stepChunk(t, hr, "b0", 1, chunk)

	// Same chunk, but the request context cancels after step 0 applies.
	s := newTestServer(t, Config{})
	h := s.Handler()
	if w := post(t, h, "/v1/transient", reg); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/transient/b0/step", strings.NewReader(chunk))
	req.Header.Set("Content-Type", "application/json")
	req = req.WithContext(&errAfterCtx{Context: context.Background(), n: 1})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Fatalf("cancelled mid-chunk yet succeeded: %s", w.Body)
	}

	// The partial chunk rolled back: the blade is at t=0 and no steps are
	// counted as applied.
	var st struct {
		TimeS float64 `json:"time_s"`
	}
	g := get(t, h, "/v1/transient/b0")
	if err := json.Unmarshal(g.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.TimeS != 0 {
		t.Fatalf("partial chunk left time_s = %v, want 0 (rolled back)", st.TimeS)
	}
	if got := s.Snapshot().TransientSteps; got != 0 {
		t.Fatalf("transient_steps = %d after rollback, want 0", got)
	}

	// The retry of the same seq applies the full chunk, byte-identical to
	// the uninterrupted run.
	got := stepChunk(t, h, "b0", 1, chunk)
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("retry after rollback diverged from uninterrupted run:\nref %s\ngot %s", want, got)
	}
	if n := s.Snapshot().TransientSteps; n != 3 {
		t.Fatalf("transient_steps = %d, want 3", n)
	}
}

// TestCheckpointHandlerStatusCodes: POST /v1/checkpoint blames the client
// (400) only when checkpointing was never configured; a server-side write
// failure is a 500.
func TestCheckpointHandlerStatusCodes(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := post(t, s.Handler(), "/v1/checkpoint", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("unconfigured checkpoint: %d, want 400 (%s)", w.Code, w.Body)
	}

	// A checkpoint path in a directory that does not exist fails the
	// write — the server's problem, not the client's.
	s2 := newTestServer(t, Config{CheckpointPath: filepath.Join(t.TempDir(), "missing-dir", "ckpt.json")})
	if w := post(t, s2.Handler(), "/v1/checkpoint", ""); w.Code != http.StatusInternalServerError {
		t.Fatalf("failed checkpoint write: %d, want 500 (%s)", w.Code, w.Body)
	}
}
