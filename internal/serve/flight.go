package serve

import "sync"

// flight is one in-progress solve for a memo key. Followers arriving
// while the leader solves wait on done and then share the leader's
// outcome — body bytes on success, a relayed status otherwise. This is
// what makes concurrent identical proposals cost one solve and one
// admission slot instead of N: duplicates add no solver work, so they
// never compete for the backpressure budget.
type flight struct {
	done       chan struct{}
	body       []byte // nil when the solve failed
	status     int
	errMsg     string
	retryAfter int // Retry-After hint (seconds) relayed with a refusal
}

type flights struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlights() *flights {
	return &flights{m: make(map[string]*flight)}
}

// join returns the in-progress flight for the key, or registers a new one
// with leader=true. The leader must call finish exactly once.
func (fs *flights) join(key string) (f *flight, leader bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	fs.m[key] = f
	return f, true
}

// finish publishes the flight's outcome: the key is unregistered first
// (later arrivals re-check the memo, which the leader filled before
// finishing), then waiters are released.
func (fs *flights) finish(key string, f *flight) {
	fs.mu.Lock()
	delete(fs.m, key)
	fs.mu.Unlock()
	close(f.done)
}
