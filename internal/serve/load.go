package serve

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/workload"
)

// LoadConfig parameterizes a deterministic open-loop load run against a
// thermservd instance. The key sequence is driven by a seeded PRNG, so two
// runs with the same config issue the same proposals in the same order —
// the load test is as replayable as the solver it exercises.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests is the total number of proposals to issue.
	Requests int
	// QPS is the open-loop arrival rate (0 = as fast as Concurrency
	// allows).
	QPS float64
	// Concurrency caps in-flight requests; an arrival finding no free slot
	// is dropped and counted (open-loop clients do not queue).
	Concurrency int
	// Keys is the number of distinct proposals in the pool.
	Keys int
	// Skew selects the popularity distribution over the pool: values > 1
	// draw keys Zipf-distributed with that exponent (a hot head, a long
	// tail); values <= 1 draw uniformly.
	Skew float64
	// Seed fixes the PRNG.
	Seed int64
	// MaxRetries caps per-request retries of 429/503 refusals through the
	// shared retrying Client (0 = no retries — a refusal counts
	// immediately, pure open-loop behavior).
	MaxRetries int
	// Resolution/Solver are passed through on each proposal ("" = server
	// default).
	Resolution string
	Solver     string
}

// LoadReport is the outcome of a load run.
type LoadReport struct {
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Errors    int     `json:"errors"`
	Rejected  int     `json:"rejected"` // 429/503 backpressure refusals
	Dropped   int     `json:"dropped"`  // arrivals with no free client slot
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	WallS     float64 `json:"wall_s"`
	QPS       float64 `json:"qps"`
	// StatusCounts is the final HTTP status breakdown ("200", "429",
	// "500", "503", …) after retries; Retries is the total retry attempts
	// the client spent across the run.
	StatusCounts map[string]int `json:"status_counts"`
	Retries      int64          `json:"retries"`
}

// loadKey builds the i-th proposal of the pool: the benchmark cycles
// through the PARSEC catalog and the coolant temperature steps per key, so
// distinct keys are distinct solves (different lease, different memo line).
func loadKey(i int, cfg LoadConfig) SteadyRequest {
	names := workload.All()
	return SteadyRequest{
		Benchmark:    names[i%len(names)].Name,
		WaterC:       25 + 0.1*float64(i),
		WaterFlowKgH: 7,
		Resolution:   cfg.Resolution,
		Solver:       cfg.Solver,
	}
}

// RunLoad executes the configured load run. Request issue order, key
// choice, and payloads are deterministic in cfg; only latencies and the
// drop pattern depend on the machine.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("load: requests must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Skew > 1 {
		zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Keys-1))
	}
	// Pre-draw the whole key sequence so the proposal stream is fixed
	// before any racing begins.
	keys := make([]int, cfg.Requests)
	for i := range keys {
		if zipf != nil {
			keys[i] = int(zipf.Uint64())
		} else {
			keys[i] = rng.Intn(cfg.Keys)
		}
	}
	bodies := make(map[int][]byte, cfg.Keys)
	for _, k := range keys {
		if _, ok := bodies[k]; !ok {
			b, err := canonicalJSON(loadKey(k, cfg))
			if err != nil {
				return nil, err
			}
			bodies[k] = b
		}
	}

	// The retrying client shares the PRNG seed, so the backoff schedule —
	// like the key sequence — replays exactly across runs.
	client := NewClient(cfg.Seed)
	client.MaxRetries = cfg.MaxRetries
	url := cfg.BaseURL + "/v1/steady"
	var (
		mu        sync.Mutex
		latencies []float64
		rep       LoadReport
		wg        sync.WaitGroup
	)
	rep.Requests = cfg.Requests
	rep.StatusCounts = make(map[string]int)
	slots := make(chan struct{}, cfg.Concurrency)
	var interval time.Duration
	if cfg.QPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.QPS)
	}
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		if err := ctx.Err(); err != nil {
			break
		}
		if interval > 0 {
			// Open-loop pacing: sleep to the scheduled arrival time; late
			// arrivals fire immediately (no coordinated omission).
			next := start.Add(time.Duration(i) * interval)
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
		if interval > 0 {
			// Paced (open-loop): an arrival with no free client slot is
			// dropped, not queued — overload surfaces as drops and 429s.
			select {
			case slots <- struct{}{}:
			default:
				mu.Lock()
				rep.Dropped++
				mu.Unlock()
				continue
			}
		} else {
			// Unpaced (closed-loop): issue as fast as Concurrency allows.
			select {
			case slots <- struct{}{}:
			case <-ctx.Done():
				continue
			}
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			defer func() { <-slots }()
			t0 := time.Now()
			resp, err := client.PostJSON(ctx, url, body)
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				rep.StatusCounts[strconv.Itoa(resp.StatusCode)]++
				switch {
				case resp.StatusCode == http.StatusOK:
					rep.Completed++
					latencies = append(latencies, ms)
					switch resp.Header.Get("X-Cache") {
					case "hit":
						rep.Hits++
					case "miss":
						rep.Misses++
					}
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					rep.Rejected++
				default:
					rep.Errors++
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			rep.Errors++
			mu.Unlock()
		}(bodies[keys[i]])
	}
	wg.Wait()
	rep.Retries = client.Retries()
	rep.WallS = time.Since(start).Seconds()
	if rep.WallS > 0 {
		rep.QPS = float64(rep.Completed) / rep.WallS
	}
	if rep.Completed > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Completed)
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P95Ms = percentile(latencies, 0.95)
	rep.P99Ms = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.MaxMs = latencies[n-1]
	}
	return &rep, nil
}

// percentile reads the p-quantile from sorted data (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
