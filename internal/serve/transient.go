package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/cosim"
)

// transientBlade is one registered blade with a persistent TransientSim:
// its thermal state advances across requests, so a client can stream a
// power trace in chunks and the blade's temperature history is continuous.
// Each blade owns a dedicated session (a session hosts at most one
// transient sim); steps serialize through mu.
type transientBlade struct {
	mu   sync.Mutex
	name string
	sys  *cosim.System
	ses  *cosim.Session
	sim  *cosim.TransientSim
	// base is the registered per-block power map (W); step entries may
	// scale it with a load factor instead of respelling the full map.
	base map[string]float64
	// req/initialC reproduce the registration for checkpointing: a
	// restore replays exactly the normalized proposal this blade was
	// built from.
	req      SteadyRequest
	initialC float64
	// lastSeq/lastBody are the exactly-once replay cache: a step chunk
	// carrying seq == lastSeq is a retry of the last applied chunk and is
	// answered with the cached body instead of advancing the sim again.
	lastSeq  int64
	lastBody []byte
	dead     bool
}

// transients is the bounded registry of live blades.
type transients struct {
	mu     sync.Mutex
	cap    int
	byName map[string]*transientBlade
}

func newTransients(capacity int) *transients {
	return &transients{cap: capacity, byName: make(map[string]*transientBlade)}
}

var errTransientsFull = fmt.Errorf("serve: transient blade registry full")

// add registers a blade, refusing duplicates and over-capacity.
func (t *transients) add(b *transientBlade) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byName[b.name]; ok {
		return fmt.Errorf("blade %q already registered", b.name)
	}
	if len(t.byName) >= t.cap {
		return errTransientsFull
	}
	t.byName[b.name] = b
	return nil
}

func (t *transients) get(name string) (*transientBlade, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.byName[name]
	return b, ok
}

// remove unregisters a blade and closes its session, waiting out any
// in-flight step chunk.
func (t *transients) remove(name string) bool {
	t.mu.Lock()
	b, ok := t.byName[name]
	delete(t.byName, name)
	t.mu.Unlock()
	if !ok {
		return false
	}
	b.mu.Lock()
	b.dead = true
	b.mu.Unlock()
	b.ses.Close()
	return true
}

func (t *transients) names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.byName))
	for n := range t.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (t *transients) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byName)
}

// closeAll retires every blade. The registry lock is dropped before the
// per-blade locks, so a step chunk finishing concurrently cannot deadlock;
// the idempotent Session.Close makes the race with remove harmless.
func (t *transients) closeAll() {
	t.mu.Lock()
	blades := make([]*transientBlade, 0, len(t.byName))
	for _, b := range t.byName {
		blades = append(blades, b)
	}
	t.byName = make(map[string]*transientBlade)
	t.mu.Unlock()
	for _, b := range blades {
		b.mu.Lock()
		b.dead = true
		b.mu.Unlock()
		b.ses.Close()
	}
}

// TransientRegisterRequest registers a blade: the embedded proposal fixes
// the power source (benchmark mapping or explicit block powers), the
// coolant operating point, solver and resolution; InitialC seeds the
// uniform starting temperature (default: the coolant inlet temperature).
type TransientRegisterRequest struct {
	Blade    string  `json:"blade"`
	InitialC float64 `json:"initial_c,omitempty"`
	SteadyRequest
}

// TransientStep is one entry of a trace chunk: either an explicit
// per-block power map or a load factor scaling the registered base power.
type TransientStep struct {
	Load        *float64           `json:"load,omitempty"`
	BlockPowerW map[string]float64 `json:"block_power_w,omitempty"`
}

// TransientStepRequest advances a blade by len(Steps) × DtS seconds.
// Seq, when positive, makes the chunk exactly-once: the client numbers
// chunks 1, 2, 3, … per blade, and a retried chunk (same seq as the last
// applied one) replays the cached response instead of advancing the sim
// again — a network-level retry can never double-step a blade. Seq 0
// opts out (legacy at-least-once behavior).
type TransientStepRequest struct {
	Seq   int64           `json:"seq,omitempty"`
	DtS   float64         `json:"dt_s"`
	Steps []TransientStep `json:"steps"`
}

// TransientSample is the blade state after one step.
type TransientSample struct {
	TimeS   float64 `json:"time_s"`
	DieMaxC float64 `json:"die_max_c"`
	TCaseC  float64 `json:"tcase_c"`
}

// TransientStatus describes a registered blade.
type TransientStatus struct {
	Blade      string  `json:"blade"`
	TimeS      float64 `json:"time_s"`
	DieMaxC    float64 `json:"die_max_c"`
	TCaseC     float64 `json:"tcase_c"`
	BasePowerW float64 `json:"base_power_w"`
}

func (b *transientBlade) status() (TransientStatus, error) {
	dieMax, err := b.sim.DieMax()
	if err != nil {
		return TransientStatus{}, err
	}
	var total float64
	for _, w := range b.base {
		total += w
	}
	return TransientStatus{
		Blade:      b.name,
		TimeS:      b.sim.Time(),
		DieMaxC:    dieMax,
		TCaseC:     b.sim.TCase(),
		BasePowerW: total,
	}, nil
}

// handleTransientList is /v1/transient: GET lists registered blades, POST
// registers a new one.
func (s *Server) handleTransientList(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		names := s.trans.names()
		out := make([]TransientStatus, 0, len(names))
		for _, n := range names {
			b, ok := s.trans.get(n)
			if !ok {
				continue
			}
			b.mu.Lock()
			st, err := b.status()
			b.mu.Unlock()
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			out = append(out, st)
		}
		writeJSON(w, http.StatusOK, map[string]any{"blades": out})
	case http.MethodPost:
		s.handleTransientRegister(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) handleTransientRegister(w http.ResponseWriter, r *http.Request) {
	var req TransientRegisterRequest
	if err := s.decode(w, r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Blade == "" {
		writeError(w, http.StatusBadRequest, "blade name required")
		return
	}
	p, err := s.normalizeSteady(req.SteadyRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	initial := req.InitialC
	if initial == 0 {
		initial = p.op.WaterInC
	}
	// A registration builds a dedicated system+session (a session hosts at
	// most one transient sim), so it pays a cold build — gate it through
	// admission like any other solve-class request.
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		s.rejectSolve(w, err)
		return
	}
	defer release()

	sys, ses, err := s.buildLease(p.lease)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sim, err := ses.Transient(p.operatingFor(), initial)
	if err != nil {
		ses.Close()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var base map[string]float64
	if p.bp != nil {
		base = make(map[string]float64, len(p.bp))
		for k, v := range p.bp {
			base[k] = v
		}
	} else {
		base = sys.Power.BlockPowers(p.st)
	}
	b := &transientBlade{
		name: req.Blade, sys: sys, ses: ses, sim: sim, base: base,
		req: p.req, initialC: initial,
	}
	if err := s.trans.add(b); err != nil {
		ses.Close()
		status := http.StatusConflict
		retryAfter := 0
		if err == errTransientsFull {
			status = http.StatusTooManyRequests
			retryAfter = s.retryAfterSecs()
		}
		writeError(w, status, err.Error(), retryAfter)
		return
	}
	b.mu.Lock()
	st, err := b.status()
	b.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// handleTransientOp routes /v1/transient/{blade} (GET status, DELETE
// release) and /v1/transient/{blade}/step (POST a trace chunk).
func (s *Server) handleTransientOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/transient/")
	name, op, _ := strings.Cut(rest, "/")
	if name == "" {
		writeError(w, http.StatusNotFound, "missing blade name")
		return
	}
	switch {
	case op == "" && r.Method == http.MethodGet:
		b, ok := s.trans.get(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("blade %q not registered", name))
			return
		}
		b.mu.Lock()
		st, err := b.status()
		b.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	case op == "" && r.Method == http.MethodDelete:
		if !s.trans.remove(name) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("blade %q not registered", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"released": name})
	case op == "step" && r.Method == http.MethodPost:
		s.handleTransientStep(w, r, name)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET/DELETE /v1/transient/{blade} or POST /v1/transient/{blade}/step")
	}
}

func (s *Server) handleTransientStep(w http.ResponseWriter, r *http.Request, name string) {
	var req TransientStepRequest
	if err := s.decode(w, r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.DtS <= 0 {
		writeError(w, http.StatusBadRequest, "dt_s must be positive")
		return
	}
	if len(req.Steps) == 0 {
		writeError(w, http.StatusBadRequest, "steps required")
		return
	}
	if len(req.Steps) > s.cfg.MaxSteps {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("chunk of %d steps exceeds the %d-step cap; split the trace", len(req.Steps), s.cfg.MaxSteps))
		return
	}
	b, ok := s.trans.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("blade %q not registered", name))
		return
	}
	// Exactly-once fast path: a retried chunk is answered from the replay
	// cache before it competes for a solve slot.
	if req.Seq > 0 {
		b.mu.Lock()
		replayed := s.replayStep(w, b, req.Seq)
		b.mu.Unlock()
		if replayed {
			return
		}
	}
	// Validate step power maps before taking a solve slot.
	for i, st := range req.Steps {
		if st.BlockPowerW != nil && st.Load != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("step %d: load and block_power_w are mutually exclusive", i))
			return
		}
		for blk, pw := range st.BlockPowerW {
			if !s.dieBlocks[blk] {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("step %d names unknown block %q", i, blk))
				return
			}
			if pw < 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("step %d: block %q has negative power", i, blk))
				return
			}
		}
		if st.Load != nil && *st.Load < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("step %d: negative load", i))
			return
		}
	}
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		s.rejectSolve(w, err)
		return
	}
	defer release()
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		writeError(w, http.StatusGone, fmt.Sprintf("blade %q released", name))
		return
	}
	// Re-check the replay cache under the step lock: a concurrent retry of
	// the same chunk may have applied it while this request waited for
	// admission or the lock.
	if req.Seq > 0 && s.replayStep(w, b, req.Seq) {
		return
	}
	// A chunk applies atomically: snapshot the sim before the first step
	// and roll back to it if anything fails or the client cancels partway
	// through. Without the rollback a retried chunk would re-apply steps
	// the failed attempt already took, double-stepping the successful
	// prefix — the exactly-once contract must hold even for chunks that
	// die mid-flight.
	pre := b.sim.ExportState()
	rollback := func() {
		if err := b.sim.ImportState(pre); err != nil {
			// A same-sim snapshot can only fail to import if the state was
			// corrupted in flight; the blade is unrecoverable — kill it so
			// clients re-register instead of streaming onto unknown state.
			b.dead = true
		}
	}
	samples := make([]TransientSample, 0, len(req.Steps))
	scaled := make(map[string]float64, len(b.base))
	ctx := r.Context()
	for i, st := range req.Steps {
		if err := ctx.Err(); err != nil {
			rollback()
			s.solveError(w, err)
			return
		}
		pw := b.base
		if st.BlockPowerW != nil {
			pw = st.BlockPowerW
		} else if st.Load != nil {
			for k, v := range b.base {
				scaled[k] = v * *st.Load
			}
			pw = scaled
		}
		if err := b.sim.Step(req.DtS, pw); err != nil {
			rollback()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("step %d: %v", i, err))
			return
		}
		dieMax, err := b.sim.DieMax()
		if err != nil {
			rollback()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		samples = append(samples, TransientSample{
			TimeS:   b.sim.Time(),
			DieMaxC: dieMax,
			TCaseC:  b.sim.TCase(),
		})
	}
	body, err := json.Marshal(map[string]any{"blade": name, "samples": samples})
	if err != nil {
		rollback()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The chunk is committed only now: steps are counted and the dedup
	// cursor advances together, after every step succeeded.
	s.stats.transientSteps.Add(int64(len(req.Steps)))
	body = append(body, '\n')
	if req.Seq > 0 {
		// Record the applied chunk before responding, so a retry that races
		// the response replays rather than double-steps.
		b.lastSeq = req.Seq
		b.lastBody = append([]byte(nil), body...)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// replayStep answers a retried or stale step chunk from the blade's
// exactly-once cache. The caller holds b.mu. It returns true when the
// request was fully handled (replayed or refused): seq == lastSeq is the
// retry of the last applied chunk and gets its cached body back verbatim
// (flagged with X-Replayed so clients and tests can tell); seq < lastSeq
// is an out-of-order duplicate whose body is long gone — 409, the client
// must resynchronize from GET status.
func (s *Server) replayStep(w http.ResponseWriter, b *transientBlade, seq int64) bool {
	switch {
	case seq == b.lastSeq && b.lastBody != nil:
		s.stats.stepsDeduped.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Replayed", "true")
		w.WriteHeader(http.StatusOK)
		w.Write(b.lastBody)
		return true
	case seq < b.lastSeq:
		writeError(w, http.StatusConflict,
			fmt.Sprintf("stale seq %d: blade %q already advanced past seq %d", seq, b.name, b.lastSeq))
		return true
	}
	return false
}
