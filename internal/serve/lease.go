package serve

import (
	"container/list"
	"hash/fnv"
	"sync"

	"repro/internal/cosim"
)

// leaseKey identifies one warm solve session: everything that shapes the
// system and its solver, excluding the per-request operating point (water
// temperature/flow, power levels) — those vary across the what-if queries
// a warm session exists to amortize.
type leaseKey struct {
	floorplan  string
	mapping    string
	solver     string
	resolution string
	fault      string
}

func (k leaseKey) shard() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.floorplan))
	h.Write([]byte{0})
	h.Write([]byte(k.mapping))
	h.Write([]byte{0})
	h.Write([]byte(k.solver))
	h.Write([]byte{0})
	h.Write([]byte(k.resolution))
	h.Write([]byte{0})
	h.Write([]byte(k.fault))
	return h.Sum64()
}

// lease is one cached session. Solves on it serialize through mu (a
// Session is not safe for concurrent use); refs and dead are guarded by
// the owning shard's lock. A lease evicted or drained while referenced is
// marked dead and closed by its last releaser — both paths may race, and
// both are safe because Session.Close is idempotent.
type lease struct {
	key  leaseKey
	sys  *cosim.System
	ses  *cosim.Session
	mu   sync.Mutex
	refs int
	dead bool
}

const leaseShardCount = 8

type leaseShard struct {
	mu    sync.Mutex
	byKey map[leaseKey]*list.Element
	lru   *list.List // front = most recently used; element values are *lease
}

// leaseCache is the sharded LRU of warm sessions. Capacity is divided
// evenly across shards (at least one per shard), so the worst case holds
// a few more sessions than the configured cap rather than serializing
// every acquire on one lock.
type leaseCache struct {
	shards   [leaseShardCount]leaseShard
	perShard int
	build    func(k leaseKey) (*cosim.System, *cosim.Session, error)
	stats    *counters
}

func newLeaseCache(capacity int, build func(k leaseKey) (*cosim.System, *cosim.Session, error), stats *counters) *leaseCache {
	per := (capacity + leaseShardCount - 1) / leaseShardCount
	if per < 1 {
		per = 1
	}
	c := &leaseCache{perShard: per, build: build, stats: stats}
	for i := range c.shards {
		c.shards[i] = leaseShard{byKey: make(map[leaseKey]*list.Element), lru: list.New()}
	}
	return c
}

// acquire returns the cached lease for the key, building a fresh
// system+session on a miss, with the reference count bumped. Release with
// release. A build on a miss happens under the shard lock: concurrent
// misses for the same key must collapse onto one session, and stalling
// the 1/8th of the key space that shares the shard for one system build
// is the cheapest way to guarantee that.
func (c *leaseCache) acquire(key leaseKey) (*lease, error) {
	sh := &c.shards[key.shard()%leaseShardCount]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byKey[key]; ok {
		sh.lru.MoveToFront(el)
		l := el.Value.(*lease)
		l.refs++
		c.stats.sessionReuses.Add(1)
		return l, nil
	}
	sys, ses, err := c.build(key)
	if err != nil {
		return nil, err
	}
	l := &lease{key: key, sys: sys, ses: ses, refs: 1}
	sh.byKey[key] = sh.lru.PushFront(l)
	c.stats.sessionBuilds.Add(1)
	// Evict past capacity, least recently used first, skipping leases
	// still referenced by an in-flight request (they close on release).
	for el := sh.lru.Back(); el != nil && sh.lru.Len() > c.perShard; {
		prev := el.Prev()
		v := el.Value.(*lease)
		if v.refs == 0 {
			sh.lru.Remove(el)
			delete(sh.byKey, v.key)
			v.dead = true
			v.ses.Close()
			c.stats.evictions.Add(1)
		}
		el = prev
	}
	return l, nil
}

// release returns a lease. A poisoned release (the solve failed) evicts
// the lease so the next request builds a clean session — the PR 8
// warm-start-invalidation rule applied at the cache layer; the session's
// own carry invalidation is not enough, because a session that produced a
// SolveError may hold a team whose owner we no longer trust to be cheap
// to rescue, and cache hits must never pay an escalation ladder the
// client didn't cause.
func (c *leaseCache) release(l *lease, poisoned bool) {
	sh := &c.shards[l.key.shard()%leaseShardCount]
	sh.mu.Lock()
	l.refs--
	if poisoned && !l.dead {
		if el, ok := sh.byKey[l.key]; ok && el.Value.(*lease) == l {
			sh.lru.Remove(el)
			delete(sh.byKey, l.key)
		}
		l.dead = true
		c.stats.evictions.Add(1)
	}
	closeNow := l.dead && l.refs == 0
	sh.mu.Unlock()
	if closeNow {
		l.ses.Close()
	}
}

// closeAll empties the cache. Unreferenced leases are closed here;
// referenced ones are marked dead and closed by their releaser.
func (c *leaseCache) closeAll() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var toClose []*lease
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			l := el.Value.(*lease)
			l.dead = true
			if l.refs == 0 {
				toClose = append(toClose, l)
			}
		}
		sh.lru.Init()
		sh.byKey = make(map[leaseKey]*list.Element)
		sh.mu.Unlock()
		for _, l := range toClose {
			l.ses.Close()
		}
	}
}

// len returns the number of cached sessions.
func (c *leaseCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}
