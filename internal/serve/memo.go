package serve

import (
	"container/list"
	"sync"
)

// memo is the response cache: canonical proposal bytes → response body
// bytes, LRU-bounded. It is what makes a repeated what-if query the
// product — a hit skips admission, leasing and the solve entirely — and
// what pins byte-determinism for identical proposals: every client asking
// the same question reads the same stored bytes.
type memoEntry struct {
	key  string
	body []byte
}

type memo struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*list.Element
	lru   *list.List
}

func newMemo(capacity int) *memo {
	return &memo{cap: capacity, byKey: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached body for the key. The returned slice is shared —
// callers only write it to the wire.
func (m *memo) get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		return nil, false
	}
	m.lru.MoveToFront(el)
	return el.Value.(*memoEntry).body, true
}

// put stores a body, evicting the least recently used entry past
// capacity. Storing an existing key keeps the first body: with the
// default strict-determinism mode both are byte-identical anyway, and in
// carry mode first-wins is what keeps later warm recomputes from
// replacing the canonical answer.
func (m *memo) put(key string, body []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		m.lru.MoveToFront(el)
		return
	}
	m.byKey[key] = m.lru.PushFront(&memoEntry{key: key, body: body})
	for m.lru.Len() > m.cap {
		el := m.lru.Back()
		m.lru.Remove(el)
		delete(m.byKey, el.Value.(*memoEntry).key)
	}
}

func (m *memo) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byKey = make(map[string]*list.Element)
	m.lru.Init()
}
