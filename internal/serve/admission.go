package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errBusy is the backpressure refusal: every solve slot is taken and the
// wait queue is full. Handlers translate it to 429 + Retry-After.
var errBusy = errors.New("serve: all solve slots busy and queue full")

// admission bounds the compute the server accepts: at most workers
// concurrent solves, at most depth requests waiting for a slot. Memo hits
// bypass admission entirely — backpressure protects the solver, not the
// byte copier.
type admission struct {
	sem     chan struct{}
	depth   int64
	waiting atomic.Int64
}

func newAdmission(workers, depth int) *admission {
	return &admission{sem: make(chan struct{}, workers), depth: int64(depth)}
}

// acquire takes a solve slot, waiting in the bounded queue if none is
// free. It returns a release func, errBusy when the queue is full, or
// ctx.Err() when the request deadline fires first.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.waiting.Add(1) > a.depth {
		a.waiting.Add(-1)
		return nil, errBusy
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.sem }
