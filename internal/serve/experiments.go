package serve

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/experiments"
	"repro/internal/thermal"
)

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// ExperimentRunRequest tunes one experiment run; every field defaults to
// the server configuration. An empty body runs the defaults.
type ExperimentRunRequest struct {
	Resolution string `json:"resolution,omitempty"`
	Solver     string `json:"solver,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Threads    int    `json:"threads,omitempty"`
}

// handleExperimentsList is GET /v1/experiments: the PR 4 registry over
// HTTP, in registration (paper) order.
func (s *Server) handleExperimentsList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	all := experiments.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{Name: e.Name, Description: e.Description}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// handleExperimentRun is POST /v1/experiments/{name}: run one registered
// experiment and return its Result JSON — the same renderer cmd/paperbench
// -format json uses, so scripted consumers parse one schema for both.
func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, "want /v1/experiments/{name}")
		return
	}
	exp, ok := experiments.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown experiment %q; GET /v1/experiments lists the catalog", name))
		return
	}
	var req ExperimentRunRequest
	if err := s.decode(w, r, &req, true); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg := experiments.RunConfig{
		Resolution: s.cfg.Resolution,
		Solver:     s.cfg.Solver,
		Workers:    req.Workers,
		Threads:    req.Threads,
	}
	if req.Resolution != "" {
		res, err := experiments.ParseResolution(req.Resolution)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		cfg.Resolution = res
	}
	if req.Solver != "" {
		sol, err := thermal.ParseSolver(req.Solver)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		cfg.Solver = sol
	}
	// An experiment spawns its own worker pool; one admission token bounds
	// the server to Workers concurrent solve-class requests regardless of
	// what each run does inside its own budget split.
	ctx, cancel := experiments.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.rejectSolve(w, err)
		return
	}
	defer release()
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)

	result, err := exp.Run(ctx, cfg)
	if err != nil {
		s.solveError(w, err)
		return
	}
	s.stats.experimentRuns.Add(1)
	body, err := result.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	w.Write([]byte("\n"))
}
