package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is one circuit-breaker position. The machine is the
// classic three-state one: closed (requests flow, consecutive bad
// outcomes counted), open (requests refused with 503 + Retry-After until
// the cooldown elapses), half-open (exactly one probe request is let
// through; its outcome decides between closing and re-opening).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the per-lease-key trip state. A "bad" outcome is a solver
// failure or a solve the escalation ladder had to rescue — an escalation
// storm on a key is a leading indicator that its sessions are expensive
// or about to fail, so consecutive escalated solves trip the breaker
// just like consecutive hard failures do.
type breaker struct {
	state    breakerState
	bad      int // consecutive bad outcomes
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// BreakerInfo describes one tripped (non-closed) breaker in /v1/stats.
type BreakerInfo struct {
	Key            string `json:"key"`
	State          string `json:"state"`
	ConsecutiveBad int    `json:"consecutive_bad"`
}

// BreakerStats is the breaker section of /v1/stats: instantaneous state
// counts plus every non-closed breaker by key, so an operator can see
// which proposal class is failing without scraping logs.
type BreakerStats struct {
	Closed   int           `json:"closed"`
	Open     int           `json:"open"`
	HalfOpen int           `json:"half_open"`
	Tripped  []BreakerInfo `json:"tripped,omitempty"`
}

// breakerSet owns one breaker per lease key. Keys whose breaker returns
// to a clean closed state are pruned, so the map tracks only keys with
// recent trouble.
type breakerSet struct {
	mu        sync.Mutex
	m         map[leaseKey]*breaker
	threshold int           // consecutive bad outcomes that trip
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time
	trips     atomic.Int64 // cumulative transitions to open
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{
		m:         make(map[leaseKey]*breaker),
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// admit asks whether a solve for the key may proceed. A refusal returns
// the Retry-After hint in whole seconds: the remaining cooldown for an
// open breaker, one second while a half-open probe is already in flight.
func (bs *breakerSet) admit(key leaseKey) (ok bool, retryAfterSecs int) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[key]
	if b == nil {
		return true, 0
	}
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		remaining := b.openedAt.Add(bs.cooldown).Sub(bs.now())
		if remaining > 0 {
			secs := int((remaining + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			return false, secs
		}
		// Cooldown over: this caller becomes the half-open probe.
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, 1
		}
		b.probing = true
		return true, 0
	}
}

// observe records a solve outcome for the key. failed marks hard solver
// failures (not client cancellations); escalated marks solves the
// escalation ladder rescued. Either counts as a bad outcome toward the
// consecutive-trip threshold.
func (bs *breakerSet) observe(key leaseKey, failed, escalated bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[key]
	bad := failed || escalated
	if b == nil {
		if !bad {
			return
		}
		b = &breaker{}
		bs.m[key] = b
	}
	switch {
	case b.state == breakerHalfOpen:
		b.probing = false
		if bad {
			// Probe failed: back to open for another cooldown.
			b.state = breakerOpen
			b.openedAt = bs.now()
			b.bad++
			bs.trips.Add(1)
		} else {
			b.state = breakerClosed
			b.bad = 0
			delete(bs.m, key)
		}
	case bad:
		b.bad++
		if b.state == breakerClosed && b.bad >= bs.threshold {
			b.state = breakerOpen
			b.openedAt = bs.now()
			bs.trips.Add(1)
		}
	default:
		if b.state == breakerClosed {
			delete(bs.m, key)
		}
	}
}

// snapshot renders the /v1/stats view, tripped keys sorted for
// deterministic output.
func (bs *breakerSet) snapshot() BreakerStats {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := BreakerStats{}
	for k, b := range bs.m {
		switch b.state {
		case breakerOpen:
			out.Open++
		case breakerHalfOpen:
			out.HalfOpen++
		default:
			out.Closed++
			continue
		}
		out.Tripped = append(out.Tripped, BreakerInfo{
			Key:            k.mapping + "|" + k.solver + "|" + k.resolution + "|" + k.fault,
			State:          b.state.String(),
			ConsecutiveBad: b.bad,
		})
	}
	sort.Slice(out.Tripped, func(i, j int) bool { return out.Tripped[i].Key < out.Tripped[j].Key })
	return out
}
