package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is one circuit-breaker position. The machine is the
// classic three-state one: closed (requests flow, consecutive bad
// outcomes counted), open (requests refused with 503 + Retry-After until
// the cooldown elapses), half-open (exactly one probe request is let
// through; its outcome decides between closing and re-opening).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerOutcome is how an admitted solve ended, from the breaker's
// point of view.
type breakerOutcome int

const (
	// outcomeNeutral: the solve never ran or was cut short through no
	// fault of the solver (admission refusal, lease failure, client
	// cancellation or deadline). It releases a probe slot without counting
	// for or against the breaker.
	outcomeNeutral breakerOutcome = iota
	outcomeGood
	// outcomeBad: a hard solver failure or an escalation-ladder rescue.
	outcomeBad
)

// breaker is the per-lease-key trip state. A "bad" outcome is a solver
// failure or a solve the escalation ladder had to rescue — an escalation
// storm on a key is a leading indicator that its sessions are expensive
// or about to fail, so consecutive escalated solves trip the breaker
// just like consecutive hard failures do.
type breaker struct {
	state    breakerState
	bad      int // consecutive bad outcomes
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	// gen counts open transitions. Tickets record the generation they were
	// admitted under; a ticket settled after the breaker has since tripped
	// (or re-tripped) is stale and ignored, so an outcome from a solve
	// admitted before the trip can neither close the breaker on a stale
	// success nor double-count a stale failure.
	gen uint64
}

// breakerTicket is the obligation admit hands to an admitted caller: it
// MUST be settled exactly once, on every exit path (settle is idempotent
// and nil-safe, so `defer settle(tok, ...)` is the intended shape). This
// is what guarantees a half-open probe slot can never leak — before
// tickets, an early return between admit and observe wedged the key's
// breaker in probing state forever.
type breakerTicket struct {
	key     leaseKey
	gen     uint64
	probe   bool
	settled bool
}

// BreakerInfo describes one tripped (non-closed) breaker in /v1/stats.
type BreakerInfo struct {
	Key            string `json:"key"`
	State          string `json:"state"`
	ConsecutiveBad int    `json:"consecutive_bad"`
}

// BreakerStats is the breaker section of /v1/stats: instantaneous state
// counts plus every non-closed breaker by key, so an operator can see
// which proposal class is failing without scraping logs.
type BreakerStats struct {
	Closed   int           `json:"closed"`
	Open     int           `json:"open"`
	HalfOpen int           `json:"half_open"`
	Tripped  []BreakerInfo `json:"tripped,omitempty"`
}

// breakerSet owns one breaker per lease key. Keys whose breaker returns
// to a clean closed state are pruned, so the map tracks only keys with
// recent trouble.
type breakerSet struct {
	mu        sync.Mutex
	m         map[leaseKey]*breaker
	threshold int           // consecutive bad outcomes that trip
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time
	trips     atomic.Int64 // cumulative transitions to open
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{
		m:         make(map[leaseKey]*breaker),
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// admit asks whether a solve for the key may proceed. An admitted caller
// gets a non-nil ticket it must settle exactly once (defer it). A
// refusal returns a nil ticket and the Retry-After hint in whole
// seconds: the remaining cooldown for an open breaker, one second while
// a half-open probe is already in flight.
func (bs *breakerSet) admit(key leaseKey) (tok *breakerTicket, retryAfterSecs int) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[key]
	if b == nil {
		return &breakerTicket{key: key}, 0
	}
	switch b.state {
	case breakerClosed:
		return &breakerTicket{key: key, gen: b.gen}, 0
	case breakerOpen:
		remaining := b.openedAt.Add(bs.cooldown).Sub(bs.now())
		if remaining > 0 {
			secs := int((remaining + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			return nil, secs
		}
		// Cooldown over: this caller becomes the half-open probe.
		b.state = breakerHalfOpen
		b.probing = true
		return &breakerTicket{key: key, gen: b.gen, probe: true}, 0
	default: // half-open
		if b.probing {
			return nil, 1
		}
		b.probing = true
		return &breakerTicket{key: key, gen: b.gen, probe: true}, 0
	}
}

// settle records the outcome of an admitted solve. It is nil-safe and
// idempotent per ticket, so callers defer it unconditionally. A neutral
// outcome releases a probe slot (the next admit becomes the probe)
// without moving the state machine; a ticket from a generation older
// than the breaker's current open cycle is ignored entirely.
func (bs *breakerSet) settle(tok *breakerTicket, out breakerOutcome) {
	if tok == nil {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if tok.settled {
		return
	}
	tok.settled = true
	b := bs.m[tok.key]
	if b == nil {
		// Clean key: only a bad outcome starts tracking it.
		if out != outcomeBad {
			return
		}
		b = &breaker{}
		bs.m[tok.key] = b
	}
	if tok.gen != b.gen {
		return // stale: admitted before the last trip
	}
	if tok.probe {
		b.probing = false
		switch out {
		case outcomeGood:
			delete(bs.m, tok.key) // probe succeeded: closed and clean
		case outcomeBad:
			// Probe failed: back to open for another cooldown.
			b.state = breakerOpen
			b.openedAt = bs.now()
			b.bad++
			b.gen++
			bs.trips.Add(1)
		default:
			// Neutral probe (e.g. client cancelled): stay half-open with the
			// slot free, so the next request becomes the probe.
		}
		return
	}
	switch out {
	case outcomeBad:
		b.bad++
		if b.state == breakerClosed && b.bad >= bs.threshold {
			b.state = breakerOpen
			b.openedAt = bs.now()
			b.gen++
			bs.trips.Add(1)
		}
	case outcomeGood:
		if b.state == breakerClosed {
			delete(bs.m, tok.key)
		}
	default:
		// Neutral: no signal either way.
	}
}

// snapshot renders the /v1/stats view, tripped keys sorted for
// deterministic output.
func (bs *breakerSet) snapshot() BreakerStats {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := BreakerStats{}
	for k, b := range bs.m {
		switch b.state {
		case breakerOpen:
			out.Open++
		case breakerHalfOpen:
			out.HalfOpen++
		default:
			out.Closed++
			continue
		}
		out.Tripped = append(out.Tripped, BreakerInfo{
			Key:            k.mapping + "|" + k.solver + "|" + k.resolution + "|" + k.fault,
			State:          b.state.String(),
			ConsecutiveBad: b.bad,
		})
	}
	sort.Slice(out.Tripped, func(i, j int) bool { return out.Tripped[i].Key < out.Tripped[j].Key })
	return out
}
