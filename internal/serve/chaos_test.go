package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestChaosHarness is the service-layer chaos drill: with every injector
// armed (latency, handler panics, solver sabotage, hard solve failures,
// lease poisoning) a storm of concurrent proposals must uphold the
// service invariants — successful bodies stay byte-deterministic per
// proposal, refusals stay structured (only known status codes, panics
// recovered and counted), a blade streamed through the storm lands at
// the exact simulated time, and the drain + checkpoint + restore cycle
// completes without leaking a goroutine.
func TestChaosHarness(t *testing.T) {
	old := debugLogWriter
	debugLogWriter = io.Discard
	defer func() { debugLogWriter = old }()
	before := runtime.NumGoroutine()

	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	s, err := New(Config{Workers: 2, CheckpointPath: ckpt, BreakerThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	s.SetChaos(&ChaosConfig{
		Seed:         42,
		LatencyRate:  0.2,
		MaxLatency:   2 * time.Millisecond,
		PanicRate:    0.1,
		SabotageRate: 0.15,
		FailRate:     0.1,
		PoisonRate:   0.2,
	})

	client := NewClient(7)
	client.MaxRetries = 2
	client.BaseDelay = time.Millisecond
	client.MaxDelay = 5 * time.Millisecond

	// Four distinct proposals, hammered concurrently under the storm.
	proposals := make([]string, 4)
	for i := range proposals {
		proposals[i] = fmt.Sprintf(`{"benchmark":"x264","water_c":%d,"water_flow_kgh":7}`, 25+i)
	}
	const perKey = 10
	var (
		mu       sync.Mutex
		statuses = map[int]int{}
		bodies   = make([]map[string]bool, len(proposals))
		wg       sync.WaitGroup
	)
	for i := range bodies {
		bodies[i] = map[string]bool{}
	}
	for k, p := range proposals {
		for j := 0; j < perKey; j++ {
			wg.Add(1)
			go func(k int, body string) {
				defer wg.Done()
				resp, err := client.PostJSON(context.Background(), ts.URL+"/v1/steady", []byte(body))
				if err != nil {
					t.Errorf("transport error under chaos: %v", err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					bodies[k][string(b)] = true
				}
				mu.Unlock()
			}(k, p)
		}
	}
	wg.Wait()

	// Bounded failure modes: every outcome is a known status, successes
	// dominate (retries absorb backpressure; only panics and injected
	// failures surface), and each proposal's successes are one byte string.
	total := 0
	for code, n := range statuses {
		total += n
		switch code {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusInternalServerError, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unexpected status %d under chaos (%d times)", code, n)
		}
	}
	if total != len(proposals)*perKey {
		t.Fatalf("accounted %d outcomes, want %d", total, len(proposals)*perKey)
	}
	if ok := statuses[http.StatusOK]; ok < total/3 {
		t.Fatalf("only %d/%d succeeded under chaos: %v", ok, total, statuses)
	}
	for k, set := range bodies {
		if len(set) > 1 {
			t.Fatalf("proposal %d produced %d distinct success bodies under chaos", k, len(set))
		}
	}
	st := s.Snapshot()
	if st.PanicsRecovered == 0 {
		t.Fatalf("panic injector armed but none recovered: %+v", st)
	}

	// Stream a blade through the storm with exactly-once seq numbers:
	// chaos may panic or refuse any attempt, but a blind retry of the same
	// seq can never double-advance the sim.
	register := func() {
		for attempt := 0; attempt < 100; attempt++ {
			resp, err := client.PostJSON(context.Background(), ts.URL+"/v1/transient",
				[]byte(`{"blade":"b0","benchmark":"x264"}`))
			if err != nil {
				t.Fatal(err)
			}
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusCreated {
				return
			}
		}
		t.Fatal("blade never registered under chaos")
	}
	register()
	for seq := 1; seq <= 3; seq++ {
		chunk := fmt.Sprintf(`{"seq":%d,"dt_s":0.25,"steps":[{},{}]}`, seq)
		okCount := 0
		for attempt := 0; attempt < 100 && okCount == 0; attempt++ {
			resp, err := client.PostJSON(context.Background(), ts.URL+"/v1/transient/b0/step", []byte(chunk))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode == http.StatusOK {
				okCount++
			}
			resp.Body.Close()
		}
		if okCount == 0 {
			t.Fatalf("seq %d never applied under chaos", seq)
		}
	}
	statusOf := func(h http.Handler) float64 {
		w := get(t, h, "/v1/transient/b0")
		if w.Code != http.StatusOK {
			t.Fatalf("blade status: %d %s", w.Code, w.Body)
		}
		var out struct {
			TimeS float64 `json:"time_s"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.TimeS
	}
	s.SetChaos(nil)
	if got := statusOf(s.Handler()); got != 1.5 {
		t.Fatalf("blade time after 3 exactly-once chunks = %v, want 1.5 (retries double-stepped?)", got)
	}

	// Drain: the final checkpoint preserves the blade, Close completes,
	// and a restored server resumes at the same time.
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close under post-chaos drain: %v", err)
	}
	s2, err := New(Config{CheckpointPath: ckpt, RestoreOnStart: true})
	if err != nil {
		t.Fatalf("restore after chaos run: %v", err)
	}
	if got := statusOf(s2.Handler()); got != 1.5 {
		t.Fatalf("restored blade time = %v, want 1.5", got)
	}
	s2.Close()

	// No goroutine leaks once the drains settle.
	if c := client.HTTP; c != nil {
		c.CloseIdleConnections()
	}
	leakDeadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutine leak: %d before, %d after chaos drill", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosDeterministicDraws: the injector's decision sequence is fixed
// by the seed — two injectors with the same config draw identically.
func TestChaosDeterministicDraws(t *testing.T) {
	mk := func() *chaos {
		s := &Server{}
		s.SetChaos(&ChaosConfig{Seed: 9, FailRate: 0.3, PanicRate: 0.2, LatencyRate: 0.5, MaxLatency: time.Millisecond})
		return s.loadChaos()
	}
	a, b := mk(), mk()
	var seqA, seqB bytes.Buffer
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&seqA, "%v%v%v;", a.roll(a.cfg.FailRate), a.roll(a.cfg.PanicRate), a.latency())
		fmt.Fprintf(&seqB, "%v%v%v;", b.roll(b.cfg.FailRate), b.roll(b.cfg.PanicRate), b.latency())
	}
	if seqA.String() != seqB.String() {
		t.Fatal("same seed drew different chaos sequences")
	}
}
