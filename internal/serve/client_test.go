package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesRefusals: 429s inside the retry budget are retried
// until the server relents; the Retry-After hint raises the drawn delay.
func TestClientRetriesRefusals(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := NewClient(1)
	c.BaseDelay = time.Millisecond
	c.MaxDelay = 5 * time.Millisecond // caps the 1 s Retry-After for test speed
	var delays []time.Duration
	c.OnRetry = func(attempt, status int, delay time.Duration) {
		if status != http.StatusTooManyRequests {
			t.Errorf("retry observed status %d", status)
		}
		delays = append(delays, delay)
	}
	resp, err := c.PostJSON(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if c.Retries() != 2 || len(delays) != 2 {
		t.Fatalf("retries = %d, observed %d", c.Retries(), len(delays))
	}
	for _, d := range delays {
		// Retry-After (1 s) exceeds the envelope, so every delay is pinned
		// to the MaxDelay cap.
		if d != c.MaxDelay {
			t.Fatalf("delay %v, want Retry-After raised then capped at %v", d, c.MaxDelay)
		}
	}
}

// TestClientDoesNotRetryDeterministicFailures: a 500 is returned
// immediately — a deterministic solver fails the retry identically.
func TestClientDoesNotRetryDeterministicFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient(1)
	resp, err := c.PostJSON(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || calls.Load() != 1 || c.Retries() != 0 {
		t.Fatalf("status %d after %d calls, %d retries", resp.StatusCode, calls.Load(), c.Retries())
	}
}

// TestClientHonorsDeadline: when the backoff cannot complete before the
// context deadline, the client surfaces the live refusal instead of
// sleeping past it.
func TestClientHonorsDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := NewClient(1)
	c.MaxDelay = time.Minute // lets the 30 s hint through
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	resp, err := c.PostJSON(ctx, ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the live 503", resp.StatusCode)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("client slept %v past its deadline", elapsed)
	}
	if c.Retries() != 0 {
		t.Fatalf("retries = %d, want 0 (no sleep fit the deadline)", c.Retries())
	}
}

// TestClientBackoffDeterministic: two clients with the same seed draw the
// same jittered schedule.
func TestClientBackoffDeterministic(t *testing.T) {
	a, b := NewClient(42), NewClient(42)
	a.BaseDelay, b.BaseDelay = time.Millisecond, time.Millisecond
	a.MaxDelay, b.MaxDelay = 100*time.Millisecond, 100*time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		if da, db := a.backoff(attempt, 0), b.backoff(attempt, 0); da != db {
			t.Fatalf("attempt %d: %v vs %v", attempt, da, db)
		}
	}
}
