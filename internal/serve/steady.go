package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/chiller"
	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// The service models one blade; fault scopes resolve against these names,
// matching the fleet naming of cmd/rackplan (loop0, r0b0), so the same
// -fault spec strings work against both.
const (
	serveLoopName  = "loop0"
	serveBladeName = "r0b0"
)

// ambientC is the chiller-side ambient the cooling budget is costed
// against, the same 35 °C cmd/rackplan uses.
const ambientC = 35

// SteadyRequest is one steady-state what-if proposal. A proposal either
// names a benchmark and a core mapping (the power model derives per-block
// powers) or carries explicit per-block powers. Omitted fields take the
// documented defaults; the normalized form — defaults filled, active
// cores sorted — is echoed back as "proposal" in the response and is the
// response-cache key, so two spellings of the same proposal hit the same
// cache line.
type SteadyRequest struct {
	// Benchmark is a PARSEC workload name (see workload.All). Mutually
	// exclusive with BlockPowerW.
	Benchmark string `json:"benchmark,omitempty"`
	// Cores/Threads/FreqGHz are the execution configuration (defaults:
	// 8 cores, one thread per core, 3.2 GHz).
	Cores   int     `json:"cores,omitempty"`
	Threads int     `json:"threads,omitempty"`
	FreqGHz float64 `json:"freq_ghz,omitempty"`
	// ActiveCores lists the physical cores loaded (default 0..Cores-1).
	ActiveCores []int `json:"active_cores,omitempty"`
	// Idle is the C-state of inactive cores: POLL|C1|C1E|C3|C6 (default
	// POLL).
	Idle string `json:"idle,omitempty"`
	// BlockPowerW is an explicit per-block power map (W) over the
	// Broadwell-EP floorplan, for proposals outside the workload model.
	BlockPowerW map[string]float64 `json:"block_power_w,omitempty"`
	// WaterC / WaterFlowKgH are the condenser coolant operating point
	// (defaults: the paper's 30 °C at 7 kg/h).
	WaterC       float64 `json:"water_c,omitempty"`
	WaterFlowKgH float64 `json:"water_flow_kgh,omitempty"`
	// Fault is a cooling-fault scenario in the -fault flag grammar, e.g.
	// "pump:0.5" (see internal/faults). Scoped terms resolve against
	// loop0 / r0b0.
	Fault string `json:"fault,omitempty"`
	// Solver / Resolution override the server defaults: cg|mgpcg|mg|
	// mgpcg32|mgpcg-cheb and coarse|medium|full.
	Solver     string `json:"solver,omitempty"`
	Resolution string `json:"resolution,omitempty"`
}

// BlockTempJSON is one per-block die temperature of a steady response.
type BlockTempJSON struct {
	Name  string  `json:"name"`
	MeanC float64 `json:"mean_c"`
	MaxC  float64 `json:"max_c"`
}

// SteadyCooling is the cooling-budget section of a steady response.
type SteadyCooling struct {
	WaterOutC     float64 `json:"water_out_c"`
	DeltaTC       float64 `json:"delta_t_c"`
	Eq1PowerW     float64 `json:"eq1_power_w"`
	ChillerPowerW float64 `json:"chiller_power_w"`
	PUE           float64 `json:"pue"`
}

// SteadyResponse is the converged answer to a steady proposal. Field
// order is fixed and every value is produced deterministically, so
// identical proposals marshal to byte-identical bodies.
type SteadyResponse struct {
	Proposal    SteadyRequest   `json:"proposal"`
	DieMaxC     float64         `json:"die_max_c"`
	DieMeanC    float64         `json:"die_mean_c"`
	DieGradCPmm float64         `json:"die_grad_c_per_mm"`
	PkgMaxC     float64         `json:"pkg_max_c"`
	PkgMeanC    float64         `json:"pkg_mean_c"`
	TCaseC      float64         `json:"tcase_c"`
	Blocks      []BlockTempJSON `json:"blocks"`
	TotalPowerW float64         `json:"total_power_w"`
	Iterations  int             `json:"iterations"`
	Escalations int             `json:"escalations"`
	DryoutCells int             `json:"dryout_cells"`
	Feasible    bool            `json:"feasible"`
	Cooling     SteadyCooling   `json:"cooling"`
	MaxQuality  float64         `json:"max_quality"`
	FlowKgHUsed float64         `json:"flow_kgh_used"`
}

// steadyProposal is a validated, normalized proposal ready to solve.
type steadyProposal struct {
	req      SteadyRequest // canonical form
	key      string        // canonical JSON — the memo key
	lease    leaseKey
	st       power.PackageState
	bp       map[string]float64
	op       thermosyphon.Operating
	scenario faults.Scenario
}

// parseIdle resolves an idle C-state name.
func parseIdle(s string) (power.CState, error) {
	for _, c := range []power.CState{power.POLL, power.C1, power.C1E, power.C3, power.C6} {
		if s == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown idle state %q (want POLL|C1|C1E|C3|C6)", s)
}

// normalizeSteady validates a request, fills defaults, and derives the
// canonical cache keys and solver inputs.
func (s *Server) normalizeSteady(req SteadyRequest) (*steadyProposal, error) {
	p := &steadyProposal{}
	if req.Benchmark != "" && len(req.BlockPowerW) > 0 {
		return nil, errors.New("benchmark and block_power_w are mutually exclusive")
	}
	if req.Benchmark == "" && len(req.BlockPowerW) == 0 {
		return nil, errors.New("a proposal needs a benchmark or an explicit block_power_w map")
	}

	if req.Resolution == "" {
		req.Resolution = s.cfg.Resolution.String()
	}
	res, err := experiments.ParseResolution(req.Resolution)
	if err != nil {
		return nil, err
	}
	if req.Solver == "" {
		req.Solver = s.cfg.Solver.String()
	}
	if _, err := thermal.ParseSolver(req.Solver); err != nil {
		return nil, err
	}

	if req.WaterC == 0 && req.WaterFlowKgH == 0 {
		def := thermosyphon.DefaultOperating()
		req.WaterC, req.WaterFlowKgH = def.WaterInC, def.WaterFlowKgH
	}
	p.op = thermosyphon.Operating{WaterInC: req.WaterC, WaterFlowKgH: req.WaterFlowKgH}
	if err := p.op.Validate(); err != nil {
		return nil, err
	}

	req.Fault = strings.TrimSpace(req.Fault)
	sc, err := faults.Parse(req.Fault)
	if err != nil {
		return nil, err
	}
	p.scenario = sc

	var mappingKey string
	if req.Benchmark != "" {
		b, err := workload.ByName(req.Benchmark)
		if err != nil {
			return nil, err
		}
		if req.Cores == 0 {
			req.Cores = 8
		}
		if req.Threads == 0 {
			req.Threads = req.Cores
		}
		if req.FreqGHz == 0 {
			req.FreqGHz = float64(power.FMax)
		}
		wcfg := workload.Config{Cores: req.Cores, Threads: req.Threads, Freq: power.Frequency(req.FreqGHz)}
		if !wcfg.Valid() {
			return nil, fmt.Errorf("invalid execution config %s: want 1..8 cores, threads = cores or 2×cores, freq in {2.6, 2.9, 3.2}", wcfg)
		}
		if len(req.ActiveCores) == 0 {
			for i := 0; i < req.Cores; i++ {
				req.ActiveCores = append(req.ActiveCores, i)
			}
		}
		if len(req.ActiveCores) != req.Cores {
			return nil, fmt.Errorf("active_cores lists %d cores for a %d-core config", len(req.ActiveCores), req.Cores)
		}
		sort.Ints(req.ActiveCores)
		for i, c := range req.ActiveCores {
			if c < 0 || c > 7 {
				return nil, fmt.Errorf("active core %d out of range 0..7", c)
			}
			if i > 0 && req.ActiveCores[i-1] == c {
				return nil, fmt.Errorf("active core %d listed twice", c)
			}
		}
		if req.Idle == "" {
			req.Idle = power.POLL.String()
		}
		idle, err := parseIdle(req.Idle)
		if err != nil {
			return nil, err
		}
		m := core.Mapping{ActiveCores: req.ActiveCores, IdleState: idle, Config: wcfg}
		p.st = core.PackageState(b, m)
		mappingKey = fmt.Sprintf("bench=%s cores=%d threads=%d freq=%.1f active=%v idle=%s",
			req.Benchmark, req.Cores, req.Threads, req.FreqGHz, req.ActiveCores, req.Idle)
	} else {
		for name, w := range req.BlockPowerW {
			if !s.dieBlocks[name] {
				return nil, fmt.Errorf("block_power_w names unknown block %q", name)
			}
			if w < 0 {
				return nil, fmt.Errorf("block %q has negative power %g W", name, w)
			}
		}
		p.bp = req.BlockPowerW
		// json.Marshal sorts map keys, so this sub-key is canonical.
		b, err := canonicalJSON(req.BlockPowerW)
		if err != nil {
			return nil, err
		}
		mappingKey = "power=" + string(b)
	}

	p.lease = leaseKey{
		floorplan:  "broadwell-ep",
		mapping:    mappingKey,
		solver:     req.Solver,
		resolution: res.String(),
		fault:      req.Fault,
	}
	p.req = req
	keyBytes, err := canonicalJSON(req)
	if err != nil {
		return nil, err
	}
	p.key = string(keyBytes)
	return p, nil
}

// buildLease is the lease cache's session factory: a fresh system with
// the key's (possibly fault-derated) design and a session configured with
// the key's solver, the budget's team width, and the server's warm-carry
// mode.
func (s *Server) buildLease(key leaseKey) (*cosim.System, *cosim.Session, error) {
	res, err := experiments.ParseResolution(key.resolution)
	if err != nil {
		return nil, nil, err
	}
	solver, err := thermal.ParseSolver(key.solver)
	if err != nil {
		return nil, nil, err
	}
	sc, err := faults.Parse(key.fault)
	if err != nil {
		return nil, nil, err
	}
	design := sc.ApplyDesign(thermosyphon.DefaultDesign(), serveLoopName, serveBladeName)
	sys, err := experiments.NewSystem(design, res)
	if err != nil {
		return nil, nil, err
	}
	opts := []cosim.SessionOption{
		cosim.WithSolver(solver),
		cosim.CarryWarmStart(s.cfg.CarryWarmStart),
	}
	if s.cfg.Threads > 1 {
		opts = append(opts, cosim.WithThreads(s.cfg.Threads))
	}
	return sys, sys.NewSession(opts...), nil
}

// operatingFor derates the requested coolant flow by the scenario's pump
// and blade-level cooling faults, mirroring how the datacenter solver
// derates a faulted fleet.
func (p *steadyProposal) operatingFor() thermosyphon.Operating {
	op := p.op
	l := p.scenario.ApplyLoop(rack.SharedLoop{PerBladeFlowKgH: op.WaterFlowKgH}, serveLoopName)
	op.WaterFlowKgH = l.PerBladeFlowKgH * p.scenario.FlowScale(serveLoopName, serveBladeName)
	return op
}

// solveSteady runs one proposal on a leased session (the lease's lock
// must be held) and renders the response.
func (s *Server) solveSteady(ctx context.Context, l *lease, p *steadyProposal) (*SteadyResponse, error) {
	op := p.operatingFor()
	escBefore := len(l.ses.Escalations())
	var (
		res *cosim.Result
		err error
	)
	if p.bp != nil {
		res, err = l.ses.SolveSteadyPower(ctx, p.bp, op)
	} else {
		res, err = l.ses.SolveSteady(ctx, p.st, op)
	}
	if err != nil {
		return nil, err
	}
	die, err := l.sys.DieStats(res)
	if err != nil {
		return nil, err
	}
	pkg, err := l.sys.PackageStats(res)
	if err != nil {
		return nil, err
	}
	blocks, err := l.sys.BlockTemps(res)
	if err != nil {
		return nil, err
	}
	tcase := l.sys.TCase(res)
	budget, err := chiller.Assess(op.WaterFlowKgH, op.WaterInC, res.Syphon.Condenser.WaterOutC, ambientC)
	if err != nil {
		return nil, err
	}
	pue, err := chiller.PUE(res.TotalPowerW, budget.ChillerPowerW)
	if err != nil {
		return nil, err
	}
	out := &SteadyResponse{
		Proposal:    p.req,
		DieMaxC:     die.MaxC,
		DieMeanC:    die.MeanC,
		DieGradCPmm: die.MaxGradCPerMM,
		PkgMaxC:     pkg.MaxC,
		PkgMeanC:    pkg.MeanC,
		TCaseC:      tcase,
		TotalPowerW: res.TotalPowerW,
		Iterations:  res.Iterations,
		Escalations: len(l.ses.Escalations()) - escBefore,
		DryoutCells: res.Syphon.DryoutCells,
		Feasible:    tcase <= sched.TCaseMax && res.Syphon.DryoutCells == 0,
		Cooling: SteadyCooling{
			WaterOutC:     res.Syphon.Condenser.WaterOutC,
			DeltaTC:       budget.WaterDeltaT,
			Eq1PowerW:     budget.Eq1PowerW,
			ChillerPowerW: budget.ChillerPowerW,
			PUE:           pue,
		},
		MaxQuality:  res.Syphon.MaxQuality,
		FlowKgHUsed: op.WaterFlowKgH,
	}
	out.Blocks = make([]BlockTempJSON, len(blocks))
	for i, b := range blocks {
		out.Blocks[i] = BlockTempJSON{Name: b.Name, MeanC: b.MeanC, MaxC: b.MaxC}
	}
	return out, nil
}

// handleSteady is POST /v1/steady: memo hit → stored bytes; miss →
// single-flight per proposal (duplicates wait for the leader's outcome
// instead of competing for admission), admission, lease, solve under the
// request deadline, memoize, reply.
func (s *Server) handleSteady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.stats.steadyRequests.Add(1)
	var req SteadyRequest
	if err := s.decode(w, r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := s.normalizeSteady(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if body, ok := s.memo.get(p.key); ok {
		s.stats.memoHits.Add(1)
		writeCached(w, body, "hit")
		return
	}

	ctx, cancel := experiments.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	f, leader := s.flights.join(p.key)
	if !leader {
		// An identical proposal is already solving: share its outcome.
		select {
		case <-f.done:
		case <-ctx.Done():
			s.writeFailure(w, solveStatus(ctx.Err()), solveMsg(ctx.Err()), 0)
			return
		}
		if f.body != nil {
			s.stats.memoHits.Add(1)
			writeCached(w, f.body, "hit")
			return
		}
		s.writeFailure(w, f.status, f.errMsg, f.retryAfter)
		return
	}
	body, status, msg, retryAfter := s.solveProposal(ctx, p)
	f.body, f.status, f.errMsg, f.retryAfter = body, status, msg, retryAfter
	s.flights.finish(p.key, f)
	if body != nil {
		s.stats.memoMisses.Add(1)
		writeCached(w, body, "miss")
		return
	}
	s.writeFailure(w, status, msg, retryAfter)
}

// solveProposal runs the miss path end to end — breaker, admission,
// lease, solve (with any armed chaos applied), memoize — and returns the
// response body, or a non-zero HTTP status with a message and an
// optional Retry-After hint in seconds.
func (s *Server) solveProposal(ctx context.Context, p *steadyProposal) ([]byte, int, string, int) {
	// The circuit breaker sits before admission: a tripped proposal class
	// must not consume solve slots other classes could use.
	tok, ra := s.breakers.admit(p.lease)
	if tok == nil {
		return nil, http.StatusServiceUnavailable,
			"circuit breaker open for this proposal class; retry after the cooldown", ra
	}
	// Every exit path below must settle the ticket, or a half-open probe
	// slot would leak and wedge the class; the default neutral outcome
	// covers the paths where the solver never got a say (admission or
	// lease failure, client cancellation).
	outcome := outcomeNeutral
	defer func() { s.breakers.settle(tok, outcome) }()
	release, err := s.adm.acquire(ctx)
	if err != nil {
		if errors.Is(err, errBusy) {
			return nil, http.StatusTooManyRequests, err.Error(), s.retryAfterSecs()
		}
		return nil, solveStatus(err), solveMsg(err), 0
	}
	defer release()
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)

	l, err := s.leases.acquire(p.lease)
	if err != nil {
		return nil, http.StatusInternalServerError, err.Error(), 0
	}
	c := s.loadChaos()
	sabotage := c != nil && c.roll(c.cfg.SabotageRate)
	failInject := c != nil && c.roll(c.cfg.FailRate)
	l.mu.Lock()
	var resp *SteadyResponse
	if sabotage {
		l.ses.InjectMGFault(true)
	}
	if failInject {
		err = errChaosFail
	} else {
		resp, err = s.solveSteady(ctx, l, p)
	}
	if sabotage {
		l.ses.InjectMGFault(false)
	}
	// The breaker counts hard solver failures and escalation-ladder
	// rescues as bad; client cancellations and deadlines are not the
	// solver's fault and stay neutral.
	switch {
	case err == nil && resp.Escalations > 0:
		outcome = outcomeBad
	case err == nil:
		outcome = outcomeGood
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// outcome stays neutral
	default:
		outcome = outcomeBad
	}
	if err != nil {
		l.mu.Unlock()
		// A failed solve poisons the lease: evict it so no later request
		// inherits the session (its warm carry is already invalidated by
		// the session itself, the cache eviction is belt and braces).
		s.leases.release(l, true)
		return nil, solveStatus(err), solveMsg(err), 0
	}
	body, err := canonicalJSON(resp)
	l.mu.Unlock()
	s.leases.release(l, c != nil && c.roll(c.cfg.PoisonRate))
	if err != nil {
		return nil, http.StatusInternalServerError, err.Error(), 0
	}
	body = append(body, '\n')
	// Memoize before the flight finishes: later arrivals re-check the
	// memo first, so the window between finish and put must not exist.
	s.memo.put(p.key, body)
	return body, 0, "", 0
}

// writeFailure renders a non-200 solve-path outcome, keeping the 429
// bookkeeping (rejected counter) and the Retry-After hint in one place.
func (s *Server) writeFailure(w http.ResponseWriter, status int, msg string, retryAfterSecs int) {
	if status == http.StatusTooManyRequests {
		s.stats.rejected.Add(1)
		if retryAfterSecs <= 0 {
			retryAfterSecs = s.retryAfterSecs()
		}
	}
	writeError(w, status, msg, retryAfterSecs)
}

// rejectSolve maps admission failures for the non-memoized handlers
// (transient, experiments): queue full → 429 backpressure, deadline → 504.
func (s *Server) rejectSolve(w http.ResponseWriter, err error) {
	if errors.Is(err, errBusy) {
		s.writeFailure(w, http.StatusTooManyRequests, err.Error(), s.retryAfterSecs())
		return
	}
	s.solveError(w, err)
}

// solveError maps solve failures to statuses via solveStatus/solveMsg.
func (s *Server) solveError(w http.ResponseWriter, err error) {
	writeError(w, solveStatus(err), solveMsg(err))
}

// solveStatus maps a solve failure to an HTTP status: deadline → 504,
// client cancellation → 499 (nginx's convention, there is no standard
// code), anything else → 500.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func solveMsg(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "solve deadline exceeded"
	case errors.Is(err, context.Canceled):
		return "client cancelled"
	default:
		return err.Error()
	}
}

func writeCached(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Write(body)
}

// canonicalJSON marshals with encoding/json's deterministic rules (fixed
// struct field order, sorted map keys) — the byte-determinism contract of
// the memo keys and response bodies leans on it.
func canonicalJSON(v any) ([]byte, error) {
	return json.Marshal(v)
}
