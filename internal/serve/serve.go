// Package serve is the thermal digital-twin service layer: a long-running
// HTTP/JSON front end over the warm solve stack that PRs 1–8 built. It
// turns the batch CLIs into a daemon where a warm-cache hit *is* the
// product — a repeated steady what-if query against the same
// floorplan+mapping answers from the response memo in well under a
// millisecond, while a cold miss pays the full system build + coupled
// solve.
//
// The subsystem has four moving parts:
//
//   - A session-lease manager (lease.go): a sharded LRU cache of warm
//     cosim.Sessions keyed by (floorplan, mapping, solver, resolution,
//     fault). Leases serialize solves per session (sessions are not
//     concurrency-safe), reuse is counted, and eviction/drain close the
//     session through the idempotent Session.Close contract. Solve
//     failures evict the lease — the PR 8 warm-start-invalidation rule
//     lifted to the cache: a poisoned session never serves another
//     request.
//   - A response memo (memo.go) with single-flight misses (flight.go): an
//     LRU of canonical proposal → response body bytes. Identical proposals
//     return byte-identical bodies across cache hit/miss and across
//     concurrent clients; racing identical misses collapse onto one solve
//     and one admission slot, the followers sharing the leader's outcome.
//   - Bounded admission (admission.go): at most Workers concurrent solves
//     (resolved through experiments.RunConfig.SplitBudget, the same
//     workers×threads core budget the sweep engine uses) with a bounded
//     wait queue; beyond it, requests are refused with 429 + Retry-After
//     instead of piling up.
//   - Graceful drain: BeginDrain flips every endpoint to 503, in-flight
//     requests finish (http.Server.Shutdown's contract), then Close
//     retires every cached session and registered transient blade.
//
// Determinism contract: with the warm-start carry disabled (the default),
// every solve seeds exactly like a fresh-session solve, so a recomputed
// response — after memo eviction, on another session, on a fresh server —
// is byte-identical to the first. Config.CarryWarmStart trades that
// cross-request reproducibility for ~300× warm re-solves of *nearby*
// proposals; identical proposals stay byte-identical either way because
// they are served from the memo.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/thermal"
)

// Config parameterizes a Server. The zero value is usable: coarse
// resolution, the CG solver, an auto-split core budget, and default cache
// and queue capacities.
type Config struct {
	// Resolution is the default thermal grid density for proposals that
	// do not select one.
	Resolution experiments.Resolution
	// Solver is the default linear solver for proposals that do not
	// select one.
	Solver thermal.Solver
	// Workers bounds concurrent solves; Threads is the per-session team
	// width. Either zero is resolved through the shared
	// experiments.RunConfig.SplitBudget core budget (workers × threads ≤
	// GOMAXPROCS, width-first), exactly like a sweep.
	Workers int
	Threads int
	// QueueDepth bounds how many admitted requests may wait for a solve
	// slot before new ones are refused with 429 (0 = 2×Workers).
	QueueDepth int
	// Sessions caps the lease cache (0 = 64 sessions).
	Sessions int
	// MemoEntries caps the response memo (0 = 4096 bodies).
	MemoEntries int
	// Transients caps concurrently registered transient blades (0 = 16).
	Transients int
	// MaxSteps caps the steps of one transient chunk (0 = 10000).
	MaxSteps int
	// CarryWarmStart enables the cross-solve warm-start carry inside each
	// cached session. Off (the default), every solve is byte-identical to
	// a fresh-session solve; on, nearby what-ifs on a warm session
	// converge ~300× faster but recomputed bodies are only
	// tolerance-identical. Identical proposals are memoized either way.
	CarryWarmStart bool
	// RequestTimeout bounds each request's solve (0 = no limit). The
	// deadline threads through the ctx-aware solve loops, so a timed-out
	// solve aborts between coupling iterations.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = 1 MiB).
	MaxBodyBytes int64
	// CheckpointPath, when set, enables transient-state checkpointing:
	// POST /v1/checkpoint snapshots on demand, Close snapshots on drain,
	// and CheckpointEvery (when positive) snapshots periodically. The
	// file is versioned, checksummed, and written atomically.
	CheckpointPath  string
	CheckpointEvery time.Duration
	// RestoreOnStart restores the transient registry from CheckpointPath
	// during New: every checkpointed blade resumes at its exact simulated
	// time. A missing file is a fresh boot; a corrupt file fails New.
	RestoreOnStart bool
	// BreakerThreshold is the consecutive bad solve outcomes (hard
	// failures or escalation-ladder rescues) that trip a proposal class's
	// circuit breaker (0 = 3); BreakerCooldown is how long a tripped
	// breaker refuses with 503 before half-open probing (0 = 5 s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (c Config) withDefaults() Config {
	rc := experiments.RunConfig{Workers: c.Workers, Threads: c.Threads}.
		SplitBudget(runtime.GOMAXPROCS(0))
	c.Workers, c.Threads = rc.Workers, rc.Threads
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if c.MemoEntries <= 0 {
		c.MemoEntries = 4096
	}
	if c.Transients <= 0 {
		c.Transients = 16
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 10000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// Stats is the server's observability snapshot (GET /v1/stats). Counters
// are cumulative since start; gauges are instantaneous.
type Stats struct {
	SteadyRequests int64 `json:"steady_requests"`
	MemoHits       int64 `json:"memo_hits"`
	MemoMisses     int64 `json:"memo_misses"`
	SessionReuses  int64 `json:"session_reuses"`
	SessionBuilds  int64 `json:"session_builds"`
	Evictions      int64 `json:"evictions"`
	Rejected       int64 `json:"rejected"`
	TransientSteps int64 `json:"transient_steps"`
	ExperimentRuns int64 `json:"experiment_runs"`
	InFlight       int64 `json:"in_flight"`
	// Resilience counters: handler panics turned into structured 500s,
	// retried transient step chunks answered from the dedup cache (the
	// observable trace of exactly-once stepping), circuit-breaker trips
	// and per-breaker state, and checkpoint activity.
	PanicsRecovered          int64        `json:"panics_recovered"`
	StepsDeduped             int64        `json:"steps_deduped"`
	BreakerTrips             int64        `json:"breaker_trips"`
	Breakers                 BreakerStats `json:"breakers"`
	CheckpointSaves          int64        `json:"checkpoint_saves"`
	CheckpointBladesRestored int64        `json:"checkpoint_blades_restored"`
	Sessions                 int          `json:"sessions"`
	Transients               int          `json:"transients"`
	Draining                 bool         `json:"draining"`
}

type counters struct {
	steadyRequests atomic.Int64
	memoHits       atomic.Int64
	memoMisses     atomic.Int64
	sessionReuses  atomic.Int64
	sessionBuilds  atomic.Int64
	evictions      atomic.Int64
	rejected       atomic.Int64
	transientSteps atomic.Int64
	experimentRuns atomic.Int64
	inFlight       atomic.Int64

	panicsRecovered    atomic.Int64
	stepsDeduped       atomic.Int64
	checkpointSaves    atomic.Int64
	checkpointRestored atomic.Int64
}

// Server owns the lease cache, the response memo, the transient-blade
// registry and the admission queue. Create one with New, mount Handler on
// an http.Server, and on shutdown call BeginDrain, then
// http.Server.Shutdown, then Close.
type Server struct {
	cfg      Config
	leases   *leaseCache
	memo     *memo
	flights  *flights
	trans    *transients
	adm      *admission
	breakers *breakerSet
	stats    counters
	draining atomic.Bool
	closed   atomic.Bool
	// dieBlocks is the valid block-name set of the served floorplan, for
	// request validation before any system is built.
	dieBlocks map[string]bool

	// chaos, when armed via SetChaos, injects infrastructure faults.
	chaosMu sync.Mutex
	chaos   *chaos

	// ckptStop/ckptDone bracket the periodic checkpoint goroutine.
	ckptStop chan struct{}
	ckptDone chan struct{}
}

// New builds a Server; the configuration is validated and defaulted once
// here so every handler sees a resolved budget.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 || cfg.Threads < 1 {
		return nil, fmt.Errorf("serve: invalid budget %d workers × %d threads", cfg.Workers, cfg.Threads)
	}
	s := &Server{
		cfg:      cfg,
		memo:     newMemo(cfg.MemoEntries),
		flights:  newFlights(),
		adm:      newAdmission(cfg.Workers, cfg.QueueDepth),
		breakers: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	s.leases = newLeaseCache(cfg.Sessions, s.buildLease, &s.stats)
	s.trans = newTransients(cfg.Transients)
	fp := floorplan.BroadwellEP()
	s.dieBlocks = make(map[string]bool, len(fp.Blocks))
	for _, b := range fp.Blocks {
		s.dieBlocks[b.Name] = true
	}
	if cfg.RestoreOnStart && cfg.CheckpointPath != "" {
		if _, err := s.RestoreCheckpoint(); err != nil {
			s.trans.closeAll()
			return nil, err
		}
	}
	if cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0 {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop(cfg.CheckpointEvery)
	}
	return s, nil
}

// Config returns the resolved configuration (budget split applied).
func (s *Server) Config() Config { return s.cfg }

// Handler returns the route table, wrapped outside-in by the
// panic-recovery middleware (a handler panic becomes a structured 500,
// never a dead process), the chaos injector (inside recovery, so
// injected panics exercise it), and the drain gate. Every work endpoint
// refuses with 503 once the server is draining; in-flight requests are
// unaffected, and /healthz, /v1/stats, and /v1/checkpoint stay routable
// so operators can watch (and snapshot) the drain itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/steady", s.handleSteady)
	mux.HandleFunc("/v1/transient", s.handleTransientList)
	mux.HandleFunc("/v1/transient/", s.handleTransientOp)
	mux.HandleFunc("/v1/experiments", s.handleExperimentsList)
	mux.HandleFunc("/v1/experiments/", s.handleExperimentRun)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	drainExempt := map[string]bool{"/healthz": true, "/v1/stats": true, "/v1/checkpoint": true}
	gated := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() && !drainExempt[r.URL.Path] {
			writeError(w, http.StatusServiceUnavailable, "draining: not accepting new work",
				s.retryAfterSecs())
			return
		}
		mux.ServeHTTP(w, r)
	})
	return s.recoverMiddleware(s.chaosMiddleware(gated))
}

// retryAfterSecs is the single source of the Retry-After hint every
// refusal (admission 429, registry-full 429, drain 503) carries: one
// second when the queue is empty, growing with the number of requests
// already waiting per solve slot, clamped to five seconds while
// draining — a draining server will not come back, so clients should
// fail over rather than hammer it.
func (s *Server) retryAfterSecs() int {
	if s.draining.Load() {
		return 5
	}
	secs := 1 + int(s.adm.waiting.Load())/s.cfg.Workers
	if secs > 5 {
		secs = 5
	}
	return secs
}

// BeginDrain flips the server into drain mode: every subsequent request
// is refused with 503 while in-flight requests run to completion. Call it
// before http.Server.Shutdown so clients on kept-alive connections get a
// clean refusal instead of a mid-handshake reset.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains (if not already draining) and retires every cached solve
// session and registered transient blade, releasing their worker teams.
// Close is idempotent and must run after http.Server.Shutdown has
// returned, so no handler still holds a lease; a lease that *is* still
// referenced is marked dead and closed by its releaser — the race the
// idempotent Session.Close contract exists for.
// A configured checkpoint path gets a final on-drain snapshot first, so
// a graceful shutdown preserves every streaming blade for the next boot.
func (s *Server) Close() error {
	s.BeginDrain()
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
	}
	var saveErr error
	if s.cfg.CheckpointPath != "" {
		_, saveErr = s.SaveCheckpoint()
	}
	s.trans.closeAll()
	s.leases.closeAll()
	return saveErr
}

// ResetCaches empties the response memo and the session cache (closing
// the cached sessions). It exists for benchmarking and tests — cold-miss
// latencies are unmeasurable on a warm server otherwise — and is
// deliberately not routed as an endpoint.
func (s *Server) ResetCaches() {
	s.memo.reset()
	s.leases.closeAll()
}

// Snapshot returns the current Stats.
func (s *Server) Snapshot() Stats {
	return Stats{
		SteadyRequests: s.stats.steadyRequests.Load(),
		MemoHits:       s.stats.memoHits.Load(),
		MemoMisses:     s.stats.memoMisses.Load(),
		SessionReuses:  s.stats.sessionReuses.Load(),
		SessionBuilds:  s.stats.sessionBuilds.Load(),
		Evictions:      s.stats.evictions.Load(),
		Rejected:       s.stats.rejected.Load(),
		TransientSteps: s.stats.transientSteps.Load(),
		ExperimentRuns: s.stats.experimentRuns.Load(),
		InFlight:       s.stats.inFlight.Load(),

		PanicsRecovered:          s.stats.panicsRecovered.Load(),
		StepsDeduped:             s.stats.stepsDeduped.Load(),
		BreakerTrips:             s.breakers.trips.Load(),
		Breakers:                 s.breakers.snapshot(),
		CheckpointSaves:          s.stats.checkpointSaves.Load(),
		CheckpointBladesRestored: s.stats.checkpointRestored.Load(),

		Sessions:   s.leases.len(),
		Transients: s.trans.len(),
		Draining:   s.draining.Load(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// decode parses a JSON request body into dst with unknown fields
// rejected, enforcing the body cap. An empty body leaves dst zero when
// allowEmpty is set — the convention for "all defaults" POSTs.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any, allowEmpty bool) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if allowEmpty && strings.Contains(err.Error(), "EOF") {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

// writeError renders a JSON error. An optional positive retryAfterSecs
// sets the Retry-After header — every backpressure refusal derives it
// from the same Server.retryAfterSecs hint (or the breaker's cooldown).
func writeError(w http.ResponseWriter, status int, msg string, retryAfterSecs ...int) {
	if len(retryAfterSecs) > 0 && retryAfterSecs[0] > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs[0]))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(b)
	w.Write([]byte("\n"))
}
