package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cosim"
)

// checkpointVersion is bumped on any incompatible change of the payload
// schema; a restore refuses a version it does not understand instead of
// guessing.
const checkpointVersion = 1

// errCheckpointDisabled distinguishes "the operator never configured a
// checkpoint path" (the caller's mistake) from server-side save failures
// like a full disk.
var errCheckpointDisabled = fmt.Errorf("serve: checkpointing disabled (no checkpoint path configured)")

// checkpointBlade is one registered transient blade in a checkpoint: the
// normalized registration proposal (enough to rebuild the system,
// session, and operating point deterministically), the resolved initial
// temperature, the base power map, the exactly-once bookkeeping, and the
// sim's exact dynamic state.
type checkpointBlade struct {
	Blade      string               `json:"blade"`
	InitialC   float64              `json:"initial_c"`
	Proposal   SteadyRequest        `json:"proposal"`
	BasePowerW map[string]float64   `json:"base_power_w"`
	LastSeq    int64                `json:"last_seq,omitempty"`
	LastBody   []byte               `json:"last_body,omitempty"`
	State      cosim.TransientState `json:"state"`
}

// checkpointPayload is the checksummed part of a checkpoint file.
type checkpointPayload struct {
	SavedUnix int64             `json:"saved_unix"`
	Blades    []checkpointBlade `json:"blades"`
}

// checkpointFile is the on-disk envelope: a version gate, a SHA-256 over
// the exact payload bytes (a torn or bit-rotted file is detected, not
// half-restored), and the payload itself.
type checkpointFile struct {
	Version  int             `json:"version"`
	Checksum string          `json:"checksum_sha256"`
	Payload  json.RawMessage `json:"payload"`
}

// SaveCheckpoint snapshots every live transient blade to the configured
// checkpoint path via atomic write-then-rename: a crash mid-save leaves
// the previous checkpoint intact, never a torn file. It returns the
// number of blades saved. Each blade is snapshotted under its step lock,
// so a checkpoint taken during streaming captures a consistent
// between-chunks state.
func (s *Server) SaveCheckpoint() (int, error) {
	if s.cfg.CheckpointPath == "" {
		return 0, errCheckpointDisabled
	}
	payload := checkpointPayload{SavedUnix: time.Now().Unix()}
	for _, name := range s.trans.names() {
		b, ok := s.trans.get(name)
		if !ok {
			continue
		}
		b.mu.Lock()
		if b.dead {
			b.mu.Unlock()
			continue
		}
		cb := checkpointBlade{
			Blade:      b.name,
			InitialC:   b.initialC,
			Proposal:   b.req,
			BasePowerW: make(map[string]float64, len(b.base)),
			LastSeq:    b.lastSeq,
			LastBody:   append([]byte(nil), b.lastBody...),
			State:      *b.sim.ExportState(),
		}
		for k, v := range b.base {
			cb.BasePowerW[k] = v
		}
		b.mu.Unlock()
		payload.Blades = append(payload.Blades, cb)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	sum := sha256.Sum256(raw)
	envelope, err := json.Marshal(checkpointFile{
		Version:  checkpointVersion,
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  raw,
	})
	if err != nil {
		return 0, err
	}
	if err := atomicWrite(s.cfg.CheckpointPath, envelope); err != nil {
		return 0, err
	}
	s.stats.checkpointSaves.Add(1)
	return len(payload.Blades), nil
}

// atomicWrite writes data to path through a temp file in the same
// directory, fsyncs, renames, and fsyncs the directory — the crash-safe
// publish idiom. The final directory sync is what makes a *successful*
// save durable: without it a power loss can undo the rename itself, so
// the previous checkpoint would survive but the save the caller was told
// succeeded would silently not.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// RestoreCheckpoint rebuilds the transient blade registry from the
// configured checkpoint path: each saved blade gets a fresh
// system+session built from its normalized proposal (exactly the
// registration path), then its sim state is overwritten with the
// checkpointed one, so the blade resumes at its exact simulated time —
// restore-then-step is bit-identical to never having stopped. A missing
// file is a fresh boot (0, nil); a corrupt, truncated, or
// version-mismatched file is an error and restores nothing.
func (s *Server) RestoreCheckpoint() (int, error) {
	if s.cfg.CheckpointPath == "" {
		return 0, errCheckpointDisabled
	}
	raw, err := os.ReadFile(s.cfg.CheckpointPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var env checkpointFile
	if err := json.Unmarshal(raw, &env); err != nil {
		return 0, fmt.Errorf("serve: checkpoint %s: %w", s.cfg.CheckpointPath, err)
	}
	if env.Version != checkpointVersion {
		return 0, fmt.Errorf("serve: checkpoint %s: version %d, want %d",
			s.cfg.CheckpointPath, env.Version, checkpointVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.Checksum {
		return 0, fmt.Errorf("serve: checkpoint %s: checksum mismatch (file corrupt?)", s.cfg.CheckpointPath)
	}
	var payload checkpointPayload
	if err := json.Unmarshal(env.Payload, &payload); err != nil {
		return 0, fmt.Errorf("serve: checkpoint %s: payload: %w", s.cfg.CheckpointPath, err)
	}
	restored := 0
	for i := range payload.Blades {
		if err := s.restoreBlade(&payload.Blades[i]); err != nil {
			return restored, fmt.Errorf("serve: restore blade %q: %w", payload.Blades[i].Blade, err)
		}
		restored++
	}
	s.stats.checkpointRestored.Add(int64(restored))
	return restored, nil
}

// restoreBlade rebuilds one blade from its checkpoint entry.
func (s *Server) restoreBlade(cb *checkpointBlade) error {
	if cb.Blade == "" {
		return fmt.Errorf("missing blade name")
	}
	p, err := s.normalizeSteady(cb.Proposal)
	if err != nil {
		return err
	}
	sys, ses, err := s.buildLease(p.lease)
	if err != nil {
		return err
	}
	sim, err := ses.Transient(p.operatingFor(), cb.InitialC)
	if err != nil {
		ses.Close()
		return err
	}
	if err := sim.ImportState(&cb.State); err != nil {
		ses.Close()
		return err
	}
	base := make(map[string]float64, len(cb.BasePowerW))
	for k, v := range cb.BasePowerW {
		base[k] = v
	}
	b := &transientBlade{
		name:     cb.Blade,
		sys:      sys,
		ses:      ses,
		sim:      sim,
		base:     base,
		req:      p.req,
		initialC: cb.InitialC,
		lastSeq:  cb.LastSeq,
		lastBody: append([]byte(nil), cb.LastBody...),
	}
	if err := s.trans.add(b); err != nil {
		ses.Close()
		return err
	}
	return nil
}

// checkpointLoop periodically snapshots the registry until stopped.
// Failures are reported to the debug log and retried next tick — a full
// disk must not kill the service the checkpoints exist to protect.
func (s *Server) checkpointLoop(every time.Duration) {
	defer close(s.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := s.SaveCheckpoint(); err != nil {
				fmt.Fprintf(debugLogWriter, "serve: periodic checkpoint: %v\n", err)
			}
		case <-s.ckptStop:
			return
		}
	}
}

// handleCheckpoint is POST /v1/checkpoint: snapshot now. It stays
// routable while draining — an operator forcing a final snapshot is part
// of shutdown, not new work.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	n, err := s.SaveCheckpoint()
	if err != nil {
		// Only the unconfigured-path case is the client's fault; marshal
		// and write failures (full disk, bad permissions) are the server's.
		status := http.StatusInternalServerError
		if errors.Is(err, errCheckpointDisabled) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"saved_blades": n, "path": s.cfg.CheckpointPath})
}
